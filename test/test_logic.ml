(* Tests for the logic library: FO syntax, parser, active-domain
   evaluation, lineage extraction and safe plans. *)

let i n = Value.Int n
let p = Fo_parse.parse_exn

(* ------------------------------------------------------------------ *)
(* Fo structure *)
(* ------------------------------------------------------------------ *)

let test_free_vars () =
  Alcotest.(check (list string)) "open" [ "x"; "y" ]
    (Fo.free_vars (p "R(x, y)"));
  Alcotest.(check (list string)) "bound" [ "y" ]
    (Fo.free_vars (p "exists x. R(x, y)"));
  Alcotest.(check (list string)) "sentence" []
    (Fo.free_vars (p "exists x y. R(x, y)"));
  Alcotest.(check bool) "is_sentence" true
    (Fo.is_sentence (p "forall x. S(x) -> S(x)"))

let test_quantifier_rank () =
  Alcotest.(check int) "qf" 0 (Fo.quantifier_rank (p "R(1) & S(2)"));
  Alcotest.(check int) "rank 1" 1 (Fo.quantifier_rank (p "exists x. R(x)"));
  Alcotest.(check int) "nested" 2
    (Fo.quantifier_rank (p "exists x. forall y. R(x, y)"));
  Alcotest.(check int) "parallel" 1
    (Fo.quantifier_rank (p "(exists x. R(x)) & (exists y. S(y))"))

let test_constants_relations () =
  let f = p "R(1, \"a\") & exists x. S(x, 2)" in
  Alcotest.(check int) "constants" 3 (List.length (Fo.constants f));
  Alcotest.(check (list (pair string int))) "relations"
    [ ("R", 2); ("S", 2) ] (Fo.relations f);
  Alcotest.check_raises "arity clash"
    (Invalid_argument "Fo.relations: R used with arities 1 and 2") (fun () ->
      ignore (Fo.relations (p "R(1) & R(1, 2)")))

let test_substitute () =
  let f = p "R(x) & exists x. S(x)" in
  let g = Fo.substitute [ ("x", i 7) ] f in
  Alcotest.(check string) "only free occurrence" "R(7) & (exists x. S(x))"
    (Fo.to_string g);
  Alcotest.(check (list string)) "closed now" [] (Fo.free_vars g)

let test_shapes () =
  Alcotest.(check bool) "positive" true (Fo.is_positive (p "R(x) & S(y)"));
  Alcotest.(check bool) "not positive" false (Fo.is_positive (p "!R(x)"));
  Alcotest.(check bool) "qf" true (Fo.is_quantifier_free (p "R(x) | S(x)"));
  Alcotest.(check bool) "not qf" false
    (Fo.is_quantifier_free (p "exists x. R(x)"))

(* ------------------------------------------------------------------ *)
(* Parser *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let f = p s in
      let f' = p (Fo.to_string f) in
      Alcotest.(check bool) ("roundtrip " ^ s) true (Fo.equal f f'))
    [
      "R(x)";
      "exists x. R(x)";
      "exists x y. R(x, y) & S(y)";
      "forall x. R(x) -> S(x)";
      "!R(1) | S(\"abc\")";
      "x = y";
      "R(#t, #f)";
      "true & false";
      "exists x. x = 3 & R(x)";
    ]

let test_parse_precedence () =
  (* a & b | c parses as (a & b) | c *)
  Alcotest.(check bool) "and binds tighter" true
    (Fo.equal (p "R(1) & S(1) | T(1)") (p "(R(1) & S(1)) | T(1)"));
  (* a -> b -> c is right associative *)
  Alcotest.(check bool) "implies right assoc" true
    (Fo.equal (p "R(1) -> S(1) -> T(1)") (p "R(1) -> (S(1) -> T(1))"));
  (* quantifier scopes to the end *)
  Alcotest.(check bool) "quantifier scope" true
    (Fo.equal (p "exists x. R(x) & S(x)") (p "exists x. (R(x) & S(x))"))

let test_parse_neq () =
  Alcotest.(check bool) "x != y is !(x = y)" true
    (Fo.equal (p "x != y") (Fo.Not (Fo.Eq (Fo.v "x", Fo.v "y"))))

let test_parse_errors () =
  List.iter
    (fun s ->
      match Fo_parse.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ ""; "R("; "R(x"; "exists . R(1)"; "R(x))"; "x ="; "&"; "R(x) &"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Evaluation *)
(* ------------------------------------------------------------------ *)

let inst =
  Instance.of_list
    [
      Fact.make "R" [ i 1; i 2 ];
      Fact.make "R" [ i 2; i 3 ];
      Fact.make "S" [ i 3 ];
    ]

let test_eval_sentences () =
  let check s expected =
    Alcotest.(check bool) s expected (Fo_eval.models inst (p s))
  in
  check "exists x y. R(x, y)" true;
  check "exists x. R(x, x)" false;
  check "exists x. S(x)" true;
  check "S(3)" true;
  check "S(1)" false;
  check "exists x y. R(x, y) & S(y)" true;
  check "forall x. S(x) -> (exists y. R(y, x))" true;
  check "exists x. R(1, x) & R(x, 3)" true;
  check "forall x. S(x)" false;
  check "!S(1)" true;
  check "exists x. x = 1 & (exists y. R(x, y))" true;
  check "true" true;
  check "false" false

let test_eval_free_var_guard () =
  Alcotest.check_raises "free vars rejected"
    (Invalid_argument "Fo_eval.models: formula has free variables x")
    (fun () -> ignore (Fo_eval.models inst (p "R(x, x)")))

let test_eval_extra_domain () =
  (* forall over a larger domain can flip an answer. *)
  let phi = p "forall x. S(x) | (exists y. (R(x, y) | R(y, x)))" in
  Alcotest.(check bool) "true on adom" true (Fo_eval.models inst phi);
  Alcotest.(check bool) "false with extra element" false
    (Fo_eval.models ~extra_domain:[ i 99 ] inst phi)

let test_answers () =
  let xs, tuples = Fo_eval.answers inst (p "R(x, y) & S(y)") in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] xs;
  Alcotest.(check int) "one answer" 1 (Tuple.Set.cardinal tuples);
  Alcotest.(check bool) "(2,3)" true
    (Tuple.Set.mem [| i 2; i 3 |] tuples);
  (* sentence answer conventions *)
  let _, yes = Fo_eval.answers inst (p "exists x. S(x)") in
  Alcotest.(check int) "true sentence: empty tuple" 1 (Tuple.Set.cardinal yes);
  let _, no = Fo_eval.answers inst (p "S(1)") in
  Alcotest.(check int) "false sentence: empty set" 0 (Tuple.Set.cardinal no)

let test_answers_negation_activedomain () =
  (* !S(x) under active-domain semantics: answers restricted to the
     domain, so finite (Fact 2.1 / safety). *)
  let _, tuples = Fo_eval.answers inst (p "!S(x)") in
  Alcotest.(check int) "3 of 4 domain values minus S" 2
    (Tuple.Set.cardinal tuples)
(* domain is {1,2,3}: facts values; !S holds for 1 and 2 *)

(* ------------------------------------------------------------------ *)
(* Lineage *)
(* ------------------------------------------------------------------ *)

let alpha =
  Lineage.alphabet
    [
      Fact.make "R" [ i 1 ];
      Fact.make "R" [ i 2 ];
      Fact.make "S" [ i 2 ];
    ]

let test_lineage_atoms () =
  let lin = Lineage.of_sentence alpha (p "R(1)") in
  Alcotest.(check string) "single var" "x0" (Bool_expr.to_string lin);
  let lin = Lineage.of_sentence alpha (p "R(9)") in
  Alcotest.(check string) "absent fact" "false" (Bool_expr.to_string lin)

let test_lineage_exists () =
  let lin = Lineage.of_sentence alpha (p "exists x. R(x)") in
  (* over domain {1, 2}: x0 | x1 *)
  Alcotest.(check (list int)) "vars 0,1" [ 0; 1 ] (Bool_expr.vars lin);
  let lin2 = Lineage.of_sentence alpha (p "exists x. R(x) & S(x)") in
  (* only x=2 can satisfy both: R(2) & S(2) *)
  Alcotest.(check (list int)) "vars 1,2" [ 1; 2 ] (Bool_expr.vars lin2)

let test_lineage_semantics_vs_eval () =
  (* For every world over the alphabet, lineage eval = direct FO eval with
     the alphabet's domain. *)
  let facts = Lineage.facts alpha in
  let queries =
    [
      "exists x. R(x)";
      "exists x. R(x) & S(x)";
      "forall x. R(x) -> S(x)";
      "!(exists x. S(x))";
      "exists x y. R(x) & S(y) & x != y";
    ]
  in
  List.iter
    (fun qs ->
      let q = p qs in
      let lin = Lineage.of_sentence alpha q in
      let dom = Lineage.domain alpha q in
      List.iteri
        (fun mask () ->
          ignore mask)
        [];
      for mask = 0 to (1 lsl List.length facts) - 1 do
        let world =
          Instance.of_list
            (List.filteri (fun idx _ -> mask land (1 lsl idx) <> 0) facts)
        in
        let env v = Instance.mem (Lineage.fact_of_var alpha v) world in
        let expected =
          Fo_eval.models ~extra_domain:dom world q
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s world %d" qs mask)
          expected (Bool_expr.eval env lin)
      done)
    queries

let test_lineage_free_vars () =
  Alcotest.check_raises "free var"
    (Invalid_argument "Lineage.of_sentence: formula has free variables x")
    (fun () -> ignore (Lineage.of_sentence alpha (p "R(x)")));
  let lin = Lineage.of_formula alpha [ ("x", i 2) ] (p "R(x)") in
  Alcotest.(check string) "bound" "x1" (Bool_expr.to_string lin)

(* ------------------------------------------------------------------ *)
(* Safe plans *)
(* ------------------------------------------------------------------ *)

let test_safety_classification () =
  List.iter
    (fun (q, expected) ->
      Alcotest.(check bool) q expected (Safe_plan.is_safe (p q)))
    [
      ("exists x. R(x)", true);
      ("exists x. R(x, x)", true);
      ("exists x y. R(x, y)", true);
      ("exists x y. R(x) & S(x, y)", true);
      ("exists x y. R(x) & S(x, y) & T(y)", false) (* non-hierarchical *);
      ("exists x. R(x) & S(x)", true);
      ("exists x y. R(x) & S(y)", true) (* disconnected *);
      ("exists x y. R(x, y) & R(y, x)", false) (* entangled self-join *);
      ("exists x. R(x) | S(x)", true) (* UCQ: independent union *);
      ("exists x. !R(x)", false);
      ("R(1)", true);
      ("exists x. R(x) & x = 1", true) (* constant folded *);
      ("exists x. R(x) & x = 1 & x = 2", true) (* unsatisfiable: plan 0 *);
      ("exists x. R(x, 1) & R(x, 2)", true) (* position-consistent self-join *);
      ("(exists x. R(x) & S(x)) | (exists y. R(y) & T(y))", true)
      (* UCQ separator + inclusion-exclusion *);
      ("(exists x. R(x)) | (exists y. S(y) & T(y))", true);
      ("R(1) | (exists x. R(x) & S(x))", false) (* ground atom entangled *);
      ("forall x. R(x)", false);
    ]

let test_plan_shapes () =
  (* The certificate itself: rule structure, not just the verdict. *)
  let plan q =
    match Safe_plan.plan_of (p q) with
    | Some pl -> Safe_plan.plan_to_string pl
    | None -> "<none>"
  in
  Alcotest.(check bool) "union rule fires" true
    (String.length (plan "(exists x. R(x)) | (exists y. S(y))") > 0
    && String.sub (plan "(exists x. R(x)) | (exists y. S(y))") 0 5 = "union");
  Alcotest.(check string) "contradictory equalities plan to zero" "0"
    (plan "exists x. R(x) & x = 1 & x = 2");
  Alcotest.(check bool) "inclusion-exclusion fires" true
    (let s = plan "(exists x. R(x) & S(x)) | (exists y. R(y) & T(y))" in
     (* the shared R forces a UCQ separator whose body is incl-excl *)
     String.length s > 0
     && Option.is_some
          (String.index_opt s 'i' (* "incl-excl" occurs *))
     && String.sub s 0 7 = "project");
  Alcotest.(check string) "hard query has no plan" "<none>"
    (plan "exists x y. R(x) & S(x, y) & T(y)")

module SP = Safe_plan.Make (Prob.Rational_carrier)

let weight_of assoc f =
  Option.value (List.assoc_opt (Fact.to_string f) assoc) ~default:Rational.zero

let test_safe_plan_single_rel () =
  (* P(exists x. R(x)) = 1 - (1-1/2)(1-1/3) = 2/3 *)
  let facts = [ Fact.make "R" [ i 1 ]; Fact.make "R" [ i 2 ] ] in
  let w = weight_of [ ("R(1)", Rational.half); ("R(2)", Rational.of_ints 1 3) ] in
  match SP.probability ~weight:w ~facts (p "exists x. R(x)") with
  | Some pr -> Alcotest.(check string) "2/3" "2/3" (Rational.to_string pr)
  | None -> Alcotest.fail "safe query rejected"

let test_safe_plan_join () =
  (* P(exists x. R(x) & S(x)) with R(1)=1/2, S(1)=1/3, R(2)=1/4, S(2)=1/5:
     per value v: p_R(v) * p_S(v); 1 - (1 - 1/6)(1 - 1/20) = 1 - (5/6)(19/20)
     = 1 - 95/120 = 25/120 = 5/24. *)
  let facts =
    [
      Fact.make "R" [ i 1 ]; Fact.make "S" [ i 1 ];
      Fact.make "R" [ i 2 ]; Fact.make "S" [ i 2 ];
    ]
  in
  let w =
    weight_of
      [
        ("R(1)", Rational.half); ("S(1)", Rational.of_ints 1 3);
        ("R(2)", Rational.of_ints 1 4); ("S(2)", Rational.of_ints 1 5);
      ]
  in
  match SP.probability ~weight:w ~facts (p "exists x. R(x) & S(x)") with
  | Some pr -> Alcotest.(check string) "5/24" "5/24" (Rational.to_string pr)
  | None -> Alcotest.fail "safe query rejected"

let test_safe_plan_rejects_unsafe () =
  let facts = [ Fact.make "R" [ i 1 ]; Fact.make "S" [ i 1; i 2 ]; Fact.make "T" [ i 2 ] ] in
  let w _ = Rational.half in
  Alcotest.(check bool) "H0 rejected" true
    (SP.probability ~weight:w ~facts (p "exists x y. R(x) & S(x, y) & T(y)")
     = None);
  Alcotest.(check bool) "self join rejected" true
    (SP.probability ~weight:w ~facts (p "exists x y. S(x, y) & S(y, x)") = None)

let test_safe_plan_unsat_equalities () =
  (* Regression: the old collect silently picked one of two conflicting
     constant bindings and answered P(R(1)); the answer is 0. *)
  let facts = [ Fact.make "R" [ i 1 ]; Fact.make "R" [ i 2 ] ] in
  let w _ = Rational.half in
  (match
     SP.probability ~weight:w ~facts (p "exists x. R(x) & x = 1 & x = 2")
   with
  | Some pr -> Alcotest.(check string) "0" "0" (Rational.to_string pr)
  | None -> Alcotest.fail "unsatisfiable query must answer 0, not fall back");
  match Safe_plan.of_sentence (p "exists x. R(x) & x = 1 & x = 2") with
  | Some q ->
    Alcotest.(check bool) "of_sentence flags unsat" true
      (Safe_plan.is_unsatisfiable q)
  | None -> Alcotest.fail "of_sentence must recognize the CQ shape"

let test_safe_plan_duplicate_atoms () =
  (* Regression: equality substitution collapses R(x)[x:=1] and R(1) into
     syntactically identical duplicates — idempotent, not a self-join. *)
  (match Safe_plan.of_sentence (p "exists x. R(x) & x = 1 & R(1)") with
  | Some q ->
    Alcotest.(check bool) "duplicates are not a self-join" false
      (Safe_plan.has_self_join q)
  | None -> Alcotest.fail "CQ shape");
  let facts = [ Fact.make "R" [ i 1 ] ] in
  let w _ = Rational.half in
  match SP.probability ~weight:w ~facts (p "exists x. R(x) & x = 1 & R(1)") with
  | Some pr -> Alcotest.(check string) "1/2" "1/2" (Rational.to_string pr)
  | None -> Alcotest.fail "duplicate atoms must keep the fast path"

let test_safe_plan_union () =
  (* Independent union: P = 1 - (1 - 1/2)(1 - 1/3) = 2/3. *)
  let facts = [ Fact.make "R" [ i 1 ]; Fact.make "S" [ i 1 ] ] in
  let w = weight_of [ ("R(1)", Rational.half); ("S(1)", Rational.of_ints 1 3) ] in
  match
    SP.probability ~weight:w ~facts (p "(exists x. R(x)) | (exists y. S(y))")
  with
  | Some pr -> Alcotest.(check string) "2/3" "2/3" (Rational.to_string pr)
  | None -> Alcotest.fail "independent union rejected"

let test_safe_plan_incl_excl () =
  (* Shared relation forces a UCQ separator, then inclusion-exclusion per
     value: p = P(RS) + P(RT) - P(RST) = 1/6 + 1/8 - 1/24 = 1/4. *)
  let facts =
    [ Fact.make "R" [ i 1 ]; Fact.make "S" [ i 1 ]; Fact.make "T" [ i 1 ] ]
  in
  let w =
    weight_of
      [
        ("R(1)", Rational.half);
        ("S(1)", Rational.of_ints 1 3);
        ("T(1)", Rational.of_ints 1 4);
      ]
  in
  match
    SP.probability ~weight:w ~facts
      (p "(exists x. R(x) & S(x)) | (exists y. R(y) & T(y))")
  with
  | Some pr -> Alcotest.(check string) "1/4" "1/4" (Rational.to_string pr)
  | None -> Alcotest.fail "inclusion-exclusion rejected"

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let arb_small_formula =
  (* random quantified boolean combinations over R/1, S/1 with constants
     from a tiny universe *)
  let open QCheck.Gen in
  let term = oneof [ map (fun n -> Fo.cint n) (int_range 1 3); return (Fo.v "x") ] in
  let rec gen n =
    if n = 0 then
      oneof
        [
          map (fun t -> Fo.atom "R" [ t ]) term;
          map (fun t -> Fo.atom "S" [ t ]) term;
        ]
    else
      frequency
        [
          (2, map (fun t -> Fo.atom "R" [ t ]) term);
          (2, map Fo.(fun f -> Not f) (gen (n - 1)));
          (3, map2 (fun f g -> Fo.And (f, g)) (gen (n / 2)) (gen (n / 2)));
          (3, map2 (fun f g -> Fo.Or (f, g)) (gen (n / 2)) (gen (n / 2)));
        ]
  in
  let sentence = map (fun f -> Fo.Exists ("x", f)) (gen 4) in
  QCheck.make ~print:Fo.to_string sentence

let alpha_props =
  Lineage.alphabet
    [
      Fact.make "R" [ i 1 ]; Fact.make "R" [ i 2 ]; Fact.make "R" [ i 3 ];
      Fact.make "S" [ i 1 ]; Fact.make "S" [ i 2 ];
    ]

let props =
  [
    QCheck.Test.make ~name:"parse . to_string = id" ~count:200
      arb_small_formula (fun f ->
        Fo.equal f (Fo_parse.parse_exn (Fo.to_string f)));
    QCheck.Test.make ~name:"lineage eval = FO eval on random worlds"
      ~count:100 arb_small_formula (fun q ->
        let lin = Lineage.of_sentence alpha_props q in
        let dom = Lineage.domain alpha_props q in
        let facts = Lineage.facts alpha_props in
        List.for_all
          (fun mask ->
            let world =
              Instance.of_list
                (List.filteri (fun idx _ -> mask land (1 lsl idx) <> 0) facts)
            in
            let env v = Instance.mem (Lineage.fact_of_var alpha_props v) world in
            Bool_expr.eval env lin
            = Fo_eval.models ~extra_domain:dom world q)
          [ 0; 1; 5; 12; 21; 31 ]);
    QCheck.Test.make ~name:"substitute closes formulas" ~count:200
      arb_small_formula (fun q ->
        (* strip the quantifier to get a free-variable formula *)
        match q with
        | Fo.Exists (x, body) ->
          Fo.free_vars (Fo.substitute [ (x, i 1) ] body) = []
        | _ -> true);
  ]

(* Random rank-<=3 UCQs over a small schema, paired with a random small TI
   table: whenever the lifted engine answers, it must agree with the
   enumeration oracle by exact rational equality.  Disjuncts share
   relations often enough to exercise independent union, UCQ separators
   and inclusion-exclusion, not just single-CQ plans. *)
let arb_ucq_case =
  let open QCheck.Gen in
  let fact_pool =
    List.map (fun n -> Fact.make "R" [ i n ]) [ 1; 2; 3 ]
    @ List.map (fun n -> Fact.make "S" [ i n ]) [ 1; 2; 3 ]
    @ List.concat_map
        (fun a -> List.map (fun b -> Fact.make "T" [ i a; i b ]) [ 1; 2 ])
        [ 1; 2 ]
  in
  let rat = map (fun n -> Rational.of_ints n 8) (int_range 1 7) in
  let gen_table =
    list_size (int_range 1 8) (oneofl fact_pool) >>= fun fs ->
    let fs = List.sort_uniq Fact.compare fs in
    let rec probs = function
      | [] -> return []
      | f :: rest ->
        rat >>= fun pr ->
        probs rest >>= fun tl -> return ((f, pr) :: tl)
    in
    probs fs
  in
  let term vars =
    oneof
      (map (fun n -> Fo.cint n) (int_range 1 3)
      :: List.map (fun v -> return (Fo.v v)) vars)
  in
  let gen_atom vars =
    oneof
      [
        map (fun t -> Fo.atom "R" [ t ]) (term vars);
        map (fun t -> Fo.atom "S" [ t ]) (term vars);
        map2 (fun t u -> Fo.atom "T" [ t; u ]) (term vars) (term vars);
      ]
  in
  let gen_cq =
    int_range 1 3 >>= fun nv ->
    let vars = List.filteri (fun k _ -> k < nv) [ "x"; "y"; "z" ] in
    list_size (int_range 1 3) (gen_atom vars) >>= fun atoms ->
    oneof
      [
        return atoms;
        map
          (fun n -> Fo.Eq (Fo.v (List.hd vars), Fo.cint n) :: atoms)
          (int_range 1 3);
      ]
    >>= fun lits -> return (Fo.exists_many vars (Fo.conj lits))
  in
  let gen_case =
    gen_table >>= fun entries ->
    list_size (int_range 1 3) gen_cq >>= fun cqs ->
    return (Fo.disj cqs, entries)
  in
  let print (phi, entries) =
    Printf.sprintf "%s on {%s}" (Fo.to_string phi)
      (String.concat "; "
         (List.map
            (fun (f, pr) ->
              Fact.to_string f ^ " @ " ^ Rational.to_string pr)
            entries))
  in
  QCheck.make ~print gen_case

let ucq_props =
  [
    QCheck.Test.make ~name:"lifted UCQ = enumeration oracle (rank <= 3)"
      ~count:400 arb_ucq_case (fun (phi, entries) ->
        let ti = Ti_table.create entries in
        match Query_eval.boolean_safe ti phi with
        | None -> true (* routed to the grounded engines; nothing to check *)
        | Some pr -> Rational.equal pr (Query_eval.boolean_enum ti phi));
    QCheck.Test.make ~name:"planner verdict matches Query_eval.safe"
      ~count:400 arb_ucq_case (fun (phi, _) ->
        Query_eval.safe phi = (Safe_plan.plan_of phi <> None));
  ]

let () =
  Alcotest.run "logic"
    [
      ( "fo",
        [
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "quantifier rank" `Quick test_quantifier_rank;
          Alcotest.test_case "constants/relations" `Quick
            test_constants_relations;
          Alcotest.test_case "substitute" `Quick test_substitute;
          Alcotest.test_case "shapes" `Quick test_shapes;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "neq" `Quick test_parse_neq;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "sentences" `Quick test_eval_sentences;
          Alcotest.test_case "free var guard" `Quick test_eval_free_var_guard;
          Alcotest.test_case "extra domain" `Quick test_eval_extra_domain;
          Alcotest.test_case "answers" `Quick test_answers;
          Alcotest.test_case "negation active domain" `Quick
            test_answers_negation_activedomain;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "atoms" `Quick test_lineage_atoms;
          Alcotest.test_case "exists" `Quick test_lineage_exists;
          Alcotest.test_case "semantics" `Quick test_lineage_semantics_vs_eval;
          Alcotest.test_case "free vars" `Quick test_lineage_free_vars;
        ] );
      ( "safe-plan",
        [
          Alcotest.test_case "classification" `Quick test_safety_classification;
          Alcotest.test_case "plan shapes" `Quick test_plan_shapes;
          Alcotest.test_case "single relation" `Quick test_safe_plan_single_rel;
          Alcotest.test_case "join" `Quick test_safe_plan_join;
          Alcotest.test_case "rejects unsafe" `Quick test_safe_plan_rejects_unsafe;
          Alcotest.test_case "unsat equalities" `Quick
            test_safe_plan_unsat_equalities;
          Alcotest.test_case "duplicate atoms" `Quick
            test_safe_plan_duplicate_atoms;
          Alcotest.test_case "independent union" `Quick test_safe_plan_union;
          Alcotest.test_case "inclusion-exclusion" `Quick
            test_safe_plan_incl_excl;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
      ("ucq-properties", List.map QCheck_alcotest.to_alcotest ucq_props);
    ]
