(* Tests for the probability carriers: Interval, Log_domain and the three
   Prob.CARRIER implementations. *)

module I = Interval
module L = Log_domain
module Q = Rational

(* ------------------------------------------------------------------ *)
(* Interval *)
(* ------------------------------------------------------------------ *)

let test_interval_basic () =
  let x = I.make 0.25 0.5 in
  Alcotest.(check (float 0.0)) "lo" 0.25 (I.lo x);
  Alcotest.(check (float 0.0)) "hi" 0.5 (I.hi x);
  Alcotest.(check (float 1e-15)) "mid" 0.375 (I.mid x);
  Alcotest.(check (float 1e-15)) "width" 0.25 (I.width x);
  Alcotest.check_raises "inverted" (Invalid_argument "Interval.make")
    (fun () -> ignore (I.make 1.0 0.0))

let test_interval_encloses_ops () =
  (* Exact real results of rational operations must always be inside the
     computed interval. *)
  let a = I.point 0.1 and b = I.point 0.2 in
  let s = I.add a b in
  Alcotest.(check bool) "0.1+0.2 enclosed" true
    (I.contains s (Q.to_float (Q.add (Q.of_float_exn 0.1) (Q.of_float_exn 0.2))));
  let p = I.mul a b in
  Alcotest.(check bool) "0.1*0.2 enclosed" true
    (I.contains p (Q.to_float (Q.mul (Q.of_float_exn 0.1) (Q.of_float_exn 0.2))));
  let d = I.div a b in
  Alcotest.(check bool) "0.1/0.2 enclosed" true (I.contains d 0.5)

let test_interval_mul_signs () =
  let m = I.mul (I.make (-2.0) 3.0) (I.make (-1.0) 4.0) in
  Alcotest.(check bool) "lo <= -8" true (I.lo m <= -8.0);
  Alcotest.(check bool) "hi >= 12" true (I.hi m >= 12.0);
  Alcotest.(check bool) "tight-ish lo" true (I.lo m > -8.1);
  Alcotest.(check bool) "tight-ish hi" true (I.hi m < 12.1)

let test_interval_div_by_zero () =
  Alcotest.check_raises "0 in divisor" Division_by_zero (fun () ->
      ignore (I.div I.one (I.make (-1.0) 1.0)))

let no_nan x = (not (Float.is_nan (I.lo x))) && not (Float.is_nan (I.hi x))

let test_interval_unbounded_mul () =
  (* The 0 * inf corners used to produce nan, which [make]'s guard never
     sees (the arithmetic bypasses it).  Set-based convention: the corner
     contributes 0. *)
  let z_inf = I.mul (I.make 0.0 1.0) (I.make 1.0 infinity) in
  Alcotest.(check bool) "0*[1,inf] no nan" true (no_nan z_inf);
  Alcotest.(check bool) "encloses 0" true (I.contains z_inf 0.0);
  Alcotest.(check bool) "encloses large" true (I.contains z_inf 1e300);
  let m = I.mul (I.make neg_infinity 0.0) (I.make 0.0 infinity) in
  Alcotest.(check bool) "[-inf,0]*[0,inf] no nan" true (no_nan m);
  Alcotest.(check bool) "lower unbounded" true (I.lo m = neg_infinity);
  Alcotest.(check bool) "hi is 0 corner" true (I.hi m >= 0.0)

let test_interval_unbounded_div () =
  (* inf/inf corners: each contributes {0, signed inf}. *)
  let d = I.div (I.make 1.0 infinity) (I.make 1.0 infinity) in
  Alcotest.(check bool) "[1,inf]/[1,inf] no nan" true (no_nan d);
  Alcotest.(check bool) "encloses 0 limit" true (I.contains d 0.0);
  Alcotest.(check bool) "encloses inf limit" true (I.hi d = infinity);
  Alcotest.(check bool) "encloses 1" true (I.contains d 1.0);
  let d2 = I.div (I.make neg_infinity (-1.0)) (I.make 1.0 infinity) in
  Alcotest.(check bool) "[-inf,-1]/[1,inf] no nan" true (no_nan d2);
  Alcotest.(check bool) "negative side" true
    (I.lo d2 = neg_infinity && I.contains d2 0.0)

let test_interval_set_ops () =
  let a = I.make 0.0 0.5 and b = I.make 0.25 1.0 in
  let h = I.hull a b in
  Alcotest.(check (float 0.0)) "hull lo" 0.0 (I.lo h);
  Alcotest.(check (float 0.0)) "hull hi" 1.0 (I.hi h);
  (match I.intersect a b with
   | Some i ->
     Alcotest.(check (float 0.0)) "inter lo" 0.25 (I.lo i);
     Alcotest.(check (float 0.0)) "inter hi" 0.5 (I.hi i)
   | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint" true
    (I.intersect (I.make 0.0 0.1) (I.make 0.2 0.3) = None);
  Alcotest.(check bool) "subset" true (I.subset (I.make 0.3 0.4) a)

let test_interval_clamp () =
  let c = I.clamp01 (I.make (-0.5) 0.5) in
  Alcotest.(check (float 0.0)) "clamp lo" 0.0 (I.lo c);
  Alcotest.(check (float 0.0)) "clamp hi" 0.5 (I.hi c);
  Alcotest.(check bool) "all below" true (I.equal (I.clamp01 (I.make (-3.) (-2.))) I.zero)

let test_interval_compl () =
  let c = I.compl (I.make 0.25 0.75) in
  Alcotest.(check bool) "compl encloses" true
    (I.contains c 0.25 && I.contains c 0.75)

(* ------------------------------------------------------------------ *)
(* Log domain *)
(* ------------------------------------------------------------------ *)

let test_log_basic () =
  Alcotest.(check (float 1e-12)) "one" 1.0 (L.to_float L.one);
  Alcotest.(check (float 0.0)) "zero" 0.0 (L.to_float L.zero);
  Alcotest.(check bool) "is_zero" true (L.is_zero L.zero);
  Alcotest.(check (float 1e-12)) "mul" 0.06
    (L.to_float (L.mul (L.of_float 0.2) (L.of_float 0.3)));
  Alcotest.(check (float 1e-12)) "add" 0.5
    (L.to_float (L.add (L.of_float 0.2) (L.of_float 0.3)));
  Alcotest.(check (float 1e-12)) "sub" 0.1
    (L.to_float (L.sub (L.of_float 0.3) (L.of_float 0.2)));
  Alcotest.(check (float 1e-12)) "div" 1.5
    (L.to_float (L.div (L.of_float 0.3) (L.of_float 0.2)))

let test_log_extreme_products () =
  (* 10^4 factors of 0.5: far below float underflow, fine in log space. *)
  let p = List.init 10_000 (fun _ -> L.of_float 0.5) in
  let prod = List.fold_left L.mul L.one p in
  Alcotest.(check (float 1.0)) "log2 scale" (-10_000.0 *. log 2.0)
    (L.to_log prod);
  Alcotest.(check (float 0.0)) "underflows to 0 as float" 0.0 (L.to_float prod)

let test_log_product_compl () =
  (* prod (1 - 2^-i) for i = 1..30 ~ 0.288788... *)
  let ps = List.init 30 (fun i -> 0.5 ** float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "euler-ish product" 0.2887880951
    (L.to_float (L.product_compl ps));
  Alcotest.check_raises "bad p" (Invalid_argument "Log_domain.product_compl")
    (fun () -> ignore (L.product_compl [ 1.5 ]))

let test_log_errors () =
  Alcotest.check_raises "neg" (Invalid_argument "Log_domain.of_float")
    (fun () -> ignore (L.of_float (-1.0)));
  Alcotest.check_raises "sub neg" (Invalid_argument "Log_domain.sub: negative result")
    (fun () -> ignore (L.sub (L.of_float 0.1) (L.of_float 0.2)));
  Alcotest.check_raises "div 0" Division_by_zero (fun () ->
      ignore (L.div L.one L.zero))

(* ------------------------------------------------------------------ *)
(* Carriers *)
(* ------------------------------------------------------------------ *)

(* Shared laws, checked for each carrier on float-exact dyadic inputs. *)
module Carrier_laws (C : Prob.CARRIER) = struct
  let dyadics = [ 0.0; 0.125; 0.25; 0.5; 0.75; 1.0 ]

  let run () =
    List.iter
      (fun p ->
        List.iter
          (fun q ->
            let cp = C.of_float p and cq = C.of_float q in
            Alcotest.(check (float 1e-12))
              (Printf.sprintf "%s add %g %g" C.name p q)
              (p +. q)
              (C.to_float (C.add cp cq));
            Alcotest.(check (float 1e-12))
              (Printf.sprintf "%s mul %g %g" C.name p q)
              (p *. q)
              (C.to_float (C.mul cp cq)))
          dyadics;
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "%s compl %g" C.name p)
          (1.0 -. p)
          (C.to_float (C.compl (C.of_float p))))
      dyadics;
    Alcotest.(check (float 0.0)) (C.name ^ " zero") 0.0 (C.to_float C.zero);
    Alcotest.(check (float 0.0)) (C.name ^ " one") 1.0 (C.to_float C.one);
    Alcotest.(check bool) (C.name ^ " order") true
      (C.compare C.zero C.one < 0);
    Alcotest.(check (float 1e-12)) (C.name ^ " of_rational 1/4") 0.25
      (C.to_float (C.of_rational (Q.of_ints 1 4)))

  let dyadic p = p (* silence unused warnings if any *)
  let _ = dyadic
end

let test_carrier_float () =
  let module M = Carrier_laws (Prob.Float_carrier) in
  M.run ()

let test_carrier_rational () =
  let module M = Carrier_laws (Prob.Rational_carrier) in
  M.run ()

let test_carrier_interval () =
  let module M = Carrier_laws (Prob.Interval_carrier) in
  M.run ()

let test_rational_carrier_exactness () =
  let module C = Prob.Rational_carrier in
  (* 10 additions of 1/10 equal exactly 1 in the rational carrier. *)
  let tenth = C.of_rational (Q.of_ints 1 10) in
  let sum = List.fold_left C.add C.zero (List.init 10 (fun _ -> tenth)) in
  Alcotest.(check bool) "exact decimal sum" true (C.equal sum C.one)

let test_kahan () =
  (* Summing 10^5 copies of 0.1 naively drifts; Kahan keeps it to one ulp. *)
  let xs = List.init 100_000 (fun _ -> 0.1) in
  Alcotest.(check (float 1e-9)) "kahan 1e5 * 0.1" 10_000.0 (Prob.kahan_sum xs);
  Alcotest.(check (float 0.0)) "kahan empty" 0.0 (Prob.kahan_sum []);
  Alcotest.(check bool) "close" true (Prob.close 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "not close" false (Prob.close 1.0 1.1)

let test_check_probability () =
  Alcotest.(check (float 0.0)) "ok" 0.5 (Prob.check_probability_float 0.5);
  Alcotest.check_raises "neg"
    (Invalid_argument "probability out of range: -0.1") (fun () ->
      ignore (Prob.check_probability_float (-0.1)));
  Alcotest.(check bool) "rational ok" true
    (Q.equal Q.half (Prob.check_probability_rational Q.half));
  Alcotest.check_raises "rational bad"
    (Invalid_argument "probability out of range: 3/2") (fun () ->
      ignore (Prob.check_probability_rational (Q.of_ints 3 2)))

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let arb_unit = QCheck.float_range 0.0 1.0

(* Endpoints drawn from a set rich in the corner cases: zeros, infinities
   and magnitudes whose products overflow. *)
let arb_endpoint =
  QCheck.oneofl
    [ neg_infinity; -1e308; -2.5; -1.0; -0.0; 0.0; 0.5; 1.0; 1e308; infinity ]

let arb_interval =
  QCheck.map
    (fun (a, b) -> I.make (Float.min a b) (Float.max a b))
    QCheck.(pair arb_endpoint arb_endpoint)

let props =
  [
    QCheck.Test.make ~name:"interval mul never nan" ~count:1000
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        let m = I.mul a b in
        (not (Float.is_nan (I.lo m))) && not (Float.is_nan (I.hi m)));
    QCheck.Test.make ~name:"interval div never nan" ~count:1000
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        match I.div a b with
        | d -> (not (Float.is_nan (I.lo d))) && not (Float.is_nan (I.hi d))
        | exception Division_by_zero -> true);
    QCheck.Test.make ~name:"interval add encloses" ~count:300
      QCheck.(pair arb_unit arb_unit)
      (fun (a, b) -> I.contains (I.add (I.point a) (I.point b)) (a +. b));
    QCheck.Test.make ~name:"interval mul encloses" ~count:300
      QCheck.(pair arb_unit arb_unit)
      (fun (a, b) -> I.contains (I.mul (I.point a) (I.point b)) (a *. b));
    QCheck.Test.make ~name:"interval sub encloses" ~count:300
      QCheck.(pair arb_unit arb_unit)
      (fun (a, b) -> I.contains (I.sub (I.point a) (I.point b)) (a -. b));
    QCheck.Test.make ~name:"interval width grows under hull" ~count:300
      QCheck.(pair arb_unit arb_unit)
      (fun (a, b) ->
        let h = I.hull (I.point a) (I.point b) in
        I.width h >= 0.0 && I.contains h a && I.contains h b);
    QCheck.Test.make ~name:"log mul = float mul" ~count:300
      QCheck.(pair arb_unit arb_unit)
      (fun (a, b) ->
        Prob.close ~eps:1e-12 (a *. b)
          (L.to_float (L.mul (L.of_float a) (L.of_float b))));
    QCheck.Test.make ~name:"log add = float add" ~count:300
      QCheck.(pair arb_unit arb_unit)
      (fun (a, b) ->
        Prob.close ~eps:1e-9 (a +. b)
          (L.to_float (L.add (L.of_float a) (L.of_float b))));
    QCheck.Test.make ~name:"rational carrier assoc exactly" ~count:200
      QCheck.(triple (int_range 0 100) (int_range 0 100) (int_range 0 100))
      (fun (a, b, c) ->
        let module C = Prob.Rational_carrier in
        let r n = C.of_rational (Q.of_ints n 101) in
        C.equal (C.add (C.add (r a) (r b)) (r c))
          (C.add (r a) (C.add (r b) (r c))));
  ]

let () =
  Alcotest.run "prob"
    [
      ( "interval",
        [
          Alcotest.test_case "basic" `Quick test_interval_basic;
          Alcotest.test_case "encloses ops" `Quick test_interval_encloses_ops;
          Alcotest.test_case "mul signs" `Quick test_interval_mul_signs;
          Alcotest.test_case "div by zero" `Quick test_interval_div_by_zero;
          Alcotest.test_case "unbounded mul" `Quick test_interval_unbounded_mul;
          Alcotest.test_case "unbounded div" `Quick test_interval_unbounded_div;
          Alcotest.test_case "set ops" `Quick test_interval_set_ops;
          Alcotest.test_case "clamp01" `Quick test_interval_clamp;
          Alcotest.test_case "compl" `Quick test_interval_compl;
        ] );
      ( "log-domain",
        [
          Alcotest.test_case "basic" `Quick test_log_basic;
          Alcotest.test_case "extreme products" `Quick test_log_extreme_products;
          Alcotest.test_case "product_compl" `Quick test_log_product_compl;
          Alcotest.test_case "errors" `Quick test_log_errors;
        ] );
      ( "carriers",
        [
          Alcotest.test_case "float laws" `Quick test_carrier_float;
          Alcotest.test_case "rational laws" `Quick test_carrier_rational;
          Alcotest.test_case "interval laws" `Quick test_carrier_interval;
          Alcotest.test_case "rational exactness" `Quick
            test_rational_carrier_exactness;
          Alcotest.test_case "kahan" `Quick test_kahan;
          Alcotest.test_case "check_probability" `Quick test_check_probability;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
