(* Tests for the relational substrate: values, schemas, facts, instances
   and the deterministic algebra. *)

let i n = Value.Int n
let s x = Value.Str x

(* ------------------------------------------------------------------ *)
(* Value *)
(* ------------------------------------------------------------------ *)

let test_value_order_total () =
  let vs = [ i (-1); i 0; i 5; s ""; s "a"; Value.Real 1.5; Value.Bool false ] in
  (* compare is a total order: antisymmetric and transitive on samples. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int) "antisym" (Value.compare a b)
            (-Value.compare b a))
        vs)
    vs;
  Alcotest.(check bool) "int < str sort order" true (Value.compare (i 9) (s "") < 0)

let test_value_strings () =
  Alcotest.(check string) "int" "42" (Value.to_string (i 42));
  Alcotest.(check string) "str quoted" "\"ab\"" (Value.to_string (s "ab"));
  Alcotest.(check bool) "roundtrip int" true
    (Value.equal (i (-7)) (Value.of_string "-7"));
  Alcotest.(check bool) "roundtrip str" true
    (Value.equal (s "x,y") (Value.of_string "\"x,y\""));
  Alcotest.(check bool) "roundtrip bool" true
    (Value.equal (Value.Bool true) (Value.of_string "true"));
  Alcotest.(check bool) "real parse" true
    (match Value.of_string "1.5" with Value.Real f -> f = 1.5 | _ -> false);
  Alcotest.check_raises "empty" (Invalid_argument "Value.of_string: empty")
    (fun () -> ignore (Value.of_string ""))

let take n seq = List.of_seq (Seq.take n seq)

let test_value_enum_ints () =
  Alcotest.(check bool) "0,1,-1,2,-2" true
    (take 5 (Value.enum_ints ()) = [ i 0; i 1; i (-1); i 2; i (-2) ]);
  (* injective on a prefix *)
  let prefix = take 1000 (Value.enum_ints ()) in
  Alcotest.(check int) "injective" 1000
    (List.length (List.sort_uniq Value.compare prefix))

let test_value_enum_strings () =
  let prefix = take 7 (Value.enum_strings ~alphabet:"ab" ()) in
  Alcotest.(check bool) "length-lex order" true
    (prefix = [ s ""; s "a"; s "b"; s "aa"; s "ab"; s "ba"; s "bb" ]);
  let prefix = take 500 (Value.enum_strings ()) in
  Alcotest.(check int) "injective" 500
    (List.length (List.sort_uniq Value.compare prefix))

let test_value_interleave () =
  let m = Value.interleave (Value.enum_naturals ()) (Value.enum_strings ()) in
  Alcotest.(check bool) "alternates" true
    (take 4 m = [ i 1; s ""; i 2; s "a" ]);
  let prefix = take 1000 m in
  Alcotest.(check int) "injective" 1000
    (List.length (List.sort_uniq Value.compare prefix))

(* ------------------------------------------------------------------ *)
(* Schema / Fact *)
(* ------------------------------------------------------------------ *)

let schema =
  Schema.make
    [
      Schema.relation "R" 2;
      Schema.relation "S" 1;
      Schema.relation ~sorts:[ Value.S_str; Value.S_int ] "T" 2;
    ]

let test_schema_basics () =
  Alcotest.(check int) "arity R" 2 (Schema.arity schema "R");
  Alcotest.(check bool) "mem" true (Schema.mem schema "S");
  Alcotest.(check bool) "not mem" false (Schema.mem schema "Z");
  Alcotest.(check int) "max arity" 2 (Schema.max_arity schema);
  Alcotest.(check int) "relations" 3 (List.length (Schema.relations schema));
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema.make: duplicate relation R") (fun () ->
      ignore (Schema.make [ Schema.relation "R" 1; Schema.relation "R" 2 ]))

let test_schema_union () =
  let s2 = Schema.make [ Schema.relation "Z" 3 ] in
  let u = Schema.union schema s2 in
  Alcotest.(check bool) "has both" true (Schema.mem u "R" && Schema.mem u "Z");
  Alcotest.check_raises "conflict"
    (Invalid_argument "Schema.add: conflicting declaration of R") (fun () ->
      ignore (Schema.union schema (Schema.make [ Schema.relation "R" 3 ])))

let test_fact_basics () =
  let f = Fact.make "R" [ i 1; i 2 ] in
  Alcotest.(check string) "print" "R(1, 2)" (Fact.to_string f);
  Alcotest.(check string) "rel" "R" (Fact.rel f);
  Alcotest.(check int) "arity" 2 (Fact.arity f);
  Alcotest.(check bool) "conforms" true (Fact.conforms schema f);
  Alcotest.(check bool) "wrong arity" false
    (Fact.conforms schema (Fact.make "R" [ i 1 ]));
  Alcotest.(check bool) "unknown rel" false
    (Fact.conforms schema (Fact.make "Q" [ i 1 ]));
  Alcotest.(check bool) "sort ok" true
    (Fact.conforms schema (Fact.make "T" [ s "x"; i 3 ]));
  Alcotest.(check bool) "sort bad" false
    (Fact.conforms schema (Fact.make "T" [ i 3; i 3 ]))

let test_fact_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        ("roundtrip " ^ Fact.to_string f)
        true
        (Fact.equal f (Fact.of_string (Fact.to_string f))))
    [
      Fact.make "R" [ i 1; i 2 ];
      Fact.make "S" [];
      Fact.make "T" [ s "a,b"; i (-3) ];
      Fact.make "U" [ Value.Bool true; s "" ];
    ]

let test_fact_order () =
  let f1 = Fact.make "R" [ i 1 ] and f2 = Fact.make "R" [ i 2 ] in
  let g = Fact.make "S" [ i 0 ] in
  Alcotest.(check bool) "same rel by args" true (Fact.compare f1 f2 < 0);
  Alcotest.(check bool) "by rel name" true (Fact.compare f1 g < 0);
  Alcotest.(check bool) "equal" true (Fact.equal f1 (Fact.make "R" [ i 1 ]))

let test_hash_covers_every_column () =
  (* Regression: the old hash went through Hashtbl.hash, whose default
     traversal stops at 10 "meaningful" nodes, so wide facts differing
     only in a late column collided systematically.  The fold must see
     all twelve columns. *)
  let wide k = Fact.make "W" (List.init 12 (fun j -> i (if j = 11 then k else j))) in
  Alcotest.(check bool) "facts differing in column 12 hash apart" true
    (Fact.hash (wide 100) <> Fact.hash (wide 200));
  let tup k : Tuple.t = Array.init 12 (fun j -> i (if j = 11 then k else j)) in
  Alcotest.(check bool) "tuples differing in column 12 hash apart" true
    (Tuple.hash (tup 100) <> Tuple.hash (tup 200));
  (* Equal values still hash equal, and the result is nonnegative (it
     feeds Hashtbl.Make functors). *)
  Alcotest.(check int) "fact hash is stable" (Fact.hash (wide 7))
    (Fact.hash (wide 7));
  Alcotest.(check int) "tuple hash is stable" (Tuple.hash (tup 7))
    (Tuple.hash (tup 7));
  Alcotest.(check bool) "nonnegative" true
    (Fact.hash (wide 3) >= 0 && Tuple.hash (tup 3) >= 0)

(* ------------------------------------------------------------------ *)
(* Instance *)
(* ------------------------------------------------------------------ *)

let inst =
  Instance.of_list
    [
      Fact.make "R" [ i 1; i 2 ];
      Fact.make "R" [ i 2; i 3 ];
      Fact.make "S" [ i 2 ];
    ]

let test_instance_basics () =
  Alcotest.(check int) "size" 3 (Instance.size inst);
  Alcotest.(check bool) "mem" true (Instance.mem (Fact.make "S" [ i 2 ]) inst);
  Alcotest.(check int) "adom" 3 (List.length (Instance.active_domain inst));
  Alcotest.(check (list string)) "relations" [ "R"; "S" ]
    (Instance.relations_used inst);
  Alcotest.(check int) "tuples of R" 2 (List.length (Instance.tuples_of inst "R"));
  Alcotest.(check bool) "conforms" true (Instance.conforms schema inst)

let test_instance_set_ops () =
  let a = Instance.of_list [ Fact.make "S" [ i 1 ]; Fact.make "S" [ i 2 ] ] in
  let b = Instance.of_list [ Fact.make "S" [ i 2 ]; Fact.make "S" [ i 3 ] ] in
  Alcotest.(check int) "union" 3 (Instance.size (Instance.union a b));
  Alcotest.(check int) "inter" 1 (Instance.size (Instance.inter a b));
  Alcotest.(check int) "diff" 1 (Instance.size (Instance.diff a b));
  Alcotest.(check bool) "subset" true
    (Instance.subset (Instance.singleton (Fact.make "S" [ i 1 ])) a)

let test_instance_disjoint_union () =
  let a = Instance.singleton (Fact.make "S" [ i 1 ]) in
  let b = Instance.singleton (Fact.make "S" [ i 2 ]) in
  Alcotest.(check int) "disjoint ok" 2 (Instance.size (Instance.disjoint_union a b));
  Alcotest.check_raises "overlap"
    (Invalid_argument "Instance.disjoint_union: operands share a fact")
    (fun () -> ignore (Instance.disjoint_union a a))

let test_instance_intersects () =
  let fs = Fact.Set.of_list [ Fact.make "S" [ i 2 ]; Fact.make "S" [ i 9 ] ] in
  Alcotest.(check bool) "E_F hit" true (Instance.intersects inst fs);
  let fs' = Fact.Set.singleton (Fact.make "S" [ i 9 ]) in
  Alcotest.(check bool) "E_F miss" false (Instance.intersects inst fs')

let test_instance_subsets () =
  let subs = List.of_seq (Instance.subsets inst) in
  Alcotest.(check int) "2^3 subsets" 8 (List.length subs);
  Alcotest.(check int) "unique" 8
    (List.length (List.sort_uniq Instance.compare subs));
  Alcotest.(check bool) "contains empty" true
    (List.exists Instance.is_empty subs);
  Alcotest.(check bool) "contains full" true
    (List.exists (fun d -> Instance.equal d inst) subs)

(* ------------------------------------------------------------------ *)
(* Algebra *)
(* ------------------------------------------------------------------ *)

let test_algebra_select_project () =
  let open Algebra in
  let r = eval_list schema inst (Project ([ 1 ], Select_eq (0, i 1, Rel "R"))) in
  Alcotest.(check int) "one tuple" 1 (List.length r);
  Alcotest.(check bool) "is (2)" true (Tuple.equal (List.hd r) [| i 2 |])

let test_algebra_join () =
  let open Algebra in
  (* R(x,y) joined with S(y): pairs whose second column is in S *)
  let r = eval_list schema inst (Join ([ (1, 0) ], Rel "R", Rel "S")) in
  Alcotest.(check int) "join size" 1 (List.length r);
  Alcotest.(check bool) "join tuple" true
    (Tuple.equal (List.hd r) [| i 1; i 2; i 2 |])

let test_algebra_set_ops () =
  let open Algebra in
  let u = eval_list schema inst (Union (Project ([ 0 ], Rel "R"), Rel "S")) in
  Alcotest.(check int) "union" 2 (List.length u);
  let d = eval_list schema inst (Diff (Project ([ 0 ], Rel "R"), Rel "S")) in
  Alcotest.(check int) "diff" 1 (List.length d);
  let n = eval_list schema inst (Inter (Project ([ 1 ], Rel "R"), Rel "S")) in
  Alcotest.(check int) "inter" 1 (List.length n)

let test_algebra_product_const () =
  let open Algebra in
  let p = eval_list schema inst (Product (Rel "S", Const [ [| s "k" |]; [| s "l" |] ])) in
  Alcotest.(check int) "product" 2 (List.length p)

let test_algebra_errors () =
  let open Algebra in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Algebra: set operation arity mismatch") (fun () ->
      ignore (eval schema inst (Union (Rel "R", Rel "S"))));
  Alcotest.check_raises "bad projection"
    (Invalid_argument "Algebra: projection column out of range") (fun () ->
      ignore (eval schema inst (Project ([ 5 ], Rel "R"))));
  Alcotest.check_raises "unknown rel"
    (Invalid_argument "Schema: unknown relation Q") (fun () ->
      ignore (eval schema inst (Rel "Q")))

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let arb_fact =
  QCheck.make
    ~print:Fact.to_string
    QCheck.Gen.(
      let* rel = oneofl [ "R"; "S"; "T" ] in
      let* a = int_range 0 3 in
      let* args = list_repeat a (map (fun n -> Value.Int n) (int_range (-5) 5)) in
      return (Fact.make rel args))

let arb_instance =
  QCheck.make
    ~print:Instance.to_string
    QCheck.Gen.(
      map Instance.of_list (list_size (int_range 0 8) (QCheck.get_gen arb_fact)))

let props =
  [
    QCheck.Test.make ~name:"fact to_string/of_string roundtrip" ~count:300
      arb_fact (fun f -> Fact.equal f (Fact.of_string (Fact.to_string f)));
    QCheck.Test.make ~name:"instance union size bounds" ~count:300
      QCheck.(pair arb_instance arb_instance)
      (fun (a, b) ->
        let u = Instance.size (Instance.union a b) in
        u <= Instance.size a + Instance.size b
        && u >= max (Instance.size a) (Instance.size b));
    QCheck.Test.make ~name:"adom bounded by arity * size (Fact 2.1 shape)"
      ~count:300 arb_instance (fun d ->
        List.length (Instance.active_domain d) <= 3 * Instance.size d);
    QCheck.Test.make ~name:"subsets count" ~count:50 arb_instance (fun d ->
        Seq.length (Instance.subsets d) = 1 lsl Instance.size d);
    QCheck.Test.make ~name:"tuple compare total" ~count:300
      QCheck.(pair (list (int_range 0 5)) (list (int_range 0 5)))
      (fun (a, b) ->
        let ta = Array.of_list (List.map (fun n -> Value.Int n) a) in
        let tb = Array.of_list (List.map (fun n -> Value.Int n) b) in
        Tuple.compare ta tb = -Tuple.compare tb ta);
  ]

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "total order" `Quick test_value_order_total;
          Alcotest.test_case "strings" `Quick test_value_strings;
          Alcotest.test_case "enum ints" `Quick test_value_enum_ints;
          Alcotest.test_case "enum strings" `Quick test_value_enum_strings;
          Alcotest.test_case "interleave" `Quick test_value_interleave;
        ] );
      ( "schema+fact",
        [
          Alcotest.test_case "schema basics" `Quick test_schema_basics;
          Alcotest.test_case "schema union" `Quick test_schema_union;
          Alcotest.test_case "fact basics" `Quick test_fact_basics;
          Alcotest.test_case "fact roundtrip" `Quick test_fact_roundtrip;
          Alcotest.test_case "fact order" `Quick test_fact_order;
          Alcotest.test_case "hash covers every column" `Quick
            test_hash_covers_every_column;
        ] );
      ( "instance",
        [
          Alcotest.test_case "basics" `Quick test_instance_basics;
          Alcotest.test_case "set ops" `Quick test_instance_set_ops;
          Alcotest.test_case "disjoint union" `Quick test_instance_disjoint_union;
          Alcotest.test_case "intersects (E_F)" `Quick test_instance_intersects;
          Alcotest.test_case "subsets" `Quick test_instance_subsets;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "select/project" `Quick test_algebra_select_project;
          Alcotest.test_case "join" `Quick test_algebra_join;
          Alcotest.test_case "set ops" `Quick test_algebra_set_ops;
          Alcotest.test_case "product/const" `Quick test_algebra_product_const;
          Alcotest.test_case "errors" `Quick test_algebra_errors;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
