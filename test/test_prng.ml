(* Tests for the SplitMix64 PRNG and its distribution helpers.
   Statistical assertions use generous tolerances on large samples so the
   suite is deterministic (fixed seeds) and robust. *)

let g () = Prng.create ~seed:424242 ()

let mean_of n f =
  let gen = g () in
  let acc = ref 0.0 in
  for _ = 1 to n do acc := !acc +. f gen done;
  !acc /. float_of_int n

let test_determinism () =
  let a = Prng.create ~seed:7 () and b = Prng.create ~seed:7 () in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d equal" i)
      (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seeds_differ () =
  let a = Prng.create ~seed:1 () and b = Prng.create ~seed:2 () in
  Alcotest.(check bool) "different streams" false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_copy_independent () =
  let a = g () in
  let b = Prng.copy a in
  let x = Prng.next_int64 a in
  let y = Prng.next_int64 b in
  Alcotest.(check int64) "copy replays" x y

let test_split () =
  let a = g () in
  let b = Prng.split a in
  let xs = List.init 50 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "split decorrelated" false (xs = ys)

let test_substream () =
  (* substream g i must equal the (i+1)-th successive split, without
     advancing g. *)
  let a = g () in
  let expected =
    List.init 5 (fun _ -> Prng.next_int64 (Prng.split a))
  in
  let b = g () in
  let before = Prng.copy b in
  let got = List.init 5 (fun i -> Prng.next_int64 (Prng.substream b i)) in
  List.iteri
    (fun i (x, y) ->
      Alcotest.(check int64) (Printf.sprintf "substream %d = split^%d" i (i + 1)) x y)
    (List.combine expected got);
  Alcotest.(check int64) "parent not advanced" (Prng.next_int64 before)
    (Prng.next_int64 b);
  (* pure in both arguments: same index, same stream *)
  let c = g () in
  Alcotest.(check int64) "pure"
    (Prng.next_int64 (Prng.substream c 3))
    (Prng.next_int64 (Prng.substream c 3));
  Alcotest.check_raises "negative index" (Invalid_argument "Prng.substream")
    (fun () -> ignore (Prng.substream c (-1)))

let test_substream_decorrelated () =
  (* Adjacent substreams should not produce overlapping prefixes. *)
  let a = g () in
  let draw i =
    let s = Prng.substream a i in
    List.init 50 (fun _ -> Prng.next_int64 s)
  in
  Alcotest.(check bool) "streams 0 and 1 differ" false (draw 0 = draw 1)

let test_float_range () =
  let gen = g () in
  for _ = 1 to 10_000 do
    let f = Prng.float gen in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %g" f
  done

let test_float_mean () =
  let m = mean_of 100_000 Prng.float in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.01)

let test_int_range_and_uniformity () =
  let gen = g () in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int gen 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int n /. 10.0 in
      if Float.abs (float_of_int c -. expected) > 0.05 *. expected then
        Alcotest.failf "bucket %d skewed: %d" i c)
    counts;
  Alcotest.(check int) "int 1 is 0" 0 (Prng.int gen 1);
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int") (fun () ->
      ignore (Prng.int gen 0))

let test_bernoulli () =
  let m = mean_of 100_000 (fun gen -> if Prng.bernoulli gen 0.3 then 1.0 else 0.0) in
  Alcotest.(check bool) "p=0.3" true (Float.abs (m -. 0.3) < 0.01);
  let gen = g () in
  Alcotest.(check bool) "p=0 never" false (Prng.bernoulli gen 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.bernoulli gen 1.0);
  Alcotest.check_raises "p out of range" (Invalid_argument "Prng.bernoulli")
    (fun () -> ignore (Prng.bernoulli gen 1.5))

let test_bernoulli_rational () =
  let p = Rational.of_ints 1 3 in
  let m =
    mean_of 90_000 (fun gen -> if Prng.bernoulli_rational gen p then 1.0 else 0.0)
  in
  Alcotest.(check bool) "p=1/3" true (Float.abs (m -. (1.0 /. 3.0)) < 0.01);
  let gen = g () in
  Alcotest.(check bool) "0 never" false
    (Prng.bernoulli_rational gen Rational.zero);
  Alcotest.(check bool) "1 always" true
    (Prng.bernoulli_rational gen Rational.one)

let test_geometric () =
  (* mean of geometric(p) with support {0,1,...} is (1-p)/p *)
  let m = mean_of 100_000 (fun gen -> float_of_int (Prng.geometric gen 0.25)) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.0) < 0.1);
  let gen = g () in
  Alcotest.(check int) "p=1 is 0" 0 (Prng.geometric gen 1.0);
  Alcotest.check_raises "p=0" (Invalid_argument "Prng.geometric") (fun () ->
      ignore (Prng.geometric gen 0.0))

let test_exponential () =
  let m = mean_of 100_000 (fun gen -> Prng.exponential gen 2.0) in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (m -. 0.5) < 0.02)

let test_uniform_in () =
  let gen = g () in
  for _ = 1 to 1000 do
    let v = Prng.uniform_in gen 3.0 7.0 in
    if v < 3.0 || v >= 7.0 then Alcotest.failf "uniform_in out of range: %g" v
  done

let test_pick_categorical () =
  let gen = g () in
  Alcotest.(check bool) "pick member" true
    (List.mem (Prng.pick gen [| 1; 2; 3 |]) [ 1; 2; 3 ]);
  Alcotest.check_raises "pick empty" (Invalid_argument "Prng.pick") (fun () ->
      ignore (Prng.pick gen ([||] : int array)));
  (* categorical with weights 1:3 -> second bucket ~ 75% *)
  let hits = ref 0 in
  let n = 40_000 in
  let gen = g () in
  for _ = 1 to n do
    if Prng.categorical gen [| 1.0; 3.0 |] = 1 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "categorical ratio" true (Float.abs (frac -. 0.75) < 0.02);
  Alcotest.check_raises "all zero" (Invalid_argument "Prng.categorical")
    (fun () -> ignore (Prng.categorical gen [| 0.0; 0.0 |]))

let test_shuffle () =
  let gen = g () in
  let a = Array.init 100 Fun.id in
  Prng.shuffle gen a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually moved" true (a <> Array.init 100 Fun.id)

let test_sample_without_replacement () =
  let gen = g () in
  let s = Prng.sample_without_replacement gen 10 100 in
  Alcotest.(check int) "size" 10 (List.length s);
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq compare s) = 10);
  Alcotest.(check bool) "in range" true (List.for_all (fun x -> x >= 0 && x < 100) s);
  Alcotest.(check bool) "sorted" true (List.sort compare s = s);
  let all = Prng.sample_without_replacement gen 5 5 in
  Alcotest.(check (list int)) "k = n" [ 0; 1; 2; 3; 4 ] all;
  Alcotest.check_raises "k > n"
    (Invalid_argument "Prng.sample_without_replacement") (fun () ->
      ignore (Prng.sample_without_replacement gen 6 5))

let props =
  [
    QCheck.Test.make ~name:"int g n in range" ~count:500
      (QCheck.int_range 1 1_000_000)
      (fun n ->
        let gen = Prng.create ~seed:n () in
        let v = Prng.int gen n in
        v >= 0 && v < n);
    QCheck.Test.make ~name:"sample_without_replacement valid" ~count:200
      QCheck.(pair (int_range 0 50) (int_range 0 50))
      (fun (a, b) ->
        let k = min a b and n = max a b in
        let gen = Prng.create ~seed:(a + (b * 57)) () in
        let s = Prng.sample_without_replacement gen k n in
        List.length s = k
        && List.length (List.sort_uniq compare s) = k
        && List.for_all (fun x -> x >= 0 && x < n) s);
  ]

let () =
  Alcotest.run "prng"
    [
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "substream" `Quick test_substream;
          Alcotest.test_case "substream decorrelated" `Quick
            test_substream_decorrelated;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Slow test_float_mean;
          Alcotest.test_case "int uniformity" `Slow test_int_range_and_uniformity;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "bernoulli" `Slow test_bernoulli;
          Alcotest.test_case "bernoulli rational" `Slow test_bernoulli_rational;
          Alcotest.test_case "geometric" `Slow test_geometric;
          Alcotest.test_case "exponential" `Slow test_exponential;
          Alcotest.test_case "uniform_in" `Quick test_uniform_in;
          Alcotest.test_case "pick/categorical" `Quick test_pick_categorical;
          Alcotest.test_case "shuffle" `Quick test_shuffle;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
