(* The enumeration oracle itself, and the satellite checks that lean on
   it: Corollary 4.7 expected size, Proposition 3.4 tail decay, a
   chi-squared goodness-of-fit of the world sampler against the oracle's
   exact world probabilities, and the located-error paths of the parser
   and the corpus loader. *)

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn
let rcheck = Alcotest.testable Rational.pp Rational.equal

let table2 =
  [ (Fact.make "R" [ i 1 ], q 1 2); (Fact.make "R" [ i 2 ], q 1 4) ]

(* ------------------------------------------------------------------ *)
(* Universe construction *)
(* ------------------------------------------------------------------ *)

let test_ti_universe () =
  let u = Oracle.of_ti_facts table2 in
  Alcotest.(check int) "worlds" 4 (Oracle.num_worlds u);
  Alcotest.check rcheck "mass" Rational.one (Oracle.mass u);
  Alcotest.check rcheck "marginal R(1)" (q 1 2)
    (Oracle.marginal u (Fact.make "R" [ i 1 ]));
  Alcotest.check rcheck "E(S_D) = sum p_f" (q 3 4) (Oracle.expected_size u);
  (* P(exists x. R(x)) = 1 - 1/2 * 3/4 = 5/8, same in both semantics. *)
  let phi = parse "exists x. R(x)" in
  Alcotest.check rcheck "exists truncated" (q 5 8)
    (Oracle.query_prob ~semantics:Oracle.Truncated u phi);
  Alcotest.check rcheck "exists limit" (q 5 8)
    (Oracle.query_prob ~semantics:Oracle.Limit u phi);
  (* forall x. R(x): 1/8 on the truncated domain {1, 2}; 0 in the limit
     (the padding value is never in R). *)
  let all = parse "forall x. R(x)" in
  Alcotest.check rcheck "forall truncated" (q 1 8)
    (Oracle.query_prob ~semantics:Oracle.Truncated u all);
  Alcotest.check rcheck "forall limit" Rational.zero
    (Oracle.query_prob ~semantics:Oracle.Limit u all)

let test_ti_rejects () =
  Alcotest.check_raises "duplicate fact"
    (Invalid_argument "Oracle.of_ti_facts: duplicate fact R(1)")
    (fun () ->
      ignore
        (Oracle.of_ti_facts
           [ (Fact.make "R" [ i 1 ], q 1 2); (Fact.make "R" [ i 1 ], q 1 4) ]));
  (match
     Oracle.of_ti_facts [ (Fact.make "R" [ i 1 ], q 3 2) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability above 1 accepted");
  match
    Oracle.of_ti_facts (List.init 17 (fun k -> (Fact.make "R" [ i k ], q 1 2)))
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "17 facts accepted"

let test_bid_universe () =
  let blocks =
    [
      ("b0", [ (Fact.make "R" [ i 1 ], q 1 2); (Fact.make "R" [ i 2 ], q 1 4) ]);
      ("b1", [ (Fact.make "S" [ i 1 ], q 1 3) ]);
    ]
  in
  let u = Oracle.of_bid_blocks blocks in
  (* 3 options for b0 (two alternatives + slack) x 2 for b1. *)
  Alcotest.(check int) "worlds" 6 (Oracle.num_worlds u);
  Alcotest.check rcheck "mass" Rational.one (Oracle.mass u);
  Alcotest.check rcheck "marginal" (q 1 4)
    (Oracle.marginal u (Fact.make "R" [ i 2 ]));
  (* Within-block exclusivity. *)
  Alcotest.check rcheck "exclusive" Rational.zero
    (Oracle.query_prob u (parse "R(1) & R(2)"));
  Alcotest.check rcheck "E(S)" (q 13 12) (Oracle.expected_size u)

let test_condition () =
  let u = Oracle.of_ti_facts table2 in
  let c =
    Oracle.condition u (fun inst -> Instance.mem (Fact.make "R" [ i 1 ]) inst)
  in
  Alcotest.check rcheck "conditional mass" Rational.one (Oracle.mass c);
  Alcotest.check rcheck "P(R(2) | R(1)) = P(R(2))" (q 1 4)
    (Oracle.marginal c (Fact.make "R" [ i 2 ]))

let test_enclosure () =
  let u = Oracle.of_ti_facts ~tail:(q 1 8) table2 in
  let e = Oracle.enclosure u (parse "exists x. R(x)") in
  Alcotest.check rcheck "width = tail" (q 1 8) (Oracle.width e);
  Alcotest.check rcheck "lo = cond * (1 - tail)"
    (Rational.mul (q 5 8) (q 7 8))
    e.Oracle.lo;
  Alcotest.(check bool) "not exact" true (Option.is_none (Oracle.exact e));
  let u0 = Oracle.of_ti_facts table2 in
  let e0 = Oracle.enclosure u0 (parse "exists x. R(x)") in
  (match Oracle.exact e0 with
  | Some v -> Alcotest.check rcheck "exact when tail 0" (q 5 8) v
  | None -> Alcotest.fail "tail-0 enclosure not exact")

let test_float_comparisons () =
  Alcotest.(check bool) "nan never le" false
    (Oracle.float_le_rational Float.nan Rational.one);
  Alcotest.(check bool) "nan never ge" false
    (Oracle.rational_le_float Rational.zero Float.nan);
  Alcotest.(check bool) "neg_inf le" true
    (Oracle.float_le_rational Float.neg_infinity Rational.zero);
  Alcotest.(check bool) "le inf" true
    (Oracle.rational_le_float Rational.one Float.infinity);
  (* 0.1 the float is strictly above 1/10 the rational: the comparison
     must be exact, not within some epsilon. *)
  Alcotest.(check bool) "0.1 > 1/10 exactly" false
    (Oracle.float_le_rational 0.1 (q 1 10))

(* ------------------------------------------------------------------ *)
(* Size distribution: Corollary 4.7 and Proposition 3.4 *)
(* ------------------------------------------------------------------ *)

let arb_ti_facts =
  let open QCheck.Gen in
  let gen =
    let* n = int_range 1 6 in
    let* probs = list_repeat n (map (fun k -> q k 12) (int_range 0 12)) in
    return (List.mapi (fun k p -> (Fact.make "R" [ i k ], p)) probs)
  in
  QCheck.make
    ~print:(fun fs ->
      String.concat "; "
        (List.map
           (fun (f, p) ->
             Fact.to_string f ^ " " ^ Rational.to_string p)
           fs))
    gen

let prop_expected_size =
  QCheck.Test.make ~name:"Corollary 4.7: E(S_D) = sum p_f exactly" ~count:100
    arb_ti_facts (fun facts ->
      let u = Oracle.of_ti_facts facts in
      Rational.equal (Oracle.expected_size u)
        (Rational.sum (List.map snd facts)))

let prop_size_tail =
  QCheck.Test.make
    ~name:"Proposition 3.4: Pr(S_D >= n) is antitone and hits 0" ~count:100
    arb_ti_facts (fun facts ->
      let u = Oracle.of_ti_facts facts in
      let worlds = Oracle.worlds u in
      let tails =
        List.init (List.length facts + 2) (fun n ->
            Size_dist.tail_size_probability worlds n)
      in
      (* antitone in n, total mass at n = 0, and exactly 0 beyond the
         largest possible world. *)
      let rec antitone = function
        | a :: (b :: _ as rest) -> Rational.(b <= a) && antitone rest
        | _ -> true
      in
      antitone tails
      && Rational.is_one (List.hd tails)
      && Rational.is_zero (List.nth tails (List.length facts + 1)))

let test_size_distribution_consistency () =
  let u = Oracle.of_ti_facts table2 in
  let dist = Oracle.size_distribution u in
  Alcotest.check rcheck "sums to 1" Rational.one
    (Rational.sum (List.map snd dist));
  let mean =
    Rational.sum
      (List.map (fun (k, p) -> Rational.mul (Rational.of_int k) p) dist)
  in
  Alcotest.check rcheck "mean matches" (Oracle.expected_size u) mean;
  (* Against the independent Size_dist computation. *)
  let worlds = Oracle.worlds u in
  List.iter
    (fun n ->
      let tail_direct = Size_dist.tail_size_probability worlds n in
      let tail_dist =
        Rational.sum
          (List.filter_map
             (fun (k, p) -> if k >= n then Some p else None)
             dist)
      in
      Alcotest.check rcheck
        (Printf.sprintf "Pr(S >= %d)" n)
        tail_direct tail_dist)
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Chi-squared goodness of fit: sampler vs oracle *)
(* ------------------------------------------------------------------ *)

let test_sampler_chi_squared () =
  let facts =
    [
      (Fact.make "R" [ i 1 ], q 1 2);
      (Fact.make "R" [ i 2 ], q 1 4);
      (Fact.make "S" [ i 1 ], q 3 4);
      (Fact.make "S" [ i 2 ], q 1 3);
    ]
  in
  let ti = Ti_table.create facts in
  let u = Oracle.of_ti_facts facts in
  let key inst =
    Instance.to_set inst |> Fact.Set.elements |> List.map Fact.to_string
    |> String.concat ";"
  in
  let expected = List.map (fun (w, p) -> (key w, p)) (Oracle.worlds u) in
  Alcotest.(check int) "16 worlds" 16 (List.length expected);
  let samples = 20_000 in
  let counts = Hashtbl.create 16 in
  let g = Prng.create ~seed:1234 () in
  for _ = 1 to samples do
    let k = key (Ti_table.sample ti g) in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  (* Every sampled world must be a world of the oracle. *)
  Hashtbl.iter
    (fun k _ ->
      if not (List.mem_assoc k expected) then
        Alcotest.fail ("sampler produced an impossible world: " ^ k))
    counts;
  let chi2 =
    List.fold_left
      (fun acc (k, p) ->
        let np = float_of_int samples *. Rational.to_float p in
        let obs = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) in
        acc +. (((obs -. np) ** 2.0) /. np))
      0.0 expected
  in
  (* 0.999 quantile of chi-squared with df = 15 is 37.70; the seed is
     fixed, so this either always passes or never does. *)
  if chi2 >= 37.70 then
    Alcotest.fail
      (Printf.sprintf "chi-squared %.2f exceeds the 0.999 quantile 37.70" chi2)

(* ------------------------------------------------------------------ *)
(* Located errors: parser, safe plans, corpus loader *)
(* ------------------------------------------------------------------ *)

let test_parser_errors () =
  List.iter
    (fun s ->
      match Fo_parse.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed" s))
    [
      "exists x R(x)";
      "R(";
      "x =";
      ")";
      "forall . R(x)";
      "exists x. R(x) &";
      "R(x) | | S(x)";
    ];
  (* and the error message carries a position *)
  match Fo_parse.parse "exists x R(x)" with
  | Error msg ->
    let has_digit = String.exists (fun c -> c >= '0' && c <= '9') msg in
    Alcotest.(check bool) "error is located" true has_digit
  | Ok _ -> Alcotest.fail "parsed"

let test_safe_plan_fallback () =
  let ti =
    Ti_table.create
      [
        (Fact.make "R" [ i 1 ], q 1 2);
        (Fact.make "S" [ i 1; i 2 ], q 1 2);
        (Fact.make "T" [ i 2 ], q 1 2);
      ]
  in
  (* The canonical unsafe query H0 falls back (None) ... *)
  let h0 = parse "exists x y. R(x) & S(x, y) & T(y)" in
  Alcotest.(check bool) "H0 is unsafe" true
    (Option.is_none (Query_eval.boolean_safe ti h0));
  (* ... and the BDD fallback still matches the oracle exactly. *)
  let u = Oracle.of_ti_table ti in
  Alcotest.check rcheck "fallback matches oracle" (Oracle.query_prob u h0)
    (Query_eval.boolean ti h0);
  (* A hierarchical CQ takes the safe plan and agrees too. *)
  let safe = parse "exists x. R(x)" in
  match Query_eval.boolean_safe ti safe with
  | None -> Alcotest.fail "hierarchical query not planned"
  | Some p -> Alcotest.check rcheck "plan matches oracle" (Oracle.query_prob u safe) p

let test_corpus_loader_errors () =
  let located lines expect_frag =
    match Fuzzer.of_lines ~file:"bad.case" lines with
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S in %S" expect_frag msg)
        true
        (let nl = String.length expect_frag and ml = String.length msg in
         let rec go i =
           i + nl <= ml && (String.sub msg i nl = expect_frag || go (i + 1))
         in
         go 0)
    | _ -> Alcotest.fail "malformed corpus accepted"
  in
  located [ "kind ti"; "query exists x. R(x)"; "frobnicate 3" ] "bad.case:3";
  located [ "kind nope"; "query true" ] "bad.case:1";
  located [ "kind ti"; "query exists x R(x)" ] "bad.case:2";
  located [ "query true" ] "no kind";
  located [ "kind ti" ] "no query";
  located [ "kind ti"; "query true"; "ti R(1) garbage" ] "bad.case";
  (* arity mismatch inside a table line is caught by the table parser *)
  located [ "kind ti"; "query true"; "ti R(1 2/3" ] "bad.case"

let () =
  Alcotest.run "oracle"
    [
      ( "universes",
        [
          Alcotest.test_case "TI enumeration" `Quick test_ti_universe;
          Alcotest.test_case "TI rejections" `Quick test_ti_rejects;
          Alcotest.test_case "BID enumeration" `Quick test_bid_universe;
          Alcotest.test_case "conditioning" `Quick test_condition;
          Alcotest.test_case "tail enclosure" `Quick test_enclosure;
          Alcotest.test_case "float comparisons" `Quick test_float_comparisons;
        ] );
      ( "size",
        Alcotest.test_case "size distribution consistency" `Quick
          test_size_distribution_consistency
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_expected_size; prop_size_tail ] );
      ( "statistics",
        [ Alcotest.test_case "sampler chi-squared" `Quick test_sampler_chi_squared ] );
      ( "errors",
        [
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
          Alcotest.test_case "safe plan fallback" `Quick test_safe_plan_fallback;
          Alcotest.test_case "corpus loader errors" `Quick test_corpus_loader_errors;
        ] );
    ]
