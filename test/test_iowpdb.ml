(* Tests for the infinite open-world core: fact sources, the countable TI
   construction (Section 4.1), countable BID PDBs (Section 4.4),
   completions (Section 5) and the truncation approximation (Section 6). *)

let i n = Value.Int n
let q = Rational.of_ints
let fact r args = Fact.make r (List.map i args)
let parse = Fo_parse.parse_exn

let check_q msg expected actual =
  Alcotest.(check string) msg (Rational.to_string expected)
    (Rational.to_string actual)

let r_fact k = fact "R" [ k ]

(* p_i = (1/2)^(i+1): mass 1, tails 2^-n. *)
let geo_source () =
  Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
    ~facts:(fun k -> r_fact k)
    ()

(* ------------------------------------------------------------------ *)
(* Fact_source *)
(* ------------------------------------------------------------------ *)

let test_source_geometric () =
  let s = geo_source () in
  (match Fact_source.nth s 0 with
   | Some (f, p) ->
     Alcotest.(check string) "first fact" "R(0)" (Fact.to_string f);
     check_q "first prob" Rational.half p
   | None -> Alcotest.fail "nonempty");
  check_q "prefix sum 3" (q 7 8) (Fact_source.prefix_sum s 3);
  (match Fact_source.tail_mass s 3 with
   | Some t -> Alcotest.(check bool) "tail ~1/8" true (Float.abs (t -. 0.125) < 1e-9)
   | None -> Alcotest.fail "tail expected");
  Alcotest.(check bool) "converges" true (Fact_source.converges s)

let test_source_prob_lookup () =
  let s = geo_source () in
  (match Fact_source.prob s (r_fact 5) with
   | Some p -> check_q "p_5 = 2^-6" (q 1 64) p
   | None -> Alcotest.fail "should find R(5)");
  Alcotest.(check bool) "alien fact not found" true
    (Fact_source.prob s (fact "Z" [ 0 ]) = None)

let test_source_telescoping () =
  let s = Fact_source.telescoping ~mass:Rational.one ~facts:r_fact () in
  (* p_0 = 1/2, p_1 = 1/6, p_2 = 1/12 *)
  (match Fact_source.nth s 1 with
   | Some (_, p) -> check_q "p_1" (q 1 6) p
   | None -> Alcotest.fail "nonempty");
  (* tail(n) = 1/(n+1) exactly *)
  (match Fact_source.tail_mass s 9 with
   | Some t -> Alcotest.(check bool) "tail 1/10" true (Float.abs (t -. 0.1) < 1e-9)
   | None -> Alcotest.fail "tail expected");
  (* total mass: prefix + tail ~ 1 *)
  (match Fact_source.total_mass_upper s 100 with
   | Some m -> Alcotest.(check bool) "mass ~1" true (Float.abs (m -. 1.0) < 0.02)
   | None -> Alcotest.fail "mass expected")

let test_source_divergent () =
  let s = Fact_source.divergent_harmonic ~scale:Rational.one ~facts:r_fact () in
  Alcotest.(check bool) "diverges" false (Fact_source.converges s);
  Alcotest.(check bool) "no truncation point" true
    (Fact_source.prefix_for_tail ~max_n:4096 s 0.1 = None)

let test_source_of_list_validation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Fact_source finite: duplicate fact R(1)") (fun () ->
      ignore
        (Fact_source.of_list [ (r_fact 1, q 1 2); (r_fact 1, q 1 3) ]));
  Alcotest.check_raises "zero prob"
    (Invalid_argument "Fact_source finite: probability 0 for R(1) not in (0,1]")
    (fun () -> ignore (Fact_source.of_list [ (r_fact 1, Rational.zero) ]));
  (* finite source has exactly-zero tail past its end *)
  let s = Fact_source.of_list [ (r_fact 1, q 1 2) ] in
  Alcotest.(check (option (float 0.0))) "tail 0" (Some 0.0)
    (Fact_source.tail_mass s 5)

let test_source_truncate () =
  let s = geo_source () in
  let t = Fact_source.truncate s 3 in
  Alcotest.(check int) "3 facts" 3 (Ti_table.size t);
  check_q "marginal preserved" (q 1 4) (Ti_table.prob t (r_fact 1))

let test_source_prefix_for_tail () =
  let s = geo_source () in
  (* tail(n) = 2^-n (+ulp); want <= 0.01 -> n = 7 *)
  (match Fact_source.prefix_for_tail s 0.01 with
   | Some n -> Alcotest.(check int) "n(0.01)" 7 n
   | None -> Alcotest.fail "expected truncation point")

let test_source_append_interleave_map () =
  let head = [ (fact "A" [ 0 ], q 9 10) ] in
  let s = Fact_source.append_finite head (geo_source ()) in
  (match Fact_source.nth s 0 with
   | Some (f, _) -> Alcotest.(check string) "head first" "A(0)" (Fact.to_string f)
   | None -> Alcotest.fail "nonempty");
  (match Fact_source.nth s 1 with
   | Some (f, _) -> Alcotest.(check string) "then tail" "R(0)" (Fact.to_string f)
   | None -> Alcotest.fail "nonempty");
  (* sound tails on the composite *)
  (match Fact_source.tail_mass s 0 with
   | Some t -> Alcotest.(check bool) "head+tail mass" true (t >= 1.9 -. 1e-6)
   | None -> Alcotest.fail "tail expected");
  let mapped =
    Fact_source.map_facts
      (fun f -> Fact.make "Q" (Fact.args f))
      (geo_source ())
  in
  (match Fact_source.nth mapped 0 with
   | Some (f, _) -> Alcotest.(check string) "renamed" "Q(0)" (Fact.to_string f)
   | None -> Alcotest.fail "nonempty");
  let s_fact k = fact "S" [ k ] in
  let both =
    Fact_source.interleave (geo_source ())
      (Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
         ~facts:s_fact ())
  in
  (match (Fact_source.nth both 0, Fact_source.nth both 1) with
   | Some (f0, _), Some (f1, _) ->
     Alcotest.(check string) "alternate 0" "R(0)" (Fact.to_string f0);
     Alcotest.(check string) "alternate 1" "S(0)" (Fact.to_string f1)
   | _ -> Alcotest.fail "nonempty");
  Alcotest.(check bool) "interleaved converges" true (Fact_source.converges both)

let test_source_deep_certificate () =
  (* Regression: [converges] used to probe a fixed ladder {0, 1, 16, 1024}
     and declared any source whose certificate first answers deeper than
     that divergent — sending Approx_eval down the "diverges" error path
     for sources that merely converge slowly. *)
  let deep () =
    Fact_source.make ~name:"deep-cert"
      ~enum:
        (Seq.map
           (fun k -> (r_fact k, Rational.pow Rational.half (k + 1)))
           (Seq.ints 0))
      ~tail:(fun n -> if n >= 2000 then Some 0.6 else None)
      ()
  in
  Alcotest.(check bool) "certificate found past the old ladder" true
    (Fact_source.converges (deep ()));
  Alcotest.(check bool) "no certificate below its depth" false
    (Fact_source.converges ~max_n:1024 (deep ()));
  (* The certificate exists but 0.6 is too weak for any eps in (0, 1/2):
     the failure must be diagnosed as "too slowly", not divergence. *)
  let contains ~sub msg =
    let ls = String.length sub and lm = String.length msg in
    let rec find i = i + ls <= lm && (String.sub msg i ls = sub || find (i + 1)) in
    find 0
  in
  match Approx_eval.boolean (deep ()) ~eps:0.1 (parse "exists x. R(x)") with
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      ("mentions slow convergence: " ^ msg)
      true
      (contains ~sub:"converges too slowly" msg)
  | _ -> Alcotest.fail "a 0.6 tail bound cannot certify eps = 0.1"

(* ------------------------------------------------------------------ *)
(* Countable_ti (Section 4.1) *)
(* ------------------------------------------------------------------ *)

let test_cti_rejects_divergent () =
  let s = Fact_source.divergent_harmonic ~scale:Rational.one ~facts:r_fact () in
  (match Countable_ti.create s with
   | exception Invalid_argument msg ->
     Alcotest.(check bool) "mentions theorem 4.8" true
       (String.length msg > 0
        && Option.is_some
             (String.index_opt msg '4'))
   | _ -> Alcotest.fail "divergent source must be rejected (Theorem 4.8)")

let test_cti_marginals () =
  let t = Countable_ti.create (geo_source ()) in
  (match Countable_ti.marginal t (r_fact 3) with
   | Some p -> check_q "p_3" (q 1 16) p
   | None -> Alcotest.fail "marginal expected")

let test_cti_expected_size () =
  let t = Countable_ti.create (geo_source ()) in
  let lo, hi = Countable_ti.expected_size_bounds t ~n:30 in
  (* E(S) = sum 2^-(i+1) = 1 (Corollary 4.7: finite) *)
  Alcotest.(check bool) "brackets 1" true (lo <= 1.0 && 1.0 <= hi);
  Alcotest.(check bool) "tight" true (hi -. lo < 1e-6)

let test_cti_partition_sums_to_one () =
  let t = Countable_ti.create (geo_source ()) in
  (* Lemma 4.3's finite core: the 2^n subset sum of prefix measures is
     exactly 1 for every n — exact rational arithmetic. *)
  List.iter
    (fun n ->
      check_q
        (Printf.sprintf "partition n=%d" n)
        Rational.one
        (Countable_ti.partition_prefix_sum t ~n))
    [ 0; 1; 2; 5; 10 ]

let test_cti_instance_prob () =
  let t = Countable_ti.create (geo_source ()) in
  let d = Instance.of_list [ r_fact 0 ] in
  (* P({R(0)}) = 1/2 * prod_{i>=1}(1 - 2^-(i+1)) *)
  let bounds = Countable_ti.instance_prob_bounds t ~n:40 d in
  let prefix20 = Countable_ti.instance_prob_prefix t ~n:20 d in
  let prefix40 = Countable_ti.instance_prob_prefix t ~n:40 d in
  (* prefix is antitone and the bounds bracket the limit *)
  Alcotest.(check bool) "prefix antitone" true
    (Rational.compare prefix40 prefix20 <= 0);
  Alcotest.(check bool) "upper >= lower" true
    (Interval.lo bounds <= Interval.hi bounds);
  Alcotest.(check bool) "prefix above lower bound" true
    (Rational.to_float prefix40 >= Interval.lo bounds -. 1e-12);
  (* numeric reference: 0.5 * prod_{i>=1}(1-2^-(i+1)) = 0.28878809508...;
     the enclosure at n=40 is ulp-tight, so check overlap with a small
     bracket around the constant rather than containment of a truncated
     literal. *)
  Alcotest.(check bool) "contains reference" true
    (Interval.intersect bounds (Interval.make 0.2887880945 0.2887880955)
     <> None);
  Alcotest.check_raises "beyond prefix"
    (Invalid_argument
       "Countable_ti.instance_prob_bounds: instance has facts beyond the first n")
    (fun () ->
      ignore (Countable_ti.instance_prob_bounds t ~n:2 (Instance.of_list [ r_fact 10 ])))

let test_cti_empty_world () =
  let t = Countable_ti.create (geo_source ()) in
  let b = Countable_ti.empty_world_prob_bounds t ~n:40 in
  (* prod (1 - 2^-i) for i>=1 = 0.28878809508... (digital search tree
     constant); the enclosure is ulp-tight, so test overlap with a small
     bracket around the constant. *)
  Alcotest.(check bool) "pentagonal-number constant" true
    (Interval.intersect b (Interval.make 0.2887880945 0.2887880955) <> None);
  Alcotest.(check bool) "positive" true (Interval.lo b > 0.0)

let test_cti_truncate_for_mass () =
  let t = Countable_ti.create (geo_source ()) in
  match Countable_ti.truncate_for_mass t ~eps:0.01 with
  | Some (n, table) ->
    Alcotest.(check int) "n = 7" 7 n;
    Alcotest.(check int) "table size" 7 (Ti_table.size table)
  | None -> Alcotest.fail "expected truncation"

let test_cti_truncation_resume_cache () =
  (* Regression for the anytime loop's access pattern: tightening eps
     must resume the tail-mass search at the previous answer instead of
     re-galloping from index 0, and repeating the same eps must probe
     nothing at all.  Probes are observable on the source.tail_probe
     counter. *)
  let probes = Stats.counter "source.tail_probe" in
  let delta f =
    let before = Stats.count probes in
    let r = f () in
    (r, Stats.count probes - before)
  in
  let t = Countable_ti.create (geo_source ()) in
  let r1, fresh = delta (fun () -> Countable_ti.truncate_for_mass t ~eps:0.1) in
  Alcotest.(check bool) "first call probes" true (fresh > 0);
  let r2, again = delta (fun () -> Countable_ti.truncate_for_mass t ~eps:0.1) in
  Alcotest.(check int) "same eps probes nothing" 0 again;
  (match (r1, r2) with
  | Some (n1, _), Some (n2, _) -> Alcotest.(check int) "same answer" n1 n2
  | _ -> Alcotest.fail "truncation must exist");
  (* Tightening: the resumed search gallops from the cached n, so it
     costs strictly fewer probes than the same search on a fresh value. *)
  let resumed_r, resumed =
    delta (fun () -> Countable_ti.truncate_for_mass t ~eps:0.004)
  in
  let t' = Countable_ti.create (geo_source ()) in
  let fresh_r, from_scratch =
    delta (fun () -> Countable_ti.truncate_for_mass t' ~eps:0.004)
  in
  (match (resumed_r, fresh_r) with
  | Some (n1, tbl1), Some (n2, tbl2) ->
    Alcotest.(check int) "resumed = fresh answer" n2 n1;
    Alcotest.(check int) "same table" (Ti_table.size tbl2) (Ti_table.size tbl1)
  | _ -> Alcotest.fail "truncation must exist");
  Alcotest.(check bool)
    (Printf.sprintf "resumed %d < from-scratch %d probes" resumed from_scratch)
    true
    (resumed < from_scratch);
  (* Loosening falls back to a from-scratch search but stays correct. *)
  match Countable_ti.truncate_for_mass t ~eps:0.1 with
  | Some (n, _) -> Alcotest.(check int) "loosened answer" 4 n
  | None -> Alcotest.fail "loosened truncation must exist"

let test_cti_sampling () =
  let t = Countable_ti.create (geo_source ()) in
  let g = Prng.create ~seed:2024 () in
  let n = 20_000 in
  let sizes = ref 0 and hit0 = ref 0 in
  for _ = 1 to n do
    let w = Countable_ti.sample t g in
    sizes := !sizes + Instance.size w;
    if Instance.mem (r_fact 0) w then incr hit0
  done;
  let mean_size = float_of_int !sizes /. float_of_int n in
  Alcotest.(check bool) "mean size ~ E(S)=1" true (Float.abs (mean_size -. 1.0) < 0.05);
  let m0 = float_of_int !hit0 /. float_of_int n in
  Alcotest.(check bool) "marginal R(0) ~ 1/2" true (Float.abs (m0 -. 0.5) < 0.02)

let test_cti_sampled_independence () =
  let t = Countable_ti.create (geo_source ()) in
  let gap =
    Sampler.independence_gap ~seed:5 ~samples:30_000
      (fun g -> Countable_ti.sample t g)
      (r_fact 0) (r_fact 1)
  in
  Alcotest.(check bool) "independence gap small" true (gap < 0.01)

let test_sampler_draws_reproducible () =
  (* Regression: [draws] used to thread one mutable generator through
     [Seq.init], so a second traversal of the (non-memoizing) sequence
     continued the stream and produced different values.  Each draw now
     runs on its own substream of the seed. *)
  let t = Countable_ti.create (geo_source ()) in
  let seq =
    Sampler.draws ~seed:31 ~samples:20 (fun g -> Countable_ti.sample t g)
  in
  let first = List.map Instance.to_string (List.of_seq seq) in
  let second = List.map Instance.to_string (List.of_seq seq) in
  Alcotest.(check (list string)) "two traversals identical" first second;
  (* order-independence: element k alone equals element k of a full
     traversal *)
  let nth k = Instance.to_string (Option.get (Seq.uncons (Seq.drop k seq) |> Option.map fst)) in
  Alcotest.(check string) "random access matches" (List.nth first 7) (nth 7);
  Alcotest.(check bool) "draws differ across indices" true
    (List.length (List.sort_uniq compare first) > 1)

(* ------------------------------------------------------------------ *)
(* Countable_bid (Section 4.4) *)
(* ------------------------------------------------------------------ *)

(* Blocks B_k = { T(k, 0), T(k, 1) } with probabilities 2^-(k+2) each:
   block mass 2^-(k+1), total mass 1/2. *)
let bid_blocks () =
  Seq.map
    (fun k ->
      let p = Rational.pow Rational.half (k + 2) in
      Countable_bid.block_finite
        ~id:(Printf.sprintf "B%d" k)
        [ (fact "T" [ k; 0 ], p); (fact "T" [ k; 1 ], p) ])
    (Seq.ints 0)

let bid () =
  Countable_bid.create ~name:"geo-bid" ~blocks:(bid_blocks ())
    ~tail:(fun n -> Some (Float.succ (0.5 ** float_of_int (n + 1))))
    ()

let test_cbid_create_and_masses () =
  let b = bid () in
  (match Countable_bid.nth_block b 0 with
   | Some blk ->
     Alcotest.(check string) "id" "B0" (Countable_bid.block_id blk);
     check_q "mass" Rational.half (Countable_bid.block_mass blk);
     check_q "slack" Rational.half (Countable_bid.block_slack blk)
   | None -> Alcotest.fail "block expected");
  let lo, hi = Countable_bid.expected_size_bounds b ~n:30 in
  Alcotest.(check bool) "E(S) ~ 1" true (lo <= 1.0 +. 1e-9 && 1.0 <= hi +. 1e-9 && hi -. lo < 1e-6)

let test_cbid_rejects_divergent () =
  let blocks =
    Seq.map
      (fun k ->
        Countable_bid.block_finite
          ~id:(Printf.sprintf "B%d" k)
          [ (fact "T" [ k; 0 ], Rational.half) ])
      (Seq.ints 0)
  in
  Alcotest.check_raises "no certificate"
    (Invalid_argument
       "Countable_bid.create: divergent-bid has no convergence certificate \
        (Theorem 4.15)") (fun () ->
      ignore
        (Countable_bid.create ~name:"divergent-bid" ~blocks
           ~tail:(fun _ -> None)
           ()))

let test_cbid_marginal () =
  let b = bid () in
  (match Countable_bid.marginal b (fact "T" [ 1; 1 ]) with
   | Some p -> check_q "p" (q 1 8) p
   | None -> Alcotest.fail "marginal expected")

let test_cbid_truncate () =
  let b = bid () in
  let table = Countable_bid.truncate b ~n_blocks:4 ~alts_per_block:2 in
  Alcotest.(check int) "4 blocks" 4 (Bid_table.num_blocks table);
  Alcotest.(check int) "8 facts" 8 (Bid_table.size table);
  check_q "preserved marginal" (q 1 8) (Bid_table.prob table (fact "T" [ 1; 1 ]))

let test_cbid_sampling_laws () =
  let b = bid () in
  (* exclusivity: zero violations *)
  Alcotest.(check int) "exclusivity" 0
    (Sampler.exclusivity_violations ~seed:11 ~samples:20_000
       (fun g -> Countable_bid.sample b g)
       (fun f ->
         match Fact.args f with
         | Value.Int k :: _ -> Some (string_of_int k)
         | _ -> None));
  (* marginal of T(0,0) ~ 1/4 *)
  let m =
    Sampler.estimate_marginal ~seed:12 ~samples:30_000
      (fun g -> Countable_bid.sample b g)
      (fact "T" [ 0; 0 ])
  in
  Alcotest.(check bool) "marginal ~1/4" true (Float.abs (m -. 0.25) < 0.02);
  (* cross-block independence *)
  let gap =
    Sampler.independence_gap ~seed:13 ~samples:30_000
      (fun g -> Countable_bid.sample b g)
      (fact "T" [ 0; 0 ]) (fact "T" [ 1; 0 ])
  in
  Alcotest.(check bool) "cross-block independent" true (gap < 0.01)

let test_cbid_infinite_block () =
  (* One block with countably many alternatives T(0,j) ~ 2^-(j+2), block
     mass 1/2, plus the exact mass passed explicitly. *)
  let alts = Seq.map (fun j -> (fact "U" [ j ], Rational.pow Rational.half (j + 2))) (Seq.ints 0) in
  let blk = Countable_bid.block ~id:"inf" ~mass:Rational.half alts in
  check_q "mass" Rational.half (Countable_bid.block_mass blk);
  let some_alts = Countable_bid.alternatives ~limit:5 blk in
  Alcotest.(check int) "limited" 5 (List.length some_alts);
  let b =
    Countable_bid.create ~name:"one-inf-block"
      ~blocks:(Seq.return blk)
      ~tail:(fun n -> Some (if n >= 1 then 0.0 else 0.5))
      ()
  in
  let g = Prng.create ~seed:3 () in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    let w = Countable_bid.sample b g in
    if Instance.size w > 1 then Alcotest.fail "at most one fact per block";
    if Instance.mem (fact "U" [ 0 ]) w then incr hits
  done;
  let m = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "U(0) ~ 1/4" true (Float.abs (m -. 0.25) < 0.02)

(* ------------------------------------------------------------------ *)
(* Completion (Section 5) *)
(* ------------------------------------------------------------------ *)

(* The paper's Example 5.7 original table. *)
let ex57_ti =
  Ti_table.create
    [
      (Fact.make "R" [ Value.Str "A"; i 1 ], q 8 10);
      (Fact.make "R" [ Value.Str "B"; i 1 ], q 4 10);
      (Fact.make "R" [ Value.Str "B"; i 2 ], q 5 10);
      (Fact.make "R" [ Value.Str "C"; i 3 ], q 9 10);
    ]

(* New facts R(x, i) for (x, i) outside the table, with probability
   2^-i spread over the four names: enumerate diagonally. *)
let ex57_news () =
  let names = [| "A"; "B"; "C"; "D" |] in
  let orig = Fact.Set.of_list (Ti_table.support ex57_ti) in
  let all =
    Seq.concat_map
      (fun idx ->
        let x = names.(idx mod 4) and iv = (idx / 4) + 1 in
        let f = Fact.make "R" [ Value.Str x; i iv ] in
        if Fact.Set.mem f orig then Seq.empty
        else Seq.return (f, Rational.pow Rational.half iv))
      (Seq.ints 0)
  in
  (* tail bound: entries at index >= n have value-index >= n/4 + 1; each
     value-index level contributes at most 4 * 2^-i; total <= 8 * 2^-(n/4). *)
  Fact_source.make ~name:"ex57" ~enum:all
    ~tail:(fun n -> Some (8.0 *. (0.5 ** float_of_int (n / 4))))
    ()

let test_completion_cc_exact () =
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  (* Theorem 5.5: the completion condition holds exactly at every
     truncation level. *)
  List.iter
    (fun n ->
      check_q
        (Printf.sprintf "CC gap at n=%d" n)
        Rational.zero
        (Completion.completion_condition_gap c ~n))
    [ 0; 1; 2; 4 ]

let test_completion_marginals () =
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  (* original marginals preserved *)
  (match Completion.marginal c (Fact.make "R" [ Value.Str "A"; i 1 ]) with
   | Some p -> check_q "original preserved" (q 8 10) p
   | None -> Alcotest.fail "marginal expected");
  (* new fact gets its policy probability: R(D, 1) ~ 1/2 *)
  (match Completion.marginal c (Fact.make "R" [ Value.Str "D"; i 1 ]) with
   | Some p -> check_q "new fact" Rational.half p
   | None -> Alcotest.fail "new marginal expected")

let test_completion_query_exhausted_certificate () =
  (* Regression: [query_prob] searched the truncation point, threw the
     certified tail value away, and re-asked the certificate afterwards;
     with a certificate that cannot answer twice the record's [tail_mass]
     came out nan, poisoning the certified bounds.  The value observed
     during the search is now threaded through ([Approx_eval.boolean]'s
     PR-1 fix, applied here). *)
  let budget = Hashtbl.create 8 in
  let news =
    Fact_source.make ~name:"probe-once-news"
      ~enum:
        (Seq.map
           (fun k -> (fact "N" [ k ], Rational.pow Rational.half (k + 1)))
           (Seq.ints 0))
      ~tail:(fun n ->
        (* depths 0 and 1 answer freely (they feed [converges] during
           [complete]); every deeper depth answers exactly once *)
        if n <= 1 then Some (0.5 ** float_of_int n)
        else if Hashtbl.mem budget n then None
        else begin
          Hashtbl.add budget n ();
          Some (0.5 ** float_of_int n)
        end)
      ()
  in
  let c = Completion.complete_ti ex57_ti news in
  let r = Completion.query_prob c ~eps:0.01 (parse "exists x. N(x)") in
  Alcotest.(check bool) "tail_mass is a number" false
    (Float.is_nan r.Approx_eval.tail_mass);
  Alcotest.(check (float 0.0)) "tail is the value observed in the search"
    (0.5 ** float_of_int r.Approx_eval.n_used)
    r.Approx_eval.tail_mass;
  Alcotest.(check bool) "bounds are finite and ordered" true
    (Interval.width r.Approx_eval.bounds >= 0.0
    && Interval.hi r.Approx_eval.bounds <= 1.0);
  Alcotest.(check bool) "bounds enclose the truncated estimate" true
    (Interval.contains r.Approx_eval.bounds
       (Rational.to_float r.Approx_eval.estimate)
    || Interval.hi r.Approx_eval.bounds
       >= Rational.to_float r.Approx_eval.estimate)

let test_completion_marginals_valuations () =
  (* Two free variables: the valuation built internally is reversed and
     zipped with the sorted free-variable list; a pairing mistake would
     report the transposed tuple.  Hand-computable instance: original
     R(1,10) at 1/2, one new fact R(2,20) at 1/4. *)
  let ti = Ti_table.create [ (fact "R" [ 1; 10 ], q 1 2) ] in
  let c =
    Completion.complete_ti ti
      (Fact_source.of_list [ (fact "R" [ 2; 20 ], q 1 4) ])
  in
  let ms = Completion.marginals c ~eps:0.01 (parse "R(x, y)") in
  let show (tup, p) =
    Printf.sprintf "%s:%s"
      (String.concat ","
         (List.map Value.to_string (Array.to_list tup)))
      (Rational.to_string p)
  in
  Alcotest.(check (list string))
    "tuples paired (x,y), sorted"
    [ "1,10:1/2"; "2,20:1/4" ]
    (List.map show ms)

let test_completion_marginals_errors () =
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Completion.marginals: sentence has no free variables")
    (fun () ->
      ignore (Completion.marginals c ~eps:0.1 (parse "exists x y. R(x, y)")));
  Alcotest.check_raises "k > 3"
    (Invalid_argument "Completion.marginals: more than 3 free variables")
    (fun () ->
      ignore
        (Completion.marginals c ~eps:0.1
           (parse "R(x, y) & R(z, w)")))

let test_completion_rejects () =
  Alcotest.check_raises "prob 1 new fact"
    (Invalid_argument
       "Completion: new fact N(1) has probability 1, so P'(Omega) = 0 \
        (forbidden by Definition 5.1)") (fun () ->
      ignore
        (Completion.complete_ti ex57_ti
           (Fact_source.of_list [ (fact "N" [ 1 ], Rational.one) ])));
  Alcotest.check_raises "overlapping fact"
    (Invalid_argument "Completion: R(\"A\", 1) already occurs in the original PDB")
    (fun () ->
      ignore
        (Completion.complete_ti ex57_ti
           (Fact_source.of_list
              [ (Fact.make "R" [ Value.Str "A"; i 1 ], Rational.half) ])))

let test_completion_openpdb () =
  let c =
    Completion.openpdb_lambda ~lambda:(q 1 10)
      ~new_facts:[ fact "N" [ 1 ]; fact "N" [ 2 ] ]
      ex57_ti
  in
  (match Completion.marginal c (fact "N" [ 2 ]) with
   | Some p -> check_q "lambda" (q 1 10) p
   | None -> Alcotest.fail "lambda marginal");
  check_q "CC still exact" Rational.zero
    (Completion.completion_condition_gap c ~n:2)

let test_completion_query_open_vs_closed () =
  (* The closed world says P(exists i. R(D, i)) = 0; the open world gives
     a small positive value. *)
  let phi = parse "exists x. R(\"D\", x)" in
  let closed = Query_eval.boolean ex57_ti phi in
  check_q "closed world zero" Rational.zero closed;
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  let r = Completion.query_prob c ~eps:0.01 phi in
  Alcotest.(check bool) "open world positive" true
    (Rational.sign r.Approx_eval.estimate > 0);
  (* sanity: P(exists i. R(D,i)) = 1 - prod_i (1 - 2^-i) ~ 0.7112 *)
  Alcotest.(check bool) "near analytic value" true
    (Float.abs (Rational.to_float r.Approx_eval.estimate -. 0.7112) < 0.02)

let test_completion_omega_positive () =
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  let om = Completion.omega_prob_bounds c ~n:60 in
  Alcotest.(check bool) "P'(Omega) > 0" true (Interval.lo om > 0.0);
  Alcotest.(check bool) "P'(Omega) < 1" true (Interval.hi om < 1.0)

(* ------------------------------------------------------------------ *)
(* Approx_eval (Section 6) *)
(* ------------------------------------------------------------------ *)

let test_approx_error_guarantee () =
  (* Source with known closed forms: p_i = 2^-(i+1) on R(i).
     P(exists x. R(x)) = 1 - prod (1 - 2^-(i+1)) = 1 - 0.288788... *)
  let s = geo_source () in
  let phi = parse "exists x. R(x)" in
  let truth = 1.0 -. 0.2887880951 in
  List.iter
    (fun eps ->
      let r = Approx_eval.boolean s ~eps phi in
      let est = Rational.to_float r.Approx_eval.estimate in
      if Float.abs (est -. truth) > eps then
        Alcotest.failf "error %g exceeds eps %g" (Float.abs (est -. truth)) eps;
      (* certified bounds really contain the truth *)
      Alcotest.(check bool)
        (Printf.sprintf "bounds at eps=%g" eps)
        true
        (Interval.contains r.Approx_eval.bounds truth))
    [ 0.3; 0.1; 0.01; 0.001 ]

let test_approx_n_grows_with_precision () =
  let s = geo_source () in
  let n_at eps =
    match Approx_eval.truncation_point s ~eps with
    | Some n -> n
    | None -> Alcotest.fail "expected truncation point"
  in
  Alcotest.(check bool) "monotone" true (n_at 0.2 <= n_at 0.01 && n_at 0.01 <= n_at 0.0001);
  (* geometric: n ~ log2(3/(2 eps)); at 1e-4 that's ~ 14 *)
  Alcotest.(check bool) "log growth" true (n_at 0.0001 < 25)

let test_approx_eps_validation () =
  let s = geo_source () in
  let phi = parse "exists x. R(x)" in
  Alcotest.check_raises "eps 0" (Invalid_argument "Approx_eval: eps must lie in (0, 1/2)")
    (fun () -> ignore (Approx_eval.boolean s ~eps:0.0 phi));
  Alcotest.check_raises "eps 1/2" (Invalid_argument "Approx_eval: eps must lie in (0, 1/2)")
    (fun () -> ignore (Approx_eval.boolean s ~eps:0.5 phi))

let test_approx_divergent_rejected () =
  let s = Fact_source.divergent_harmonic ~scale:Rational.one ~facts:r_fact () in
  (match Approx_eval.boolean ~max_n:1024 s ~eps:0.1 (parse "exists x. R(x)") with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "divergent source must be rejected")

let test_approx_exhausted_tail_exact_zero () =
  (* Regression: [boolean] used to re-ask the tail certificate after the
     truncation search; with a certificate that answers each depth at most
     once the second ask failed and [tail_mass] came out nan, poisoning the
     certified bounds.  The observed value is now threaded through, and an
     enumeration exhausted at the truncation point sharpens it to exactly
     0.0. *)
  let probed = Hashtbl.create 8 in
  let s =
    Fact_source.make ~name:"probe-once"
      ~enum:(List.to_seq [ (r_fact 0, q 1 2); (r_fact 1, q 1 4) ])
      ~tail:(fun n ->
        if Hashtbl.mem probed n then None
        else begin
          Hashtbl.add probed n ();
          if n >= 2 then Some 0.0 else Some 1.0
        end)
      ()
  in
  let r = Approx_eval.boolean s ~eps:0.01 (parse "exists x. R(x)") in
  Alcotest.(check (float 0.0)) "tail exactly 0" 0.0 r.Approx_eval.tail_mass;
  check_q "estimate exact on the full table" (q 5 8) r.Approx_eval.estimate;
  Alcotest.(check bool) "bounds collapse to the estimate" true
    (Interval.width r.Approx_eval.bounds < 1e-9)

let test_approx_marginals () =
  let s = geo_source () in
  let ms = Approx_eval.marginals s ~eps:0.05 (parse "R(x)") in
  Alcotest.(check bool) "several tuples" true (List.length ms >= 4);
  (* the marginal of R(0) is 1/2 exactly (it is within the truncation) *)
  (match List.find_opt (fun (t, _) -> Tuple.equal t [| i 0 |]) ms with
   | Some (_, p) -> check_q "R(0)" Rational.half p
   | None -> Alcotest.fail "R(0) expected")

let test_prop62_witness_shape () =
  (* Additive error stays below eps; multiplicative error explodes as the
     first acceptance time grows. *)
  let phi = parse "exists x. R(x)" in
  let eps = 0.01 in
  List.iter
    (fun t0 ->
      let s = Approx_eval.prop62_witness ~first_acceptance:t0 ~horizon:60 in
      let truth = Rational.to_float (Rational.pow Rational.half t0) in
      let r = Approx_eval.boolean s ~eps phi in
      let est = Rational.to_float r.Approx_eval.estimate in
      Alcotest.(check bool)
        (Printf.sprintf "additive ok at t0=%d" t0)
        true
        (Float.abs (est -. truth) <= eps))
    [ 1; 5; 20; 40 ];
  (* deep acceptance: estimate is 0 although the truth is positive *)
  let s = Approx_eval.prop62_witness ~first_acceptance:40 ~horizon:60 in
  let r = Approx_eval.boolean s ~eps phi in
  Alcotest.(check bool) "estimate 0" true (Rational.is_zero r.Approx_eval.estimate);
  Alcotest.(check bool) "truth positive" true (Rational.sign (Rational.pow Rational.half 40) > 0)

(* ------------------------------------------------------------------ *)
(* Size_dist (Section 3.2 / Example 3.3) *)
(* ------------------------------------------------------------------ *)

let test_example_3_3 () =
  (* masses approach 1 *)
  let m = Size_dist.example_3_3_mass_prefix 100 in
  Alcotest.(check bool) "mass below 1" true Rational.(m < one);
  Alcotest.(check bool) "mass near 1" true
    (Rational.to_float m > 0.98);
  (* truncated expectation diverges: strictly growing and large *)
  let e10 = Size_dist.example_3_3_expected_size_prefix 10 in
  let e15 = Size_dist.example_3_3_expected_size_prefix 15 in
  Alcotest.(check bool) "grows" true Rational.(e15 > e10);
  Alcotest.(check bool) "large" true (Rational.to_float e15 > 100.0)

let test_tail_size_probability () =
  let worlds = List.of_seq (Seq.take 12 (Size_dist.example_3_3 ())) in
  (* equation (6): P(S >= n) decreasing in n *)
  let p1 = Size_dist.tail_size_probability worlds 1 in
  let p4 = Size_dist.tail_size_probability worlds 4 in
  let p100 = Size_dist.tail_size_probability worlds 100 in
  Alcotest.(check bool) "antitone" true
    Rational.(p4 <= p1 && p100 <= p4);
  Alcotest.(check bool) "vanishing" true Rational.(p100 < q 1 5)

let test_histogram () =
  let t = Countable_ti.create (geo_source ()) in
  let g = Prng.create ~seed:1 () in
  let h = Size_dist.histogram (fun _ -> Countable_ti.sample t g) ~samples:2000 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "counts sum" 2000 total;
  Alcotest.(check bool) "mostly small" true
    (match List.assoc_opt 0 h with Some c -> c > 400 | None -> false)

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let props =
  [
    QCheck.Test.make ~name:"truncations keep marginals" ~count:50
      (QCheck.int_range 1 30)
      (fun n ->
        let s = geo_source () in
        let t = Fact_source.truncate s n in
        List.for_all
          (fun (f, p) -> Rational.equal p (Ti_table.prob t f))
          (Fact_source.prefix s n));
    QCheck.Test.make ~name:"partition sums exactly 1 for random prefixes"
      ~count:30
      (QCheck.int_range 0 12)
      (fun n ->
        let t = Countable_ti.create (geo_source ()) in
        Rational.equal Rational.one (Countable_ti.partition_prefix_sum t ~n));
    QCheck.Test.make ~name:"approx result certified bounds contain estimate*omega"
      ~count:30
      (QCheck.float_range 0.01 0.4)
      (fun eps ->
        let s = geo_source () in
        let r = Approx_eval.boolean s ~eps (parse "exists x. R(x)") in
        Interval.lo r.Approx_eval.bounds <= Interval.hi r.Approx_eval.bounds);
    QCheck.Test.make ~name:"CC gap is 0 for random lambda completions"
      ~count:30
      (QCheck.int_range 1 9)
      (fun k ->
        let c =
          Completion.openpdb_lambda ~lambda:(q k 10)
            ~new_facts:[ fact "N" [ 1 ]; fact "N" [ 2 ]; fact "N" [ 3 ] ]
            ex57_ti
        in
        Rational.is_zero (Completion.completion_condition_gap c ~n:3));
  ]

let () =
  Alcotest.run "iowpdb"
    [
      ( "fact_source",
        [
          Alcotest.test_case "geometric" `Quick test_source_geometric;
          Alcotest.test_case "prob lookup" `Quick test_source_prob_lookup;
          Alcotest.test_case "telescoping" `Quick test_source_telescoping;
          Alcotest.test_case "divergent" `Quick test_source_divergent;
          Alcotest.test_case "of_list validation" `Quick
            test_source_of_list_validation;
          Alcotest.test_case "truncate" `Quick test_source_truncate;
          Alcotest.test_case "prefix_for_tail" `Quick test_source_prefix_for_tail;
          Alcotest.test_case "append/interleave/map" `Quick
            test_source_append_interleave_map;
          Alcotest.test_case "deep certificate" `Quick
            test_source_deep_certificate;
        ] );
      ( "countable_ti",
        [
          Alcotest.test_case "rejects divergent (Thm 4.8)" `Quick
            test_cti_rejects_divergent;
          Alcotest.test_case "marginals" `Quick test_cti_marginals;
          Alcotest.test_case "expected size (Cor 4.7)" `Quick
            test_cti_expected_size;
          Alcotest.test_case "partition = 1 (Lemma 4.3)" `Quick
            test_cti_partition_sums_to_one;
          Alcotest.test_case "instance probability" `Quick test_cti_instance_prob;
          Alcotest.test_case "empty world" `Quick test_cti_empty_world;
          Alcotest.test_case "truncate for mass" `Quick test_cti_truncate_for_mass;
          Alcotest.test_case "truncation resume cache" `Quick
            test_cti_truncation_resume_cache;
          Alcotest.test_case "sampling" `Slow test_cti_sampling;
          Alcotest.test_case "sampled independence (Lemma 4.4)" `Slow
            test_cti_sampled_independence;
          Alcotest.test_case "draws reproducible" `Quick
            test_sampler_draws_reproducible;
        ] );
      ( "countable_bid",
        [
          Alcotest.test_case "create/masses" `Quick test_cbid_create_and_masses;
          Alcotest.test_case "rejects divergent (Thm 4.15)" `Quick
            test_cbid_rejects_divergent;
          Alcotest.test_case "marginal" `Quick test_cbid_marginal;
          Alcotest.test_case "truncate" `Quick test_cbid_truncate;
          Alcotest.test_case "sampling laws" `Slow test_cbid_sampling_laws;
          Alcotest.test_case "infinite block" `Slow test_cbid_infinite_block;
        ] );
      ( "completion",
        [
          Alcotest.test_case "CC exact (Thm 5.5)" `Quick test_completion_cc_exact;
          Alcotest.test_case "marginals" `Quick test_completion_marginals;
          Alcotest.test_case "query_prob survives exhausted certificate"
            `Quick test_completion_query_exhausted_certificate;
          Alcotest.test_case "marginals valuation pairing" `Quick
            test_completion_marginals_valuations;
          Alcotest.test_case "marginals arity errors" `Quick
            test_completion_marginals_errors;
          Alcotest.test_case "rejections" `Quick test_completion_rejects;
          Alcotest.test_case "openpdb lambda" `Quick test_completion_openpdb;
          Alcotest.test_case "open vs closed world" `Quick
            test_completion_query_open_vs_closed;
          Alcotest.test_case "omega positive" `Quick test_completion_omega_positive;
        ] );
      ( "approx_eval",
        [
          Alcotest.test_case "error guarantee (Prop 6.1)" `Quick
            test_approx_error_guarantee;
          Alcotest.test_case "n grows with precision" `Quick
            test_approx_n_grows_with_precision;
          Alcotest.test_case "eps validation" `Quick test_approx_eps_validation;
          Alcotest.test_case "divergent rejected" `Quick
            test_approx_divergent_rejected;
          Alcotest.test_case "exhausted tail is exact zero" `Quick
            test_approx_exhausted_tail_exact_zero;
          Alcotest.test_case "marginals" `Quick test_approx_marginals;
          Alcotest.test_case "prop 6.2 witness" `Quick test_prop62_witness_shape;
        ] );
      ( "size_dist",
        [
          Alcotest.test_case "example 3.3" `Quick test_example_3_3;
          Alcotest.test_case "tail size probability" `Quick
            test_tail_size_probability;
          Alcotest.test_case "histogram" `Slow test_histogram;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
