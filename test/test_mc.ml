(* Tests for the domain-parallel Monte-Carlo engine (Mc_eval):
   determinism and bit-identity across domain counts, Wilson interval
   sanity, and cross-engine agreement with the exact truncation engine
   and the anytime evaluator. *)

let i n = Value.Int n
let q = Rational.of_ints
let fact r args = Fact.make r (List.map i args)
let parse = Fo_parse.parse_exn
let r_fact k = fact "R" [ k ]

let geo_source () =
  Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
    ~facts:r_fact ()

let geo_space () = Mc_eval.Ti (Countable_ti.create (geo_source ()))

(* ------------------------------------------------------------------ *)
(* Statistical primitives *)
(* ------------------------------------------------------------------ *)

let test_z_of_confidence () =
  let z95 = Mc_eval.z_of_confidence 0.95 in
  Alcotest.(check bool) "z(0.95) ~ 1.95996" true (Float.abs (z95 -. 1.959964) < 1e-4);
  let z99 = Mc_eval.z_of_confidence 0.99 in
  Alcotest.(check bool) "z(0.99) ~ 2.57583" true (Float.abs (z99 -. 2.575829) < 1e-4);
  Alcotest.(check bool) "monotone in confidence" true (z99 > z95);
  Alcotest.check_raises "confidence 1"
    (Invalid_argument "Mc_eval: confidence must lie in (0, 1)") (fun () ->
      ignore (Mc_eval.z_of_confidence 1.0));
  Alcotest.check_raises "confidence 0"
    (Invalid_argument "Mc_eval: confidence must lie in (0, 1)") (fun () ->
      ignore (Mc_eval.z_of_confidence 0.0))

let test_wilson_interval () =
  let z = Mc_eval.z_of_confidence 0.95 in
  let iv = Mc_eval.wilson_interval ~z ~hits:50 ~samples:100 in
  Alcotest.(check bool) "contains p-hat" true (Interval.contains iv 0.5);
  Alcotest.(check bool) "width sane" true
    (Interval.width iv > 0.1 && Interval.width iv < 0.3);
  (* width shrinks with more samples at the same rate *)
  let iv10 = Mc_eval.wilson_interval ~z ~hits:5000 ~samples:10_000 in
  Alcotest.(check bool) "100x samples, ~10x narrower" true
    (Interval.width iv10 < Interval.width iv /. 5.0);
  (* extreme counts stay inside [0,1] and are nonempty *)
  let iv0 = Mc_eval.wilson_interval ~z ~hits:0 ~samples:100 in
  Alcotest.(check bool) "0 hits: lo = 0" true (Interval.lo iv0 = 0.0);
  Alcotest.(check bool) "0 hits: hi > 0 (never degenerate)" true
    (Interval.hi iv0 > 0.0);
  let iv1 = Mc_eval.wilson_interval ~z ~hits:100 ~samples:100 in
  Alcotest.(check bool) "all hits: hi = 1" true (Interval.hi iv1 = 1.0);
  Alcotest.(check bool) "all hits: lo < 1" true (Interval.lo iv1 < 1.0);
  Alcotest.check_raises "hits out of range"
    (Invalid_argument "Mc_eval.wilson_interval: hits outside [0, samples]")
    (fun () -> ignore (Mc_eval.wilson_interval ~z ~hits:101 ~samples:100));
  (* higher confidence widens the interval *)
  let wide =
    Mc_eval.wilson_interval ~z:(Mc_eval.z_of_confidence 0.999) ~hits:50
      ~samples:100
  in
  Alcotest.(check bool) "confidence monotone" true
    (Interval.width wide > Interval.width iv)

(* ------------------------------------------------------------------ *)
(* Determinism and bit-identity *)
(* ------------------------------------------------------------------ *)

let test_bit_identity_across_domains () =
  let phi = parse "exists x. R(x)" in
  let space = geo_space () in
  let run d =
    Mc_eval.boolean ~domains:d ~seed:91 ~samples:5000 space phi
  in
  let base = run 1 in
  List.iter
    (fun d ->
      let r = run d in
      Alcotest.(check int)
        (Printf.sprintf "hits identical at %d domains" d)
        base.Mc_eval.hits r.Mc_eval.hits;
      Alcotest.(check bool)
        (Printf.sprintf "bounds identical at %d domains" d)
        true
        (Interval.equal base.Mc_eval.bounds r.Mc_eval.bounds);
      Alcotest.(check bool)
        (Printf.sprintf "trajectory identical at %d domains" d)
        true
        (base.Mc_eval.width_trajectory = r.Mc_eval.width_trajectory))
    [ 2; 4 ];
  (* and the whole run is reproducible from the seed *)
  let again = run 1 in
  Alcotest.(check int) "same seed, same hits" base.Mc_eval.hits
    again.Mc_eval.hits;
  let other = Mc_eval.boolean ~domains:1 ~seed:92 ~samples:5000 space phi in
  Alcotest.(check bool) "different seed, different worlds" true
    (other.Mc_eval.hits <> base.Mc_eval.hits
    || other.Mc_eval.estimate <> base.Mc_eval.estimate)

let test_result_accounting () =
  let r =
    Mc_eval.boolean ~domains:2 ~batch_size:100 ~seed:5 ~samples:1050
      (geo_space ())
      (parse "exists x. R(x)")
  in
  Alcotest.(check int) "samples" 1050 r.Mc_eval.samples;
  Alcotest.(check int) "batches = ceil(1050/100)" 11 r.Mc_eval.batches;
  Alcotest.(check int) "batch size recorded" 100 r.Mc_eval.batch_size;
  Alcotest.(check bool) "estimate = hits/samples" true
    (r.Mc_eval.estimate
    = float_of_int r.Mc_eval.hits /. float_of_int r.Mc_eval.samples);
  Alcotest.(check bool) "trajectory ends at the last sample" true
    (match List.rev r.Mc_eval.width_trajectory with
    | (n, w) :: _ -> n = 1050 && w = Interval.width r.Mc_eval.bounds
    | [] -> false);
  Alcotest.(check bool) "trajectory widths nonincreasing-ish" true
    (let ws = List.map snd r.Mc_eval.width_trajectory in
     match (ws, List.rev ws) with
     | first :: _, last :: _ -> last <= first
     | _ -> false)

let test_validation () =
  let space = geo_space () in
  let phi = parse "exists x. R(x)" in
  Alcotest.check_raises "samples 0"
    (Invalid_argument "Mc_eval: samples must be positive") (fun () ->
      ignore (Mc_eval.boolean ~seed:1 ~samples:0 space phi));
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Mc_eval: domains must be at least 1") (fun () ->
      ignore (Mc_eval.boolean ~domains:0 ~seed:1 ~samples:10 space phi));
  Alcotest.check_raises "free variables"
    (Invalid_argument "Mc_eval.boolean: query must be a sentence") (fun () ->
      ignore (Mc_eval.boolean ~seed:1 ~samples:10 space (parse "R(x)")));
  (* a source with no tail certificate at all is rejected... *)
  Alcotest.(check bool) "uncertified source rejected" true
    (match
       Mc_eval.boolean ~max_facts:4 ~seed:1 ~samples:10
         (Mc_eval.Ti
            (Countable_ti.create
               (Fact_source.divergent_harmonic ~scale:(q 1 2) ~facts:r_fact ())))
         phi
     with
    | exception Invalid_argument _ -> true
    | (_ : Mc_eval.result) -> false);
  (* ...while a certified-but-heavy tail is absorbed into the TV budget
     rather than rejected: telescoping certifies mass/(n+1) at every n. *)
  let heavy =
    Mc_eval.boolean ~max_facts:4 ~tail_cut:1e-9 ~seed:1 ~samples:100
      (Mc_eval.Ti
         (Countable_ti.create
            (Fact_source.telescoping ~mass:Rational.one ~facts:r_fact ())))
      phi
  in
  Alcotest.(check bool) "heavy tail folded into TV budget" true
    (heavy.Mc_eval.truncation_tv >= 0.2
    && Interval.width heavy.Mc_eval.bounds
       > Interval.width heavy.Mc_eval.wilson)

(* ------------------------------------------------------------------ *)
(* Statistical correctness against the exact engines *)
(* ------------------------------------------------------------------ *)

(* E1/E16 workload queries; 99% intervals at 40k samples fail with
   probability ~1% per query IF the estimator were merely unbiased —
   with fixed seeds the outcome is deterministic, so these are
   regression pins, not flaky statistics. *)
let test_cross_engine_agreement () =
  let space = geo_space () in
  List.iter
    (fun qtext ->
      let phi = parse qtext in
      let mc =
        Mc_eval.boolean ~seed:18 ~samples:40_000 ~confidence:0.99 space phi
      in
      let exact = Approx_eval.boolean (geo_source ()) ~eps:0.001 phi in
      Alcotest.(check bool)
        (Printf.sprintf "99%% CI contains exact estimate: %s" qtext)
        true
        (Interval.contains mc.Mc_eval.bounds
           (Rational.to_float exact.Approx_eval.estimate));
      let sess = Anytime.create ~eps:0.001 (geo_source ()) phi in
      ignore (Anytime.run sess);
      match Anytime.last_step sess with
      | None -> Alcotest.fail "anytime produced no step"
      | Some s ->
        Alcotest.(check bool)
          (Printf.sprintf "99%% CI meets anytime enclosure: %s" qtext)
          true
          (Interval.intersect mc.Mc_eval.bounds s.Anytime.bounds <> None))
    [
      "exists x. R(x)";
      "forall x. R(x) -> (exists y. R(y) & x = y)";
      "(exists x. R(x)) & !(forall y. R(y))";
    ]

let test_limit_semantics_padding () =
  (* P(forall y. R(y)) is 0 in the limit (infinitely many facts, each
     absent with positive probability) even though every truncated table
     has a world satisfying it.  The padded evaluation domain makes every
     sampled world report its limit value. *)
  let r =
    Mc_eval.boolean ~seed:3 ~samples:2000 (geo_space ())
      (parse "forall y. R(y)")
  in
  Alcotest.(check int) "no sampled world satisfies forall" 0 r.Mc_eval.hits

let test_marginal_ti () =
  let r =
    Mc_eval.marginal ~seed:21 ~samples:40_000 (geo_space ()) (r_fact 0)
  in
  Alcotest.(check bool) "R(0) marginal ~ 1/2" true
    (Float.abs (r.Mc_eval.estimate -. 0.5) < 0.02);
  Alcotest.(check bool) "interval contains 1/2" true
    (Interval.contains r.Mc_eval.bounds 0.5)

let test_bid_space () =
  (* E6's BID: block k holds T(k,0), T(k,1) each at 2^-(k+2); marginal of
     T(0,0) is exactly 1/4, and no world may hold both facts of block 0. *)
  let blocks =
    Seq.map
      (fun k ->
        let p = Rational.pow Rational.half (k + 2) in
        Countable_bid.block_finite
          ~id:(Printf.sprintf "B%d" k)
          [ (fact "T" [ k; 0 ], p); (fact "T" [ k; 1 ], p) ])
      (Seq.ints 0)
  in
  let b =
    Countable_bid.create ~name:"geo-bid" ~blocks
      ~tail:(fun n -> Some (Float.succ (0.5 ** float_of_int (n + 1))))
      ()
  in
  let space = Mc_eval.Bid b in
  let m = Mc_eval.marginal ~seed:6 ~samples:40_000 space (fact "T" [ 0; 0 ]) in
  Alcotest.(check bool) "T(0,0) ~ 1/4" true
    (Float.abs (m.Mc_eval.estimate -. 0.25) < 0.02);
  Alcotest.(check bool) "interval contains 1/4" true
    (Interval.contains m.Mc_eval.bounds 0.25);
  let excl =
    Mc_eval.boolean ~seed:7 ~samples:5000 space
      (parse "T(0, 0) & T(0, 1)")
  in
  Alcotest.(check int) "in-block exclusivity exact" 0 excl.Mc_eval.hits

let test_completion_space () =
  (* MC on a completion agrees with the exact completion engine. *)
  let ti =
    Ti_table.create
      [ (fact "R" [ 1 ], q 8 10); (fact "R" [ 2 ], q 4 10) ]
  in
  let c =
    Completion.geometric_policy ~first:(q 1 4) ~ratio:Rational.half
      ~new_facts:(fun j -> fact "N" [ j ])
      ti
  in
  List.iter
    (fun qtext ->
      let phi = parse qtext in
      let exact = Completion.query_prob c ~eps:0.001 phi in
      let mc =
        Mc_eval.boolean ~seed:8 ~samples:40_000 ~confidence:0.99
          (Mc_eval.Completed c) phi
      in
      Alcotest.(check bool)
        (Printf.sprintf "completion MC contains exact: %s" qtext)
        true
        (Interval.contains mc.Mc_eval.bounds
           (Rational.to_float exact.Approx_eval.estimate)))
    [ "exists x. N(x)"; "R(1) & !(exists x. N(x))" ]

let test_estimate_event_generic () =
  (* The raw engine on a plain coin: P(float < 0.5). *)
  let r =
    Mc_eval.estimate_event ~domains:2 ~seed:1 ~samples:20_000 Prng.float
      (fun u -> u < 0.5)
  in
  Alcotest.(check bool) "fair coin" true
    (Float.abs (r.Mc_eval.estimate -. 0.5) < 0.02);
  Alcotest.(check (float 0.0)) "no truncation tv by default" 0.0
    r.Mc_eval.truncation_tv;
  (* the tv widening is folded into bounds but not wilson *)
  let w =
    Mc_eval.estimate_event ~truncation_tv:0.1 ~seed:1 ~samples:1000 Prng.float
      (fun u -> u < 0.5)
  in
  Alcotest.(check bool) "bounds wider than wilson by 2*tv" true
    (Float.abs
       (Interval.width w.Mc_eval.bounds
       -. (Interval.width w.Mc_eval.wilson +. 0.2))
    < 1e-9)

let () =
  Alcotest.run "mc"
    [
      ( "statistics",
        [
          Alcotest.test_case "z of confidence" `Quick test_z_of_confidence;
          Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bit-identity across domains" `Quick
            test_bit_identity_across_domains;
          Alcotest.test_case "result accounting" `Quick test_result_accounting;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "generic event estimator" `Quick
            test_estimate_event_generic;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "cross-engine (E1/E16 queries)" `Slow
            test_cross_engine_agreement;
          Alcotest.test_case "limit semantics via padding" `Quick
            test_limit_semantics_padding;
          Alcotest.test_case "TI marginal" `Slow test_marginal_ti;
          Alcotest.test_case "BID space" `Slow test_bid_space;
          Alcotest.test_case "completion space" `Slow test_completion_space;
        ] );
    ]
