(* Tests for the incremental anytime evaluator: monotone narrowing,
   agreement with the batch approximation and with the exact closed-world
   engines on truncations, cache reuse across steps, and stop reasons. *)

let i n = Value.Int n
let q = Rational.of_ints
let fact r args = Fact.make r (List.map i args)
let parse = Fo_parse.parse_exn
let r_fact k = fact "R" [ k ]

(* p_i = (1/2)^(i+1): mass 1, tails 2^-n. *)
let geo_source () =
  Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
    ~facts:r_fact ()

let widths_non_increasing steps =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Anytime.width >= b.Anytime.width -. 1e-15 && go rest
    | _ -> true
  in
  go steps

(* ------------------------------------------------------------------ *)
(* Certification *)
(* ------------------------------------------------------------------ *)

let test_converges_and_narrows () =
  let eps = 0.01 in
  let sess = Anytime.create ~eps (geo_source ()) (parse "exists x. R(x)") in
  let reason, steps = Anytime.run sess in
  (match reason with
   | Anytime.Converged -> ()
   | r -> Alcotest.failf "expected convergence, got %s" (Anytime.stop_reason_to_string r));
  Alcotest.(check bool) "at least two steps" true (List.length steps >= 2);
  Alcotest.(check bool) "widths monotone non-increasing" true
    (widths_non_increasing steps);
  let final = List.nth steps (List.length steps - 1) in
  Alcotest.(check bool) "final width within budget" true
    (final.Anytime.width <= 2.0 *. eps);
  (* the certified interval really contains the limit
     1 - prod (1 - 2^-(i+1)) = 0.711211904... *)
  Alcotest.(check bool) "contains the limit" true
    (Interval.contains final.Anytime.bounds (1.0 -. 0.2887880951))

let test_contains_batch_estimate () =
  (* With +1 growth the session stops at the smallest certifiable n, which
     is at most the batch truncation point; the batch estimate of the same
     monotone query therefore lies inside the final anytime interval. *)
  let eps = 0.01 in
  let phi = parse "exists x. R(x)" in
  let sess =
    Anytime.create ~eps ~growth:(fun n -> n + 1) (geo_source ()) phi
  in
  let _, steps = Anytime.run sess in
  let final = List.nth steps (List.length steps - 1) in
  let batch = Approx_eval.boolean (geo_source ()) ~eps phi in
  Alcotest.(check bool) "batch estimate inside anytime interval" true
    (Interval.contains final.Anytime.bounds
       (Rational.to_float batch.Approx_eval.estimate))

let test_delta_path_matches_exact_truncations () =
  (* On a pure existential query every step takes the delta path, and the
     per-step estimate must bracket the exact closed-world probability of
     the same truncation (inert padding values cannot satisfy R). *)
  let phi = parse "exists x. R(x)" in
  let sess = Anytime.create ~eps:0.01 (geo_source ()) phi in
  let _, steps = Anytime.run sess in
  List.iteri
    (fun idx s ->
      if idx > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "step %d incremental" s.Anytime.index)
          true s.Anytime.incremental;
      let exact =
        Query_eval.boolean (Fact_source.truncate (geo_source ()) s.Anytime.n) phi
      in
      Alcotest.(check bool)
        (Printf.sprintf "estimate brackets exact at n=%d" s.Anytime.n)
        true
        (Interval.contains s.Anytime.estimate (Rational.to_float exact)))
    steps

(* ------------------------------------------------------------------ *)
(* Cache reuse *)
(* ------------------------------------------------------------------ *)

let test_recompile_path_reuses_caches () =
  (* exists & !forall is not a pure quantifier chain, so every step
     recompiles — in the shared manager, where the sub-functions of the
     previous lineage are already resident.  Later steps must therefore
     see apply-cache hits carried over from earlier ones. *)
  let phi = parse "(exists x. R(x)) & !(forall y. R(y))" in
  let sess = Anytime.create ~eps:0.02 (geo_source ()) phi in
  let _, steps = Anytime.run sess in
  Alcotest.(check bool) "several steps" true (List.length steps >= 2);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "step %d recompiles" s.Anytime.index)
        false s.Anytime.incremental)
    steps;
  let late_hits =
    List.filter
      (fun s ->
        s.Anytime.index > 1 && Stats.find s.Anytime.stats "bdd.apply.hit" > 0.0)
      steps
  in
  Alcotest.(check bool) "apply-cache hits carried between steps" true
    (late_hits <> []);
  Alcotest.(check bool) "still narrows monotonically" true
    (widths_non_increasing steps)

(* ------------------------------------------------------------------ *)
(* Stop reasons *)
(* ------------------------------------------------------------------ *)

let test_exhausted_source_is_exact () =
  let src =
    Fact_source.of_list [ (r_fact 0, q 1 2); (r_fact 1, q 1 4) ]
  in
  let sess = Anytime.create ~eps:0.001 src (parse "exists x. R(x)") in
  let reason, steps = Anytime.run sess in
  (match reason with
   | Anytime.Converged | Anytime.Exhausted -> ()
   | r ->
     Alcotest.failf "finite source must converge or exhaust, got %s"
       (Anytime.stop_reason_to_string r));
  let final = List.nth steps (List.length steps - 1) in
  (* P = 1 - 1/2 * 3/4 = 5/8, exactly *)
  Alcotest.(check bool) "tight around 5/8" true
    (Interval.contains final.Anytime.bounds 0.625
     && final.Anytime.width < 1e-9)

let test_step_budget () =
  (* One step per unit of growth cannot reach the eps=0.001 truncation
     point (n=11) in 3 steps. *)
  let sess =
    Anytime.create ~eps:0.001 ~max_steps:3 ~growth:(fun n -> n + 1)
      (geo_source ())
      (parse "exists x. R(x)")
  in
  let reason, steps = Anytime.run sess in
  (match reason with
   | Anytime.Step_budget -> ()
   | r -> Alcotest.failf "expected step budget, got %s" (Anytime.stop_reason_to_string r));
  Alcotest.(check int) "3 steps" 3 (List.length steps);
  Alcotest.(check int) "n advanced once per step" 3 (Anytime.current_n sess);
  (* partial answers are still certified *)
  Alcotest.(check bool) "bounds still sound" true
    (Interval.contains (List.nth steps 2).Anytime.bounds (1.0 -. 0.2887880951))

let test_prefix_budget () =
  let sess =
    Anytime.create ~eps:0.001 ~max_n:4 (geo_source ()) (parse "exists x. R(x)")
  in
  let reason, _ = Anytime.run sess in
  match reason with
  | Anytime.Prefix_budget -> ()
  | r -> Alcotest.failf "expected prefix budget, got %s" (Anytime.stop_reason_to_string r)

let test_step_after_stop_is_none () =
  let sess = Anytime.create ~eps:0.05 (geo_source ()) (parse "exists x. R(x)") in
  let _ = Anytime.run sess in
  Alcotest.(check bool) "no step after stop" true (Anytime.step sess = None);
  Alcotest.(check bool) "stop reason recorded" true
    (Anytime.stop_reason sess <> None)

let test_create_validation () =
  Alcotest.check_raises "free variables"
    (Invalid_argument "Anytime: query must be a sentence") (fun () ->
      ignore (Anytime.create (geo_source ()) (parse "R(x)")));
  Alcotest.check_raises "bad eps"
    (Invalid_argument "Anytime: eps must lie in (0, 1/2)") (fun () ->
      ignore (Anytime.create ~eps:0.5 (geo_source ()) (parse "exists x. R(x)")))

let () =
  Alcotest.run "anytime"
    [
      ( "certification",
        [
          Alcotest.test_case "converges and narrows" `Quick
            test_converges_and_narrows;
          Alcotest.test_case "contains batch estimate" `Quick
            test_contains_batch_estimate;
          Alcotest.test_case "delta path matches exact truncations" `Quick
            test_delta_path_matches_exact_truncations;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "recompile path reuses caches" `Quick
            test_recompile_path_reuses_caches;
        ] );
      ( "stopping",
        [
          Alcotest.test_case "exhausted source exact" `Quick
            test_exhausted_source_is_exact;
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "prefix budget" `Quick test_prefix_budget;
          Alcotest.test_case "step after stop" `Quick test_step_after_stop_is_none;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
    ]
