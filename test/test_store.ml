(* Tests for the persistent mmap fact store (lib/store): round-trips
   through the binary .iow format, O(1)/O(log n) truncation against the
   sidecar, the lazy fact-source view, and — the load-bearing property —
   that every single-byte corruption of a pack is rejected with a
   structured [Errors.Store], never loaded. *)

let i n = Value.Int n
let q = Rational.of_ints
let fact r args = Fact.make r (List.map i args)

let tmp_pack =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "iowpdb_test_%d_%d.iow" (Unix.getpid ()) !n)

let with_pack_ti ti f =
  let path = tmp_pack () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.write_ti ~path ti;
      f path (Store.load path))

(* Rational equality of tables, fact by fact. *)
let check_ti_equal msg t1 t2 =
  Alcotest.(check int) (msg ^ ": size") (Ti_table.size t1) (Ti_table.size t2);
  List.iter
    (fun (f, p) ->
      if not (Rational.equal p (Ti_table.prob t2 f)) then
        Alcotest.failf "%s: %s has %s vs %s" msg (Fact.to_string f)
          (Rational.to_string p)
          (Rational.to_string (Ti_table.prob t2 f)))
    (Ti_table.facts t1)

let mixed_ti =
  Ti_table.create
    [
      (fact "R" [ 1 ], q 1 2);
      (fact "R" [ 2 ], q 1 3);
      (Fact.make "S" [ Value.Str "ab"; Value.Int (-7) ], q 2 3);
      (Fact.make "T" [ Value.Real 2.5 ], q 1 7);
      (Fact.make "T" [ Value.Bool true ], q 999999999999 1000000000000);
      (Fact.make "U" [], q 1 10);
    ]

let test_roundtrip_small () =
  with_pack_ti mixed_ti @@ fun _path st ->
  Alcotest.(check int) "size" 6 (Store.size st);
  Alcotest.(check bool) "kind" true (Store.kind st = Store.Ti);
  check_ti_equal "roundtrip" mixed_ti (Store.to_ti_table st);
  (match Store.verify_against_ti st mixed_ti with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify: %s" m);
  (* Facts are stored in descending probability order. *)
  let rec desc i =
    i + 1 >= Store.size st
    || Rational.compare (Store.prob st i) (Store.prob st (i + 1)) >= 0
       && desc (i + 1)
  in
  Alcotest.(check bool) "descending" true (desc 0)

let test_roundtrip_empty () =
  with_pack_ti Ti_table.empty @@ fun _path st ->
  Alcotest.(check int) "size" 0 (Store.size st);
  Alcotest.(check (float 0.0)) "tail" 0.0 (Store.tail_mass st 0);
  let n, tbl = Store.truncate_for_mass st ~eps:0.0 in
  Alcotest.(check int) "n" 0 n;
  Alcotest.(check int) "table" 0 (Ti_table.size tbl)

let test_roundtrip_bid () =
  let bid =
    Bid_table.create
      [
        {
          Bid_table.block_id = "b1";
          alternatives = [ (fact "R" [ 1 ], q 1 2); (fact "R" [ 2 ], q 1 3) ];
        };
        { Bid_table.block_id = "b2"; alternatives = [ (fact "S" [ 1 ], q 1 4) ] };
        { Bid_table.block_id = "empty"; alternatives = [] };
      ]
  in
  let path = tmp_pack () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.write_bid ~path bid;
      let st = Store.load path in
      Alcotest.(check bool) "kind" true (Store.kind st = Store.Bid);
      Alcotest.(check int) "blocks" 3 (Store.num_blocks st);
      (match Store.verify_against_bid st bid with
      | Ok () -> ()
      | Error m -> Alcotest.failf "verify: %s" m);
      let back = Store.to_bid_table st in
      Alcotest.(check int) "facts" (Bid_table.size bid) (Bid_table.size back);
      List.iter
        (fun f ->
          if not (Rational.equal (Bid_table.prob bid f) (Bid_table.prob back f))
          then Alcotest.failf "prob mismatch on %s" (Fact.to_string f))
        (Bid_table.support bid);
      (* Block tail mass: the sidecar at a block's first fact bounds the
         remaining mass, so truncating after block 1 leaves b2's 1/4. *)
      let tr = Store.truncate_blocks st ~n:1 in
      Alcotest.(check int) "truncated blocks" 1 (Bid_table.num_blocks tr))

(* Seed-pure generated tables through the full round-trip. *)
let test_roundtrip_generated () =
  let cfg = Oracle_gen.default in
  for seed = 0 to 39 do
    let g = Prng.create ~seed () in
    let schema = Oracle_gen.schema cfg g in
    let ti = Oracle_gen.ti_table cfg g schema in
    with_pack_ti ti (fun _path st ->
        check_ti_equal
          (Printf.sprintf "seed %d" seed)
          ti (Store.to_ti_table st));
    let bid = Oracle_gen.bid_table cfg g schema in
    let path = tmp_pack () in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Store.write_bid ~path bid;
        match Store.verify_against_bid (Store.load path) bid with
        | Ok () -> ()
        | Error m -> Alcotest.failf "bid seed %d: %s" seed m)
  done

let test_truncation_and_sidecar () =
  let n = 64 in
  let entries = List.init n (fun j -> (fact "R" [ j ], q 1 (j + 2))) in
  let ti = Ti_table.create entries in
  with_pack_ti ti @@ fun _path st ->
  (* Sidecar soundness: every stored bound dominates the exact suffix
     sum of the stored (descending) order, and is antitone. *)
  let sorted =
    List.sort
      (fun (_, p1) (_, p2) -> Rational.compare p2 p1)
      (Ti_table.facts ti)
  in
  let arr = Array.of_list sorted in
  let suffix = Array.make (n + 1) Rational.zero in
  for k = n - 1 downto 0 do
    suffix.(k) <- Rational.add suffix.(k + 1) (snd arr.(k))
  done;
  for k = 0 to n do
    let bound = Store.tail_mass st k in
    if bound < Rational.to_float suffix.(k) then
      Alcotest.failf "tail %d not an upper bound" k;
    if k < n && Store.tail_mass st (k + 1) > bound then
      Alcotest.failf "sidecar not antitone at %d" k
  done;
  (* truncate ~n decodes exactly the prefix of the stored order. *)
  let tbl = Store.truncate st ~n:10 in
  Alcotest.(check int) "prefix size" 10 (Ti_table.size tbl);
  List.iteri
    (fun k (f, p) ->
      if k < 10 && not (Rational.equal p (Ti_table.prob tbl f)) then
        Alcotest.failf "prefix fact %d missing" k)
    sorted;
  (* truncate_for_mass agrees with the naive least-n scan. *)
  List.iter
    (fun eps ->
      let m, _ = Store.truncation_for_mass st ~eps in
      let naive = ref 0 in
      while Store.tail_mass st !naive > eps do incr naive done;
      Alcotest.(check int) (Printf.sprintf "least n at %g" eps) !naive m)
    [ 1.0; 0.5; 0.1; 0.01; 1e-6; 0.0 ]

let test_fact_source_view () =
  let ti =
    Ti_table.create (List.init 20 (fun j -> (fact "R" [ j ], q 1 (j + 2))))
  in
  with_pack_ti ti @@ fun _path st ->
  let s = Store.fact_source st in
  (* O(1) certificate: Countable_ti.create certifies without decoding. *)
  let before = Stats.count (Stats.counter "store.fact.decode") in
  let cti = Countable_ti.create s in
  let after = Stats.count (Stats.counter "store.fact.decode") in
  Alcotest.(check int) "no decode at create" before after;
  (match Countable_ti.truncate_for_mass cti ~eps:0.2 with
  | Some (_, tbl) ->
    List.iter
      (fun (f, p) ->
        if not (Rational.equal p (Ti_table.prob ti f)) then
          Alcotest.failf "store-backed prefix disagrees on %s"
            (Fact.to_string f))
      (Ti_table.facts tbl)
  | None -> Alcotest.fail "no truncation found");
  (* With a completion tail appended, the combined certificate is the
     pack tail plus the rest tail. *)
  let restq =
    Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
      ~facts:(fun j -> Fact.make "N" [ i j ])
      ()
  in
  let s2 = Store.fact_source ~rest:restq st in
  (match Fact_source.tail_mass s2 0 with
  | Some t0 -> Alcotest.(check bool) "tail covers both" true (t0 > 1.0)
  | None -> Alcotest.fail "combined tail must certify");
  let cti2 = Countable_ti.create s2 in
  match Countable_ti.truncate_for_mass cti2 ~eps:0.01 with
  | Some (m, _) ->
    Alcotest.(check bool) "needs completion facts" true (m > 20)
  | None -> Alcotest.fail "combined truncation must exist"

(* Engines answer identically on text-loaded vs pack-loaded tables. *)
let test_engine_equivalence () =
  let ti = mixed_ti in
  let text = Ti_table.to_string ti in
  let reparsed = Ti_table.of_lines (String.split_on_char '\n' text) in
  with_pack_ti ti @@ fun _path st ->
  let packed = Store.to_ti_table st in
  let phi = Fo_parse.parse_exn "exists x. R(x)" in
  let p1 = Query_eval.boolean reparsed phi
  and p2 = Query_eval.boolean packed phi in
  if not (Rational.equal p1 p2) then
    Alcotest.failf "engine mismatch: %s vs %s" (Rational.to_string p1)
      (Rational.to_string p2)

(* The checksum property: flipping ANY single byte of the pack must
   produce a structured Errors.Store rejection. *)
let test_every_single_byte_corruption_rejected () =
  let ti =
    Ti_table.create
      [
        (fact "R" [ 1 ], q 1 2);
        (Fact.make "S" [ Value.Str "x" ], q 1 3);
        (fact "R" [ 2 ], q 2 5);
      ]
  in
  let path = tmp_pack () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.write_ti ~path ti;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let orig = really_input_string ic len in
      close_in ic;
      let corrupt = tmp_pack () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove corrupt with Sys_error _ -> ())
        (fun () ->
          for pos = 0 to len - 1 do
            let b = Bytes.of_string orig in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x41));
            let oc = open_out_bin corrupt in
            output_bytes oc b;
            close_out oc;
            match Store.load_r corrupt with
            | Error (Errors.Store { path = p; region; _ }) ->
              Alcotest.(check string) "error cites the file" corrupt p;
              Alcotest.(check bool)
                (Printf.sprintf "region named at byte %d" pos)
                true (region <> "")
            | Error e ->
              Alcotest.failf "byte %d: wrong error class %s" pos
                (Errors.to_string e)
            | Ok _ -> Alcotest.failf "byte %d: corrupted pack loaded" pos
          done))

let test_truncated_and_garbage_rejected () =
  let path = tmp_pack () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.write_ti ~path mixed_ti;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let orig = really_input_string ic len in
      close_in ic;
      (* Truncated at every interesting boundary. *)
      List.iter
        (fun keep ->
          let oc = open_out_bin path in
          output_string oc (String.sub orig 0 keep);
          close_out oc;
          match Store.load_r path with
          | Error (Errors.Store _) -> ()
          | Error e ->
            Alcotest.failf "truncated@%d: wrong class %s" keep
              (Errors.to_string e)
          | Ok _ -> Alcotest.failf "truncated@%d loaded" keep)
        [ 0; 7; 143; 144; len / 2; len - 1 ];
      (* A missing file is a structured rejection too. *)
      (match Store.load_r (path ^ ".does-not-exist") with
      | Error (Errors.Store { region = "open"; _ }) -> ()
      | Error e -> Alcotest.failf "missing file: %s" (Errors.to_string e)
      | Ok _ -> Alcotest.fail "missing file loaded");
      (* Exit-code contract: store errors are user errors. *)
      Alcotest.(check int) "exit code" 2
        (Errors.exit_code
           (Errors.Store { path; region = "checksum"; msg = "" })))

let test_wrong_kind_guards () =
  let bid =
    Bid_table.create
      [ { Bid_table.block_id = "b"; alternatives = [ (fact "R" [ 1 ], q 1 2) ] } ]
  in
  let path = tmp_pack () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.write_bid ~path bid;
      let st = Store.load path in
      Alcotest.check_raises "ti op on bid"
        (Invalid_argument
           (Printf.sprintf "Store.truncate: not a TI pack: %s" path))
        (fun () -> ignore (Store.truncate st ~n:1)))

let () =
  Alcotest.run "store"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "small mixed TI" `Quick test_roundtrip_small;
          Alcotest.test_case "empty table" `Quick test_roundtrip_empty;
          Alcotest.test_case "BID blocks" `Quick test_roundtrip_bid;
          Alcotest.test_case "generated tables" `Quick
            test_roundtrip_generated;
          Alcotest.test_case "engine equivalence" `Quick
            test_engine_equivalence;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "sidecar sound + binary search" `Quick
            test_truncation_and_sidecar;
          Alcotest.test_case "lazy fact source" `Quick test_fact_source_view;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "every single-byte corruption" `Slow
            test_every_single_byte_corruption_rejected;
          Alcotest.test_case "truncation, garbage, missing" `Quick
            test_truncated_and_garbage_rejected;
          Alcotest.test_case "kind guards" `Quick test_wrong_kind_guards;
        ] );
    ]
