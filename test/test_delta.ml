(* Tests for the streaming delta sessions: the mutation-differential
   law (incremental == from-scratch by exact rational equality at every
   step), invertibility of deltas, BID block exclusivity under
   reweights, and the edge cases around absent facts and zero
   marginals. *)

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn
let fact r args = Fact.make r (List.map i args)

(* The padded from-scratch reference: what the session must equal after
   every delta.  Comparison queries carry no padding and an exact
   domain, which is plain [Query_eval.boolean]. *)
let from_scratch session phi tbl =
  if Fo.has_cmp phi then Query_eval.boolean tbl phi
  else
    Query_eval.boolean
      ~extra_domain:(Delta_eval.Exact.padding session)
      tbl phi

(* ------------------------------------------------------------------ *)
(* Generators *)
(* ------------------------------------------------------------------ *)

let fact_pool =
  List.init 4 (fun k -> fact "R" [ k ]) @ List.init 4 (fun k -> fact "S" [ k ])

let arb_ti =
  let open QCheck.Gen in
  let gen =
    let* picks =
      list_repeat (List.length fact_pool)
        (pair bool (map (fun k -> q k 10) (int_range 1 9)))
    in
    let facts =
      List.filter_map
        (fun (f, (keep, p)) -> if keep then Some (f, p) else None)
        (List.combine fact_pool picks)
    in
    return (Ti_table.create facts)
  in
  QCheck.make ~print:Ti_table.to_string gen

let sentences =
  List.map parse
    [
      "exists x. R(x)";
      "exists x. R(x) & S(x)";
      "exists x y. R(x) & S(y)";
      "forall x. R(x) -> S(x)";
      "exists x. R(x) | S(x)";
      "forall x. !R(x)";
      "exists x y. R(x) & S(y) & x != y";
      "exists x. R(x) & x >= 1";
    ]

let arb_sentence = QCheck.oneofl ~print:Fo.to_string sentences

let arb_delta =
  let open QCheck.Gen in
  let gen =
    let* f = oneofl fact_pool in
    let* op = int_range 0 2 in
    let* p = map (fun k -> q k 10) (int_range 0 10) in
    return
      (match op with
      | 0 -> Delta_eval.Insert (f, p)
      | 1 -> Delta_eval.Delete f
      | _ -> Delta_eval.Reweight (f, p))
  in
  QCheck.make ~print:Delta_eval.delta_to_string gen

let arb_deltas = QCheck.list_of_size (QCheck.Gen.int_range 1 12) arb_delta

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let prop_incremental_matches_scratch =
  QCheck.Test.make
    ~name:"incremental == from-scratch at every step (exact)" ~count:300
    QCheck.(triple arb_ti arb_sentence arb_deltas)
    (fun (ti, phi, deltas) ->
      let s = Delta_eval.Exact.create ti phi in
      let tbl = ref ti in
      List.for_all
        (fun d ->
          ignore (Delta_eval.Exact.apply s d);
          tbl := Delta_eval.apply_table !tbl d;
          Rational.equal (Delta_eval.Exact.prob s)
            (from_scratch s phi !tbl))
        deltas)

let prop_inverse_restores =
  QCheck.Test.make ~name:"delta then inverse restores the exact answer"
    ~count:300
    QCheck.(triple arb_ti arb_sentence arb_delta)
    (fun (ti, phi, d) ->
      let s = Delta_eval.Exact.create ti phi in
      let p0 = Delta_eval.Exact.prob s in
      let inv = Delta_eval.Exact.inverse s d in
      ignore (Delta_eval.Exact.apply s d);
      ignore (Delta_eval.Exact.apply s inv);
      Rational.equal p0 (Delta_eval.Exact.prob s)
      && Ti_table.facts (Delta_eval.Exact.table s) = Ti_table.facts ti)

let arb_bid_deltas =
  let open QCheck.Gen in
  let gen =
    list_size (int_range 1 10)
      (let* block = oneofl [ "b0"; "b1" ] in
       let* f = oneofl fact_pool in
       let* p = map (fun k -> q k 8) (int_range 0 8) in
       let* remove = bool in
       return
         (if remove then Delta_eval.Bid.B_remove f
          else Delta_eval.Bid.B_set (block, f, p)))
  in
  QCheck.make gen

let prop_bid_exclusivity =
  QCheck.Test.make
    ~name:"BID reweights preserve block exclusivity" ~count:200
    QCheck.(pair arb_sentence arb_bid_deltas)
    (fun (phi, deltas) ->
      let bid =
        Bid_table.create
          [
            {
              Bid_table.block_id = "b0";
              alternatives = [ (fact "R" [ 0 ], q 1 3); (fact "R" [ 1 ], q 1 3) ];
            };
          ]
      in
      let s = Delta_eval.Bid.create bid phi in
      List.for_all
        (fun d ->
          let before = Bid_table.blocks (Delta_eval.Bid.table s) in
          (match Delta_eval.Bid.apply s d with
          | Ok () -> true
          | Error _ ->
            (* a rejected delta must leave the table untouched *)
            Bid_table.blocks (Delta_eval.Bid.table s) = before)
          &&
          (* every block's mass stays a probability *)
          List.for_all
            (fun b ->
              Rational.sign
                (Bid_table.block_slack (Delta_eval.Bid.table s)
                   b.Bid_table.block_id)
              >= 0)
            (Bid_table.blocks (Delta_eval.Bid.table s))
          &&
          (* the cached incremental answer equals a fresh session's *)
          Rational.equal (Delta_eval.Bid.prob s)
            (Delta_eval.Bid.prob
               (Delta_eval.Bid.create (Delta_eval.Bid.table s) phi)))
        deltas)

(* ------------------------------------------------------------------ *)
(* Units: edge cases *)
(* ------------------------------------------------------------------ *)

let check_rat = Alcotest.testable Rational.pp Rational.equal

let test_empty_delta () =
  let ti = Ti_table.create [ (fact "R" [ 0 ], Rational.half) ] in
  let phi = parse "exists x. R(x)" in
  let s = Delta_eval.Exact.create ti phi in
  let p0 = Delta_eval.Exact.prob s in
  (* reweight to the current value: a recognized no-op *)
  Alcotest.(check string)
    "same-weight reweight is a noop" "noop"
    (Delta_eval.apply_kind_to_string
       (Delta_eval.Exact.apply s (Reweight (fact "R" [ 0 ], Rational.half))));
  Alcotest.check check_rat "probability unchanged" p0 (Delta_eval.Exact.prob s);
  Alcotest.(check int) "epoch unchanged" 0 (Delta_eval.Exact.epoch s)

let test_delete_absent () =
  let ti = Ti_table.create [ (fact "R" [ 0 ], Rational.half) ] in
  let s = Delta_eval.Exact.create ti (parse "exists x. R(x)") in
  let p0 = Delta_eval.Exact.prob s in
  Alcotest.(check string)
    "delete of an absent fact is a noop" "noop"
    (Delta_eval.apply_kind_to_string
       (Delta_eval.Exact.apply s (Delete (fact "R" [ 7 ]))));
  Alcotest.check check_rat "probability unchanged" p0 (Delta_eval.Exact.prob s)

let test_reweight_to_zero () =
  let f = fact "R" [ 0 ] in
  let ti = Ti_table.create [ (f, Rational.half); (fact "R" [ 1 ], q 1 4) ] in
  let phi = parse "exists x. R(x)" in
  let s = Delta_eval.Exact.create ti phi in
  Alcotest.(check string)
    "reweight-to-zero patches in place" "patched"
    (Delta_eval.apply_kind_to_string
       (Delta_eval.Exact.apply s (Reweight (f, Rational.zero))));
  Alcotest.(check bool)
    "fact left the table" false
    (Ti_table.mem (Delta_eval.Exact.table s) f);
  Alcotest.check check_rat "matches from-scratch" (q 1 4)
    (Delta_eval.Exact.prob s);
  (* and the variable revives on re-insertion without recompiling *)
  Alcotest.(check string)
    "re-insert is a patch" "patched"
    (Delta_eval.apply_kind_to_string
       (Delta_eval.Exact.apply s (Insert (f, Rational.half))));
  Alcotest.check check_rat "restored" (q 5 8) (Delta_eval.Exact.prob s)

let test_fresh_value_extends () =
  let ti = Ti_table.create [ (fact "R" [ 0 ], Rational.half) ] in
  let s = Delta_eval.Exact.create ti (parse "exists x. R(x)") in
  Alcotest.(check string)
    "fresh constant extends the diagram" "extended"
    (Delta_eval.apply_kind_to_string
       (Delta_eval.Exact.apply s (Insert (fact "R" [ 99 ], Rational.half))));
  Alcotest.check check_rat "joined answer" (q 3 4) (Delta_eval.Exact.prob s)

let test_known_value_recompiles () =
  (* S(0)'s value 0 is already in the domain, so its old ground atom
     compiled to False: absorbing it must recompile, not patch. *)
  let ti = Ti_table.create [ (fact "R" [ 0 ], Rational.half) ] in
  let phi = parse "exists x. R(x) & S(x)" in
  let s = Delta_eval.Exact.create ti phi in
  Alcotest.check check_rat "initially zero" Rational.zero
    (Delta_eval.Exact.prob s);
  Alcotest.(check string)
    "known-value insert recompiles" "recompiled"
    (Delta_eval.apply_kind_to_string
       (Delta_eval.Exact.apply s (Insert (fact "S" [ 0 ], Rational.half))));
  Alcotest.check check_rat "joined answer" (q 1 4) (Delta_eval.Exact.prob s)

let test_delta_string_roundtrip () =
  List.iter
    (fun d ->
      Alcotest.(check string)
        "roundtrip"
        (Delta_eval.delta_to_string d)
        (Delta_eval.delta_to_string
           (Delta_eval.delta_of_string (Delta_eval.delta_to_string d))))
    [
      Delta_eval.Insert (fact "R" [ 1; 2 ], q 1 3);
      Delta_eval.Delete (fact "S" [ 0 ]);
      Delta_eval.Reweight (Fact.make "T" [ Value.Str "a b"; i 3 ], q 7 9);
    ]

let test_bid_rejections () =
  let f0 = fact "R" [ 0 ] and f1 = fact "R" [ 1 ] in
  let bid =
    Bid_table.create
      [
        {
          Bid_table.block_id = "b0";
          alternatives = [ (f0, Rational.half); (f1, q 2 5) ];
        };
      ]
  in
  let s = Delta_eval.Bid.create bid (parse "exists x. R(x)") in
  (match Delta_eval.Bid.apply s (B_set ("b0", f0, q 7 10)) with
  | Ok () -> Alcotest.fail "over-mass reweight must be rejected"
  | Error _ -> ());
  (match Delta_eval.Bid.apply s (B_set ("b1", f0, q 1 10)) with
  | Ok () -> Alcotest.fail "cross-block migration must be rejected"
  | Error _ -> ());
  Alcotest.(check int) "epoch untouched by rejections" 0
    (Delta_eval.Bid.epoch s);
  (match Delta_eval.Bid.apply s (B_set ("b0", f0, q 11 20)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "legal reweight rejected: %s" e);
  Alcotest.check check_rat "mass updated"
    (q 1 20)
    (Bid_table.block_slack (Delta_eval.Bid.table s) "b0")

let () =
  Alcotest.run "delta"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_incremental_matches_scratch;
            prop_inverse_restores;
            prop_bid_exclusivity;
          ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty delta" `Quick test_empty_delta;
          Alcotest.test_case "delete of absent fact" `Quick test_delete_absent;
          Alcotest.test_case "reweight to zero" `Quick test_reweight_to_zero;
          Alcotest.test_case "fresh value extends" `Quick
            test_fresh_value_extends;
          Alcotest.test_case "known value recompiles" `Quick
            test_known_value_recompiles;
          Alcotest.test_case "delta text roundtrip" `Quick
            test_delta_string_roundtrip;
          Alcotest.test_case "bid rejections" `Quick test_bid_rejections;
        ] );
    ]
