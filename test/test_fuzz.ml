(* The differential fuzzing harness: a deterministic ~200-case smoke run
   across all seven engines (the PR's acceptance gate), bit-reproducibility,
   corpus round-trips, and replay of the checked-in regression corpus.
   The corpus files are build dependencies (see test/dune), so they are
   available under ./corpus relative to the test's working directory. *)

let test_smoke_200 () =
  let r = Fuzzer.run ~seed:42 ~cases:200 () in
  Alcotest.(check int) "cases" 200 r.Fuzzer.cases_run;
  Alcotest.(check bool) "covers every engine" true
    (List.length r.Fuzzer.engines_run = List.length Fuzzer.all_engines);
  Alcotest.(check bool) "at least 1000 checks" true (r.Fuzzer.checks_run >= 1000);
  (match r.Fuzzer.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.fail
      (Printf.sprintf "case %d failed %s: %s" f.Fuzzer.f_case.Fuzzer.id
         f.Fuzzer.check f.Fuzzer.detail));
  (* Bonferroni: the per-check MC confidence is strictly above the naive
     0.95 once more than one MC check is planned. *)
  Alcotest.(check bool) "mc confidence corrected" true
    (r.Fuzzer.mc_confidence > 0.99)

let test_batch_engine_400 () =
  (* The batch engine's acceptance gate: 400 cases against the oracle,
     the member-wise sequential law, and domain-count bit-identity, with
     zero discrepancies.  Batch checks ride on K_ti cases (one in four). *)
  let r = Fuzzer.run ~seed:2024 ~cases:400 ~engines:[ Fuzzer.Batch ] () in
  Alcotest.(check int) "cases" 400 r.Fuzzer.cases_run;
  Alcotest.(check bool) "at least 300 batch checks" true
    (r.Fuzzer.checks_run >= 300);
  match r.Fuzzer.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.fail
      (Printf.sprintf "case %d failed %s: %s" f.Fuzzer.f_case.Fuzzer.id
         f.Fuzzer.check f.Fuzzer.detail)

let test_reproducible () =
  let run () =
    let r = Fuzzer.run ~seed:7 ~cases:40 () in
    (r.Fuzzer.cases_run, r.Fuzzer.checks_run, List.length r.Fuzzer.failures)
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "same seed, same run" a b

let test_distinct_seeds_distinct_cases () =
  let c1 = Fuzzer.generate Oracle_gen.default ~seed:1 ~id:0 in
  let c2 = Fuzzer.generate Oracle_gen.default ~seed:2 ~id:0 in
  (* Not a law, but with these seeds the streams differ — guards against
     the generator ignoring its seed. *)
  Alcotest.(check bool) "different queries or tables" true
    (Fo.to_string c1.Fuzzer.query <> Fo.to_string c2.Fuzzer.query
    || Ti_table.to_string c1.Fuzzer.table <> Ti_table.to_string c2.Fuzzer.table)

let test_corpus_round_trip () =
  (* to_lines / of_lines is a fixpoint on every generated kind. *)
  for id = 0 to 11 do
    let c = Fuzzer.generate Oracle_gen.default ~seed:42 ~id in
    let cc =
      { Fuzzer.c_case = c; c_check = "law.complement"; c_detail = "round trip" }
    in
    let lines = Fuzzer.to_lines ~seed:42 cc in
    let lines' = Fuzzer.to_lines ~seed:42 (Fuzzer.of_lines lines) in
    Alcotest.(check (list string))
      (Printf.sprintf "case %d round-trips" id)
      lines lines'
  done

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".case")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let cc = Fuzzer.load path in
      let checks, failures = Fuzzer.run_case cc.Fuzzer.c_case in
      Alcotest.(check bool) (path ^ " runs checks") true (checks > 0);
      match failures with
      | [] -> ()
      | f :: _ ->
        Alcotest.fail
          (Printf.sprintf "%s regressed on %s: %s" path f.Fuzzer.check
             f.Fuzzer.detail))
    files

let test_engine_parsing () =
  Alcotest.(check bool) "all" true
    (Fuzzer.engines_of_string "all" = Ok Fuzzer.all_engines);
  Alcotest.(check bool) "subset" true
    (Fuzzer.engines_of_string "exact,mc" = Ok [ Fuzzer.Exact; Fuzzer.Mc ]);
  Alcotest.(check bool) "case-insensitive" true
    (Fuzzer.engines_of_string "Robust" = Ok [ Fuzzer.Robust ]);
  (match Fuzzer.engines_of_string "exact,bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus engine accepted");
  Alcotest.(check bool) "check prefix -> engine" true
    (Fuzzer.engine_of_check "mc.bounds" = Fuzzer.Mc
    && Fuzzer.engine_of_check "approx.estimate" = Fuzzer.Approx
    && Fuzzer.engine_of_check "law.complement" = Fuzzer.Exact)

let test_engine_subset_runs_fewer_checks () =
  let all = Fuzzer.run ~seed:11 ~cases:15 () in
  let exact_only =
    Fuzzer.run ~seed:11 ~cases:15 ~engines:[ Fuzzer.Exact ] ()
  in
  Alcotest.(check bool) "subset runs fewer checks" true
    (exact_only.Fuzzer.checks_run < all.Fuzzer.checks_run);
  Alcotest.(check int) "subset still clean" 0
    (List.length exact_only.Fuzzer.failures)

(* --- the [fuzz] subcommand, driven like test_cli.ml ----------------- *)

let run_quiet argv =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let so = Unix.dup Unix.stdout and se = Unix.dup Unix.stderr in
  flush stdout;
  flush stderr;
  Unix.dup2 devnull Unix.stdout;
  Unix.dup2 devnull Unix.stderr;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      flush stderr;
      Unix.dup2 so Unix.stdout;
      Unix.dup2 se Unix.stderr;
      Unix.close so;
      Unix.close se;
      Unix.close devnull)
    (fun () -> Cli.main ~argv:(Array.of_list ("iowpdb" :: argv)) ())

let test_cli_fuzz_ok () =
  Alcotest.(check int) "fuzz exits 0" 0
    (run_quiet [ "fuzz"; "--cases"; "20"; "--seed"; "42" ])

let test_cli_fuzz_bad_engines () =
  Alcotest.(check int) "bad engine list exits 2" 2
    (run_quiet [ "fuzz"; "--cases"; "5"; "--engines"; "bogus" ])

let test_cli_fuzz_replay () =
  Alcotest.(check int) "corpus replay exits 0" 0
    (run_quiet [ "fuzz"; "--replay"; "corpus" ]);
  Alcotest.(check int) "replay of a single file exits 0" 0
    (run_quiet [ "fuzz"; "--replay"; List.hd (corpus_files ()) ]);
  Alcotest.(check int) "missing replay path exits 2" 2
    (run_quiet [ "fuzz"; "--replay"; "/nonexistent/corpus" ])

let () =
  Alcotest.run "fuzz"
    [
      ( "smoke",
        [
          Alcotest.test_case "200 cases, seven engines, clean" `Slow
            test_smoke_200;
          Alcotest.test_case "batch engine, 400 cases, clean" `Slow
            test_batch_engine_400;
          Alcotest.test_case "bit-reproducible" `Quick test_reproducible;
          Alcotest.test_case "seed-sensitive" `Quick
            test_distinct_seeds_distinct_cases;
          Alcotest.test_case "engine subset" `Quick
            test_engine_subset_runs_fewer_checks;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "serialization round-trip" `Quick
            test_corpus_round_trip;
          Alcotest.test_case "regression replay" `Quick test_corpus_replay;
        ] );
      ( "cli",
        [
          Alcotest.test_case "engine parsing" `Quick test_engine_parsing;
          Alcotest.test_case "fuzz subcommand" `Quick test_cli_fuzz_ok;
          Alcotest.test_case "bad engines" `Quick test_cli_fuzz_bad_engines;
          Alcotest.test_case "replay modes" `Quick test_cli_fuzz_replay;
        ] );
    ]
