(* Exit-code regressions for the command-line interface, driven through
   Cmdliner's evaluation API (no process spawning): malformed input of
   every stripe maps to a one-line stderr message and exit 2, budget
   flags are honoured, and the robust subcommand keeps its never-fail
   contract. *)

(* The commands print their answers; run them against /dev/null so the
   test log stays readable.  File descriptors are restored even when the
   evaluation raises. *)
let run_quiet argv =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let so = Unix.dup Unix.stdout and se = Unix.dup Unix.stderr in
  flush stdout;
  flush stderr;
  Unix.dup2 devnull Unix.stdout;
  Unix.dup2 devnull Unix.stderr;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      flush stderr;
      Unix.dup2 so Unix.stdout;
      Unix.dup2 se Unix.stderr;
      Unix.close so;
      Unix.close se;
      Unix.close devnull)
    (fun () -> Cli.main ~argv:(Array.of_list ("iowpdb" :: argv)) ())

let with_table lines f =
  let path = Filename.temp_file "iowpdb_cli" ".ti" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  f path

let good_table = [ "R(1) 1/2"; "R(2) 1/3"; "R(3) 1/4" ]

let check_exit what expected argv =
  Alcotest.(check int) what expected (run_quiet argv)

let test_query_ok () =
  with_table good_table @@ fun t ->
  check_exit "query succeeds" 0 [ "query"; t; "exists x. R(x)" ]

let test_missing_file () =
  check_exit "missing table file" 2
    [ "query"; "/nonexistent/table.ti"; "exists x. R(x)" ]

let test_malformed_query () =
  with_table good_table @@ fun t ->
  check_exit "query parse error" 2 [ "query"; t; "exists x. R(" ]

let test_malformed_table () =
  with_table [ "R(1) not-a-probability" ] @@ fun t ->
  check_exit "bad probability" 2 [ "query"; t; "exists x. R(x)" ]

let test_duplicate_fact () =
  with_table [ "R(1) 1/2"; "R(1) 1/3" ] @@ fun t ->
  check_exit "contradictory duplicate" 2 [ "query"; t; "exists x. R(x)" ]

let test_free_variable_query () =
  (* [query] answers free-variable queries with marginals; [robust]
     supervises Boolean sentences only and must reject them cleanly. *)
  with_table good_table @@ fun t ->
  check_exit "free variable rejected" 2 [ "robust"; t; "R(x)" ]

let test_bad_eps () =
  with_table good_table @@ fun t ->
  check_exit "eps out of range" 2
    [ "robust"; t; "exists x. R(x)"; "--eps"; "0.9" ]

let test_plan () =
  (* [plan] is purely syntactic: exits 0 on both sides of the dichotomy
     (the verdict is the output), 2 on parse errors / free variables. *)
  check_exit "safe query" 0 [ "plan"; "(exists x. R(x)) | (exists y. S(y))" ];
  check_exit "hard query" 0 [ "plan"; "exists x y. R(x) & S(x, y) & T(y)" ];
  check_exit "parse error" 2 [ "plan"; "exists x. R(" ];
  check_exit "free variable" 2 [ "plan"; "R(x)" ]

let test_mc_with_budget () =
  with_table good_table @@ fun t ->
  check_exit "budgeted mc succeeds" 0
    [
      "mc"; t; "exists x. R(x)"; "--samples"; "2000"; "--virtual-rate";
      "100000"; "--timeout"; "10";
    ]

let test_anytime_with_budget () =
  with_table good_table @@ fun t ->
  check_exit "budgeted anytime succeeds" 0
    [
      "anytime"; t; "exists x. R(x)"; "--virtual-rate"; "100000"; "--timeout";
      "10";
    ]

let test_robust_clean () =
  with_table good_table @@ fun t ->
  check_exit "robust clean run" 0
    [
      "robust"; t; "exists x. R(x)"; "--virtual-rate"; "100000"; "--timeout";
      "10"; "--samples"; "1000"; "--seed"; "3";
    ]

let test_robust_with_faults_never_fails () =
  (* The supervisor contract: faults degrade the answer, they do not
     change the exit code. *)
  with_table good_table @@ fun t ->
  List.iter
    (fun seed ->
      check_exit
        (Printf.sprintf "robust under fault seed %d" seed)
        0
        [
          "robust"; t; "exists x. R(x)"; "--virtual-rate"; "100000";
          "--timeout"; "10"; "--samples"; "500"; "--seed"; "3";
          "--inject-faults"; string_of_int seed;
        ])
    [ 1; 5; 9 ]

let with_queries lines f =
  let path = Filename.temp_file "iowpdb_cli" ".queries" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  f path

let test_batch_ok () =
  with_table good_table @@ fun t ->
  with_queries
    [ "# comment and blank lines are skipped"; ""; "exists x. R(x)";
      "exists x. R(x)"; "!(forall y. R(y))" ]
  @@ fun qs ->
  check_exit "batch succeeds" 0 [ "batch"; t; qs ];
  check_exit "batch with knobs succeeds" 0
    [ "batch"; t; qs; "--domains"; "2"; "--bdd-cache-size"; "100"; "--stats" ]

let test_batch_bad_inputs () =
  with_table good_table @@ fun t ->
  check_exit "missing queries file exits 2" 2
    [ "batch"; t; "/nonexistent/queries" ];
  with_queries [ "exists x. R(" ] @@ fun bad ->
  check_exit "malformed member exits 2" 2 [ "batch"; t; bad ];
  with_queries [ "R(x)" ] @@ fun free ->
  check_exit "free variable member exits 2" 2 [ "batch"; t; free ];
  with_queries [ "# only comments" ] @@ fun empty ->
  check_exit "empty batch exits 2" 2 [ "batch"; t; empty ];
  with_queries [ "exists x. R(x)" ] @@ fun qs ->
  check_exit "bad domain count exits 2" 2 [ "batch"; t; qs; "--domains"; "0" ]

let test_robust_tight_budget_exit_zero () =
  with_table good_table @@ fun t ->
  check_exit "starved budget still exits 0" 0
    [
      "robust"; t; "exists x. R(x)"; "--virtual-rate"; "100"; "--timeout";
      "0.01"; "--seed"; "0";
    ]

let () =
  Alcotest.run "cli"
    [
      ( "exit_codes",
        [
          Alcotest.test_case "query ok" `Quick test_query_ok;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "malformed query" `Quick test_malformed_query;
          Alcotest.test_case "malformed table" `Quick test_malformed_table;
          Alcotest.test_case "duplicate fact" `Quick test_duplicate_fact;
          Alcotest.test_case "free variable" `Quick test_free_variable_query;
          Alcotest.test_case "bad eps" `Quick test_bad_eps;
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "batch ok" `Quick test_batch_ok;
          Alcotest.test_case "batch bad inputs" `Quick test_batch_bad_inputs;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "mc" `Quick test_mc_with_budget;
          Alcotest.test_case "anytime" `Quick test_anytime_with_budget;
        ] );
      ( "robust",
        [
          Alcotest.test_case "clean" `Quick test_robust_clean;
          Alcotest.test_case "faults never fail" `Quick
            test_robust_with_faults_never_fails;
          Alcotest.test_case "tight budget" `Quick
            test_robust_tight_budget_exit_zero;
        ] );
    ]
