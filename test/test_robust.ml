(* Tests for the robustness layer: budget accounting and cooperative
   cancellation, deterministic retry schedules, first-access-only fault
   injection, budget-truncated Monte Carlo, and the degradation-ladder
   supervisor's soundness and bit-reproducibility. *)

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn
let fact r args = Fact.make r (List.map i args)
let r_fact k = fact "R" [ k ]
let s_fact k = fact "S" [ k ]

(* p_i = (1/2)^(i+1): mass 1, tails 2^-n; the limit of
   P(exists x. R(x)) is 1 - prod (1 - 2^-(i+1)) = 0.711211904... *)
let geo_source () =
  Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
    ~facts:r_fact ()

let geo_limit = 1.0 -. 0.2887880951

(* ------------------------------------------------------------------ *)
(* Budget *)
(* ------------------------------------------------------------------ *)

let test_budget_caps () =
  let b = Budget.create ~max_facts:3 () in
  Budget.spend b Budget.Facts 2;
  Alcotest.(check bool) "under cap" true (Budget.ok b);
  Alcotest.(check (option int)) "remaining" (Some 1)
    (Budget.cap_remaining b Budget.Facts);
  Budget.spend b Budget.Facts 1;
  Alcotest.(check bool) "at cap" false (Budget.ok b);
  (match Budget.exhausted b with
  | Some (Budget.Cap Budget.Facts) -> ()
  | _ -> Alcotest.fail "expected Cap Facts");
  (match Budget.checkpoint b with
  | () -> Alcotest.fail "checkpoint should raise"
  | exception Budget.Exhausted (Budget.Cap Budget.Facts) -> ());
  (* other kinds are not constrained by a Facts cap *)
  let b' = Budget.create ~max_facts:3 () in
  Budget.spend b' Budget.Samples 1_000;
  Alcotest.(check bool) "samples uncapped" true (Budget.ok b')

let test_budget_virtual_clock () =
  (* 100 units per second, 0.1 s deadline: exactly 10 units of work. *)
  let b = Budget.create ~clock:(Budget.Virtual 100) ~timeout:0.1 () in
  Alcotest.(check (option int)) "10 units" (Some 10)
    (Budget.time_remaining_units b);
  Budget.spend b Budget.Steps 4;
  Alcotest.(check (option int)) "6 left" (Some 6)
    (Budget.time_remaining_units b);
  Alcotest.(check (float 1e-12)) "elapsed" 0.04 (Budget.elapsed b);
  Budget.spend b Budget.Steps 6;
  (match Budget.exhausted b with
  | Some Budget.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout")

let test_budget_child () =
  (* Spends propagate upward; a parent trip exhausts the child. *)
  let parent = Budget.create ~max_facts:2 () in
  let child = Budget.child parent in
  Budget.spend child Budget.Facts 2;
  Alcotest.(check int) "parent saw the spend" 2
    (Budget.spent parent Budget.Facts);
  Alcotest.(check bool) "parent tripped" false (Budget.ok parent);
  Alcotest.(check bool) "child follows parent" false (Budget.ok child);
  (* ...but a blown child cap leaves the parent alive: this is what lets
     one ladder rung fail on a node cap without condemning the rest. *)
  let parent = Budget.unlimited () in
  let child = Budget.child ~max_bdd_nodes:1 parent in
  Budget.spend child Budget.Bdd_nodes 1;
  Alcotest.(check bool) "child tripped" false (Budget.ok child);
  Alcotest.(check bool) "parent unaffected" true (Budget.ok parent)

let test_budget_refund () =
  let b =
    Budget.create ~max_bdd_nodes:5 ~clock:(Budget.Virtual 100) ~timeout:1.0 ()
  in
  Budget.spend b Budget.Bdd_nodes 4;
  Budget.refund b Budget.Bdd_nodes 3;
  Alcotest.(check int) "spent netted" 1 (Budget.spent b Budget.Bdd_nodes);
  (* the virtual clock keeps counting refunded work: refunds free cap
     room, they never rewind time *)
  Alcotest.(check (float 1e-12)) "elapsed monotone" 0.04 (Budget.elapsed b);
  Budget.spend b Budget.Bdd_nodes 4;
  Alcotest.(check bool) "cap sees net spend" false (Budget.ok b);
  (* a trip is sticky: refunding after exhaustion does not revive *)
  Budget.refund b Budget.Bdd_nodes 4;
  (match Budget.exhausted b with
  | Some (Budget.Cap Budget.Bdd_nodes) -> ()
  | _ -> Alcotest.fail "trip must stay sticky");
  (* refunds propagate to the parent like spends do *)
  let parent = Budget.unlimited () in
  let child = Budget.child ~max_bdd_nodes:10 parent in
  Budget.spend child Budget.Bdd_nodes 6;
  Budget.refund child Budget.Bdd_nodes 6;
  Alcotest.(check int) "parent netted" 0 (Budget.spent parent Budget.Bdd_nodes);
  Alcotest.check_raises "negative refund"
    (Invalid_argument "Budget.refund: negative amount") (fun () ->
      Budget.refund child Budget.Bdd_nodes (-1))

let test_budget_cancel () =
  let b = Budget.unlimited () in
  Alcotest.(check bool) "fresh" true (Budget.ok b);
  Budget.cancel b;
  (match Budget.exhausted b with
  | Some Budget.Cancelled -> ()
  | _ -> Alcotest.fail "expected Cancelled");
  (* idempotent, and the first cause is sticky *)
  Budget.cancel b;
  (match Budget.exhausted b with
  | Some Budget.Cancelled -> ()
  | _ -> Alcotest.fail "cause must stay Cancelled")

(* ------------------------------------------------------------------ *)
(* Retry *)
(* ------------------------------------------------------------------ *)

let fast_policy =
  { Retry.default_policy with base_delay = 1e-4; max_delay = 1e-3 }

let prop_retry_terminates_within_cap =
  QCheck.Test.make ~name:"retry stops after exactly max_attempts failures"
    ~count:50
    QCheck.(pair (int_bound 10_000) (int_range 1 6))
    (fun (seed, max_attempts) ->
      let policy = { fast_policy with max_attempts } in
      let calls = ref 0 in
      let r =
        Retry.run ~policy ~sleep:ignore ~what:"test" ~seed (fun () ->
            incr calls;
            raise (Faulty_source.Transient "injected"))
      in
      (match r with Error _ -> () | Ok _ -> QCheck.Test.fail_report "succeeded?");
      !calls = max_attempts)

let prop_retry_schedule_deterministic =
  QCheck.Test.make ~name:"retry sleep schedule is a pure function of the seed"
    ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let observed () =
        let slept = ref [] in
        let _ =
          Retry.run ~policy:fast_policy
            ~sleep:(fun d -> slept := d :: !slept)
            ~what:"test" ~seed
            (fun () -> raise (Faulty_source.Transient "injected"))
        in
        List.rev !slept
      in
      let a = observed () and b = observed () in
      (* bit-identical reruns, matching the pure schedule, within bounds *)
      a = b
      && a = Retry.delays fast_policy ~seed
      && List.for_all
           (fun d ->
             d >= 0.0
             && d <= fast_policy.Retry.max_delay *. (1.0 +. fast_policy.Retry.jitter))
           a)

let test_retry_non_retryable () =
  let calls = ref 0 in
  let r =
    Retry.run ~policy:fast_policy ~sleep:ignore
      ~retryable:(function Errors.Engine_failure _ -> true | _ -> false)
      ~what:"test" ~seed:0
      (fun () ->
        incr calls;
        invalid_arg "corrupt")
  in
  Alcotest.(check int) "no second attempt" 1 !calls;
  (match r with
  | Error (Errors.Model_invalid _) -> ()
  | Error e -> Alcotest.failf "wrong class: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "should not succeed")

let test_retry_budget_stops_attempts () =
  let b = Budget.create ~max_steps:1 () in
  Budget.spend b Budget.Steps 1;
  let calls = ref 0 in
  let r =
    Retry.run ~policy:{ fast_policy with max_attempts = 5 } ~sleep:ignore
      ~budget:b ~what:"test" ~seed:0 (fun () ->
        incr calls;
        raise (Faulty_source.Transient "injected"))
  in
  (match r with Error _ -> () | Ok _ -> Alcotest.fail "should not succeed");
  Alcotest.(check bool) "attempts cut short" true (!calls < 5)

(* Regression: backoff sleeps are clamped to the budget's remaining wall
   time.  This chain wants to sleep 0.2 s + 0.4 s between attempts, but
   the budget's deadline is 50 ms — before the clamp, the run would
   voluntarily overshoot the deadline by an order of magnitude. *)
let test_retry_sleeps_capped_by_deadline () =
  let b = Budget.create ~timeout:0.05 () in
  let slept = ref 0.0 in
  let policy =
    {
      Retry.max_attempts = 3;
      base_delay = 0.2;
      multiplier = 2.0;
      max_delay = 1.0;
      jitter = 0.0;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Retry.run ~policy
      ~sleep:(fun d ->
        slept := !slept +. d;
        Unix.sleepf d)
      ~budget:b ~what:"test" ~seed:0
      (fun () -> raise (Faulty_source.Transient "injected"))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r with Error _ -> () | Ok _ -> Alcotest.fail "should not succeed");
  Alcotest.(check bool)
    (Printf.sprintf "total sleep %.3fs within deadline" !slept)
    true (!slept <= 0.05 +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "returned in %.3fs, not after the 0.6s schedule" elapsed)
    true
    (elapsed < 0.15);
  (* The static schedule agrees: cumulative delays never exceed the
     budget's remaining time. *)
  let ds = Retry.delays ~budget:(Budget.create ~timeout:0.05 ()) policy ~seed:0 in
  Alcotest.(check bool) "schedule clamped" true
    (List.fold_left ( +. ) 0.0 ds <= 0.05 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Fault injection *)
(* ------------------------------------------------------------------ *)

let test_faulty_none_is_identity () =
  let clean = geo_source () in
  let w = Faulty_source.wrap Faulty_source.none (geo_source ()) in
  List.iter2
    (fun (f, p) (f', p') ->
      Alcotest.(check string) "fact" (Fact.to_string f) (Fact.to_string f');
      Alcotest.(check bool) "prob" true (Rational.equal p p'))
    (Fact_source.prefix clean 8) (Fact_source.prefix w 8);
  List.iter
    (fun n ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "tail at %d" n)
        (Fact_source.tail_mass clean n) (Fact_source.tail_mass w n))
    [ 0; 3; 9 ]

let test_faulty_transient_fires_once () =
  let cfg = { Faulty_source.none with seed = 7; transient = 1.0 } in
  let w = Faulty_source.wrap cfg (geo_source ()) in
  (* every entry faults on first access, so each attempt clears exactly
     one more entry; prefix 4 succeeds on the fifth try *)
  let attempts = ref 0 in
  let rec go () =
    incr attempts;
    match Fact_source.prefix w 4 with
    | entries -> entries
    | exception Faulty_source.Transient _ -> go ()
  in
  let entries = go () in
  Alcotest.(check int) "one fault per entry" 5 !attempts;
  List.iter2
    (fun (f, p) (f', p') ->
      Alcotest.(check string) "fact survives" (Fact.to_string f)
        (Fact.to_string f');
      Alcotest.(check bool) "prob survives" true (Rational.equal p p'))
    (Fact_source.prefix (geo_source ()) 4)
    entries;
  (* a survived entry is served clean from then on *)
  Alcotest.(check int) "cached" 4 (List.length (Fact_source.prefix w 4))

let test_faulty_corrupt_fires_once () =
  let cfg = { Faulty_source.none with seed = 3; bad_prob = 1.0 } in
  let w = Faulty_source.wrap cfg (geo_source ()) in
  (match Fact_source.nth w 0 with
  | _ -> Alcotest.fail "first access should raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the injection" true
      (Errors.contains_substring msg "corrupt"));
  (match Fact_source.nth w 0 with
  | Some (f, p) ->
    Alcotest.(check string) "true entry on retry" "R(0)" (Fact.to_string f);
    Alcotest.(check bool) "true prob" true (Rational.equal p Rational.half)
  | None -> Alcotest.fail "entry lost after fault"
  | exception _ -> Alcotest.fail "fault fired twice")

let test_faulty_tail_nan_fires_once () =
  let cfg = { Faulty_source.none with seed = 11; nan_tail = 1.0 } in
  let w = Faulty_source.wrap cfg (geo_source ()) in
  (match Fact_source.tail_mass w 5 with
  | Some x -> Alcotest.(check bool) "NaN answer" true (Float.is_nan x)
  | None -> Alcotest.fail "expected Some nan");
  Alcotest.(check (option (float 0.0)))
    "clean on retry"
    (Fact_source.tail_mass (geo_source ()) 5)
    (Fact_source.tail_mass w 5)

let test_faulty_tail_blackout_fires_once () =
  let cfg = { Faulty_source.none with seed = 11; tail_blackout = 1.0 } in
  let w = Faulty_source.wrap cfg (geo_source ()) in
  Alcotest.(check (option (float 0.0))) "blackout" None (Fact_source.tail_mass w 5);
  Alcotest.(check (option (float 0.0)))
    "clean on retry"
    (Fact_source.tail_mass (geo_source ()) 5)
    (Fact_source.tail_mass w 5)

let prop_fault_schedule_pure =
  QCheck.Test.make ~name:"fault schedule is a pure function of seed and index"
    ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cfg = Faulty_source.default ~seed in
      List.for_all
        (fun idx ->
          Faulty_source.entry_faults cfg idx = Faulty_source.entry_faults cfg idx
          && Faulty_source.tail_faults cfg idx = Faulty_source.tail_faults cfg idx)
        (List.init 20 Fun.id))

(* ------------------------------------------------------------------ *)
(* Budget-truncated Monte Carlo *)
(* ------------------------------------------------------------------ *)

let test_mc_budget_clamp_deterministic () =
  let phi = parse "exists x. R(x)" in
  let run domains =
    let cti = Countable_ti.create (geo_source ()) in
    let b = Budget.create ~max_samples:1_500 () in
    Mc_eval.boolean ~budget:b ~domains ~batch_size:512 ~seed:42 ~samples:10_000
      (Mc_eval.Ti cti) phi
  in
  let r1 = run 1 and r3 = run 3 in
  Alcotest.(check int) "clamped to the cap" 1_500 r1.Mc_eval.samples;
  Alcotest.(check int) "request recorded" 10_000 r1.Mc_eval.samples_requested;
  Alcotest.(check bool) "marked interrupted" true r1.Mc_eval.interrupted;
  (* the truncated run is a function of the budget alone, not of the
     domain count *)
  Alcotest.(check int) "same worlds" r1.Mc_eval.samples r3.Mc_eval.samples;
  Alcotest.(check int) "same hits" r1.Mc_eval.hits r3.Mc_eval.hits;
  Alcotest.(check (float 0.0)) "same estimate" r1.Mc_eval.estimate
    r3.Mc_eval.estimate;
  Alcotest.(check bool) "sound enclosure" true
    (Interval.contains r1.Mc_eval.bounds geo_limit)

let test_mc_budget_exhausted_on_entry () =
  let phi = parse "exists x. R(x)" in
  let cti = Countable_ti.create (geo_source ()) in
  let b = Budget.create ~max_samples:0 () in
  match
    Mc_eval.boolean ~budget:b ~seed:0 ~samples:100 (Mc_eval.Ti cti) phi
  with
  | _ -> Alcotest.fail "expected Budget.Exhausted"
  | exception Budget.Exhausted (Budget.Cap Budget.Samples) -> ()

(* ------------------------------------------------------------------ *)
(* Budgeted anytime sessions and recoverable completion *)
(* ------------------------------------------------------------------ *)

let test_anytime_budget_interrupt () =
  let b = Budget.create ~max_steps:3 () in
  let s = Anytime.create ~eps:1e-6 ~budget:b (geo_source ()) (parse "exists x. R(x)") in
  let reason, steps = Anytime.run s in
  (match reason with
  | Anytime.Interrupted (Budget.Cap Budget.Steps) -> ()
  | r -> Alcotest.failf "expected Interrupted, got %s" (Anytime.stop_reason_to_string r));
  Alcotest.(check bool) "at most 3 steps" true (List.length steps <= 3);
  (* the running bounds are still a sound enclosure *)
  Alcotest.(check bool) "bounds contain the limit" true
    (Interval.contains (Anytime.bounds s) geo_limit)

let test_bdd_nodes_budget_gc_completes () =
  (* Regression for live-node accounting across the Budget <-> Bdd hook
     pair ([tick] charges each allocation, [on_free] refunds a sweep) —
     the exact wiring Approx_eval and Anytime use.  The workload
     compiles a sequence of lineage blocks over disjoint variables,
     keeping only the latest alive: without GC the [Bdd_nodes] cap trips
     on blocks that are long dead; with GC the refunds keep net spend at
     the live count and the same cap admits the full sequence. *)
  let rounds = 10 and block = 50 in
  let cap = 600 in
  let expr r =
    Bool_expr.disj
      (List.init block (fun idx ->
           let v = 2 * ((r * block) + idx) in
           Bool_expr.and2 (Bool_expr.var v) (Bool_expr.var (v + 1))))
  in
  let run gc_threshold =
    let b = Budget.create ~max_bdd_nodes:cap () in
    let m =
      Bdd.manager
        ~tick:(fun () -> Budget.charge b Budget.Bdd_nodes 1)
        ~on_free:(fun n -> Budget.refund b Budget.Bdd_nodes n)
        ~gc_threshold ()
    in
    let cur = ref (Bdd.tru m) in
    Bdd.protect !cur;
    match
      for r = 0 to rounds - 1 do
        let d = Bdd.of_expr m (expr r) in
        Bdd.protect d;
        Bdd.release !cur;
        cur := d;
        ignore (Bdd.maybe_gc m)
      done
    with
    | () -> Ok (Budget.spent b Budget.Bdd_nodes)
    | exception Budget.Exhausted cause -> Error cause
  in
  (match run max_int with
  | Error (Budget.Cap Budget.Bdd_nodes) -> ()
  | Error c ->
    Alcotest.failf "unexpected exhaustion without GC: %s"
      (Budget.exhaustion_to_string c)
  | Ok spent ->
    Alcotest.failf "expected a node-cap trip without GC (spent %d)" spent);
  match run 128 with
  | Ok spent ->
    Alcotest.(check bool)
      (Printf.sprintf "net spend tracks live nodes (%d <= %d)" spent cap)
      true (spent <= cap)
  | Error c ->
    Alcotest.failf "GC run should complete under the same cap, got %s"
      (Budget.exhaustion_to_string c)

let test_completion_uncertified_tail_partial () =
  (* A convergent source whose certified tail bound shrinks only like
     1/n: no truncation below the probe bound certifies a tiny eps, so
     the "series may converge arbitrarily slowly" caveat of Section 6
     fires — as a recoverable outcome carrying the best sound enclosure
     the deepest observed tail still implies, not as an exception. *)
  let slow =
    Fact_source.make ~name:"slow"
      ~enum:(Seq.map (fun i -> (s_fact i, q 1 ((i + 2) * (i + 2)))) (Seq.ints 0))
      ~tail:(fun n -> Some (1.0 /. float_of_int (n + 1)))
      ()
  in
  let ti = Ti_table.create [ (r_fact 1, q 1 2) ] in
  let c = Completion.complete_ti ti slow in
  match Completion.query_prob_r c ~eps:1e-9 (parse "exists x. S(x)") with
  | Ok _ -> Alcotest.fail "a 1/n tail cannot certify eps = 1e-9"
  | Error (Errors.Budget_exhausted { partial = Some iv; what; _ }) ->
    Alcotest.(check bool) "names the uncertified tail" true
      (Errors.contains_substring what "tail does not certify");
    (* the conditional enclosure of a trivial base interval is wide —
       what matters is that it is a usable interval, not an exception *)
    Alcotest.(check bool) "within [0,1]" true
      (Interval.lo iv >= 0.0 && Interval.hi iv <= 1.0)
  | Error e -> Alcotest.failf "wrong class: %s" (Errors.to_string e)

(* ------------------------------------------------------------------ *)
(* Supervisor *)
(* ------------------------------------------------------------------ *)

let generous_budget () =
  Budget.create ~clock:(Budget.Virtual 1_000_000) ~timeout:2.0 ()

let test_robust_clean_converges () =
  let a =
    Robust_eval.query ~budget:(generous_budget ()) ~eps:0.01 ~mc_samples:2_000
      ~seed:1 (geo_source ()) (parse "exists x. R(x)")
  in
  Alcotest.(check string) "converged" "converged" a.Robust_eval.provenance.stopped;
  Alcotest.(check bool) "width within 2 eps" true
    (Interval.width a.Robust_eval.enclosure <= 0.02);
  Alcotest.(check bool) "contains the limit" true
    (Interval.contains a.Robust_eval.enclosure geo_limit);
  Alcotest.(check bool) "estimate inside the enclosure" true
    (Interval.contains a.Robust_eval.enclosure a.Robust_eval.estimate)

let test_robust_validation () =
  (match Robust_eval.query ~eps:0.0 (geo_source ()) (parse "exists x. R(x)") with
  | _ -> Alcotest.fail "eps = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Robust_eval.query (geo_source ()) (parse "R(x)") with
  | _ -> Alcotest.fail "free variables must be rejected"
  | exception Invalid_argument _ -> ()

let arb_fault_config =
  let open QCheck.Gen in
  let gen =
    let* seed = int_bound 100_000 in
    let* transient = float_bound_inclusive 0.8 in
    let* bad_prob = float_bound_inclusive 0.5 in
    let* nan_tail = float_bound_inclusive 0.8 in
    let* tail_blackout = float_bound_inclusive 0.8 in
    return
      {
        Faulty_source.seed;
        transient;
        stall = 0.0;
        stall_seconds = 0.0;
        bad_prob;
        nan_tail;
        tail_blackout;
      }
  in
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "seed=%d transient=%g bad=%g nan=%g blackout=%g"
        c.Faulty_source.seed c.Faulty_source.transient c.Faulty_source.bad_prob
        c.Faulty_source.nan_tail c.Faulty_source.tail_blackout)
    gen

let prop_robust_sound_under_faults =
  QCheck.Test.make
    ~name:"supervisor never raises and stays sound under any fault schedule"
    ~count:20 arb_fault_config
    (fun cfg ->
      let src = Faulty_source.wrap cfg (geo_source ()) in
      let a =
        Robust_eval.query ~budget:(generous_budget ()) ~eps:0.01
          ~mc_samples:1_000 ~seed:2 src (parse "exists x. R(x)")
      in
      Interval.contains a.Robust_eval.enclosure geo_limit)

let prop_robust_contains_exact_on_table =
  (* The acceptance property on a seed example table: the enclosure
     contains the exact closed-world answer, faults or not.  With
     R(1..3) at 1/2, 1/3, 1/4:  P(exists x. R(x)) = 1 - 1/4 = 3/4. *)
  QCheck.Test.make
    ~name:"enclosure contains the exact table answer under faults" ~count:20
    arb_fault_config
    (fun cfg ->
      let ti =
        Ti_table.create [ (r_fact 1, q 1 2); (r_fact 2, q 1 3); (r_fact 3, q 1 4) ]
      in
      let phi = parse "exists x. R(x)" in
      let exact =
        Rational.to_float (Query_eval.boolean ti phi)
      in
      let src = Faulty_source.wrap cfg (Fact_source.of_list (Ti_table.facts ti)) in
      let a =
        Robust_eval.query ~budget:(generous_budget ()) ~eps:0.01 ~mc_samples:500
          ~seed:5 src phi
      in
      Interval.contains a.Robust_eval.enclosure exact)

let test_robust_starved_budget_never_raises () =
  (* one virtual work unit: nothing can finish, the answer degrades to a
     wide-but-sound enclosure instead of an exception *)
  let b = Budget.create ~clock:(Budget.Virtual 100) ~timeout:0.01 () in
  let a =
    Robust_eval.query ~budget:b ~eps:0.001 ~seed:0
      (Faulty_source.wrap (Faulty_source.default ~seed:9) (geo_source ()))
      (parse "exists x. R(x)")
  in
  Alcotest.(check bool) "budget exhaustion reported" true
    (Errors.contains_substring a.Robust_eval.provenance.stopped "budget exhausted");
  Alcotest.(check bool) "still sound" true
    (Interval.contains a.Robust_eval.enclosure geo_limit)

let test_robust_bit_identical_under_faults () =
  (* The headline acceptance criterion: faults injected, a 100 ms budget
     on a virtual clock — provenance and enclosure bit-identical across
     runs. *)
  let run () =
    let cfg = { (Faulty_source.default ~seed:5) with stall = 0.0 } in
    let b = Budget.create ~clock:(Budget.Virtual 10_000) ~timeout:0.1 () in
    let a =
      Robust_eval.query ~budget:b ~eps:0.005 ~mc_samples:20_000 ~seed:3
        (Faulty_source.wrap cfg (geo_source ()))
        (parse "exists x. R(x)")
    in
    Robust_eval.answer_to_string a
  in
  let a1 = run () and a2 = run () in
  Alcotest.(check string) "identical answer and provenance" a1 a2

let test_robust_cmp_skips_anytime () =
  let a =
    Robust_eval.query ~budget:(generous_budget ()) ~eps:0.05 ~mc_samples:500
      ~seed:4 (geo_source ())
      (parse "exists x. R(x) & x >= 0")
  in
  let skipped =
    List.exists
      (fun at ->
        at.Robust_eval.engine = Robust_eval.Anytime
        &&
        match at.Robust_eval.outcome with
        | Robust_eval.Skipped _ -> true
        | _ -> false)
      a.Robust_eval.provenance.attempts
  in
  Alcotest.(check bool) "anytime rung skipped for Cmp" true skipped

let outcome_of a engine =
  List.find_map
    (fun at ->
      if at.Robust_eval.engine = engine then Some at.Robust_eval.outcome
      else None)
    a.Robust_eval.provenance.attempts

let test_robust_lifted_rung () =
  (* Safe query: the lifted rung answers first and certifies. *)
  let a =
    Robust_eval.query ~budget:(generous_budget ()) ~eps:0.01 ~mc_samples:500
      ~seed:6 (geo_source ()) (parse "exists x. R(x)")
  in
  (match outcome_of a Robust_eval.Lifted with
  | Some (Robust_eval.Certified _) -> ()
  | Some _ -> Alcotest.fail "lifted rung did not certify the safe query"
  | None -> Alcotest.fail "no lifted attempt recorded");
  Alcotest.(check bool) "contains the limit" true
    (Interval.contains a.Robust_eval.enclosure geo_limit);
  (* Hard query: the rung is skipped (a query property, not a fault),
     and the grounded rungs still answer. *)
  let b =
    Robust_eval.query ~budget:(generous_budget ()) ~eps:0.05 ~mc_samples:500
      ~seed:6 (geo_source ())
      (parse "forall x. R(x)")
  in
  match outcome_of b Robust_eval.Lifted with
  | Some (Robust_eval.Skipped _) -> ()
  | Some _ ->
    Alcotest.fail "lifted rung should be skipped on the hard side"
  | None -> Alcotest.fail "no lifted attempt recorded"

(* ------------------------------------------------------------------ *)

let props =
  [
    prop_retry_terminates_within_cap;
    prop_retry_schedule_deterministic;
    prop_fault_schedule_pure;
    prop_robust_sound_under_faults;
    prop_robust_contains_exact_on_table;
  ]

let () =
  Alcotest.run "robust"
    [
      ( "budget",
        [
          Alcotest.test_case "caps" `Quick test_budget_caps;
          Alcotest.test_case "virtual clock" `Quick test_budget_virtual_clock;
          Alcotest.test_case "child" `Quick test_budget_child;
          Alcotest.test_case "refund" `Quick test_budget_refund;
          Alcotest.test_case "cancel" `Quick test_budget_cancel;
        ] );
      ( "retry",
        [
          Alcotest.test_case "non-retryable" `Quick test_retry_non_retryable;
          Alcotest.test_case "budget stops attempts" `Quick
            test_retry_budget_stops_attempts;
          Alcotest.test_case "sleeps capped by deadline" `Quick
            test_retry_sleeps_capped_by_deadline;
        ] );
      ( "faulty_source",
        [
          Alcotest.test_case "none is identity" `Quick test_faulty_none_is_identity;
          Alcotest.test_case "transient once" `Quick
            test_faulty_transient_fires_once;
          Alcotest.test_case "corrupt once" `Quick test_faulty_corrupt_fires_once;
          Alcotest.test_case "tail NaN once" `Quick test_faulty_tail_nan_fires_once;
          Alcotest.test_case "tail blackout once" `Quick
            test_faulty_tail_blackout_fires_once;
        ] );
      ( "mc_budget",
        [
          Alcotest.test_case "clamp deterministic" `Quick
            test_mc_budget_clamp_deterministic;
          Alcotest.test_case "exhausted on entry" `Quick
            test_mc_budget_exhausted_on_entry;
        ] );
      ( "engines",
        [
          Alcotest.test_case "anytime interrupt" `Quick test_anytime_budget_interrupt;
          Alcotest.test_case "gc keeps node budget live" `Quick
            test_bdd_nodes_budget_gc_completes;
          Alcotest.test_case "completion partial" `Quick
            test_completion_uncertified_tail_partial;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean convergence" `Quick test_robust_clean_converges;
          Alcotest.test_case "validation" `Quick test_robust_validation;
          Alcotest.test_case "starved budget" `Quick
            test_robust_starved_budget_never_raises;
          Alcotest.test_case "bit-identical under faults" `Quick
            test_robust_bit_identical_under_faults;
          Alcotest.test_case "Cmp skips anytime" `Quick test_robust_cmp_skips_anytime;
          Alcotest.test_case "lifted rung" `Quick test_robust_lifted_rung;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
