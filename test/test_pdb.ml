(* Tests for the finite-PDB core: TI tables, BID tables, explicit world
   tables (views, conditioning, products) and the four query engines. *)

let i n = Value.Int n
let q = Rational.of_ints
let fact r args = Fact.make r (List.map i args)
let parse = Fo_parse.parse_exn

let check_q msg expected actual =
  Alcotest.(check string) msg (Rational.to_string expected)
    (Rational.to_string actual)

(* A small reference TI table used throughout. *)
let ti =
  Ti_table.create
    [
      (fact "R" [ 1 ], q 1 2);
      (fact "R" [ 2 ], q 1 3);
      (fact "S" [ 1 ], q 1 4);
      (fact "S" [ 2 ], q 1 5);
    ]

(* ------------------------------------------------------------------ *)
(* Ti_table *)
(* ------------------------------------------------------------------ *)

let test_ti_basics () =
  Alcotest.(check int) "size" 4 (Ti_table.size ti);
  check_q "prob" (q 1 3) (Ti_table.prob ti (fact "R" [ 2 ]));
  check_q "absent" Rational.zero (Ti_table.prob ti (fact "R" [ 9 ]));
  check_q "expected size" (q 77 60) (Ti_table.expected_instance_size ti);
  Alcotest.(check int) "adom" 2 (List.length (Ti_table.active_domain ti))

let test_ti_validation () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Ti_table: duplicate fact R(1)") (fun () ->
      ignore (Ti_table.create [ (fact "R" [ 1 ], q 1 2); (fact "R" [ 1 ], q 1 3) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Ti_table: probability 3/2 out of range for R(1)")
    (fun () -> ignore (Ti_table.create [ (fact "R" [ 1 ], q 3 2) ]));
  (* zero-probability facts are dropped *)
  let t = Ti_table.create [ (fact "R" [ 1 ], Rational.zero) ] in
  Alcotest.(check int) "zero dropped" 0 (Ti_table.size t)

let test_ti_schema_validation () =
  let schema = Schema.make [ Schema.relation "R" 1 ] in
  Alcotest.check_raises "nonconforming"
    (Invalid_argument "Ti_table: fact R(1, 2) does not conform to the schema")
    (fun () -> ignore (Ti_table.create ~schema [ (fact "R" [ 1; 2 ], q 1 2) ]))

let test_ti_worlds_sum_to_one () =
  let total =
    Seq.fold_left
      (fun acc (_, p) -> Rational.add acc p)
      Rational.zero (Ti_table.worlds ti)
  in
  check_q "partition" Rational.one total;
  Alcotest.(check int) "2^4 worlds" 16 (Seq.length (Ti_table.worlds ti))

let test_ti_world_probability () =
  let w = Instance.of_list [ fact "R" [ 1 ] ] in
  (* 1/2 * 2/3 * 3/4 * 4/5 = 1/5 *)
  check_q "P({R(1)})" (q 1 5) (Ti_table.world_probability ti w);
  check_q "foreign fact" Rational.zero
    (Ti_table.world_probability ti (Instance.of_list [ fact "Z" [ 0 ] ]))

let test_ti_marginal_consistency () =
  List.iter
    (fun (f, p) -> check_q (Fact.to_string f) p (Ti_table.marginal_check ti f))
    (Ti_table.facts ti)

let test_ti_sampling_marginals () =
  let g = Prng.create ~seed:99 () in
  let n = 40_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Instance.mem (fact "R" [ 1 ]) (Ti_table.sample ti g) then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "~1/2" true (Float.abs (frac -. 0.5) < 0.02)

let test_ti_text_format () =
  let lines = String.split_on_char '\n' (Ti_table.to_string ti) in
  let ti' = Ti_table.of_lines lines in
  Alcotest.(check int) "same size" (Ti_table.size ti) (Ti_table.size ti');
  List.iter
    (fun (f, p) -> check_q (Fact.to_string f) p (Ti_table.prob ti' f))
    (Ti_table.facts ti);
  let ti'' = Ti_table.of_lines [ "# comment"; ""; "R(1) 0.25" ] in
  check_q "decimal prob" (q 1 4) (Ti_table.prob ti'' (fact "R" [ 1 ]))

let test_ti_of_file () =
  let path = Filename.temp_file "iowpdb" ".ti" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc (Ti_table.to_string ti);
  close_out oc;
  let ti' = Ti_table.of_file path in
  Alcotest.(check int) "roundtrip size" (Ti_table.size ti) (Ti_table.size ti');
  List.iter
    (fun (f, p) -> check_q (Fact.to_string f) p (Ti_table.prob ti' f))
    (Ti_table.facts ti)

let test_ti_of_file_no_leak () =
  (* Regression: a malformed table used to leave the input channel open;
     repeated failing loads exhausted the fd table. *)
  let bad = Filename.temp_file "iowpdb" ".ti" in
  Fun.protect ~finally:(fun () -> Sys.remove bad) @@ fun () ->
  let oc = open_out bad in
  output_string oc "R(1) not-a-probability\n";
  close_out oc;
  let fd_count () =
    if Sys.file_exists "/proc/self/fd" then
      Some (Array.length (Sys.readdir "/proc/self/fd"))
    else None
  in
  let before = fd_count () in
  for _ = 1 to 64 do
    match Ti_table.of_file bad with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "malformed table must be rejected"
  done;
  Alcotest.(check (option int)) "no fd leak" before (fd_count ())

let test_ti_of_file_streaming_large () =
  (* The parser streams line by line: a multi-MB generated table loads
     without ever materializing the file, and errors deep in the file
     still cite path:line.  (Correctness at scale is what's assertable;
     the O(longest line) peak is by construction — no line list.) *)
  let n = 60_000 in
  let path = Filename.temp_file "iowpdb_large" ".ti" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc "# generated table\n";
  for j = 1 to n do
    Printf.fprintf oc "R(%d, \"pad_%016d\") %d/%d\n" j j j (2 * n)
  done;
  close_out oc;
  Alcotest.(check bool)
    "file is multi-MB" true
    ((Unix.stat path).Unix.st_size > 2_000_000);
  let t = Ti_table.of_file path in
  Alcotest.(check int) "size" n (Ti_table.size t);
  check_q "first" (q 1 (2 * n))
    (Ti_table.prob t
       (Fact.make "R" [ i 1; Value.Str (Printf.sprintf "pad_%016d" 1) ]));
  check_q "last" Rational.half
    (Ti_table.prob t
       (Fact.make "R" [ i n; Value.Str (Printf.sprintf "pad_%016d" n) ]));
  (* A malformed line deep in the file is still located precisely. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "R(0) 3/2\n";
  close_out oc;
  match Ti_table.of_file path with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "cites line %d in %S" (n + 2) msg)
      true
      (Errors.contains_substring msg
         (Printf.sprintf "%s:%d" path (n + 2)))

let contains = Errors.contains_substring

let expect_parse_error name lines needles =
  match Ti_table.of_lines ~file:"t.ti" lines with
  | _ -> Alcotest.failf "%s: expected a parse error" name
  | exception Invalid_argument msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S in %S" name needle msg)
          true (contains msg needle))
      needles

let test_ti_located_errors () =
  (* Errors cite the file and the 1-based line an editor shows; blank
     lines and comments count. *)
  expect_parse_error "bad probability" [ "# header"; ""; "R(1) nope" ]
    [ "t.ti:3"; "bad probability" ];
  expect_parse_error "no fact" [ "R(1) 1/2"; "garbage" ] [ "t.ti:2" ];
  expect_parse_error "out of range" [ "R(1) 3/2" ] [ "t.ti:1"; "out of range" ];
  expect_parse_error "missing probability" [ "R(1)" ] [ "t.ti:1" ];
  (* without a file name the location degrades to "line N" *)
  match Ti_table.of_lines [ "R(1) nope" ] with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "line number" true (contains msg "line 1")

let test_ti_duplicate_policy () =
  (* Same fact, same probability: harmless redundancy, collapses. *)
  let ti = Ti_table.of_lines [ "R(1) 1/2"; "R(1) 0.5" ] in
  Alcotest.(check int) "collapsed" 1 (Ti_table.size ti);
  check_q "kept once" (q 1 2) (Ti_table.prob ti (fact "R" [ 1 ]));
  (* Same fact, different probability: a contradiction, rejected with
     both line numbers. *)
  expect_parse_error "contradictory duplicate"
    [ "R(1) 1/2"; "# sep"; "R(1) 1/3" ]
    [ "t.ti:3"; "duplicate fact R(1)"; "at line 1" ]

let expect_bid_parse_error name lines needles =
  match Bid_table.of_lines ~file:"b.bid" lines with
  | _ -> Alcotest.failf "%s: expected a parse error" name
  | exception Invalid_argument msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S in %S" name needle msg)
          true (contains msg needle))
      needles

let test_bid_parser_errors () =
  expect_bid_parse_error "bad probability"
    [ "# header"; "b1: R(1) nope" ]
    [ "b.bid:2"; "bad probability" ];
  expect_bid_parse_error "no block prefix" [ "garbage" ]
    [ "b.bid:1"; "block_id" ];
  expect_bid_parse_error "contradictory duplicate in block"
    [ "b1: R(1) 1/2 | R(1) 1/3" ]
    [ "b.bid:1"; "duplicate fact R(1)" ];
  (* same-probability repeats collapse, mirroring Ti_table *)
  let b = Bid_table.of_lines [ "b1: R(1) 1/4 | R(1) 1/4" ] in
  Alcotest.(check int) "collapsed" 1 (Bid_table.size b)

(* ------------------------------------------------------------------ *)
(* Bid_table *)
(* ------------------------------------------------------------------ *)

let bid =
  Bid_table.create
    [
      {
        Bid_table.block_id = "b1";
        alternatives = [ (fact "R" [ 1 ], q 1 2); (fact "R" [ 2 ], q 1 3) ];
      };
      { Bid_table.block_id = "b2"; alternatives = [ (fact "S" [ 1 ], q 1 4) ] };
    ]

let test_bid_basics () =
  Alcotest.(check int) "support" 3 (Bid_table.size bid);
  Alcotest.(check int) "blocks" 2 (Bid_table.num_blocks bid);
  check_q "slack b1" (q 1 6) (Bid_table.block_slack bid "b1");
  check_q "slack b2" (q 3 4) (Bid_table.block_slack bid "b2");
  Alcotest.(check (option string)) "block of" (Some "b1")
    (Bid_table.block_of_fact bid (fact "R" [ 2 ]));
  check_q "expected size" (q 13 12) (Bid_table.expected_instance_size bid)

let test_bid_validation () =
  Alcotest.check_raises "over mass"
    (Invalid_argument "Bid_table: block b sums to 7/6 > 1") (fun () ->
      ignore
        (Bid_table.create
           [
             {
               Bid_table.block_id = "b";
               alternatives =
                 [ (fact "R" [ 1 ], q 1 2); (fact "R" [ 2 ], q 2 3) ];
             };
           ]));
  Alcotest.check_raises "dup fact"
    (Invalid_argument "Bid_table: fact R(1) occurs twice") (fun () ->
      ignore
        (Bid_table.create
           [
             { Bid_table.block_id = "a"; alternatives = [ (fact "R" [ 1 ], q 1 3) ] };
             { Bid_table.block_id = "b"; alternatives = [ (fact "R" [ 1 ], q 1 3) ] };
           ]))

let test_bid_worlds () =
  let ws = List.of_seq (Bid_table.worlds bid) in
  (* (2 alternatives + 1) * (1 + 1) = 6 worlds *)
  Alcotest.(check int) "6 worlds" 6 (List.length ws);
  let total = List.fold_left (fun acc (_, p) -> Rational.add acc p) Rational.zero ws in
  check_q "partition" Rational.one total;
  (* exclusivity: no world has both R(1) and R(2) *)
  Alcotest.(check bool) "exclusive" true
    (List.for_all
       (fun (w, _) ->
         not (Instance.mem (fact "R" [ 1 ]) w && Instance.mem (fact "R" [ 2 ]) w))
       ws)

let test_bid_world_probability () =
  (* P({R(1), S(1)}) = 1/2 * 1/4 = 1/8 *)
  check_q "good world" (q 1 8)
    (Bid_table.world_probability bid
       (Instance.of_list [ fact "R" [ 1 ]; fact "S" [ 1 ] ]));
  (* P({}) = slack(b1) * slack(b2) = 1/6 * 3/4 = 1/8 *)
  check_q "empty world" (q 1 8) (Bid_table.world_probability bid Instance.empty);
  (* bad: two facts from b1 *)
  check_q "bad world" Rational.zero
    (Bid_table.world_probability bid
       (Instance.of_list [ fact "R" [ 1 ]; fact "R" [ 2 ] ]))

let test_bid_marginals_against_worlds () =
  List.iter
    (fun f ->
      let direct = Bid_table.prob bid f in
      let from_worlds =
        Seq.fold_left
          (fun acc (w, p) -> if Instance.mem f w then Rational.add acc p else acc)
          Rational.zero (Bid_table.worlds bid)
      in
      check_q (Fact.to_string f) direct from_worlds)
    (Bid_table.support bid)

let test_bid_sampling_exclusivity () =
  let g = Prng.create ~seed:7 () in
  for _ = 1 to 2000 do
    let w = Bid_table.sample bid g in
    if Instance.mem (fact "R" [ 1 ]) w && Instance.mem (fact "R" [ 2 ]) w then
      Alcotest.fail "sampled world violates block exclusivity"
  done

let test_bid_of_ti () =
  let b = Bid_table.of_ti ti in
  Alcotest.(check int) "singleton blocks" (Ti_table.size ti)
    (Bid_table.num_blocks b);
  check_q "same expected size"
    (Ti_table.expected_instance_size ti)
    (Bid_table.expected_instance_size b)

(* ------------------------------------------------------------------ *)
(* Finite_pdb *)
(* ------------------------------------------------------------------ *)

let test_finite_create_validation () =
  Alcotest.check_raises "bad mass"
    (Invalid_argument "Finite_pdb.create: masses sum to 3/4, not 1") (fun () ->
      ignore (Finite_pdb.create [ (Instance.empty, q 3 4) ]));
  (* duplicates merged *)
  let d =
    Finite_pdb.create
      [ (Instance.empty, q 1 2); (Instance.empty, q 1 4); (Instance.singleton (fact "R" [ 1 ]), q 1 4) ]
  in
  Alcotest.(check int) "merged" 2 (Finite_pdb.num_worlds d);
  check_q "merged mass" (q 3 4) (Finite_pdb.prob_of d Instance.empty)

let test_finite_of_ti_marginals () =
  let d = Finite_pdb.of_ti ti in
  Alcotest.(check int) "16 worlds" 16 (Finite_pdb.num_worlds d);
  List.iter
    (fun (f, p) -> check_q (Fact.to_string f) p (Finite_pdb.prob_ef d f))
    (Ti_table.facts ti);
  check_q "expected size matches" (Ti_table.expected_instance_size ti)
    (Finite_pdb.expected_size d);
  Alcotest.(check bool) "is TI" true (Finite_pdb.is_tuple_independent d)

let test_finite_of_bid_not_ti () =
  let d = Finite_pdb.of_bid bid in
  Alcotest.(check bool) "BID with 2-block is not TI" false
    (Finite_pdb.is_tuple_independent d)

let test_finite_prob_intersects () =
  let d = Finite_pdb.of_ti ti in
  (* P(E_F) for F = {R(1), R(2)}: 1 - (1/2)(2/3) = 2/3 *)
  check_q "E_F" (q 2 3)
    (Finite_pdb.prob_intersects d
       (Fact.Set.of_list [ fact "R" [ 1 ]; fact "R" [ 2 ] ]))

let test_finite_condition () =
  let d = Finite_pdb.of_ti ti in
  let c = Finite_pdb.condition d (fun w -> Instance.mem (fact "R" [ 1 ]) w) in
  check_q "P(R(1) | R(1)) = 1" Rational.one (Finite_pdb.prob_ef c (fact "R" [ 1 ]));
  (* independence: conditioning on R(1) leaves S(1) untouched *)
  check_q "P(S(1) | R(1)) = 1/4" (q 1 4) (Finite_pdb.prob_ef c (fact "S" [ 1 ]));
  Alcotest.check_raises "null event"
    (Invalid_argument "Finite_pdb.condition: conditioning on a null event")
    (fun () ->
      ignore (Finite_pdb.condition d (fun w -> Instance.size w > 100)))

let test_finite_view () =
  (* View: T(x) := exists y. R-binary... use unary R, S from ti:
     T(x) := R(x) & S(x). *)
  let d = Finite_pdb.of_ti ti in
  let v = Finite_pdb.apply_fo_view [ ("T", parse "R(x) & S(x)") ] d in
  (* P(T(1) present) = P(R(1) & S(1)) = 1/8 *)
  check_q "pushforward marginal" (q 1 8) (Finite_pdb.prob_ef v (fact "T" [ 1 ]));
  (* all worlds of the image contain only T-facts *)
  Alcotest.(check bool) "image schema" true
    (List.for_all
       (fun (w, _) ->
         Instance.for_all (fun f -> Fact.rel f = "T") w)
       (Finite_pdb.worlds v))

let test_finite_product () =
  let a = Finite_pdb.of_ti (Ti_table.create [ (fact "A" [ 1 ], q 1 2) ]) in
  let b = Finite_pdb.of_ti (Ti_table.create [ (fact "B" [ 1 ], q 1 3) ]) in
  let ab = Finite_pdb.product a b in
  Alcotest.(check int) "4 worlds" 4 (Finite_pdb.num_worlds ab);
  check_q "joint" (q 1 6)
    (Finite_pdb.prob_of ab (Instance.of_list [ fact "A" [ 1 ]; fact "B" [ 1 ] ]));
  Alcotest.check_raises "overlap"
    (Invalid_argument "Instance.disjoint_union: operands share a fact")
    (fun () -> ignore (Finite_pdb.product a a))

let test_finite_size_distribution () =
  let d = Finite_pdb.of_ti (Ti_table.create [ (fact "A" [ 1 ], q 1 2); (fact "B" [ 1 ], q 1 2) ]) in
  let dist = Finite_pdb.size_distribution d in
  Alcotest.(check int) "3 sizes" 3 (List.length dist);
  check_q "P(size 1) = 1/2" (q 1 2) (List.assoc 1 dist)

(* ------------------------------------------------------------------ *)
(* Query engines *)
(* ------------------------------------------------------------------ *)

let queries_for_agreement =
  [
    "exists x. R(x)";
    "exists x. R(x) & S(x)";
    "exists x y. R(x) & S(y)";
    "forall x. R(x) -> S(x)";
    "!(exists x. S(x))";
    "R(1) | S(2)";
    "exists x. R(x) & !S(x)";
    "exists x y. R(x) & S(y) & x != y";
    "true";
    "false";
  ]

let test_engines_agree () =
  List.iter
    (fun qs ->
      let phi = parse qs in
      let reference = Query_eval.boolean_enum ti phi in
      check_q ("bdd " ^ qs) reference (Query_eval.boolean_bdd_rational ti phi);
      check_q ("auto " ^ qs) reference (Query_eval.boolean ti phi);
      (match Query_eval.boolean_safe ti phi with
       | Some p -> check_q ("safe " ^ qs) reference p
       | None -> ());
      let iv = Query_eval.boolean_bdd_interval ti phi in
      Alcotest.(check bool) ("interval " ^ qs) true
        (Interval.contains iv (Rational.to_float reference));
      let fl = Query_eval.boolean_bdd_float ti phi in
      Alcotest.(check bool) ("float " ^ qs) true
        (Prob.close ~eps:1e-9 fl (Rational.to_float reference)))
    queries_for_agreement

let test_engine_finite_agrees () =
  let d = Finite_pdb.of_ti ti in
  List.iter
    (fun qs ->
      let phi = parse qs in
      check_q ("finite " ^ qs)
        (Query_eval.boolean_enum ti phi)
        (Query_eval.boolean_finite d phi))
    queries_for_agreement

let test_monte_carlo () =
  let phi = parse "exists x. R(x)" in
  let exact = Rational.to_float (Query_eval.boolean ti phi) in
  let r = Query_eval.boolean_mc ~samples:20_000 ti phi in
  Alcotest.(check bool) "within 5 sigma" true
    (Float.abs (r.Query_eval.estimate -. exact)
     < Stdlib.max (5.0 *. r.Query_eval.std_error) 0.02);
  Alcotest.(check int) "samples recorded" 20_000 r.Query_eval.samples

let test_marginals () =
  let ms = Query_eval.marginals ti (parse "R(x)") in
  Alcotest.(check int) "two tuples" 2 (List.length ms);
  let find v = List.assoc [| i v |] (List.map (fun (t, p) -> (t, p)) ms) in
  ignore find;
  List.iter
    (fun (tup, p) ->
      match tup with
      | [| Value.Int 1 |] -> check_q "R(1)" (q 1 2) p
      | [| Value.Int 2 |] -> check_q "R(2)" (q 1 3) p
      | _ -> Alcotest.fail "unexpected tuple")
    ms;
  (* conjunctive marginal *)
  let ms = Query_eval.marginals ti (parse "R(x) & S(x)") in
  List.iter
    (fun (tup, p) ->
      match tup with
      | [| Value.Int 1 |] -> check_q "R&S 1" (q 1 8) p
      | [| Value.Int 2 |] -> check_q "R&S 2" (q 1 15) p
      | _ -> Alcotest.fail "unexpected tuple")
    ms

let test_marginals_match_view () =
  (* marginal of T(x) in the view pushforward = marginal of the formula *)
  let d = Finite_pdb.of_ti ti in
  let v = Finite_pdb.apply_fo_view [ ("T", parse "R(x) & S(x)") ] d in
  List.iter
    (fun (tup, p) ->
      check_q "view vs marginal" p
        (Finite_pdb.prob_ef v (Fact.make_arr "T" tup)))
    (Query_eval.marginals ti (parse "R(x) & S(x)"))

let test_free_var_guard () =
  Alcotest.check_raises "free vars"
    (Invalid_argument "Query_eval: query has free variables x") (fun () ->
      ignore (Query_eval.boolean_enum ti (parse "R(x)")))

let test_dichotomy_routing_counters () =
  (* Regression for the has_self_join fix: after equality substitution the
     two R atoms are syntactically identical, so dedup must keep this on
     the lifted path — observable through the router's counters. *)
  let c_safe = Stats.counter "query.safe_plan" in
  let c_bdd = Stats.counter "query.bdd_fallback" in
  let easy = parse "exists x. R(x) & x = 1 & R(1)" in
  let hard = parse "exists x y. R(x) & T(x, y) & S(y)" in
  Alcotest.(check bool) "router verdicts" true
    (Query_eval.safe easy && not (Query_eval.safe hard));
  let before_safe = Stats.count c_safe in
  check_q "deduped query value" (q 1 2) (Query_eval.boolean ti easy);
  Alcotest.(check int) "safe_plan counter fires on deduped duplicate atoms"
    (before_safe + 1) (Stats.count c_safe);
  let before_bdd = Stats.count c_bdd in
  ignore (Query_eval.boolean ti hard);
  Alcotest.(check int) "bdd_fallback counter fires on the hard query"
    (before_bdd + 1) (Stats.count c_bdd)

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let arb_ti =
  let open QCheck.Gen in
  let gen =
    let* nr = int_range 0 3 in
    let* ns = int_range 0 3 in
    let* probs =
      list_repeat (nr + ns) (map (fun k -> q k 10) (int_range 1 9))
    in
    let facts =
      List.init nr (fun k -> fact "R" [ k ]) @ List.init ns (fun k -> fact "S" [ k ])
    in
    return (Ti_table.create (List.combine facts probs))
  in
  QCheck.make ~print:Ti_table.to_string gen

let arb_query =
  QCheck.oneofl (List.map parse queries_for_agreement)

(* Random TI tables over R/1, S/1, T/2 with small domains and dyadic
   probabilities, paired with random sentences of quantifier rank <= 2 —
   a much wider net than the fixed query list above. *)
let arb_ti3 =
  let open QCheck.Gen in
  let all_facts =
    List.init 3 (fun k -> fact "R" [ k ])
    @ List.init 3 (fun k -> fact "S" [ k ])
    @ List.concat_map
        (fun a -> List.init 3 (fun b -> fact "T" [ a; b ]))
        [ 0; 1; 2 ]
  in
  let gen =
    let* chosen = list_repeat 4 (oneofl all_facts) in
    let chosen = List.sort_uniq Fact.compare chosen in
    let* probs =
      list_repeat (List.length chosen) (map (fun k -> q k 8) (int_range 1 7))
    in
    return (Ti_table.create (List.combine chosen probs))
  in
  QCheck.make ~print:Ti_table.to_string gen

let arb_sentence =
  let open QCheck.Gen in
  let rels = [ ("R", 1); ("S", 1); ("T", 2) ] in
  let term scope =
    oneof
      (map Fo.cint (int_range 0 2)
       :: (if scope = [] then [] else [ map Fo.v (oneofl scope) ]))
  in
  let leaf scope =
    frequency
      [
        ( 6,
          let* rel, arity = oneofl rels in
          let* ts = list_repeat arity (term scope) in
          return (Fo.atom rel ts) );
        (1, return Fo.True);
        (1, return Fo.False);
      ]
  in
  (* [quant] bounds the remaining quantifier budget, so every generated
     sentence has quantifier rank <= 2; [scope] holds the bound variables
     available to atoms. *)
  let rec gen scope depth quant =
    if depth = 0 then leaf scope
    else
      frequency
        ([
           (2, leaf scope);
           (2, map (fun f -> Fo.Not f) (gen scope (depth - 1) quant));
           ( 3,
             map2
               (fun a b -> Fo.And (a, b))
               (gen scope (depth - 1) quant)
               (gen scope (depth - 1) quant) );
           ( 3,
             map2
               (fun a b -> Fo.Or (a, b))
               (gen scope (depth - 1) quant)
               (gen scope (depth - 1) quant) );
         ]
         @
         if quant = 0 then []
         else begin
           let x = Printf.sprintf "v%d" quant in
           let inner = gen (x :: scope) (depth - 1) (quant - 1) in
           [
             (4, map (fun f -> Fo.Exists (x, f)) inner);
             (4, map (fun f -> Fo.Forall (x, f)) inner);
           ]
         end)
  in
  QCheck.make ~print:Fo.to_string (gen [] 4 2)

let props =
  [
    QCheck.Test.make ~name:"worlds sum to 1" ~count:100 arb_ti (fun t ->
        Rational.equal Rational.one
          (Seq.fold_left
             (fun acc (_, p) -> Rational.add acc p)
             Rational.zero (Ti_table.worlds t)));
    QCheck.Test.make ~name:"enum = bdd on random tables/queries" ~count:150
      QCheck.(pair arb_ti arb_query)
      (fun (t, phi) ->
        Rational.equal
          (Query_eval.boolean_enum t phi)
          (Query_eval.boolean_bdd_rational t phi));
    QCheck.Test.make ~name:"safe (when applicable) = enum" ~count:150
      QCheck.(pair arb_ti arb_query)
      (fun (t, phi) ->
        match Query_eval.boolean_safe t phi with
        | None -> true
        | Some p -> Rational.equal p (Query_eval.boolean_enum t phi));
    QCheck.Test.make ~name:"all engines agree on random rank<=2 sentences"
      ~count:300
      QCheck.(pair arb_ti3 arb_sentence)
      (fun (t, phi) ->
        let reference = Query_eval.boolean_enum t phi in
        Rational.equal reference (Query_eval.boolean_bdd_rational t phi)
        && (match Query_eval.boolean_safe t phi with
            | None -> true
            | Some p -> Rational.equal p reference)
        && Rational.equal reference (Query_eval.boolean t phi));
    QCheck.Test.make ~name:"finite pdb roundtrip preserves marginals"
      ~count:100 arb_ti (fun t ->
        let d = Finite_pdb.of_ti t in
        List.for_all
          (fun (f, p) -> Rational.equal p (Finite_pdb.prob_ef d f))
          (Ti_table.facts t));
    QCheck.Test.make ~name:"conditioning renormalizes" ~count:100 arb_ti
      (fun t ->
        QCheck.assume (Ti_table.size t > 0);
        let d = Finite_pdb.of_ti t in
        let f = List.hd (Ti_table.support t) in
        let c = Finite_pdb.condition d (fun w -> Instance.mem f w) in
        Rational.equal Rational.one
          (List.fold_left
             (fun acc (_, p) -> Rational.add acc p)
             Rational.zero (Finite_pdb.worlds c)));
  ]

let () =
  Alcotest.run "pdb"
    [
      ( "ti_table",
        [
          Alcotest.test_case "basics" `Quick test_ti_basics;
          Alcotest.test_case "validation" `Quick test_ti_validation;
          Alcotest.test_case "schema validation" `Quick test_ti_schema_validation;
          Alcotest.test_case "worlds sum" `Quick test_ti_worlds_sum_to_one;
          Alcotest.test_case "world probability" `Quick test_ti_world_probability;
          Alcotest.test_case "marginal consistency" `Quick
            test_ti_marginal_consistency;
          Alcotest.test_case "sampling" `Slow test_ti_sampling_marginals;
          Alcotest.test_case "text format" `Quick test_ti_text_format;
          Alcotest.test_case "of_file" `Quick test_ti_of_file;
          Alcotest.test_case "of_file fd leak" `Quick test_ti_of_file_no_leak;
          Alcotest.test_case "of_file streams multi-MB" `Slow
            test_ti_of_file_streaming_large;
          Alcotest.test_case "located errors" `Quick test_ti_located_errors;
          Alcotest.test_case "duplicate policy" `Quick test_ti_duplicate_policy;
        ] );
      ( "bid_table",
        [
          Alcotest.test_case "basics" `Quick test_bid_basics;
          Alcotest.test_case "validation" `Quick test_bid_validation;
          Alcotest.test_case "worlds" `Quick test_bid_worlds;
          Alcotest.test_case "world probability" `Quick test_bid_world_probability;
          Alcotest.test_case "marginals vs worlds" `Quick
            test_bid_marginals_against_worlds;
          Alcotest.test_case "sampling exclusivity" `Quick
            test_bid_sampling_exclusivity;
          Alcotest.test_case "of_ti" `Quick test_bid_of_ti;
          Alcotest.test_case "parser errors" `Quick test_bid_parser_errors;
        ] );
      ( "finite_pdb",
        [
          Alcotest.test_case "create validation" `Quick
            test_finite_create_validation;
          Alcotest.test_case "of_ti marginals" `Quick test_finite_of_ti_marginals;
          Alcotest.test_case "bid not TI" `Quick test_finite_of_bid_not_ti;
          Alcotest.test_case "prob intersects" `Quick test_finite_prob_intersects;
          Alcotest.test_case "condition" `Quick test_finite_condition;
          Alcotest.test_case "FO view" `Quick test_finite_view;
          Alcotest.test_case "product" `Quick test_finite_product;
          Alcotest.test_case "size distribution" `Quick
            test_finite_size_distribution;
        ] );
      ( "query_eval",
        [
          Alcotest.test_case "engines agree" `Quick test_engines_agree;
          Alcotest.test_case "finite engine" `Quick test_engine_finite_agrees;
          Alcotest.test_case "monte carlo" `Slow test_monte_carlo;
          Alcotest.test_case "marginals" `Quick test_marginals;
          Alcotest.test_case "marginals = view" `Quick test_marginals_match_view;
          Alcotest.test_case "free var guard" `Quick test_free_var_guard;
          Alcotest.test_case "dichotomy routing counters" `Quick
            test_dichotomy_routing_counters;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
