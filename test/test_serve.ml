(* Tests for the serving layer: frame and message codecs (round-trip,
   truncation, size caps), the latency histogram under concurrent
   domains, the pure admission ladder, the epsilon-aware result cache,
   and end-to-end client/server sessions — soundness under deadlines and
   overload, graceful drain, and bit-reproducibility of a long
   fault-injected session. *)

let i n = Value.Int n
let q = Rational.of_ints
let fact r args = Fact.make r (List.map i args)

(* R(1)=1/2, R(2)=1/3, R(3)=1/4: P(exists x. R(x)) = 3/4 exactly. *)
let table_facts =
  [ (fact "R" [ 1 ], q 1 2); (fact "R" [ 2 ], q 1 3); (fact "R" [ 3 ], q 1 4) ]

let finite_source () = Fact_source.of_list table_facts

(* The same closed-world facts completed by an infinite geometric tail
   of N(j) facts — the open-world shape where truncation really works. *)
let open_source () =
  Fact_source.append_finite table_facts
    (Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
       ~facts:(fun j -> fact "N" [ j ])
       ())

(* ------------------------------------------------------------------ *)
(* Framing *)
(* ------------------------------------------------------------------ *)

(* A seekable temp fd stands in for the socket: write_frame then rewind
   and read_frame — no pairing of reader/writer threads needed even for
   max-size frames. *)
let with_frame_fd f =
  let path = Filename.temp_file "iowpdb_frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_TRUNC ] 0o600 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

let frame_roundtrip payload =
  with_frame_fd @@ fun fd ->
  Protocol.write_frame fd payload;
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  Protocol.read_frame fd

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame round-trip preserves arbitrary payloads"
    ~count:100
    QCheck.(string_of_size (Gen.int_bound 4096))
    (fun payload -> frame_roundtrip payload = payload)

let test_frame_max_size () =
  let payload = String.make Protocol.max_frame 'x' in
  Alcotest.(check int) "max-size frame round-trips" Protocol.max_frame
    (String.length (frame_roundtrip payload));
  match frame_roundtrip (payload ^ "y") with
  | _ -> Alcotest.fail "oversized payload must be rejected at write"
  | exception Invalid_argument _ -> ()

let test_frame_truncated () =
  with_frame_fd @@ fun fd ->
  Protocol.write_frame fd "hello, frames";
  let len = Unix.lseek fd 0 Unix.SEEK_CUR in
  Unix.ftruncate fd (len - 3);
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  match Protocol.read_frame fd with
  | _ -> Alcotest.fail "truncated frame must not decode"
  | exception Protocol.Frame_error Protocol.Truncated -> ()

let test_frame_oversized_header () =
  with_frame_fd @@ fun fd ->
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Protocol.max_frame + 1));
  ignore (Unix.write fd header 0 4);
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  match Protocol.read_frame fd with
  | _ -> Alcotest.fail "oversized declared length must be rejected"
  | exception Protocol.Frame_error (Protocol.Oversized _) -> ()

let test_frame_closed () =
  with_frame_fd @@ fun fd ->
  match Protocol.read_frame fd with
  | _ -> Alcotest.fail "EOF must read as Closed"
  | exception Protocol.Frame_error Protocol.Closed -> ()

(* ------------------------------------------------------------------ *)
(* Message codec *)
(* ------------------------------------------------------------------ *)

let gen_request =
  let open QCheck.Gen in
  let str = string_size ~gen:(int_range 0 255 >|= Char.chr) (int_bound 64) in
  frequency
    [
      ( 4,
        str >>= fun query ->
        opt (float_range 0.001 0.4) >>= fun eps ->
        opt (int_bound 10_000) >>= fun deadline_ms ->
        opt (int_bound 100_000) >>= fun mc_samples ->
        small_nat >|= fun seed ->
        Protocol.Query { query; eps; deadline_ms; mc_samples; seed } );
      (1, str >|= fun delta -> Protocol.Update { delta });
      (1, return Protocol.Health);
      (1, return Protocol.Stats_req);
      (1, return Protocol.Drain);
    ]

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec round-trips (incl. nasty strings)"
    ~count:300
    (QCheck.make gen_request)
    (fun req -> Protocol.decode_request (Protocol.encode_request req) = Ok req)

let test_response_roundtrip () =
  let check resp =
    Alcotest.(check bool)
      "response round-trips" true
      (Protocol.decode_response (Protocol.encode_response resp) = Ok resp)
  in
  check
    (Protocol.Answer
       {
         lo = 0.1;
         hi = 0.30000000000000004;
         estimate = 0.2;
         provenance = "line one\nline two\twith=equals";
         budget_exhausted = true;
         cached = false;
         shed = true;
       });
  check (Protocol.Update_ok { relation = "R"; epoch = 3; noop = false });
  check (Protocol.Overloaded { retry_after_ms = 250; draining = false });
  check (Protocol.Error_resp { code = 2; msg = "bad\nthings = happened" });
  check (Protocol.Health_ok { draining = true; inflight = 3; uptime_s = 1.5 });
  check
    (Protocol.Stats_resp
       [ ("serve.requests", 12.0); ("serve.latency.p99", 0.015625) ])

let test_decode_garbage () =
  (match Protocol.decode_request "no_such_tag\nq=x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag must not decode");
  match Protocol.decode_request "query\nseed=notanumber\nq=x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad field must not decode"

(* ------------------------------------------------------------------ *)
(* Latency histogram *)
(* ------------------------------------------------------------------ *)

let test_histogram_concurrent_exact () =
  let h =
    Stats.histogram ~bounds:[| 0.001; 0.01; 0.1; 1.0 |] "test.serve.hist"
  in
  let values = [| 0.0005; 0.005; 0.05; 0.5 |] in
  let per_domain = 10_000 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Stats.observe h values.(d)
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "no observation lost" (4 * per_domain)
    (Stats.observations h);
  Array.iteri
    (fun idx (_, count) ->
      if idx < 4 then
        Alcotest.(check int)
          (Printf.sprintf "bucket %d exact" idx)
          per_domain count)
    (Stats.bucket_counts h);
  (* Rank arithmetic on the exact counts: the median observation sits in
     the second bucket, the 99th percentile in the last. *)
  Alcotest.(check (float 0.0)) "p50" 0.01 (Stats.quantile h 0.5);
  Alcotest.(check (float 0.0)) "p99" 1.0 (Stats.quantile h 0.99);
  let snap = Stats.snapshot () in
  Alcotest.(check (float 0.0)) "snapshot count" 40_000.0
    (Stats.find snap "test.serve.hist.count")

let test_histogram_empty_and_overflow () =
  let h = Stats.histogram ~bounds:[| 1.0; 2.0 |] "test.serve.hist2" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Stats.quantile h 0.5);
  Stats.observe h 100.0;
  (* overflow reports the last finite bound, staying JSON-friendly *)
  Alcotest.(check (float 0.0)) "overflow clamped" 2.0 (Stats.quantile h 0.99)

(* ------------------------------------------------------------------ *)
(* Admission *)
(* ------------------------------------------------------------------ *)

let lvl = Alcotest.testable (Fmt.of_to_string Admission.level_to_string) ( = )

let test_admission_decide () =
  let cfg =
    {
      Admission.default_config with
      Admission.queue_bound = 4;
      shed_at = 0.5;
      reject_at = 0.9;
    }
  in
  let d ~queue_len ~pressure = Admission.decide cfg ~queue_len ~pressure in
  Alcotest.check lvl "idle" Admission.Full (d ~queue_len:0 ~pressure:0.0);
  Alcotest.check lvl "full queue rejects" Admission.Reject
    (d ~queue_len:4 ~pressure:0.0);
  Alcotest.check lvl "high pressure rejects" Admission.Reject
    (d ~queue_len:0 ~pressure:0.95);
  Alcotest.check lvl "medium pressure sheds" Admission.Degraded
    (d ~queue_len:0 ~pressure:0.6);
  Alcotest.check lvl "queue fill sheds" Admission.Degraded
    (d ~queue_len:2 ~pressure:0.0);
  Alcotest.check lvl "light load full" Admission.Full
    (d ~queue_len:1 ~pressure:0.1)

let test_admission_epoch_cap_rejects () =
  let adm =
    Admission.create
      {
        Admission.default_config with
        Admission.window_s = 60.0;
        max_samples = Some 100;
      }
  in
  match Admission.admit adm ~queue_len:0 ~deadline_s:None with
  | Error _ -> Alcotest.fail "idle server must admit"
  | Ok ticket ->
    (* Burn the whole window allowance through the request's child
       budget: spends propagate to the epoch. *)
    Budget.spend ticket.Admission.budget Budget.Samples 100;
    Alcotest.(check (float 1e-9)) "pressure saturated" 1.0
      (Admission.pressure adm);
    (match Admission.admit adm ~queue_len:0 ~deadline_s:None with
    | Error retry_after ->
      Alcotest.(check bool) "retry-after within window" true
        (retry_after >= 0.0 && retry_after <= 60.0)
    | Ok _ -> Alcotest.fail "saturated epoch must reject")

let test_admission_deadline_budget () =
  let adm = Admission.create Admission.default_config in
  match Admission.admit adm ~queue_len:0 ~deadline_s:(Some 0.05) with
  | Error _ -> Alcotest.fail "must admit"
  | Ok ticket -> (
    match Budget.time_remaining ticket.Admission.budget with
    | Some r -> Alcotest.(check bool) "deadline attached" true (r <= 0.05)
    | None -> Alcotest.fail "ticket budget must carry the deadline")

(* ------------------------------------------------------------------ *)
(* Result cache *)
(* ------------------------------------------------------------------ *)

let dummy_answer lo hi =
  {
    Robust_eval.enclosure = Interval.make lo hi;
    estimate = (lo +. hi) /. 2.0;
    provenance = { Robust_eval.attempts = []; stopped = "test"; budget = "" };
  }

let test_cache_eps_aware () =
  let c = Result_cache.create ~capacity:8 in
  Result_cache.store c ~query:"Q" ~policy:"p" ~epoch:"" (dummy_answer 0.50 0.51);
  (match Result_cache.find c ~query:"Q" ~policy:"p" ~epoch:"" ~eps:0.01 with
  | Some _ -> ()
  | None -> Alcotest.fail "width 0.01 must satisfy eps 0.01");
  (match Result_cache.find c ~query:"Q" ~policy:"p" ~epoch:"" ~eps:0.004 with
  | None -> ()
  | Some _ -> Alcotest.fail "width 0.01 must not satisfy eps 0.004");
  (match Result_cache.find c ~query:"Q" ~policy:"other" ~epoch:"" ~eps:0.5 with
  | None -> ()
  | Some _ -> Alcotest.fail "policy is part of the key");
  (* replacement keeps the narrower enclosure *)
  Result_cache.store c ~query:"Q" ~policy:"p" ~epoch:"" (dummy_answer 0.50 0.9);
  (match Result_cache.find c ~query:"Q" ~policy:"p" ~epoch:"" ~eps:0.01 with
  | Some _ -> ()
  | None -> Alcotest.fail "wider answer must not replace a narrower one");
  Result_cache.store c ~query:"Q" ~policy:"p" ~epoch:"" (dummy_answer 0.500 0.501);
  match Result_cache.find c ~query:"Q" ~policy:"p" ~epoch:"" ~eps:0.0006 with
  | Some _ -> ()
  | None -> Alcotest.fail "narrower answer must replace"

let test_cache_bounded () =
  let c = Result_cache.create ~capacity:2 in
  Result_cache.store c ~query:"a" ~policy:"p" ~epoch:"" (dummy_answer 0.1 0.1);
  Result_cache.store c ~query:"b" ~policy:"p" ~epoch:"" (dummy_answer 0.2 0.2);
  Result_cache.store c ~query:"c" ~policy:"p" ~epoch:"" (dummy_answer 0.3 0.3);
  Alcotest.(check int) "capacity respected" 2 (Result_cache.length c);
  (match Result_cache.find c ~query:"a" ~policy:"p" ~epoch:"" ~eps:0.4 with
  | None -> ()
  | Some _ -> Alcotest.fail "oldest entry must be evicted");
  let c0 = Result_cache.create ~capacity:0 in
  Result_cache.store c0 ~query:"a" ~policy:"p" ~epoch:"" (dummy_answer 0.1 0.1);
  match Result_cache.find c0 ~query:"a" ~policy:"p" ~epoch:"" ~eps:0.5 with
  | None -> ()
  | Some _ -> Alcotest.fail "capacity 0 disables the cache"

let test_cache_warm_roundtrip () =
  let path = Filename.temp_file "iowpdb_warm" ".cache" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let validator = "deadbeef:geometric:1/4:1/2" in
  let c = Result_cache.create ~capacity:8 in
  Result_cache.store c ~query:"exists x. R(x)" ~policy:"p" ~epoch:""
    (dummy_answer 0.50 0.51);
  Result_cache.store c ~query:"q \"quoted\"\nnewline" ~policy:"p'" ~epoch:""
    (dummy_answer 0.25 0.25);
  Alcotest.(check int) "saved" 2 (Result_cache.save c ~path ~validator);
  (* Fresh cache, matching validator: everything comes back. *)
  let c' = Result_cache.create ~capacity:8 in
  let reused0 = Stats.count (Stats.counter "serve.cache.warm.reused") in
  Alcotest.(check int) "loaded" 2 (Result_cache.load c' ~path ~validator);
  (match
     Result_cache.find c' ~query:"exists x. R(x)" ~policy:"p" ~epoch:""
       ~eps:0.01
   with
  | Some a ->
    Alcotest.(check (float 0.0)) "lo survives" 0.50
      (Interval.lo a.Robust_eval.enclosure);
    Alcotest.(check (float 0.0)) "hi survives" 0.51
      (Interval.hi a.Robust_eval.enclosure)
  | None -> Alcotest.fail "restored entry must satisfy its own eps");
  (match
     Result_cache.find c' ~query:"q \"quoted\"\nnewline" ~policy:"p'" ~epoch:""
       ~eps:0.01
   with
  | Some _ -> ()
  | None -> Alcotest.fail "quoting must survive the round-trip");
  Alcotest.(check bool) "warm reuse counted" true
    (Stats.count (Stats.counter "serve.cache.warm.reused") >= reused0 + 2);
  (* A tighter answer computed after restore still replaces the warm one. *)
  Result_cache.store c' ~query:"exists x. R(x)" ~policy:"p" ~epoch:""
    (dummy_answer 0.500 0.501);
  (match
     Result_cache.find c' ~query:"exists x. R(x)" ~policy:"p" ~epoch:""
       ~eps:0.0006
   with
  | Some _ -> ()
  | None -> Alcotest.fail "fresh narrower answer must replace the warm one");
  (* Wrong validator: rejected wholesale. *)
  let rejected0 = Stats.count (Stats.counter "serve.cache.warm.rejected") in
  let c'' = Result_cache.create ~capacity:8 in
  Alcotest.(check int) "validator mismatch restores nothing" 0
    (Result_cache.load c'' ~path ~validator:"deadbeef:lambda:1/10:3");
  Alcotest.(check int) "nothing restored" 0 (Result_cache.length c'');
  Alcotest.(check bool) "rejection counted" true
    (Stats.count (Stats.counter "serve.cache.warm.rejected") > rejected0);
  (* Corrupt entry line: the whole file is rejected, not a prefix. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "entry \"z\" \"p\" \"\" 0x1.cp-1 0x1p-3 0x1p-2\n";
  close_out oc;
  let c3 = Result_cache.create ~capacity:8 in
  Alcotest.(check int) "malformed entry rejects the file" 0
    (Result_cache.load c3 ~path ~validator);
  (* Missing file: silent cold start. *)
  let c4 = Result_cache.create ~capacity:8 in
  Alcotest.(check int) "missing file restores nothing" 0
    (Result_cache.load c4 ~path:(path ^ ".absent") ~validator)

(* ------------------------------------------------------------------ *)
(* Fault schedule *)
(* ------------------------------------------------------------------ *)

let prop_fault_schedule_pure =
  QCheck.Test.make ~name:"transport fault schedule is pure in (seed, index)"
    ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (seed, idx) ->
      let cfg = Faulty_transport.default ~seed in
      Faulty_transport.fault_at cfg idx = Faulty_transport.fault_at cfg idx)

let test_fault_schedule_mixes () =
  let cfg = Faulty_transport.default ~seed:7 in
  let count p =
    List.length
      (List.filter p (List.init 2000 (Faulty_transport.fault_at cfg)))
  in
  Alcotest.(check bool) "some drops" true
    (count (function Some Faulty_transport.Drop -> true | _ -> false) > 0);
  Alcotest.(check bool) "some delays" true
    (count (function Some (Faulty_transport.Delay _) -> true | _ -> false)
    > 0);
  Alcotest.(check bool) "some truncations" true
    (count (function Some Faulty_transport.Truncate -> true | _ -> false) > 0);
  Alcotest.(check bool) "mostly clean" true
    (count (function None -> true | _ -> false) > 1000)

(* ------------------------------------------------------------------ *)
(* End-to-end sessions *)
(* ------------------------------------------------------------------ *)

let next_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "iowpdb_test_%d_%d.sock" (Unix.getpid ()) !n)

let with_server ?(domains = 2) ?(admission = Admission.default_config)
    ?default_deadline_s ?(cache_capacity = 64) ?warm_cache ?updatable
    make_source f =
  let path = next_socket () in
  let cfg =
    {
      Server.endpoint = `Unix path;
      make_source;
      policy_label = "test";
      domains;
      admission;
      default_eps = 0.01;
      default_samples = 2_000;
      shed_samples = 200;
      default_deadline_s;
      cache_capacity;
      warm_cache;
      updatable;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain t;
      Server.wait t)
    (fun () -> f (`Unix path) t)

let query ?eps ?deadline_ms ?(seed = 0) endpoint q =
  let conn = Client.connect endpoint in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      Client.request conn
        (Protocol.Query { query = q; eps; deadline_ms; mc_samples = None; seed }))

let check_sound = function
  | Protocol.Answer { lo; hi; estimate; _ } ->
    Alcotest.(check bool)
      (Printf.sprintf "sound enclosure [%g, %g] ~ %g" lo hi estimate)
      true
      (0.0 <= lo && lo <= hi && hi <= 1.0 && lo <= estimate && estimate <= hi)
  | _ -> Alcotest.fail "expected an answer"

let test_serve_safe_query_exact () =
  with_server ~default_deadline_s:5.0 finite_source @@ fun ep _t ->
  match query ep "exists x. R(x)" with
  | Protocol.Answer { lo; hi; budget_exhausted; cached; _ } as r ->
    check_sound r;
    Alcotest.(check bool) "contains 3/4" true (lo <= 0.75 && 0.75 <= hi);
    Alcotest.(check bool) "converged, not exhausted" false budget_exhausted;
    Alcotest.(check bool) "first hit not cached" false cached;
    (* Same query again: served from the cache, same enclosure. *)
    (match query ep "exists x. R(x)" with
    | Protocol.Answer { lo = lo'; hi = hi'; cached = cached'; _ } ->
      Alcotest.(check bool) "second hit cached" true cached';
      Alcotest.(check (float 0.0)) "same lo" lo lo';
      Alcotest.(check (float 0.0)) "same hi" hi hi'
    | _ -> Alcotest.fail "expected an answer on repeat")
  | _ -> Alcotest.fail "expected an answer"

let test_serve_unsafe_and_bad_queries () =
  with_server ~default_deadline_s:5.0 finite_source @@ fun ep _t ->
  (* Hard side of the dichotomy: grounded engines answer, still sound. *)
  check_sound (query ep "forall x. R(x)");
  (* Syntax error: structured Error_resp with the user-error code. *)
  (match query ep "exists x. R(" with
  | Protocol.Error_resp { code; _ } -> Alcotest.(check int) "code 2" 2 code
  | _ -> Alcotest.fail "expected a parse error response");
  (* Free variables are a request error too, not a hang. *)
  match query ep "R(x)" with
  | Protocol.Error_resp { code; _ } -> Alcotest.(check int) "code 2" 2 code
  | _ -> Alcotest.fail "expected a free-variable error response"

let test_serve_deadline_sound_enclosure () =
  with_server open_source @@ fun ep _t ->
  let t0 = Unix.gettimeofday () in
  match query ~eps:1e-6 ~deadline_ms:1 ep "exists x. exists y. R(x) & N(y)" with
  | Protocol.Answer { budget_exhausted; _ } as r ->
    check_sound r;
    Alcotest.(check bool) "deadline tripped the budget" true budget_exhausted;
    Alcotest.(check bool) "returned promptly, no timeout hang" true
      (Unix.gettimeofday () -. t0 < 5.0)
  | _ -> Alcotest.fail "expected a best-so-far answer, not a timeout"

(* Streaming updates: an update to relation R must invalidate exactly
   the cached answers that read R — a stale hit here would serve an
   enclosure the mutated table no longer certifies (the Result_cache
   epoch regression) — while cached answers over untouched relations
   keep serving. *)
let test_serve_update_epoch_invalidation () =
  let tbl =
    Ti_table.create ((fact "S" [ 1 ], q 1 2) :: table_facts)
  in
  with_server ~default_deadline_s:5.0 ~updatable:tbl
    (fun () -> Fact_source.of_ti_table tbl)
  @@ fun ep _t ->
  let conn = Client.connect ep in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let update d = Client.request conn (Protocol.Update { delta = d }) in
  let cached_of q =
    match query ep q with
    | Protocol.Answer { cached; _ } as r ->
      check_sound r;
      cached
    | _ -> Alcotest.fail "expected an answer"
  in
  (* Prime the cache for one query per relation. *)
  Alcotest.(check bool) "R: first miss" false (cached_of "exists x. R(x)");
  Alcotest.(check bool) "R: then hit" true (cached_of "exists x. R(x)");
  Alcotest.(check bool) "S: first miss" false (cached_of "exists x. S(x)");
  Alcotest.(check bool) "S: then hit" true (cached_of "exists x. S(x)");
  (* Mutate R: the R entry must stop serving, the S entry must not. *)
  (match update "insert R(4) 1/2" with
  | Protocol.Update_ok { relation; epoch; noop } ->
    Alcotest.(check string) "relation" "R" relation;
    Alcotest.(check int) "epoch bumped" 1 epoch;
    Alcotest.(check bool) "not a no-op" false noop
  | _ -> Alcotest.fail "expected update_ok");
  (match query ep "exists x. R(x)" with
  | Protocol.Answer { lo; hi; cached; _ } ->
    Alcotest.(check bool) "no stale hit after update" false cached;
    (* 1 - (1/2)(2/3)(3/4)(1/2) = 7/8 on the mutated table. *)
    Alcotest.(check bool) "contains 7/8" true (lo <= 0.875 && 0.875 <= hi)
  | _ -> Alcotest.fail "expected an answer");
  Alcotest.(check bool) "S entry survives the R update" true
    (cached_of "exists x. S(x)");
  (* A recognized no-op does not bump the epoch: R keeps its (new)
     cached answer. *)
  Alcotest.(check bool) "R: recached" true (cached_of "exists x. R(x)");
  (match update "reweight R(4) 1/2" with
  | Protocol.Update_ok { relation = _; epoch; noop } ->
    Alcotest.(check bool) "no-op recognized" true noop;
    Alcotest.(check int) "epoch unchanged" 1 epoch
  | _ -> Alcotest.fail "expected update_ok");
  Alcotest.(check bool) "no-op keeps the cache warm" true
    (cached_of "exists x. R(x)");
  (* Delete restores the original marginal distribution for R. *)
  (match update "delete R(4)" with
  | Protocol.Update_ok { epoch; noop; _ } ->
    Alcotest.(check int) "second real update" 2 epoch;
    Alcotest.(check bool) "delete applied" false noop
  | _ -> Alcotest.fail "expected update_ok");
  (match query ep "exists x. R(x)" with
  | Protocol.Answer { lo; hi; cached; _ } ->
    Alcotest.(check bool) "delete invalidates too" false cached;
    Alcotest.(check bool) "back to 3/4" true (lo <= 0.75 && 0.75 <= hi)
  | _ -> Alcotest.fail "expected an answer");
  (* Malformed and out-of-range deltas are request errors. *)
  (match update "frobnicate R(1)" with
  | Protocol.Error_resp { code; _ } -> Alcotest.(check int) "code 2" 2 code
  | _ -> Alcotest.fail "expected an error for a malformed delta");
  match update "insert R(9) 3/2" with
  | Protocol.Error_resp _ -> ()
  | _ -> Alcotest.fail "expected an error for a marginal above one"

let test_serve_update_rejected_without_table () =
  with_server ~default_deadline_s:5.0 finite_source @@ fun ep _t ->
  let conn = Client.connect ep in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  match Client.request conn (Protocol.Update { delta = "insert R(4) 1/2" }) with
  | Protocol.Error_resp { msg; _ } ->
    Alcotest.(check bool) "explains the rejection" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "static-source server must reject updates"

let test_serve_health_and_stats () =
  with_server finite_source @@ fun ep _t ->
  let conn = Client.connect ep in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  (match Client.request conn Protocol.Health with
  | Protocol.Health_ok { draining; _ } ->
    Alcotest.(check bool) "not draining" false draining
  | _ -> Alcotest.fail "expected health_ok");
  ignore (Client.request conn (Protocol.Query
    { query = "exists x. R(x)"; eps = None; deadline_ms = None;
      mc_samples = None; seed = 0 }));
  match Client.request conn Protocol.Stats_req with
  | Protocol.Stats_resp entries ->
    Alcotest.(check bool) "requests counted" true
      (List.assoc_opt "serve.requests" entries <> None);
    Alcotest.(check bool) "latency histogram exported" true
      (List.assoc_opt "serve.latency.p99" entries <> None)
  | _ -> Alcotest.fail "expected stats_resp"

(* Overload: 1 worker, queue of 1, six concurrent slow requests.  Every
   reply must be a sound enclosure or a structured rejection — bounded
   queue, no unbounded backlog, no hangs. *)
let test_serve_overload_sheds_soundly () =
  let admission =
    {
      Admission.default_config with
      Admission.queue_bound = 1;
      window_s = 0.5;
    }
  in
  with_server ~domains:1 ~admission ~cache_capacity:0
    ~default_deadline_s:0.4 open_source
  @@ fun ep _t ->
  let n = 6 in
  let results = Array.make n None in
  let threads =
    List.init n (fun k ->
        Thread.create
          (fun () ->
            let q =
              Printf.sprintf "exists x. exists y. R(x) & N(y) & R(%d)" (k + 1)
            in
            results.(k) <- Some (query ~eps:1e-6 ep q))
          ())
  in
  List.iter Thread.join threads;
  let answers = ref 0 and rejections = ref 0 in
  Array.iter
    (function
      | Some (Protocol.Answer _ as r) ->
        incr answers;
        check_sound r
      | Some (Protocol.Overloaded { retry_after_ms; _ }) ->
        incr rejections;
        Alcotest.(check bool) "retry-after hint" true (retry_after_ms >= 0)
      | Some _ -> Alcotest.fail "unexpected response class under overload"
      | None -> Alcotest.fail "a client thread got no response (hang?)")
    results;
  Alcotest.(check int) "every request answered" n (!answers + !rejections);
  Alcotest.(check bool) "bounded queue rejected some load" true
    (!rejections > 0);
  Alcotest.(check bool) "but the server still served" true (!answers > 0)

(* Drain: in-flight work completes, new queries are rejected with the
   draining flag, and the server reaches a clean join. *)
let test_serve_drain () =
  let path = next_socket () in
  let cfg =
    {
      (Server.default_config open_source (`Unix path)) with
      Server.policy_label = "test";
      default_deadline_s = Some 2.0;
      default_eps = 1e-6;
    }
  in
  let t = Server.start cfg in
  (* Slow in-flight request launched before the drain... *)
  let slow = ref None in
  let th =
    Thread.create
      (fun () ->
        slow :=
          Some (query ~eps:1e-6 (`Unix path) "exists x. exists y. R(x) & N(y)"))
      ()
  in
  Thread.delay 0.1;
  (* ...then drain over a second connection (the protocol twin of
     SIGTERM; Server.run wires the signal to the same entry point). *)
  let conn = Client.connect (`Unix path) in
  (match Client.request conn Protocol.Drain with
  | Protocol.Health_ok { draining; _ } ->
    Alcotest.(check bool) "drain acknowledged" true draining
  | _ -> Alcotest.fail "expected drain ack");
  (* New queries on a live connection are rejected, flagged draining. *)
  (match
     Client.request conn
       (Protocol.Query
          {
            query = "exists x. R(x)";
            eps = None;
            deadline_ms = None;
            mc_samples = None;
            seed = 0;
          })
   with
  | Protocol.Overloaded { draining; _ } ->
    Alcotest.(check bool) "rejected as draining" true draining
  | _ -> Alcotest.fail "queries during drain must be rejected");
  Client.close conn;
  Thread.join th;
  (match !slow with
  | Some (Protocol.Answer _ as r) -> check_sound r
  | _ -> Alcotest.fail "in-flight request must complete during drain");
  (* The drain must terminate the whole server: accept loop, workers. *)
  Server.wait t;
  Alcotest.(check bool) "socket removed after drain" false
    (Sys.file_exists path)

(* A 1000-request session through the fault-injecting transport is
   (a) fully answered — every injected drop/truncation/delay is either
   retried into an answer or surfaces as a structured transport error —
   and (b) bit-reproducible: replaying the same seeds against a fresh
   server yields the identical transcript. *)
let test_serve_faulty_session_reproducible () =
  let requests = 1000 in
  let queries =
    [|
      "exists x. R(x)";
      "exists x. R(x) & N(x)";
      "forall x. R(x)";
      "R(1) | R(2)";
    |]
  in
  let run_session () =
    with_server ~domains:2 open_source @@ fun ep _t ->
    let transport =
      Faulty_transport.create (Faulty_transport.default ~seed:11)
    in
    let policy =
      { Retry.default_policy with Retry.base_delay = 0.001; max_delay = 0.01 }
    in
    let buf = Buffer.create (requests * 32) in
    for k = 0 to requests - 1 do
      let req =
        Protocol.Query
          {
            query = queries.(k mod Array.length queries);
            eps = None;
            deadline_ms = None;
            mc_samples = None;
            seed = 0;
          }
      in
      let line =
        match Client.call ~policy ~seed:k ~transport ep req with
        | Ok (Protocol.Answer { lo; hi; estimate; budget_exhausted; shed; _ })
          ->
          (* The transcript pins the numerical payload bit-for-bit, but
             not the cached flag: whether an answer came from the cache
             depends on which earlier frames the injector dropped. *)
          Printf.sprintf "%d answer %h %h %h %b %b" k lo hi estimate
            budget_exhausted shed
        | Ok (Protocol.Overloaded { draining; _ }) ->
          Printf.sprintf "%d overloaded %b" k draining
        | Ok (Protocol.Error_resp { code; _ }) ->
          Printf.sprintf "%d error %d" k code
        | Ok _ -> Printf.sprintf "%d unexpected" k
        | Error e -> Printf.sprintf "%d gave_up %s" k (Errors.to_string e)
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  in
  let first = run_session () in
  let second = run_session () in
  Alcotest.(check bool) "some request hit an injected fault" true
    (String.length first > 0);
  Alcotest.(check string) "bit-identical transcripts" first second;
  (* Every line is an answer or a structured outcome; answers are sound. *)
  String.split_on_char '\n' first
  |> List.iter (fun line ->
         if line <> "" then
           match String.split_on_char ' ' line with
           | _ :: "answer" :: lo :: hi :: _ ->
             let lo = float_of_string lo and hi = float_of_string hi in
             if not (0.0 <= lo && lo <= hi && hi <= 1.0) then
               Alcotest.failf "unsound transcript line: %s" line
           | _ :: ("overloaded" | "error" | "gave_up") :: _ -> ()
           | _ -> Alcotest.failf "unstructured transcript line: %s" line)

let props =
  [ prop_frame_roundtrip; prop_request_roundtrip; prop_fault_schedule_pure ]

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "max-size frame" `Quick test_frame_max_size;
          Alcotest.test_case "truncated frame" `Quick test_frame_truncated;
          Alcotest.test_case "oversized header" `Quick
            test_frame_oversized_header;
          Alcotest.test_case "closed" `Quick test_frame_closed;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact under 4 domains" `Quick
            test_histogram_concurrent_exact;
          Alcotest.test_case "empty and overflow" `Quick
            test_histogram_empty_and_overflow;
        ] );
      ( "admission",
        [
          Alcotest.test_case "decide ladder" `Quick test_admission_decide;
          Alcotest.test_case "epoch cap rejects" `Quick
            test_admission_epoch_cap_rejects;
          Alcotest.test_case "deadline on ticket" `Quick
            test_admission_deadline_budget;
        ] );
      ( "cache",
        [
          Alcotest.test_case "epsilon-aware" `Quick test_cache_eps_aware;
          Alcotest.test_case "bounded" `Quick test_cache_bounded;
          Alcotest.test_case "warm save/load round-trip" `Quick
            test_cache_warm_roundtrip;
        ] );
      ( "faults",
        [ Alcotest.test_case "schedule mixes" `Quick test_fault_schedule_mixes ] );
      ( "server",
        [
          Alcotest.test_case "safe query, exact + cached" `Quick
            test_serve_safe_query_exact;
          Alcotest.test_case "unsafe and bad queries" `Quick
            test_serve_unsafe_and_bad_queries;
          Alcotest.test_case "deadline: sound best-so-far" `Quick
            test_serve_deadline_sound_enclosure;
          Alcotest.test_case "update: epoch cache invalidation" `Quick
            test_serve_update_epoch_invalidation;
          Alcotest.test_case "update: rejected without table" `Quick
            test_serve_update_rejected_without_table;
          Alcotest.test_case "health and stats" `Quick
            test_serve_health_and_stats;
          Alcotest.test_case "overload sheds soundly" `Slow
            test_serve_overload_sheds_soundly;
          Alcotest.test_case "graceful drain" `Slow test_serve_drain;
          Alcotest.test_case "faulty session reproducible" `Slow
            test_serve_faulty_session_reproducible;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) props);
    ]
