(* Tests for the batched evaluator (Batch_eval), its Robust_eval
   integration (query_batch), and the Atomic-backed Stats registry the
   worker domains rely on. *)

let i n = Value.Int n
let q = Rational.of_ints
let fact r args = Fact.make r (List.map i args)
let parse = Fo_parse.parse_exn

let check_q msg expected actual =
  Alcotest.(check string) msg (Rational.to_string expected)
    (Rational.to_string actual)

let ti =
  Ti_table.create
    [
      (fact "R" [ 1 ], q 1 2);
      (fact "R" [ 2 ], q 1 3);
      (fact "S" [ 1 ], q 1 4);
      (fact "S" [ 2 ], q 1 5);
    ]

(* A batch hitting all three routes: safe members (lifted), negated /
   universal members (compiled), and a syntactic repeat (duplicate). *)
let mixed_queries =
  [|
    parse "exists x. R(x)";
    parse "exists x. R(x) & S(x)";
    parse "exists x. R(x)";
    parse "!(forall y. R(y))";
    parse "(exists x. R(x)) & !(forall y. R(y))";
  |]

(* ------------------------------------------------------------------ *)
(* Batch_eval *)
(* ------------------------------------------------------------------ *)

let test_batch_matches_sequential () =
  let r = Batch_eval.boolean ti mixed_queries in
  let pads = Batch_eval.padding ti mixed_queries in
  Array.iteri
    (fun idx (m : Rational.t Batch_eval.member) ->
      let extra_domain = if Fo.has_cmp m.Batch_eval.query then [] else pads in
      check_q
        (Printf.sprintf "member %d equals sequential engine" idx)
        (Query_eval.boolean ~extra_domain ti m.Batch_eval.query)
        m.Batch_eval.prob)
    r.Batch_eval.members

let test_batch_routing () =
  let r = Batch_eval.boolean ti mixed_queries in
  let route idx = r.Batch_eval.members.(idx).Batch_eval.route in
  Alcotest.(check bool) "safe member lifted" true (route 0 = Batch_eval.Lifted);
  Alcotest.(check bool) "join member lifted" true (route 1 = Batch_eval.Lifted);
  Alcotest.(check bool) "repeat answered as duplicate" true
    (route 2 = Batch_eval.Duplicate 0);
  (match route 3 with
  | Batch_eval.Compiled _ -> ()
  | _ -> Alcotest.fail "negated member should compile");
  Alcotest.(check int) "lifted count" 2 r.Batch_eval.lifted;
  Alcotest.(check int) "compiled count" 2 r.Batch_eval.compiled;
  Alcotest.(check int) "dedup count" 1 r.Batch_eval.deduped;
  Alcotest.(check int) "one shard by default" 1 r.Batch_eval.shards;
  check_q "duplicate shares the representative's answer"
    r.Batch_eval.members.(0).Batch_eval.prob
    r.Batch_eval.members.(2).Batch_eval.prob

let test_batch_bit_identical_across_domains () =
  let base = Batch_eval.boolean ti mixed_queries in
  List.iter
    (fun d ->
      let r = Batch_eval.boolean ~domains:d ti mixed_queries in
      Array.iteri
        (fun idx (m : Rational.t Batch_eval.member) ->
          check_q
            (Printf.sprintf "member %d at domains=%d" idx d)
            base.Batch_eval.members.(idx).Batch_eval.prob m.Batch_eval.prob)
        r.Batch_eval.members)
    [ 2; 3; 4 ]

let test_batch_empty_and_validation () =
  let r = Batch_eval.boolean ti [||] in
  Alcotest.(check int) "empty batch" 0 (Array.length r.Batch_eval.members);
  Alcotest.(check int) "no shards" 0 r.Batch_eval.shards;
  Alcotest.check_raises "domains must be positive"
    (Invalid_argument "Batch_eval.batch: domains must be positive") (fun () ->
      ignore (Batch_eval.boolean ~domains:0 ti [| parse "exists x. R(x)" |]));
  Alcotest.check_raises "free variables rejected"
    (Invalid_argument "Batch_eval: query has free variables x") (fun () ->
      ignore (Batch_eval.boolean ti [| parse "R(x)" |]))

let test_batch_padding_rank_and_collisions () =
  (* Max rank over the non-Cmp members decides the padding size. *)
  let qs = [| parse "exists x. R(x)"; parse "forall x. exists y. R(y)" |] in
  Alcotest.(check int) "max rank padding" 2
    (List.length (Batch_eval.padding ti qs));
  (* A Cmp member contributes no padding demand. *)
  let qs_cmp = [| parse "exists x. exists y. R(x) & R(y) & x < y" |] in
  Alcotest.(check int) "cmp members unpadded" 0
    (List.length (Batch_eval.padding ti qs_cmp));
  (* Collision avoidance: plant the first-attempt pad value in the
     support; the chosen padding must dodge it and stay inert. *)
  let clash =
    Ti_table.create
      [
        (Fact.make "R" [ Value.Str "\x01batch.pad.0.0" ], q 1 2);
        (fact "R" [ 1 ], q 1 3);
      ]
  in
  let pads = Batch_eval.padding clash [| parse "exists x. R(x)" |] in
  Alcotest.(check int) "still one pad" 1 (List.length pads);
  Alcotest.(check bool) "collision avoided" false
    (List.exists (Value.equal (Value.Str "\x01batch.pad.0.0")) pads);
  (* And the padded batch answer still matches the sequential engine. *)
  let r = Batch_eval.boolean clash [| parse "!(forall y. R(y)) " |] in
  check_q "padded semantics on clash table"
    (Query_eval.boolean ~extra_domain:pads clash (parse "!(forall y. R(y))"))
    r.Batch_eval.members.(0).Batch_eval.prob

let test_batch_effective_cache_size () =
  let r = Batch_eval.boolean ~cache_size:100 ti mixed_queries in
  Alcotest.(check int) "rounded up to a power of two" 128 r.Batch_eval.cache_size;
  let d = Batch_eval.boolean ti mixed_queries in
  Alcotest.(check int) "default cache size reported" Bdd.default_cache_size
    d.Batch_eval.cache_size

let test_batch_budget_hooks () =
  (* tick fires per fresh node from worker shards; a raising tick aborts
     the whole batch instead of returning partial garbage. *)
  let ticks = Atomic.make 0 in
  let r =
    Batch_eval.boolean ~domains:2
      ~tick:(fun () -> Atomic.incr ticks)
      ti mixed_queries
  in
  Alcotest.(check bool) "ticks observed" true (Atomic.get ticks > 0);
  Alcotest.(check int) "two compiled members, two shards" 2 r.Batch_eval.shards;
  let exception Stop in
  Alcotest.check_raises "raising tick aborts" Stop (fun () ->
      ignore
        (Batch_eval.boolean ~tick:(fun () -> raise Stop) ti mixed_queries))

(* ------------------------------------------------------------------ *)
(* Robust_eval.query_batch *)
(* ------------------------------------------------------------------ *)

let geo_src () =
  Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
    ~facts:(fun k -> fact "R" [ k ])
    ()

let test_query_batch_sound_and_aligned () =
  let phis =
    [
      parse "exists x. R(x)";
      parse "exists x. R(x)";
      parse "!(exists x. R(x))";
    ]
  in
  let answers = Robust_eval.query_batch ~eps:0.01 (geo_src ()) phis in
  Alcotest.(check int) "positional alignment" 3 (List.length answers);
  let limit = 1.0 -. 0.2887880951 in
  let a0 = List.nth answers 0 and a1 = List.nth answers 1 in
  Alcotest.(check bool) "enclosure sound" true
    (Interval.contains a0.Robust_eval.enclosure limit);
  Alcotest.(check bool) "complement enclosure sound" true
    (Interval.contains (List.nth answers 2).Robust_eval.enclosure (1.0 -. limit));
  Alcotest.(check (float 0.0)) "duplicate members agree"
    a0.Robust_eval.estimate a1.Robust_eval.estimate;
  List.iter
    (fun (a : Robust_eval.answer) ->
      match a.Robust_eval.provenance.Robust_eval.attempts with
      | { Robust_eval.engine = Robust_eval.Batched; tries = 1; outcome = Robust_eval.Certified _ } :: _ ->
        ()
      | _ -> Alcotest.fail "expected a leading certified Batched attempt")
    answers

let test_query_batch_falls_back_on_exhaustion () =
  (* A 1-node cap kills the batched path; every member must degrade to
     the per-member ladder and stay sound, with the failed Batched
     attempt first in its provenance. *)
  let phis = [ parse "(exists x. R(x)) & !(forall y. R(y))" ] in
  let a =
    List.hd
      (Robust_eval.query_batch ~eps:0.05 ~max_bdd_nodes:1 (geo_src ()) phis)
  in
  (match a.Robust_eval.provenance.Robust_eval.attempts with
  | { Robust_eval.engine = Robust_eval.Batched; outcome = Robust_eval.Failed _; _ } :: _ :: _ ->
    ()
  | _ -> Alcotest.fail "expected Batched failure then ladder attempts");
  Alcotest.(check bool) "fallback enclosure sound" true
    (Interval.contains a.Robust_eval.enclosure (1.0 -. 0.2887880951))

let test_query_batch_validation () =
  Alcotest.check_raises "domains" (Invalid_argument "Robust_eval.query_batch: domains must be positive")
    (fun () ->
      ignore (Robust_eval.query_batch ~domains:0 (geo_src ()) [ parse "exists x. R(x)" ]))

(* ------------------------------------------------------------------ *)
(* Atomic Stats under worker domains *)
(* ------------------------------------------------------------------ *)

let test_stats_counters_multi_domain () =
  let c = Stats.counter "test.batch.atomic.counter" in
  let t = Stats.timer "test.batch.atomic.timer" in
  let count0 = Stats.count c and elapsed0 = Stats.elapsed t in
  let per_domain = 25_000 and workers = 4 in
  let spawned =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Stats.incr c
            done;
            for _ = 1 to 1_000 do
              Stats.add_elapsed t 0.5
            done))
  in
  List.iter Domain.join spawned;
  Alcotest.(check int) "no increment lost" (count0 + (workers * per_domain))
    (Stats.count c);
  Alcotest.(check (float 1e-6)) "no timer accumulation lost"
    (elapsed0 +. (float_of_int workers *. 500.0))
    (Stats.elapsed t)

let prop_stats_exact_count_multi_domain =
  QCheck.Test.make ~name:"atomic counters are exact at any domain count"
    ~count:25
    QCheck.(pair (int_range 1 4) (int_range 1 5_000))
    (fun (workers, per_domain) ->
      let c = Stats.counter "test.batch.atomic.qcheck" in
      let count0 = Stats.count c in
      let spawned =
        List.init workers (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Stats.incr c
                done))
      in
      List.iter Domain.join spawned;
      Stats.count c = count0 + (workers * per_domain))

let prop_batch_equals_map_sequential =
  (* The metamorphic law on random safe/unsafe batches over the fixed
     table: batch = map sequential (under the batch's padding). *)
  let queries =
    [
      "exists x. R(x)";
      "exists x. R(x) & S(x)";
      "!(exists x. R(x) & S(x))";
      "forall x. R(x) -> S(x)";
      "(exists x. R(x)) & !(forall y. S(y))";
      "exists x. exists y. R(x) & S(y)";
    ]
  in
  QCheck.Test.make ~name:"batch = map sequential on random batches" ~count:40
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(1 -- 6) (oneofl (List.map parse queries))))
    (fun (domains, phis) ->
      let qs = Array.of_list phis in
      let r = Batch_eval.boolean ~domains ti qs in
      let pads = Batch_eval.padding ti qs in
      Array.for_all2
        (fun (m : Rational.t Batch_eval.member) phi ->
          let extra_domain = if Fo.has_cmp phi then [] else pads in
          Rational.equal m.Batch_eval.prob
            (Query_eval.boolean ~extra_domain ti phi))
        r.Batch_eval.members qs)

let () =
  Alcotest.run "batch"
    [
      ( "batch_eval",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_batch_matches_sequential;
          Alcotest.test_case "routing and dedup" `Quick test_batch_routing;
          Alcotest.test_case "bit-identical across domains" `Quick
            test_batch_bit_identical_across_domains;
          Alcotest.test_case "empty batch and validation" `Quick
            test_batch_empty_and_validation;
          Alcotest.test_case "padding rank and collisions" `Quick
            test_batch_padding_rank_and_collisions;
          Alcotest.test_case "effective cache size" `Quick
            test_batch_effective_cache_size;
          Alcotest.test_case "budget hooks" `Quick test_batch_budget_hooks;
        ] );
      ( "robust",
        [
          Alcotest.test_case "query_batch sound and aligned" `Quick
            test_query_batch_sound_and_aligned;
          Alcotest.test_case "query_batch fallback on exhaustion" `Quick
            test_query_batch_falls_back_on_exhaustion;
          Alcotest.test_case "query_batch validation" `Quick
            test_query_batch_validation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters and timers across domains" `Quick
            test_stats_counters_multi_domain;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_stats_exact_count_multi_domain;
            prop_batch_equals_map_sequential;
          ] );
    ]
