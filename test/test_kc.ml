(* Tests for the knowledge-compilation substrate: boolean expressions,
   ROBDDs and weighted model counting. *)

module E = Bool_expr

let x0 = E.var 0
let x1 = E.var 1
let x2 = E.var 2

(* ------------------------------------------------------------------ *)
(* Bool_expr *)
(* ------------------------------------------------------------------ *)

let test_smart_constructors () =
  Alcotest.(check bool) "and unit" true (E.equal (E.conj [ E.tru; x0 ]) x0);
  Alcotest.(check bool) "and zero" true (E.equal (E.conj [ x0; E.fls ]) E.fls);
  Alcotest.(check bool) "or unit" true (E.equal (E.disj [ E.fls; x0 ]) x0);
  Alcotest.(check bool) "or one" true (E.equal (E.disj [ x0; E.tru ]) E.tru);
  Alcotest.(check bool) "neg neg" true (E.equal (E.neg (E.neg x0)) x0);
  Alcotest.(check bool) "neg true" true (E.equal (E.neg E.tru) E.fls);
  Alcotest.(check bool) "empty conj" true (E.equal (E.conj []) E.tru);
  Alcotest.(check bool) "empty disj" true (E.equal (E.disj []) E.fls);
  (* flattening *)
  (match E.conj [ E.conj [ x0; x1 ]; x2 ] with
   | E.And [ _; _; _ ] -> ()
   | e -> Alcotest.failf "expected flat conj, got %s" (E.to_string e))

let test_eval_vars () =
  let e = E.or2 (E.and2 x0 x1) (E.neg x2) in
  Alcotest.(check bool) "eval tt" true (E.eval (fun _ -> true) e);
  Alcotest.(check bool) "eval ff" true (E.eval (fun _ -> false) e);
  Alcotest.(check bool) "eval mixed" false (E.eval (fun i -> i = 2) e);
  Alcotest.(check (list int)) "vars" [ 0; 1; 2 ] (E.vars e);
  Alcotest.(check int) "model count" 5 (E.model_count e)

let test_implies () =
  let e = E.implies x0 x1 in
  Alcotest.(check bool) "F -> _" true (E.eval (fun _ -> false) e);
  Alcotest.(check bool) "T -> F" false (E.eval (fun i -> i = 0) e)

let test_brute_force_probability () =
  (* P(x0 | x1) with p0 = 1/2, p1 = 1/3: 1 - (1/2)(2/3) = 2/3 *)
  let weight = function
    | 0 -> Rational.half
    | _ -> Rational.of_ints 1 3
  in
  let p = E.brute_force_probability (module Prob.Rational_carrier) weight (E.or2 x0 x1) in
  Alcotest.(check string) "or prob" "2/3" (Rational.to_string p);
  let p = E.brute_force_probability (module Prob.Rational_carrier) weight (E.and2 x0 x1) in
  Alcotest.(check string) "and prob" "1/6" (Rational.to_string p);
  let p =
    E.brute_force_probability (module Prob.Rational_carrier) weight E.tru
  in
  Alcotest.(check string) "true prob" "1" (Rational.to_string p)

(* ------------------------------------------------------------------ *)
(* Bdd *)
(* ------------------------------------------------------------------ *)

let test_bdd_canonicity () =
  let m = Bdd.manager () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  (* (a & b) built two different ways is the same node *)
  let ab1 = Bdd.conj m a b in
  let ab2 = Bdd.neg m (Bdd.disj m (Bdd.neg m a) (Bdd.neg m b)) in
  Alcotest.(check bool) "de morgan canonical" true (Bdd.equal ab1 ab2);
  (* tautology collapses to true *)
  let taut = Bdd.disj m a (Bdd.neg m a) in
  Alcotest.(check bool) "tautology" true (Bdd.is_tru taut);
  let contra = Bdd.conj m a (Bdd.neg m a) in
  Alcotest.(check bool) "contradiction" true (Bdd.is_fls contra)

let test_bdd_eval_agrees_with_expr () =
  let m = Bdd.manager () in
  let e = E.or2 (E.and2 x0 (E.neg x1)) (E.and2 x2 x1) in
  let d = Bdd.of_expr m e in
  for mask = 0 to 7 do
    let env i = mask land (1 lsl i) <> 0 in
    Alcotest.(check bool)
      (Printf.sprintf "assignment %d" mask)
      (E.eval env e) (Bdd.eval env d)
  done

let test_bdd_support_size () =
  let m = Bdd.manager () in
  (* x1 is redundant in (x0 & x1) | (x0 & !x1) = x0 *)
  let e = E.or2 (E.and2 x0 x1) (E.and2 x0 (E.neg x1)) in
  let d = Bdd.of_expr m e in
  Alcotest.(check (list int)) "support reduces" [ 0 ] (Bdd.support d);
  Alcotest.(check int) "size 1" 1 (Bdd.size d)

let test_bdd_sat_count () =
  let m = Bdd.manager () in
  let d = Bdd.of_expr m (E.or2 (E.and2 x0 x1) (E.neg x2)) in
  Alcotest.(check string) "5 models" "5"
    (Bigint.to_string (Bdd.sat_count d ~over:[ 0; 1; 2 ]));
  (* extra free variable doubles *)
  Alcotest.(check string) "10 over 4 vars" "10"
    (Bigint.to_string (Bdd.sat_count d ~over:[ 0; 1; 2; 7 ]));
  Alcotest.(check string) "true over 3" "8"
    (Bigint.to_string (Bdd.sat_count (Bdd.tru m) ~over:[ 0; 1; 2 ]));
  Alcotest.(check string) "false" "0"
    (Bigint.to_string (Bdd.sat_count (Bdd.fls m) ~over:[ 0 ]));
  Alcotest.check_raises "missing support"
    (Invalid_argument "Bdd.sat_count: over must contain the support")
    (fun () -> ignore (Bdd.sat_count d ~over:[ 0; 1 ]))

let test_bdd_sat_count_shared_dag () =
  (* Regression: counting used to walk the BDD as a tree, re-expanding
     shared subgraphs — exponential on this parity chain (2^40 visits).
     With memoization it is linear in the DAG size. *)
  let m = Bdd.manager () in
  let nvars = 40 in
  let d =
    List.fold_left
      (fun acc v -> Bdd.xor m acc (Bdd.var m v))
      (Bdd.fls m)
      (List.init nvars Fun.id)
  in
  Alcotest.(check int) "parity dag is linear" ((2 * nvars) - 1) (Bdd.size d);
  (* odd parity holds on exactly half of the 2^40 assignments *)
  Alcotest.(check string) "2^39 models"
    (Bigint.to_string (Bigint.shift_left Bigint.one 39))
    (Bigint.to_string (Bdd.sat_count d ~over:(List.init nvars Fun.id)))

let test_bdd_any_sat () =
  let m = Bdd.manager () in
  let e = E.and2 x0 (E.neg x1) in
  (match Bdd.any_sat (Bdd.of_expr m e) with
   | Some assign ->
     let env i = try List.assoc i assign with Not_found -> false in
     Alcotest.(check bool) "assignment satisfies" true (E.eval env e)
   | None -> Alcotest.fail "satisfiable");
  Alcotest.(check bool) "unsat none" true (Bdd.any_sat (Bdd.fls m) = None)

let test_bdd_any_sat_shared_dag () =
  (* Regression: any_sat used to walk the diagram as a tree, re-entering
     shared refuted subgraphs once per path above them.  With UNSAT
     memoization the search is linear in the DAG, so this 500-variable
     diagram — a parity chain (maximal sharing, false-heavy hi edges)
     disjoined with an all-false chain — answers instantly. *)
  let m = Bdd.manager () in
  let nvars = 500 in
  let vars = List.init nvars Fun.id in
  let parity =
    List.fold_left (fun acc v -> Bdd.xor m acc (Bdd.var m v)) (Bdd.fls m) vars
  in
  let all_false =
    List.fold_left
      (fun acc v -> Bdd.conj m acc (Bdd.neg m (Bdd.var m v)))
      (Bdd.tru m) vars
  in
  let d = Bdd.disj m parity all_false in
  (match Bdd.any_sat d with
  | None -> Alcotest.fail "satisfiable"
  | Some assign ->
    let env i = try List.assoc i assign with Not_found -> false in
    Alcotest.(check bool) "assignment satisfies" true (Bdd.eval env d);
    let support = Bdd.support d in
    Alcotest.(check bool) "assignment within support" true
      (List.for_all (fun (v, _) -> List.mem v support) assign));
  (* and the constant-false diagram still reports unsatisfiable *)
  Alcotest.(check bool) "conj with negation unsat" true
    (Bdd.any_sat (Bdd.conj m d (Bdd.neg m d)) = None)

let test_bdd_restrict () =
  let m = Bdd.manager () in
  let d = Bdd.of_expr m (E.and2 x0 x1) in
  let r1 = Bdd.restrict m d 0 true in
  Alcotest.(check bool) "restrict to x1" true (Bdd.equal r1 (Bdd.var m 1));
  let r0 = Bdd.restrict m d 0 false in
  Alcotest.(check bool) "restrict to false" true (Bdd.is_fls r0)

let test_bdd_ite_xor () =
  let m = Bdd.manager () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let x = Bdd.xor m a b in
  Alcotest.(check bool) "xor tt" false (Bdd.eval (fun _ -> true) x);
  Alcotest.(check bool) "xor tf" true (Bdd.eval (fun i -> i = 0) x);
  let i = Bdd.ite m a b (Bdd.neg m b) in
  (* ite(a, b, !b) = a xnor b ... check against eval *)
  List.iter
    (fun (va, vb) ->
      let env j = if j = 0 then va else vb in
      Alcotest.(check bool) "ite agree" (if va then vb else not vb)
        (Bdd.eval env i))
    [ (true, true); (true, false); (false, true); (false, false) ]

let test_bdd_variable_order_effect () =
  (* (x0 & x3) | (x1 & x4) | (x2 & x5): interleaved order is linear,
     separated order is exponential - the classic example. *)
  let e =
    E.disj
      [
        E.and2 (E.var 0) (E.var 3);
        E.and2 (E.var 1) (E.var 4);
        E.and2 (E.var 2) (E.var 5);
      ]
  in
  let good = Bdd.manager ~order:(fun v -> match v with
      | 0 -> 0 | 3 -> 1 | 1 -> 2 | 4 -> 3 | 2 -> 4 | 5 -> 5 | _ -> v + 10) () in
  let bad = Bdd.manager () (* 0,1,2,3,4,5: pairs split across the order *) in
  let sg = Bdd.size (Bdd.of_expr good e) in
  let sb = Bdd.size (Bdd.of_expr bad e) in
  Alcotest.(check bool)
    (Printf.sprintf "good order smaller (%d < %d)" sg sb)
    true (sg < sb)

(* ------------------------------------------------------------------ *)
(* Wmc *)
(* ------------------------------------------------------------------ *)

let test_wmc_matches_brute_force_exact () =
  let weight i = Rational.of_ints (i + 1) 10 in
  List.iter
    (fun e ->
      let reference =
        E.brute_force_probability (module Prob.Rational_carrier) weight e
      in
      let got = Wmc.rational_probability ~weight e in
      Alcotest.(check string) ("wmc " ^ E.to_string e)
        (Rational.to_string reference) (Rational.to_string got))
    [
      E.tru;
      E.fls;
      x0;
      E.neg x0;
      E.and2 x0 x1;
      E.or2 x0 x1;
      E.or2 (E.and2 x0 x1) (E.and2 (E.neg x0) x2);
      E.conj [ x0; x1; x2; E.var 3 ];
      E.disj [ E.and2 x0 x1; E.and2 x1 x2; E.and2 x2 x0 ];
      E.implies (E.or2 x0 x1) (E.and2 x2 (E.neg x0));
    ]

let test_wmc_float_and_interval () =
  let e = E.disj [ E.and2 x0 x1; E.and2 x1 x2; E.and2 x2 x0 ] in
  let wf i = 0.1 *. float_of_int (i + 1) in
  let f = Wmc.float_probability ~weight:wf e in
  let iv = Wmc.interval_probability ~weight:(fun i -> Interval.point (wf i)) e in
  Alcotest.(check bool) "float inside interval" true (Interval.contains iv f);
  Alcotest.(check bool) "interval narrow" true (Interval.width iv < 1e-12);
  let q =
    Wmc.rational_probability ~weight:(fun i -> Rational.of_ints (i + 1) 10) e
  in
  Alcotest.(check bool) "exact inside interval" true
    (Interval.contains iv (Rational.to_float q))

let test_wmc_large_conjunction () =
  (* P(AND of 40 independent vars each 1/2) = 2^-40; brute force would be
     hopeless, the BDD is a chain. *)
  let e = E.conj (List.init 40 E.var) in
  let p = Wmc.rational_probability ~weight:(fun _ -> Rational.half) e in
  Alcotest.(check string) "2^-40" (Rational.to_string (Rational.pow Rational.half 40))
    (Rational.to_string p)

(* ------------------------------------------------------------------ *)
(* Cache-size exposure and the shared-memo batch fold *)
(* ------------------------------------------------------------------ *)

let test_cache_size_exposure () =
  Alcotest.(check int) "default manager reports the default"
    Bdd.default_cache_size
    (Bdd.cache_size (Bdd.manager ()));
  Alcotest.(check int) "rounded up to a power of two" 128
    (Bdd.effective_cache_size 100);
  Alcotest.(check int) "floor of 64" 64 (Bdd.effective_cache_size 1);
  Alcotest.(check int) "powers of two kept" 256 (Bdd.effective_cache_size 256);
  Alcotest.(check int) "manager agrees with effective_cache_size"
    (Bdd.effective_cache_size 1000)
    (Bdd.cache_size (Bdd.manager ~cache_size:1000 ()));
  Alcotest.check_raises "requested size must be positive"
    (Invalid_argument "Bdd.effective_cache_size: cache_size must be positive")
    (fun () -> ignore (Bdd.effective_cache_size 0));
  Alcotest.check_raises "manager rejects nonpositive cache"
    (Invalid_argument "Bdd.manager: cache_size must be positive") (fun () ->
      ignore (Bdd.manager ~cache_size:0 ()));
  Alcotest.check_raises "manager rejects nonpositive gc threshold"
    (Invalid_argument "Bdd.manager: gc_threshold must be positive") (fun () ->
      ignore (Bdd.manager ~gc_threshold:0 ()))

let test_fold_prob_many_matches_fold_prob () =
  let m = Bdd.manager () in
  let e1 = E.disj (List.init 6 (fun k -> E.and2 (E.var (2 * k)) (E.var ((2 * k) + 1)))) in
  let e2 = E.and2 (E.var 0) (E.var 1) in
  let roots = Array.map (Bdd.of_expr m) [| e1; e2; e1; E.tru; E.fls |] in
  let w v = Rational.of_ints 1 (v + 2) in
  let node v lo hi =
    let p = w v in
    Rational.add (Rational.mul p hi)
      (Rational.mul (Rational.sub Rational.one p) lo)
  in
  let many =
    Bdd.fold_prob_many ~zero:Rational.zero ~one:Rational.one ~node roots
  in
  Array.iteri
    (fun idx t ->
      Alcotest.(check string)
        (Printf.sprintf "root %d agrees with fold_prob" idx)
        (Rational.to_string
           (Bdd.fold_prob ~zero:Rational.zero ~one:Rational.one ~node t))
        (Rational.to_string many.(idx)))
    roots;
  Alcotest.(check string) "shared roots share the answer"
    (Rational.to_string many.(0))
    (Rational.to_string many.(2));
  Alcotest.(check int) "empty batch" 0
    (Array.length
       (Bdd.fold_prob_many ~zero:Rational.zero ~one:Rational.one ~node [||]))

let test_fold_prob_many_rejects_foreign_roots () =
  let m1 = Bdd.manager () and m2 = Bdd.manager () in
  let roots = [| Bdd.of_expr m1 (E.var 0); Bdd.of_expr m2 (E.var 0) |] in
  Alcotest.check_raises "mixed managers rejected"
    (Invalid_argument "Bdd.fold_prob_many: node from a different manager")
    (fun () ->
      ignore
        (Bdd.fold_prob_many ~zero:0.0 ~one:1.0
           ~node:(fun _ lo hi -> 0.5 *. (lo +. hi))
           roots))

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let arb_expr =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then
      oneof [ return E.tru; return E.fls; map E.var (int_range 0 5) ]
    else
      frequency
        [
          (1, map E.var (int_range 0 5));
          (2, map E.neg (gen (n - 1)));
          (3, map2 E.and2 (gen (n / 2)) (gen (n / 2)));
          (3, map2 E.or2 (gen (n / 2)) (gen (n / 2)));
        ]
  in
  QCheck.make ~print:E.to_string (gen 6)

let props =
  [
    QCheck.Test.make ~name:"bdd eval = expr eval" ~count:300 arb_expr (fun e ->
        let m = Bdd.manager () in
        let d = Bdd.of_expr m e in
        List.for_all
          (fun mask ->
            let env i = mask land (1 lsl i) <> 0 in
            E.eval env e = Bdd.eval env d)
          [ 0; 7; 21; 42; 63 ]);
    QCheck.Test.make ~name:"wmc = brute force (float)" ~count:200 arb_expr
      (fun e ->
        let weight i = 0.1 +. (0.13 *. float_of_int i) in
        let bf = E.brute_force_probability (module Prob.Float_carrier) weight e in
        Prob.close ~eps:1e-9 bf (Wmc.float_probability ~weight e));
    QCheck.Test.make ~name:"sat_count = model_count" ~count:200 arb_expr
      (fun e ->
        let m = Bdd.manager () in
        let d = Bdd.of_expr m e in
        let vs = E.vars e in
        match vs with
        | [] -> true
        | _ ->
          Bigint.to_int (Bdd.sat_count d ~over:vs) = E.model_count e);
    QCheck.Test.make ~name:"neg involution on bdd" ~count:200 arb_expr (fun e ->
        let m = Bdd.manager () in
        let d = Bdd.of_expr m e in
        Bdd.equal d (Bdd.neg m (Bdd.neg m d)));
    QCheck.Test.make ~name:"order independence of wmc" ~count:100 arb_expr
      (fun e ->
        let weight i = 0.05 *. float_of_int (i + 3) in
        let m1 = Bdd.manager () in
        let m2 = Bdd.manager ~order:(fun v -> 100 - v) () in
        let module W = Wmc.Make (Prob.Float_carrier) in
        Prob.close ~eps:1e-9
          (W.probability ~weight (Bdd.of_expr m1 e))
          (W.probability ~weight (Bdd.of_expr m2 e)));
  ]

(* ------------------------------------------------------------------ *)
(* Kernel differential testing *)
(* ------------------------------------------------------------------ *)

(* Random programs over the full kernel surface — including the cached
   primitives [ite] and [xor] and the traversal [restrict], which plain
   Bool_expr generation never exercises — compiled under a random
   injective variable order and compared against truth-table evaluation
   on every assignment.  A second pass runs the same programs with a
   garbage collection forced between operations (intermediates
   protected), so a sweep that corrupted live nodes, the unique table or
   the operation cache would change some function's truth table. *)

type kexpr =
  | KFalse
  | KTrue
  | KVar of int
  | KNot of kexpr
  | KAnd of kexpr * kexpr
  | KOr of kexpr * kexpr
  | KXor of kexpr * kexpr
  | KIte of kexpr * kexpr * kexpr
  | KRestrict of kexpr * int * bool

let kvars = 8

let rec kexpr_to_string = function
  | KFalse -> "F"
  | KTrue -> "T"
  | KVar v -> Printf.sprintf "x%d" v
  | KNot a -> Printf.sprintf "!(%s)" (kexpr_to_string a)
  | KAnd (a, b) ->
    Printf.sprintf "(%s & %s)" (kexpr_to_string a) (kexpr_to_string b)
  | KOr (a, b) ->
    Printf.sprintf "(%s | %s)" (kexpr_to_string a) (kexpr_to_string b)
  | KXor (a, b) ->
    Printf.sprintf "(%s ^ %s)" (kexpr_to_string a) (kexpr_to_string b)
  | KIte (c, a, b) ->
    Printf.sprintf "ite(%s, %s, %s)" (kexpr_to_string c) (kexpr_to_string a)
      (kexpr_to_string b)
  | KRestrict (a, v, b) ->
    Printf.sprintf "(%s)[x%d:=%b]" (kexpr_to_string a) v b

let rec keval env = function
  | KFalse -> false
  | KTrue -> true
  | KVar v -> env v
  | KNot a -> not (keval env a)
  | KAnd (a, b) -> keval env a && keval env b
  | KOr (a, b) -> keval env a || keval env b
  | KXor (a, b) -> keval env a <> keval env b
  | KIte (c, a, b) -> if keval env c then keval env a else keval env b
  | KRestrict (a, v, b) -> keval (fun u -> if u = v then b else env u) a

let rec kcompile m = function
  | KFalse -> Bdd.fls m
  | KTrue -> Bdd.tru m
  | KVar v -> Bdd.var m v
  | KNot a -> Bdd.neg m (kcompile m a)
  | KAnd (a, b) -> Bdd.conj m (kcompile m a) (kcompile m b)
  | KOr (a, b) -> Bdd.disj m (kcompile m a) (kcompile m b)
  | KXor (a, b) -> Bdd.xor m (kcompile m a) (kcompile m b)
  | KIte (c, a, b) -> Bdd.ite m (kcompile m c) (kcompile m a) (kcompile m b)
  | KRestrict (a, v, b) -> Bdd.restrict m (kcompile m a) v b

(* Same compilation, but every operand is protected and a full collection
   runs after every operation; returns a protected diagram (the caller
   releases). *)
let rec kcompile_gc m e =
  let keep d =
    Bdd.protect d;
    ignore (Bdd.gc m);
    d
  in
  let unop f a =
    let da = kcompile_gc m a in
    let r = keep (f da) in
    Bdd.release da;
    r
  in
  let binop f a b =
    let da = kcompile_gc m a in
    let db = kcompile_gc m b in
    let r = keep (f da db) in
    Bdd.release da;
    Bdd.release db;
    r
  in
  match e with
  | KFalse -> keep (Bdd.fls m)
  | KTrue -> keep (Bdd.tru m)
  | KVar v -> keep (Bdd.var m v)
  | KNot a -> unop (Bdd.neg m) a
  | KAnd (a, b) -> binop (Bdd.conj m) a b
  | KOr (a, b) -> binop (Bdd.disj m) a b
  | KXor (a, b) -> binop (Bdd.xor m) a b
  | KIte (c, a, b) ->
    let dc = kcompile_gc m c in
    let da = kcompile_gc m a in
    let db = kcompile_gc m b in
    let r = keep (Bdd.ite m dc da db) in
    Bdd.release dc;
    Bdd.release da;
    Bdd.release db;
    r
  | KRestrict (a, v, b) -> unop (fun d -> Bdd.restrict m d v b) a

let arb_kprog =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then
      oneof
        [ return KFalse; return KTrue;
          map (fun v -> KVar v) (int_range 0 (kvars - 1)) ]
    else
      frequency
        [
          (1, map (fun v -> KVar v) (int_range 0 (kvars - 1)));
          (2, map (fun a -> KNot a) (gen (n - 1)));
          (3, map2 (fun a b -> KAnd (a, b)) (gen (n / 2)) (gen (n / 2)));
          (3, map2 (fun a b -> KOr (a, b)) (gen (n / 2)) (gen (n / 2)));
          (2, map2 (fun a b -> KXor (a, b)) (gen (n / 2)) (gen (n / 2)));
          ( 2,
            map3
              (fun c a b -> KIte (c, a, b))
              (gen (n / 3)) (gen (n / 3)) (gen (n / 3)) );
          ( 1,
            map3
              (fun a v b -> KRestrict (a, v, b))
              (gen (n - 1))
              (int_range 0 (kvars - 1))
              bool );
        ]
  in
  let perm st =
    let a = Array.init kvars Fun.id in
    shuffle_a a st;
    a
  in
  QCheck.make
    ~print:(fun (e, p) ->
      Printf.sprintf "%s under order [%s]" (kexpr_to_string e)
        (String.concat ";" (Array.to_list (Array.map string_of_int p))))
    (pair (gen 8) perm)

let truth_tables_agree e d =
  let ok = ref true in
  for mask = 0 to (1 lsl kvars) - 1 do
    let env i = mask land (1 lsl i) <> 0 in
    if keval env e <> Bdd.eval env d then ok := false
  done;
  !ok

let differential_props =
  [
    QCheck.Test.make ~name:"kernel ops = truth table (random order)"
      ~count:300 arb_kprog (fun (e, perm) ->
        let m = Bdd.manager ~order:(fun v -> perm.(v)) () in
        truth_tables_agree e (kcompile m e));
    QCheck.Test.make ~name:"kernel ops = truth table (gc between ops)"
      ~count:200 arb_kprog (fun (e, perm) ->
        let m = Bdd.manager ~order:(fun v -> perm.(v)) () in
        let d = kcompile_gc m e in
        let ok = truth_tables_agree e d in
        Bdd.release d;
        ok);
    QCheck.Test.make ~name:"gc-interleaved compile = straight compile"
      ~count:200 arb_kprog (fun (e, perm) ->
        (* Both compilations happen in one manager: the collected one must
           hand back the very node the straight one builds (canonicity
           survives sweeps and unique-table rebuilds). *)
        let m = Bdd.manager ~order:(fun v -> perm.(v)) () in
        let d1 = kcompile_gc m e in
        let d2 = kcompile m e in
        let ok = Bdd.equal d1 d2 in
        Bdd.release d1;
        ok);
  ]

let () =
  Alcotest.run "kc"
    [
      ( "bool_expr",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "eval/vars" `Quick test_eval_vars;
          Alcotest.test_case "implies" `Quick test_implies;
          Alcotest.test_case "brute force probability" `Quick
            test_brute_force_probability;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "canonicity" `Quick test_bdd_canonicity;
          Alcotest.test_case "eval agrees" `Quick test_bdd_eval_agrees_with_expr;
          Alcotest.test_case "support/size" `Quick test_bdd_support_size;
          Alcotest.test_case "sat_count" `Quick test_bdd_sat_count;
          Alcotest.test_case "sat_count shared dag" `Quick
            test_bdd_sat_count_shared_dag;
          Alcotest.test_case "any_sat" `Quick test_bdd_any_sat;
          Alcotest.test_case "any_sat shared dag" `Quick
            test_bdd_any_sat_shared_dag;
          Alcotest.test_case "restrict" `Quick test_bdd_restrict;
          Alcotest.test_case "ite/xor" `Quick test_bdd_ite_xor;
          Alcotest.test_case "variable order" `Quick
            test_bdd_variable_order_effect;
        ] );
      ( "wmc",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_wmc_matches_brute_force_exact;
          Alcotest.test_case "float+interval" `Quick test_wmc_float_and_interval;
          Alcotest.test_case "large conjunction" `Quick test_wmc_large_conjunction;
          Alcotest.test_case "cache size exposure" `Quick
            test_cache_size_exposure;
          Alcotest.test_case "fold_prob_many = fold_prob" `Quick
            test_fold_prob_many_matches_fold_prob;
          Alcotest.test_case "fold_prob_many manager check" `Quick
            test_fold_prob_many_rejects_foreign_roots;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
      ( "kernel differential",
        List.map QCheck_alcotest.to_alcotest differential_props );
    ]
