(* Persistent mmap'd fact store (.iow).  See store.mli for the layout.

   Design constraints, in order:
   - a damaged pack must never decode into a wrong answer: magic,
     version, stored length and a whole-file checksum are verified on
     every load, and every byte access afterwards is bounds-checked
     against the mapped length;
   - boot must be O(file bytes) for the checksum and nothing else: no
     fact, value or probability is decoded until asked for;
   - [tail_mass] must be O(1) and [truncation_for_mass] O(log n): both
     read the precomputed sidecar, never the probability column. *)

type kind = Ti | Bid

let magic = "IOWPACK1"
let version = 1
let header_size = 144

(* Header field offsets (bytes). *)
let off_version = 8
let off_kind = 16
let off_checksum = 24
let off_length = 32
let off_n_facts = 40
let off_n_values = 48
let off_n_rels = 56
let off_n_strings = 64
let off_n_blocks = 72
let off_sec_strings = 80
let off_sec_values = 88
let off_sec_rels = 96
let off_sec_facts = 104
let off_sec_probs = 112
let off_sec_sidecar = 120
let off_sec_blocks = 128

(* ------------------------------------------------------------------ *)
(* Checksum: FNV-1a-style folding into 62 bits so the hot loop runs on
   native ints.  The file is consumed in aligned 4-byte little-endian
   chunks (any trailing 1-3 bytes individually); each step is
   [h -> ((h lxor chunk) * prime) mod 2^62].  Every chunk is below
   2^32 <= 2^62, so the xor is a bijection in [h] and injective in the
   chunk, and the odd prime is invertible mod 2^62 — flipping any
   single byte of the file changes exactly one chunk and therefore
   provably changes the final hash, which is what makes "every
   single-byte corruption is rejected" a theorem rather than a
   probability.  Chunked folding quarters the serial multiply chain:
   the checksum is the whole of the O(file bytes) work at load time,
   so this is the boot hot loop.  The 8 checksum-field bytes (aligned,
   chunks at 24 and 28) fold as zero. *)
(* ------------------------------------------------------------------ *)

let mask62 = (1 lsl 62) - 1
let fnv_init = 0x0BF29CE484222325 (* FNV-1a 64 offset basis mod 2^62 *)
let fnv_prime = 0x100000001B3

let checksum_bytes (b : Bytes.t) =
  let len = Bytes.length b in
  let h = ref fnv_init in
  let quads = len lsr 2 in
  for qi = 0 to quads - 1 do
    let i = qi lsl 2 in
    let c =
      if i = off_checksum || i = off_checksum + 4 then 0
      else
        Char.code (Bytes.unsafe_get b i)
        lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)
        lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 16)
        lor (Char.code (Bytes.unsafe_get b (i + 3)) lsl 24)
    in
    h := ((!h lxor c) * fnv_prime) land mask62
  done;
  for i = quads lsl 2 to len - 1 do
    h := ((!h lxor Char.code (Bytes.unsafe_get b i)) * fnv_prime) land mask62
  done;
  !h

type map = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let checksum_map (m : map) len =
  let h = ref fnv_init in
  let quads = len lsr 2 in
  for qi = 0 to quads - 1 do
    let i = qi lsl 2 in
    let c =
      if i = off_checksum || i = off_checksum + 4 then 0
      else
        Bigarray.Array1.unsafe_get m i
        lor (Bigarray.Array1.unsafe_get m (i + 1) lsl 8)
        lor (Bigarray.Array1.unsafe_get m (i + 2) lsl 16)
        lor (Bigarray.Array1.unsafe_get m (i + 3) lsl 24)
    in
    h := ((!h lxor c) * fnv_prime) land mask62
  done;
  for i = quads lsl 2 to len - 1 do
    h := ((!h lxor Bigarray.Array1.unsafe_get m i) * fnv_prime) land mask62
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Observability *)
(* ------------------------------------------------------------------ *)

let c_load = Stats.counter "store.load"
let t_load = Stats.timer "store.load.seconds"
let c_bytes = Stats.counter "store.mmap.bytes"
let c_reject = Stats.counter "store.reject"
let c_slice = Stats.counter "store.slice"
let c_probe = Stats.counter "store.sidecar.probe"
let c_decode = Stats.counter "store.fact.decode"

let reject path region msg =
  Stats.incr c_reject;
  Errors.raise_error (Errors.Store { path; region; msg })

(* ------------------------------------------------------------------ *)
(* Writer *)
(* ------------------------------------------------------------------ *)

let kind_code = function Ti -> 0 | Bid -> 1

module VMap = Map.Make (Value)
module SMap = Map.Make (String)

module RMap = Map.Make (struct
  type t = string * int

  let compare (n1, a1) (n2, a2) =
    let c = String.compare n1 n2 in
    if c <> 0 then c else Stdlib.compare a1 a2
end)

type pools = {
  mutable strings : int SMap.t;
  mutable str_list : string list; (* reversed *)
  mutable n_strings : int;
  mutable values : int VMap.t;
  mutable val_list : Value.t list; (* reversed *)
  mutable n_values : int;
  mutable rels : int RMap.t;
  mutable rel_list : (string * int) list; (* reversed *)
  mutable n_rels : int;
}

let new_pools () =
  {
    strings = SMap.empty;
    str_list = [];
    n_strings = 0;
    values = VMap.empty;
    val_list = [];
    n_values = 0;
    rels = RMap.empty;
    rel_list = [];
    n_rels = 0;
  }

let string_id p s =
  match SMap.find_opt s p.strings with
  | Some i -> i
  | None ->
    let i = p.n_strings in
    p.strings <- SMap.add s i p.strings;
    p.str_list <- s :: p.str_list;
    p.n_strings <- i + 1;
    i

let value_id p v =
  match VMap.find_opt v p.values with
  | Some i -> i
  | None ->
    (* Intern the payload string first so ids are assigned in a single
       deterministic pass. *)
    (match v with Value.Str s -> ignore (string_id p s) | _ -> ());
    let i = p.n_values in
    p.values <- VMap.add v i p.values;
    p.val_list <- v :: p.val_list;
    p.n_values <- i + 1;
    i

let rel_id p name arity =
  match RMap.find_opt (name, arity) p.rels with
  | Some i -> i
  | None ->
    ignore (string_id p name);
    let i = p.n_rels in
    p.rels <- RMap.add (name, arity) i p.rels;
    p.rel_list <- (name, arity) :: p.rel_list;
    p.n_rels <- i + 1;
    i

let add_u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

(* Exact suffix sums turned into sound float upper bounds: [to_float]
   rounds to nearest (at most half an ulp below the true value), so one
   [Float.succ] is strictly above it; a positive rational that rounds to
   0.0 is still covered because [Float.succ 0.0] is the smallest
   positive subnormal.  The empty suffix is exactly 0. *)
let sidecar_of entries =
  let n = Array.length entries in
  let tail = Array.make (n + 1) 0.0 in
  let suffix = ref Rational.zero in
  for i = n - 1 downto 0 do
    suffix := Rational.add !suffix (snd entries.(i));
    tail.(i) <- Float.succ (Rational.to_float !suffix)
  done;
  tail

(* Serialize [entries] (facts in their final on-disk order) plus the
   BID [blocks] (block id, first fact, n_alts; empty for TI). *)
let write_pack ~path ~kind entries blocks =
  let pools = new_pools () in
  let n = Array.length entries in
  (* Encode the fact and probability blobs with section-relative record
     offsets; the dictionaries fill as a side effect, in fact order. *)
  let fact_blob = Buffer.create (16 * n) and fact_offs = Array.make n 0 in
  Array.iteri
    (fun i (f, _) ->
      fact_offs.(i) <- Buffer.length fact_blob;
      let args = Fact.args f in
      add_u64 fact_blob (rel_id pools (Fact.rel f) (List.length args));
      List.iter (fun v -> add_u64 fact_blob (value_id pools v)) args)
    entries;
  let prob_blob = Buffer.create (24 * n) and prob_offs = Array.make n 0 in
  Array.iteri
    (fun i (_, p) ->
      prob_offs.(i) <- Buffer.length prob_blob;
      let num = Bigint.to_bytes_le (Rational.num p)
      and den = Bigint.to_bytes_le (Rational.den p) in
      add_u64 prob_blob (String.length num);
      add_u64 prob_blob (String.length den);
      Buffer.add_string prob_blob num;
      Buffer.add_string prob_blob den)
    entries;
  let block_recs =
    List.map
      (fun (id, first, n_alts) -> (string_id pools id, first, n_alts))
      blocks
  in
  let n_blocks = List.length block_recs in
  let tail = sidecar_of entries in
  (* String blob with section-relative offsets. *)
  let str_blob = Buffer.create 256 in
  let str_entries =
    List.rev_map
      (fun s ->
        let off = Buffer.length str_blob in
        Buffer.add_string str_blob s;
        (off, String.length s))
      (List.rev pools.str_list)
    |> List.rev
  in
  (* Section layout. *)
  let sec_strings = header_size in
  let strings_table = 16 * pools.n_strings in
  let sec_values = sec_strings + strings_table + Buffer.length str_blob in
  let sec_rels = sec_values + (16 * pools.n_values) in
  let sec_facts = sec_rels + (16 * pools.n_rels) in
  let sec_probs = sec_facts + (8 * n) + Buffer.length fact_blob in
  let sec_sidecar = sec_probs + (8 * n) + Buffer.length prob_blob in
  let sec_blocks = sec_sidecar + (8 * (n + 1)) in
  let total = sec_blocks + (24 * n_blocks) in
  let buf = Buffer.create total in
  (* Header (checksum written as 0, patched below). *)
  Buffer.add_string buf magic;
  add_u64 buf version;
  add_u64 buf (kind_code kind);
  add_u64 buf 0;
  add_u64 buf total;
  add_u64 buf n;
  add_u64 buf pools.n_values;
  add_u64 buf pools.n_rels;
  add_u64 buf pools.n_strings;
  add_u64 buf n_blocks;
  add_u64 buf sec_strings;
  add_u64 buf sec_values;
  add_u64 buf sec_rels;
  add_u64 buf sec_facts;
  add_u64 buf sec_probs;
  add_u64 buf sec_sidecar;
  add_u64 buf sec_blocks;
  add_u64 buf 0 (* reserved *);
  (* strings: table (absolute blob offsets) + blob *)
  let blob_base = sec_strings + strings_table in
  List.iter
    (fun (off, len) ->
      add_u64 buf (blob_base + off);
      add_u64 buf len)
    str_entries;
  Buffer.add_buffer buf str_blob;
  (* values *)
  List.iter
    (fun v ->
      match v with
      | Value.Int i ->
        add_u64 buf 0;
        Buffer.add_int64_le buf (Int64.of_int i)
      | Value.Str s ->
        add_u64 buf 1;
        add_u64 buf (SMap.find s pools.strings)
      | Value.Real r ->
        add_u64 buf 2;
        Buffer.add_int64_le buf (Int64.bits_of_float r)
      | Value.Bool b ->
        add_u64 buf 3;
        add_u64 buf (if b then 1 else 0))
    (List.rev pools.val_list);
  (* rels *)
  List.iter
    (fun (name, arity) ->
      add_u64 buf (SMap.find name pools.strings);
      add_u64 buf arity)
    (List.rev pools.rel_list);
  (* facts: absolute offset table + blob *)
  let fact_base = sec_facts + (8 * n) in
  Array.iter (fun off -> add_u64 buf (fact_base + off)) fact_offs;
  Buffer.add_buffer buf fact_blob;
  (* probs: absolute offset table + blob *)
  let prob_base = sec_probs + (8 * n) in
  Array.iter (fun off -> add_u64 buf (prob_base + off)) prob_offs;
  Buffer.add_buffer buf prob_blob;
  (* sidecar *)
  Array.iter (fun t -> Buffer.add_int64_le buf (Int64.bits_of_float t)) tail;
  (* blocks *)
  List.iter
    (fun (sid, first, n_alts) ->
      add_u64 buf sid;
      add_u64 buf first;
      add_u64 buf n_alts)
    block_recs;
  assert (Buffer.length buf = total);
  let bytes = Buffer.to_bytes buf in
  Bytes.set_int64_le bytes off_checksum (Int64.of_int (checksum_bytes bytes));
  (* Write-then-rename: a crash mid-write leaves only the .tmp, never a
     torn pack under the final name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc bytes);
  Sys.rename tmp path

let desc_prob_order (f1, p1) (f2, p2) =
  let c = Rational.compare p2 p1 in
  if c <> 0 then c else Fact.compare f1 f2

let write_ti ~path ti =
  let entries =
    Array.of_list (List.sort desc_prob_order (Ti_table.facts ti))
  in
  write_pack ~path ~kind:Ti entries []

let write_bid ~path bid =
  (* Blocks keep creation order; alternatives stay contiguous per block
     so block [b]'s tail mass is the fact tail at its first index. *)
  let entries = ref [] and blocks = ref [] and first = ref 0 in
  List.iter
    (fun b ->
      let alts = b.Bid_table.alternatives in
      blocks := (b.Bid_table.block_id, !first, List.length alts) :: !blocks;
      first := !first + List.length alts;
      entries := List.rev_append alts !entries)
    (Bid_table.blocks bid);
  write_pack ~path ~kind:Bid
    (Array.of_list (List.rev !entries))
    (List.rev !blocks)

(* ------------------------------------------------------------------ *)
(* Reader *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  map : map;
  length : int;
  kind : kind;
  checksum : int;
  n_facts : int;
  n_values : int;
  n_rels : int;
  n_strings : int;
  n_blocks : int;
  sec_strings : int;
  sec_values : int;
  sec_rels : int;
  sec_facts : int;
  sec_probs : int;
  sec_sidecar : int;
  sec_blocks : int;
}

(* All multi-byte reads are bounds-checked: a forged offset can raise a
   structured rejection but can never read outside the map. *)
let read_i64 t region off =
  if off < 0 || off + 8 > t.length then
    reject t.path region (Printf.sprintf "offset %d outside pack" off);
  let m = t.map in
  let b i = Int64.of_int (Bigarray.Array1.unsafe_get m (off + i)) in
  let ( ||| ) = Int64.logor and ( <<< ) = Int64.shift_left in
  b 0 ||| (b 1 <<< 8) ||| (b 2 <<< 16) ||| (b 3 <<< 24) ||| (b 4 <<< 32)
  ||| (b 5 <<< 40)
  ||| (b 6 <<< 48)
  ||| (b 7 <<< 56)

let read_u62 t region off =
  let v = read_i64 t region off in
  if Int64.logand v 0xC000000000000000L <> 0L then
    reject t.path region
      (Printf.sprintf "field at %d does not fit 62 bits" off);
  Int64.to_int v

let read_string t region off len =
  if off < 0 || len < 0 || off + len > t.length then
    reject t.path region "string bytes outside pack";
  String.init len (fun i -> Char.chr (Bigarray.Array1.get t.map (off + i)))

let load_map path =
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        if len < header_size then (len, None)
        else begin
          let ga =
            Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout false
              [| -1 |]
          in
          (len, Some (Bigarray.array1_of_genarray ga))
        end)
  with
  | len, Some m -> (len, m)
  | len, None ->
    reject path "header"
      (Printf.sprintf "file is %d bytes, smaller than the %d-byte header"
         len header_size)
  | exception Unix.Unix_error (e, _, _) ->
    reject path "open" (Unix.error_message e)
  | exception Sys_error msg -> reject path "open" msg

let load path =
  Stats.time t_load @@ fun () ->
  Stats.incr c_load;
  let length, map = load_map path in
  (* Validation order: magic/version identify the format, the stored
     length and checksum establish integrity, and only then are the
     structural fields interpreted. *)
  let tmp =
    {
      path;
      map;
      length;
      kind = Ti;
      checksum = 0;
      n_facts = 0;
      n_values = 0;
      n_rels = 0;
      n_strings = 0;
      n_blocks = 0;
      sec_strings = 0;
      sec_values = 0;
      sec_rels = 0;
      sec_facts = 0;
      sec_probs = 0;
      sec_sidecar = 0;
      sec_blocks = 0;
    }
  in
  let got_magic = read_string tmp "header" 0 8 in
  if got_magic <> magic then
    reject path "header"
      (Printf.sprintf "bad magic %S (expected %S)" got_magic magic);
  let v = read_u62 tmp "header" off_version in
  if v <> version then
    reject path "header" (Printf.sprintf "unsupported version %d" v);
  let kind =
    match read_u62 tmp "header" off_kind with
    | 0 -> Ti
    | 1 -> Bid
    | k -> reject path "header" (Printf.sprintf "unknown kind %d" k)
  in
  let stored_len = read_u62 tmp "header" off_length in
  if stored_len <> length then
    reject path "header"
      (Printf.sprintf "stored length %d but file is %d bytes (truncated?)"
         stored_len length);
  let stored_sum = read_u62 tmp "checksum" off_checksum in
  let actual = checksum_map map length in
  if stored_sum <> actual then
    reject path "checksum"
      (Printf.sprintf "checksum mismatch: stored %016x, computed %016x"
         stored_sum actual);
  let n_facts = read_u62 tmp "header" off_n_facts
  and n_values = read_u62 tmp "header" off_n_values
  and n_rels = read_u62 tmp "header" off_n_rels
  and n_strings = read_u62 tmp "header" off_n_strings
  and n_blocks = read_u62 tmp "header" off_n_blocks
  and sec_strings = read_u62 tmp "header" off_sec_strings
  and sec_values = read_u62 tmp "header" off_sec_values
  and sec_rels = read_u62 tmp "header" off_sec_rels
  and sec_facts = read_u62 tmp "header" off_sec_facts
  and sec_probs = read_u62 tmp "header" off_sec_probs
  and sec_sidecar = read_u62 tmp "header" off_sec_sidecar
  and sec_blocks = read_u62 tmp "header" off_sec_blocks in
  (* Structural sanity: the canonical section order with fixed-size
     parts accounted for, everything inside the file. *)
  let check cond msg = if not cond then reject path "structure" msg in
  check (sec_strings = header_size) "strings section must follow header";
  check
    (sec_values >= sec_strings + (16 * n_strings))
    "values section overlaps string table";
  check (sec_rels = sec_values + (16 * n_values)) "rels section misplaced";
  check (sec_facts = sec_rels + (16 * n_rels)) "facts section misplaced";
  check (sec_probs >= sec_facts + (8 * n_facts)) "probs section overlaps facts";
  check
    (sec_sidecar >= sec_probs + (8 * n_facts))
    "sidecar section overlaps probs";
  check
    (sec_blocks = sec_sidecar + (8 * (n_facts + 1)))
    "blocks section misplaced";
  check (length = sec_blocks + (24 * n_blocks)) "blocks section truncated";
  check (kind = Bid || n_blocks = 0) "TI pack with blocks";
  Stats.add c_bytes length;
  {
    path;
    map;
    length;
    kind;
    checksum = actual;
    n_facts;
    n_values;
    n_rels;
    n_strings;
    n_blocks;
    sec_strings;
    sec_values;
    sec_rels;
    sec_facts;
    sec_probs;
    sec_sidecar;
    sec_blocks;
  }

let load_r path =
  match load path with
  | t -> Ok t
  | exception Errors.Error e -> Error e

let kind t = t.kind
let path t = t.path
let size t = t.n_facts
let num_blocks t = t.n_blocks
let byte_size t = t.length
let checksum_hex t = Printf.sprintf "%016x" t.checksum

(* ------------------------------------------------------------------ *)
(* Lazy decode *)
(* ------------------------------------------------------------------ *)

let read_interned_string t region id =
  if id < 0 || id >= t.n_strings then
    reject t.path region (Printf.sprintf "string id %d out of range" id);
  let ent = t.sec_strings + (16 * id) in
  let off = read_u62 t "strings" ent
  and len = read_u62 t "strings" (ent + 8) in
  read_string t "strings" off len

let value t id =
  if id < 0 || id >= t.n_values then
    reject t.path "values" (Printf.sprintf "value id %d out of range" id);
  let ent = t.sec_values + (16 * id) in
  match read_u62 t "values" ent with
  | 0 ->
    let v = read_i64 t "values" (ent + 8) in
    if Int64.of_int (Int64.to_int v) <> v then
      reject t.path "values" "integer payload does not fit a native int";
    Value.Int (Int64.to_int v)
  | 1 -> Value.Str (read_interned_string t "values" (read_u62 t "values" (ent + 8)))
  | 2 -> Value.Real (Int64.float_of_bits (read_i64 t "values" (ent + 8)))
  | 3 -> Value.Bool (read_u62 t "values" (ent + 8) <> 0)
  | tag -> reject t.path "values" (Printf.sprintf "unknown value tag %d" tag)

let rel t id =
  if id < 0 || id >= t.n_rels then
    reject t.path "rels" (Printf.sprintf "rel id %d out of range" id);
  let ent = t.sec_rels + (16 * id) in
  ( read_interned_string t "rels" (read_u62 t "rels" ent),
    read_u62 t "rels" (ent + 8) )

let check_index t i =
  if i < 0 || i >= t.n_facts then
    invalid_arg (Printf.sprintf "Store: fact index %d outside [0, %d)" i t.n_facts)

let fact t i =
  check_index t i;
  Stats.incr c_decode;
  let off = read_u62 t "facts" (t.sec_facts + (8 * i)) in
  let name, arity = rel t (read_u62 t "facts" off) in
  Fact.make_arr name
    (Array.init arity (fun k ->
         value t (read_u62 t "facts" (off + 8 + (8 * k)))))

let prob t i =
  check_index t i;
  let off = read_u62 t "probs" (t.sec_probs + (8 * i)) in
  let num_len = read_u62 t "probs" off
  and den_len = read_u62 t "probs" (off + 8) in
  let num = read_string t "probs" (off + 16) num_len in
  let den = read_string t "probs" (off + 16 + num_len) den_len in
  if den_len = 0 then reject t.path "probs" "zero denominator";
  Rational.make (Bigint.of_bytes_le num) (Bigint.of_bytes_le den)

let entry t i = (fact t i, prob t i)

let tail_mass t n =
  Stats.incr c_probe;
  let n = Stdlib.max 0 (Stdlib.min n t.n_facts) in
  Int64.float_of_bits (read_i64 t "sidecar" (t.sec_sidecar + (8 * n)))

(* ------------------------------------------------------------------ *)
(* Truncation *)
(* ------------------------------------------------------------------ *)

let truncation_for_mass t ~eps =
  if eps < 0.0 then invalid_arg "Store.truncation_for_mass: eps < 0";
  (* The sidecar is antitone with tail(size) = 0 <= eps, so the least
     satisfying index exists; plain binary search, no decoding. *)
  let ok n = tail_mass t n <= eps in
  if ok 0 then (0, tail_mass t 0)
  else begin
    (* invariant: not (ok lo), ok hi *)
    let lo = ref 0 and hi = ref t.n_facts in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if ok mid then hi := mid else lo := mid
    done;
    (!hi, tail_mass t !hi)
  end

let require_ti t what =
  if t.kind <> Ti then
    invalid_arg (Printf.sprintf "Store.%s: not a TI pack: %s" what t.path)

let truncate t ~n =
  require_ti t "truncate";
  Stats.incr c_slice;
  let n = Stdlib.max 0 (Stdlib.min n t.n_facts) in
  Ti_table.create (List.init n (entry t))

let truncate_for_mass t ~eps =
  let n, _ = truncation_for_mass t ~eps in
  (n, truncate t ~n)

let to_ti_table t = truncate t ~n:t.n_facts

let block t i =
  let ent = t.sec_blocks + (24 * i) in
  let id = read_interned_string t "blocks" (read_u62 t "blocks" ent) in
  let first = read_u62 t "blocks" (ent + 8)
  and n_alts = read_u62 t "blocks" (ent + 16) in
  if first < 0 || n_alts < 0 || first + n_alts > t.n_facts then
    reject t.path "blocks"
      (Printf.sprintf "block %d spans facts [%d, %d) outside [0, %d)" i first
         (first + n_alts) t.n_facts);
  {
    Bid_table.block_id = id;
    alternatives = List.init n_alts (fun k -> entry t (first + k));
  }

let truncate_blocks t ~n =
  if t.kind <> Bid then
    invalid_arg (Printf.sprintf "Store.truncate_blocks: not a BID pack: %s" t.path);
  Stats.incr c_slice;
  let n = Stdlib.max 0 (Stdlib.min n t.n_blocks) in
  Bid_table.create (List.init n (block t))

let to_bid_table t = truncate_blocks t ~n:t.n_blocks

(* ------------------------------------------------------------------ *)
(* Fact source *)
(* ------------------------------------------------------------------ *)

let fact_source ?rest t =
  require_ti t "fact_source";
  let name = Printf.sprintf "store:%s" (Filename.basename t.path) in
  let packed = Seq.init t.n_facts (fun i -> entry t i) in
  match rest with
  | None ->
    Fact_source.make ~name ~enum:packed
      ~tail:(fun n -> Some (tail_mass t n))
      ()
  | Some rest ->
    Fact_source.make
      ~name:(Printf.sprintf "%s+%s" name (Fact_source.name rest))
      ~enum:(Seq.append packed (Fact_source.seq_of rest))
      ~tail:(fun n ->
        (* Sound split: packed facts from n on, plus the whole rest tail
           once n passes the packed prefix. *)
        let k = Stdlib.max 0 (n - t.n_facts) in
        Option.map
          (fun tr -> tail_mass t n +. tr)
          (Fact_source.tail_mass rest k))
      ()

(* ------------------------------------------------------------------ *)
(* Verification *)
(* ------------------------------------------------------------------ *)

let verify_against_ti t ti =
  match
    if t.kind <> Ti then Error "pack kind is BID, table is TI"
    else if t.n_facts <> Ti_table.size ti then
      Error
        (Printf.sprintf "pack has %d facts, table has %d" t.n_facts
           (Ti_table.size ti))
    else begin
      let bad = ref None in
      for i = 0 to t.n_facts - 1 do
        if !bad = None then begin
          let f, p = entry t i in
          let q = Ti_table.prob ti f in
          if not (Rational.equal p q) then
            bad :=
              Some
                (Printf.sprintf "fact %s: pack says %s, table says %s"
                   (Fact.to_string f) (Rational.to_string p)
                   (Rational.to_string q))
        end
      done;
      match !bad with None -> Ok () | Some msg -> Error msg
    end
  with
  | r -> r
  | exception Errors.Error e -> Error (Errors.to_string e)

let verify_against_bid t bid =
  match
    if t.kind <> Bid then Error "pack kind is TI, table is BID"
    else begin
      let packed = to_bid_table t in
      let b1 = Bid_table.blocks packed and b2 = Bid_table.blocks bid in
      if List.length b1 <> List.length b2 then
        Error
          (Printf.sprintf "pack has %d blocks, table has %d" (List.length b1)
             (List.length b2))
      else begin
        let mismatch =
          List.find_opt
            (fun (x, y) ->
              x.Bid_table.block_id <> y.Bid_table.block_id
              || List.length x.Bid_table.alternatives
                 <> List.length y.Bid_table.alternatives
              || List.exists2
                   (fun (f1, p1) (f2, p2) ->
                     not (Fact.equal f1 f2 && Rational.equal p1 p2))
                   x.Bid_table.alternatives y.Bid_table.alternatives)
            (List.combine b1 b2)
        in
        match mismatch with
        | None -> Ok ()
        | Some (x, _) ->
          Error (Printf.sprintf "block %s differs" x.Bid_table.block_id)
      end
    end
  with
  | r -> r
  | exception Errors.Error e -> Error (Errors.to_string e)
