(** Persistent mmap'd fact store: the [.iow] pack format.

    A pack is the canonical countable-TI presentation of the paper's
    evaluation model made durable: facts in non-increasing probability
    order (the enumeration of Lemma 4.4 / Prop 6.1, and of the authors'
    follow-up on tuple-independent representations), probabilities as
    exact rationals, plus a precomputed tail-mass sidecar.  Against that
    layout the two operations every engine performs on a table become
    trivial: [truncate ~n] is a pure O(1) slice of the first [n] facts,
    and [truncate_for_mass ~eps] is a binary search over the sidecar —
    no parsing, no scanning, no rational arithmetic on the hot path.

    Loading is zero-copy: the file is [Unix.map_file]'d into a char
    [Bigarray] and facts/probabilities are decoded on demand.  A
    magic/version header plus a whole-file checksum (verified on every
    load) turn a torn, truncated or bit-rotted pack into a structured
    {!Errors.Store} rejection — never a wrong answer.  The checksum step
    is injective per byte, so every single-byte corruption is detected
    deterministically.

    Layout (all integers little-endian u64):
    {v
    header   magic "IOWPACK1" | version | kind | checksum | length
             n_facts n_values n_rels n_strings n_blocks
             section offsets: strings values rels facts probs
             sidecar blocks
    strings  (offset, len) table + UTF-8 blob        (dictionary)
    values   (tag, payload) pairs                    (dictionary)
    rels     (name string id, arity) pairs           (dictionary)
    facts    offset table + [rel id, value ids...]   (desc. probability)
    probs    offset table + [num len, den len, magnitude bytes]
    sidecar  (n_facts + 1) float64 upper bounds on the exact tail mass
    blocks   (block id, first fact, n_alts) triples  (BID packs only)
    v} *)

type t

type kind =
  | Ti  (** tuple-independent: one independent event per fact *)
  | Bid  (** block-independent-disjoint: facts grouped in blocks *)

(** {1 Writing} *)

val write_ti : path:string -> Ti_table.t -> unit
(** Pack a TI table: facts sorted by descending probability (ties by
    [Fact.compare]), exact rational probabilities, sidecar of float64
    upper bounds on every suffix sum.  Writes to [path ^ ".tmp"] then
    renames, so a crash never leaves a half-written pack at [path]. *)

val write_bid : path:string -> Bid_table.t -> unit
(** Pack a BID table.  Blocks keep their creation order (the block
    structure, not a global sort, is the semantic unit); facts are laid
    out contiguously per block and the sidecar still bounds fact-suffix
    mass, so the tail mass of the blocks from block [b] on is
    [tail_mass (first_fact b)]. *)

(** {1 Loading} *)

val load : string -> t
(** mmap the pack and validate magic, version, kind, stored length and
    whole-file checksum, in that order.  O(file bytes) for the checksum
    and O(1) afterwards: no fact is decoded until asked for.
    @raise Errors.Error with [Errors.Store] locating the rejected
    region on any validation failure. *)

val load_r : string -> (t, Errors.t) result

(** {1 Inspection} *)

val kind : t -> kind
val path : t -> string

val size : t -> int
(** Number of facts. *)

val num_blocks : t -> int
(** Number of BID blocks; 0 for TI packs. *)

val byte_size : t -> int
val checksum_hex : t -> string
(** The validated whole-file checksum, as lowercase hex — the token the
    serving layer stores alongside a warm cache to revalidate it. *)

(** {1 Random access (lazy decode)} *)

val fact : t -> int -> Fact.t
val prob : t -> int -> Rational.t
val entry : t -> int -> Fact.t * Rational.t
(** @raise Invalid_argument outside [\[0, size)].
    @raise Errors.Error on structurally damaged entries (possible only
    if the pack was forged with a matching checksum). *)

val tail_mass : t -> int -> float
(** O(1) sidecar lookup: an upper bound on the exact rational mass of
    facts [n, n+1, ...]; antitone in [n], exactly [0.] at [n >= size].
    Indices above [size] are clamped. *)

(** {1 Truncation} *)

val truncation_for_mass : t -> eps:float -> int * float
(** Least [n] with [tail_mass n <= eps] and that bound, by binary search
    over the sidecar — O(log n), no facts decoded, no scan.
    @raise Invalid_argument if [eps < 0]. *)

val truncate : t -> n:int -> Ti_table.t
(** The first [min n size] facts as a finite TI table — the truncation
    prefix of Lemma 4.4.  Only those [n] facts are decoded. *)

val truncate_for_mass : t -> eps:float -> int * Ti_table.t
(** [truncation_for_mass] followed by [truncate]. *)

val to_ti_table : t -> Ti_table.t
(** Decode the whole pack ([Ti] packs). *)

val to_bid_table : t -> Bid_table.t
(** Decode the whole pack ([Bid] packs).
    @raise Invalid_argument on a [Ti] pack (and vice versa). *)

val truncate_blocks : t -> n:int -> Bid_table.t
(** The first [min n num_blocks] blocks as a finite BID table. *)

(** {1 As a fact source} *)

val fact_source : ?rest:Fact_source.t -> t -> Fact_source.t
(** The pack as a countable enumeration with O(1) tail certificates:
    entries decode on demand (and memoize in the source's cache), and
    [tail n] is a sidecar lookup instead of a suffix scan — so
    [Countable_ti.create] on the result certifies convergence without
    touching a single fact.

    [rest] appends an open-world completion tail after the packed
    facts: the combined certificate is
    [tail_mass pack n +. tail rest (max 0 (n - size))], which is how
    [serve --store] combines a pack with a completion policy without
    materializing the table at boot. *)

(** {1 Verification} *)

val verify_against_ti : t -> Ti_table.t -> (unit, string) result
(** Full round-trip check for [pack --verify]: decodes every fact and
    compares rationally against the given table (same facts, identical
    probabilities). *)

val verify_against_bid : t -> Bid_table.t -> (unit, string) result
