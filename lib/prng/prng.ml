(* SplitMix64 (Steele, Lea & Flood, OOPSLA'14).  The mixing constants are
   the published ones; the generator passes BigCrush when used as here. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ?(seed = 0x5DEECE66D) () = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = next_int64 g in
  { state = mix64 s }

let substream g i =
  if i < 0 then invalid_arg "Prng.substream"
  else
    (* [split] advances the parent by one gamma step and double-mixes the
       resulting state ([mix64] of [next_int64]'s already-mixed output);
       jumping the parent i+1 gamma steps in one multiplication gives
       exactly the generator the (i+1)-th successive [split] would return,
       in O(1) and without advancing [g].  Distinct indices give
       decorrelated streams for the same reason distinct splits do. *)
    {
      state =
        mix64
          (mix64
             (Int64.add g.state
                (Int64.mul (Int64.of_int (i + 1)) golden_gamma)));
    }

let bits30 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 34)

let int g n =
  if n <= 0 then invalid_arg "Prng.int"
  else if n = 1 then 0
  else begin
    (* Rejection sampling on 61 random bits for exact uniformity (61 so
       the bound stays a positive OCaml int on 64-bit platforms). *)
    let bound = 1 lsl 61 in
    if n > bound then invalid_arg "Prng.int: bound too large"
    else begin
      let limit = bound - (bound mod n) in
      let rec go () =
        let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 3) in
        if v < limit then v mod n else go ()
      in
      go ()
    end
  end

let float g =
  (* 53 uniform bits scaled into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int v *. 0x1p-53

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then invalid_arg "Prng.bernoulli"
  else float g < p

let bernoulli_rational g p =
  if not (Rational.is_probability p) then invalid_arg "Prng.bernoulli_rational"
  else if Rational.is_zero p then false
  else if Rational.is_one p then true
  else begin
    (* Exact: compare a uniform draw below den with num.  Denominators in
       this project overwhelmingly fit a native int; fall back to a float
       draw (documented approximation) otherwise. *)
    match Bigint.to_int_opt (Rational.den p) with
    | Some d when d > 0 ->
      let n = Bigint.to_int (Rational.num p) in
      int g d < n
    | _ -> float g < Rational.to_float p
  end

let geometric g p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Prng.geometric"
  else if p = 1.0 then 0
  else begin
    (* Inversion: floor(log U / log (1-p)). *)
    let u = 1.0 -. float g (* in (0, 1] *) in
    int_of_float (Float.floor (log u /. log1p (-.p)))
  end

let exponential g rate =
  if not (rate > 0.0) then invalid_arg "Prng.exponential"
  else -.log (1.0 -. float g) /. rate

let uniform_in g lo hi =
  if not (lo <= hi) then invalid_arg "Prng.uniform_in"
  else lo +. ((hi -. lo) *. float g)

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick"
  else a.(int g (Array.length a))

let categorical g w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Prng.categorical";
  let total = Array.fold_left (fun acc x ->
      if x < 0.0 || Float.is_nan x then invalid_arg "Prng.categorical"
      else acc +. x) 0.0 w
  in
  if total <= 0.0 then invalid_arg "Prng.categorical";
  let u = float g *. total in
  let rec go i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. w.(i) in
      if u < acc then i else go (i + 1) acc
    end
  in
  go 0 0.0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm. *)
  let module S = Set.Make (Int) in
  let s = ref S.empty in
  for j = n - k to n - 1 do
    let t = int g (j + 1) in
    s := if S.mem t !s then S.add j !s else S.add t !s
  done;
  S.elements !s
