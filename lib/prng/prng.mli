(** Deterministic, splittable pseudo-random numbers (SplitMix64).

    Implemented from scratch so every sampled experiment in the repository
    is exactly reproducible from a seed, independent of the OCaml stdlib's
    [Random] evolution.  [split] yields an independent stream, which keeps
    parallel samplers (e.g. one per sampled world) decorrelated. *)

type t

val create : ?seed:int -> unit -> t
(** Default seed is a fixed constant: runs are reproducible by default. *)

val copy : t -> t

val split : t -> t
(** A statistically independent generator; the original advances. *)

val substream : t -> int -> t
(** [substream g i] is the [i]-th child stream of [g]: the generator that
    the [(i+1)]-th successive {!split} would return, derived in constant
    time {e without} advancing [g].  Pure in both arguments, so
    [substream g i] is a function of the index — the per-index /
    per-batch generator used by {!Sampler} and the Monte-Carlo engine to
    make draws reproducible and independent of traversal order or domain
    count.  @raise Invalid_argument if [i < 0]. *)

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val bits30 : t -> int
(** 30 uniform bits as a nonnegative [int]. *)

val int : t -> int -> int
(** [int g n] is uniform on [\[0, n)]. Unbiased (rejection sampling).
    @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** Uniform on [\[0, 1)] with 53 random bits. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is true with probability [p].
    @raise Invalid_argument if [p] is outside [\[0,1\]]. *)

val bernoulli_rational : t -> Rational.t -> bool
(** Exact Bernoulli draw for a rational probability [a/b]: draws a uniform
    integer below [b] and compares with [a]; no float rounding at all. *)

val geometric : t -> float -> int
(** [geometric g p] counts failures before the first success
    (support [0, 1, 2, ...]). @raise Invalid_argument unless [0 < p <= 1]. *)

val exponential : t -> float -> float
(** Rate-parameterized. *)

val uniform_in : t -> float -> float -> float

val pick : t -> 'a array -> 'a
(** Uniform element. @raise Invalid_argument on an empty array. *)

val categorical : t -> float array -> int
(** Index distributed proportionally to the given nonnegative weights.
    @raise Invalid_argument if all weights are zero or any is negative. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement g k n] draws [k] distinct values from
    [\[0, n)], in increasing order. @raise Invalid_argument if [k > n]. *)
