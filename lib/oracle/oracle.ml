(* Exhaustive possible-worlds oracle.  See oracle.mli for the contract.

   Everything here is deliberately naive: worlds are materialized lists,
   the FO checker is direct recursion with quantifiers enumerated over an
   explicit domain, probabilities are exact rationals throughout.  The
   value of this module is independence from the engines, not speed —
   the bench (E20) measures exactly how far the naivety carries. *)

module VSet = Set.Make (Value)

let max_worlds = 1 lsl 16

(* ------------------------------------------------------------------ *)
(* Universes *)
(* ------------------------------------------------------------------ *)

type universe = {
  worlds : (Instance.t * Rational.t) list;
  support : Fact.t list; (* sorted, distinct *)
  tail : Rational.t; (* upper bound on P(some truncated-away fact) *)
}

let check_tail tail =
  if Rational.sign tail < 0 then
    invalid_arg "Oracle: negative tail bound";
  Rational.min tail Rational.one

let check_partition worlds =
  let total = Rational.sum (List.map snd worlds) in
  if not (Rational.is_one total) then
    invalid_arg
      (Printf.sprintf "Oracle: world masses sum to %s, not 1"
         (Rational.to_string total))

let support_of_worlds worlds =
  let s =
    List.fold_left
      (fun acc (inst, _) -> Fact.Set.union acc (Instance.to_set inst))
      Fact.Set.empty worlds
  in
  Fact.Set.elements s

let make_universe ?(tail = Rational.zero) worlds =
  if List.length worlds > max_worlds then
    invalid_arg
      (Printf.sprintf "Oracle: %d worlds exceed the %d cap"
         (List.length worlds) max_worlds);
  check_partition worlds;
  { worlds; support = support_of_worlds worlds; tail = check_tail tail }

let of_ti_facts ?(tail = Rational.zero) facts =
  let n = List.length facts in
  if n > 16 then
    invalid_arg (Printf.sprintf "Oracle.of_ti_facts: %d facts (max 16)" n);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f, p) ->
      if Hashtbl.mem seen f then
        invalid_arg
          ("Oracle.of_ti_facts: duplicate fact " ^ Fact.to_string f);
      Hashtbl.add seen f ();
      if not (Rational.is_probability p) then
        invalid_arg
          (Printf.sprintf "Oracle.of_ti_facts: %s has probability %s"
             (Fact.to_string f) (Rational.to_string p)))
    facts;
  let worlds =
    List.fold_left
      (fun acc (f, p) ->
        let q = Rational.compl p in
        List.concat_map
          (fun (inst, m) ->
            let stay =
              if Rational.is_zero q then []
              else [ (inst, Rational.mul m q) ]
            in
            let take =
              if Rational.is_zero p then []
              else [ (Instance.add f inst, Rational.mul m p) ]
            in
            stay @ take)
          acc)
      [ (Instance.empty, Rational.one) ]
      facts
  in
  make_universe ~tail worlds

let of_ti_table ti = of_ti_facts (Ti_table.facts ti)

let rational_of_tail_float what = function
  | None ->
    invalid_arg (Printf.sprintf "Oracle: %s tail certificate is silent" what)
  | Some t ->
    if Float.is_nan t || t = infinity then
      invalid_arg
        (Printf.sprintf "Oracle: %s tail certificate is not finite" what)
    else Rational.of_float_exn t

let of_fact_source src ~n =
  let prefix = Fact_source.prefix src n in
  (* A finite source may end before [n]; the certificate there is exact 0. *)
  let tail =
    rational_of_tail_float (Fact_source.name src)
      (Fact_source.tail_mass src (List.length prefix))
  in
  of_ti_facts ~tail prefix

let of_countable_ti cti ~n = of_fact_source (Countable_ti.source cti) ~n

let of_bid_blocks ?(tail = Rational.zero) blocks =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (bid, alts) ->
      let mass = Rational.sum (List.map snd alts) in
      if Rational.(mass > one) then
        invalid_arg
          (Printf.sprintf "Oracle.of_bid_blocks: block %s has mass %s" bid
             (Rational.to_string mass));
      List.iter
        (fun (f, p) ->
          if Hashtbl.mem seen f then
            invalid_arg
              ("Oracle.of_bid_blocks: repeated fact " ^ Fact.to_string f);
          Hashtbl.add seen f ();
          if not (Rational.is_probability p) then
            invalid_arg
              (Printf.sprintf "Oracle.of_bid_blocks: %s has probability %s"
                 (Fact.to_string f) (Rational.to_string p)))
        alts)
    blocks;
  let worlds =
    List.fold_left
      (fun acc (_bid, alts) ->
        let slack =
          Rational.compl (Rational.sum (List.map snd alts))
        in
        if List.length acc * (List.length alts + 1) > max_worlds then
          invalid_arg "Oracle.of_bid_blocks: world blow-up";
        List.concat_map
          (fun (inst, m) ->
            let none =
              if Rational.is_zero slack then []
              else [ (inst, Rational.mul m slack) ]
            in
            let takes =
              List.filter_map
                (fun (f, p) ->
                  if Rational.is_zero p then None
                  else Some (Instance.add f inst, Rational.mul m p))
                alts
            in
            none @ takes)
          acc)
      [ (Instance.empty, Rational.one) ]
      blocks
  in
  make_universe ~tail worlds

let of_bid_table bid =
  of_bid_blocks
    (List.map
       (fun (b : Bid_table.block) -> (b.Bid_table.block_id, b.alternatives))
       (Bid_table.blocks bid))

let of_countable_bid cb ~n_blocks ~max_alts =
  let blocks =
    List.init n_blocks (fun i -> (i, Countable_bid.nth_block cb i))
    |> List.filter_map (fun (i, b) -> Option.map (fun b -> (i, b)) b)
  in
  let tail =
    rational_of_tail_float (Countable_bid.name cb)
      (Countable_bid.tail_mass cb (List.length blocks))
  in
  let blocks =
    List.map
      (fun (i, b) ->
        let alts = Countable_bid.alternatives ~limit:(max_alts + 1) b in
        if List.length alts > max_alts then
          invalid_arg
            (Printf.sprintf
               "Oracle.of_countable_bid: block %d exceeds %d alternatives" i
               max_alts);
        (Countable_bid.block_id b, alts))
      blocks
  in
  of_bid_blocks ~tail blocks

let of_worlds ?(tail = Rational.zero) ws =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (inst, m) ->
      if Rational.sign m < 0 then
        invalid_arg "Oracle.of_worlds: negative mass";
      match Hashtbl.find_opt tbl inst with
      | Some r -> r := Rational.add !r m
      | None ->
        Hashtbl.add tbl inst (ref m);
        order := inst :: !order)
    ws;
  let worlds =
    List.rev_map (fun inst -> (inst, !(Hashtbl.find tbl inst))) !order
  in
  make_universe ~tail worlds

let of_completion c ~n =
  let orig = Finite_pdb.worlds (Completion.original c) in
  let news = of_fact_source (Completion.new_facts c) ~n in
  let worlds =
    List.concat_map
      (fun (d, p) ->
        List.map
          (fun (cw, q) -> (Instance.disjoint_union d cw, Rational.mul p q))
          news.worlds)
      orig
  in
  make_universe ~tail:news.tail worlds

(* ------------------------------------------------------------------ *)
(* Inspection *)
(* ------------------------------------------------------------------ *)

let worlds u = u.worlds
let num_worlds u = List.length u.worlds
let support u = u.support
let tail_bound u = u.tail
let mass u = Rational.sum (List.map snd u.worlds)

let condition u event =
  if not (Rational.is_zero u.tail) then
    invalid_arg "Oracle.condition: universe has a nonzero tail";
  let kept = List.filter (fun (inst, _) -> event inst) u.worlds in
  let total = Rational.sum (List.map snd kept) in
  if Rational.is_zero total then
    invalid_arg "Oracle.condition: event has probability zero";
  make_universe
    (List.map (fun (inst, m) -> (inst, Rational.div m total)) kept)

(* ------------------------------------------------------------------ *)
(* The independent FO model checker *)
(* ------------------------------------------------------------------ *)

type semantics = Truncated | Limit

let term_value env = function
  | Fo.Const v -> v
  | Fo.Var x -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> invalid_arg ("Oracle.holds: unbound variable " ^ x))

let rec holds_env domain inst env (phi : Fo.t) =
  match phi with
  | Fo.True -> true
  | Fo.False -> false
  | Fo.Atom (r, ts) ->
    Instance.mem (Fact.make r (List.map (term_value env) ts)) inst
  | Fo.Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
  | Fo.Cmp (op, a, b) ->
    let c = Value.compare (term_value env a) (term_value env b) in
    (match op with
    | Fo.Lt -> c < 0
    | Fo.Le -> c <= 0
    | Fo.Gt -> c > 0
    | Fo.Ge -> c >= 0)
  | Fo.Not f -> not (holds_env domain inst env f)
  | Fo.And (f, g) -> holds_env domain inst env f && holds_env domain inst env g
  | Fo.Or (f, g) -> holds_env domain inst env f || holds_env domain inst env g
  | Fo.Implies (f, g) ->
    (not (holds_env domain inst env f)) || holds_env domain inst env g
  | Fo.Exists (x, f) ->
    List.exists (fun v -> holds_env domain inst ((x, v) :: env) f) domain
  | Fo.Forall (x, f) ->
    List.for_all (fun v -> holds_env domain inst ((x, v) :: env) f) domain

let holds ~domain inst phi =
  (match Fo.free_vars phi with
  | [] -> ()
  | fvs ->
    invalid_arg
      ("Oracle.holds: free variables " ^ String.concat ", " fvs));
  holds_env domain inst [] phi

(* Fresh inert padding values: a sort/prefix no generated table or query
   uses; bump the attempt counter on the (theoretical) collision. *)
let rec fresh_pads ~avoid ~attempt k =
  let pads =
    List.init k (fun i ->
        Value.Str (Printf.sprintf "\x01oracle.pad.%d.%d" attempt i))
  in
  if List.exists (fun v -> VSet.mem v avoid) pads then
    fresh_pads ~avoid ~attempt:(attempt + 1) k
  else pads

let eval_domain u sem phi =
  let base =
    List.fold_left
      (fun acc f -> List.fold_left (fun a v -> VSet.add v a) acc (Fact.args f))
      VSet.empty u.support
  in
  let base =
    List.fold_left (fun a v -> VSet.add v a) base (Fo.constants phi)
  in
  match sem with
  | Truncated -> VSet.elements base
  | Limit ->
    VSet.elements base
    @ fresh_pads ~avoid:base ~attempt:0 (Fo.quantifier_rank phi)

let query_prob ?(semantics = Truncated) u phi =
  let domain = eval_domain u semantics phi in
  List.fold_left
    (fun acc (inst, m) ->
      if holds ~domain inst phi then Rational.add acc m else acc)
    Rational.zero u.worlds

let marginal u f =
  List.fold_left
    (fun acc (inst, m) ->
      if Instance.mem f inst then Rational.add acc m else acc)
    Rational.zero u.worlds

let expected_size u =
  List.fold_left
    (fun acc (inst, m) ->
      Rational.add acc (Rational.mul m (Rational.of_int (Instance.size inst))))
    Rational.zero u.worlds

let size_distribution u =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (inst, m) ->
      let k = Instance.size inst in
      match Hashtbl.find_opt tbl k with
      | Some r -> r := Rational.add !r m
      | None -> Hashtbl.add tbl k (ref m))
    u.worlds;
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.filter (fun (_, m) -> not (Rational.is_zero m))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Tail enclosures *)
(* ------------------------------------------------------------------ *)

type enclosure = {
  cond : Rational.t;
  omega_lo : Rational.t;
  lo : Rational.t;
  hi : Rational.t;
}

let enclosure ?(semantics = Limit) u phi =
  let cond = query_prob ~semantics u phi in
  let omega_lo = Rational.max Rational.zero (Rational.compl u.tail) in
  let lo = Rational.mul cond omega_lo in
  let hi = Rational.min Rational.one (Rational.add lo (Rational.compl omega_lo)) in
  { cond; omega_lo; lo; hi }

let width e = Rational.sub e.hi e.lo
let exact e = if Rational.equal e.lo e.hi then Some e.cond else None

(* ------------------------------------------------------------------ *)
(* Float comparisons *)
(* ------------------------------------------------------------------ *)

let float_le_rational f x =
  if Float.is_nan f then false
  else if f = neg_infinity then true
  else if f = infinity then false
  else Rational.(of_float_exn f <= x)

let rational_le_float x f =
  if Float.is_nan f then false
  else if f = infinity then true
  else if f = neg_infinity then false
  else Rational.(x <= of_float_exn f)

let interval_contains ~lo ~hi x = float_le_rational lo x && rational_le_float x hi

let interval_overlaps ~lo ~hi e =
  float_le_rational lo e.hi && rational_le_float e.lo hi
