(** Reproducible random instances for the differential fuzzer: schemas,
    TI / BID tables with exact rational probabilities, open-world
    policies, and Boolean FO queries of bounded quantifier rank.

    Everything is drawn from a {!Prng.t}, so a case is a pure function of
    the seed — the fuzzer's bit-reproducibility rests on this module
    never consulting any other source of randomness. *)

type config = {
  max_relations : int;  (** relations in a random schema (default 3) *)
  max_arity : int;  (** default 2 *)
  max_facts : int;  (** facts in a random TI table (default 6) *)
  max_blocks : int;  (** blocks in a random BID table (default 3) *)
  max_alts : int;  (** alternatives per block (default 3) *)
  max_rank : int;  (** quantifier rank of random queries (default 3) *)
  max_connectives : int;  (** size budget of random queries (default 7) *)
  allow_negation : bool;  (** default true *)
  allow_cmp : bool;
      (** default false: [Cmp] breaks inert-value interchangeability, so
          cross-truncation interval checks only apply without it *)
  denominator : int;  (** probabilities are [k/denominator] (default 16) *)
}

val default : config

val value_pool : Value.t list
(** The constants tables and queries draw from (small ints and
    strings). *)

val schema : config -> Prng.t -> Schema.t
(** 1 to [max_relations] relations named [R], [S], [T], ... with random
    arities in [1, max_arity]. *)

val ti_facts : config -> Prng.t -> Schema.t -> (Fact.t * Rational.t) list
(** Distinct facts over the schema with probabilities
    [k/denominator], [1 <= k <= denominator]. *)

val ti_table : config -> Prng.t -> Schema.t -> Ti_table.t

val bid_blocks :
  config -> Prng.t -> Schema.t -> (string * (Fact.t * Rational.t) list) list
(** Distinct facts across blocks; each block's mass is at most 1, with
    nonzero slack left most of the time. *)

val bid_table : config -> Prng.t -> Schema.t -> Bid_table.t

val mutations :
  config ->
  Prng.t ->
  Schema.t ->
  table:Ti_table.t ->
  len:int ->
  Delta_eval.delta list
(** A seed-pure random update sequence of length [len] against [table]:
    inserts (biased toward occasionally-fresh constants, so the
    incremental engine's delta-join path fires), deletes of present and
    absent facts, reweights including to zero, recognized no-ops
    (reweight to the current marginal), and inverse pairs (a delta
    immediately followed by the delta that undoes it).  Deltas later in
    the sequence are drawn against the table state produced by the
    earlier ones. *)

type policy =
  | Lambda of Rational.t * int
      (** [openpdb_lambda]: [k] fresh facts of probability [p < 1] *)
  | Geometric of Rational.t * Rational.t
      (** [geometric_policy first ratio]: infinitely many new facts *)

val policy_relation : string
(** The reserved relation name ("N") open-world policies enumerate new
    facts over; generated schemas never use it. *)

val policy : config -> Prng.t -> policy
val policy_to_string : policy -> string
val policy_of_string : string -> policy
(** Inverse of {!policy_to_string}.
    @raise Invalid_argument on malformed input. *)

val apply_policy : policy -> Ti_table.t -> Completion.t

val sentence : config -> Prng.t -> Schema.t -> Fo.t
(** A closed Boolean formula over the schema (atoms, equality, optional
    comparisons, Boolean connectives, quantifiers up to [max_rank]). *)

val positive_sentence : config -> Prng.t -> Schema.t -> Fo.t
(** Negation- and implication-free — monotone in the facts, so the
    probability-monotonicity law applies. *)
