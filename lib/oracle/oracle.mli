(** Exact enumeration oracle: ground truth by exhaustive possible-worlds
    summation, with no floats anywhere on the path.

    Every evaluation engine in this repository (exact BDD/WMC, safe
    plans, the truncation approximator, the anytime session, the
    Monte-Carlo estimator, the robust supervisor) shares substantial
    machinery — lineage construction, truncation accounting, the
    classical {!Query_eval} core — so cross-checking them against each
    other cannot expose a systematic bug in that shared substrate.  This
    module is the independent backstop: given a {e truncated prefix} of a
    countable TI / BID / completion space, it enumerates {e all} worlds
    of the prefix, decides the query on each world with its own tiny FO
    model checker (no lineage, no BDDs, no {!Fo_eval}), and sums exact
    {!Rational} masses.  The infinite tail is handled by an exact
    rational enclosure: if [alpha] bounds the mass of the truncated-away
    facts (Lemma 4.3's convergent series), then the probability that any
    tail fact occurs is at most [alpha] (union bound), so

    [cond * (1 - alpha)  <=  P(Q)  <=  cond * (1 - alpha) + alpha]

    where [cond] is the exact prefix-conditional probability computed by
    enumeration — the same shape as Proposition 6.1's truncation
    argument, but entirely in exact arithmetic.  For finite spaces
    [alpha = 0] and the enclosure collapses to the exact answer. *)

(** {1 Universes} *)

type universe
(** A finite, explicitly enumerated probability space of worlds (the
    truncated prefix), plus an exact rational upper bound on the
    probability that some truncated-away fact occurs.  World masses
    always sum to exactly 1 (checked at construction). *)

val max_worlds : int
(** Hard cap on the number of enumerated worlds ([2^16]); constructors
    raise [Invalid_argument] beyond it. *)

val of_ti_facts :
  ?tail:Rational.t -> (Fact.t * Rational.t) list -> universe
(** Tuple-independent universe on the given facts: all [2^n] subsets,
    [P(D) = prod_{f in D} p_f * prod_{f not in D} (1 - p_f)].  [tail]
    (default 0) bounds the mass of truncated-away facts.
    @raise Invalid_argument on duplicate facts, probabilities outside
    [\[0,1\]], a negative tail, or more than {!max_worlds} worlds. *)

val of_ti_table : Ti_table.t -> universe
(** Finite table: tail 0. *)

val of_fact_source : Fact_source.t -> n:int -> universe
(** First [n] enumerated facts of the source; the tail bound is the
    source's certificate at [n], converted exactly from its float
    (dyadic) value.  @raise Invalid_argument if the certificate cannot
    answer at [n]. *)

val of_countable_ti : Countable_ti.t -> n:int -> universe

val of_bid_blocks :
  ?tail:Rational.t -> (string * (Fact.t * Rational.t) list) list -> universe
(** Block-independent-disjoint universe: each block contributes one of
    its alternatives or no fact (slack [1 - sum p]); blocks independent.
    @raise Invalid_argument on a repeated fact, block mass above 1, or
    world blow-up. *)

val of_bid_table : Bid_table.t -> universe

val of_countable_bid :
  Countable_bid.t -> n_blocks:int -> max_alts:int -> universe
(** First [n_blocks] blocks, each of which must have at most [max_alts]
    alternatives (so no within-block mass is silently dropped);
    the tail bound is the block-mass certificate at [n_blocks].
    @raise Invalid_argument if a block is larger or the certificate is
    silent. *)

val of_completion : Completion.t -> n:int -> universe
(** Product of the original finite PDB's worlds with the TI universe on
    the first [n] new facts; the tail bound is the new-fact source's
    certificate at [n]. *)

val of_worlds :
  ?tail:Rational.t -> (Instance.t * Rational.t) list -> universe
(** An explicit distribution (duplicates merged).
    @raise Invalid_argument unless the masses are nonnegative and sum to
    exactly 1. *)

(** {1 Inspection} *)

val worlds : universe -> (Instance.t * Rational.t) list
val num_worlds : universe -> int
val support : universe -> Fact.t list
(** Facts occurring in some world, sorted. *)

val tail_bound : universe -> Rational.t
val mass : universe -> Rational.t
(** Exact sum of world masses — always 1 (the Lemma 4.3 partition
    identity); exposed so tests can watch it hold. *)

val condition : universe -> (Instance.t -> bool) -> universe
(** Conditional distribution given the event.  Only for fully finite
    universes (tail 0), where conditioning is exact.
    @raise Invalid_argument on a zero-probability event or nonzero
    tail. *)

(** {1 Query evaluation} *)

type semantics =
  | Truncated
      (** quantifiers range over [adom(support) ∪ constants(phi)] — the
          shared domain of the closed-world engines on the same
          truncation ({!Query_eval}) *)
  | Limit
      (** the truncated domain padded with [quantifier_rank phi] fresh
          inert values — the r-equivalence device of Proposition 6.1
          under which a prefix-supported world keeps its truth value on
          every deeper truncation; the semantics targeted by the
          interval-reporting engines *)

val holds : domain:Value.t list -> Instance.t -> Fo.t -> bool
(** The oracle's own FO model checker: direct recursion on the formula,
    quantifiers enumerated over [domain].  Independent of
    {!Fo_eval} by construction.
    @raise Invalid_argument on free variables. *)

val eval_domain : universe -> semantics -> Fo.t -> Value.t list

val query_prob : ?semantics:semantics -> universe -> Fo.t -> Rational.t
(** Exact [P(Q | no truncated-away fact occurs)]: the sum of the masses
    of the worlds satisfying [Q].  Default semantics: [Truncated]. *)

val marginal : universe -> Fact.t -> Rational.t
(** [P(E_f)] by summation. *)

val expected_size : universe -> Rational.t
(** [E(S_D) = sum_D P(D) * ||D||] by summation — equals [sum_f p_f]
    exactly on TI universes (Corollary 4.7). *)

val size_distribution : universe -> (int * Rational.t) list
(** [(k, P(S_D = k))], ascending, nonzero entries. *)

(** {1 Tail enclosures} *)

type enclosure = {
  cond : Rational.t;  (** exact prefix-conditional probability *)
  omega_lo : Rational.t;
      (** exact lower bound on [P(no tail fact)]: [max(0, 1 - tail)] *)
  lo : Rational.t;  (** [cond * omega_lo] *)
  hi : Rational.t;  (** [min 1 (lo + (1 - omega_lo))] *)
}
(** [\[lo, hi\]] encloses the true [P(Q)] of the untruncated space
    whenever the query's truth on a tail-free world is its limit truth —
    i.e. under [Limit] semantics for [Cmp]-free queries, or any
    semantics when the tail is 0 (then [lo = cond = hi]). *)

val enclosure : ?semantics:semantics -> universe -> Fo.t -> enclosure
(** Default semantics: [Limit]. *)

val width : enclosure -> Rational.t
(** [hi - lo] — equal to [min 1 tail], independently of the query, so it
    shrinks monotonically with the truncation depth (the
    interval-narrowing law the fuzzer asserts). *)

val exact : enclosure -> Rational.t option
(** [Some cond] when the enclosure is a point (tail 0). *)

(** {1 Comparing against engine-reported floats}

    Engine results are floats or outward-rounded float intervals; both
    convert {e exactly} to rationals (every finite float is dyadic), so
    these checks are themselves exact. *)

val float_le_rational : float -> Rational.t -> bool
val rational_le_float : Rational.t -> float -> bool
(** Infinities compare as expected; NaN is never [<=]. *)

val interval_contains : lo:float -> hi:float -> Rational.t -> bool
(** Is the exact value inside the reported interval? *)

val interval_overlaps : lo:float -> hi:float -> enclosure -> bool
(** Does the reported interval intersect the oracle enclosure?  Both
    enclose the same true value, so an empty intersection convicts one
    of them. *)
