(** Cross-engine differential fuzzing against the enumeration oracle.

    Each case draws a random instance and query ({!Oracle_gen}), builds
    the exact {!Oracle} universe, and runs the enabled engines against
    it:

    - the exact closed-world path ({!Query_eval} BDD, enumeration,
      interval carrier) must agree with the oracle {e exactly} —
      rational equality, no tolerance;
    - the lifted safe-plan engine, on every query it accepts, must agree
      with both the oracle and the compiled BDD by rational equality
      (checks [lifted.oracle] / [lifted.bdd]);
    - every reported interval ({!Approx_eval} / {!Completion} bounds,
      {!Anytime} bounds, {!Robust_eval} enclosures) must intersect the
      oracle's exact tail enclosure of the same limit probability — two
      sound intervals around one value cannot be disjoint;
    - Monte-Carlo intervals ({!Mc_eval}) are checked the same way at a
      Bonferroni-corrected confidence, so the whole run has a bounded
      false-alarm rate and a fixed seed makes it deterministic;
    - the batch engine ({!Batch_eval}), on an adversarial batch built
      from the case's query — the query twice, an alpha-renamed copy
      and the negation: member 0 must match the oracle exactly, the
      repeat must route as a duplicate, the renamed copy must agree by
      rational equality, every member must equal the one-at-a-time
      {!Query_eval} loop under the batch's padding (check [batch.map]),
      and the whole answer vector must be bit-identical at every
      [domains] count (check [batch.domains]);
    - metamorphic laws that need no oracle at all: complement
      [P(not Q) = 1 - P(Q)], monotonicity of positive queries under
      fact-probability increase, the completion condition (CC) of
      Definition 5.1, BID within-block exclusivity, Corollary 4.7
      expected size, and truncation-monotone narrowing of the oracle
      enclosure.

    A failing case is shrunk (fewer facts, structurally smaller query)
    while the same check keeps failing, and can be serialized to a
    corpus file that {!of_lines} reads back — the regression-replay
    format under [test/corpus/]. *)

type engine = Exact | Lifted | Approx | Anytime | Mc | Robust | Batch | Delta

val all_engines : engine list
val engine_to_string : engine -> string

val engine_of_string : string -> engine option
(** Case-insensitive. *)

val engines_of_string : string -> (engine list, string) result
(** Comma-separated list, e.g. ["exact,mc"]; ["all"] means every
    engine. *)

type kind =
  | K_ti  (** finite tuple-independent table *)
  | K_open  (** finite prefix + infinite geometric tail (countable TI) *)
  | K_bid  (** finite block-independent-disjoint table *)
  | K_completion  (** finite original completed by a policy (Section 5) *)

val kind_to_string : kind -> string

type case = {
  id : int;
  kind : kind;
  table : Ti_table.t;
      (** the TI facts: the whole instance ([K_ti]), the enumerated
          prefix ([K_open]), or the original PDB ([K_completion]);
          empty for [K_bid] *)
  bid : Bid_table.t option;  (** [K_bid] only *)
  policy : Oracle_gen.policy option;
      (** the completing policy ([K_completion]) or the geometric tail
          ([K_open], always [Geometric]) *)
  query : Fo.t;
  deltas : Delta_eval.delta list;
      (** a random mutation sequence (checks [mutation.*]); nonempty on
          [K_ti] cases, replayed from [delta] corpus lines *)
}

val generate : Oracle_gen.config -> seed:int -> id:int -> case
(** Case [id] of the stream for [seed] — a pure function of
    [(config, seed, id)], independent of any other case. *)

type failure = {
  f_case : case;
  check : string;
      (** dotted check name, e.g. ["approx.bounds"], ["law.complement"];
          the prefix identifies the engine *)
  detail : string;  (** expected-vs-got, single line *)
}

val engine_of_check : string -> engine
(** Which engine a check name exercises (shrinking re-runs only that
    engine). *)

val run_case :
  ?engines:engine list ->
  ?mc_samples:int ->
  ?mc_confidence:float ->
  case ->
  int * failure list
(** Run all enabled checks on one case; returns [(checks_run,
    failures)].  An engine that raises an unexpected exception fails its
    check with the exception text.  Oracle universes that would exceed
    {!Oracle.max_worlds} cause the affected checks to be skipped (not
    counted). *)

val shrink : ?max_steps:int -> failure -> failure
(** Greedily minimize the failing case: drop facts / blocks /
    alternatives and replace the query by structurally smaller sentences
    (subformulas, quantifier instantiations) while the same check still
    fails.  Deterministic. *)

type report = {
  cases_run : int;
  checks_run : int;
  engines_run : engine list;
  mc_confidence : float;
      (** the Bonferroni-corrected per-check confidence used for
          Monte-Carlo containment *)
  failures : failure list;  (** shrunk, in case order *)
  corpus_written : string list;  (** paths, when [corpus_dir] was given *)
}

val run :
  ?config:Oracle_gen.config ->
  ?engines:engine list ->
  ?mc_samples:int ->
  ?corpus_dir:string ->
  seed:int ->
  cases:int ->
  unit ->
  report
(** The fuzzing loop: cases [0 .. cases-1] of the stream for [seed].
    Expensive engines rotate across cases (exact and truncation paths
    run on every applicable case; anytime, Monte-Carlo and the robust
    supervisor on strided subsets).  Failures are shrunk, and — when
    [corpus_dir] is given — written there as replayable [.case] files.
    Bit-reproducible for fixed arguments. *)

(** {1 Corpus serialization} *)

type corpus_case = {
  c_case : case;
  c_check : string;  (** the check the case was minimized against *)
  c_detail : string;  (** the failure detail at capture time *)
}

val to_lines : seed:int -> corpus_case -> string list
val of_lines : ?file:string -> string list -> corpus_case
(** Inverse of {!to_lines}; blank lines and [#] comments ignored.
    @raise Invalid_argument on malformed input, citing [file] and the
    line. *)

val save : dir:string -> seed:int -> failure -> string
(** Write a shrunk failure as [<dir>/<check>-<seed>-<id>.case]; returns
    the path. *)

val load : string -> corpus_case
(** Read a [.case] file. *)
