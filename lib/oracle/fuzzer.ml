(* Differential fuzzing of every engine against the enumeration oracle.
   See fuzzer.mli for the contract. *)

module VSet = Set.Make (Value)

(* ------------------------------------------------------------------ *)
(* Engines *)
(* ------------------------------------------------------------------ *)

type engine = Exact | Lifted | Approx | Anytime | Mc | Robust | Batch | Delta

let all_engines = [ Exact; Lifted; Approx; Anytime; Mc; Robust; Batch; Delta ]

let engine_to_string = function
  | Exact -> "exact"
  | Lifted -> "lifted"
  | Approx -> "approx"
  | Anytime -> "anytime"
  | Mc -> "mc"
  | Robust -> "robust"
  | Batch -> "batch"
  | Delta -> "delta"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "exact" -> Some Exact
  | "lifted" -> Some Lifted
  | "approx" -> Some Approx
  | "anytime" -> Some Anytime
  | "mc" -> Some Mc
  | "robust" -> Some Robust
  | "batch" -> Some Batch
  | "delta" -> Some Delta
  | _ -> None

let engines_of_string s =
  if String.lowercase_ascii (String.trim s) = "all" then Ok all_engines
  else
    let parts =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    if parts = [] then Error "empty engine list"
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match engine_of_string p with
          | Some e -> go (if List.mem e acc then acc else e :: acc) rest
          | None ->
            Error
              (Printf.sprintf
                 "unknown engine %S (expected \
                  exact|lifted|approx|anytime|mc|robust|batch|delta or all)"
                 p))
      in
      go [] parts

(* The dotted prefix of a check name says which engine it exercises;
   oracle self-laws and metamorphic laws ride on the exact engine. *)
let engine_of_check name =
  let prefix =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  match prefix with
  | "lifted" -> Lifted
  | "approx" | "completion" -> Approx
  | "anytime" -> Anytime
  | "mc" -> Mc
  | "robust" -> Robust
  | "batch" -> Batch
  | "mutation" | "delta" -> Delta
  | _ -> Exact

(* ------------------------------------------------------------------ *)
(* Cases *)
(* ------------------------------------------------------------------ *)

type kind = K_ti | K_open | K_bid | K_completion

let kind_to_string = function
  | K_ti -> "ti"
  | K_open -> "open"
  | K_bid -> "bid"
  | K_completion -> "completion"

let kind_of_string = function
  | "ti" -> Some K_ti
  | "open" -> Some K_open
  | "bid" -> Some K_bid
  | "completion" -> Some K_completion
  | _ -> None

type case = {
  id : int;
  kind : kind;
  table : Ti_table.t;
  bid : Bid_table.t option;
  policy : Oracle_gen.policy option;
  query : Fo.t;
  deltas : Delta_eval.delta list;  (* mutation sequence; K_ti cases *)
}

let n_atom_sentence =
  Fo.Exists ("w", Fo.Atom (Oracle_gen.policy_relation, [ Fo.Var "w" ]))

let generate cfg ~seed ~id =
  let g = Prng.substream (Prng.create ~seed ()) id in
  let sch = Oracle_gen.schema cfg g in
  let kind =
    match id mod 4 with
    | 0 -> K_ti
    | 1 -> K_open
    | 2 -> K_completion
    | _ -> K_bid
  in
  let table =
    match kind with
    | K_bid -> Ti_table.create []
    | _ -> Oracle_gen.ti_table cfg g sch
  in
  let bid =
    match kind with K_bid -> Some (Oracle_gen.bid_table cfg g sch) | _ -> None
  in
  let policy =
    match kind with
    | K_open ->
      (* Always an infinite geometric tail: the scenario that exercises
         the tail enclosures. *)
      Some
        (Oracle_gen.Geometric
           ( Rational.of_ints
               (1 + Prng.int g (cfg.Oracle_gen.denominator / 2))
               cfg.Oracle_gen.denominator,
             Rational.of_ints (1 + Prng.int g 2) 4 ))
    | K_completion -> Some (Oracle_gen.policy cfg g)
    | K_ti | K_bid -> None
  in
  let query =
    (* Positive sentences half the time on plain TI cases, so the
       monotonicity law fires often. *)
    let phi =
      if kind = K_ti && Prng.bool g then Oracle_gen.positive_sentence cfg g sch
      else Oracle_gen.sentence cfg g sch
    in
    match kind with
    | (K_open | K_completion) when Prng.int g 2 = 0 ->
      (* Half the open-world queries mention the policy relation, so the
         tail actually matters to the answer. *)
      if Prng.bool g then Fo.Or (phi, n_atom_sentence)
      else Fo.And (phi, n_atom_sentence)
    | _ -> phi
  in
  let deltas =
    (* Mutation sequences ride on the plain TI cases, where incremental
       vs from-scratch is decidable by exact rational equality. *)
    match kind with
    | K_ti ->
      Oracle_gen.mutations cfg g sch ~table ~len:(4 + Prng.int g 9)
    | _ -> []
  in
  { id; kind; table; bid; policy; query; deltas }

(* ------------------------------------------------------------------ *)
(* Sources and spaces derived from a case *)
(* ------------------------------------------------------------------ *)

let open_source case =
  match case.policy with
  | Some (Oracle_gen.Geometric (first, ratio)) ->
    Fact_source.append_finite (Ti_table.facts case.table)
      (Fact_source.geometric ~first ~ratio
         ~facts:(fun i -> Fact.make Oracle_gen.policy_relation [ Value.Int i ])
         ())
  | _ -> invalid_arg "Fuzzer: open case needs a geometric policy"

let completion_of case =
  match case.policy with
  | Some pol -> Oracle_gen.apply_policy pol case.table
  | None -> invalid_arg "Fuzzer: completion case needs a policy"

let bid_of case =
  match case.bid with
  | Some b -> b
  | None -> invalid_arg "Fuzzer: bid case without a block table"

(* ------------------------------------------------------------------ *)
(* Failures and the check harness *)
(* ------------------------------------------------------------------ *)

type failure = { f_case : case; check : string; detail : string }

let is_blowup msg =
  let has needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  has "exceed" || has "blow-up" || has "(max 16)"

let rs = Rational.to_string
let ivs iv = Printf.sprintf "[%.17g, %.17g]" (Interval.lo iv) (Interval.hi iv)

let encs (e : Oracle.enclosure) =
  Printf.sprintf "[%s, %s]" (rs e.Oracle.lo) (rs e.Oracle.hi)

let contains_iv iv x =
  Oracle.interval_contains ~lo:(Interval.lo iv) ~hi:(Interval.hi iv) x

let overlaps_iv iv e =
  Oracle.interval_overlaps ~lo:(Interval.lo iv) ~hi:(Interval.hi iv) e

(* The fuzzer's own inert padding (distinct namespace from the engines'
   and the oracle's), for driving Query_eval's [extra_domain] directly. *)
let fuzz_pads table phi =
  let rank = Fo.quantifier_rank phi in
  if rank = 0 || Fo.has_cmp phi then []
  else begin
    let avoid =
      VSet.of_list
        (Fo.constants phi
        @ List.concat_map Fact.args (Ti_table.support table))
    in
    let rec choose attempt =
      let cand =
        List.init rank (fun i ->
            Value.Str (Printf.sprintf "\x02fuzz.pad.%d.%d" attempt i))
      in
      if List.exists (fun v -> VSet.mem v avoid) cand then choose (attempt + 1)
      else cand
    in
    choose 0
  end

let sem_for phi : Oracle.semantics =
  if Fo.has_cmp phi then Oracle.Truncated else Oracle.Limit

let ground_atom f =
  Fo.Atom (Fact.rel f, List.map (fun v -> Fo.Const v) (Fact.args f))

let eps_coarse = 0.25
let eps_fine = 0.05

let run_case ?(engines = all_engines) ?(mc_samples = 1500)
    ?(mc_confidence = 0.999) case =
  let checks = ref 0 and fails = ref [] in
  let phi = case.query in
  let cmp_free = not (Fo.has_cmp phi) in
  let check name f =
    if List.mem (engine_of_check name) engines then begin
      incr checks;
      match f () with
      | None -> ()
      | Some detail -> fails := { f_case = case; check = name; detail } :: !fails
      | exception Invalid_argument m when is_blowup m -> decr checks
      | exception e ->
        fails :=
          { f_case = case; check = name; detail = "raised " ^ Printexc.to_string e }
          :: !fails
    end
  in
  let mc_seed = (1_000_003 * case.id) + 77 in
  let expect_eq ~what expected got =
    if Rational.equal expected got then None
    else Some (Printf.sprintf "%s: expected %s, got %s" what (rs expected) (rs got))
  in
  (match case.kind with
  | K_ti ->
    let u = lazy (Oracle.of_ti_table case.table) in
    let truth = lazy (Oracle.query_prob ~semantics:Truncated (Lazy.force u) phi) in
    let truth_lim =
      lazy (Oracle.query_prob ~semantics:(sem_for phi) (Lazy.force u) phi)
    in
    check "exact.bdd" (fun () ->
        expect_eq ~what:"P(Q) on the truncation" (Lazy.force truth)
          (Query_eval.boolean case.table phi));
    check "exact.enum" (fun () ->
        expect_eq ~what:"enumeration engine" (Lazy.force truth)
          (Query_eval.boolean_enum case.table phi));
    check "lifted.oracle" (fun () ->
        (* Every safe query: the lifted plan vs the exact world sum. *)
        match Query_eval.boolean_safe case.table phi with
        | None -> None
        | Some p -> expect_eq ~what:"lifted plan vs oracle" (Lazy.force truth) p);
    check "lifted.bdd" (fun () ->
        (* ... and vs the compiled lineage, by rational equality. *)
        match Query_eval.boolean_safe case.table phi with
        | None -> None
        | Some p ->
          expect_eq ~what:"lifted plan vs BDD"
            (Query_eval.boolean_bdd_rational case.table phi)
            p);
    check "exact.interval" (fun () ->
        let iv = Query_eval.boolean_bdd_interval case.table phi in
        if contains_iv iv (Lazy.force truth) then None
        else
          Some
            (Printf.sprintf "interval carrier %s misses exact %s" (ivs iv)
               (rs (Lazy.force truth))));
    check "exact.padded" (fun () ->
        (* The extra_domain path vs the oracle's Limit semantics. *)
        let p =
          Query_eval.boolean ~extra_domain:(fuzz_pads case.table phi)
            case.table phi
        in
        expect_eq ~what:"padded limit P(Q)" (Lazy.force truth_lim) p);
    check "store.roundtrip" (fun () ->
        (* Pack -> mmap-load must be invisible to the engines: same
           facts, rationally identical answer. *)
        let path = Filename.temp_file "iowpdb_fuzz" ".iow" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Store.write_ti ~path case.table;
            let st = Store.load path in
            match Store.verify_against_ti st case.table with
            | Error msg -> Some ("pack round-trip: " ^ msg)
            | Ok () ->
              expect_eq ~what:"P(Q) text-loaded vs pack-loaded"
                (Query_eval.boolean case.table phi)
                (Query_eval.boolean (Store.to_ti_table st) phi)));
    check "law.complement" (fun () ->
        let p = Query_eval.boolean case.table phi in
        let pc = Query_eval.boolean case.table (Fo.Not phi) in
        if Rational.(equal (add p pc) one) then None
        else
          Some
            (Printf.sprintf "P(Q) + P(not Q) = %s + %s <> 1" (rs p) (rs pc)));
    check "law.monotone" (fun () ->
        if not (Fo.is_positive phi) then None
        else begin
          let bumped =
            Ti_table.create
              (List.map
                 (fun (f, p) ->
                   (f, Rational.div (Rational.add Rational.one p) (Rational.of_int 2)))
                 (Ti_table.facts case.table))
          in
          let p = Query_eval.boolean case.table phi in
          let p' = Query_eval.boolean bumped phi in
          if Rational.(p <= p') then None
          else
            Some
              (Printf.sprintf
                 "positive query lost mass under probability increase: %s > %s"
                 (rs p) (rs p'))
        end);
    check "law.marginal" (fun () ->
        let u = Lazy.force u in
        List.find_map
          (fun (f, p) ->
            let m = Oracle.marginal u f in
            if Rational.equal m p then None
            else
              Some
                (Printf.sprintf "oracle marginal of %s is %s, table says %s"
                   (Fact.to_string f) (rs m) (rs p)))
          (Ti_table.facts case.table));
    check "law.expected-size" (fun () ->
        let u = Lazy.force u in
        let want = Rational.sum (List.map snd (Ti_table.facts case.table)) in
        expect_eq ~what:"E(S_D) (Corollary 4.7)" want (Oracle.expected_size u));
    (* The batch engine on a small adversarial batch: the query twice
       (dedup), an alpha-renamed copy (same function, distinct syntax),
       and its negation (same padding rank, so the complement law holds
       member-wise inside one batch). *)
    let batch_queries =
      lazy
        (let renamed =
           (* Primed bound names collide only if the query already uses
              them; then the copy degrades to one more duplicate. *)
           match Fo.rename_bound (fun x -> x ^ "'") phi with
           | r -> r
           | exception Invalid_argument _ -> phi
         in
         [| phi; phi; renamed; Fo.Not phi |])
    in
    let batch_result =
      lazy (Batch_eval.boolean case.table (Lazy.force batch_queries))
    in
    check "batch.member" (fun () ->
        let r = Lazy.force batch_result in
        let m = r.Batch_eval.members in
        let p0 = m.(0).Batch_eval.prob in
        match
          expect_eq ~what:"batch member 0 vs oracle" (Lazy.force truth_lim) p0
        with
        | Some d -> Some d
        | None ->
          if m.(1).Batch_eval.route <> Batch_eval.Duplicate 0 then
            Some "repeated member not routed as Duplicate 0"
          else if not (Rational.equal m.(1).Batch_eval.prob p0) then
            Some "duplicate member disagrees with its representative"
          else if not (Rational.equal m.(2).Batch_eval.prob p0) then
            Some
              (Printf.sprintf "alpha-renamed member: %s <> %s"
                 (rs m.(2).Batch_eval.prob) (rs p0))
          else if
            not Rational.(equal (add p0 m.(3).Batch_eval.prob) one)
          then
            Some
              (Printf.sprintf "batch complement: %s + %s <> 1" (rs p0)
                 (rs m.(3).Batch_eval.prob))
          else None);
    check "batch.map" (fun () ->
        (* The member-wise semantics law: batch member i equals the
           sequential engine under the batch's own padding (members
           with a Cmp atom stay unpadded). *)
        let qs = Lazy.force batch_queries in
        let r = Lazy.force batch_result in
        let bpads = Batch_eval.padding case.table qs in
        let rec go i =
          if i >= Array.length qs then None
          else begin
            let q = qs.(i) in
            let extra_domain = if Fo.has_cmp q then [] else bpads in
            let want = Query_eval.boolean ~extra_domain case.table q in
            match
              expect_eq
                ~what:(Printf.sprintf "batch member %d vs sequential" i)
                want
                r.Batch_eval.members.(i).Batch_eval.prob
            with
            | Some d -> Some d
            | None -> go (i + 1)
          end
        in
        go 0);
    check "batch.domains" (fun () ->
        (* Exact-carrier answers are bit-identical at any domain count. *)
        let qs = Lazy.force batch_queries in
        let r1 = Lazy.force batch_result in
        List.find_map
          (fun d ->
            let rd = Batch_eval.boolean ~domains:d case.table qs in
            let rec go i =
              if i >= Array.length qs then None
              else if
                not
                  (Rational.equal
                     rd.Batch_eval.members.(i).Batch_eval.prob
                     r1.Batch_eval.members.(i).Batch_eval.prob)
              then
                Some
                  (Printf.sprintf
                     "member %d moved with domains=%d: %s <> %s" i d
                     (rs rd.Batch_eval.members.(i).Batch_eval.prob)
                     (rs r1.Batch_eval.members.(i).Batch_eval.prob))
              else go (i + 1)
            in
            go 0)
          [ 2; 3; 4 ]);
    let src = lazy (Fact_source.of_ti_table case.table) in
    check "approx.estimate" (fun () ->
        (* Compare at the truncation point actually used, as the K_open
           branch does: when the whole table's mass fits under the tail
           budget the certified prefix is legitimately shorter than the
           table (even empty), and the estimate is exact only relative to
           that prefix — the additive-eps relation to the limit truth is
           what approx.bounds checks. *)
        let r = Approx_eval.boolean (Lazy.force src) ~eps:eps_coarse phi in
        let u_n =
          Oracle.of_fact_source (Lazy.force src) ~n:r.Approx_eval.n_used
        in
        expect_eq ~what:"Approx_eval estimate at n_used"
          (Oracle.query_prob ~semantics:(sem_for phi) u_n phi)
          r.Approx_eval.estimate);
    check "approx.bounds" (fun () ->
        let r = Approx_eval.boolean (Lazy.force src) ~eps:eps_coarse phi in
        if contains_iv r.Approx_eval.bounds (Lazy.force truth_lim) then None
        else
          Some
            (Printf.sprintf "bounds %s miss exact %s"
               (ivs r.Approx_eval.bounds)
               (rs (Lazy.force truth_lim))));
    if cmp_free then begin
      check "anytime.bounds" (fun () ->
          let s = Anytime.create ~eps:eps_fine (Lazy.force src) phi in
          let _ = Anytime.run s in
          let iv = Anytime.bounds s in
          if contains_iv iv (Lazy.force truth_lim) then None
          else
            Some
              (Printf.sprintf "anytime bounds %s miss exact %s" (ivs iv)
                 (rs (Lazy.force truth_lim))));
      check "mc.bounds" (fun () ->
          let space = Mc_eval.Ti (Countable_ti.create (Lazy.force src)) in
          let r =
            Mc_eval.boolean ~domains:1 ~confidence:mc_confidence ~seed:mc_seed
              ~samples:mc_samples space phi
          in
          if contains_iv r.Mc_eval.bounds (Lazy.force truth_lim) then None
          else
            Some
              (Printf.sprintf "MC bounds %s (conf %.5f) miss exact %s"
                 (ivs r.Mc_eval.bounds) mc_confidence
                 (rs (Lazy.force truth_lim))));
      check "robust.enclosure" (fun () ->
          let a =
            Robust_eval.query ~eps:eps_fine ~mc_samples:1000 ~seed:mc_seed
              (Lazy.force src) phi
          in
          let iv = a.Robust_eval.enclosure in
          if contains_iv iv (Lazy.force truth_lim) then None
          else
            Some
              (Printf.sprintf "robust enclosure %s misses exact %s" (ivs iv)
                 (rs (Lazy.force truth_lim))))
    end;
    if case.deltas <> [] then begin
      (* The incremental session's from-scratch reference after each
         delta: padded limit semantics for cmp-free queries (the
         session's own padding values close the comparison), exact
         truncated semantics otherwise. *)
      let scratch_of pads tbl =
        if cmp_free then Query_eval.boolean ~extra_domain:pads tbl phi
        else Query_eval.boolean tbl phi
      in
      check "mutation.incremental" (fun () ->
          let s = Delta_eval.Exact.create case.table phi in
          let tbl = ref case.table in
          let step = ref 0 in
          List.find_map
            (fun d ->
              incr step;
              let k = Delta_eval.Exact.apply s d in
              tbl := Delta_eval.apply_table !tbl d;
              let inc = Delta_eval.Exact.prob s in
              let scratch = scratch_of (Delta_eval.Exact.padding s) !tbl in
              if Rational.equal inc scratch then None
              else
                Some
                  (Printf.sprintf
                     "step %d (%s, %s): incremental %s <> from-scratch %s"
                     !step
                     (Delta_eval.delta_to_string d)
                     (Delta_eval.apply_kind_to_string k)
                     (rs inc) (rs scratch)))
            case.deltas);
      check "mutation.interval" (fun () ->
          (* The interval-carrier session must enclose the exact
             from-scratch answer at every step. *)
          let s = Delta_eval.Certified.create case.table phi in
          let tbl = ref case.table in
          let step = ref 0 in
          List.find_map
            (fun d ->
              incr step;
              ignore (Delta_eval.Certified.apply s d);
              tbl := Delta_eval.apply_table !tbl d;
              let iv = Delta_eval.Certified.prob s in
              let scratch =
                scratch_of (Delta_eval.Certified.padding s) !tbl
              in
              if contains_iv iv scratch then None
              else
                Some
                  (Printf.sprintf "step %d (%s): interval %s misses exact %s"
                     !step
                     (Delta_eval.delta_to_string d)
                     (ivs iv) (rs scratch)))
            case.deltas);
      check "mutation.inverse" (fun () ->
          (* Every delta, taken from the sequence's evolving state, is
             undone exactly by its inverse. *)
          let s = Delta_eval.Exact.create case.table phi in
          let step = ref 0 in
          List.find_map
            (fun d ->
              incr step;
              let p0 = Delta_eval.Exact.prob s in
              let inv = Delta_eval.Exact.inverse s d in
              ignore (Delta_eval.Exact.apply s d);
              ignore (Delta_eval.Exact.apply s inv);
              let p1 = Delta_eval.Exact.prob s in
              if Rational.equal p0 p1 then None
              else
                Some
                  (Printf.sprintf
                     "step %d: %s then %s moved the answer: %s <> %s" !step
                     (Delta_eval.delta_to_string d)
                     (Delta_eval.delta_to_string inv)
                     (rs p0) (rs p1)))
            case.deltas);
      check "mutation.noop" (fun () ->
          (* Recognized no-ops never bump the epoch. *)
          let s = Delta_eval.Exact.create case.table phi in
          match Ti_table.facts case.table with
          | [] -> None
          | (f, p) :: _ ->
            let e0 = Delta_eval.Exact.epoch s in
            let k = Delta_eval.Exact.apply s (Delta_eval.Reweight (f, p)) in
            if k = Delta_eval.Noop && Delta_eval.Exact.epoch s = e0 then None
            else
              Some
                (Printf.sprintf "same-marginal reweight absorbed as %s"
                   (Delta_eval.apply_kind_to_string k)))
    end
  | K_open ->
    let src = lazy (open_source case) in
    let approx eps = Approx_eval.boolean (Lazy.force src) ~eps phi in
    let oracle_at n = Oracle.of_fact_source (Lazy.force src) ~n in
    check "approx.estimate" (fun () ->
        let r = approx eps_coarse in
        let u = oracle_at r.Approx_eval.n_used in
        expect_eq ~what:"Approx_eval estimate at n_used"
          (Oracle.query_prob ~semantics:(sem_for phi) u phi)
          r.Approx_eval.estimate);
    check "approx.bounds" (fun () ->
        let r = approx eps_coarse in
        let e =
          Oracle.enclosure ~semantics:(sem_for phi)
            (oracle_at r.Approx_eval.n_used) phi
        in
        if overlaps_iv r.Approx_eval.bounds e then None
        else
          Some
            (Printf.sprintf "bounds %s disjoint from oracle enclosure %s"
               (ivs r.Approx_eval.bounds) (encs e)));
    check "law.narrowing" (fun () ->
        let r1 = approx eps_coarse and r2 = approx eps_fine in
        let n1 = r1.Approx_eval.n_used and n2 = r2.Approx_eval.n_used in
        let sem = sem_for phi in
        let e1 = Oracle.enclosure ~semantics:sem (oracle_at n1) phi
        and e2 = Oracle.enclosure ~semantics:sem (oracle_at n2) phi in
        if n2 < n1 then
          Some (Printf.sprintf "tighter eps used a shorter prefix: %d < %d" n2 n1)
        else if Rational.(Oracle.width e2 > Oracle.width e1) then
          Some
            (Printf.sprintf
               "oracle enclosure widened with depth: %s at n=%d vs %s at n=%d"
               (rs (Oracle.width e2)) n2 (rs (Oracle.width e1)) n1)
        else if Rational.(e1.Oracle.hi < e2.Oracle.lo || e2.Oracle.hi < e1.Oracle.lo)
        then
          Some
            (Printf.sprintf "oracle enclosures %s and %s are disjoint" (encs e1)
               (encs e2))
        else if
          (* Both engine intervals bound the same limit probability. *)
          cmp_free
          && (Interval.lo r1.Approx_eval.bounds
              > Interval.hi r2.Approx_eval.bounds
             || Interval.lo r2.Approx_eval.bounds
                > Interval.hi r1.Approx_eval.bounds)
        then
          Some
            (Printf.sprintf "approx bounds %s and %s are disjoint"
               (ivs r1.Approx_eval.bounds) (ivs r2.Approx_eval.bounds))
        else None);
    if cmp_free then begin
      let deep_enclosure =
        lazy
          (let r = approx eps_fine in
           Oracle.enclosure ~semantics:Limit (oracle_at r.Approx_eval.n_used)
             phi)
      in
      check "anytime.bounds" (fun () ->
          let s = Anytime.create ~eps:eps_fine (Lazy.force src) phi in
          let _ = Anytime.run s in
          let iv = Anytime.bounds s in
          let e = Lazy.force deep_enclosure in
          if overlaps_iv iv e then None
          else
            Some
              (Printf.sprintf
                 "anytime bounds %s disjoint from oracle enclosure %s" (ivs iv)
                 (encs e)));
      check "mc.bounds" (fun () ->
          let space = Mc_eval.Ti (Countable_ti.create (Lazy.force src)) in
          let r =
            Mc_eval.boolean ~domains:1 ~confidence:mc_confidence ~seed:mc_seed
              ~samples:mc_samples space phi
          in
          let e = Lazy.force deep_enclosure in
          if overlaps_iv r.Mc_eval.bounds e then None
          else
            Some
              (Printf.sprintf
                 "MC bounds %s (conf %.5f) disjoint from oracle enclosure %s"
                 (ivs r.Mc_eval.bounds) mc_confidence (encs e)));
      check "robust.enclosure" (fun () ->
          let a =
            Robust_eval.query ~eps:eps_fine ~mc_samples:1000 ~seed:mc_seed
              (Lazy.force src) phi
          in
          let iv = a.Robust_eval.enclosure in
          let e = Lazy.force deep_enclosure in
          if overlaps_iv iv e then None
          else
            Some
              (Printf.sprintf
                 "robust enclosure %s disjoint from oracle enclosure %s"
                 (ivs iv) (encs e)))
    end
  | K_bid ->
    let bid = bid_of case in
    let u = lazy (Oracle.of_bid_table bid) in
    let blocks = Bid_table.blocks bid in
    check "law.marginal" (fun () ->
        let u = Lazy.force u in
        List.find_map
          (fun (b : Bid_table.block) ->
            List.find_map
              (fun (f, p) ->
                let m = Oracle.marginal u f in
                if Rational.equal m p then None
                else
                  Some
                    (Printf.sprintf
                       "oracle marginal of %s is %s, block %s says %s"
                       (Fact.to_string f) (rs m) b.Bid_table.block_id (rs p)))
              b.Bid_table.alternatives)
          blocks);
    check "law.exclusive" (fun () ->
        (* Two alternatives of one block never co-occur. *)
        let u = Lazy.force u in
        List.find_map
          (fun (b : Bid_table.block) ->
            match b.Bid_table.alternatives with
            | (f, _) :: (g, _) :: _ ->
              let both = Fo.And (ground_atom f, ground_atom g) in
              let p = Oracle.query_prob u both in
              if Rational.is_zero p then None
              else
                Some
                  (Printf.sprintf "P(%s and %s) = %s <> 0 in block %s"
                     (Fact.to_string f) (Fact.to_string g) (rs p)
                     b.Bid_table.block_id)
            | _ -> None)
          blocks);
    check "law.expected-size" (fun () ->
        let u = Lazy.force u in
        let want =
          Rational.sum
            (List.concat_map
               (fun (b : Bid_table.block) ->
                 List.map snd b.Bid_table.alternatives)
               blocks)
        in
        expect_eq ~what:"E(S_D) over blocks" want (Oracle.expected_size u));
    check "store.roundtrip" (fun () ->
        let path = Filename.temp_file "iowpdb_fuzz" ".iow" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Store.write_bid ~path bid;
            let st = Store.load path in
            match Store.verify_against_bid st bid with
            | Error msg -> Some ("pack round-trip: " ^ msg)
            | Ok () ->
              let truth = Oracle.query_prob (Lazy.force u) phi in
              expect_eq ~what:"P(Q) text-loaded vs pack-loaded blocks" truth
                (Oracle.query_prob (Oracle.of_bid_table (Store.to_bid_table st))
                   phi)));
    if cmp_free then
      check "mc.bounds" (fun () ->
          let space =
            Mc_eval.Bid
              (Countable_bid.of_finite_blocks
                 (List.map
                    (fun (b : Bid_table.block) ->
                      Countable_bid.block_finite ~id:b.Bid_table.block_id
                        b.Bid_table.alternatives)
                    blocks))
          in
          let r =
            Mc_eval.boolean ~domains:1 ~confidence:mc_confidence ~seed:mc_seed
              ~samples:mc_samples space phi
          in
          let truth =
            Oracle.query_prob ~semantics:(sem_for phi) (Lazy.force u) phi
          in
          if contains_iv r.Mc_eval.bounds truth then None
          else
            Some
              (Printf.sprintf "MC bounds %s (conf %.5f) miss exact %s"
                 (ivs r.Mc_eval.bounds) mc_confidence (rs truth)))
  | K_completion ->
    let c = lazy (completion_of case) in
    let result = lazy (Completion.query_prob (Lazy.force c) ~eps:eps_coarse phi) in
    let oracle_at n = Oracle.of_completion (Lazy.force c) ~n in
    check "completion.estimate" (fun () ->
        let r = Lazy.force result in
        let u = oracle_at r.Approx_eval.n_used in
        expect_eq ~what:"Completion.query_prob estimate at n_used"
          (Oracle.query_prob ~semantics:(sem_for phi) u phi)
          r.Approx_eval.estimate);
    check "completion.bounds" (fun () ->
        let r = Lazy.force result in
        let e =
          Oracle.enclosure ~semantics:(sem_for phi)
            (oracle_at r.Approx_eval.n_used) phi
        in
        if overlaps_iv r.Approx_eval.bounds e then None
        else
          Some
            (Printf.sprintf "bounds %s disjoint from oracle enclosure %s"
               (ivs r.Approx_eval.bounds) (encs e)));
    check "law.cc" (fun () ->
        (* Theorem 5.5: the completion preserves the original law
           conditionally, P'(A | Omega) = P(A), at every truncation. *)
        let c = Lazy.force c in
        let gap = Completion.completion_condition_gap c ~n:3 in
        if not (Rational.is_zero gap) then
          Some (Printf.sprintf "completion condition gap %s <> 0" (rs gap))
        else begin
          match case.policy with
          | Some (Oracle_gen.Lambda (_, k)) ->
            (* Finite reservoir: condition the exact product universe on
               "no new fact" and compare world by world. *)
            let u = oracle_at k in
            let no_new inst =
              Fact.Set.for_all
                (fun f -> Fact.rel f <> Oracle_gen.policy_relation)
                (Instance.to_set inst)
            in
            let cond = Oracle.condition u no_new in
            let orig = Completion.original c in
            List.find_map
              (fun (inst, m) ->
                let want = Finite_pdb.prob_of orig inst in
                if Rational.equal m want then None
                else
                  Some
                    (Printf.sprintf
                       "P'(D | Omega) = %s but P(D) = %s on a world" (rs m)
                       (rs want)))
              (Oracle.worlds cond)
          | _ -> None
        end);
    if cmp_free then
      check "mc.bounds" (fun () ->
          let r = Lazy.force result in
          let e =
            Oracle.enclosure ~semantics:Limit (oracle_at r.Approx_eval.n_used)
              phi
          in
          let mc =
            Mc_eval.boolean ~domains:1 ~confidence:mc_confidence ~seed:mc_seed
              ~samples:mc_samples
              (Mc_eval.Completed (Lazy.force c))
              phi
          in
          if overlaps_iv mc.Mc_eval.bounds e then None
          else
            Some
              (Printf.sprintf
                 "MC bounds %s (conf %.5f) disjoint from oracle enclosure %s"
                 (ivs mc.Mc_eval.bounds) mc_confidence (encs e))));
  (!checks, List.rev !fails)

(* ------------------------------------------------------------------ *)
(* Shrinking *)
(* ------------------------------------------------------------------ *)

let drop_nth xs i = List.filteri (fun j _ -> j <> i) xs

let ti_variants case =
  let facts = Ti_table.facts case.table in
  List.mapi (fun i _ -> { case with table = Ti_table.create (drop_nth facts i) }) facts

let bid_variants case =
  match case.bid with
  | None -> []
  | Some bid ->
    let blocks = Bid_table.blocks bid in
    let rebuild bs =
      if bs = [] then None
      else Some { case with bid = Some (Bid_table.create bs) }
    in
    let drop_block =
      List.mapi (fun i _ -> rebuild (drop_nth blocks i)) blocks
    in
    let drop_alt =
      List.concat
        (List.mapi
           (fun i (b : Bid_table.block) ->
             List.mapi
               (fun j _ ->
                 match drop_nth b.Bid_table.alternatives j with
                 | [] -> rebuild (drop_nth blocks i)
                 | alts ->
                   rebuild
                     (List.mapi
                        (fun i' b' ->
                          if i' = i then { b' with Bid_table.alternatives = alts }
                          else b')
                        blocks))
               b.Bid_table.alternatives)
           blocks)
    in
    List.filter_map Fun.id (drop_block @ drop_alt)

let query_variants case =
  let subs =
    match case.query with
    | Fo.Not f -> [ f ]
    | Fo.And (l, r) | Fo.Or (l, r) | Fo.Implies (l, r) -> [ l; r ]
    | Fo.Exists (x, b) | Fo.Forall (x, b) ->
      List.map
        (fun v -> Fo.substitute [ (x, v) ] b)
        [ Value.Int 0; Value.Str "a" ]
    | _ -> []
  in
  List.map (fun q -> { case with query = q }) (subs @ [ Fo.True; Fo.False ])

let delta_variants case =
  List.mapi (fun i _ -> { case with deltas = drop_nth case.deltas i }) case.deltas

let case_variants case =
  ti_variants case @ bid_variants case @ query_variants case
  @ delta_variants case

let shrink ?(max_steps = 64) fl =
  let engines = [ engine_of_check fl.check ] in
  let failure_of c =
    match run_case ~engines c with
    | _, fs -> List.find_opt (fun f -> String.equal f.check fl.check) fs
    | exception _ -> None
  in
  let rec go best steps =
    if steps <= 0 then best
    else
      match
        List.find_map
          (fun c -> Option.map (fun f -> f) (failure_of c))
          (case_variants best.f_case)
      with
      | Some f -> go f (steps - 1)
      | None -> best
  in
  go fl max_steps

(* ------------------------------------------------------------------ *)
(* Corpus serialization *)
(* ------------------------------------------------------------------ *)

type corpus_case = { c_case : case; c_check : string; c_detail : string }

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let nonblank_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let to_lines ~seed cc =
  let case = cc.c_case in
  [
    "# iowpdb fuzz counterexample; replayed by the test/corpus loader.";
    Printf.sprintf "# found with seed %d; regenerate: iowpdb fuzz --seed %d"
      seed seed;
    Printf.sprintf "case %d" case.id;
    "kind " ^ kind_to_string case.kind;
    "check " ^ cc.c_check;
    "detail " ^ one_line cc.c_detail;
    "query " ^ Fo.to_string case.query;
  ]
  @ (match case.policy with
    | None -> []
    | Some p -> [ "policy " ^ Oracle_gen.policy_to_string p ])
  @ List.map (fun d -> "delta " ^ Delta_eval.delta_to_string d) case.deltas
  @ List.map (fun l -> "ti " ^ l) (nonblank_lines (Ti_table.to_string case.table))
  @
  match case.bid with
  | None -> []
  | Some b -> List.map (fun l -> "bid " ^ l) (nonblank_lines (Bid_table.to_string b))

let of_lines ?file lines =
  let where i =
    Printf.sprintf "%s:%d" (Option.value file ~default:"<corpus>") i
  in
  let id = ref 0
  and kind = ref None
  and chk = ref "replay"
  and detail = ref ""
  and query = ref None
  and policy = ref None
  and deltas = ref []
  and ti_lines = ref []
  and bid_lines = ref [] in
  List.iteri
    (fun i0 line ->
      let i = i0 + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else begin
        let kw, rest =
          match String.index_opt line ' ' with
          | None -> (line, "")
          | Some j ->
            ( String.sub line 0 j,
              String.trim (String.sub line (j + 1) (String.length line - j - 1))
            )
        in
        match kw with
        | "case" -> (
          match int_of_string_opt rest with
          | Some n -> id := n
          | None -> invalid_arg (where i ^ ": malformed case id " ^ rest))
        | "kind" -> (
          match kind_of_string rest with
          | Some k -> kind := Some k
          | None -> invalid_arg (where i ^ ": unknown kind " ^ rest))
        | "check" -> chk := rest
        | "detail" -> detail := rest
        | "query" -> (
          match Fo_parse.parse rest with
          | Ok q -> query := Some q
          | Error e -> invalid_arg (where i ^ ": bad query: " ^ e))
        | "policy" -> policy := Some (Oracle_gen.policy_of_string rest)
        | "delta" -> (
          match Delta_eval.delta_of_string rest with
          | d -> deltas := d :: !deltas
          | exception Invalid_argument e -> invalid_arg (where i ^ ": " ^ e))
        | "ti" -> ti_lines := rest :: !ti_lines
        | "bid" -> bid_lines := rest :: !bid_lines
        | _ -> invalid_arg (where i ^ ": unknown keyword " ^ kw)
      end)
    lines;
  let kind =
    match !kind with
    | Some k -> k
    | None -> invalid_arg (Option.value file ~default:"<corpus>" ^ ": no kind line")
  in
  let query =
    match !query with
    | Some q -> q
    | None -> invalid_arg (Option.value file ~default:"<corpus>" ^ ": no query line")
  in
  let table = Ti_table.of_lines ?file (List.rev !ti_lines) in
  let bid =
    match List.rev !bid_lines with
    | [] -> None
    | ls -> Some (Bid_table.of_lines ?file ls)
  in
  {
    c_case =
      {
        id = !id;
        kind;
        table;
        bid;
        policy = !policy;
        query;
        deltas = List.rev !deltas;
      };
    c_check = !chk;
    c_detail = !detail;
  }

let save ~dir ~seed fl =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c | _ -> '-')
      fl.check
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "%s-%d-%d.case" safe seed fl.f_case.id) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun l -> output_string oc (l ^ "\n"))
        (to_lines ~seed
           { c_case = fl.f_case; c_check = fl.check; c_detail = fl.detail }));
  path

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines ~file:path (go []))

(* ------------------------------------------------------------------ *)
(* The fuzzing loop *)
(* ------------------------------------------------------------------ *)

type report = {
  cases_run : int;
  checks_run : int;
  engines_run : engine list;
  mc_confidence : float;
  failures : failure list;
  corpus_written : string list;
}

(* Expensive engines rotate across cases; the strides are part of the
   reproducible protocol, so the per-run Bonferroni correction below is a
   deterministic function of (engines, cases). *)
let case_engines ~engines id =
  List.filter
    (function
      | Exact | Lifted | Approx | Batch | Delta -> true
      | Anytime -> id mod 2 = 0
      | Mc -> id mod 3 = 0
      | Robust -> id mod 5 = 0)
    engines

let run ?(config = Oracle_gen.default) ?(engines = all_engines)
    ?(mc_samples = 1500) ?corpus_dir ~seed ~cases () =
  let mc_checks_planned =
    if List.mem Mc engines then (cases + 2) / 3 else 0
  in
  let mc_confidence =
    1.0 -. (0.02 /. float_of_int (max 1 mc_checks_planned))
  in
  let checks_run = ref 0 and failures = ref [] and written = ref [] in
  for id = 0 to cases - 1 do
    let case = generate config ~seed ~id in
    let engs = case_engines ~engines id in
    let n, fs = run_case ~engines:engs ~mc_samples ~mc_confidence case in
    checks_run := !checks_run + n;
    let fs = List.map (fun f -> shrink f) fs in
    (match corpus_dir with
    | Some dir -> List.iter (fun f -> written := save ~dir ~seed f :: !written) fs
    | None -> ());
    failures := List.rev_append fs !failures
  done;
  {
    cases_run = cases;
    checks_run = !checks_run;
    engines_run = engines;
    mc_confidence;
    failures = List.rev !failures;
    corpus_written = List.rev !written;
  }
