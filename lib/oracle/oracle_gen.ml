(* Random instances for the fuzzer; see oracle_gen.mli. *)

type config = {
  max_relations : int;
  max_arity : int;
  max_facts : int;
  max_blocks : int;
  max_alts : int;
  max_rank : int;
  max_connectives : int;
  allow_negation : bool;
  allow_cmp : bool;
  denominator : int;
}

let default =
  {
    max_relations = 3;
    max_arity = 2;
    max_facts = 6;
    max_blocks = 3;
    max_alts = 3;
    max_rank = 3;
    max_connectives = 7;
    allow_negation = true;
    allow_cmp = false;
    denominator = 16;
  }

let value_pool =
  [ Value.Int 0; Value.Int 1; Value.Int 2; Value.Int 3; Value.Str "a" ]

let rel_names = [| "R"; "S"; "T"; "U"; "V" |]
let policy_relation = "N"

let schema cfg g =
  let n = 1 + Prng.int g (max 1 cfg.max_relations) in
  let n = min n (Array.length rel_names) in
  Schema.make
    (List.init n (fun i ->
         Schema.relation rel_names.(i) (1 + Prng.int g cfg.max_arity)))

let random_value g = Prng.pick g (Array.of_list value_pool)

let random_fact g sch =
  let rels = Schema.relations sch in
  let r = List.nth rels (Prng.int g (List.length rels)) in
  Fact.make r.Schema.rel_name
    (List.init r.Schema.arity (fun _ -> random_value g))

(* k/den with k in [1, den]: probability 1 shows up occasionally, which
   exercises the p = 1 corners of the engines. *)
let random_prob cfg g = Rational.of_ints (1 + Prng.int g cfg.denominator) cfg.denominator

let ti_facts cfg g sch =
  let n = 1 + Prng.int g (max 1 cfg.max_facts) in
  let seen = Hashtbl.create 16 in
  let rec draw budget acc =
    if budget = 0 then List.rev acc
    else begin
      let f = random_fact g sch in
      if Hashtbl.mem seen f then draw (budget - 1) acc
      else begin
        Hashtbl.add seen f ();
        draw (budget - 1) ((f, random_prob cfg g) :: acc)
      end
    end
  in
  let facts = draw (2 * n) [] in
  let facts = if List.length facts > n then List.filteri (fun i _ -> i < n) facts else facts in
  match facts with
  | [] -> [ (random_fact g sch, random_prob cfg g) ]
  | fs -> fs

let ti_table cfg g sch = Ti_table.create (ti_facts cfg g sch)

let bid_blocks cfg g sch =
  let nb = 1 + Prng.int g (max 1 cfg.max_blocks) in
  let seen = Hashtbl.create 16 in
  List.init nb (fun bi ->
      let na = 1 + Prng.int g (max 1 cfg.max_alts) in
      (* Sequential mass budget: each alternative takes k/den of what is
         left, so the block mass never exceeds 1 and usually leaves
         slack. *)
      let rec alts i remaining acc =
        if i = 0 || remaining <= 0 then List.rev acc
        else begin
          let k = 1 + Prng.int g remaining in
          let f = random_fact g sch in
          if Hashtbl.mem seen f then alts (i - 1) remaining acc
          else begin
            Hashtbl.add seen f ();
            alts (i - 1) (remaining - k)
              ((f, Rational.of_ints k cfg.denominator) :: acc)
          end
        end
      in
      let alts = alts na cfg.denominator [] in
      (Printf.sprintf "b%d" bi, alts))
  |> List.filter (fun (_, alts) -> alts <> [])

let bid_table cfg g sch =
  let blocks = bid_blocks cfg g sch in
  let blocks =
    if blocks = [] then
      [ ("b0", [ (random_fact g sch, Rational.of_ints 1 cfg.denominator) ]) ]
    else blocks
  in
  Bid_table.create
    (List.map
       (fun (id, alts) -> { Bid_table.block_id = id; alternatives = alts })
       blocks)

(* ------------------------------------------------------------------ *)
(* Mutation sequences *)
(* ------------------------------------------------------------------ *)

(* A fact whose arguments lean toward values outside [value_pool], so
   the sequence exercises the fresh-constant (delta-join) path of the
   incremental engine, not only weight patches and recompiles. *)
let fresh_leaning_fact g sch =
  let rels = Schema.relations sch in
  let r = List.nth rels (Prng.int g (List.length rels)) in
  Fact.make r.Schema.rel_name
    (List.init r.Schema.arity (fun _ ->
         if Prng.int g 3 = 0 then Value.Int (100 + Prng.int g 50)
         else random_value g))

let mutations cfg g sch ~table ~len =
  let tbl = ref table in
  let push acc d =
    tbl := Delta_eval.apply_table !tbl d;
    d :: acc
  in
  let random_existing () =
    match Ti_table.support !tbl with
    | [] -> random_fact g sch
    | sup -> List.nth sup (Prng.int g (List.length sup))
  in
  let basic () =
    match Prng.int g 7 with
    | 0 -> Delta_eval.Insert (random_fact g sch, random_prob cfg g)
    | 1 -> Delta_eval.Insert (fresh_leaning_fact g sch, random_prob cfg g)
    | 2 -> Delta_eval.Delete (random_existing ())
    | 3 -> Delta_eval.Delete (random_fact g sch)
    | 4 -> Delta_eval.Reweight (random_existing (), random_prob cfg g)
    | 5 -> Delta_eval.Reweight (random_fact g sch, random_prob cfg g)
    | _ -> Delta_eval.Reweight (random_existing (), Rational.zero)
  in
  let rec go k acc =
    if k <= 0 then List.rev acc
    else
      match Prng.int g 8 with
      | 6 ->
        (* A recognized no-op: reweight a present fact to its current
           marginal (or delete an arbitrary fact twice over). *)
        let d =
          match Ti_table.facts !tbl with
          | [] -> Delta_eval.Delete (random_fact g sch)
          | fs ->
            let f, p = List.nth fs (Prng.int g (List.length fs)) in
            Delta_eval.Reweight (f, p)
        in
        go (k - 1) (push acc d)
      | 7 when k >= 2 ->
        (* An inverse pair: a delta immediately undone. *)
        let d = basic () in
        let inv = Delta_eval.inverse_of !tbl d in
        go (k - 2) (push (push acc d) inv)
      | _ -> go (k - 1) (push acc (basic ()))
  in
  go len []

(* ------------------------------------------------------------------ *)
(* Open-world policies *)
(* ------------------------------------------------------------------ *)

type policy =
  | Lambda of Rational.t * int
  | Geometric of Rational.t * Rational.t

let policy cfg g =
  if Prng.bool g then
    Lambda
      ( Rational.of_ints (1 + Prng.int g (cfg.denominator - 1)) cfg.denominator,
        1 + Prng.int g 3 )
  else
    Geometric
      ( Rational.of_ints (1 + Prng.int g (cfg.denominator / 2)) cfg.denominator,
        Rational.of_ints (1 + Prng.int g 2) 4 )

let policy_to_string = function
  | Lambda (p, k) -> Printf.sprintf "lambda:%s:%d" (Rational.to_string p) k
  | Geometric (f, r) ->
    Printf.sprintf "geometric:%s:%s" (Rational.to_string f)
      (Rational.to_string r)

let policy_of_string s =
  match String.split_on_char ':' s with
  | [ "lambda"; p; k ] -> Lambda (Rational.of_string p, int_of_string k)
  | [ "geometric"; f; r ] ->
    Geometric (Rational.of_string f, Rational.of_string r)
  | _ -> invalid_arg (Printf.sprintf "Oracle_gen.policy_of_string: %S" s)

let apply_policy pol ti =
  match pol with
  | Lambda (lambda, k) ->
    Completion.openpdb_lambda ~lambda
      ~new_facts:
        (List.init k (fun j -> Fact.make policy_relation [ Value.Int j ]))
      ti
  | Geometric (first, ratio) ->
    Completion.geometric_policy ~first ~ratio
      ~new_facts:(fun j -> Fact.make policy_relation [ Value.Int j ])
      ti

(* ------------------------------------------------------------------ *)
(* Random sentences *)
(* ------------------------------------------------------------------ *)

let var_names = [| "x"; "y"; "z" |]

let random_term g vars =
  if vars <> [] && Prng.int g 3 < 2 then
    Fo.Var (List.nth vars (Prng.int g (List.length vars)))
  else Fo.Const (random_value g)

let random_atom g sch vars =
  let rels = Schema.relations sch in
  let r = List.nth rels (Prng.int g (List.length rels)) in
  Fo.Atom
    ( r.Schema.rel_name,
      List.init r.Schema.arity (fun _ -> random_term g vars) )

(* [rank] quantifiers may still be opened below this point; [budget]
   counts connectives.  Every leaf only uses variables in scope, so the
   result is always a sentence. *)
let rec gen_formula cfg g sch vars ~rank ~budget ~positive =
  let leaf () =
    match Prng.int g 10 with
    | 0 when vars <> [] || cfg.allow_cmp ->
      let a = random_term g vars and b = random_term g vars in
      if cfg.allow_cmp && Prng.bool g then
        let op =
          match Prng.int g 4 with
          | 0 -> Fo.Lt
          | 1 -> Fo.Le
          | 2 -> Fo.Gt
          | _ -> Fo.Ge
        in
        Fo.Cmp (op, a, b)
      else Fo.Eq (a, b)
    | _ -> random_atom g sch vars
  in
  if budget <= 0 then leaf ()
  else begin
    let quantifier_ok = rank > 0 && List.length vars < Array.length var_names in
    match Prng.int g 12 with
    | 0 | 1 | 2 when quantifier_ok ->
      let x = var_names.(List.length vars) in
      let body =
        gen_formula cfg g sch (x :: vars) ~rank:(rank - 1)
          ~budget:(budget - 1) ~positive
      in
      if positive then
        if Prng.int g 4 = 0 then Fo.Forall (x, body) else Fo.Exists (x, body)
      else if Prng.bool g then Fo.Exists (x, body)
      else Fo.Forall (x, body)
    | 3 | 4 | 5 ->
      let l = gen_formula cfg g sch vars ~rank ~budget:(budget / 2) ~positive
      and r =
        gen_formula cfg g sch vars ~rank ~budget:((budget - 1) / 2) ~positive
      in
      if Prng.bool g then Fo.And (l, r) else Fo.Or (l, r)
    | 6 when (not positive) && cfg.allow_negation ->
      Fo.Not (gen_formula cfg g sch vars ~rank ~budget:(budget - 1) ~positive)
    | 7 when (not positive) && cfg.allow_negation ->
      let l = gen_formula cfg g sch vars ~rank ~budget:(budget / 2) ~positive
      and r =
        gen_formula cfg g sch vars ~rank ~budget:((budget - 1) / 2) ~positive
      in
      Fo.Implies (l, r)
    | _ -> leaf ()
  end

let sentence cfg g sch =
  (* Usually open with a quantifier: purely ground sentences are a less
     interesting corner and still show up via the leaf path. *)
  let phi =
    gen_formula cfg g sch [] ~rank:cfg.max_rank ~budget:cfg.max_connectives
      ~positive:false
  in
  if Fo.quantifier_rank phi = 0 && Prng.int g 4 < 3 then
    let x = var_names.(0) in
    Fo.Exists
      ( x,
        gen_formula cfg g sch [ x ] ~rank:(cfg.max_rank - 1)
          ~budget:(cfg.max_connectives - 1) ~positive:false )
  else phi

let positive_sentence cfg g sch =
  gen_formula cfg g sch [] ~rank:cfg.max_rank ~budget:cfg.max_connectives
    ~positive:true
