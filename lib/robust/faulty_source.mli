(** Deterministic fault injection on fact sources — the adversary the
    robustness layer is tested against.

    [wrap cfg src] behaves exactly like [src] except that a schedule of
    faults — a pure function of [cfg.seed] and the access index, never of
    timing or caller identity — fires on {e first} access:

    - {b transient}: the first pull of a scheduled entry raises
      {!Transient}; the next pull of the same entry succeeds.  Models a
      flaky upstream that a retry cures.
    - {b stall}: the first pull of a scheduled entry sleeps for
      [stall_seconds] before returning.  Models latency spikes; burns
      wall-clock budget but not virtual time.
    - {b corrupt probability}: the first pull of a scheduled entry raises
      [Invalid_argument] (the same way source validation reports
      out-of-range data), then delivers the true entry on the next pull.
      Exercises the non-retryable [Model_invalid] path and engine
      degradation.
    - {b NaN tail}: the first consultation of the tail certificate at a
      scheduled index answers [Some nan] — an answer that certifies
      nothing (every comparison with it is false).
    - {b tail blackout}: the first consultation at a scheduled index
      answers [None], as if the certificate were momentarily silent.

    Because every fault fires at most once per index, the wrapped source
    viewed across retries is the original source: any enclosure computed
    from surviving accesses is an enclosure for the true distribution.
    Faults fired are counted under [robust.faults.*]. *)

type config = {
  seed : int;  (** root of the fault schedule *)
  transient : float;  (** per-entry probability of a transient raise *)
  stall : float;  (** per-entry probability of a stall *)
  stall_seconds : float;  (** stall duration (wall clock) *)
  bad_prob : float;  (** per-entry probability of a corrupt-data raise *)
  nan_tail : float;  (** per-probe probability of a [Some nan] answer *)
  tail_blackout : float;  (** per-probe probability of a [None] answer *)
}

val none : config
(** All rates zero: [wrap none] is observationally the identity. *)

val default : seed:int -> config
(** A moderately hostile schedule (20% transient, 5% stall of 1 ms, 5%
    corrupt, 10% NaN tails, 10% blackouts). *)

val validate : config -> unit
(** @raise Invalid_argument on a rate outside [0,1] or a negative stall
    duration. *)

exception Transient of string
(** The injected transient failure.  Classified by {!Errors.of_exn} as
    [Engine_failure], which the supervisor treats as retryable. *)

val entry_faults : config -> int -> string list
(** The faults scheduled for entry [i], as tags from
    [{"transient"; "stall"; "corrupt"}] — pure, for tests and reports. *)

val tail_faults : config -> int -> string list
(** The faults scheduled for a tail probe at [n], from
    [{"nan"; "blackout"}]. *)

val wrap : config -> Fact_source.t -> Fact_source.t
(** The faulty view.  The returned source has its own entry cache, so an
    entry that survived its faults once is served clean from then on. *)
