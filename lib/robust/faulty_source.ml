(* Deterministic fault injection on fact sources.

   The schedule is a pure function of (seed, access index): entry i's
   fault decisions come from Prng.substream (substream root 0) i, tail
   probe n's from Prng.substream (substream root 1) n.  Each fault fires
   at most once per index (tracked in a mutable table), so the source
   seen across retries is the original one and every certificate
   computed from surviving accesses is genuine. *)

type config = {
  seed : int;
  transient : float;
  stall : float;
  stall_seconds : float;
  bad_prob : float;
  nan_tail : float;
  tail_blackout : float;
}

let none =
  {
    seed = 0;
    transient = 0.0;
    stall = 0.0;
    stall_seconds = 0.0;
    bad_prob = 0.0;
    nan_tail = 0.0;
    tail_blackout = 0.0;
  }

let default ~seed =
  {
    seed;
    transient = 0.2;
    stall = 0.05;
    stall_seconds = 0.001;
    bad_prob = 0.05;
    nan_tail = 0.1;
    tail_blackout = 0.1;
  }

let validate cfg =
  let rate what r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg
        (Printf.sprintf "Faulty_source: %s rate %g outside [0, 1]" what r)
  in
  rate "transient" cfg.transient;
  rate "stall" cfg.stall;
  rate "bad_prob" cfg.bad_prob;
  rate "nan_tail" cfg.nan_tail;
  rate "tail_blackout" cfg.tail_blackout;
  if not (cfg.stall_seconds >= 0.0) then
    invalid_arg "Faulty_source: stall_seconds must be nonnegative"

exception Transient of string

let c_transient = Stats.counter "robust.faults.transient"
let c_stall = Stats.counter "robust.faults.stall"
let c_corrupt = Stats.counter "robust.faults.corrupt"
let c_tail_nan = Stats.counter "robust.faults.tail_nan"
let c_tail_blackout = Stats.counter "robust.faults.tail_blackout"

(* Streams 0 and 1 of the root separate entry faults from tail faults;
   the draw order within a substream is fixed, so adding a fault kind
   later would change schedules — append draws, never reorder. *)
let entry_schedule cfg i =
  let g = Prng.substream (Prng.substream (Prng.create ~seed:cfg.seed ()) 0) i in
  let transient = Prng.float g < cfg.transient in
  let stall = Prng.float g < cfg.stall in
  let corrupt = Prng.float g < cfg.bad_prob in
  (transient, stall, corrupt)

let tail_schedule cfg n =
  let g = Prng.substream (Prng.substream (Prng.create ~seed:cfg.seed ()) 1) n in
  let nan = Prng.float g < cfg.nan_tail in
  let blackout = Prng.float g < cfg.tail_blackout in
  (nan, blackout)

let entry_faults cfg i =
  let transient, stall, corrupt = entry_schedule cfg i in
  List.filter_map Fun.id
    [
      (if transient then Some "transient" else None);
      (if stall then Some "stall" else None);
      (if corrupt then Some "corrupt" else None);
    ]

let tail_faults cfg n =
  let nan, blackout = tail_schedule cfg n in
  List.filter_map Fun.id
    [
      (if nan then Some "nan" else None);
      (if blackout then Some "blackout" else None);
    ]

let wrap cfg src =
  validate cfg;
  (* (fault kind, index) -> already fired.  Shared by the enum and the
     tail, and living as long as the wrapped source, so a fault fires at
     most once no matter which engine (or which retry) hits it. *)
  let fired : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let once kind i =
    if Hashtbl.mem fired (kind, i) then false
    else begin
      Hashtbl.add fired (kind, i) ();
      true
    end
  in
  let name = Fact_source.name src in
  let enum =
    Seq.unfold
      (fun i ->
        let transient, stall, corrupt = entry_schedule cfg i in
        if transient && once 0 i then begin
          Stats.incr c_transient;
          raise
            (Transient
               (Printf.sprintf "injected transient fault at entry %d of %s" i
                  name))
        end;
        if corrupt && once 1 i then begin
          Stats.incr c_corrupt;
          invalid_arg
            (Printf.sprintf
               "Fact_source %s: injected corrupt probability at entry %d" name
               i)
        end;
        if stall && once 2 i then begin
          Stats.incr c_stall;
          if cfg.stall_seconds > 0.0 then Unix.sleepf cfg.stall_seconds
        end;
        Option.map (fun e -> (e, i + 1)) (Fact_source.nth src i))
      0
  in
  let tail n =
    let nan, blackout = tail_schedule cfg n in
    if nan && once 3 n then begin
      Stats.incr c_tail_nan;
      Some Float.nan
    end
    else if blackout && once 4 n then begin
      Stats.incr c_tail_blackout;
      None
    end
    else Fact_source.tail_mass src n
  in
  Fact_source.make ~name:("faulty:" ^ name) ~enum ~tail ()
