(** Composable evaluation budgets and cooperative cancellation.

    A budget bundles an optional deadline with per-kind work-unit caps
    (facts enumerated, tail probes, BDD nodes allocated, Monte-Carlo
    samples, anytime steps).  Engines charge work against the budget as
    they go and poll it at safe points; the first exhaustion observed is
    recorded stickily so every later poll reports the same cause.

    Budgets compose: a child created with [~parent] forwards every spend
    upward and is exhausted as soon as any ancestor is, which is how
    [Robust_eval] gives each rung of its degradation ladder a private
    slice of one overall allowance.

    All mutable state is atomic, so worker domains may spend against and
    poll the budget that the coordinating domain created.  Exhaustion is
    surfaced two ways: {!checkpoint} raises {!Exhausted} (for
    single-domain hot loops), {!ok}/{!check} return it as data (for
    worker domains, where an exception must not cross the [Domain]
    boundary). *)

type kind = Facts | Probes | Bdd_nodes | Samples | Steps

val kind_to_string : kind -> string

type exhaustion =
  | Timeout  (** the deadline passed *)
  | Cap of kind  (** a work-unit cap was reached *)
  | Cancelled  (** {!cancel} was called *)

val exhaustion_to_string : exhaustion -> string

exception Exhausted of exhaustion

type clock =
  | Wall  (** real time via [Unix.gettimeofday] *)
  | Virtual of int
      (** deterministic time: [n] work units define one second, so a
          timeout is really a total-work cap and budget-bounded runs are
          bit-reproducible *)

type t

val create :
  ?clock:clock ->
  ?timeout:float ->
  ?max_facts:int ->
  ?max_probes:int ->
  ?max_bdd_nodes:int ->
  ?max_samples:int ->
  ?max_steps:int ->
  ?parent:t ->
  unit ->
  t
(** [create ()] is unlimited; each option adds one constraint.
    [timeout] is in seconds on the chosen clock and must be positive.
    @raise Invalid_argument on a non-positive timeout or virtual rate,
    or a negative cap. *)

val unlimited : unit -> t

val child :
  ?clock:clock ->
  ?timeout:float ->
  ?max_facts:int ->
  ?max_probes:int ->
  ?max_bdd_nodes:int ->
  ?max_samples:int ->
  ?max_steps:int ->
  t ->
  t
(** [child parent] is [create ~parent]: spends propagate to [parent] and
    exhaustion of [parent] exhausts the child. *)

val spend : t -> kind -> int -> unit
(** Record [n] units of work of the given kind (and the same [n] on the
    virtual clock), on this budget and every ancestor.  Never raises on
    exhaustion — pair with {!checkpoint} or {!ok}. *)

val charge : t -> kind -> int -> unit
(** [spend] then [checkpoint]. *)

val refund : t -> kind -> int -> unit
(** Give back [n] units of the given kind, on this budget and every
    ancestor — the inverse of {!spend} for resources that are actually
    reclaimed (e.g. BDD nodes freed by a garbage collection, reported
    through [Bdd.manager]'s [on_free] hook).  Only the per-kind spend is
    reduced: the virtual clock keeps counting every unit ever spent, and
    a budget that already tripped stays tripped — collect before the cap,
    not after. *)

val checkpoint : t -> unit
(** @raise Exhausted if the budget (or an ancestor) is exhausted. *)

val ok : t -> bool
(** [true] while not exhausted.  Never raises — safe in worker domains. *)

val check : t -> (unit, exhaustion) result

val exhausted : t -> exhaustion option
(** The sticky cause, once tripped. *)

val cancel : t -> unit
(** Trip the budget from outside (idempotent; loses to an earlier trip). *)

val elapsed : t -> float
(** Seconds on the budget's own clock. *)

val spent : t -> kind -> int

val cap : t -> kind -> int option

val cap_remaining : t -> kind -> int option
(** [None] if uncapped, otherwise the units left before the cap trips. *)

val time_remaining : t -> float option
(** Seconds left before the tightest deadline across the ancestor chain
    expires, on each budget's own clock ([Wall] or [Virtual]); [None]
    when no deadline constrains this budget, [0.] once one has passed.
    This is what callers that are about to {e sleep} (retry backoff, the
    serving layer's admission queue) consult so a voluntary wait never
    overshoots a wall deadline. *)

val time_remaining_units : t -> int option
(** Work units left before a [Virtual] deadline (the tightest across the
    ancestor chain); [None] when no virtual deadline constrains this
    budget.  Lets an engine clamp a batch size up front instead of being
    interrupted mid-run — the key to deterministic partial results. *)

val describe : t -> string
(** One-line summary of limits, spends and trip cause.  Contains no
    wall-clock readings, so it is deterministic under a [Virtual]
    clock. *)
