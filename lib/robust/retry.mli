(** Capped exponential backoff with deterministic [Prng]-derived jitter.

    The whole delay schedule is a pure function of the policy and a
    seed: attempt [i] waits [min max_delay (base_delay * multiplier^i)]
    scaled by a jitter factor in [[1-jitter, 1+jitter]] drawn from
    [Prng.substream root i].  Retried computations are therefore
    bit-reproducible for a fixed seed. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay : float;  (** seconds before the first retry *)
  multiplier : float;  (** >= 1 *)
  max_delay : float;  (** per-retry ceiling before jitter *)
  jitter : float;  (** in [0, 1]: delay is scaled by 1 +- jitter * u *)
}

val default_policy : policy
(** 4 attempts, 10 ms base, doubling, 1 s cap, 25% jitter. *)

val delays : ?budget:Budget.t -> policy -> seed:int -> float list
(** The [max_attempts - 1] jittered sleep durations, in order.  Pure
    given the budget's current remaining time: with [?budget], the
    cumulative schedule is clamped to {!Budget.time_remaining}, so the
    chain as a whole never sleeps past the budget's wall (or virtual)
    deadline.  @raise Invalid_argument on an ill-formed policy. *)

type 'a outcome = ('a, Errors.t) result

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?budget:Budget.t ->
  ?retryable:(Errors.t -> bool) ->
  what:string ->
  seed:int ->
  (unit -> 'a) ->
  'a outcome
(** [run ~what ~seed f] keeps calling [f] until it succeeds, a
    non-[retryable] error occurs (default: everything is retryable), the
    attempt cap is reached, or [budget] is exhausted between attempts.
    Each backoff sleep is additionally clamped to the budget's
    {!Budget.time_remaining} at the moment it starts, so a retry chain
    under a wall deadline stops {e at} the deadline instead of
    overshooting it mid-sleep.  Exceptions from [f] are classified via
    {!Errors.of_exn}.  [sleep] defaults to [Unix.sleepf]; tests pass
    [ignore] to run the schedule without waiting.  Bumps the
    [robust.retry.*] counters. *)
