(* The resource-governed supervisor: degradation ladder
   lifted -> exact -> anytime -> Monte-Carlo under one shared budget.

   The lifted rung is the cheapest: for queries on the tractable side of
   the dichotomy it evaluates the safe plan on the truncated prefix in
   polynomial time (no BDD), certifying the same enclosure shape as the
   exact rung — which is then usually skipped as already converged.

   Soundness invariants, in one place:

   - only {e certified} enclosures enter the pool: a completed
     Approx_eval run, an anytime session's running bounds (valid even
     when [Interrupted]), or the partial enclosure a [Budget_exhausted]
     error carries.  Monte-Carlo intervals are statistical and only ever
     refine the point estimate.
   - pooled certificates are combined by intersection, which is sound
     because every pooled certificate bounds the same limit probability;
     for [Cmp] queries — where certificates at different truncation
     depths speak about different semantics — the anytime rung is
     skipped and only the exact rung (whose conditional-probability
     argument needs no padding) contributes.
   - an empty pool yields the trivial [0,1]: wide, never wrong.

   Determinism: rung seeds are [seed + rung index], the default [sleep]
   is a no-op, and Monte-Carlo results are domain-count independent by
   construction, so under a [Virtual]-clock budget the whole answer —
   provenance string included — is bit-identical across runs. *)

type engine = Lifted | Exact | Anytime | Monte_carlo | Batched | Delta

let engine_to_string = function
  | Lifted -> "lifted"
  | Exact -> "exact"
  | Anytime -> "anytime"
  | Monte_carlo -> "monte-carlo"
  | Batched -> "batched"
  | Delta -> "delta"

type outcome =
  | Certified of Interval.t
  | Partial of Interval.t * Errors.t
  | Estimated of Interval.t * float
  | Failed of Errors.t
  | Skipped of string

type attempt = { engine : engine; tries : int; outcome : outcome }

type provenance = {
  attempts : attempt list;
  stopped : string;
  budget : string;
}

type answer = {
  enclosure : Interval.t;
  estimate : float;
  provenance : provenance;
}

let c_queries = Stats.counter "robust.queries"
let c_degradations = Stats.counter "robust.degradations"
let c_budget_exhausted = Stats.counter "robust.budget_exhausted"

(* Same registry entry Retry.run bumps; read before/after a rung to
   attribute attempts to it. *)
let c_retry_attempts = Stats.counter "robust.retry.attempts"
let t_query = Stats.timer "robust.query"

let iv_to_string iv =
  Printf.sprintf "[%.9g, %.9g]" (Interval.lo iv) (Interval.hi iv)

let outcome_to_string = function
  | Certified iv -> "certified " ^ iv_to_string iv
  | Partial (iv, e) ->
    Printf.sprintf "partial %s after %s" (iv_to_string iv) (Errors.to_string e)
  | Estimated (iv, est) ->
    Printf.sprintf "estimate %.9g in %s" est (iv_to_string iv)
  | Failed e -> "failed: " ^ Errors.to_string e
  | Skipped why -> "skipped: " ^ why

let provenance_to_string p =
  String.concat "\n"
    (List.map
       (fun a ->
         Printf.sprintf "%-11s tries=%d %s" (engine_to_string a.engine)
           a.tries
           (outcome_to_string a.outcome))
       p.attempts
    @ [ "stopped: " ^ p.stopped; "budget: " ^ p.budget ])

let answer_to_string a =
  Printf.sprintf "P(Q) in %s (width %.9g), estimate %.9g\n%s"
    (iv_to_string a.enclosure)
    (Interval.width a.enclosure)
    a.estimate
    (provenance_to_string a.provenance)

let top = Interval.make 0.0 1.0

let all_rungs = [ Lifted; Exact; Anytime; Monte_carlo ]

let query ?budget ?(eps = 0.01) ?max_bdd_nodes ?max_facts ?bdd_cache_size
    ?bdd_gc_threshold ?(mc_samples = 20_000) ?(policy = Retry.default_policy)
    ?(sleep = fun (_ : float) -> ()) ?(domains = 1) ?(seed = 0)
    ?(rungs = all_rungs) src phi =
  if not (eps > 0.0 && eps < 0.5) then
    invalid_arg "Robust_eval.query: eps must lie in (0, 1/2)";
  if Fo.free_vars phi <> [] then
    invalid_arg "Robust_eval.query: query must be a sentence";
  let parent = match budget with Some b -> b | None -> Budget.unlimited () in
  Stats.incr c_queries;
  Stats.time t_query (fun () ->
      let cmp = Fo.has_cmp phi in
      let goal = 2.0 *. eps in
      let certified = ref [] in
      let pool iv = certified := iv :: !certified in
      let current () =
        match List.rev !certified with
        | [] -> top
        | iv :: rest ->
          List.fold_left
            (fun acc iv ->
              match Interval.intersect acc iv with
              | Some x -> x
              (* Disjoint certificates would mean an engine bug; keep the
                 narrower one rather than fabricating an empty set. *)
              | None ->
                if Interval.width iv < Interval.width acc then iv else acc)
            iv rest
      in
      let retryable = function
        | Errors.Engine_failure _ | Errors.Divergent_source _
        | Errors.Transport _ ->
          true
        | Errors.Parse _ | Errors.Model_invalid _ | Errors.Budget_exhausted _
        | Errors.Store _ ->
          false
      in
      let run_retried ~what ~rung f =
        let before = Stats.count c_retry_attempts in
        let r =
          Retry.run ~policy ~sleep ~budget:parent ~retryable ~what
            ~seed:(seed + rung) f
        in
        (Stdlib.max 1 (Stats.count c_retry_attempts - before), r)
      in
      let attempts = ref [] in
      let rung eng skip runner =
        (* Rungs excluded by the caller (the serving layer's load-shed
           ladder) are recorded as skipped, keeping the provenance shape
           stable under admission-control decisions. *)
        let skip () =
          if not (List.mem eng rungs) then Some "shed: rung disabled by caller"
          else skip ()
        in
        match skip () with
        | Some why ->
          attempts := { engine = eng; tries = 0; outcome = Skipped why } :: !attempts
        | None ->
          let tries, outcome = runner () in
          (match outcome with
          | Failed _ | Partial _ -> Stats.incr c_degradations
          | Certified _ | Estimated _ | Skipped _ -> ());
          attempts := { engine = eng; tries; outcome } :: !attempts
      in
      let common_skip () =
        if Interval.width (current ()) <= goal then Some "already converged"
        else if not (Budget.ok parent) then Some "budget exhausted"
        else None
      in
      rung Lifted
        (fun () ->
          if not (Safe_plan.is_safe phi) then
            Some
              "no lifted plan: hard side of the dichotomy (grounded rungs \
               take over)"
          else common_skip ())
        (fun () ->
          let tries, r =
            run_retried ~what:"robust.lifted" ~rung:0 (fun () ->
                let b = Budget.child ?max_facts parent in
                match Approx_eval.boolean_lifted_r ~budget:b src ~eps phi with
                | Ok res -> res.Approx_eval.bounds
                | Error e -> Errors.raise_error e)
          in
          match r with
          | Ok iv ->
            pool iv;
            (tries, Certified iv)
          | Error (Errors.Budget_exhausted { partial = Some iv; _ } as e) ->
            pool iv;
            (tries, Partial (iv, e))
          | Error e -> (tries, Failed e));
      rung Exact common_skip (fun () ->
          let tries, r =
            run_retried ~what:"robust.exact" ~rung:1 (fun () ->
                (* Kind caps are per-attempt child budgets: a blown node
                   cap fails this attempt, not the whole ladder. *)
                let b = Budget.child ?max_bdd_nodes ?max_facts parent in
                match
                  Approx_eval.boolean_r ~budget:b ?bdd_cache_size
                    ?bdd_gc_threshold src ~eps phi
                with
                | Ok res -> res.Approx_eval.bounds
                | Error e -> Errors.raise_error e)
          in
          match r with
          | Ok iv ->
            pool iv;
            (tries, Certified iv)
          | Error (Errors.Budget_exhausted { partial = Some iv; _ } as e) ->
            pool iv;
            (tries, Partial (iv, e))
          | Error e -> (tries, Failed e));
      rung Anytime
        (fun () ->
          if cmp then
            Some "Cmp query: anytime certificates target truncated semantics"
          else common_skip ())
        (fun () ->
          let tries, r =
            run_retried ~what:"robust.anytime" ~rung:2 (fun () ->
                let b = Budget.child ?max_bdd_nodes ?max_facts parent in
                let s =
                  Anytime.create ~eps ~budget:b ?cache_size:bdd_cache_size
                    ?gc_threshold:bdd_gc_threshold src phi
                in
                let reason, _ = Anytime.run s in
                (reason, Anytime.bounds s))
          in
          match r with
          | Ok (Anytime.Interrupted cause, iv) ->
            pool iv;
            ( tries,
              Partial
                ( iv,
                  Errors.Budget_exhausted
                    {
                      what = "Robust_eval: anytime session interrupted";
                      exhaustion = cause;
                      partial = Some iv;
                    } ) )
          | Ok (_, iv) ->
            pool iv;
            (tries, Certified iv)
          | Error e -> (tries, Failed e));
      rung Monte_carlo common_skip (fun () ->
          let tries, r =
            run_retried ~what:"robust.mc" ~rung:3 (fun () ->
                let cti =
                  match Countable_ti.create_r src with
                  | Ok t -> t
                  | Error e -> Errors.raise_error e
                in
                Mc_eval.boolean ~budget:parent ~domains ~seed
                  ~samples:mc_samples (Mc_eval.Ti cti) phi)
          in
          match r with
          | Ok res ->
            (tries, Estimated (res.Mc_eval.bounds, res.Mc_eval.estimate))
          | Error e -> (tries, Failed e));
      let enclosure = current () in
      let stopped =
        if Interval.width enclosure <= goal then "converged"
        else begin
          match Budget.exhausted parent with
          | Some cause ->
            Stats.incr c_budget_exhausted;
            Printf.sprintf "budget exhausted (%s)"
              (Budget.exhaustion_to_string cause)
          | None -> "ladder exhausted"
        end
      in
      let estimate =
        let mc =
          List.find_map
            (fun a ->
              match a.outcome with Estimated (_, e) -> Some e | _ -> None)
            !attempts
        in
        match mc with
        | Some e ->
          Float.max (Interval.lo enclosure)
            (Float.min (Interval.hi enclosure) e)
        | None -> Interval.mid enclosure
      in
      {
        enclosure;
        estimate;
        provenance =
          {
            attempts = List.rev !attempts;
            stopped;
            budget = Budget.describe parent;
          };
      })

let c_batch_queries = Stats.counter "robust.batch.queries"
let c_batch_fallbacks = Stats.counter "robust.batch.fallbacks"

let query_batch ?budget ?(eps = 0.01) ?max_bdd_nodes ?max_facts
    ?bdd_cache_size ?bdd_gc_threshold ?mc_samples ?policy ?sleep
    ?(domains = 1) ?seed src phis =
  if not (eps > 0.0 && eps < 0.5) then
    invalid_arg "Robust_eval.query_batch: eps must lie in (0, 1/2)";
  if domains < 1 then
    invalid_arg "Robust_eval.query_batch: domains must be positive";
  List.iter
    (fun phi ->
      if Fo.free_vars phi <> [] then
        invalid_arg "Robust_eval.query_batch: queries must be sentences")
    phis;
  let parent = match budget with Some b -> b | None -> Budget.unlimited () in
  let qs = Array.of_list phis in
  Stats.add c_batch_queries (Array.length qs);
  (* Batched fast path: one truncation certificate, one padded domain
     and one shared BDD store serve every member, all under one child of
     the shared parent budget.  Any failure (divergent source, budget
     trip inside a worker, engine error) falls back to the per-member
     degradation ladder below — still governed by the same parent, so
     the batch cannot overspend its way past the caller's caps. *)
  let batch_run () =
    match Approx_eval.truncation_r src ~eps with
    | Error e -> Error e
    | Ok (n, tail) ->
      Errors.protect ~what:"Robust_eval.query_batch" (fun () ->
          let table = Fact_source.truncate src n in
          let tail =
            match Fact_source.tail_mass src n with
            | Some t -> Float.min t tail
            | None -> tail
          in
          let om = Approx_eval.omega_bounds_of_tail tail in
          let b = Budget.child ?max_bdd_nodes ?max_facts parent in
          let r =
            Batch_eval.boolean
              ~tick:(fun () -> Budget.charge b Budget.Bdd_nodes 1)
              ~on_free:(fun k -> Budget.refund b Budget.Bdd_nodes k)
              ?cache_size:bdd_cache_size ?gc_threshold:bdd_gc_threshold
              ~domains table qs
          in
          (r, om))
  in
  let fallback i err =
    (* Per-member ladder under the same parent budget; the failed batch
       attempt stays first in the member's provenance. *)
    Stats.incr c_batch_fallbacks;
    let a =
      query ~budget:parent ~eps ?max_bdd_nodes ?max_facts ?bdd_cache_size
        ?bdd_gc_threshold ?mc_samples ?policy ?sleep ~domains ?seed src
        qs.(i)
    in
    let batched = { engine = Batched; tries = 1; outcome = Failed err } in
    {
      a with
      provenance =
        { a.provenance with attempts = batched :: a.provenance.attempts };
    }
  in
  match batch_run () with
  | Ok (r, om) ->
    List.mapi
      (fun i (_ : Fo.t) ->
        let m = r.Batch_eval.members.(i) in
        let iv = Approx_eval.enclosure m.Batch_eval.prob om in
        let outcome = Certified iv in
        {
          enclosure = iv;
          estimate = Interval.mid iv;
          provenance =
            {
              attempts = [ { engine = Batched; tries = 1; outcome } ];
              stopped =
                (match m.Batch_eval.route with
                | Batch_eval.Lifted -> "batch converged (lifted)"
                | Batch_eval.Compiled _ -> "batch converged (compiled)"
                | Batch_eval.Duplicate j ->
                  Printf.sprintf "batch converged (duplicate of member %d)" j);
              budget = Budget.describe parent;
            };
        })
      phis
  | Error err -> List.mapi (fun i (_ : Fo.t) -> fallback i err) phis

let c_session_queries = Stats.counter "robust.delta.queries"

(* The incremental rung: a live delta session already holds the compiled
   lineage and a certified interval count, so "running the ladder" is
   one memoized WMC fold — no compilation, no truncation re-derivation.
   The session's interval (interval carrier: outward-rounded float
   arithmetic around the exact rational count) is widened by the
   session's tail certificate through the same conditional-probability
   argument the truncation rungs use, so the soundness contract is
   unchanged: the enclosure contains the true limit probability. *)
let query_session ?(eps = 0.01) s =
  if not (eps > 0.0 && eps < 0.5) then
    invalid_arg "Robust_eval.query_session: eps must lie in (0, 1/2)";
  Stats.incr c_session_queries;
  let epoch = Delta_eval.Certified.epoch s in
  let outcome, enclosure =
    match
      Errors.protect ~what:"Robust_eval.query_session" (fun () ->
          let iv = Interval.clamp01 (Delta_eval.Certified.prob s) in
          let om =
            Approx_eval.omega_bounds_of_tail (Delta_eval.Certified.tail s)
          in
          Approx_eval.enclosure_interval iv om)
    with
    | Ok iv -> (Certified iv, iv)
    | Error e -> (Failed e, top)
  in
  let stopped =
    match outcome with
    | Failed _ -> Printf.sprintf "delta session failed at epoch %d" epoch
    | _ when Interval.width enclosure <= 2.0 *. eps ->
      Printf.sprintf "delta session converged (epoch %d)" epoch
    | _ ->
      (* A wide answer here means the tail certificate dominates — the
         session's own count is exact up to float rounding. *)
      Printf.sprintf "delta session answered (epoch %d; tail-limited)" epoch
  in
  {
    enclosure;
    estimate = Interval.mid enclosure;
    provenance =
      {
        attempts = [ { engine = Delta; tries = 1; outcome } ];
        stopped;
        budget = "none (session-resident diagram)";
      };
  }
