(* Structured error taxonomy for the evaluation stack.

   Result-returning engine entry points ([Approx_eval.boolean_r],
   [Completion.query_prob_r], [Countable_ti.create_r], ...) produce
   these instead of the historical bare [invalid_arg] walls, so a
   supervisor can tell "your input is malformed" (give up, exit 2) from
   "the model is fine but resources ran out" (degrade, keep the partial
   enclosure) from "this engine broke" (fall through the ladder). *)

type t =
  | Parse of { what : string; file : string option; line : int option;
               msg : string }
  | Model_invalid of { what : string; msg : string }
  | Divergent_source of { source : string; probed_to : int }
  | Budget_exhausted of { what : string; exhaustion : Budget.exhaustion;
                          partial : Interval.t option }
  | Engine_failure of { engine : string; msg : string }
  | Transport of { endpoint : string; msg : string }
  | Store of { path : string; region : string; msg : string }

exception Error of t

let to_string = function
  | Parse { what; file; line; msg } ->
    let where =
      match (file, line) with
      | Some f, Some l -> Printf.sprintf "%s:%d: " f l
      | Some f, None -> f ^ ": "
      | None, Some l -> Printf.sprintf "line %d: " l
      | None, None -> ""
    in
    Printf.sprintf "parse error (%s): %s%s" what where msg
  | Model_invalid { what; msg } ->
    Printf.sprintf "invalid model (%s): %s" what msg
  | Divergent_source { source; probed_to } ->
    Printf.sprintf
      "divergent source (%s): certificate still above 1 after probing %d \
       facts; no tuple-independent PDB exists"
      source probed_to
  | Budget_exhausted { what; exhaustion; partial } ->
    Printf.sprintf "budget exhausted (%s): %s%s" what
      (Budget.exhaustion_to_string exhaustion)
      (match partial with
      | None -> ""
      | Some iv ->
        Printf.sprintf "; best enclosure [%.8f, %.8f]" (Interval.lo iv)
          (Interval.hi iv))
  | Engine_failure { engine; msg } ->
    Printf.sprintf "engine failure (%s): %s" engine msg
  | Transport { endpoint; msg } ->
    Printf.sprintf "transport failure (%s): %s" endpoint msg
  | Store { path; region; msg } ->
    Printf.sprintf "store error (%s): %s: %s" path region msg

let raise_error e = raise (Error e)

let exit_code = function
  | Parse _ | Model_invalid _ | Divergent_source _ | Store _ -> 2
  | Budget_exhausted _ -> 3
  | Engine_failure _ | Transport _ -> 1

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Classify a legacy exception from the pre-result entry points.  The
   substring matches pin down the two historical divergence messages of
   [Approx_eval.truncate_or_fail] / [Fact_source.converges] users. *)
let of_exn ~what = function
  | Error e -> e
  | Budget.Exhausted ex ->
    Budget_exhausted { what; exhaustion = ex; partial = None }
  | Invalid_argument msg when contains_substring msg "diverges" ->
    Divergent_source { source = what; probed_to = 0 }
  | Invalid_argument msg -> Model_invalid { what; msg }
  | Sys_error msg -> Parse { what; file = None; line = None; msg }
  | Failure msg -> Engine_failure { engine = what; msg }
  | Stack_overflow ->
    Engine_failure { engine = what; msg = "stack overflow" }
  | exn -> Engine_failure { engine = what; msg = Printexc.to_string exn }

let protect ~what f =
  match f () with
  | v -> Ok v
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception exn -> Stdlib.Error (of_exn ~what exn)
