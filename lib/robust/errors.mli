(** Structured error taxonomy for the evaluation stack.

    Buckets chosen so a supervisor can pick a different reaction
    for each: [Parse] and [Model_invalid] are the user's problem (report
    and exit); [Divergent_source] means no tuple-independent PDB exists
    for the enumeration, so no engine can ever succeed;
    [Budget_exhausted] is the normal "anytime" stop and carries the best
    certified enclosure found so far; [Engine_failure] means this engine
    broke but another might not.  [Transport] is the serving layer's
    class: a frame, connection or service fault between a client and a
    resident server — transient by nature, so retry wrappers treat it
    like [Engine_failure] (back off and try again).  [Store] is the
    persistence layer's class: a packed on-disk table failed its
    magic/version/checksum/structure validation, so it must be
    re-packed — treated like a user input problem (exit 2). *)

type t =
  | Parse of {
      what : string;  (** which parser: "ti_table", "query", ... *)
      file : string option;
      line : int option;  (** 1-based *)
      msg : string;
    }
  | Model_invalid of { what : string; msg : string }
  | Divergent_source of {
      source : string;
      probed_to : int;  (** how deep the certificate was probed *)
    }
  | Budget_exhausted of {
      what : string;
      exhaustion : Budget.exhaustion;
      partial : Interval.t option;
          (** narrowest certified enclosure obtained before stopping *)
    }
  | Engine_failure of { engine : string; msg : string }
  | Transport of {
      endpoint : string;  (** socket path / peer the fault was seen on *)
      msg : string;
    }
  | Store of {
      path : string;  (** the pack file that failed validation *)
      region : string;
          (** which part was rejected: "header", "checksum", "facts", ... *)
      msg : string;
    }
      (** A persistent pack failed to load: torn write, truncation, bit
          rot, version skew.  Like [Parse] it is an input problem (exit
          2), but it locates the damage inside the binary file rather
          than at a text line. *)

exception Error of t

val to_string : t -> string
(** One line, no backtrace; suitable for stderr. *)

val raise_error : t -> 'a

val exit_code : t -> int
(** CLI convention: user errors 2, budget exhaustion 3, engine or
    transport failure 1. *)

val contains_substring : string -> string -> bool
(** [contains_substring hay needle] — used by the {!of_exn} classifier
    and by callers refining its verdict on their own messages. *)

val of_exn : what:string -> exn -> t
(** Classify a legacy exception ([Invalid_argument], [Sys_error],
    [Budget.Exhausted], ...) from a pre-result entry point. *)

val protect : what:string -> (unit -> 'a) -> ('a, t) result
(** Run [f], classifying any exception via {!of_exn}.  [Out_of_memory]
    and [Sys.Break] are re-raised ([Stack_overflow] is caught: a BDD
    blow-up should degrade, not crash). *)
