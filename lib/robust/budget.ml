(* Composable evaluation budgets: a wall-clock (or deterministic virtual)
   deadline plus per-kind work-unit caps behind one cooperative
   cancellation token.

   Hot loops call {!checkpoint} (engine entry points call {!check}); both
   consult the same sticky trip state, so the first exhaustion observed —
   a cap, the deadline, or an explicit {!cancel} from another domain — is
   the one every later probe reports.  Work spends and the trip flag are
   atomics: Monte-Carlo worker domains spend and poll the same budget the
   coordinating domain created.

   The [Virtual] clock makes deadline-bounded runs reproducible: elapsed
   time is defined as total work units over a fixed rate, so a "100 ms"
   budget expires after exactly the same spend on every run — the device
   behind the bit-identical provenance guarantee of [Robust_eval]. *)

type kind = Facts | Probes | Bdd_nodes | Samples | Steps

let kind_to_string = function
  | Facts -> "facts"
  | Probes -> "probes"
  | Bdd_nodes -> "bdd_nodes"
  | Samples -> "samples"
  | Steps -> "steps"

let kinds = [ Facts; Probes; Bdd_nodes; Samples; Steps ]
let n_kinds = List.length kinds

let kind_index = function
  | Facts -> 0
  | Probes -> 1
  | Bdd_nodes -> 2
  | Samples -> 3
  | Steps -> 4

type exhaustion = Timeout | Cap of kind | Cancelled

let exhaustion_to_string = function
  | Timeout -> "timeout"
  | Cap k -> "cap:" ^ kind_to_string k
  | Cancelled -> "cancelled"

exception Exhausted of exhaustion

type clock = Wall | Virtual of int

type t = {
  clock : clock;
  timeout : float option; (* seconds, on whichever clock *)
  wall_start : float;
  caps : int array; (* max_int = uncapped *)
  spent : int Atomic.t array;
  work : int Atomic.t; (* total units ever spent; drives [Virtual] *)
  tripped : exhaustion option Atomic.t; (* sticky first exhaustion *)
  parent : t option;
}

let create ?(clock = Wall) ?timeout ?max_facts ?max_probes ?max_bdd_nodes
    ?max_samples ?max_steps ?parent () =
  (match timeout with
  | Some s when not (s > 0.0) ->
    invalid_arg "Budget.create: timeout must be positive"
  | _ -> ());
  (match clock with
  | Virtual u when u <= 0 ->
    invalid_arg "Budget.create: virtual clock rate must be positive"
  | _ -> ());
  let caps = Array.make n_kinds max_int in
  let set k v =
    match v with
    | None -> ()
    | Some c when c < 0 -> invalid_arg "Budget.create: negative cap"
    | Some c -> caps.(kind_index k) <- c
  in
  set Facts max_facts;
  set Probes max_probes;
  set Bdd_nodes max_bdd_nodes;
  set Samples max_samples;
  set Steps max_steps;
  {
    clock;
    timeout;
    wall_start = Unix.gettimeofday ();
    caps;
    spent = Array.init n_kinds (fun _ -> Atomic.make 0);
    work = Atomic.make 0;
    tripped = Atomic.make None;
    parent;
  }

let unlimited () = create ()

let child ?clock ?timeout ?max_facts ?max_probes ?max_bdd_nodes ?max_samples
    ?max_steps parent =
  create ?clock ?timeout ?max_facts ?max_probes ?max_bdd_nodes ?max_samples
    ?max_steps ~parent ()

let elapsed t =
  match t.clock with
  | Wall -> Unix.gettimeofday () -. t.wall_start
  | Virtual ups -> float_of_int (Atomic.get t.work) /. float_of_int ups

let spent t kind = Atomic.get t.spent.(kind_index kind)

let cap t kind =
  let c = t.caps.(kind_index kind) in
  if c = max_int then None else Some c

let trip t e =
  if Atomic.get t.tripped = None then
    ignore (Atomic.compare_and_set t.tripped None (Some e));
  match Atomic.get t.tripped with Some e -> e | None -> assert false

let rec exhausted t =
  match Atomic.get t.tripped with
  | Some e -> Some e
  | None ->
    let cap_hit =
      List.find_map
        (fun k ->
          let i = kind_index k in
          if t.caps.(i) < max_int && Atomic.get t.spent.(i) >= t.caps.(i) then
            Some (Cap k)
          else None)
        kinds
    in
    let hit =
      match cap_hit with
      | Some _ as e -> e
      | None -> (
        match t.timeout with
        | Some s when elapsed t >= s -> Some Timeout
        | _ -> (
          match t.parent with
          | Some p -> exhausted p
          | None -> None))
    in
    Option.map (trip t) hit

let ok t = exhausted t = None
let check t = match exhausted t with None -> Ok () | Some e -> Error e

let checkpoint t =
  match exhausted t with None -> () | Some e -> raise (Exhausted e)

let cancel t = ignore (trip t Cancelled)

let spend t kind n =
  if n < 0 then invalid_arg "Budget.spend: negative amount";
  let i = kind_index kind in
  let rec add t =
    ignore (Atomic.fetch_and_add t.spent.(i) n);
    ignore (Atomic.fetch_and_add t.work n);
    match t.parent with Some p -> add p | None -> ()
  in
  add t

let charge t kind n =
  spend t kind n;
  checkpoint t

(* Refunds subtract from the per-kind spend only: [work] keeps counting
   every unit ever spent so the [Virtual] clock stays monotone, and a
   sticky trip stays tripped — governed evaluators are expected to
   collect garbage proactively (before the cap), not to resurrect an
   exhausted run. *)
let refund t kind n =
  if n < 0 then invalid_arg "Budget.refund: negative amount";
  let i = kind_index kind in
  let rec sub t =
    ignore (Atomic.fetch_and_add t.spent.(i) (-n));
    match t.parent with Some p -> sub p | None -> ()
  in
  sub t

let cap_remaining t kind =
  Option.map (fun c -> Stdlib.max 0 (c - spent t kind)) (cap t kind)

let time_remaining t =
  let own t =
    Option.map (fun s -> Float.max 0.0 (s -. elapsed t)) t.timeout
  in
  let rec go t =
    let mine = own t in
    match t.parent with
    | None -> mine
    | Some p -> (
      match (mine, go p) with
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as a), None -> a
      | None, b -> b)
  in
  go t

let time_remaining_units t =
  let own t =
    match (t.clock, t.timeout) with
    | Virtual ups, Some s ->
      let total = int_of_float (s *. float_of_int ups) in
      Some (Stdlib.max 0 (total - Atomic.get t.work))
    | _ -> None
  in
  let rec go t =
    let mine = own t in
    match t.parent with
    | None -> mine
    | Some p -> (
      match (mine, go p) with
      | Some a, Some b -> Some (Stdlib.min a b)
      | (Some _ as a), None -> a
      | None, b -> b)
  in
  go t

let describe t =
  (* Deterministic under a [Virtual] clock: no wall-clock reading.  Used
     verbatim in [Robust_eval] provenance records. *)
  let caps =
    List.filter_map
      (fun k ->
        Option.map
          (fun c -> Printf.sprintf "%s<=%d" (kind_to_string k) c)
          (cap t k))
      kinds
  in
  let caps =
    match (t.clock, t.timeout) with
    | Virtual ups, Some s ->
      Printf.sprintf "virtual %gs@%d/s" s ups :: caps
    | Virtual ups, None -> Printf.sprintf "virtual@%d/s" ups :: caps
    | Wall, Some s -> Printf.sprintf "wall %gs" s :: caps
    | Wall, None -> caps
  in
  let spends =
    List.filter_map
      (fun k ->
        let s = spent t k in
        if s = 0 then None
        else Some (Printf.sprintf "%s=%d" (kind_to_string k) s))
      kinds
  in
  Printf.sprintf "budget{%s; spent %s%s}"
    (if caps = [] then "unlimited" else String.concat ", " caps)
    (if spends = [] then "nothing" else String.concat ", " spends)
    (match Atomic.get t.tripped with
    | None -> ""
    | Some e -> "; " ^ exhaustion_to_string e)
