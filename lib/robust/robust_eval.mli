(** The resource-governed evaluation supervisor: one entry point that
    runs the degradation ladder {e lifted → exact → anytime →
    Monte-Carlo} under a single shared {!Budget.t}, retries transient faults with
    {!Retry.run}, and always returns the narrowest {e certified}
    enclosure it obtained, together with provenance saying which engines
    ran, why each stopped, and what the budget saw.

    The lifted rung runs first: for queries on the tractable side of
    the Dalvi-Suciu dichotomy it evaluates the certified safe plan on
    the truncated prefix in polynomial time (no knowledge compilation),
    and the exact rung is then usually skipped as already converged;
    queries without a safe plan skip the rung instead.

    Soundness contract: {!answer.enclosure} always contains the true
    [P(Q)].  Each certified rung (lifted/exact truncation, anytime
    session)
    produces a sound enclosure even when interrupted — the engines were
    built so that a budget trip surfaces the last {e completed}
    certificate — and rungs are combined by intersection only for
    [Cmp]-free queries (where {!Fo.has_cmp} says all certificates bound
    the same limit probability); otherwise the narrowest single
    certificate is kept.  The Monte-Carlo rung is statistical, so it only
    refines {!answer.estimate}, never the enclosure.  With no surviving
    certificate the enclosure is the trivial [\[0,1\]] — wide, never
    wrong.

    Determinism: with a [Virtual]-clock budget, the default no-op
    [sleep], and a fixed [seed], the answer {e and} its rendered
    provenance are bit-identical across runs and domain counts, including
    under any {!Faulty_source} schedule. *)

type engine = Lifted | Exact | Anytime | Monte_carlo | Batched | Delta

val engine_to_string : engine -> string

type outcome =
  | Certified of Interval.t  (** the rung completed with this enclosure *)
  | Partial of Interval.t * Errors.t
      (** the rung was cut short (budget) but salvaged this sound,
          wider-than-hoped enclosure *)
  | Estimated of Interval.t * float
      (** Monte-Carlo: a confidence interval and point estimate —
          statistical, kept out of the certified enclosure *)
  | Failed of Errors.t
  | Skipped of string

type attempt = {
  engine : engine;
  tries : int;  (** attempts made, including retries; 0 when skipped *)
  outcome : outcome;
}

type provenance = {
  attempts : attempt list;  (** chronological, one per ladder rung *)
  stopped : string;  (** why the ladder ended *)
  budget : string;  (** {!Budget.describe} after the run *)
}

val provenance_to_string : provenance -> string
(** Multi-line rendering; deterministic (no wall-clock readings). *)

type answer = {
  enclosure : Interval.t;  (** certified; contains the true [P(Q)] *)
  estimate : float;
      (** best point estimate: the Monte-Carlo estimate clamped into the
          enclosure when that rung ran, the enclosure midpoint
          otherwise *)
  provenance : provenance;
}

val answer_to_string : answer -> string

val query :
  ?budget:Budget.t ->
  ?eps:float ->
  ?max_bdd_nodes:int ->
  ?max_facts:int ->
  ?bdd_cache_size:int ->
  ?bdd_gc_threshold:int ->
  ?mc_samples:int ->
  ?policy:Retry.policy ->
  ?sleep:(float -> unit) ->
  ?domains:int ->
  ?seed:int ->
  ?rungs:engine list ->
  Fact_source.t ->
  Fo.t ->
  answer
(** Evaluate a Boolean query.  Defaults: [budget] unlimited,
    [eps = 0.01], [mc_samples = 20_000], [policy =
    Retry.default_policy], [sleep] a no-op (pass [Unix.sleepf] to
    actually back off), [domains = 1] (Monte-Carlo parallelism),
    [seed = 0].

    [budget] is shared by the whole ladder: timeouts and global caps set
    on it bound the total run.  [max_bdd_nodes] / [max_facts] are
    {e per-attempt} caps, realized as child budgets, so one rung blowing
    its node cap does not condemn the rungs after it.  A rung whose
    budget trips still contributes its partial certificate.

    [bdd_cache_size] / [bdd_gc_threshold] tune the BDD kernels of the
    exact and anytime rungs (operation-cache entries and allocations
    between garbage collections, see {!Bdd.manager}); with GC enabled,
    swept nodes are refunded so [max_bdd_nodes] caps {e live} nodes.

    [rungs] restricts which ladder rungs may run (default: all of
    [Lifted; Exact; Anytime; Monte_carlo]).  This is the serving
    layer's load-shedding knob: under pressure the admission controller
    passes [\[Lifted; Monte_carlo\]] so a request skips compilation
    entirely and pays only a polynomial plan or a reduced sampling run.
    Excluded rungs appear in the provenance as skipped; the soundness
    contract is unchanged (fewer certificates only widen the
    enclosure).

    Never raises on faults or exhaustion — those come back in the
    provenance.  @raise Invalid_argument only on caller errors: [eps]
    outside [(0, 1/2)] or a query with free variables. *)

val query_batch :
  ?budget:Budget.t ->
  ?eps:float ->
  ?max_bdd_nodes:int ->
  ?max_facts:int ->
  ?bdd_cache_size:int ->
  ?bdd_gc_threshold:int ->
  ?mc_samples:int ->
  ?policy:Retry.policy ->
  ?sleep:(float -> unit) ->
  ?domains:int ->
  ?seed:int ->
  Fact_source.t ->
  Fo.t list ->
  answer list
(** Evaluate a whole batch of Boolean queries under {e one} shared
    parent budget, positionally aligned with the input.

    The fast path derives a single truncation certificate for the
    source, then hands the prefix table and every member to
    {!Batch_eval}: one padded domain, one shared BDD store per worker
    shard ([domains] fans the shards across OCaml 5 domains without
    changing exact results), safe members answered by the lifted engine
    without compilation.  Each member's enclosure is the usual
    conditional-probability argument around its exact truncated
    probability, and its provenance carries a single [Batched] attempt
    saying how the member was routed (lifted / compiled / duplicate).

    If the batched path fails — divergent source, budget exhaustion
    (the [Bdd_nodes]/[Facts] caps become one child budget for the whole
    batch), or an engine fault — every member falls back to the full
    per-member {!query} ladder under the {e same} parent budget, with
    the failed [Batched] attempt kept first in its provenance; the
    soundness contract of {!query} (the enclosure always contains the
    true probability) is therefore preserved member-wise.

    @raise Invalid_argument on the same caller errors as {!query},
    or [domains < 1]. *)

val query_session : ?eps:float -> Delta_eval.Certified.t -> answer
(** Answer from a live {!Delta_eval} session instead of running the
    ladder: the session already holds the compiled lineage, so the
    answer is one memoized WMC fold over the slice of the diagram the
    last delta dirtied.  The session's interval count is widened by its
    certified tail mass through the same conditional-probability
    argument as the truncation rungs, so {!answer.enclosure} still
    contains the true limit probability; the provenance carries a
    single [Delta] attempt.  [eps] (default [0.01]) only labels the
    stop reason ([converged] versus [tail-limited]) — the enclosure is
    always the narrowest the session certifies.

    This is the serving layer's streaming-update path: on an update the
    resident service patches the session and re-answers here, paying
    only for the changed slice instead of a fresh ladder run.

    @raise Invalid_argument if [eps] lies outside [(0, 1/2)]. *)
