(* Capped exponential backoff with deterministic jitter.

   The delay schedule is a pure function of (policy, seed): attempt [i]
   sleeps min(max_delay, base * multiplier^i) scaled by a jitter factor
   drawn from [Prng.substream root i].  Nothing reads the wall clock or
   a global generator, so a retried computation is bit-reproducible —
   the property the fault-injection suite pins down. *)

let c_attempts = Stats.counter "robust.retry.attempts"
let c_retries = Stats.counter "robust.retry.retries"
let c_gave_up = Stats.counter "robust.retry.gave_up"

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default_policy =
  { max_attempts = 4; base_delay = 0.01; multiplier = 2.0; max_delay = 1.0;
    jitter = 0.25 }

let validate p =
  if p.max_attempts < 1 then
    invalid_arg "Retry: max_attempts must be at least 1";
  if not (p.base_delay >= 0.0) then
    invalid_arg "Retry: base_delay must be nonnegative";
  if not (p.multiplier >= 1.0) then
    invalid_arg "Retry: multiplier must be at least 1";
  if not (p.max_delay >= 0.0) then
    invalid_arg "Retry: max_delay must be nonnegative";
  if not (p.jitter >= 0.0 && p.jitter <= 1.0) then
    invalid_arg "Retry: jitter must lie in [0, 1]"

let delays ?budget policy ~seed =
  validate policy;
  let root = Prng.create ~seed () in
  let raw =
    List.init
      (policy.max_attempts - 1)
      (fun i ->
        let raw =
          Float.min policy.max_delay
            (policy.base_delay *. (policy.multiplier ** float_of_int i))
        in
        let u = Prng.float (Prng.substream root i) in
        raw *. (1.0 -. policy.jitter +. (2.0 *. policy.jitter *. u)))
  in
  (* Deadline-aware clamp: the cumulative schedule never exceeds the
     budget's remaining time, so a retry chain cannot voluntarily sleep
     past a wall deadline it was asked to respect. *)
  match Option.bind budget Budget.time_remaining with
  | None -> raw
  | Some remaining ->
    let left = ref remaining in
    List.map
      (fun d ->
        let d = Float.min d !left in
        left := !left -. d;
        d)
      raw

type 'a outcome = ('a, Errors.t) result

let run ?(policy = default_policy) ?(sleep = Unix.sleepf) ?budget
    ?(retryable = fun _ -> true) ~what ~seed f =
  validate policy;
  let delays = delays policy ~seed in
  let budget_ok () =
    match budget with None -> true | Some b -> Budget.ok b
  in
  (* Re-read the remaining time just before each sleep: the attempt
     itself consumed some of the allowance, and the clamp must reflect
     what is left {e now}, not what the schedule assumed up front. *)
  let clamp d =
    match Option.bind budget Budget.time_remaining with
    | None -> d
    | Some remaining -> Float.min d (Float.max 0.0 remaining)
  in
  let rec go attempt delays =
    Stats.incr c_attempts;
    match Errors.protect ~what f with
    | Ok v -> Ok v
    | Error e -> (
      let try_again =
        retryable e && attempt < policy.max_attempts && budget_ok ()
      in
      match (try_again, delays) with
      | true, d :: rest ->
        Stats.incr c_retries;
        let d = clamp d in
        if d > 0.0 then sleep d;
        go (attempt + 1) rest
      | _ ->
        if retryable e && attempt >= policy.max_attempts then
          Stats.incr c_gave_up;
        Error e)
  in
  go 1 delays
