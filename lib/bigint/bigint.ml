(* Arbitrary-precision integers.

   Representation: a sign in {-1, 0, 1} and a little-endian magnitude in
   base 2^30 with no leading zero limb.  The magnitude is empty exactly
   when the sign is 0.  All limb products fit in a 63-bit native int
   (30 + 30 = 60 bits), which is what makes the schoolbook and Knuth-D
   inner loops overflow-free. *)

type t = { sign : int; mag : int array }

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

(* ------------------------------------------------------------------ *)
(* Magnitude helpers (arrays of limbs, little-endian, may carry leading
   zeros only transiently inside an operation).                         *)
(* ------------------------------------------------------------------ *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  mag_normalize r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr base_bits
        done;
        (* Propagate the final carry; it can ripple at most once into a
           limb that is still below base. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    mag_normalize r
  end

let karatsuba_threshold = 32

(* Split [a] at limb [k] into (low, high). *)
let mag_split a k =
  let la = Array.length a in
  if la <= k then (a, [||])
  else (mag_normalize (Array.sub a 0 k), Array.sub a k (la - k))

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then
    mag_mul_school a b
  else begin
    let k = (Stdlib.max la lb + 1) / 2 in
    let a0, a1 = mag_split a k and b0, b1 = mag_split b k in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 = mag_mul (mag_add a0 a1) (mag_add b0 b1) in
    let z1 = mag_sub (mag_sub z1 z0) z2 in
    let shift m s =
      let lm = Array.length m in
      if lm = 0 then [||]
      else begin
        let r = Array.make (lm + s) 0 in
        Array.blit m 0 r s lm; r
      end
    in
    mag_add z0 (mag_add (shift z1 k) (shift z2 (2 * k)))
  end

(* Shift a magnitude left by [s] bits, 0 <= s < base_bits. *)
let mag_shift_left_small a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land mask;
      carry := v lsr base_bits
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

let mag_shift_right_small a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    let carry = ref 0 in
    for i = la - 1 downto 0 do
      r.(i) <- (a.(i) lsr s) lor (!carry lsl (base_bits - s));
      carry := a.(i) land ((1 lsl s) - 1)
    done;
    mag_normalize r
  end

(* Division of a magnitude by a single positive limb. *)
let mag_divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

(* Knuth algorithm D.  Requires Array.length v >= 2 and u >= v. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  (* Normalize so the top limb of v has its high bit set. *)
  let s =
    let top = v.(n - 1) in
    let rec go s = if top lsl s land (base lsr 1) <> 0 then s else go (s + 1) in
    go 0
  in
  let v' = mag_shift_left_small v s in
  let v' = if Array.length v' < n then Array.append v' [| 0 |] else v' in
  let u' =
    let t = mag_shift_left_small u s in
    let lt = Array.length t in
    if lt < m + n + 1 then Array.append t (Array.make (m + n + 1 - lt) 0)
    else t
  in
  let q = Array.make (m + 1) 0 in
  let vn1 = v'.(n - 1) and vn2 = v'.(n - 2) in
  for j = m downto 0 do
    let num = (u'.(j + n) lsl base_bits) lor u'.(j + n - 1) in
    let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
    let continue = ref true in
    while !continue do
      if !qhat >= base || !qhat * vn2 > (!rhat lsl base_bits) lor u'.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* Multiply and subtract: u'[j .. j+n] -= qhat * v'. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v'.(i)) + !carry in
      carry := p lsr base_bits;
      let sub = u'.(i + j) - (p land mask) - !borrow in
      if sub < 0 then begin u'.(i + j) <- sub + base; borrow := 1 end
      else begin u'.(i + j) <- sub; borrow := 0 end
    done;
    let sub = u'.(j + n) - !carry - !borrow in
    if sub < 0 then begin
      (* qhat was one too large: add v' back.  [sub] can be as low as
         [-(base+1)] (carry can reach [base]), so reduce modulo base via
         a double offset rather than a single one. *)
      u'.(j + n) <- (sub + (base * 2)) land mask;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let t = u'.(i + j) + v'.(i) + !c in
        u'.(i + j) <- t land mask;
        c := t lsr base_bits
      done;
      u'.(j + n) <- (u'.(j + n) + !c) land mask
    end
    else u'.(j + n) <- sub;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right_small (mag_normalize (Array.sub u' 0 n)) s in
  (mag_normalize q, r)

let mag_divmod u v =
  if Array.length v = 0 then raise Division_by_zero
  else if mag_compare u v < 0 then ([||], Array.copy u)
  else if Array.length v = 1 then begin
    let q, r = mag_divmod_limb u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else mag_divmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Signed interface                                                     *)
(* ------------------------------------------------------------------ *)

let mk sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then { sign = 0; mag = [||] } else { sign; mag }

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int has no positive counterpart; go through a buffer limb by
       limb using negative absolute values to stay representable. *)
    let rec limbs acc n =
      if n = 0 then acc else limbs ((-(n mod base)) :: acc) (n / base)
    in
    let l = List.rev (limbs [] (if n < 0 then n else -n)) in
    mk sign (Array.of_list l)
  end

let sign x = x.sign
let is_zero x = x.sign = 0
let is_negative x = x.sign < 0
let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1
let is_even x = x.sign = 0 || x.mag.(0) land 1 = 0

let equal a b = a.sign = b.sign && mag_compare a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let hash x = Hashtbl.hash (x.sign, x.mag)

let num_bits x =
  let n = Array.length x.mag in
  if n = 0 then 0
  else begin
    let top = x.mag.(n - 1) in
    let rec bits b v = if v = 0 then b else bits (b + 1) (v lsr 1) in
    (base_bits * (n - 1)) + bits 0 top
  end

let fits_int x = num_bits x <= 62

let to_int_opt x =
  if not (fits_int x) then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) x.mag 0 in
    Some (if x.sign < 0 then -v else v)
  end

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int: value does not fit in a native int"

let to_float x =
  let m =
    Array.fold_right
      (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb)
      x.mag 0.0
  in
  if x.sign < 0 then -.m else m

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then { x with sign = 1 } else x

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (mag_sub a.mag b.mag)
    else mk b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ x = add x one
let pred x = sub x one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else mk (a.sign * b.sign) (mag_mul a.mag b.mag)

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else begin
    let qm, rm = mag_divmod a.mag b.mag in
    let q = mk (a.sign * b.sign) qm in
    let r = mk a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc base k =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then mul acc base else acc in
        go acc (mul base base) (k lsr 1)
      end
    in
    go one x k
  end

let shift_left x s =
  if s < 0 then invalid_arg "Bigint.shift_left"
  else if x.sign = 0 || s = 0 then x
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let m = mag_shift_left_small x.mag bit_shift in
    let m =
      if limb_shift = 0 then m
      else Array.append (Array.make limb_shift 0) m
    in
    mk x.sign m
  end

let shift_right x s =
  if s < 0 then invalid_arg "Bigint.shift_right"
  else if x.sign = 0 || s = 0 then x
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let la = Array.length x.mag in
    if limb_shift >= la then zero
    else begin
      let m = Array.sub x.mag limb_shift (la - limb_shift) in
      mk x.sign (mag_shift_right_small m bit_shift)
    end
  end

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Decimal I/O                                                          *)
(* ------------------------------------------------------------------ *)

let chunk_base = 1_000_000_000 (* 10^9 < 2^30: a valid single limb divisor *)
let chunk_digits = 9

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go m acc =
      if Array.length m = 0 then acc
      else begin
        let q, r = mag_divmod_limb m chunk_base in
        go q (r :: acc)
      end
    in
    let chunks = go x.mag [] in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string_opt s =
  let n = String.length s in
  if n = 0 then None
  else begin
    let sign, start =
      match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
    in
    if start >= n then None
    else begin
      let acc = ref zero and cur = ref 0 and ndig = ref 0 and ok = ref true in
      let flush () =
        if !ndig > 0 then begin
          let scale = of_int (int_of_float (10.0 ** float_of_int !ndig)) in
          acc := add (mul !acc scale) (of_int !cur);
          cur := 0;
          ndig := 0
        end
      in
      String.iteri
        (fun i c ->
          if i >= start && !ok then
            match c with
            | '0' .. '9' ->
              cur := (!cur * 10) + (Char.code c - Char.code '0');
              incr ndig;
              if !ndig = chunk_digits then flush ()
            | '_' -> ()
            | _ -> ok := false)
        s;
      flush ();
      if (not !ok) || (n - start = 0) then None
      else begin
        (* Reject strings that were only underscores. *)
        let has_digit = ref false in
        String.iter (fun c -> if c >= '0' && c <= '9' then has_digit := true) s;
        if not !has_digit then None
        else Some (if sign < 0 then neg !acc else !acc)
      end
    end
  end

let of_string s =
  match of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Bigint.of_string: %S" s)

(* Little-endian magnitude bytes for the persistent store.  A base-2^30
   limb stream is re-chunked into bytes through a small bit
   accumulator; [bits] never exceeds 37 (30 new + at most 7 pending), so
   the accumulator stays well inside a native int. *)
let to_bytes_le x =
  if x.sign < 0 then invalid_arg "Bigint.to_bytes_le: negative value";
  let buf = Buffer.create (4 * Array.length x.mag) in
  let acc = ref 0 and bits = ref 0 in
  Array.iter
    (fun limb ->
      acc := !acc lor (limb lsl !bits);
      bits := !bits + base_bits;
      while !bits >= 8 do
        Buffer.add_char buf (Char.chr (!acc land 0xff));
        acc := !acc lsr 8;
        bits := !bits - 8
      done)
    x.mag;
  while !bits > 0 do
    Buffer.add_char buf (Char.chr (!acc land 0xff));
    acc := !acc lsr 8;
    bits := !bits - 8
  done;
  (* Canonical form: no trailing zero bytes, so equal values have equal
     encodings (the store's checksum relies on this). *)
  let s = Buffer.contents buf in
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '\000' do decr n done;
  String.sub s 0 !n

let of_bytes_le s =
  let limbs = ref [] and acc = ref 0 and bits = ref 0 in
  String.iter
    (fun c ->
      acc := !acc lor (Char.code c lsl !bits);
      bits := !bits + 8;
      if !bits >= base_bits then begin
        limbs := (!acc land mask) :: !limbs;
        acc := !acc lsr base_bits;
        bits := !bits - base_bits
      end)
    s;
  if !bits > 0 then limbs := !acc :: !limbs;
  mk 1 (mag_normalize (Array.of_list (List.rev !limbs)))

let pp fmt x = Format.pp_print_string fmt (to_string x)
