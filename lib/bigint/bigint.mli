(** Arbitrary-precision signed integers.

    Numbers are immutable. The representation is a sign and a little-endian
    magnitude in base [2^30]; all operations are safe on 64-bit OCaml where
    a digit product fits in a native [int].

    This module exists because the sealed build environment provides no
    [zarith]; it supplies exactly what the probability layers need: ring
    operations, Euclidean division, gcd, powers and decimal I/O. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** [to_int x] converts back to a native integer.
    @raise Failure if [x] does not fit in an OCaml [int]. *)

val to_int_opt : t -> int option
val fits_int : t -> bool

val to_float : t -> float
(** Nearest-float conversion; large values may round or overflow to
    infinity, mirroring [float_of_int] semantics. *)

val of_string : string -> t
(** Parses an optionally signed decimal literal. Underscores are allowed as
    digit separators. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val to_bytes_le : t -> string
(** Little-endian magnitude bytes of a nonnegative value, with no
    trailing zero bytes (canonical: equal values encode identically;
    [to_bytes_le zero = ""]).  Used by the persistent fact store.
    @raise Invalid_argument on a negative value. *)

val of_bytes_le : string -> t
(** Inverse of {!to_bytes_le}; ignores trailing zero bytes. *)

(** {1 Queries} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val num_bits : t -> int
(** Number of bits of the magnitude; [num_bits zero = 0]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is truncated division: [(q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] carrying the sign of [a] (or zero).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder is always in [\[0, |b|)]. *)

val gcd : t -> t -> t
(** Greatest common divisor; always nonnegative, [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0]. @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift towards zero on the magnitude. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
