(** Closed floating-point intervals with outward rounding.

    Every arithmetic operation widens its result by one ulp in each
    direction, so a computed interval always encloses the exact real
    result.  Used as a rigorous probability carrier when exact rationals
    are too slow and bare floats too optimistic. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** @raise Invalid_argument if [lo > hi] or either bound is NaN. *)

val point : float -> t
(** The degenerate interval [[x, x]]. *)

val zero : t
val one : t

val lo : t -> float
val hi : t -> float
val width : t -> float

val mid : t -> float
(** Midpoint; a best single-float estimate. *)

val add : t -> t -> t
val sub : t -> t -> t

val mul : t -> t -> t
(** Sound on unbounded operands: a [0 * ±inf] corner contributes [0]
    (the set-based convention), never nan. *)

val div : t -> t -> t
(** @raise Division_by_zero if the divisor contains 0.  Sound on
    unbounded operands: an [inf / inf] corner contributes its full
    limit range [\[0, +inf\]] (with the corner's sign), never nan. *)

val compl : t -> t
(** [compl x] encloses [1 - x]. *)

val neg : t -> t

val hull : t -> t -> t
(** Smallest interval containing both. *)

val intersect : t -> t -> t option

val contains : t -> float -> bool
val subset : t -> t -> bool

val clamp01 : t -> t
(** Intersect with [[0, 1]]; useful after subtractive cancellation on
    quantities known to be probabilities. *)

val equal : t -> t -> bool
val compare_mid : t -> t -> int
val pp : Format.formatter -> t -> unit
