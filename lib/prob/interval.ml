(* Outward-rounded float intervals.  OCaml gives no access to the FPU
   rounding mode, so we widen every result by one ulp on each side via
   Float.pred/Float.succ; this over-approximates directed rounding and
   keeps the enclosure property. *)

type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Interval.make"
  else { lo; hi }

let point x = make x x

let zero = point 0.0
let one = point 1.0

let lo x = x.lo
let hi x = x.hi
let width x = x.hi -. x.lo
let mid x = if x.lo = x.hi then x.lo else 0.5 *. (x.lo +. x.hi)

(* Unconditional one-ulp widening: cheap, and always sound. *)
let down x = Float.pred x
let up x = Float.succ x

let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let sub a b = { lo = down (a.lo -. b.hi); hi = up (a.hi -. b.lo) }
let neg a = { lo = -.a.hi; hi = -.a.lo }

(* The corner products/quotients can be nan on unbounded operands
   (0 * inf, inf / inf); building the record directly would then bypass
   [make]'s nan guard and poison every downstream min/max.  Each nan
   corner is replaced by its sound set-based bound instead. *)

let mul a b =
  (* nan here is exactly 0 * ±inf.  Under set semantics the factor 0
     annihilates (the IEEE-1788 convention), so 0 is the sound corner
     value. *)
  let corner x y =
    let p = x *. y in
    if Float.is_nan p then 0.0 else p
  in
  let p1 = corner a.lo b.lo and p2 = corner a.lo b.hi in
  let p3 = corner a.hi b.lo and p4 = corner a.hi b.hi in
  {
    lo = down (Float.min (Float.min p1 p2) (Float.min p3 p4));
    hi = up (Float.max (Float.max p1 p2) (Float.max p3 p4));
  }

let div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then raise Division_by_zero
  else begin
    (* nan here is exactly ±inf / ±inf; ratios of large elements of the
       two intervals realize every magnitude, so the sound corner bounds
       are 0 and the signed infinity. *)
    let corner x y acc =
      let p = x /. y in
      if Float.is_nan p then
        let s = if (x > 0.0) = (y > 0.0) then infinity else neg_infinity in
        0.0 :: s :: acc
      else p :: acc
    in
    let cs = corner a.lo b.lo (corner a.lo b.hi (corner a.hi b.lo (corner a.hi b.hi []))) in
    {
      lo = down (List.fold_left Float.min infinity cs);
      hi = up (List.fold_left Float.max neg_infinity cs);
    }
  end

let compl x = sub one x

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let contains x v = x.lo <= v && v <= x.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi

let clamp01 x =
  match intersect x { lo = 0.0; hi = 1.0 } with
  | Some r -> r
  | None -> if x.hi < 0.0 then zero else one

let equal a b = a.lo = b.lo && a.hi = b.hi
let compare_mid a b = Float.compare (mid a) (mid b)

let pp fmt x = Format.fprintf fmt "[%.17g, %.17g]" x.lo x.hi
