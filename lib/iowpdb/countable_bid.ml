(* Countable BID PDBs: a lazy enumeration of blocks with a tail
   certificate on block masses. *)

type block = {
  id : string;
  mass : Rational.t;
  mutable cache : (Fact.t * Rational.t) list; (* reversed prefix *)
  mutable rest : (Fact.t * Rational.t) Seq.t;
  mutable exhausted : bool;
}

let block ~id ?mass alts =
  match mass with
  | Some m ->
    if not (Rational.is_probability m) then
      invalid_arg "Countable_bid.block: mass out of range";
    { id; mass = m; cache = []; rest = alts; exhausted = false }
  | None ->
    (* Force the sequence; it must be finite when mass is omitted. *)
    let l = List.of_seq alts in
    let m =
      List.fold_left (fun acc (_, p) -> Rational.add acc p) Rational.zero l
    in
    if not (Rational.is_probability m) then
      invalid_arg
        (Printf.sprintf "Countable_bid.block %s: alternatives sum to %s" id
           (Rational.to_string m));
    { id; mass = m; cache = List.rev l; rest = Seq.empty; exhausted = true }

let block_finite ~id alts = block ~id (List.to_seq alts)

let block_id b = b.id
let block_mass b = b.mass
let block_slack b = Rational.compl b.mass

let pull_alt b =
  if b.exhausted then false
  else begin
    match b.rest () with
    | Seq.Nil ->
      b.exhausted <- true;
      false
    | Seq.Cons ((f, p), rest) ->
      if Rational.sign p <= 0 || Rational.compare p Rational.one > 0 then
        invalid_arg
          (Printf.sprintf "Countable_bid.block %s: bad probability for %s" b.id
             (Fact.to_string f));
      b.rest <- rest;
      b.cache <- (f, p) :: b.cache;
      true
  end

let alternatives ?(limit = 1 lsl 12) b =
  let continue = ref true in
  while List.length b.cache < limit && !continue do
    continue := pull_alt b
  done;
  let l = List.rev b.cache in
  if List.length l > limit then List.filteri (fun i _ -> i < limit) l else l

type t = {
  name : string;
  tail : int -> float option;
  mutable bcache : block array;
  mutable blen : int;
  mutable brest : block Seq.t;
  mutable bexhausted : bool;
}

let push t b =
  if t.blen = Array.length t.bcache then begin
    let cap = Stdlib.max 8 (2 * Array.length t.bcache) in
    let data = Array.make cap b in
    Array.blit t.bcache 0 data 0 t.blen;
    t.bcache <- data
  end;
  t.bcache.(t.blen) <- b;
  t.blen <- t.blen + 1

let pull_block t =
  if t.bexhausted then false
  else begin
    match t.brest () with
    | Seq.Nil ->
      t.bexhausted <- true;
      false
    | Seq.Cons (b, rest) ->
      t.brest <- rest;
      if Array.exists (fun b' -> b'.id = b.id) (Array.sub t.bcache 0 t.blen)
      then
        invalid_arg
          (Printf.sprintf "Countable_bid: duplicate block id %s" b.id);
      push t b;
      true
  end

let nth_block t i =
  let continue = ref true in
  while t.blen <= i && !continue do
    continue := pull_block t
  done;
  if i < t.blen then Some t.bcache.(i) else None

let tail_mass t n =
  ignore (nth_block t n);
  if t.bexhausted && t.blen <= n then Some 0.0 else t.tail n

let create ?(name = "bid") ~blocks ~tail () =
  let t =
    {
      name;
      tail;
      bcache = [||];
      blen = 0;
      brest = blocks;
      bexhausted = false;
    }
  in
  (* First probe the raw certificate geometrically up to 2^20 — this
     never forces the block enumeration, so a certificate that answers
     only at depth is found without materializing thousands of blocks.
     Only if the certificate stays silent do we fall back to the forcing
     probe (through [tail_mass], which can detect a finite enumeration
     that exhausts early and so has tail exactly 0). *)
  let raw_certified =
    let max_n = 1 lsl 20 in
    let rec go n =
      tail n <> None
      || (n < max_n && go (Stdlib.min max_n (Stdlib.max 1 (2 * n))))
    in
    go 0
  in
  if
    raw_certified
    || List.exists (fun n -> tail_mass t n <> None) [ 0; 1; 16; 1024 ]
  then t
  else
    invalid_arg
      (Printf.sprintf
         "Countable_bid.create: %s has no convergence certificate (Theorem \
          4.15)"
         name)

let create_r ?name ~blocks ~tail () =
  match Errors.protect ~what:"Countable_bid.create" (fun () ->
      create ?name ~blocks ~tail ())
  with
  | Error (Errors.Model_invalid { what = _; msg })
    when Errors.contains_substring msg "no convergence certificate" ->
    Error
      (Errors.Divergent_source
         { source = Option.value name ~default:"bid"; probed_to = 1 lsl 20 })
  | r -> r

let of_finite_blocks ?(name = "bid-finite") bs =
  let arr = Array.of_list bs in
  let n = Array.length arr in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. Rational.to_float arr.(i).mass
  done;
  create ~name
    ~blocks:(Array.to_seq arr)
    ~tail:(fun k -> Some (if k >= n then 0.0 else suffix.(k) *. (1. +. 1e-12)))
    ()

let name t = t.name

let marginal t f =
  let block_scan = 512 and alt_scan = 512 in
  let rec go i =
    if i >= block_scan then None
    else begin
      match nth_block t i with
      | None -> None
      | Some b -> (
          match
            List.find_opt (fun (f', _) -> Fact.equal f f') (alternatives ~limit:alt_scan b)
          with
          | Some (_, p) -> Some p
          | None -> go (i + 1))
    end
  in
  go 0

let expected_size_bounds t ~n =
  let prefix = ref 0.0 in
  for i = 0 to n - 1 do
    match nth_block t i with
    | Some b -> prefix := !prefix +. Rational.to_float b.mass
    | None -> ()
  done;
  match tail_mass t n with
  | Some tail -> (!prefix, !prefix +. tail)
  | None -> assert false

let truncate t ~n_blocks ~alts_per_block =
  let rec collect i acc =
    if i >= n_blocks then List.rev acc
    else begin
      match nth_block t i with
      | None -> List.rev acc
      | Some b ->
        let alts = alternatives ~limit:alts_per_block b in
        collect (i + 1)
          ({ Bid_table.block_id = b.id; alternatives = alts } :: acc)
    end
  in
  Bid_table.create (collect 0 [])

let nth_alt b i =
  let continue = ref true in
  while List.length b.cache <= i && !continue do
    continue := pull_alt b
  done;
  List.nth_opt (List.rev b.cache) i

let sample ?(tail_cut = ldexp 1.0 (-20)) ?(max_blocks = 4096) t g =
  let sample_block b =
    (* Sequential inversion, pulling alternatives on demand: stop once
       the chosen point falls in a fact's interval or the remaining
       in-block mass is below the cut (so infinite blocks terminate after
       O(log 1/tail_cut) pulls for geometric-type alternatives). *)
    let u = ref (Prng.float g) in
    let remaining = ref (Rational.to_float b.mass) in
    let rec go idx =
      match nth_alt b idx with
      | None -> None
      | Some (f, p) ->
        let pf = Rational.to_float p in
        if !u < pf then Some f
        else begin
          u := !u -. pf;
          remaining := !remaining -. pf;
          if !remaining <= tail_cut then None else go (idx + 1)
        end
    in
    go 0
  in
  let rec go i acc =
    if i >= max_blocks then acc
    else begin
      match tail_mass t i with
      | Some tail when tail <= tail_cut -> acc
      | _ -> (
          match nth_block t i with
          | None -> acc
          | Some b ->
            let acc =
              match sample_block b with
              | Some f -> Instance.add f acc
              | None -> acc
            in
            go (i + 1) acc)
    end
  in
  go 0 Instance.empty
