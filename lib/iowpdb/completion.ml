type t = {
  original : Finite_pdb.t;
  news : Fact_source.t;
}

let complete original news =
  if not (Fact_source.converges news) then
    invalid_arg
      "Completion.complete: new-fact source diverges (Theorem 4.8 / 5.5)";
  (* Reject probability-1 new facts (P'(Omega) would be 0) and overlaps
     with F(D) eagerly on a bounded prefix; deeper entries are validated
     as they are enumerated by consumers. *)
  let orig_facts = Fact.Set.of_list (Finite_pdb.fact_universe original) in
  let guarded =
    Fact_source.make
      ~name:(Fact_source.name news)
      ~enum:
        (Seq.unfold
           (fun i ->
             match Fact_source.nth news i with
             | None -> None
             | Some (f, p) ->
               if Rational.is_one p then
                 invalid_arg
                   (Printf.sprintf
                      "Completion: new fact %s has probability 1, so \
                       P'(Omega) = 0 (forbidden by Definition 5.1)"
                      (Fact.to_string f))
               else if Fact.Set.mem f orig_facts then
                 invalid_arg
                   (Printf.sprintf
                      "Completion: %s already occurs in the original PDB"
                      (Fact.to_string f))
               else Some ((f, p), i + 1))
           0)
      ~tail:(fun n -> Fact_source.tail_mass news n)
      ()
  in
  ignore (Fact_source.prefix guarded 64);
  { original; news = guarded }

let complete_ti ti news = complete (Finite_pdb.of_ti ti) news

let complete_r original news =
  Errors.protect ~what:"Completion.complete" (fun () -> complete original news)

let original t = t.original
let new_facts t = t.news

let marginal t f =
  (* Independence of the two factors: the original marginal is preserved
     exactly; new facts keep their source probability. *)
  let p_orig = Finite_pdb.prob_ef t.original f in
  if not (Rational.is_zero p_orig) then Some p_orig
  else if
    List.exists (Fact.equal f) (Finite_pdb.fact_universe t.original)
  then Some Rational.zero
  else Fact_source.prob t.news f

let truncated t ~n =
  Finite_pdb.product t.original (Finite_pdb.of_ti (Fact_source.truncate t.news n))

let completion_condition_gap t ~n =
  let trunc = truncated t ~n in
  let orig_facts = Fact.Set.of_list (Finite_pdb.fact_universe t.original) in
  (* Omega = instances containing no new fact. *)
  let in_omega inst =
    Instance.for_all (fun f -> Fact.Set.mem f orig_facts) inst
  in
  let conditioned = Finite_pdb.condition trunc in_omega in
  List.fold_left
    (fun acc (inst, p) ->
      let gap = Rational.abs (Rational.sub p (Finite_pdb.prob_of t.original inst)) in
      Rational.max acc gap)
    Rational.zero
    (Finite_pdb.worlds conditioned)

let omega_prob_bounds t ~n =
  match Fact_source.tail_mass t.news n with
  | None -> assert false
  | Some tail ->
    (* P'(Omega) = prod over all new facts of (1 - p_f): exact rational
       over the first n, claim (∗) on the rest. *)
    let prefix =
      List.fold_left
        (fun acc (_, p) -> Rational.mul acc (Rational.compl p))
        Rational.one (Fact_source.prefix t.news n)
    in
    let pre = Prob.Interval_carrier.of_rational prefix in
    let tail_iv =
      if tail < 0.5 then Interval.make (exp (-1.5 *. tail)) 1.0
      else Interval.make 0.0 1.0
    in
    Interval.clamp01 (Interval.mul pre tail_iv)

(* Shared core of the approximate query functions: truncation point for
   the budget, then exact probability of a sentence on the truncated
   completion via one BDD and per-original-world weighted model counts.
   Returns the certified tail value observed during the search alongside
   [n]: certificates may answer each depth only once (mutable scan
   state), so re-asking afterwards is not an option — the same leak
   [Approx_eval.boolean] plugs. *)
let truncation_for_r t ~eps =
  (* The recoverable form: a tail that never certifies [eps] within the
     probe bound is a resource exhaustion, not a malformed model — the
     run still owns a sound (if wide) enclosure from the deepest
     certified tail, and a supervisor can degrade instead of dying. *)
  match
    Errors.protect ~what:"Completion" (fun () ->
        Fact_source.truncation t.news (Approx_eval.required_tail eps))
  with
  | Error e -> Error e
  | Ok (Some nt) -> Ok nt
  | Ok None ->
    let partial =
      match Fact_source.tail_mass t.news (1 lsl 20) with
      | Some tl ->
        Some
          (Approx_eval.enclosure_interval
             (Interval.make 0.0 1.0)
             (Approx_eval.omega_bounds_of_tail tl))
      | None | (exception _) -> None
    in
    Error
      (Errors.Budget_exhausted
         {
           what = "Completion: tail does not certify eps";
           exhaustion = Budget.Cap Budget.Probes;
           partial;
         })

(* The raising wrapper stays for compatibility with existing callers. *)
let truncation_for t ~eps =
  match Fact_source.truncation t.news (Approx_eval.required_tail eps) with
  | Some nt -> nt
  | None -> invalid_arg "Completion: tail does not certify eps"

(* Same inert-padding device as Approx_eval / Anytime: the truncated
   completion stands in for the limit space, so quantifiers get
   [quantifier_rank phi] fresh values that occur in no fact.  Unpadded
   for [Cmp] queries, which can distinguish inert values. *)
let padding facts phi =
  let rank = Fo.quantifier_rank phi in
  if rank = 0 || Fo.has_cmp phi then []
  else begin
    let avoid = Fo.constants phi @ List.concat_map Fact.args facts in
    let rec choose attempt =
      let cand =
        List.init rank (fun i ->
            Value.Str (Printf.sprintf "\x00pad.%d.%d" attempt i))
      in
      if List.exists (fun v -> List.exists (Value.equal v) avoid) cand then
        choose (attempt + 1)
      else cand
    in
    choose 0
  end

let sentence_prob_truncated ?tick t ~n phi =
  let news = Fact_source.prefix t.news n in
  let new_prob =
    List.fold_left (fun m (f, p) -> Fact.Map.add f p m) Fact.Map.empty news
  in
  let orig_facts = Finite_pdb.fact_universe t.original in
  let all_facts = orig_facts @ List.map fst news in
  let alpha = Lineage.alphabet all_facts in
  let lin = Lineage.of_sentence ~extra:(padding all_facts phi) alpha phi in
  let order =
    let tbl = Hashtbl.create 64 in
    List.iteri (fun rank v -> Hashtbl.add tbl v rank)
      (Bool_expr.occurrence_order lin);
    fun v ->
      match Hashtbl.find_opt tbl v with
      | Some r -> r
      | None -> v + Hashtbl.length tbl
  in
  let mgr = Bdd.manager ~order ?tick () in
  let bdd = Bdd.of_expr mgr lin in
  let module W = Wmc.Make (Prob.Rational_carrier) in
  List.fold_left
    (fun acc (w, pw) ->
      if Rational.is_zero pw then acc
      else begin
        let weight v =
          let f = Lineage.fact_of_var alpha v in
          match Fact.Map.find_opt f new_prob with
          | Some pf -> pf
          | None -> if Instance.mem f w then Rational.one else Rational.zero
        in
        Rational.add acc (Rational.mul pw (W.probability ~weight bdd))
      end)
    Rational.zero
    (Finite_pdb.worlds t.original)

let evaluation_domain_truncated t ~n phi =
  let facts =
    Finite_pdb.fact_universe t.original
    @ List.map fst (Fact_source.prefix t.news n)
  in
  Fo_eval.evaluation_domain (Instance.of_list facts) phi []

let marginals t ~eps phi =
  let n, _ = truncation_for t ~eps in
  let fvs = Fo.free_vars phi in
  let k = List.length fvs in
  if k = 0 then invalid_arg "Completion.marginals: sentence has no free variables"
  else if k > 3 then invalid_arg "Completion.marginals: more than 3 free variables"
  else begin
    let domain = evaluation_domain_truncated t ~n phi in
    let rec valuations k =
      if k = 0 then Seq.return []
      else
        Seq.concat_map
          (fun rest -> Seq.map (fun v -> v :: rest) (List.to_seq domain))
          (valuations (k - 1))
    in
    valuations k
    |> Seq.filter_map (fun vals ->
           let vals = List.rev vals in
           let grounded = Fo.substitute (List.combine fvs vals) phi in
           let p = sentence_prob_truncated t ~n grounded in
           if Rational.is_zero p then None
           else Some (Array.of_list vals, p))
    |> List.of_seq
    |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)
  end

let expected_answer_count t ~eps phi =
  Rational.sum (List.map snd (marginals t ~eps phi))

let query_prob t ~eps phi =
  (* The completed PDB is the independent product of the original worlds
     with the TI PDB on the new facts.  Evaluate by truncating the new
     facts to tail mass certifying [eps], compiling the query's lineage
     ONCE over the combined alphabet, and weighted-model-counting the
     same BDD under each original world (original facts pinned to 0/1,
     new facts at their marginals):

       P(Q) = sum_w P(w) * WMC_w(lineage)

     This keeps the cost at (#original worlds) x |BDD| instead of the
     2^n explicit product. *)
  let n, tail = truncation_for t ~eps in
  let p = sentence_prob_truncated t ~n phi in
  (* One re-ask, threading the searched value as the fallback: a
     certificate that can still answer may sharpen the bound (exactly 0
     once the enumeration is exhausted at n), one that cannot no longer
     defaults the record to nan. *)
  let tail =
    match Fact_source.tail_mass t.news n with
    | Some tl -> Float.min tl tail
    | None -> tail
  in
  let om_n = Approx_eval.omega_bounds_of_tail tail in
  {
    Approx_eval.estimate = p;
    eps;
    n_used = n;
    tail_mass = tail;
    omega_n_bounds = om_n;
    bounds = Approx_eval.enclosure p om_n;
  }

let query_prob_r ?budget t ~eps phi =
  (* Budget view: tail probes and prefix pulls of the new-fact source are
     charged as Probes/Facts, fresh BDD nodes as Bdd_nodes.  The original
     [t] is untouched — its caches keep serving unbudgeted callers. *)
  let t =
    match budget with
    | Some b -> { t with news = Fact_source.with_budget b t.news }
    | None -> t
  in
  let tick =
    Option.map (fun b () -> Budget.charge b Budget.Bdd_nodes 1) budget
  in
  match truncation_for_r t ~eps with
  | Error e -> Error e
  | Ok (n, tail) -> (
    match
      Errors.protect ~what:"Completion" (fun () ->
          let p = sentence_prob_truncated ?tick t ~n phi in
          let tail =
            match Fact_source.tail_mass t.news n with
            | Some tl -> Float.min tl tail
            | None | (exception Budget.Exhausted _) -> tail
          in
          let om_n = Approx_eval.omega_bounds_of_tail tail in
          {
            Approx_eval.estimate = p;
            eps;
            n_used = n;
            tail_mass = tail;
            omega_n_bounds = om_n;
            bounds = Approx_eval.enclosure p om_n;
          })
    with
    | Ok r -> Ok r
    | Error (Errors.Budget_exhausted { what; exhaustion; partial = _ }) ->
      (* The truncation was certified before exhaustion: the trivial
         conditional enclosure at its tail is still a sound answer. *)
      Error
        (Errors.Budget_exhausted
           {
             what;
             exhaustion;
             partial =
               Some
                 (Approx_eval.enclosure_interval
                    (Interval.make 0.0 1.0)
                    (Approx_eval.omega_bounds_of_tail tail));
           })
    | Error e -> Error e)

let complete_countable_ti cti news =
  if not (Fact_source.converges news) then
    invalid_arg
      "Completion.complete_countable_ti: new-fact source diverges (Theorem \
       4.8 / 5.5)";
  let guarded =
    Fact_source.make
      ~name:(Fact_source.name news)
      ~enum:
        (Seq.unfold
           (fun i ->
             match Fact_source.nth news i with
             | None -> None
             | Some (f, p) ->
               if Rational.is_one p then
                 invalid_arg
                   (Printf.sprintf
                      "Completion: new fact %s has probability 1 (forbidden \
                       by Definition 5.1)"
                      (Fact.to_string f))
               else Some ((f, p), i + 1))
           0)
      ~tail:(fun n -> Fact_source.tail_mass news n)
      ()
  in
  (* The interleaved source keeps both tails certified; Fact_source's lazy
     duplicate detection enforces disjointness as facts are enumerated. *)
  Countable_ti.create
    (Fact_source.interleave (Countable_ti.source cti) guarded)

let openpdb_lambda ~lambda ~new_facts ti =
  if not (Rational.sign lambda >= 0 && Rational.compare lambda Rational.one < 0)
  then invalid_arg "Completion.openpdb_lambda: lambda must be in [0,1)";
  let entries =
    if Rational.is_zero lambda then []
    else List.map (fun f -> (f, lambda)) new_facts
  in
  complete_ti ti (Fact_source.of_list ~name:"openpdb-lambda" entries)

let geometric_policy ~first ~ratio ~new_facts ti =
  complete_ti ti
    (Fact_source.geometric ~name:"geometric-policy" ~first ~ratio
       ~facts:new_facts ())
