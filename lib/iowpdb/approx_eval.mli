(** Additive approximation of query probabilities on countable
    tuple-independent PDBs — Proposition 6.1 and Figure 1 of the paper.

    Given oracle access to a convergent enumeration of fact probabilities
    (a {!Fact_source.t}) and an error budget [eps], the algorithm:

    + finds the least truncation point [n] whose tail mass [alpha_n]
      satisfies [e^{alpha_n} <= 1 + eps] and [e^{-alpha_n} >= 1 - eps],
      using claim (∗) ([alpha_n = (3/2) * tail mass], sound once every
      remaining probability is below 1/2);
    + evaluates the query on the finite TI table of the first [n] facts
      with a classical closed-world engine ({!Query_eval});
    + returns that number [p], which satisfies
      [P(Q) - eps <= p <= P(Q) + eps].

    The returned record also carries machine-checked enclosures so
    experiments can display measured-vs-guaranteed error. *)

type result = {
  estimate : Rational.t;  (** [p = P(Q | Omega_n)], exact on the truncation *)
  eps : float;  (** the requested additive budget *)
  n_used : int;  (** facts retained *)
  tail_mass : float;  (** certified bound on the truncated mass *)
  omega_n_bounds : Interval.t;
      (** enclosure of [P(Omega_n)] = probability that no truncated fact
          occurs *)
  bounds : Interval.t;
      (** enclosure of the true [P(Q)] implied by the run:
          [p * P(Omega_n) <= P(Q) <= p * P(Omega_n) + (1 - P(Omega_n))] *)
}

val boolean : ?max_n:int -> Fact_source.t -> eps:float -> Fo.t -> result
(** Quantifiers are evaluated over the truncation's active domain padded
    with [quantifier_rank phi] inert values (the r-equivalence device of
    Proposition 6.1, as in {!Anytime}), so [estimate] is the limit
    conditional probability rather than an artifact of the prefix's
    accidental domain; [Cmp] queries, which can distinguish inert values,
    are evaluated unpadded.
    @raise Invalid_argument if [eps] is outside [(0, 1/2)] (the range of
    Proposition 6.1), the source diverges, or no adequate truncation
    exists below [max_n] (default [2^20]) — the "series may converge
    arbitrarily slowly" caveat of Section 6. *)

val truncation_point : ?max_n:int -> Fact_source.t -> eps:float -> int option
(** The [n(eps)] the algorithm would use; exposed for experiment E2
    (growth of [n(eps)] across decay regimes). *)

(** {1 Result-returning entry points}

    The same algorithm behind a structured-error interface: divergence,
    slow convergence and resource exhaustion come back as data instead of
    [Invalid_argument], and an optional {!Budget.t} governs the run. *)

val boolean_r :
  ?max_n:int ->
  ?budget:Budget.t ->
  ?bdd_cache_size:int ->
  ?bdd_gc_threshold:int ->
  Fact_source.t ->
  eps:float ->
  Fo.t ->
  (result, Errors.t) Stdlib.result
(** Like {!boolean}, with classified failures: [Divergent_source] when no
    certificate exists below [max_n], [Budget_exhausted] when the source
    converges too slowly or [budget] runs out (source accesses are
    charged as [Facts]/[Probes], BDD allocations as [Bdd_nodes]); in the
    budget case the error carries the best sound enclosure implied by
    the deepest certified tail.  [Model_invalid] covers bad [eps] and
    malformed sources.

    [bdd_cache_size] / [bdd_gc_threshold] tune the BDD kernel of the
    classical engine (see {!Bdd.manager}); with a GC threshold set,
    nodes the kernel sweeps are refunded to [budget], so the
    [Bdd_nodes] cap tracks live nodes. *)

val boolean_lifted_r :
  ?max_n:int ->
  ?budget:Budget.t ->
  Fact_source.t ->
  eps:float ->
  Fo.t ->
  (result, Errors.t) Stdlib.result
(** Like {!boolean_r}, but the classical engine on the truncated prefix
    is the lifted safe-plan UCQ evaluator ({!Query_eval.boolean_safe})
    instead of lineage + BDD: polynomial in the prefix, no knowledge
    compilation.  Plan-rule applications are charged to [budget] as
    [Steps] (the cancellation hook), source accesses as
    [Facts]/[Probes].  Fails with [Model_invalid] when the query has no
    safe plan — the hard side of the dichotomy — which is a property of
    the query, not a transient fault; no inert padding is needed because
    the engine only answers for positive existential UCQs, whose truth
    is invariant under inert domain extensions. *)

val truncation_r :
  ?max_n:int ->
  Fact_source.t ->
  eps:float ->
  (int * float, Errors.t) Stdlib.result
(** The classified truncation search shared by {!boolean_r} and
    [Completion]'s result-returning entry points. *)

(** {1 Certification primitives}

    Shared with the incremental evaluator ({!Anytime}), which re-derives
    the same enclosures step by step. *)

val required_tail : float -> float
(** The tail-mass budget [2/3 * ln(1 + eps)] that makes claim (∗) certify
    an additive error of [eps]. *)

val omega_bounds_of_tail : float -> Interval.t
(** Enclosure of [P(Omega_n)] from a certified tail bound: claim (∗)
    below, trivial 1 above; [\[0,1\]] once the tail reaches 1/2. *)

val enclosure : Rational.t -> Interval.t -> Interval.t
(** [enclosure p om]: the implied enclosure
    [p * P(Omega_n) <= P(Q) <= p * P(Omega_n) + (1 - P(Omega_n))],
    clamped to [\[0,1\]]. *)

val enclosure_interval : Interval.t -> Interval.t -> Interval.t
(** Same, from an interval enclosure of [P(Q | Omega_n)] instead of the
    exact rational — the form the anytime evaluator uses, where exact
    per-step rational model counts would be needlessly expensive. *)

val marginals :
  ?max_n:int -> Fact_source.t -> eps:float -> Fo.t ->
  (Tuple.t * Rational.t) list
(** The free-variable extension sketched after Proposition 6.1: ground
    the query over [adom(Omega_n)] and approximate each sentence; each
    returned probability carries the same additive guarantee.  Tuples
    with estimate 0 are omitted. *)

(** {1 Proposition 6.2 (no multiplicative approximation)} *)

val prop62_witness : first_acceptance:int -> horizon:int -> Fact_source.t
(** The witness family from the proof of Proposition 6.2, made concrete:
    facts [R(k)] / [S(k)] with probability [2^{-k}], where [R(k)] occurs
    (instead of [S(k)]) exactly at [k = first_acceptance] — a decidable
    stand-in for "the Turing machine first accepts at time [t]".
    [P(exists x. R(x)) = 2^{-first_acceptance}] is positive but
    arbitrarily small in the parameter, while any evaluator that inspects
    only a bounded prefix returns 0 — unbounded multiplicative error,
    bounded additive error.  [horizon] caps the enumeration (the finite
    stage [L_{N,t}] of the proof). *)
