(** Countable enumerations of weighted facts — the input data of the
    countable tuple-independent construction (Section 4.1).

    A fact source is a (finite or countably infinite) enumeration of
    distinct facts with exact rational probabilities, together with a
    certified upper bound on the tail mass [sum_{i>=n} p_i].  Theorem 4.8
    says a tuple-independent PDB with these marginals exists iff the total
    mass is finite; a source {e converges} exactly when it carries a
    finite tail certificate.

    This is also precisely the access model of Section 6's approximation
    algorithm: assumption (i) is [total_mass_upper], assumption (ii) is
    [nth]/[prob]. *)

type t

val make :
  ?name:string ->
  enum:(Fact.t * Rational.t) Seq.t ->
  tail:(int -> float option) ->
  unit ->
  t
(** [enum] must list distinct facts with probabilities in [(0, 1]];
    [tail n] must soundly bound [sum_{i>=n} p_i] (antitone, [None] if
    divergent/unknown).  Validation of fact distinctness and probability
    range happens lazily as the enumeration is consumed. *)

val of_list : ?name:string -> (Fact.t * Rational.t) list -> t
(** Finite source with exact tails.
    @raise Invalid_argument on duplicates or out-of-range
    probabilities. *)

val of_ti_table : Ti_table.t -> t

val geometric :
  ?name:string ->
  first:Rational.t ->
  ratio:Rational.t ->
  facts:(int -> Fact.t) ->
  unit ->
  t
(** [p_i = first * ratio^i] with [0 < ratio < 1]; exact rational
    probabilities and exact geometric tails.
    @raise Invalid_argument if [first] is not in [(0,1]] or [ratio] not in
    [(0,1)]. *)

val telescoping :
  ?name:string -> mass:Rational.t -> facts:(int -> Fact.t) -> unit -> t
(** [p_i = mass / ((i+1)(i+2))]: quadratic (zeta-like) decay with the
    exact tail [mass / (n+1)] — the rational stand-in for the paper's
    [6/(pi^2 n^2)] example. @raise Invalid_argument unless
    [0 < mass <= 1]... mass may exceed 1 only if no single term does. *)

val divergent_harmonic :
  ?name:string -> scale:Rational.t -> facts:(int -> Fact.t) -> unit -> t
(** [p_i = scale / (i+1)], capped at 1: a divergent source for negative
    tests of Theorem 4.8. *)

val name : t -> string

val nth : t -> int -> (Fact.t * Rational.t) option
(** Memoized random access into the enumeration. *)

val prob : t -> Fact.t -> Rational.t option
(** Marginal of a fact if it appears within the enumerated-so-far prefix
    or is found by scanning ahead up to an internal bound; [None] means
    "not found within the scan bound" (treat as probability unknown, not
    zero). *)

val prefix : t -> int -> (Fact.t * Rational.t) list
(** The first [min n length] entries. *)

val tail_mass : t -> int -> float option

val converges : ?max_n:int -> t -> bool
(** Whether the source carries a finite tail certificate, probing
    geometrically ([0, 1, 2, 4, ...]) up to [max_n] (default [2^20]).  A
    certificate may legitimately first answer at depth — e.g. only past
    the already-scanned prefix — so a [false] here means "no certificate
    below [max_n]", not a proof of divergence. *)

val truncation : ?max_n:int -> ?lo:int -> t -> float -> (int * float) option
(** Least [n] with [tail n <= bound] together with the certified tail
    value at that [n] (galloping + binary search).  Each index is probed
    at most once and the returned value is the one observed during the
    search, so callers need never re-consult the certificate.

    [lo] (default 0) is a search floor: pass the answer of a previous
    call at a looser bound to resume the search there instead of
    re-galloping from 0 — sound whenever the certificate is antitone in
    [n], which every certificate built by this module is.
    @raise Invalid_argument if [bound < 0] or [lo] is outside
    [\[0, max_n\]]. *)

val prefix_for_tail : ?max_n:int -> ?lo:int -> t -> float -> int option
(** [truncation] without the certified value. *)

val seq_of : t -> (Fact.t * Rational.t) Seq.t
(** The memoized enumeration as a sequence: entry [i] is [nth s i], so
    re-traversal is free and pulls are shared with every other
    consumer.  Used to concatenate sources (e.g. a packed store prefix
    followed by a completion tail). *)

val total_mass_upper : t -> int -> float option
(** Exact prefix sum (as float) plus the tail bound at [n]. *)

val prefix_sum : t -> int -> Rational.t
(** Exact sum of the first [n] probabilities. *)

val truncate : t -> int -> Ti_table.t
(** The finite TI table on the first [n] facts — the [Omega_n] of
    Proposition 6.1. *)

val append_finite : (Fact.t * Rational.t) list -> t -> t
(** Prepend finitely many entries (e.g. the original facts of a
    completion) ahead of a countable tail.  Facts in the list must not
    reappear in the tail — validated lazily. *)

val map_facts : (Fact.t -> Fact.t) -> t -> t
(** Rename facts (must stay injective — validated lazily). *)

val interleave : t -> t -> t
(** Fair interleaving; tails add.  Fact sets must be disjoint (validated
    lazily). *)

val with_budget : Budget.t -> t -> t
(** A view of the source whose accesses are charged against the budget:
    one [Facts] unit per entry first pulled through the wrapper, one
    [Probes] unit per tail-certificate consultation.  Each access
    checkpoints first, so once the budget is exhausted the next access
    raises [Budget.Exhausted] — the cooperative cancellation point of
    every enumeration-driven engine.  Entries the wrapper has already
    cached are served free of charge. *)
