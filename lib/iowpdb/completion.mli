(** Open-world completions of probabilistic databases (Section 5).

    A completion of a PDB [D] extends its sample space to {e all} finite
    instances while preserving the original law conditionally:
    [P'(A | Omega) = P(A)] — the completion condition (CC) of
    Definition 5.1.  Theorem 5.5 builds one by independent facts: pick
    convergent probabilities [(p_f)] for the facts outside [F(D)], none
    equal to 1, and take the product of [D] with the countable
    tuple-independent PDB they induce.

    This module implements that construction over a finite original PDB
    and a countable source of new facts, together with the policies that
    generalize OpenPDBs (a [lambda] bound for a finite reservoir of new
    facts; a convergent-series bound for an infinite one — the
    generalization suggested at the end of Section 5.1). *)

type t

val complete : Finite_pdb.t -> Fact_source.t -> t
(** @raise Invalid_argument if the source diverges, contains a fact of
    probability 1 (then [P'(Omega) = 0], violating Definition 5.1), or —
    checked lazily on access — overlaps [F(D)]. *)

val complete_ti : Ti_table.t -> Fact_source.t -> t
(** Convenience: complete a finite TI table.  The result is itself
    tuple-independent (original facts and new facts all independent). *)

val original : t -> Finite_pdb.t
val new_facts : t -> Fact_source.t

val marginal : t -> Fact.t -> Rational.t option
(** [P'(E_f)]: exact for original facts (their marginal is unchanged —
    independence of the completing product) and for enumerated new
    facts. *)

val truncated : t -> n:int -> Finite_pdb.t
(** The finite product PDB [D x C_n] over the original worlds and the
    first [n] new facts: the object the approximation algorithm of
    Section 6 actually evaluates queries on. *)

val completion_condition_gap : t -> n:int -> Rational.t
(** [max_D |P'_n(D | Omega) - P(D)|] over original worlds [D], computed
    exactly on the truncated completion.  Theorem 5.5 says this is
    exactly 0 for every [n] — the test suite and experiment E7 assert
    it. *)

val omega_prob_bounds : t -> n:int -> Interval.t
(** Enclosure of [P'(Omega)] — the mass remaining on original worlds =
    [prod_{new f} (1 - p_f)]; positive by construction. *)

val query_prob : t -> eps:float -> Fo.t -> Approx_eval.result
(** Additive [eps]-approximation of a Boolean query on the completed PDB
    (Proposition 6.1 over the product measure: one lineage BDD, weighted
    model counts per original world).
    @raise Invalid_argument when the tail never certifies [eps] within
    the probe bound; see {!query_prob_r} for the recoverable form. *)

val query_prob_r :
  ?budget:Budget.t ->
  t ->
  eps:float ->
  Fo.t ->
  (Approx_eval.result, Errors.t) result
(** Like {!query_prob}, with classified failures instead of exceptions:
    a tail that does not certify [eps] (or an exhausted [budget]) comes
    back as [Budget_exhausted] {e carrying the best sound enclosure
    obtained so far}; malformed completions surface as [Model_invalid].
    When [budget] is given, new-fact accesses are charged as
    [Facts]/[Probes] and BDD allocations as [Bdd_nodes]. *)

val truncation_for_r : t -> eps:float -> (int * float, Errors.t) result
(** The classified truncation search behind {!query_prob_r}: least [n]
    certifying [eps] with the observed tail value, or [Budget_exhausted]
    with the enclosure the deepest certified tail still implies. *)

val complete_r : Finite_pdb.t -> Fact_source.t -> (t, Errors.t) result
(** {!complete} with classified failures ([Divergent_source] on a
    divergent new-fact source, [Model_invalid] otherwise). *)

val marginals : t -> eps:float -> Fo.t -> (Tuple.t * Rational.t) list
(** Open-world answer-tuple marginals of a query with 1-3 free variables:
    the Section 3.1 semantics applied to the completion, each probability
    carrying the Proposition 6.1 additive guarantee (evaluation over the
    active domain of the original and truncated new facts).  Nonzero
    entries only. *)

val expected_answer_count : t -> eps:float -> Fo.t -> Rational.t
(** [E(|Q(D)|)] by linearity of expectation: the sum of the answer-tuple
    marginals over the truncated domain. *)

(** {1 Countable originals (Remark 5.6)} *)

val complete_countable_ti :
  Countable_ti.t -> Fact_source.t -> Countable_ti.t
(** Completion of a {e countable} tuple-independent original: Remark 5.6
    notes that countable TI PDBs already satisfy the closure properties
    Theorem 5.5 needs, and their independent-fact completion is simply the
    TI PDB over the union of the two convergent fact families.  The new
    facts are validated (lazily) to be disjoint from the original
    enumeration's prefix and free of probability-1 entries.
    @raise Invalid_argument if either source diverges. *)

(** {1 Open-world policies} *)

val openpdb_lambda :
  lambda:Rational.t -> new_facts:Fact.t list -> Ti_table.t -> t
(** The OpenPDB-style completion of Ceylan et al.: finitely many new
    facts, each with probability [lambda].
    @raise Invalid_argument unless [0 <= lambda < 1]. *)

val geometric_policy :
  first:Rational.t ->
  ratio:Rational.t ->
  new_facts:(int -> Fact.t) ->
  Ti_table.t ->
  t
(** Infinitely many new facts with geometrically decaying probabilities —
    the "bounded by the summands of a fixed convergent series"
    generalization. *)
