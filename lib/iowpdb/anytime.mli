(** Incremental anytime evaluation of Boolean queries on countable
    tuple-independent PDBs.

    {!Approx_eval.boolean} is batch-style: it picks the truncation depth
    [n(eps)] from the tail certificate up front, builds the truncated
    table, and compiles one BDD from scratch — every tighter [eps] redoes
    all the work.  An {!t} session instead deepens the truncation prefix
    step by step and {e reuses} the knowledge-compilation work between
    steps:

    - one shared {!Bdd.manager} lives for the whole session, so unique
      table, apply cache and negation cache carry over — recompiling a
      grown lineage hits the caches for every sub-function already built;
    - the fact alphabet of Proposition 6.1 is extended in place (variable
      [i] is the [i]-th enumerated fact at every step) under a stable
      first-use variable order;
    - for sentences that are a pure quantifier chain over a
      quantifier-free matrix (the common [exists x1...xk. psi] /
      [forall x1...xk. psi] shapes), a step only compiles the {e delta}
      lineage — the ground instances that mention a fresh domain value —
      and disjoins/conjoins it onto the previous BDD.  When fresh facts
      could retroactively change old ground atoms (all their arguments
      were already in the evaluation domain), the step falls back to a
      full recompile in the shared manager, which is always sound.

    After every step the session emits a certified {!Interval.t}
    enclosure of [P(Q)] (same claim-(∗) argument as {!Approx_eval}).
    Because the classical engines evaluate over the active domain of the
    truncated table — a semantics that moves as the prefix deepens — the
    session evaluates each step over the prefix domain padded with
    [quantifier_rank phi] fresh inert values, realizing the r-equivalence
    argument behind Proposition 6.1: a world supported inside the prefix
    then evaluates identically over every larger domain, so all per-step
    enclosures bound the {e same} limit probability and intersecting them
    is sound.  The reported interval is that running intersection, hence
    monotonically narrowing.  Queries using the built-in order [Cmp]
    break the interchangeability of inert values; for them each step's
    interval is a certificate about that step's truncated semantics only,
    and no intersection is performed.

    The session stops as soon as the width is at most [2 * eps], or a
    step / node / prefix budget is hit, or the enumeration is exhausted
    (in which case the answer is exact up to outward rounding). *)

type stop_reason =
  | Converged  (** interval width reached [2 * eps] *)
  | Exhausted
      (** the enumeration ended: the final interval is exact up to
          outward rounding *)
  | Step_budget  (** [max_steps] reached before convergence *)
  | Node_budget  (** the shared manager exceeded [max_nodes] *)
  | Prefix_budget  (** [max_n] facts reached before convergence *)
  | Interrupted of Budget.exhaustion
      (** the session's {!Budget.t} tripped (deadline, work-unit cap, or
          cancellation); the running {!bounds} keep the last completed
          step's certified enclosure *)

val stop_reason_to_string : stop_reason -> string

type step = {
  index : int;  (** 1-based step number *)
  n : int;  (** truncation depth after this step *)
  tail : float option;  (** best certified tail bound at [n] *)
  estimate : Interval.t;
      (** certified enclosure of [P(Q | Omega_n)] on the prefix, computed
          with the outward-rounding interval carrier (exact rational
          counts would go cubic in [n] on slowly-decaying sources) *)
  bounds : Interval.t;
      (** certified enclosure of [P(Q)]; monotonically narrowing across
          steps (for [Cmp]-free queries — see the module comment) *)
  width : float;  (** [Interval.width bounds] *)
  bdd_size : int;  (** nodes reachable from the current lineage root *)
  incremental : bool;
      (** whether the delta path was taken (as opposed to a recompile in
          the shared manager) *)
  stats : Stats.snapshot;
      (** instrumentation deltas for this step: BDD cache traffic, source
          pulls, certificate probes, wall-clock *)
}

type t

val create :
  ?eps:float ->
  ?max_n:int ->
  ?max_steps:int ->
  ?max_nodes:int ->
  ?growth:(int -> int) ->
  ?budget:Budget.t ->
  ?cache_size:int ->
  ?gc_threshold:int ->
  Fact_source.t ->
  Fo.t ->
  t
(** A fresh session.  Defaults: [eps = 0.01], [max_n = 2^20],
    [max_steps = 64], [max_nodes = max_int], [growth] doubles the prefix
    ([n -> max (n+1) (2n)]).  [growth] must be strictly increasing; its
    result is clamped to [max_n].

    When [budget] is given, every step charges one [Steps] unit, source
    accesses charge [Facts]/[Probes], and each fresh BDD node charges
    one [Bdd_nodes] unit; exhaustion at any of these points stops the
    session with [Interrupted] — never an exception — and the bounds of
    the last {e completed} step remain the session's certified
    enclosure.

    [cache_size] and [gc_threshold] tune the session's shared BDD
    manager (see {!Bdd.manager}).  The session registers its current
    lineage diagram as a GC root and offers a collection after every
    step, so with the default [gc_threshold] (2^16 allocations) the live
    node count — what {!node_count}, [max_nodes] and the [Bdd_nodes]
    budget observe — stays proportional to the current diagram instead
    of growing with every node ever built; swept nodes are refunded to
    [budget].
    @raise Invalid_argument if [eps] is outside [(0, 1/2)] or the query
    has free variables. *)

val step : t -> step option
(** Deepen the prefix once and re-certify; [None] once the session has
    stopped (inspect {!stop_reason}). *)

val run : t -> stop_reason * step list
(** Step until the session stops; returns the reason and the full
    (chronological) step history, including steps taken before the
    call. *)

val history : t -> step list
val last_step : t -> step option

val stop_reason : t -> stop_reason option
(** [None] while the session can still make progress. *)

val eps : t -> float
val current_n : t -> int

val node_count : t -> int
(** Live nodes in the session's shared manager (allocated and not yet
    garbage-collected). *)

val allocated_nodes : t -> int
(** Total nodes ever hash-consed in the session's shared manager,
    including ones the GC has since reclaimed. *)

val bounds : t -> Interval.t
(** The running certified enclosure of [P(Q)] — [\[0,1\]] before the
    first completed step, the last step's [bounds] afterwards.  Valid at
    any moment, including after an [Interrupted] stop: the anytime
    guarantee the robust supervisor relies on. *)
