(* Each draw runs on its own substream of the seed generator, so draw [i]
   is a function of [(seed, i)] alone: re-traversing the sequence (Seq is
   not memoized) or consuming it out of order replays identical worlds.
   The previous version threaded ONE mutable generator through Seq.init,
   so a second traversal silently continued the stream. *)
let draws ~seed ~samples sampler =
  let base = Prng.create ~seed () in
  Seq.init samples (fun i -> sampler (Prng.substream base i))

let estimate_event ~seed ~samples sampler event =
  let hits =
    Seq.fold_left
      (fun acc inst -> if event inst then acc + 1 else acc)
      0
      (draws ~seed ~samples sampler)
  in
  float_of_int hits /. float_of_int samples

let estimate_marginal ~seed ~samples sampler f =
  estimate_event ~seed ~samples sampler (fun inst -> Instance.mem f inst)

let independence_gap ~seed ~samples sampler f g =
  let both = ref 0 and cf = ref 0 and cg = ref 0 in
  Seq.iter
    (fun inst ->
      let hf = Instance.mem f inst and hg = Instance.mem g inst in
      if hf then incr cf;
      if hg then incr cg;
      if hf && hg then incr both)
    (draws ~seed ~samples sampler);
  let n = float_of_int samples in
  Float.abs
    ((float_of_int !both /. n)
     -. (float_of_int !cf /. n *. (float_of_int !cg /. n)))

let exclusivity_violations ~seed ~samples sampler block_of =
  let violations = ref 0 in
  Seq.iter
    (fun inst ->
      let seen = Hashtbl.create 8 in
      let bad = ref false in
      Instance.iter
        (fun f ->
          match block_of f with
          | None -> ()
          | Some b ->
            if Hashtbl.mem seen b then bad := true else Hashtbl.add seen b ())
        inst;
      if !bad then incr violations)
    (draws ~seed ~samples sampler);
  !violations
