(* Domain-parallel Monte-Carlo estimation.

   Two-layer design:

   - [compile] turns a space into an immutable sampling plan: float
     arrays only, no closures over the mutable enumeration caches of
     [Countable_ti] / [Fact_source] / [Countable_bid].  All enumeration
     (and all Rational arithmetic) happens here, in the calling domain;
     worker domains touch nothing but immutable plan data, [Prng] states
     they own, and the pure evaluators ([Fo_eval], [Instance]).

   - [estimate_event] cuts the samples into fixed batches and hands
     batches to domains through an atomic work-stealing counter.  Batch
     [b] draws from [Prng.substream root b] and writes its hit count
     into slot [b] of a shared int array (each slot written by exactly
     one domain, whichever claimed the batch), so the tally — and hence
     every statistical field of the result — is a function of
     [(seed, samples, batch_size)] alone, bit-identical across domain
     counts and scheduling orders.

   Soundness of the reported interval: the plan samples the truncated
   law, which is within [tv] (the certified tail at the cut, plus any
   in-block alternatives dropped for BID) of the true law in total
   variation, so |P_plan(E) - P_true(E)| <= tv for every event.  The
   Wilson interval covers P_plan(E) with the stated confidence; widening
   it by [tv] covers P_true(E). *)

type space =
  | Ti of Countable_ti.t
  | Bid of Countable_bid.t
  | Completed of Completion.t

type result = {
  estimate : float;
  hits : int;
  samples : int;
  samples_requested : int;
  interrupted : bool;
  confidence : float;
  truncation_tv : float;
  wilson : Interval.t;
  bounds : Interval.t;
  domains_used : int;
  batches : int;
  batch_size : int;
  width_trajectory : (int * float) list;
}

let c_runs = Stats.counter "mc.runs"
let c_worlds = Stats.counter "mc.worlds"
let c_hits = Stats.counter "mc.hits"
let c_batches = Stats.counter "mc.batches"
let t_run = Stats.timer "mc.run"
let t_batch = Stats.timer "mc.batch"

(* ------------------------------------------------------------------ *)
(* Statistical primitives                                             *)
(* ------------------------------------------------------------------ *)

(* Acklam's rational approximation to the standard normal quantile;
   relative error below 1.15e-9 over (0,1) — far inside the slack any
   Monte-Carlo interval carries. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Mc_eval.normal_quantile";
  let a1 = -3.969683028665376e+01 and a2 = 2.209460984245205e+02 in
  let a3 = -2.759285104469687e+02 and a4 = 1.383577518672690e+02 in
  let a5 = -3.066479806614716e+01 and a6 = 2.506628277459239e+00 in
  let b1 = -5.447609879822406e+01 and b2 = 1.615858368580409e+02 in
  let b3 = -1.556989798598866e+02 and b4 = 6.680131188771972e+01 in
  let b5 = -1.328068155288572e+01 in
  let c1 = -7.784894002430293e-03 and c2 = -3.223964580411365e-01 in
  let c3 = -2.400758277161838e+00 and c4 = -2.549732539343734e+00 in
  let c5 = 4.374664141464968e+00 and c6 = 2.938163982698783e+00 in
  let d1 = 7.784695709041462e-03 and d2 = 3.224671290700398e-01 in
  let d3 = 2.445134137142996e+00 and d4 = 3.754408661907416e+00 in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c1 *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5) *. q +. c6)
    /. ((((d1 *. q +. d2) *. q +. d3) *. q +. d4) *. q +. 1.0)
  else if p <= 1.0 -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a1 *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5) *. r +. a6)
    *. q
    /. (((((b1 *. r +. b2) *. r +. b3) *. r +. b4) *. r +. b5) *. r +. 1.0)
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c1 *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5) *. q +. c6)
       /. ((((d1 *. q +. d2) *. q +. d3) *. q +. d4) *. q +. 1.0))

let z_of_confidence c =
  if not (c > 0.0 && c < 1.0) then
    invalid_arg "Mc_eval: confidence must lie in (0, 1)";
  normal_quantile (1.0 -. ((1.0 -. c) /. 2.0))

let wilson_interval ~z ~hits ~samples =
  if samples <= 0 then invalid_arg "Mc_eval.wilson_interval: samples <= 0";
  if hits < 0 || hits > samples then
    invalid_arg "Mc_eval.wilson_interval: hits outside [0, samples]";
  let n = float_of_int samples in
  let ph = float_of_int hits /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (ph +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt (((ph *. (1.0 -. ph)) +. (z2 /. (4.0 *. n))) /. n)
  in
  (* At the boundaries the exact endpoints are 0 / 1 (centre and half
     cancel algebraically), but the float evaluation leaves a residue of
     order 1e-19 that would wrongly exclude a true probability of exactly
     0 or 1 — pin them. *)
  let lo = if hits = 0 then 0.0 else centre -. half in
  let hi = if hits = samples then 1.0 else centre +. half in
  Interval.clamp01 (Interval.make lo hi)

let widen_by_tv iv tv =
  if tv <= 0.0 then iv
  else
    Interval.clamp01
      (Interval.make (Interval.lo iv -. tv) (Interval.hi iv +. tv))

(* ------------------------------------------------------------------ *)
(* The generic batched, work-stealing estimator                       *)
(* ------------------------------------------------------------------ *)

let estimate_event ?budget ?domains ?(batch_size = 1024) ?(confidence = 0.99)
    ?(truncation_tv = 0.0) ~seed ~samples sampler pred =
  if samples <= 0 then invalid_arg "Mc_eval: samples must be positive";
  if batch_size <= 0 then invalid_arg "Mc_eval: batch_size must be positive";
  if not (truncation_tv >= 0.0) then
    invalid_arg "Mc_eval: truncation_tv must be nonnegative";
  let requested = samples in
  (* Clamp up front to what the budget can still admit: under a [Samples]
     cap or a [Virtual] deadline the admissible count is known before any
     world is drawn, so a budget-truncated result is a function of the
     budget alone, not of domain scheduling. *)
  let samples =
    match budget with
    | None -> samples
    | Some b ->
      Budget.checkpoint b;
      let s =
        match Budget.cap_remaining b Budget.Samples with
        | Some r -> Stdlib.min samples r
        | None -> samples
      in
      (match Budget.time_remaining_units b with
       | Some u -> Stdlib.min s u
       | None -> s)
  in
  if samples <= 0 then begin
    let b = Option.get budget in
    let cause =
      match Budget.cap_remaining b Budget.Samples with
      | Some 0 -> Budget.Cap Budget.Samples
      | _ -> Budget.Timeout
    in
    raise (Budget.Exhausted cause)
  end;
  let z = z_of_confidence confidence in
  let nbatches = (samples + batch_size - 1) / batch_size in
  let domains =
    let d =
      match domains with
      | Some d ->
        if d < 1 then invalid_arg "Mc_eval: domains must be at least 1" else d
      | None -> Domain.recommended_domain_count ()
    in
    Stdlib.min d nbatches
  in
  let t0 = Unix.gettimeofday () in
  let root = Prng.create ~seed () in
  let hits_by_batch = Array.make nbatches 0 in
  let run_batch b =
    (* A pure function of (seed, b): its own substream, its own slot. *)
    let g = Prng.substream root b in
    let first = b * batch_size in
    let count = Stdlib.min batch_size (samples - first) in
    let h = ref 0 in
    for _ = 1 to count do
      if pred (sampler g) then incr h
    done;
    hits_by_batch.(b) <- !h;
    count
  in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  (* Workers poll the budget between batches — [Budget.ok] is data, never
     an exception, so nothing crosses the [Domain] boundary.  Claims come
     from one fetch-and-add counter and every claimed batch runs to
     completion, so the set of finished batches is always the contiguous
     prefix [0 .. completed), and the partial tally is a well-defined
     sample of the first [completed * batch_size] worlds. *)
  let budget_ok () =
    match budget with None -> true | Some b -> Budget.ok b
  in
  let worker () =
    (* Instrumentation stays worker-local until after the join: the
       Stats registry is not thread-safe. *)
    let worlds = ref 0 and batches = ref 0 and secs = ref 0.0 in
    let rec loop () =
      if budget_ok () then begin
        let b = Atomic.fetch_and_add next 1 in
        if b < nbatches then begin
          let start = Unix.gettimeofday () in
          worlds := !worlds + run_batch b;
          secs := !secs +. (Unix.gettimeofday () -. start);
          incr batches;
          Atomic.incr completed;
          loop ()
        end
      end
    in
    loop ();
    (!worlds, !batches, !secs)
  in
  let per_domain =
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    let mine = worker () in
    mine :: List.map Domain.join spawned
  in
  let done_batches = Atomic.get completed in
  if done_batches = 0 then begin
    (* Only reachable with a budget: the deadline passed between the
       entry checkpoint and the first claim. *)
    match budget with
    | Some b ->
      raise
        (Budget.Exhausted
           (Option.value (Budget.exhausted b) ~default:Budget.Timeout))
    | None -> assert false
  end;
  let samples_done = Stdlib.min samples (done_batches * batch_size) in
  let interrupted = done_batches < nbatches || samples < requested in
  let hits =
    let acc = ref 0 in
    for b = 0 to done_batches - 1 do
      acc := !acc + hits_by_batch.(b)
    done;
    !acc
  in
  let width_trajectory =
    let points = Stdlib.min done_batches 24 in
    let checkpoints =
      List.sort_uniq compare
        (List.init points (fun k -> ((k + 1) * done_batches / points) - 1))
    in
    let prefix_hits = Array.make done_batches 0 in
    let acc = ref 0 in
    for i = 0 to done_batches - 1 do
      acc := !acc + hits_by_batch.(i);
      prefix_hits.(i) <- !acc
    done;
    List.map
      (fun b ->
        let s = Stdlib.min samples ((b + 1) * batch_size) in
        let iv =
          widen_by_tv (wilson_interval ~z ~hits:prefix_hits.(b) ~samples:s)
            truncation_tv
        in
        (s, Interval.width iv))
      checkpoints
  in
  Option.iter (fun b -> Budget.spend b Budget.Samples samples_done) budget;
  Stats.incr c_runs;
  Stats.add c_worlds samples_done;
  Stats.add c_hits hits;
  Stats.add c_batches done_batches;
  List.iteri
    (fun i (w, bt, s) ->
      Stats.add (Stats.counter (Printf.sprintf "mc.domain%d.worlds" i)) w;
      Stats.add (Stats.counter (Printf.sprintf "mc.domain%d.batches" i)) bt;
      Stats.add_elapsed t_batch (Float.max 0.0 s))
    per_domain;
  Stats.add_elapsed t_run (Float.max 0.0 (Unix.gettimeofday () -. t0));
  let wilson = wilson_interval ~z ~hits ~samples:samples_done in
  {
    estimate = float_of_int hits /. float_of_int samples_done;
    hits;
    samples = samples_done;
    samples_requested = requested;
    interrupted;
    confidence;
    truncation_tv;
    wilson;
    bounds = widen_by_tv wilson truncation_tv;
    domains_used = domains;
    batches = done_batches;
    batch_size;
    width_trajectory;
  }

(* ------------------------------------------------------------------ *)
(* Sampling plans                                                     *)
(* ------------------------------------------------------------------ *)

type plan = {
  draw : Prng.t -> Instance.t;
  tv : float;  (* TV distance bound between plan law and true law *)
  support : Fact.t list;  (* every fact the plan can emit *)
}

let ti_entries ~tail_cut ~max_facts src =
  let n, tv =
    match Fact_source.truncation ~max_n:max_facts src tail_cut with
    | Some nt -> nt
    | None -> (
        match Fact_source.tail_mass src max_facts with
        | Some t -> (max_facts, t)
        | None ->
          invalid_arg
            (Printf.sprintf
               "Mc_eval: %s certifies no tail at or below %d facts; raise \
                ~max_facts or loosen ~tail_cut"
               (Fact_source.name src) max_facts))
  in
  let entries =
    Array.of_list
      (List.map
         (fun (f, p) -> (f, Rational.to_float p))
         (Fact_source.prefix src n))
  in
  (entries, tv)

let draw_ti entries g =
  Array.fold_left
    (fun acc (f, p) -> if Prng.bernoulli g p then Instance.add f acc else acc)
    Instance.empty entries

let ti_plan ~tail_cut ~max_facts src =
  let entries, tv = ti_entries ~tail_cut ~max_facts src in
  {
    draw = draw_ti entries;
    tv;
    support = Array.to_list (Array.map fst entries);
  }

(* BID: truncate the block enumeration at a certified block-mass tail and
   each block's alternatives the way [Countable_bid.sample] does (keep
   until the remaining in-block mass is below the cut).  A sampled world
   differs from a true draw only if some dropped block fires or a kept
   block's true draw lands in its dropped alternatives, so
   tv <= block tail + sum of dropped in-block masses. *)
let bid_plan ~tail_cut ~max_blocks bid =
  let keep_alts mass alts =
    let rec take acc m = function
      | [] -> (acc, m)
      | (f, p) :: rest ->
        let pf = Rational.to_float p in
        let acc = (f, pf) :: acc and m = m +. pf in
        if mass -. m <= tail_cut then (acc, m) else take acc m rest
    in
    take [] 0.0 alts
  in
  let rec scan i blocks_rev dropped =
    let finish tail = (List.rev blocks_rev, dropped +. tail) in
    if i >= max_blocks then begin
      match Countable_bid.tail_mass bid i with
      | Some tail -> finish tail
      | None ->
        invalid_arg
          (Printf.sprintf
             "Mc_eval: %s certifies no block tail at or below %d blocks; \
              raise ~max_facts or loosen ~tail_cut"
             (Countable_bid.name bid) max_blocks)
    end
    else
      match Countable_bid.tail_mass bid i with
      | Some tail when tail <= tail_cut -> finish tail
      | _ -> (
          match Countable_bid.nth_block bid i with
          | None -> finish 0.0
          | Some b ->
            let mass = Rational.to_float (Countable_bid.block_mass b) in
            let alts = Countable_bid.alternatives ~limit:4096 b in
            let kept_rev, kept_mass = keep_alts mass alts in
            let kept = List.rev kept_rev in
            let block =
              ( Array.of_list (List.map fst kept),
                Array.of_list (List.map snd kept) )
            in
            scan (i + 1) (block :: blocks_rev)
              (dropped +. Float.max 0.0 (mass -. kept_mass)))
  in
  let blocks, tv = scan 0 [] 0.0 in
  let blocks = Array.of_list blocks in
  let draw g =
    Array.fold_left
      (fun acc (facts, probs) ->
        (* Sequential inversion over the kept alternatives; the dropped
           mass collapses into "no fact from this block". *)
        let u = ref (Prng.float g) in
        let rec go j =
          if j >= Array.length probs then acc
          else if !u < probs.(j) then Instance.add facts.(j) acc
          else begin
            u := !u -. probs.(j);
            go (j + 1)
          end
        in
        go 0)
      Instance.empty blocks
  in
  let support =
    List.concat_map
      (fun (facts, _) -> Array.to_list facts)
      (Array.to_list blocks)
  in
  { draw; tv; support }

(* Completion: one exact categorical draw over the finitely many original
   worlds (the first factor of the independent product of Definition
   5.1), one truncated-TI draw over the new facts.  Only the new-fact
   factor is truncated, so its tail is the whole TV budget. *)
let completion_plan ~tail_cut ~max_facts comp =
  let orig = Completion.original comp in
  let worlds = Array.of_list (Finite_pdb.worlds orig) in
  if Array.length worlds = 0 then
    invalid_arg "Mc_eval: completion with no original worlds";
  let insts = Array.map fst worlds in
  let cum = Array.make (Array.length worlds) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (_, p) ->
      acc := !acc +. Rational.to_float p;
      cum.(i) <- !acc)
    worlds;
  let news, tv = ti_entries ~tail_cut ~max_facts (Completion.new_facts comp) in
  let pick_world u =
    let lo = ref 0 and hi = ref (Array.length cum - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if u < cum.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let draw g =
    let w = insts.(pick_world (Prng.float g)) in
    Array.fold_left
      (fun acc (f, p) -> if Prng.bernoulli g p then Instance.add f acc else acc)
      w news
  in
  let support =
    Finite_pdb.fact_universe orig @ Array.to_list (Array.map fst news)
  in
  { draw; tv; support }

let compile ~tail_cut ~max_facts = function
  | Ti cti -> ti_plan ~tail_cut ~max_facts (Countable_ti.source cti)
  | Bid bid -> bid_plan ~tail_cut ~max_blocks:max_facts bid
  | Completed comp -> completion_plan ~tail_cut ~max_facts comp

(* ------------------------------------------------------------------ *)
(* Query entry points                                                 *)
(* ------------------------------------------------------------------ *)

module VSet = Set.Make (Value)

(* The evaluation domain is fixed once per run: adom of the plan's full
   support plus the query's constants, padded with [quantifier_rank phi]
   fresh inert values so every sampled world contributes its limit truth
   value (Proposition 6.1's r-equivalence argument, the same device as
   [Anytime]).  [Cmp] breaks inert-value interchangeability; such queries
   are evaluated unpadded, over the truncated-table semantics. *)
let eval_domain_for support phi =
  let base = Fo_eval.evaluation_domain (Instance.of_list support) phi [] in
  if Fo.has_cmp phi then base
  else begin
    let avoid = VSet.of_list base in
    let k = Fo.quantifier_rank phi in
    let rec choose attempt =
      let cand =
        List.init k (fun i ->
            Value.Str (Printf.sprintf "\x00pad.%d.%d" attempt i))
      in
      if List.exists (fun v -> VSet.mem v avoid) cand then choose (attempt + 1)
      else cand
    in
    base @ choose 0
  end

let boolean ?budget ?domains ?batch_size ?(tail_cut = ldexp 1.0 (-20))
    ?(max_facts = 4096) ?confidence ~seed ~samples space phi =
  if Fo.free_vars phi <> [] then
    invalid_arg "Mc_eval.boolean: query must be a sentence";
  let plan = compile ~tail_cut ~max_facts space in
  let extra_domain = eval_domain_for plan.support phi in
  estimate_event ?budget ?domains ?batch_size ?confidence
    ~truncation_tv:plan.tv ~seed ~samples plan.draw
    (fun w -> Fo_eval.models ~extra_domain w phi)

let marginal ?budget ?domains ?batch_size ?(tail_cut = ldexp 1.0 (-20))
    ?(max_facts = 4096) ?confidence ~seed ~samples space f =
  let plan = compile ~tail_cut ~max_facts space in
  estimate_event ?budget ?domains ?batch_size ?confidence
    ~truncation_tv:plan.tv ~seed ~samples plan.draw
    (fun w -> Instance.mem f w)
