(* Memoized countable enumerations of weighted facts.  The enumeration is
   pulled lazily; every pulled entry is validated (distinct fact,
   probability in (0,1]) and cached for random access. *)

(* Minimal growable array (the stdlib gains Dynarray only in 5.2). *)
module Dyn = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }
  let length d = d.len

  let get d i =
    if i < 0 || i >= d.len then invalid_arg "Dyn.get" else d.data.(i)

  let add_last d x =
    if d.len = Array.length d.data then begin
      let cap = Stdlib.max 8 (2 * Array.length d.data) in
      let data = Array.make cap x in
      Array.blit d.data 0 data 0 d.len;
      d.data <- data
    end;
    d.data.(d.len) <- x;
    d.len <- d.len + 1
end

type t = {
  name : string;
  tail : int -> float option;
  cache : (Fact.t * Rational.t) Dyn.t;
  index : (Fact.t, int) Hashtbl.t;
  mutable rest : (Fact.t * Rational.t) Seq.t;
  mutable exhausted : bool;
}

let scan_bound = 2048

let c_pull = Stats.counter "source.pull"
let c_tail_probe = Stats.counter "source.tail_probe"

let make ?(name = "source") ~enum ~tail () =
  {
    name;
    tail;
    cache = Dyn.create ();
    index = Hashtbl.create 64;
    rest = enum;
    exhausted = false;
  }

let name s = s.name

(* Pull one more entry into the cache; false at end of enumeration. *)
let pull s =
  if s.exhausted then false
  else begin
    Stats.incr c_pull;
    match s.rest () with
    | Seq.Nil ->
      s.exhausted <- true;
      false
    | Seq.Cons ((f, p), rest) ->
      s.rest <- rest;
      if Rational.sign p <= 0 || Rational.compare p Rational.one > 0 then
        invalid_arg
          (Printf.sprintf "Fact_source %s: probability %s for %s not in (0,1]"
             s.name (Rational.to_string p) (Fact.to_string f));
      if Hashtbl.mem s.index f then
        invalid_arg
          (Printf.sprintf "Fact_source %s: duplicate fact %s" s.name
             (Fact.to_string f));
      Hashtbl.add s.index f (Dyn.length s.cache);
      Dyn.add_last s.cache (f, p);
      true
  end

let ensure s n =
  let continue = ref true in
  while Dyn.length s.cache < n && !continue do
    continue := pull s
  done

let nth s i =
  if i < 0 then invalid_arg "Fact_source.nth";
  ensure s (i + 1);
  if i < Dyn.length s.cache then Some (Dyn.get s.cache i) else None

let prob s f =
  match Hashtbl.find_opt s.index f with
  | Some i -> Some (snd (Dyn.get s.cache i))
  | None ->
    let rec go () =
      match Hashtbl.find_opt s.index f with
      | Some i -> Some (snd (Dyn.get s.cache i))
      | None ->
        if Dyn.length s.cache >= scan_bound || not (pull s) then None
        else go ()
    in
    go ()

let prefix s n =
  ensure s n;
  let len = Stdlib.min n (Dyn.length s.cache) in
  List.init len (Dyn.get s.cache)

let tail_mass s n =
  (* If the enumeration is already known to be exhausted at or before n,
     the tail is exactly 0 regardless of the certificate.  We deliberately
     do NOT force the enumeration here: callers probe tails at very deep n
     (truncation search), and the certificate alone must answer. *)
  Stats.incr c_tail_probe;
  if s.exhausted && Dyn.length s.cache <= n then Some 0.0 else s.tail n

let default_max_n = 1 lsl 20

let converges ?(max_n = default_max_n) s =
  (* Probe geometrically up to max_n: a certificate is allowed to first
     answer at any depth (e.g. only past the scanned prefix), so the old
     fixed ladder {0, 1, 16, 1024} misclassified deep-but-certified
     sources as divergent. *)
  let rec go n =
    tail_mass s n <> None
    || (n < max_n && go (Stdlib.min max_n (Stdlib.max 1 (2 * n))))
  in
  go 0

let truncation ?(max_n = default_max_n) ?(lo = 0) s bound =
  if bound < 0.0 then invalid_arg "Fact_source.truncation";
  if lo < 0 || lo > max_n then invalid_arg "Fact_source.truncation: lo";
  (* Probe each index at most once and remember the certified value, so
     the caller never has to re-ask the certificate (whose answers may
     depend on mutable scan state, or on a bounded probe budget).

     [lo] is a caller-supplied search floor: when the caller knows (from
     a previous search at a looser bound and an antitone certificate)
     that no index below [lo] can satisfy this bound, the gallop starts
     there and the bisection never revisits [0, lo).  The anytime loop's
     tightening-eps pattern turns a from-scratch O(log n) probe ladder
     into a handful of probes near the previous answer. *)
  let probed = Hashtbl.create 16 in
  let probe n =
    match Hashtbl.find_opt probed n with
    | Some r -> r
    | None ->
      let r = tail_mass s n in
      Hashtbl.add probed n r;
      r
  in
  let ok n = match probe n with Some t -> t <= bound | None -> false in
  if not (ok max_n) then None
  else begin
    let rec gallop n =
      if ok n then n else gallop (Stdlib.min max_n ((2 * n) + 1))
    in
    let hi = gallop lo in
    let rec bisect lo hi =
      if lo >= hi then hi
      else begin
        let mid = (lo + hi) / 2 in
        if ok mid then bisect lo mid else bisect (mid + 1) hi
      end
    in
    let n = bisect lo hi in
    match Hashtbl.find_opt probed n with
    | Some (Some t) -> Some (n, t)
    | _ -> assert false (* bisect only returns verified points *)
  end

let prefix_for_tail ?max_n ?lo s bound =
  Option.map fst (truncation ?max_n ?lo s bound)

let prefix_sum s n =
  List.fold_left (fun acc (_, p) -> Rational.add acc p) Rational.zero (prefix s n)

let total_mass_upper s n =
  Option.map
    (fun t -> Rational.to_float (prefix_sum s n) +. t)
    (tail_mass s n)

let truncate s n = Ti_table.create (prefix s n)

(* ------------------------------------------------------------------ *)
(* Constructors *)
(* ------------------------------------------------------------------ *)

let of_list ?(name = "finite") entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. Rational.to_float (snd arr.(i))
  done;
  let src =
    make ~name
      ~enum:(Seq.init n (Array.get arr))
      (* One relative ulp of headroom keeps the float suffix sums a sound
         upper bound on the exact rational tails. *)
      ~tail:(fun k -> Some (if k >= n then 0.0 else suffix.(k) *. (1. +. 1e-12)))
      ()
  in
  ensure src n;
  src

let of_ti_table ti = of_list ~name:"ti-table" (Ti_table.facts ti)

let geometric ?name ~first ~ratio ~facts () =
  let module Q = Rational in
  if not (Q.sign first > 0 && Q.compare first Q.one <= 0) then
    invalid_arg "Fact_source.geometric: first not in (0,1]";
  if not (Q.sign ratio > 0 && Q.compare ratio Q.one < 0) then
    invalid_arg "Fact_source.geometric: ratio not in (0,1)";
  let name =
    Option.value name
      ~default:
        (Printf.sprintf "geometric(%s,%s)" (Q.to_string first)
           (Q.to_string ratio))
  in
  let term i = Q.mul first (Q.pow ratio i) in
  (* Enumerate incrementally (one multiplication per step) rather than
     recomputing ratio^i: the exact numerators/denominators grow linearly
     in bits, so per-index pow would make deep scans quadratic. *)
  let enum =
    Seq.unfold
      (fun (i, p) -> Some ((facts i, p), (i + 1, Q.mul p ratio)))
      (0, first)
  in
  (* Exact tail: first * ratio^n / (1 - ratio), nudged one float ulp up. *)
  let tail n = Some (Float.succ (Q.to_float (Q.div (term n) (Q.compl ratio)))) in
  make ~name ~enum ~tail ()

let telescoping ?name ~mass ~facts () =
  let module Q = Rational in
  if Q.sign mass <= 0 then invalid_arg "Fact_source.telescoping: mass <= 0";
  let term i = Q.div mass (Q.of_int ((i + 1) * (i + 2))) in
  if Q.compare (term 0) Q.one > 0 then
    invalid_arg "Fact_source.telescoping: first term above 1";
  let name =
    Option.value name
      ~default:(Printf.sprintf "telescoping(%s)" (Q.to_string mass))
  in
  let enum = Seq.map (fun i -> (facts i, term i)) (Seq.ints 0) in
  (* sum_{i>=n} mass/((i+1)(i+2)) = mass/(n+1), exactly. *)
  let tail n = Some (Float.succ (Q.to_float (Q.div mass (Q.of_int (n + 1))))) in
  make ~name ~enum ~tail ()

let divergent_harmonic ?name ~scale ~facts () =
  let module Q = Rational in
  if Q.sign scale <= 0 then invalid_arg "Fact_source.divergent_harmonic";
  let name =
    Option.value name
      ~default:(Printf.sprintf "harmonic(%s)" (Q.to_string scale))
  in
  let term i = Q.min Q.one (Q.div scale (Q.of_int (i + 1))) in
  let enum = Seq.map (fun i -> (facts i, term i)) (Seq.ints 0) in
  make ~name ~enum ~tail:(fun _ -> None) ()

let seq_of s =
  Seq.unfold (fun i -> Option.map (fun e -> (e, i + 1)) (nth s i)) 0

let with_budget b s =
  (* Charge one Facts unit per entry pulled through the wrapper and one
     Probes unit per tail-certificate consultation; the checkpoint comes
     first, so a budget capped at [n] units admits exactly [n] accesses
     and raises [Budget.Exhausted] on access [n+1].  Entries already
     cached in the wrapper are free (its [make] memoizes as usual). *)
  let enum =
    Seq.unfold
      (fun i ->
        Budget.checkpoint b;
        Budget.spend b Budget.Facts 1;
        Option.map (fun e -> (e, i + 1)) (nth s i))
      0
  in
  make
    ~name:("budget:" ^ s.name)
    ~enum
    ~tail:(fun n ->
      Budget.checkpoint b;
      Budget.spend b Budget.Probes 1;
      tail_mass s n)
    ()

let append_finite entries s =
  let k = List.length entries in
  let arr = Array.of_list entries in
  let suffix = Array.make (k + 1) 0.0 in
  for i = k - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. Rational.to_float (snd arr.(i))
  done;
  make
    ~name:(Printf.sprintf "%d+%s" k s.name)
    ~enum:(Seq.append (Array.to_seq arr) (seq_of s))
    ~tail:(fun n ->
      if n >= k then tail_mass s (n - k)
      else
        Option.map
          (fun t -> (suffix.(n) *. (1. +. 1e-12)) +. t)
          (tail_mass s 0))
    ()

let map_facts rename s =
  make
    ~name:("map:" ^ s.name)
    ~enum:(Seq.map (fun (f, p) -> (rename f, p)) (seq_of s))
    ~tail:(fun n -> tail_mass s n)
    ()

let interleave a b =
  let enum =
    let rec go ia ib turn_a () =
      if turn_a then begin
        match nth a ia with
        | Some e -> Seq.Cons (e, go (ia + 1) ib false)
        | None -> (
            match nth b ib with
            | Some e -> Seq.Cons (e, go ia (ib + 1) false)
            | None -> Seq.Nil)
      end
      else begin
        match nth b ib with
        | Some e -> Seq.Cons (e, go ia (ib + 1) true)
        | None -> (
            match nth a ia with
            | Some e -> Seq.Cons (e, go (ia + 1) ib true)
            | None -> Seq.Nil)
      end
    in
    go 0 0 true
  in
  make
    ~name:(Printf.sprintf "(%s||%s)" a.name b.name)
    ~enum
    ~tail:(fun n ->
      (* After n interleaved entries at least floor(n/2) came from each
         side (unless a side ran dry, in which case its tail is 0 and the
         bound below is still sound). *)
      match (tail_mass a (n / 2), tail_mass b (n / 2)) with
      | Some ta, Some tb -> Some (ta +. tb)
      | _ -> None)
    ()
