(** Domain-parallel Monte-Carlo estimation over countable TI / BID PDBs
    and completions — the third evaluation engine, beside the exact
    truncation engine ({!Approx_eval}) and the incremental one
    ({!Anytime}).

    The paper gives countable PDBs a sampling semantics
    ({!Countable_ti.sample}, {!Countable_bid.sample}, Section 4); this
    module turns it into an estimator with statistical guarantees:

    - the space is compiled once into an {e immutable sampling plan}
      (prefix facts with float marginals, truncated block tables, the
      original-world cumulative distribution of a completion), so worker
      domains share no mutable state;
    - the requested samples are cut into fixed-size batches; batch [b]
      runs on [Prng.substream root b], so every batch is a function of
      [(seed, b)] alone and the estimate is {e bit-identical for every
      domain count} — parallelism changes only who executes a batch,
      never what it draws;
    - batches are distributed over OCaml 5 domains through an atomic
      work-stealing counter; per-domain counters (worlds drawn, batch
      latency) are accumulated locally and merged into {!Stats} after the
      join;
    - the returned {!Interval.t} is a Wilson score interval at the
      requested confidence, {e widened by the truncation total-variation
      bound}: the plan samples a law within [tv] of the true one (the
      tail cut of the sampling plans), so the widened interval covers the
      true [P(Q)] with the stated confidence.

    Boolean queries are evaluated per world over the plan's full active
    domain padded with [quantifier_rank phi] fresh inert values — the
    r-equivalence argument of Proposition 6.1 (same device as {!Anytime})
    — so every sampled world contributes its {e limit} truth value and
    the estimates are directly comparable (and intersectable) with the
    exact engines' enclosures.  Queries using the built-in order [Cmp]
    break inert-value interchangeability; for them the padding is omitted
    and the estimate targets the truncated-table semantics. *)

type space =
  | Ti of Countable_ti.t
  | Bid of Countable_bid.t
  | Completed of Completion.t

type result = {
  estimate : float;  (** [hits / samples] *)
  hits : int;
  samples : int;  (** worlds actually drawn (may be below the request) *)
  samples_requested : int;  (** the caller's [~samples] argument *)
  interrupted : bool;
      (** whether a budget truncated the run — either the up-front clamp
          ([Samples] cap / [Virtual] deadline) or worker-side polling on a
          [Wall] deadline.  The statistical fields always describe the
          [samples] worlds actually drawn, so an interrupted result is a
          sound (just wider) answer. *)
  confidence : float;  (** two-sided coverage level of [bounds] *)
  truncation_tv : float;
      (** certified total-variation distance between the sampled
          (truncated-plan) law and the true law; folded into [bounds] *)
  wilson : Interval.t;
      (** the Wilson score interval for the sampled law alone *)
  bounds : Interval.t;
      (** [wilson] widened by [truncation_tv] on each side and clamped to
          [\[0,1\]]: covers the true probability with probability at
          least [confidence] *)
  domains_used : int;
  batches : int;
  batch_size : int;
  width_trajectory : (int * float) list;
      (** [(samples-so-far, width of bounds)] at up to 24 batch
          boundaries, in batch order — the convergence trajectory *)
}

val boolean :
  ?budget:Budget.t ->
  ?domains:int ->
  ?batch_size:int ->
  ?tail_cut:float ->
  ?max_facts:int ->
  ?confidence:float ->
  seed:int ->
  samples:int ->
  space ->
  Fo.t ->
  result
(** Estimate [P(Q)] for a Boolean query.  Defaults: [domains] =
    [Domain.recommended_domain_count ()], [batch_size = 1024],
    [tail_cut = 2^-20], [max_facts = 4096] (per plan: prefix facts,
    blocks, or new facts of a completion), [confidence = 0.99].
    [budget] governs the sampling phase (see {!estimate_event}); plan
    compilation, which happens in the calling domain before any world is
    drawn, is not charged.
    @raise Invalid_argument if the query has free variables, [samples <=
    0], [confidence] outside [(0,1)], or no truncation below [max_facts]
    certifies [tail_cut] (raise [max_facts] or loosen [tail_cut]). *)

val marginal :
  ?budget:Budget.t ->
  ?domains:int ->
  ?batch_size:int ->
  ?tail_cut:float ->
  ?max_facts:int ->
  ?confidence:float ->
  seed:int ->
  samples:int ->
  space ->
  Fact.t ->
  result
(** Estimate the marginal [P(E_f)] of one fact. *)

val estimate_event :
  ?budget:Budget.t ->
  ?domains:int ->
  ?batch_size:int ->
  ?confidence:float ->
  ?truncation_tv:float ->
  seed:int ->
  samples:int ->
  (Prng.t -> 'a) ->
  ('a -> bool) ->
  result
(** The generic engine: estimate [P(event)] under a caller-supplied
    sampler.  The sampler runs concurrently in several domains and MUST
    NOT touch shared mutable state (the space-specific entry points
    compile such state away; a raw {!Countable_ti.sample} closure, which
    memoizes, is {e not} safe here at [domains > 1]).  [truncation_tv]
    (default 0) is folded into [bounds] like the plan-based entry
    points do.

    With [budget], the sample count is clamped {e before} the run to
    what a [Samples] cap or a [Virtual] deadline still admits — the
    partial result is then a function of the budget alone, bit-identical
    across domain counts — and worker domains additionally poll
    {!Budget.ok} between batches so a [Wall] deadline stops the run at
    the next batch boundary.  Completed work is the contiguous batch
    prefix, the statistical fields are computed over exactly those
    worlds, and the drawn samples are charged as [Samples] units after
    the run.
    @raise Budget.Exhausted if the budget is exhausted on entry or
    admits no samples at all — a partial result needs at least one
    batch. *)

(** {1 Statistical primitives} (exposed for tests and the bench) *)

val z_of_confidence : float -> float
(** Two-sided standard-normal critical value: [Phi^-1(1 - (1-c)/2)].
    @raise Invalid_argument outside [(0,1)]. *)

val wilson_interval : z:float -> hits:int -> samples:int -> Interval.t
(** The Wilson score interval, clamped to [\[0,1\]]. *)
