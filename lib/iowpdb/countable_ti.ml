type t = {
  src : Fact_source.t;
  (* Cached sampling plan: facts of the sampled prefix with float
     marginals, keyed by the prefix length it was built for. *)
  mutable plan : (int * (Fact.t * float) array) option;
  (* Last truncation-for-mass answer: (eps, least n, table).  Repeating
     the same eps is free; a tighter eps resumes the tail-mass search at
     the cached n instead of re-galloping from 0 (the anytime loop's
     access pattern is a monotonically tightening eps). *)
  mutable trunc : (float * int * Ti_table.t) option;
}

let create src =
  if not (Fact_source.converges src) then
    invalid_arg
      (Printf.sprintf
         "Countable_ti.create: source %s has no convergence certificate; by \
          Theorem 4.8 no tuple-independent PDB realizes divergent marginals"
         (Fact_source.name src))
  else { src; plan = None; trunc = None }

let create_r src =
  if Fact_source.converges src then Ok { src; plan = None; trunc = None }
  else
    Error
      (Errors.Divergent_source
         { source = Fact_source.name src; probed_to = 1 lsl 20 })

let source t = t.src

let marginal t f = Fact_source.prob t.src f

let expected_size_bounds t ~n =
  let prefix = Rational.to_float (Fact_source.prefix_sum t.src n) in
  match Fact_source.tail_mass t.src n with
  | Some tail -> (prefix, prefix +. tail)
  | None -> assert false (* create guarantees convergence *)

(* The exact finite factor over the first n facts. *)
let instance_prob_prefix t ~n inst =
  let entries = Fact_source.prefix t.src n in
  List.fold_left
    (fun acc (f, p) ->
      Rational.mul acc (if Instance.mem f inst then p else Rational.compl p))
    Rational.one entries

(* Claim (∗)-based enclosure of the tail product prod_{i>=n} (1-p_i). *)
let tail_product_bounds t ~n =
  match Fact_source.tail_mass t.src n with
  | None -> assert false
  | Some tail ->
    if tail < 0.5 then Interval.make (exp (-1.5 *. tail)) 1.0
    else Interval.make 0.0 1.0

let instance_prob_bounds t ~n inst =
  let entries = Fact_source.prefix t.src n in
  let known = Instance.of_list (List.map fst entries) in
  if not (Instance.subset inst known) then
    invalid_arg
      "Countable_ti.instance_prob_bounds: instance has facts beyond the first n";
  let prefix =
    Prob.Interval_carrier.of_rational (instance_prob_prefix t ~n inst)
  in
  Interval.clamp01 (Interval.mul prefix (tail_product_bounds t ~n))

let empty_world_prob_bounds t ~n =
  instance_prob_bounds t ~n Instance.empty

let truncate t ~n = Fact_source.truncate t.src n

let truncate_for_mass t ~eps =
  match t.trunc with
  | Some (eps0, n, tbl) when eps0 = eps -> Some (n, tbl)
  | cached ->
    (* The least satisfying n is antitone in eps: a previous answer at a
       looser bound is a valid search floor for any tighter one. *)
    let lo =
      match cached with
      | Some (eps0, n0, _) when eps <= eps0 -> n0
      | _ -> 0
    in
    Option.map
      (fun n ->
        let tbl = truncate t ~n in
        t.trunc <- Some (eps, n, tbl);
        (n, tbl))
      (Fact_source.prefix_for_tail ~lo t.src eps)

let sample ?(tail_cut = ldexp 1.0 (-20)) ?(max_facts = 4096) t g =
  (* Draw each prefix fact independently; the prefix length is the least
     n with tail(n) <= tail_cut, capped at max_facts (slowly converging
     sources would otherwise need astronomically many Bernoulli draws).
     The sampled law is within the achieved tail mass of the true one in
     total variation.  The per-index plan is cached across draws. *)
  let n =
    match Fact_source.prefix_for_tail ~max_n:max_facts t.src tail_cut with
    | Some n -> n
    | None -> max_facts
  in
  let plan =
    match t.plan with
    | Some (n', plan) when n' = n -> plan
    | _ ->
      let plan =
        Array.of_list
          (List.map
             (fun (f, p) -> (f, Rational.to_float p))
             (Fact_source.prefix t.src n))
      in
      t.plan <- Some (n, plan);
      plan
  in
  Array.fold_left
    (fun acc (f, p) -> if Prng.bernoulli g p then Instance.add f acc else acc)
    Instance.empty plan

let partition_prefix_sum t ~n =
  if n > 20 then
    invalid_arg "Countable_ti.partition_prefix_sum: 2^n sum too large"
  else begin
    let entries = Array.of_list (Fact_source.prefix t.src n) in
    let k = Array.length entries in
    let total = ref Rational.zero in
    for mask = 0 to (1 lsl k) - 1 do
      let p = ref Rational.one in
      for i = 0 to k - 1 do
        let _, pi = entries.(i) in
        p :=
          Rational.mul !p
            (if mask land (1 lsl i) <> 0 then pi else Rational.compl pi)
      done;
      total := Rational.add !total !p
    done;
    !total
  end
