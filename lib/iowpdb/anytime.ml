(* Incremental anytime evaluation: deepen the truncation prefix of
   Proposition 6.1 step by step, reusing lineage/BDD work across steps
   instead of recompiling from scratch at each precision level.

   Reuse mechanisms, all resting on the fact that [Lineage.alphabet]
   assigns variable [i] to the [i]-th enumerated fact — so the alphabet of
   a longer prefix literally extends the alphabet of a shorter one:

   - the session owns one {!Bdd.manager} for its whole lifetime, so even a
     full recompile of the grown lineage replays against warm unique /
     apply / negation caches;

   - variables are ordered newest-first ([order v = -v]): joining the
     lineage of fresh ground instances then only builds nodes above the
     old root instead of rewriting every suffix of the diagram (for the
     common existential chain this turns the per-step node growth from
     O(n) into O(delta));

   - when the sentence is a pure quantifier chain [Q x1...xk. psi] with a
     quantifier-free matrix, a step compiles only the {e delta} lineage —
     the ground instances that mention a fresh domain value — and
     disjoins/conjoins it onto the previous BDD.  When a fact added this
     step lies entirely inside the old evaluation domain, a ground atom
     that previously compiled to [False] ("holds in no world over this
     alphabet") would now name an alphabet variable, invalidating the old
     ground instances; we detect that and fall back to a recompile, which
     is always sound.

   Certification across steps needs care: the classical engines evaluate
   over the active domain of the truncated table, and that semantics
   *moves* as the prefix deepens — over a 1-element domain
   [exists x. R(x) & !(forall y. R(y))] is identically false, so its
   step-1 enclosure says nothing about the limit and must not be
   intersected with later ones.  We therefore evaluate every step over
   the prefix domain padded with [quantifier_rank phi] fresh inert
   values, realizing the r-equivalence argument behind Proposition 6.1:
   by an Ehrenfeucht-Fraissé argument, a world whose support lies inside
   the prefix evaluates identically over every larger domain (inert
   values satisfy no relation atom and are pairwise interchangeable, and
   r rounds can touch at most r of them).  Every per-step enclosure then
   bounds the same limit probability, so intersecting them — the
   monotone-narrowing interval we report — is sound.  The one query
   feature that breaks interchangeability is the built-in order [Cmp];
   for such queries we skip the intersection and report each step's
   enclosure of its own truncated-semantics value. *)

module VSet = Set.Make (Value)

(* Per-step model counts use the certified interval carrier, not exact
   rationals: on slowly-decaying sources the prefix probabilities have
   pairwise-coprime denominators, so exact WMC costs a huge-integer gcd
   per BDD node and goes cubic in the prefix length — fatal for an engine
   whose whole point is cheap re-evaluation at every depth.  Outward
   rounding keeps every emitted enclosure sound. *)
module W = Wmc.Make (Prob.Interval_carrier)

let c_steps = Stats.counter "anytime.steps"
let c_delta = Stats.counter "anytime.delta_steps"
let c_recompile = Stats.counter "anytime.recompile_steps"
let step_timer = Stats.timer "anytime.step"

type stop_reason =
  | Converged
  | Exhausted
  | Step_budget
  | Node_budget
  | Prefix_budget
  | Interrupted of Budget.exhaustion

let stop_reason_to_string = function
  | Converged -> "converged"
  | Exhausted -> "exhausted"
  | Step_budget -> "step budget"
  | Node_budget -> "node budget"
  | Prefix_budget -> "prefix budget"
  | Interrupted e -> "interrupted (" ^ Budget.exhaustion_to_string e ^ ")"

type step = {
  index : int;
  n : int;
  tail : float option;
  estimate : Interval.t;
  bounds : Interval.t;
  width : float;
  bdd_size : int;
  incremental : bool;
  stats : Stats.snapshot;
}

type chain_kind = Ch_exists | Ch_forall

(* [Chain (kind, xs, matrix)]: the sentence is [Q xs. matrix] with a
   quantifier-free matrix and pairwise-distinct bound names (shadowed
   names would make the tuple/binding correspondence ambiguous). *)
type shape =
  | Chain of chain_kind * string list * Fo.t
  | Opaque

let shape_of phi =
  let rec strip kind acc = function
    | Fo.Exists (x, f) when kind = Ch_exists -> strip kind (x :: acc) f
    | Fo.Forall (x, f) when kind = Ch_forall -> strip kind (x :: acc) f
    | f -> (List.rev acc, f)
  in
  let chain kind =
    let xs, matrix = strip kind [] phi in
    if
      Fo.is_quantifier_free matrix
      && List.length xs = List.length (List.sort_uniq String.compare xs)
    then Chain (kind, xs, matrix)
    else Opaque
  in
  match phi with
  | Fo.Exists _ -> chain Ch_exists
  | Fo.Forall _ -> chain Ch_forall
  | _ -> if Fo.is_quantifier_free phi then Chain (Ch_exists, [], phi) else Opaque

type t = {
  src : Fact_source.t;
  budget : Budget.t option;
  phi : Fo.t;
  shape : shape;
  intersectable : bool;  (* Cmp-free: padded enclosures share one limit *)
  pad_count : int;  (* quantifier_rank phi *)
  eps : float;
  max_n : int;
  max_steps : int;
  max_nodes : int;
  growth : int -> int;
  mgr : Bdd.manager;
  mutable n : int;  (* current truncation depth *)
  mutable bdd : Bdd.t;  (* lineage of phi over the first n facts *)
  mutable probs : Rational.t array;  (* marginals of the first n facts *)
  mutable adom : VSet.t;  (* adom(prefix) ∪ constants(phi), no padding *)
  mutable padding : VSet.t;  (* the inert padding values *)
  mutable pad_attempt : int;  (* bumped when a fact collides with padding *)
  mutable best_tail : float option;  (* min certified tail seen so far *)
  mutable bounds : Interval.t;  (* running enclosure *)
  mutable steps_rev : step list;
  mutable stopped : stop_reason option;
}

(* Padding values live in the string sort under a name no sane dataset
   uses; collisions with actual source values are detected anyway (at
   choice time against the current active domain, and per step for
   incoming facts) and resolved by re-choosing and recompiling. *)
let rec choose_padding ~avoid ~attempt k =
  let cand =
    List.init k (fun i -> Value.Str (Printf.sprintf "\x00pad.%d.%d" attempt i))
  in
  if List.exists (fun v -> VSet.mem v avoid) cand then
    choose_padding ~avoid ~attempt:(attempt + 1) k
  else (VSet.of_list cand, attempt)

let eval_domain t = VSet.union t.adom t.padding

let compile_full t alpha =
  Bdd.of_expr t.mgr
    (Lineage.of_sentence ~extra:(VSet.elements t.padding) alpha t.phi)

let create ?(eps = 0.01) ?(max_n = 1 lsl 20) ?(max_steps = 64)
    ?(max_nodes = max_int) ?growth ?budget ?cache_size
    ?(gc_threshold = 1 lsl 16) src phi =
  if not (eps > 0.0 && eps < 0.5) then
    invalid_arg "Anytime: eps must lie in (0, 1/2)";
  if Fo.free_vars phi <> [] then
    invalid_arg "Anytime: query must be a sentence";
  let growth =
    match growth with
    | Some g -> fun n -> Stdlib.max (n + 1) (g n)
    | None -> fun n -> Stdlib.max (n + 1) (2 * n)
  in
  (* Under a budget, source accesses are charged (Facts/Probes) through
     the wrapper and every fresh BDD node charges one Bdd_nodes unit;
     either may raise [Budget.Exhausted] mid-step, which [step] converts
     into an [Interrupted] stop with the last completed step's bounds
     still standing. *)
  let src =
    match budget with Some b -> Fact_source.with_budget b src | None -> src
  in
  let tick =
    Option.map (fun b () -> Budget.charge b Budget.Bdd_nodes 1) budget
  in
  (* Nodes the kernel's GC reclaims are refunded, so the Bdd_nodes cap
     governs the live diagram, not every node the session ever built. *)
  let on_free =
    Option.map (fun b n -> Budget.refund b Budget.Bdd_nodes n) budget
  in
  (* Newest-first order: later facts sit closer to the root, so joining
     delta lineage extends the diagram at the top. *)
  let mgr =
    Bdd.manager ~order:(fun v -> -v) ?tick ?on_free ?cache_size
      ~gc_threshold ()
  in
  let adom = VSet.of_list (Fo.constants phi) in
  let pad_count = Fo.quantifier_rank phi in
  let padding, pad_attempt =
    choose_padding ~avoid:adom ~attempt:0 pad_count
  in
  let t =
    {
      src;
      budget;
      phi;
      shape = shape_of phi;
      intersectable = not (Fo.has_cmp phi);
      pad_count;
      eps;
      max_n;
      max_steps;
      max_nodes;
      growth;
      mgr;
      n = 0;
      bdd = Bdd.fls mgr;
      probs = [||];
      adom;
      padding;
      pad_attempt;
      best_tail = None;
      bounds = Interval.make 0.0 1.0;
      steps_rev = [];
      stopped = None;
    }
  in
  (* Depth-0 lineage: empty alphabet, domain = constants ∪ padding.  Every
     atom compiles to [False] there, so this settles e.g. a universal
     sentence to its padded (stable) value rather than the vacuous
     empty-domain [True].  A budget already exhausted at creation stops
     the session immediately instead of raising out of [create].  The
     session root-protects whatever diagram it currently holds — the GC
     invariant maintained at every publish point below. *)
  (match compile_full t (Lineage.alphabet []) with
  | bdd -> t.bdd <- bdd
  | exception Budget.Exhausted e -> t.stopped <- Some (Interrupted e));
  Bdd.protect t.bdd;
  t

let eps t = t.eps
let current_n t = t.n
let history t = List.rev t.steps_rev
let last_step t = match t.steps_rev with [] -> None | s :: _ -> Some s
let stop_reason t = t.stopped
let node_count t = Bdd.node_count t.mgr
let allocated_nodes t = Bdd.allocated_count t.mgr
let bounds t = t.bounds

let fact_args f = Array.to_list f.Fact.args

(* All k-tuples over [dom] that use at least one value outside [old_dom]
   — exactly the ground instances absent from the previous step's
   quantifier expansion. *)
let fresh_tuples k dom old_dom =
  let rec go k =
    if k = 0 then Seq.return ([], false)
    else
      Seq.concat_map
        (fun (rest, has_fresh) ->
          Seq.map
            (fun v -> (v :: rest, has_fresh || not (VSet.mem v old_dom)))
            (List.to_seq dom))
        (go (k - 1))
  in
  Seq.filter_map
    (fun (vals, has_fresh) -> if has_fresh then Some vals else None)
    (go k)

(* The body of one deepening step; mutates [t] and returns the data the
   step record needs. *)
let advance t =
  let target = Stdlib.min t.max_n (t.growth t.n) in
  let prefix = Fact_source.prefix t.src target in
  let n' = List.length prefix in
  let facts = List.map fst prefix in
  let alpha = Lineage.alphabet facts in
  let delta_facts = List.filteri (fun i _ -> i >= t.n) facts in
  let old_dom = eval_domain t in
  let stable =
    (* Sound to keep the old BDD iff every fact added this step mentions
       a value the old ground instances could not reach. *)
    List.for_all
      (fun f -> List.exists (fun v -> not (VSet.mem v old_dom)) (fact_args f))
      delta_facts
  in
  t.adom <-
    List.fold_left
      (fun acc f ->
        List.fold_left (fun acc v -> VSet.add v acc) acc (fact_args f))
      t.adom delta_facts;
  (* A fact naming one of our padding values turns it from inert to live:
     re-choose the padding (the shape analysis will recompile, since such
     a fact also fails the stability check). *)
  if List.exists (fun f -> List.exists (fun v -> VSet.mem v t.padding) (fact_args f))
       delta_facts
  then begin
    let padding, attempt =
      choose_padding ~avoid:t.adom ~attempt:(t.pad_attempt + 1) t.pad_count
    in
    t.padding <- padding;
    t.pad_attempt <- attempt
  end;
  let bdd', incremental =
    if delta_facts = [] then (t.bdd, true)
    else
      match t.shape with
      | Chain (kind, xs, matrix) when stable ->
        Stats.incr c_delta;
        let k = List.length xs in
        let dom_list = VSet.elements (eval_domain t) in
        let join =
          match kind with Ch_exists -> Bdd.disj | Ch_forall -> Bdd.conj
        in
        (* Each [of_expr] below is a GC safe point, so the running
           accumulator must be rooted while the next delta compiles; the
           pin is transferred join by join and dropped on exit (the
           session root on [t.bdd] itself stays untouched until the
           publish point). *)
        let bdd =
          let acc = ref t.bdd in
          Bdd.protect !acc;
          Fun.protect
            ~finally:(fun () -> Bdd.release !acc)
            (fun () ->
              Seq.iter
                (fun vals ->
                  let lin =
                    Lineage.of_formula alpha (List.combine xs vals) matrix
                  in
                  let d = Bdd.of_expr t.mgr lin in
                  let joined = join t.mgr !acc d in
                  Bdd.protect joined;
                  Bdd.release !acc;
                  acc := joined)
                (fresh_tuples k dom_list old_dom);
              !acc)
        in
        (bdd, true)
      | _ ->
        Stats.incr c_recompile;
        (compile_full t alpha, false)
  in
  let probs = Array.of_list (List.map snd prefix) in
  let estimate =
    W.probability
      ~weight:(fun v -> Prob.Interval_carrier.of_rational probs.(v))
      bdd'
  in
  let tail_now = Fact_source.tail_mass t.src n' in
  let best =
    match (t.best_tail, tail_now) with
    | Some a, Some b -> Some (Float.min a b)
    | (Some _ as a), None -> a
    | None, b -> b
  in
  let fresh_bounds =
    match best with
    | Some tl ->
      Approx_eval.enclosure_interval estimate
        (Approx_eval.omega_bounds_of_tail tl)
    | None -> Interval.make 0.0 1.0
  in
  let bounds =
    if not t.intersectable then fresh_bounds
    else
      (* Padded enclosures all bound the same limit probability, so the
         intersection is sound.  (An empty intersection would witness an
         unsound tail certificate; keep the old interval then.) *)
      match Interval.intersect fresh_bounds t.bounds with
      | Some b -> b
      | None -> t.bounds
  in
  let exhausted = n' < target in
  t.n <- n';
  (* Publish: move the session's GC root from the old diagram to the new
     one, then offer the kernel a collection so dead per-step garbage is
     reclaimed (and refunded) before the next deepening. *)
  Bdd.protect bdd';
  Bdd.release t.bdd;
  t.bdd <- bdd';
  ignore (Bdd.maybe_gc t.mgr);
  t.probs <- probs;
  t.best_tail <- best;
  t.bounds <- bounds;
  (estimate, best, bounds, Bdd.size bdd', incremental, exhausted)

let step t =
  match t.stopped with
  | Some _ -> None
  | None when
      (match t.budget with
      | Some b ->
        Budget.spend b Budget.Steps 1;
        not (Budget.ok b)
      | None -> false) ->
    (* The budget tripped between steps (deadline, step cap, or an
       ancestor): stop cleanly; the running bounds keep their last
       certified value. *)
    (match t.budget with
    | Some b ->
      t.stopped <-
        Some (Interrupted (Option.value (Budget.exhausted b) ~default:Budget.Cancelled))
    | None -> assert false);
    None
  | None ->
    Stats.incr c_steps;
    let before = Stats.snapshot () in
    match Stats.time step_timer (fun () -> advance t) with
    | exception Budget.Exhausted e ->
      (* Cooperative cancellation fired inside the step (a source pull,
         tail probe, or BDD allocation).  The partially advanced state is
         not published: [t.n], [t.bdd] and [t.bounds] still hold the last
         completed step, so the session's enclosure remains certified. *)
      t.stopped <- Some (Interrupted e);
      None
    | estimate, tail, bounds, bdd_size, incremental, exhausted ->
    let stats = Stats.diff (Stats.snapshot ()) before in
    let index = List.length t.steps_rev + 1 in
    let width = Interval.width bounds in
    let st =
      {
        index;
        n = t.n;
        tail;
        estimate;
        bounds;
        width;
        bdd_size;
        incremental;
        stats;
      }
    in
    t.steps_rev <- st :: t.steps_rev;
    t.stopped <-
      (if width <= 2.0 *. t.eps then Some Converged
       else if exhausted then Some Exhausted
       else if t.n >= t.max_n then Some Prefix_budget
       else if index >= t.max_steps then Some Step_budget
       else if Bdd.node_count t.mgr >= t.max_nodes then Some Node_budget
       else None);
    Some st

let run t =
  let rec go () = match step t with Some _ -> go () | None -> () in
  go ();
  (Option.get t.stopped, history t)
