(** Countable block-independent-disjoint PDBs (Section 4.4,
    Proposition 4.13, Theorem 4.15).

    Countably many blocks, each a finite or countable family of mutually
    exclusive facts with exact block mass [sum_{f in B} p^B_f <= 1];
    distinct blocks are independent.  Existence requires the total mass
    [sum_B sum_{f in B} p^B_f] to converge (Theorem 4.15), which [create]
    enforces through the block source's tail certificate. *)

type block

val block :
  id:string ->
  ?mass:Rational.t ->
  (Fact.t * Rational.t) Seq.t ->
  block
(** A block of mutually exclusive alternatives.  For an infinite
    alternative sequence, [mass] (the exact total [sum p^B_f], needed for
    the "no fact from this block" slack) is required; for finite
    sequences it is computed when omitted.
    @raise Invalid_argument if a supplied mass is not in [\[0,1\]]. *)

val block_finite : id:string -> (Fact.t * Rational.t) list -> block

type t

val create :
  ?name:string ->
  blocks:block Seq.t ->
  tail:(int -> float option) ->
  unit ->
  t
(** [tail n] bounds [sum_{i>=n} mass(B_i)] over the block enumeration.
    @raise Invalid_argument if no finite certificate exists
    (Theorem 4.15's necessity).  The certificate is probed geometrically
    up to [2^20] {e without} forcing the block enumeration (so
    deep-answering certificates are accepted cheaply); only if it stays
    silent is a bounded forcing probe tried, which can still detect a
    finite enumeration whose tail is exactly 0. *)

val create_r :
  ?name:string ->
  blocks:block Seq.t ->
  tail:(int -> float option) ->
  unit ->
  (t, Errors.t) result
(** {!create} with classified failures ([Divergent_source] when the
    certificate never answers). *)

val of_finite_blocks : ?name:string -> block list -> t

val name : t -> string

val nth_block : t -> int -> block option
val block_id : block -> string
val block_mass : block -> Rational.t
val block_slack : block -> Rational.t
val alternatives : ?limit:int -> block -> (Fact.t * Rational.t) list

val marginal : t -> Fact.t -> Rational.t option
(** Scan the first blocks / alternatives for the fact (bounded scan);
    [None] = not found. *)

val tail_mass : t -> int -> float option
(** Certified upper bound on [sum_{i>=n} mass(B_i)] (exactly 0 once the
    block enumeration is exhausted before [n]); [None] when the
    certificate cannot answer at [n]. *)

val expected_size_bounds : t -> n:int -> float * float
(** From the first [n] blocks' exact masses plus the tail bound. *)

val truncate : t -> n_blocks:int -> alts_per_block:int -> Bid_table.t
(** Finite BID table on the first blocks and alternatives. *)

val sample : ?tail_cut:float -> ?max_blocks:int -> t -> Prng.t -> Instance.t
(** One independent draw per block (at most one fact each); blocks stop
    being processed once the remaining block-mass tail is below
    [tail_cut] (default [2^-20]) or [max_blocks] (default 4096) blocks
    were visited; within an infinite block, alternatives beyond
    cumulative mass [1 - tail_cut] collapse into "no fact".  The sampled
    law is within the achieved residual mass of the true one in total
    variation. *)
