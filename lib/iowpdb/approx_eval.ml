type result = {
  estimate : Rational.t;
  eps : float;
  n_used : int;
  tail_mass : float;
  omega_n_bounds : Interval.t;
  bounds : Interval.t;
}

(* The truncation point needs alpha_n = (3/2) * tail(n) to satisfy both
   e^{alpha_n} <= 1 + eps and e^{-alpha_n} >= 1 - eps; the binding
   constraint is alpha_n <= ln(1 + eps) (smaller than -ln(1 - eps)).
   Claim (∗) additionally needs every truncated probability below 1/2,
   which tail(n) <= ln(1+eps)*2/3 < 1/2 already implies for eps < 1/2. *)
let required_tail eps = 2.0 /. 3.0 *. log1p eps

let check_eps eps =
  if not (eps > 0.0 && eps < 0.5) then
    invalid_arg "Approx_eval: eps must lie in (0, 1/2)"

let truncation_point ?max_n src ~eps =
  check_eps eps;
  Fact_source.prefix_for_tail ?max_n src (required_tail eps)

(* The truncation search returns both n and the certified tail bound it
   observed there; threading the value through (instead of re-asking the
   certificate afterwards) is what keeps [result.tail_mass] meaningful
   even for certificates whose answers depend on mutable scan state. *)
let truncate_or_fail ?max_n src ~eps =
  check_eps eps;
  match Fact_source.truncation ?max_n src (required_tail eps) with
  | Some nt -> nt
  | None ->
    if not (Fact_source.converges ?max_n src) then
      invalid_arg
        (Printf.sprintf
           "Approx_eval: source %s diverges; no tuple-independent PDB exists \
            (Theorem 4.8), nothing to approximate"
           (Fact_source.name src))
    else
      invalid_arg
        (Printf.sprintf
           "Approx_eval: source %s converges too slowly: no adequate \
            truncation below the bound (cf. the closing remark of Section 6)"
           (Fact_source.name src))

(* The truncated table stands in for the countable limit space, so
   quantifiers must not be decided on the accidentally small truncated
   domain: a universal sentence that happens to hold on the prefix's
   active domain can be false on every deeper truncation.  Padding the
   evaluation domain with [quantifier_rank phi] inert values — occurring
   in no fact and distinct from the query's constants — makes each
   world's truth value stable under further truncation (the r-equivalence
   device of Proposition 6.1); {!Anytime} applies the same device
   incrementally.  [Cmp] atoms can distinguish inert values, so those
   queries are evaluated unpadded (as {!Anytime} also refuses them). *)
let padding table phi =
  let rank = Fo.quantifier_rank phi in
  if rank = 0 || Fo.has_cmp phi then []
  else begin
    let avoid =
      Fo.constants phi
      @ List.concat_map (fun f -> Fact.args f) (Ti_table.support table)
    in
    let rec choose attempt =
      let cand =
        List.init rank (fun i ->
            Value.Str (Printf.sprintf "\x00pad.%d.%d" attempt i))
      in
      if List.exists (fun v -> List.exists (Value.equal v) avoid) cand then
        choose (attempt + 1)
      else cand
    in
    choose 0
  end

(* P(Omega_n) = prod_{i>=n} (1 - p_i): none of the truncated facts
   occurs.  Lower bound from claim (∗), upper bound trivially 1 minus
   nothing (each factor <= 1). *)
let omega_bounds_of_tail t =
  if t < 0.5 then Interval.make (exp (-1.5 *. t)) 1.0
  else Interval.make 0.0 1.0

let enclosure_interval pf om =
  let lower = Interval.mul pf om in
  Interval.clamp01
    (Interval.make (Interval.lo lower)
       (Interval.hi (Interval.add lower (Interval.compl om))))

let enclosure p om = enclosure_interval (Prob.Interval_carrier.of_rational p) om

let boolean ?max_n src ~eps phi =
  let n, tail = truncate_or_fail ?max_n src ~eps in
  let table = Fact_source.truncate src n in
  (* If the enumeration turned out to end at or before n, the tail is
     exactly 0 — sharper than whatever the certificate promised, and it
     keeps nan out of [result] on sources whose certificate cannot answer
     again after the search. *)
  let tail =
    match Fact_source.tail_mass src n with Some t -> Float.min t tail | None -> tail
  in
  let p = Query_eval.boolean ~extra_domain:(padding table phi) table phi in
  let om = omega_bounds_of_tail tail in
  {
    estimate = p;
    eps;
    n_used = n;
    tail_mass = tail;
    omega_n_bounds = om;
    bounds = enclosure p om;
  }

(* ------------------------------------------------------------------ *)
(* Result-returning entry points (structured errors, budgets) *)
(* ------------------------------------------------------------------ *)

let fact_source_default_max_n = 1 lsl 20 (* = Fact_source's default *)

let truncation_r ?max_n src ~eps =
  let what = "Approx_eval(" ^ Fact_source.name src ^ ")" in
  match
    Errors.protect ~what (fun () ->
        check_eps eps;
        let r = Fact_source.truncation ?max_n src (required_tail eps) in
        let converged = r <> None || Fact_source.converges ?max_n src in
        (r, converged))
  with
  | Error e -> Error e
  | Ok (Some nt, _) -> Ok nt
  | Ok (None, converged) ->
    let probed_to = Option.value max_n ~default:fact_source_default_max_n in
    if not converged then
      Error
        (Errors.Divergent_source { source = Fact_source.name src; probed_to })
    else begin
      (* The certificate exists but never drops below the bound within
         the probe budget: the "series may converge arbitrarily slowly"
         caveat of Section 6.  Recoverable: report the enclosure the
         deepest certified tail still implies. *)
      let partial =
        match Fact_source.tail_mass src probed_to with
        | Some t ->
          Some
            (enclosure_interval
               (Interval.make 0.0 1.0)
               (omega_bounds_of_tail t))
        | None | (exception _) -> None
      in
      Error
        (Errors.Budget_exhausted
           {
             what =
               what
               ^ ": no adequate truncation below max_n (source converges \
                  too slowly)";
             exhaustion = Budget.Cap Budget.Probes;
             partial;
           })
    end

let boolean_r ?max_n ?budget ?bdd_cache_size ?bdd_gc_threshold src ~eps phi =
  let src =
    match budget with Some b -> Fact_source.with_budget b src | None -> src
  in
  let tick =
    Option.map (fun b () -> Budget.charge b Budget.Bdd_nodes 1) budget
  in
  (* The inverse hook: nodes reclaimed by the kernel's GC (enabled via
     [bdd_gc_threshold]) are refunded, so the [Bdd_nodes] cap governs
     live nodes rather than every node ever built. *)
  let on_free =
    Option.map (fun b n -> Budget.refund b Budget.Bdd_nodes n) budget
  in
  match truncation_r ?max_n src ~eps with
  | Error e -> Error e
  | Ok (n, tail) -> (
    let what = "Approx_eval(" ^ Fact_source.name src ^ ")" in
    match
      Errors.protect ~what (fun () ->
          let table = Fact_source.truncate src n in
          let tail =
            match Fact_source.tail_mass src n with
            | Some t -> Float.min t tail
            | None | (exception Budget.Exhausted _) -> tail
          in
          let p =
            Query_eval.boolean ~extra_domain:(padding table phi) ?tick
              ?on_free ?cache_size:bdd_cache_size
              ?gc_threshold:bdd_gc_threshold table phi
          in
          let om = omega_bounds_of_tail tail in
          {
            estimate = p;
            eps;
            n_used = n;
            tail_mass = tail;
            omega_n_bounds = om;
            bounds = enclosure p om;
          })
    with
    | Ok r -> Ok r
    | Error (Errors.Budget_exhausted { what; exhaustion; partial = _ }) ->
      (* The truncation point was certified before the budget ran out, so
         the trivial conditional enclosure at that tail is still sound —
         degrade with it instead of dropping to "no answer". *)
      let partial =
        Some
          (enclosure_interval
             (Interval.make 0.0 1.0)
             (omega_bounds_of_tail tail))
      in
      Error (Errors.Budget_exhausted { what; exhaustion; partial })
    | Error e -> Error e)

(* The lifted fast path: same truncation certificate, but the classical
   engine is the safe-plan UCQ evaluator instead of lineage + BDD.  No
   inert padding is needed — the lifted engine only answers for positive
   existential UCQs, which cannot distinguish the truncated domain from
   any inert extension, so its answer already is the limit-semantics
   conditional probability.  Plan-rule applications are charged as
   [Steps], the cancellation hook of the robust ladder. *)
let boolean_lifted_r ?max_n ?budget src ~eps phi =
  let src =
    match budget with Some b -> Fact_source.with_budget b src | None -> src
  in
  let step = Option.map (fun b () -> Budget.charge b Budget.Steps 1) budget in
  match truncation_r ?max_n src ~eps with
  | Error e -> Error e
  | Ok (n, tail) -> (
    let what = "Approx_eval.lifted(" ^ Fact_source.name src ^ ")" in
    match
      Errors.protect ~what (fun () ->
          let table = Fact_source.truncate src n in
          let tail =
            match Fact_source.tail_mass src n with
            | Some t -> Float.min t tail
            | None | (exception Budget.Exhausted _) -> tail
          in
          match Query_eval.boolean_safe ?step table phi with
          | None -> `Unsafe
          | Some p ->
            let om = omega_bounds_of_tail tail in
            `Safe
              {
                estimate = p;
                eps;
                n_used = n;
                tail_mass = tail;
                omega_n_bounds = om;
                bounds = enclosure p om;
              })
    with
    | Ok (`Safe r) -> Ok r
    | Ok `Unsafe ->
      (* A query property, not a transient fault: the dichotomy routed
         this query to the grounded engines. *)
      Error
        (Errors.Model_invalid
           {
             what;
             msg =
               "query has no polynomial-time lifted plan (hard side of the \
                dichotomy); use a grounded engine";
           })
    | Error (Errors.Budget_exhausted { what; exhaustion; partial = _ }) ->
      let partial =
        Some
          (enclosure_interval
             (Interval.make 0.0 1.0)
             (omega_bounds_of_tail tail))
      in
      Error (Errors.Budget_exhausted { what; exhaustion; partial })
    | Error e -> Error e)

let marginals ?max_n src ~eps phi =
  let n, _ = truncate_or_fail ?max_n src ~eps in
  let table = Fact_source.truncate src n in
  Query_eval.marginals table phi

(* ------------------------------------------------------------------ *)
(* Proposition 6.2 witness *)
(* ------------------------------------------------------------------ *)

let prop62_witness ~first_acceptance ~horizon =
  if first_acceptance < 1 || horizon < first_acceptance then
    invalid_arg "Approx_eval.prop62_witness";
  let fact k =
    let rel = if k = first_acceptance then "R" else "S" in
    (Fact.make rel [ Value.Int k ], Rational.pow Rational.half k)
  in
  let entries = List.init horizon (fun i -> fact (i + 1)) in
  Fact_source.of_list
    ~name:(Printf.sprintf "prop62(t0=%d)" first_acceptance)
    entries
