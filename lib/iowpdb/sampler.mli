(** Empirical measurement helpers over world samplers.

    Thin utilities shared by tests, examples and the bench harness:
    estimate event probabilities, fact marginals and independence gaps
    from repeated draws of a sampler (typically {!Countable_ti.sample} or
    {!Countable_bid.sample} with split generators). *)

val draws :
  seed:int -> samples:int -> (Prng.t -> 'a) -> 'a Seq.t
(** [samples] draws, the [i]-th running on [Prng.substream] [i] of the
    seed generator: draw [i] is a function of [(seed, i)] alone, so the
    (non-memoizing) sequence yields identical values on every traversal
    and in any traversal order. *)

val estimate_event :
  seed:int -> samples:int -> (Prng.t -> Instance.t) -> (Instance.t -> bool) ->
  float
(** Fraction of sampled worlds satisfying the event. *)

val estimate_marginal :
  seed:int -> samples:int -> (Prng.t -> Instance.t) -> Fact.t -> float

val independence_gap :
  seed:int ->
  samples:int ->
  (Prng.t -> Instance.t) ->
  Fact.t ->
  Fact.t ->
  float
(** [|P-hat(f and g) - P-hat(f) * P-hat(g)|] on a shared sample: an
    empirical check of Lemma 4.2 / Definition 4.11(2). *)

val exclusivity_violations :
  seed:int ->
  samples:int ->
  (Prng.t -> Instance.t) ->
  (Fact.t -> string option) ->
  int
(** Number of sampled worlds containing two facts of the same block —
    must be 0 for a BID sampler (Definition 4.11(1)). *)
