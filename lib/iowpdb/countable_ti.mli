(** Countable tuple-independent probabilistic databases — the central
    construction of the paper (Section 4.1, Proposition 4.5,
    Theorem 4.8).

    Given a convergent family of fact probabilities [(p_f)], the measure

    [P({D}) = prod_{f in D} p_f * prod_{f in F_omega - D} (1 - p_f)]

    is a probability measure on the countable set of finite subsets of
    [F_omega] (Lemma 4.3) realizing the given marginals independently
    (Lemma 4.4).  This module computes with that measure: exact prefix
    factors, certified two-sided enclosures of infinite products (via
    claim (∗)), exact marginals, expected size (Corollary 4.7), truncation
    to finite TI tables, and exact-in-distribution sampling.

    [create] enforces Theorem 4.8: a source without a finite tail
    certificate is rejected — such marginals admit no tuple-independent
    PDB at all (Lemma 4.6, via Borel-Cantelli). *)

type t

val create : Fact_source.t -> t
(** @raise Invalid_argument if the source does not certify convergence
    (Theorem 4.8's necessity direction). *)

val create_r : Fact_source.t -> (t, Errors.t) result
(** {!create} with the rejection as data: [Divergent_source] instead of
    [Invalid_argument]. *)

val source : t -> Fact_source.t

val marginal : t -> Fact.t -> Rational.t option
(** [P(E_f) = p_f]; [None] when the fact was not found within the
    enumeration scan bound (unknown, possibly 0). *)

val expected_size_bounds : t -> n:int -> float * float
(** Two-sided bounds on [E(S_D) = sum_f p_f] from the first [n] terms
    plus the tail certificate (equation (5), Corollary 4.7). *)

val instance_prob_bounds : t -> n:int -> Instance.t -> Interval.t
(** Enclosure of [P({D})] using the first [n] enumerated facts exactly
    and claim (∗) on the tail.  All facts of [D] must lie within the
    first [n]; @raise Invalid_argument otherwise (increase [n]). *)

val instance_prob_prefix : t -> n:int -> Instance.t -> Rational.t
(** The exact finite part
    [prod_{f in D} p_f * prod_{f in first-n - D} (1-p_f)]: the
    probability that the world agrees with [D] on the first [n] facts.
    Monotonically decreasing in [n], with limit [P({D})]. *)

val empty_world_prob_bounds : t -> n:int -> Interval.t
(** Enclosure of [P({})] = [prod (1 - p_f)]; positive iff no [p_f = 1]
    and the series converges — the quantity behind [P1({}) > 0] in the
    proof of Theorem 5.5. *)

val truncate : t -> n:int -> Ti_table.t
val truncate_for_mass : t -> eps:float -> (int * Ti_table.t) option
(** Least [n] whose tail mass is at most [eps], with the corresponding
    finite table; [None] if no such [n] below the internal bound.

    The last answer is cached on the value: repeating the same [eps]
    probes no tail certificates at all, and a tighter [eps] resumes the
    search at the previous [n] (the least [n] is antitone in [eps])
    instead of re-galloping from index 0. *)

val sample : ?tail_cut:float -> ?max_facts:int -> t -> Prng.t -> Instance.t
(** Draw a world.  Facts in the prefix up to the first tail bound below
    [tail_cut] (default [2^-20]), capped at [max_facts] (default 4096),
    are drawn as independent Bernoullis (float marginals; sub-ulp bias).
    The sampled law is within the achieved tail mass of the true one in
    total variation; worlds are almost surely finite either way (the
    paper's Section 3.2). *)

val partition_prefix_sum : t -> n:int -> Rational.t
(** [sum_{D subseteq first-n facts} P_n({D})] where [P_n] uses only the
    first [n] factors — exactly 1 for every [n] (the finite core of
    Lemma 4.3); exposed so tests and benches can watch the identity hold
    exactly as [n] grows. *)
