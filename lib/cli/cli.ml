(* Command-line interface to the library.

   Subcommands:
     query    - exact Boolean/non-Boolean query on a TI table file
     batch    - many Boolean queries at once on one shared BDD store
     open     - open-world query: complete the table, approximate to eps
     anytime  - incremental evaluation with a narrowing certified interval
     mc       - domain-parallel Monte-Carlo estimation with a Wilson CI
     robust   - resource-governed supervisor: exact -> anytime -> MC
                under one budget, with retries and provenance
     sample   - draw worlds from the (optionally completed) PDB
     plan     - show the lifted safe plan for a query (dichotomy verdict)
     pack     - compile a text table into the mmap'd .iow store format
     info     - table statistics

   Table files are the Ti_table text format: one "R(args...) prob" per
   line, '#' comments.  Open-world policies: --policy lambda:<p>:<k>
   (k fresh facts of probability p over relation N) or
   --policy geometric:<first>:<ratio> (infinitely many N(0), N(1), ...).

   Subcommands that do real inference take --stats to print the
   instrumentation counters (BDD cache traffic, fact-source pulls,
   engine dispatch) accumulated during the run.

   Every command body runs under [guard], which turns the error taxonomy
   into one-line stderr messages and exit codes (Errors.exit_code:
   malformed input 2, budget exhaustion 3, engine failure 1) instead of
   uncaught-exception backtraces. *)

open Cmdliner

let guard f =
  try
    f ();
    0
  with
  | Errors.Error e ->
    prerr_endline ("iowpdb: " ^ Errors.to_string e);
    Errors.exit_code e
  | Budget.Exhausted ex ->
    prerr_endline
      ("iowpdb: budget exhausted: " ^ Budget.exhaustion_to_string ex);
    3
  | Invalid_argument msg | Sys_error msg | Failure msg ->
    prerr_endline ("iowpdb: " ^ msg);
    2

let read_table = Ti_table.of_file

let parse_policy spec ti =
  match String.split_on_char ':' spec with
  | [ "lambda"; p; k ] ->
    let lambda = Rational.of_string p and k = int_of_string k in
    Completion.openpdb_lambda ~lambda
      ~new_facts:(List.init k (fun j -> Fact.make "N" [ Value.Int j ]))
      ti
  | [ "geometric"; first; ratio ] ->
    Completion.geometric_policy
      ~first:(Rational.of_string first)
      ~ratio:(Rational.of_string ratio)
      ~new_facts:(fun j -> Fact.make "N" [ Value.Int j ])
      ti
  | _ ->
    invalid_arg
      (Printf.sprintf
         "bad policy %S (want lambda:<p>:<k> or geometric:<first>:<ratio>)"
         spec)

(* The completion tail of a policy as a bare fact source — the packed
   boot path never materializes a Ti_table, so the policy's fresh facts
   are built directly instead of through [Completion].  Must agree with
   [parse_policy]'s [Completion.new_facts] so the two boot paths answer
   identically. *)
let policy_source spec =
  let n_fact j = Fact.make "N" [ Value.Int j ] in
  match String.split_on_char ':' spec with
  | [ "lambda"; p; k ] ->
    let lambda = Rational.of_string p and k = int_of_string k in
    if Rational.equal lambda Rational.zero then Fact_source.of_list []
    else Fact_source.of_list (List.init k (fun j -> (n_fact j, lambda)))
  | [ "geometric"; first; ratio ] ->
    Fact_source.geometric
      ~first:(Rational.of_string first)
      ~ratio:(Rational.of_string ratio)
      ~facts:n_fact ()
  | _ ->
    invalid_arg
      (Printf.sprintf
         "bad policy %S (want lambda:<p>:<k> or geometric:<first>:<ratio>)"
         spec)

(* Shared arguments *)
(* A plain string, not Arg.file: existence is checked by Ti_table.of_file
   inside [guard], so a missing file exits 2 with a one-line message like
   every other input error, instead of Cmdliner's usage error. *)
let table_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TABLE" ~doc:"TI table file (one 'R(args) prob' per line).")

let query_arg p =
  Arg.(
    required
    & pos p (some string) None
    & info [] ~docv:"QUERY" ~doc:"First-order query, e.g. 'exists x. R(x, 1)'.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print instrumentation counters (BDD cache traffic, fact-source \
           pulls, engine dispatch, wall-clock) accumulated during the run.")

let with_stats enabled f =
  let before = Stats.snapshot () in
  let r = f () in
  if enabled then begin
    print_newline ();
    print_endline "-- stats --";
    Stats.report Format.std_formatter (Stats.diff (Stats.snapshot ()) before);
    Format.pp_print_flush Format.std_formatter ()
  end;
  r

(* Budget flags, shared by anytime / mc / robust.  The terms carry raw
   options; budgets are constructed inside [guard] so that validation
   errors exit like any other bad argument. *)
let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Evaluation deadline in seconds (on the chosen clock).")

let virtual_rate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "virtual-rate" ] ~docv:"UNITS"
        ~doc:
          "Run the deadline on a deterministic virtual clock advancing \
           UNITS work units per second: with --timeout this becomes a \
           reproducible total-work cap, so budget-truncated answers are \
           bit-identical across runs and machines.")

let max_bdd_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-bdd-nodes" ] ~docv:"N"
        ~doc:"Cap on freshly allocated BDD nodes.")

let max_facts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-facts" ] ~docv:"N"
        ~doc:"Cap on facts pulled from the source.")

(* BDD kernel tuning, shared by query / anytime / robust. *)
let bdd_cache_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "bdd-cache-size" ] ~docv:"N"
        ~doc:
          "Entries in the BDD kernel's direct-mapped operation cache \
           (rounded up to a power of two).")

let bdd_gc_threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "bdd-gc-threshold" ] ~docv:"N"
        ~doc:
          "Run a BDD garbage collection once N nodes have been allocated \
           since the previous one; collected nodes are refunded to the \
           node budget, so caps govern live nodes.")

let make_budget ?max_bdd_nodes ?max_facts ~timeout ~virtual_rate () =
  if
    timeout = None && virtual_rate = None && max_bdd_nodes = None
    && max_facts = None
  then None
  else begin
    let clock = Option.map (fun r -> Budget.Virtual r) virtual_rate in
    Some (Budget.create ?clock ?timeout ?max_bdd_nodes ?max_facts ())
  end

let run_query table query bdd_cache_size bdd_gc_threshold stats =
  guard @@ fun () ->
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let phi = Fo_parse.parse_exn query in
  if Fo.free_vars phi = [] then begin
    let p =
      Query_eval.boolean ?cache_size:bdd_cache_size
        ?gc_threshold:bdd_gc_threshold ti phi
    in
    Printf.printf "P[ %s ] = %s (~%s)\n" query (Rational.to_string p)
      (Rational.to_decimal_string ~digits:8 p)
  end
  else
    List.iter
      (fun (tup, p) ->
        Printf.printf "P[ %s at %s ] = %s\n" query (Tuple.to_string tup)
          (Rational.to_string p))
      (Query_eval.marginals ?cache_size:bdd_cache_size
         ?gc_threshold:bdd_gc_threshold ti phi)

let query_cmd =
  let doc = "Exact query evaluation on a closed-world TI table." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run_query $ table_arg $ query_arg 1 $ bdd_cache_size_arg
      $ bdd_gc_threshold_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* batch: many Boolean queries over one table and one shared store *)
(* ------------------------------------------------------------------ *)

let queries_file_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"QUERIES"
        ~doc:
          "File with one first-order sentence per line ('#' comments and \
           blank lines are skipped).  Omitted or $(b,-): read stdin.")

let batch_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the compiled members.  1 (the default) \
           shares a single BDD store across the whole batch — maximal \
           subformula sharing; larger values shard the batch for \
           parallelism.  Results are bit-identical for every value.")

let read_query_lines = function
  | None | Some "-" ->
    let rec go acc =
      match In_channel.input_line stdin with
      | Some l -> go (l :: acc)
      | None -> List.rev acc
    in
    go []
  | Some file -> In_channel.with_open_text file In_channel.input_lines

let route_to_string = function
  | Batch_eval.Lifted -> "lifted"
  | Batch_eval.Compiled s -> Printf.sprintf "bdd shard %d" s
  | Batch_eval.Duplicate j -> Printf.sprintf "duplicate of member %d" j

let run_batch table queries_file domains bdd_cache_size bdd_gc_threshold stats
    =
  guard @@ fun () ->
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let lines =
    read_query_lines queries_file
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.starts_with ~prefix:"#" l))
  in
  if lines = [] then invalid_arg "batch: no queries (empty input)";
  let phis = Array.of_list (List.map Fo_parse.parse_exn lines) in
  let r =
    Batch_eval.boolean ?cache_size:bdd_cache_size
      ?gc_threshold:bdd_gc_threshold ~domains ti phis
  in
  Array.iteri
    (fun i (m : Rational.t Batch_eval.member) ->
      Printf.printf "P[ %s ] = %s (~%s) [%s]\n" (List.nth lines i)
        (Rational.to_string m.Batch_eval.prob)
        (Rational.to_decimal_string ~digits:8 m.Batch_eval.prob)
        (route_to_string m.Batch_eval.route))
    r.Batch_eval.members;
  Printf.printf "batch: %d member(s): %d lifted, %d compiled on %d shard(s), \
                 %d duplicate(s)\n"
    (Array.length r.Batch_eval.members)
    r.Batch_eval.lifted r.Batch_eval.compiled r.Batch_eval.shards
    r.Batch_eval.deduped;
  if stats then
    (* The kernel rounds the op-cache knob up to a power of two; report
       the size actually in effect rather than echoing the request. *)
    Printf.printf "bdd op cache: requested %d, effective %d entries\n"
      (Option.value bdd_cache_size ~default:Bdd.default_cache_size)
      r.Batch_eval.cache_size

let batch_cmd =
  let doc =
    "Evaluate many Boolean queries on one TI table at once: one \
     quantifier-rank padding for the whole batch, safe members answered \
     by the lifted engine, the rest compiled into a shared BDD store \
     (common subformulas hit one unique table and op cache) and counted \
     in a single shared-memo sweep.  Exact results, bit-identical to \
     the one-at-a-time loop at any $(b,--domains) setting."
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run_batch $ table_arg $ queries_file_arg $ batch_domains_arg
      $ bdd_cache_size_arg $ bdd_gc_threshold_arg $ stats_arg)

let policy_arg =
  Arg.(
    value
    & opt string "geometric:1/4:1/2"
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Open-world policy: lambda:<p>:<k> or geometric:<first>:<ratio>.")

let eps_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "eps" ] ~docv:"EPS" ~doc:"Additive error budget in (0, 1/2).")

let run_open table query policy eps stats =
  guard @@ fun () ->
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let c = parse_policy policy ti in
  let phi = Fo_parse.parse_exn query in
  let r = Completion.query_prob c ~eps phi in
  Printf.printf
    "P[ %s ] = %s (+/- %g; %d new facts; certified in [%.8f, %.8f])\n" query
    (Rational.to_decimal_string ~digits:8 r.Approx_eval.estimate)
    eps r.Approx_eval.n_used
    (Interval.lo r.Approx_eval.bounds)
    (Interval.hi r.Approx_eval.bounds)

let open_cmd =
  let doc = "Open-world (completed) approximate query evaluation." in
  Cmd.v (Cmd.info "open" ~doc)
    Term.(
      const run_open $ table_arg $ query_arg 1 $ policy_arg $ eps_arg
      $ stats_arg)

let run_anytime table query policy eps timeout virtual_rate max_bdd_nodes
    max_facts bdd_cache_size bdd_gc_threshold stats =
  guard @@ fun () ->
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let c = parse_policy policy ti in
  let src =
    Fact_source.append_finite (Ti_table.facts ti) (Completion.new_facts c)
  in
  let phi = Fo_parse.parse_exn query in
  let budget =
    make_budget ?max_bdd_nodes ?max_facts ~timeout ~virtual_rate ()
  in
  let sess =
    Anytime.create ~eps ?budget ?cache_size:bdd_cache_size
      ?gc_threshold:bdd_gc_threshold src phi
  in
  let reason, steps = Anytime.run sess in
  List.iter
    (fun (s : Anytime.step) ->
      Printf.printf
        "step %2d: n=%6d  est=%.8f  in [%.8f, %.8f]  width=%.2e  bdd=%d  %s\n"
        s.Anytime.index s.Anytime.n
        (Interval.mid s.Anytime.estimate)
        (Interval.lo s.Anytime.bounds)
        (Interval.hi s.Anytime.bounds)
        s.Anytime.width s.Anytime.bdd_size
        (if s.Anytime.incremental then "delta" else "recompile"))
    steps;
  Printf.printf "stopped: %s after %d steps (n=%d, %d nodes in the manager)\n"
    (Anytime.stop_reason_to_string reason)
    (List.length steps) (Anytime.current_n sess) (Anytime.node_count sess)

let anytime_cmd =
  let doc =
    "Incremental anytime evaluation: deepen the truncation step by step, \
     reusing BDD work, until the certified interval has width at most \
     2*eps (or a budget interrupts it, leaving the last certified \
     enclosure)."
  in
  Cmd.v (Cmd.info "anytime" ~doc)
    Term.(
      const run_anytime $ table_arg $ query_arg 1 $ policy_arg $ eps_arg
      $ timeout_arg $ virtual_rate_arg $ max_bdd_nodes_arg $ max_facts_arg
      $ bdd_cache_size_arg $ bdd_gc_threshold_arg $ stats_arg)

let samples_arg =
  Arg.(
    value & opt int 5
    & info [ "n"; "samples" ] ~docv:"N" ~doc:"Number of worlds to draw.")

let seed_arg =
  Arg.(
    value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let opened_arg =
  Arg.(
    value & flag
    & info [ "open-world" ] ~doc:"Sample from the completed PDB instead.")

let run_sample table n seed opened policy =
  guard @@ fun () ->
  let ti = read_table table in
  let g = Prng.create ~seed () in
  if opened then begin
    let c = parse_policy policy ti in
    let src =
      Fact_source.append_finite (Ti_table.facts ti) (Completion.new_facts c)
    in
    let cti = Countable_ti.create src in
    for _ = 1 to n do
      print_endline (Instance.to_string (Countable_ti.sample cti g))
    done
  end
  else
    for _ = 1 to n do
      print_endline (Instance.to_string (Ti_table.sample ti g))
    done

let sample_cmd =
  let doc = "Draw random worlds." in
  Cmd.v (Cmd.info "sample" ~doc)
    Term.(
      const run_sample $ table_arg $ samples_arg $ seed_arg $ opened_arg
      $ policy_arg)

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the Monte-Carlo engine (0 = one per \
           recommended core).  The estimate is bit-identical for every \
           value: parallelism changes only who executes a batch.")

let mc_samples_arg =
  Arg.(
    value & opt int 100_000
    & info [ "samples" ] ~docv:"N" ~doc:"Number of worlds to draw.")

let confidence_arg =
  Arg.(
    value
    & opt float 0.99
    & info [ "confidence" ] ~docv:"C"
        ~doc:"Two-sided coverage level of the reported interval, in (0,1).")

let run_mc table query opened policy domains samples confidence seed timeout
    virtual_rate stats =
  guard @@ fun () ->
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let space =
    if opened then Mc_eval.Completed (parse_policy policy ti)
    else Mc_eval.Ti (Countable_ti.create (Fact_source.of_ti_table ti))
  in
  let phi = Fo_parse.parse_exn query in
  let domains = if domains = 0 then None else Some domains in
  let budget = make_budget ~timeout ~virtual_rate () in
  let r =
    Mc_eval.boolean ?budget ?domains ~confidence ~seed ~samples space phi
  in
  Printf.printf
    "P[ %s ] ~ %.8f  (%d/%d hits; %g%% interval [%.8f, %.8f]; truncation TV \
     %.2e; %d domains, %d batches of %d%s)\n"
    query r.Mc_eval.estimate r.Mc_eval.hits r.Mc_eval.samples
    (100.0 *. r.Mc_eval.confidence)
    (Interval.lo r.Mc_eval.bounds)
    (Interval.hi r.Mc_eval.bounds)
    r.Mc_eval.truncation_tv r.Mc_eval.domains_used r.Mc_eval.batches
    r.Mc_eval.batch_size
    (if r.Mc_eval.interrupted then
       Printf.sprintf "; interrupted at %d/%d worlds" r.Mc_eval.samples
         r.Mc_eval.samples_requested
     else "");
  if stats then begin
    print_endline "-- interval width trajectory --";
    List.iter
      (fun (n, w) -> Printf.printf "  after %8d worlds: width %.6f\n" n w)
      r.Mc_eval.width_trajectory
  end

let mc_cmd =
  let doc =
    "Monte-Carlo query estimation: draw worlds from the (optionally \
     completed) PDB in parallel across domains and report a \
     Wilson-score confidence interval widened by the truncation bound."
  in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(
      const run_mc $ table_arg $ query_arg 1 $ opened_arg $ policy_arg
      $ domains_arg $ mc_samples_arg $ confidence_arg $ seed_arg
      $ timeout_arg $ virtual_rate_arg $ stats_arg)

let inject_faults_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "inject-faults" ] ~docv:"SEED"
        ~doc:
          "Wrap the fact source in the deterministic fault injector \
           (transient raises, stalls, corrupt probabilities, NaN and \
           silent tail certificates) with this schedule seed — for \
           robustness demos and tests.")

let robust_samples_arg =
  Arg.(
    value & opt int 20_000
    & info [ "samples" ] ~docv:"N"
        ~doc:"Monte-Carlo worlds for the last ladder rung.")

let run_robust table query policy eps timeout virtual_rate max_bdd_nodes
    max_facts bdd_cache_size bdd_gc_threshold samples seed faults stats =
  guard @@ fun () ->
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let c = parse_policy policy ti in
  let src =
    Fact_source.append_finite (Ti_table.facts ti) (Completion.new_facts c)
  in
  let src =
    match faults with
    | None -> src
    | Some fs -> Faulty_source.wrap (Faulty_source.default ~seed:fs) src
  in
  let phi = Fo_parse.parse_exn query in
  (* --timeout / --virtual-rate bound the whole ladder; the node/fact
     caps are per-attempt (child budgets inside the supervisor). *)
  let budget = make_budget ~timeout ~virtual_rate () in
  let a =
    Robust_eval.query ?budget ~eps ?max_bdd_nodes ?max_facts
      ?bdd_cache_size ?bdd_gc_threshold ~mc_samples:samples ~seed src phi
  in
  print_endline (Robust_eval.answer_to_string a)

let robust_cmd =
  let doc =
    "Resource-governed evaluation: run the degradation ladder exact -> \
     anytime -> Monte-Carlo under one shared budget, retry transient \
     faults, and report the narrowest certified enclosure with full \
     provenance.  Never fails on faults or exhaustion — a starved run \
     returns a wide (still sound) enclosure and says why."
  in
  Cmd.v (Cmd.info "robust" ~doc)
    Term.(
      const run_robust $ table_arg $ query_arg 1 $ policy_arg $ eps_arg
      $ timeout_arg $ virtual_rate_arg $ max_bdd_nodes_arg $ max_facts_arg
      $ bdd_cache_size_arg $ bdd_gc_threshold_arg $ robust_samples_arg
      $ seed_arg $ inject_faults_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* fuzz: differential testing against the enumeration oracle *)
(* ------------------------------------------------------------------ *)

(* Like [guard], but the body chooses the exit code (fuzzing failures
   exit 1 without being an exception). *)
let guard_code f =
  try f () with
  | Errors.Error e ->
    prerr_endline ("iowpdb: " ^ Errors.to_string e);
    Errors.exit_code e
  | Budget.Exhausted ex ->
    prerr_endline
      ("iowpdb: budget exhausted: " ^ Budget.exhaustion_to_string ex);
    3
  | Invalid_argument msg | Sys_error msg | Failure msg ->
    prerr_endline ("iowpdb: " ^ msg);
    2

let cases_arg =
  Arg.(
    value & opt int 200
    & info [ "cases" ] ~docv:"N" ~doc:"Random cases to generate and check.")

let rank_arg =
  Arg.(
    value & opt int 3
    & info [ "rank" ] ~docv:"R"
        ~doc:"Maximum quantifier rank of generated queries.")

let engines_arg =
  Arg.(
    value & opt string "all"
    & info [ "engines" ] ~docv:"LIST"
        ~doc:
          "Comma-separated engines to exercise \
           (exact|lifted|approx|anytime|mc|robust|batch), or $(b,all).")

let corpus_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus-dir" ] ~docv:"DIR"
        ~doc:
          "Write shrunk failing cases here as replayable .case files \
           (the test/corpus format).")

let fuzz_mc_samples_arg =
  Arg.(
    value & opt int 1500
    & info [ "mc-samples" ] ~docv:"N"
        ~doc:"Monte-Carlo worlds per mc containment check.")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"PATH"
        ~doc:
          "Instead of generating cases, replay a .case file or a \
           directory of them and re-run every engine check.")

let print_failure (f : Fuzzer.failure) =
  Printf.printf "FAIL case=%d kind=%s check=%s\n  query: %s\n  %s\n"
    f.Fuzzer.f_case.Fuzzer.id
    (Fuzzer.kind_to_string f.Fuzzer.f_case.Fuzzer.kind)
    f.Fuzzer.check
    (Fo.to_string f.Fuzzer.f_case.Fuzzer.query)
    f.Fuzzer.detail

let run_fuzz cases seed rank engines corpus_dir mc_samples replay =
  guard_code @@ fun () ->
  let engines =
    match Fuzzer.engines_of_string engines with
    | Ok es -> es
    | Error msg -> invalid_arg ("--engines: " ^ msg)
  in
  match replay with
  | Some path ->
    let files =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".case")
        |> List.sort compare
        |> List.map (Filename.concat path)
      else [ path ]
    in
    if files = [] then invalid_arg ("no .case files under " ^ path);
    let checks = ref 0 in
    let failures =
      List.concat_map
        (fun file ->
          let cc = Fuzzer.load file in
          let n, fs =
            Fuzzer.run_case ~engines ~mc_samples cc.Fuzzer.c_case
          in
          checks := !checks + n;
          List.map (fun f -> (file, f)) fs)
        files
    in
    Printf.printf "replayed %d corpus case(s), %d check(s), %d failure(s)\n"
      (List.length files) !checks (List.length failures);
    List.iter
      (fun (file, f) ->
        Printf.printf "in %s:\n" file;
        print_failure f)
      failures;
    if failures = [] then 0 else 1
  | None ->
    let config = { Oracle_gen.default with Oracle_gen.max_rank = rank } in
    let r =
      Fuzzer.run ~config ~engines ~mc_samples ?corpus_dir ~seed ~cases ()
    in
    Printf.printf "fuzz: seed=%d cases=%d checks=%d engines=%s\n" seed
      r.Fuzzer.cases_run r.Fuzzer.checks_run
      (String.concat "," (List.map Fuzzer.engine_to_string r.Fuzzer.engines_run));
    if List.mem Fuzzer.Mc engines then
      Printf.printf "mc containment confidence: %.5f (Bonferroni-corrected)\n"
        r.Fuzzer.mc_confidence;
    List.iter print_failure r.Fuzzer.failures;
    List.iter
      (fun p -> Printf.printf "wrote %s\n" p)
      r.Fuzzer.corpus_written;
    if r.Fuzzer.failures = [] then begin
      print_endline "no discrepancies";
      0
    end
    else 1

let fuzz_cmd =
  let doc =
    "Differential fuzzing: generate random instances and queries, compute \
     exact ground truth by exhaustive possible-worlds enumeration (the \
     oracle), and check every engine against it — exact rational equality \
     for the exact paths, oracle-enclosure containment/overlap for every \
     reported interval (Monte-Carlo at a Bonferroni-corrected confidence), \
     plus metamorphic laws (complement, monotonicity, completion \
     condition, interval narrowing).  Deterministic for a fixed seed; \
     failing cases are shrunk and can be saved for regression replay."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run_fuzz $ cases_arg $ seed_arg $ rank_arg $ engines_arg
      $ corpus_dir_arg $ fuzz_mc_samples_arg $ replay_arg)

(* Purely syntactic: no table needed — the dichotomy verdict and the plan
   tree are properties of the query alone. *)
let run_plan query =
  guard @@ fun () ->
  let phi = Fo_parse.parse_exn query in
  (match Fo.free_vars phi with
  | [] -> ()
  | fvs ->
    invalid_arg
      (Printf.sprintf "query has free variables %s" (String.concat ", " fvs)));
  match Safe_plan.plan_of phi with
  | Some plan ->
    Printf.printf "safe: yes (lifted evaluation, polynomial time)\n";
    Printf.printf "plan: %s\n" (Safe_plan.plan_to_string plan)
  | None ->
    Printf.printf
      "safe: no (no lifted plan: hard side of the dichotomy, or outside \
       the positive existential UCQ fragment; grounded engines take over)\n"

let plan_cmd =
  let doc =
    "Show the lifted safe plan for a query, or report that none exists. \
     The plan certifies polynomial-time evaluation via independent union \
     / join / project and inclusion-exclusion; queries without one are \
     routed to the lineage + BDD engine by $(b,query) and to the grounded \
     rungs by $(b,robust)."
  in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(const run_plan $ query_arg 0)

(* ------------------------------------------------------------------ *)
(* serve / client: the resident query service *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/iowpdb.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (created by serve, removed on exit).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on (or connect to) TCP instead of the Unix socket.")

let endpoint_of ~socket ~tcp =
  match tcp with
  | None -> `Unix socket
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | Some i ->
      let host = String.sub spec 0 i
      and port = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match int_of_string_opt port with
      | Some p when host <> "" -> `Tcp (host, p)
      | _ -> invalid_arg (Printf.sprintf "bad --tcp %S (want HOST:PORT)" spec))
    | None -> invalid_arg (Printf.sprintf "bad --tcp %S (want HOST:PORT)" spec))

let serve_domains_arg =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"D"
        ~doc:"Worker domains evaluating queries in parallel.")

let queue_bound_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-bound" ] ~docv:"N"
        ~doc:
          "Work-queue capacity.  A full queue answers Overloaded with a \
           retry-after hint — the server never builds unbounded backlog.")

let window_arg =
  Arg.(
    value & opt float 1.0
    & info [ "window" ] ~docv:"SECS"
        ~doc:
          "Length of the rolling budget epoch carrying the global \
           resource caps.")

let shed_at_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "shed-at" ] ~docv:"P"
        ~doc:
          "Pressure (worst cap utilisation, or queue fill) at which \
           requests are degraded to the shed ladder (lifted + reduced \
           Monte-Carlo, no compilation).")

let reject_at_arg =
  Arg.(
    value
    & opt float 0.9
    & info [ "reject-at" ] ~docv:"P"
        ~doc:"Pressure at which requests are rejected outright.")

let max_samples_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-samples" ] ~docv:"N"
        ~doc:"Per-window global cap on Monte-Carlo worlds drawn.")

let serve_samples_arg =
  Arg.(
    value & opt int 20_000
    & info [ "samples" ] ~docv:"N"
        ~doc:"Monte-Carlo worlds per request at full service.")

let shed_samples_arg =
  Arg.(
    value & opt int 2_000
    & info [ "shed-samples" ] ~docv:"N"
        ~doc:"Monte-Carlo worlds per request when degraded under load.")

let serve_deadline_arg =
  Arg.(
    value & opt float 1.0
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Default per-request wall deadline applied when the client \
           sends none (0 disables).  The deadline starts at admission, \
           so time spent queued counts against it.")

let cache_arg =
  Arg.(
    value & opt int 256
    & info [ "cache" ] ~docv:"N"
        ~doc:
          "Result-cache capacity: certified answers keyed by (query, \
           policy), reused epsilon-aware (0 disables).")

let run_serve table store_path warm_cache socket tcp policy domains
    queue_bound window shed_at reject_at max_bdd_nodes max_facts max_samples
    eps samples shed_samples deadline cache updatable =
  guard @@ fun () ->
  (* Fact sources memoize internally, so the server gets a factory and
     builds a fresh one per request (worker domains must not share). *)
  let make_source, store_checksum, updatable_table =
    match (table, store_path) with
    | Some _, Some _ ->
      invalid_arg "serve: give either a TABLE argument or --store, not both"
    | None, None -> invalid_arg "serve: a TABLE argument or --store is required"
    | Some table, None when updatable ->
      (* Streaming updates need a finite materialized table the server
         can own and mutate; it is served closed-world (the policy
         would complete a table that no longer exists after the first
         delta), so --policy is ignored here. *)
      let ti = read_table table in
      ((fun () -> Fact_source.of_ti_table ti), None, Some ti)
    | Some table, None ->
      let ti = read_table table in
      ( (fun () ->
          let c = parse_policy policy ti in
          Fact_source.append_finite (Ti_table.facts ti)
            (Completion.new_facts c)),
        None,
        None )
    | None, Some _ when updatable ->
      invalid_arg
        "serve: --updatable requires a text TABLE (a mmap'd pack cannot \
         be mutated in place)"
    | None, Some pack ->
      (* Zero-parse boot: mmap + checksum, no fact decoded until a query
         asks for it — the sidecar certifies tails in O(1). *)
      let st = Store.load pack in
      if Store.kind st <> Store.Ti then
        invalid_arg (Printf.sprintf "serve: %s is not a TI pack" pack);
      ( (fun () -> Store.fact_source ~rest:(policy_source policy) st),
        Some (Store.checksum_hex st),
        None )
  in
  let warm_cache =
    match (warm_cache, store_checksum) with
    | None, _ -> None
    | Some _, None ->
      invalid_arg
        "serve: --warm-cache requires --store (the cache is validated \
         against the pack checksum)"
    | Some path, Some sum -> Some (path, sum ^ ":" ^ policy)
  in
  let cfg =
    {
      Server.endpoint = endpoint_of ~socket ~tcp;
      make_source;
      policy_label = (if updatable then "" else policy);
      domains;
      admission =
        {
          Admission.queue_bound;
          window_s = window;
          shed_at;
          reject_at;
          max_bdd_nodes;
          max_facts;
          max_samples;
        };
      default_eps = eps;
      default_samples = samples;
      shed_samples;
      default_deadline_s = (if deadline <= 0.0 then None else Some deadline);
      cache_capacity = cache;
      warm_cache;
      updatable = updatable_table;
    }
  in
  Server.run cfg

let updatable_arg =
  Arg.(
    value & flag
    & info [ "updatable" ]
        ~doc:
          "Serve the text TABLE as a finite materialized table that \
           $(b,client update) frames may mutate (insert / delete / \
           reweight) while the server runs.  Each accepted update bumps \
           the mutated relation's epoch, invalidating exactly the \
           cached answers that read it; the table is served \
           closed-world ($(b,--policy) is ignored).  Incompatible with \
           $(b,--store).")

let serve_table_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"TABLE"
        ~doc:
          "TI table text file (one 'R(args) prob' per line).  Omit when \
           booting from $(b,--store).")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"PACK"
        ~doc:
          "Boot from a packed $(b,.iow) store instead of a text TABLE: \
           the pack is mmap'd and checksum-validated, no fact is parsed \
           or decoded until a query needs it, and truncation depths come \
           from the precomputed tail-mass sidecar.")

let warm_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "warm-cache" ] ~docv:"PATH"
        ~doc:
          "Persist the epsilon-aware result cache to PATH on drain and \
           restore it at boot.  The file is tagged with the pack \
           checksum and the policy spec, and is rejected wholesale if \
           either has changed — requires $(b,--store).")

let serve_cmd =
  let doc =
    "Resident query server: load the table and open-world policy once, \
     then answer framed requests over a Unix-domain (or TCP) socket, \
     multiplexed across worker domains behind a bounded queue.  \
     Admission control carves each request a budget from a rolling \
     server-wide epoch; under pressure requests are degraded down the \
     robust ladder or rejected with a retry-after hint, and on deadline \
     expiry a request returns its best-so-far sound enclosure instead \
     of timing out.  SIGTERM (or a drain request) finishes in-flight \
     work, rejects new queries, and exits cleanly.  With $(b,--store) \
     the table comes from a packed $(b,.iow) file (zero-parse mmap \
     boot) and $(b,--warm-cache) carries certified answers across \
     restarts.  With $(b,--updatable) the table accepts streaming \
     $(b,client update) deltas with per-relation epoch cache \
     invalidation."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ serve_table_arg $ store_arg $ warm_cache_arg
      $ socket_arg $ tcp_arg $ policy_arg $ serve_domains_arg
      $ queue_bound_arg $ window_arg $ shed_at_arg $ reject_at_arg
      $ max_bdd_nodes_arg $ max_facts_arg $ max_samples_arg $ eps_arg
      $ serve_samples_arg $ shed_samples_arg $ serve_deadline_arg
      $ cache_arg $ updatable_arg)

(* ------------------------------------------------------------------ *)
(* pack: compile a text table into the mmap'd store format *)
(* ------------------------------------------------------------------ *)

let pack_out_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"OUT" ~doc:"Output pack path (conventionally .iow).")

let pack_kind_arg =
  Arg.(
    value & opt string "ti"
    & info [ "kind" ] ~docv:"KIND"
        ~doc:
          "Input table kind: $(b,ti) (tuple-independent, the default) or \
           $(b,bid) (block-independent-disjoint).")

let pack_verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "After writing, re-load the pack and check every fact and \
           probability is rationally identical to the text table \
           (exit 2 on any mismatch).")

let run_pack table out kind verify =
  guard @@ fun () ->
  let verify_fn =
    match kind with
    | "ti" ->
      let ti = Ti_table.of_file table in
      Store.write_ti ~path:out ti;
      fun st -> Store.verify_against_ti st ti
    | "bid" ->
      let bid = Bid_table.of_file table in
      Store.write_bid ~path:out bid;
      fun st -> Store.verify_against_bid st bid
    | k -> invalid_arg (Printf.sprintf "bad --kind %S (want ti or bid)" k)
  in
  let st = Store.load out in
  Printf.printf "packed:   %s\n" out;
  Printf.printf "kind:     %s\n"
    (match Store.kind st with Store.Ti -> "ti" | Store.Bid -> "bid");
  Printf.printf "facts:    %d\n" (Store.size st);
  if Store.kind st = Store.Bid then
    Printf.printf "blocks:   %d\n" (Store.num_blocks st);
  Printf.printf "bytes:    %d\n" (Store.byte_size st);
  Printf.printf "checksum: %s\n" (Store.checksum_hex st);
  if verify then
    match verify_fn st with
    | Ok () ->
      Printf.printf "verify:   ok (%d facts round-trip rationally identical)\n"
        (Store.size st)
    | Error msg ->
      raise (Errors.Error (Errors.Store { path = out; region = "verify"; msg }))

let pack_cmd =
  let doc =
    "Compile a text table into the packed $(b,.iow) store format: facts \
     dictionary-encoded and sorted by descending probability, exact \
     rational probabilities, a precomputed tail-mass sidecar (so \
     truncation is an O(1) slice or an O(log n) binary search), and a \
     whole-file checksum behind a magic/version header.  $(b,serve \
     --store) then boots from the pack with an mmap instead of a parse."
  in
  Cmd.v (Cmd.info "pack" ~doc)
    Term.(
      const run_pack $ table_arg $ pack_out_arg $ pack_kind_arg
      $ pack_verify_arg)

let request_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"REQUEST"
        ~doc:
          "One of $(b,query), $(b,update), $(b,health), $(b,stats), \
           $(b,drain).")

let client_query_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"QUERY"
        ~doc:
          "First-order sentence (required for $(b,query)), or a delta \
           like 'insert R(a) 1/2', 'delete R(a)', 'reweight R(a) 1/3' \
           (required for $(b,update)).")

let deadline_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline in milliseconds, enforced server-side: \
           on expiry the reply is the best-so-far sound enclosure, \
           flagged budget-exhausted.")

let client_eps_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "eps" ] ~docv:"EPS"
        ~doc:"Additive error target (server default when omitted).")

let client_samples_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mc-samples" ] ~docv:"N"
        ~doc:"Monte-Carlo worlds (server default when omitted).")

let retries_arg =
  Arg.(
    value & opt int 4
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total connection attempts (transport faults are retried with \
           capped exponential backoff).")

let run_client socket tcp request query eps deadline_ms mc_samples seed
    retries =
  guard_code @@ fun () ->
  let endpoint = endpoint_of ~socket ~tcp in
  let req =
    match request with
    | "query" -> (
      match query with
      | Some q ->
        Protocol.Query { query = q; eps; deadline_ms; mc_samples; seed }
      | None -> invalid_arg "client query: missing QUERY argument")
    | "update" -> (
      match query with
      | Some d -> Protocol.Update { delta = d }
      | None -> invalid_arg "client update: missing DELTA argument")
    | "health" -> Protocol.Health
    | "stats" -> Protocol.Stats_req
    | "drain" -> Protocol.Drain
    | r ->
      invalid_arg
        (Printf.sprintf
           "unknown request %S (want query|update|health|stats|drain)" r)
  in
  let policy = { Retry.default_policy with Retry.max_attempts = retries } in
  match Client.call ~policy ~seed endpoint req with
  | Error e ->
    prerr_endline ("iowpdb: " ^ Errors.to_string e);
    Errors.exit_code e
  | Ok
      (Protocol.Answer
         { lo; hi; estimate; provenance; budget_exhausted; cached; shed }) ->
    Printf.printf "P[ %s ] in [%.8f, %.8f] ~ %.8f%s%s%s\n"
      (Option.value query ~default:"")
      lo hi estimate
      (if cached then " (cached)" else "")
      (if shed then " (shed)" else "")
      (if budget_exhausted then " (budget exhausted: best-so-far)" else "");
    print_endline provenance;
    0
  | Ok (Protocol.Update_ok { relation; epoch; noop }) ->
    Printf.printf "updated %s (epoch %d)%s\n" relation epoch
      (if noop then " (no-op: table already satisfied the delta)" else "");
    0
  | Ok (Protocol.Overloaded { retry_after_ms; draining }) ->
    Printf.eprintf "iowpdb: server overloaded%s; retry after %d ms\n"
      (if draining then " (draining)" else "")
      retry_after_ms;
    3
  | Ok (Protocol.Error_resp { code; msg }) ->
    prerr_endline ("iowpdb: server error: " ^ msg);
    code
  | Ok (Protocol.Health_ok { draining; inflight; uptime_s }) ->
    Printf.printf "ok: draining=%b inflight=%d uptime=%.1fs\n" draining
      inflight uptime_s;
    0
  | Ok (Protocol.Stats_resp entries) ->
    List.iter (fun (k, v) -> Printf.printf "%s %g\n" k v) entries;
    0

let client_cmd =
  let doc =
    "Talk to a resident $(b,serve) instance: send one query (or an \
     update, health, stats, or drain request) and print the reply.  Transport \
     faults are retried with capped backoff; exit codes: answer 0, \
     overloaded/draining 3, server-reported errors their own code, \
     unreachable server 1."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run_client $ socket_arg $ tcp_arg $ request_arg
      $ client_query_arg $ client_eps_arg $ deadline_ms_arg
      $ client_samples_arg $ seed_arg $ retries_arg)

let run_info table =
  guard @@ fun () ->
  let ti = read_table table in
  Printf.printf "facts:          %d\n" (Ti_table.size ti);
  Printf.printf "expected size:  %s\n"
    (Rational.to_decimal_string (Ti_table.expected_instance_size ti));
  Printf.printf "active domain:  %d values\n"
    (List.length (Ti_table.active_domain ti));
  List.iter
    (fun (f, p) ->
      Printf.printf "  %s %s\n" (Fact.to_string f) (Rational.to_string p))
    (Ti_table.facts ti)

let info_cmd =
  let doc = "Show statistics of a TI table." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run_info $ table_arg)

let root =
  let doc = "infinite open-world probabilistic databases" in
  Cmd.group
    (Cmd.info "iowpdb" ~version:"1.0.0" ~doc)
    [
      query_cmd;
      batch_cmd;
      open_cmd;
      anytime_cmd;
      mc_cmd;
      robust_cmd;
      sample_cmd;
      plan_cmd;
      fuzz_cmd;
      pack_cmd;
      serve_cmd;
      client_cmd;
      info_cmd;
    ]

let main ?argv () = Cmd.eval' ?argv root
