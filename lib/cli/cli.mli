(** The command-line interface, as a library so tests can drive it
    through Cmdliner's evaluation API without spawning processes.

    Every subcommand evaluates to an {e exit code}: [0] on success, and
    on failure a one-line message on stderr plus [2] for malformed input
    (parse errors, invalid models, divergent sources, bad arguments,
    unreadable files), [3] for budget exhaustion surfaced as a hard
    error, [1] for internal engine failures — the mapping of
    {!Errors.exit_code}. *)

val root : int Cmdliner.Cmd.t
(** The full [iowpdb] command group: query / open / anytime / mc /
    robust / sample / info. *)

val main : ?argv:string array -> unit -> int
(** Evaluate [root] (against [Sys.argv] by default) and return the exit
    code.  [argv.(0)] is the program name, as with [Cmd.eval']. *)
