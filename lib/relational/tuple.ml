type t = Value.t array

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else begin
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  end

let equal a b = compare a b = 0

(* Allocation-free multiplicative-mix fold over every element; see the
   matching comment on [Fact.hash] for why [Hashtbl.hash] on an
   intermediate array is wrong for wide tuples. *)
let hash t =
  let h = ref (Array.length t) in
  for i = 0 to Array.length t - 1 do
    h := (((!h * 0x9e3779b1) land max_int) lxor Value.hash t.(i)) land max_int
  done;
  let h = !h in
  (h lxor (h lsr 15)) land max_int

let to_string t =
  "(" ^ String.concat ", " (List.map Value.to_string (Array.to_list t)) ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
