type t = { rel : string; args : Value.t array }

let make_arr rel args =
  if rel = "" then invalid_arg "Fact.make: empty relation name";
  { rel; args }

let make rel args = make_arr rel (Array.of_list args)

let conforms schema f =
  match Schema.find schema f.rel with
  | None -> false
  | Some r ->
    Array.length f.args = r.Schema.arity
    && (match r.Schema.sorts with
        | None -> true
        | Some ss ->
          let ok = ref true in
          Array.iteri
            (fun i v -> if Value.sort_of v <> ss.(i) then ok := false)
            f.args;
          !ok)

let checked schema rel args =
  let f = make rel args in
  if conforms schema f then f
  else
    invalid_arg
      (Printf.sprintf "Fact.checked: %s(%s) does not conform to the schema"
         rel
         (String.concat ", " (List.map Value.to_string args)))

let rel f = f.rel
let args f = Array.to_list f.args
let arity f = Array.length f.args
let arg f i = f.args.(i)

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else begin
    let la = Array.length a.args and lb = Array.length b.args in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i = la then 0
        else begin
          let c = Value.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end
  end

let equal a b = compare a b = 0

(* Allocation-free multiplicative-mix fold over the relation name and
   every argument.  [Hashtbl.hash] on an intermediate array would both
   allocate per call and stop after its default 10-element meaningful
   limit, making wide facts differing only in late columns collide
   systematically — the batch evaluator's weight cache keys on this. *)
let hash f =
  let h = ref (Hashtbl.hash f.rel) in
  for i = 0 to Array.length f.args - 1 do
    h := (((!h * 0x9e3779b1) land max_int) lxor Value.hash f.args.(i)) land max_int
  done;
  let h = !h in
  (h lxor (h lsr 15)) land max_int

let to_string f =
  Printf.sprintf "%s(%s)" f.rel
    (String.concat ", " (List.map Value.to_string (args f)))

let of_string s =
  match String.index_opt s '(' with
  | None -> invalid_arg "Fact.of_string: missing '('"
  | Some i ->
    let n = String.length s in
    if s.[n - 1] <> ')' then invalid_arg "Fact.of_string: missing ')'";
    let rel = String.trim (String.sub s 0 i) in
    let body = String.sub s (i + 1) (n - i - 2) in
    let parts =
      if String.trim body = "" then []
      else begin
        (* Split on commas that are not inside string quotes. *)
        let out = ref [] and buf = Buffer.create 16 and in_str = ref false in
        String.iter
          (fun c ->
            match c with
            | '"' ->
              in_str := not !in_str;
              Buffer.add_char buf c
            | ',' when not !in_str ->
              out := Buffer.contents buf :: !out;
              Buffer.clear buf
            | c -> Buffer.add_char buf c)
          body;
        out := Buffer.contents buf :: !out;
        List.rev_map String.trim !out
      end
    in
    make rel (List.map Value.of_string parts)

let pp fmt f = Format.pp_print_string fmt (to_string f)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
