(* Process-global registry of named monotone counters and wall-clock
   timers.  Counters are [Atomic.t] ints created once (at module
   initialisation of the instrumented code), so the hot-path cost of an
   event is one atomic increment and instrumented code may run in any
   domain; all string handling happens at registration and reporting
   time only.  The registry itself is guarded by a mutex, but that lock
   is only ever taken on the cold paths (create-or-lookup, snapshot,
   reset), never per event. *)

type counter = { c_name : string; c : int Atomic.t }
type timer = { t_name : string; seconds : float Atomic.t }

(* A fixed-bucket histogram: [bounds] are strictly increasing upper
   bounds, [counts] has one extra overflow cell.  Recording is one
   binary search plus one atomic increment, so worker domains may
   observe concurrently without ever dropping a sample. *)
type histogram = {
  h_name : string;
  bounds : float array;
  counts : int Atomic.t array;
}

type entry = Counter of counter | Timer of timer | Hist of histogram

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some (Timer _ | Hist _) ->
        invalid_arg (Printf.sprintf "Stats.counter: %s is not a counter" name)
      | None ->
        let c = { c_name = name; c = Atomic.make 0 } in
        Hashtbl.add registry name (Counter c);
        c)

let incr c = Atomic.incr c.c
let add c k = ignore (Atomic.fetch_and_add c.c k)
let count c = Atomic.get c.c

let timer name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Timer t) -> t
      | Some (Counter _ | Hist _) ->
        invalid_arg (Printf.sprintf "Stats.timer: %s is not a timer" name)
      | None ->
        let t = { t_name = name; seconds = Atomic.make 0.0 } in
        Hashtbl.add registry name (Timer t);
        t)

(* Log-spaced latency buckets: 5 per decade from 10 us to 100 s.  Wide
   enough for any request the serving layer answers; the overflow cell
   catches the rest. *)
let default_bounds =
  Array.init 36 (fun idx -> 1e-5 *. (10.0 ** (float_of_int idx /. 5.0)))

let histogram ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then
    invalid_arg "Stats.histogram: no buckets";
  Array.iteri
    (fun idx b ->
      if Float.is_nan b || (idx > 0 && b <= bounds.(idx - 1)) then
        invalid_arg "Stats.histogram: bounds must be strictly increasing")
    bounds;
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Hist h) -> h
      | Some (Counter _ | Timer _) ->
        invalid_arg (Printf.sprintf "Stats.histogram: %s is not a histogram" name)
      | None ->
        let h =
          {
            h_name = name;
            bounds = Array.copy bounds;
            counts =
              Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          }
        in
        Hashtbl.add registry name (Hist h);
        h)

(* Index of the first bound >= v, or the overflow cell. *)
let bucket_index h v =
  let n = Array.length h.bounds in
  if Float.is_nan v then n
  else begin
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if h.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v = Atomic.incr h.counts.(bucket_index h v)

let observations h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

let bucket_counts h =
  Array.mapi
    (fun idx c ->
      let ub =
        if idx < Array.length h.bounds then h.bounds.(idx) else infinity
      in
      (ub, Atomic.get c))
    h.counts

let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Stats.quantile: q must lie in [0, 1]";
  let counts = Array.map Atomic.get h.counts in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total)))
    in
    let idx = ref 0 and seen = ref 0 in
    while !seen < rank && !idx < Array.length counts do
      seen := !seen + counts.(!idx);
      if !seen < rank then Stdlib.incr idx
    done;
    (* Report the bucket's upper bound: a conservative (over-)estimate,
       clamped to the last finite bound for the overflow cell. *)
    if !idx < Array.length h.bounds then h.bounds.(!idx)
    else h.bounds.(Array.length h.bounds - 1)
  end

(* Lock-free accumulate: retry the compare-and-set until no concurrent
   writer slipped in between the read and the update.  [compare_and_set]
   compares the boxed float physically, which is exactly the freshness
   test needed here. *)
let rec accumulate cell s =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. s)) then accumulate cell s

let time t f =
  let start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> accumulate t.seconds (Unix.gettimeofday () -. start))
    f

let add_elapsed t s =
  if s < 0.0 || Float.is_nan s then invalid_arg "Stats.add_elapsed"
  else accumulate t.seconds s

let elapsed t = Atomic.get t.seconds

type snapshot = (string * float) list

let snapshot () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          match e with
          | Counter c -> (c.c_name, float_of_int (Atomic.get c.c)) :: acc
          | Timer t -> (t.t_name ^ ".seconds", Atomic.get t.seconds) :: acc
          | Hist h ->
            (h.h_name ^ ".count", float_of_int (observations h))
            :: (h.h_name ^ ".p50", quantile h 0.5)
            :: (h.h_name ^ ".p99", quantile h 0.99)
            :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name =
  match List.assoc_opt name snap with Some v -> v | None -> 0.0

let by_prefix snap prefix =
  List.filter (fun (n, _) -> String.starts_with ~prefix n) snap

let diff later earlier =
  let names =
    List.sort_uniq String.compare (List.map fst later @ List.map fst earlier)
  in
  List.map (fun n -> (n, find later n -. find earlier n)) names

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e with
          | Counter c -> Atomic.set c.c 0
          | Timer t -> Atomic.set t.seconds 0.0
          | Hist h -> Array.iter (fun c -> Atomic.set c 0) h.counts)
        registry)

let report fmt snap =
  List.iter
    (fun (name, v) ->
      if v <> 0.0 then
        if Float.is_integer v && Float.abs v < 1e15 then
          Format.fprintf fmt "  %-32s %12.0f@." name v
        else Format.fprintf fmt "  %-32s %12.6f@." name v)
    snap
