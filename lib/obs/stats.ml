(* Process-global registry of named monotone counters and wall-clock
   timers.  Counters are [Atomic.t] ints created once (at module
   initialisation of the instrumented code), so the hot-path cost of an
   event is one atomic increment and instrumented code may run in any
   domain; all string handling happens at registration and reporting
   time only.  The registry itself is guarded by a mutex, but that lock
   is only ever taken on the cold paths (create-or-lookup, snapshot,
   reset), never per event. *)

type counter = { c_name : string; c : int Atomic.t }
type timer = { t_name : string; seconds : float Atomic.t }

type entry = Counter of counter | Timer of timer

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some (Timer _) ->
        invalid_arg (Printf.sprintf "Stats.counter: %s is a timer" name)
      | None ->
        let c = { c_name = name; c = Atomic.make 0 } in
        Hashtbl.add registry name (Counter c);
        c)

let incr c = Atomic.incr c.c
let add c k = ignore (Atomic.fetch_and_add c.c k)
let count c = Atomic.get c.c

let timer name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Timer t) -> t
      | Some (Counter _) ->
        invalid_arg (Printf.sprintf "Stats.timer: %s is a counter" name)
      | None ->
        let t = { t_name = name; seconds = Atomic.make 0.0 } in
        Hashtbl.add registry name (Timer t);
        t)

(* Lock-free accumulate: retry the compare-and-set until no concurrent
   writer slipped in between the read and the update.  [compare_and_set]
   compares the boxed float physically, which is exactly the freshness
   test needed here. *)
let rec accumulate cell s =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. s)) then accumulate cell s

let time t f =
  let start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> accumulate t.seconds (Unix.gettimeofday () -. start))
    f

let add_elapsed t s =
  if s < 0.0 || Float.is_nan s then invalid_arg "Stats.add_elapsed"
  else accumulate t.seconds s

let elapsed t = Atomic.get t.seconds

type snapshot = (string * float) list

let snapshot () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          match e with
          | Counter c -> (c.c_name, float_of_int (Atomic.get c.c)) :: acc
          | Timer t -> (t.t_name ^ ".seconds", Atomic.get t.seconds) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name =
  match List.assoc_opt name snap with Some v -> v | None -> 0.0

let by_prefix snap prefix =
  List.filter (fun (n, _) -> String.starts_with ~prefix n) snap

let diff later earlier =
  let names =
    List.sort_uniq String.compare (List.map fst later @ List.map fst earlier)
  in
  List.map (fun n -> (n, find later n -. find earlier n)) names

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e with
          | Counter c -> Atomic.set c.c 0
          | Timer t -> Atomic.set t.seconds 0.0)
        registry)

let report fmt snap =
  List.iter
    (fun (name, v) ->
      if v <> 0.0 then
        if Float.is_integer v && Float.abs v < 1e15 then
          Format.fprintf fmt "  %-32s %12.0f@." name v
        else Format.fprintf fmt "  %-32s %12.6f@." name v)
    snap
