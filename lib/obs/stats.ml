(* Process-global registry of named monotone counters and wall-clock
   timers.  Counters are plain mutable ints created once (at module
   initialisation of the instrumented code), so the hot-path cost of an
   event is one increment; all string handling happens at registration
   and reporting time only. *)

type counter = { c_name : string; mutable c : int }
type timer = { t_name : string; mutable seconds : float }

type entry = Counter of counter | Timer of timer

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some (Timer _) ->
    invalid_arg (Printf.sprintf "Stats.counter: %s is a timer" name)
  | None ->
    let c = { c_name = name; c = 0 } in
    Hashtbl.add registry name (Counter c);
    c

let incr c = c.c <- c.c + 1
let add c k = c.c <- c.c + k
let count c = c.c

let timer name =
  match Hashtbl.find_opt registry name with
  | Some (Timer t) -> t
  | Some (Counter _) ->
    invalid_arg (Printf.sprintf "Stats.timer: %s is a counter" name)
  | None ->
    let t = { t_name = name; seconds = 0.0 } in
    Hashtbl.add registry name (Timer t);
    t

let time t f =
  let start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> t.seconds <- t.seconds +. (Unix.gettimeofday () -. start))
    f

let add_elapsed t s =
  if s < 0.0 || Float.is_nan s then invalid_arg "Stats.add_elapsed"
  else t.seconds <- t.seconds +. s

let elapsed t = t.seconds

type snapshot = (string * float) list

let snapshot () =
  Hashtbl.fold
    (fun _ e acc ->
      match e with
      | Counter c -> (c.c_name, float_of_int c.c) :: acc
      | Timer t -> (t.t_name ^ ".seconds", t.seconds) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name =
  match List.assoc_opt name snap with Some v -> v | None -> 0.0

let by_prefix snap prefix =
  List.filter (fun (n, _) -> String.starts_with ~prefix n) snap

let diff later earlier =
  let names =
    List.sort_uniq String.compare (List.map fst later @ List.map fst earlier)
  in
  List.map (fun n -> (n, find later n -. find earlier n)) names

let reset () =
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Counter c -> c.c <- 0
      | Timer t -> t.seconds <- 0.0)
    registry

let report fmt snap =
  List.iter
    (fun (name, v) ->
      if v <> 0.0 then
        if Float.is_integer v && Float.abs v < 1e15 then
          Format.fprintf fmt "  %-32s %12.0f@." name v
        else Format.fprintf fmt "  %-32s %12.6f@." name v)
    snap
