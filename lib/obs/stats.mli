(** Lightweight instrumentation: named monotone counters and wall-clock
    timers behind a process-global registry.

    The hot paths of the system (BDD apply caches, fact-source pulls,
    query-engine dispatch) bump counters created once at module
    initialisation, so the per-event cost is a single atomic-int
    increment — cheap enough to leave on unconditionally.  Consumers
    (the anytime evaluator, the CLI's [--stats] flag, the bench harness)
    read the registry through {!snapshot} and report deltas.

    Every operation is safe to call from any domain: counters and timers
    are [Atomic]-backed (no increment is ever dropped under concurrent
    bumps — the batched evaluator's worker domains rely on this), and the
    registry's create-or-lookup, snapshot and reset paths serialise on an
    internal mutex that is never taken per event.

    No dependencies beyond the standard library and [Unix] (for the
    wall clock). *)

type counter
type timer

val counter : string -> counter
(** Create-or-lookup by name: calling [counter n] twice returns the same
    underlying counter.  Names are conventionally dotted
    ([subsystem.event], e.g. ["bdd.apply_hit"]). *)

val incr : counter -> unit
val add : counter -> int -> unit

val count : counter -> int
(** Current value (monotone except across {!reset}). *)

val timer : string -> timer
(** Create-or-lookup, like {!counter}.  A timer accumulates wall-clock
    seconds over all {!time} invocations. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration to the timer.
    Exception-safe: the duration is recorded even if the thunk raises. *)

val add_elapsed : timer -> float -> unit
(** Credit a duration measured elsewhere (e.g. a worker domain that
    accumulated time locally and merges it after the join; direct
    concurrent credits are also safe — the accumulate is a
    compare-and-set retry loop, so no duration is ever lost).
    @raise Invalid_argument on negative or nan durations. *)

val elapsed : timer -> float
(** Accumulated seconds. *)

(** {1 Snapshots} *)

type snapshot = (string * float) list
(** Registry contents at one instant, sorted by name.  Counter values are
    represented as floats; timer names carry a [".seconds"] suffix so the
    two namespaces cannot collide. *)

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: entrywise subtraction (missing entries are 0);
    the per-step delta view used by the anytime evaluator. *)

val find : snapshot -> string -> float
(** 0 when absent. *)

val by_prefix : snapshot -> string -> snapshot
(** Entries whose name starts with the prefix, in snapshot order — e.g.
    [by_prefix snap "robust."] for one subsystem's view. *)

val reset : unit -> unit
(** Zero every registered counter and timer (the registry itself — the
    set of names — is preserved). *)

val report : Format.formatter -> snapshot -> unit
(** Human-readable table, one [name value] line per entry; zero entries
    are skipped. *)
