(** Lightweight instrumentation: named monotone counters and wall-clock
    timers behind a process-global registry.

    The hot paths of the system (BDD apply caches, fact-source pulls,
    query-engine dispatch) bump counters created once at module
    initialisation, so the per-event cost is a single atomic-int
    increment — cheap enough to leave on unconditionally.  Consumers
    (the anytime evaluator, the CLI's [--stats] flag, the bench harness)
    read the registry through {!snapshot} and report deltas.

    Every operation is safe to call from any domain: counters and timers
    are [Atomic]-backed (no increment is ever dropped under concurrent
    bumps — the batched evaluator's worker domains rely on this), and the
    registry's create-or-lookup, snapshot and reset paths serialise on an
    internal mutex that is never taken per event.

    No dependencies beyond the standard library and [Unix] (for the
    wall clock). *)

type counter
type timer

val counter : string -> counter
(** Create-or-lookup by name: calling [counter n] twice returns the same
    underlying counter.  Names are conventionally dotted
    ([subsystem.event], e.g. ["bdd.apply_hit"]). *)

val incr : counter -> unit
val add : counter -> int -> unit

val count : counter -> int
(** Current value (monotone except across {!reset}). *)

val timer : string -> timer
(** Create-or-lookup, like {!counter}.  A timer accumulates wall-clock
    seconds over all {!time} invocations. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration to the timer.
    Exception-safe: the duration is recorded even if the thunk raises. *)

val add_elapsed : timer -> float -> unit
(** Credit a duration measured elsewhere (e.g. a worker domain that
    accumulated time locally and merges it after the join; direct
    concurrent credits are also safe — the accumulate is a
    compare-and-set retry loop, so no duration is ever lost).
    @raise Invalid_argument on negative or nan durations. *)

val elapsed : timer -> float
(** Accumulated seconds. *)

(** {1 Histograms} *)

type histogram

val default_bounds : float array
(** Log-spaced latency bounds, 5 per decade from 10 microseconds to
    100 seconds (36 buckets), suitable for request latencies. *)

val histogram : ?bounds:float array -> string -> histogram
(** Create-or-lookup, like {!counter}.  [bounds] are the strictly
    increasing bucket upper bounds (default {!default_bounds}); an
    implicit overflow bucket catches larger values.  Recording is one
    binary search plus one atomic increment — lock-free, so worker
    domains may observe concurrently without losing samples.
    @raise Invalid_argument on empty or non-increasing bounds, or when
    the name is already registered as a counter or timer. *)

val observe : histogram -> float -> unit
(** Record one value into its bucket (nan goes to the overflow cell). *)

val observations : histogram -> int
(** Total number of recorded values. *)

val bucket_counts : histogram -> (float * int) array
(** [(upper_bound, count)] per bucket, the overflow cell reported with
    bound [infinity]. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [[0, 1]]: the upper bound of the bucket
    holding the [q]-th ranked observation — a conservative
    (over-)estimate, resolution-limited by the bucket width.  Values in
    the overflow cell report the last finite bound (so the result is
    always finite, e.g. for JSON output).  Returns [0.] on an empty
    histogram.  @raise Invalid_argument when [q] is outside [[0, 1]]. *)

(** {1 Snapshots} *)

type snapshot = (string * float) list
(** Registry contents at one instant, sorted by name.  Counter values are
    represented as floats; timer names carry a [".seconds"] suffix so the
    two namespaces cannot collide; each histogram [h] contributes
    [h.count], [h.p50] and [h.p99] entries. *)

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: entrywise subtraction (missing entries are 0);
    the per-step delta view used by the anytime evaluator. *)

val find : snapshot -> string -> float
(** 0 when absent. *)

val by_prefix : snapshot -> string -> snapshot
(** Entries whose name starts with the prefix, in snapshot order — e.g.
    [by_prefix snap "robust."] for one subsystem's view. *)

val reset : unit -> unit
(** Zero every registered counter, timer and histogram (the registry
    itself — the set of names — is preserved). *)

val report : Format.formatter -> snapshot -> unit
(** Human-readable table, one [name value] line per entry; zero entries
    are skipped. *)
