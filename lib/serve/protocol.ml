(* Length-prefixed framing and a line-based message codec.

   The framing layer is deliberately dumb: 4-byte big-endian length,
   then the payload, with a hard 1 MiB cap checked *before* any body
   byte is read, so a hostile or faulty peer cannot make the server
   allocate from a corrupted length word.  The payload codec is one tag
   line plus [key=value] lines with [String.escaped] values; unknown
   keys are ignored so the format can grow. *)

let max_frame = 1 lsl 20

type frame_error =
  | Oversized of int
  | Truncated
  | Closed
  | Malformed of string

let frame_error_to_string = function
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds %d" n max_frame
  | Truncated -> "connection closed mid-frame"
  | Closed -> "connection closed"
  | Malformed msg -> "malformed payload: " ^ msg

exception Frame_error of frame_error

(* ------------------------------------------------------------------ *)
(* Framing *)
(* ------------------------------------------------------------------ *)

let write_all fd buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let n = Unix.write_substring fd buf !off !len in
    off := !off + n;
    len := !len - n
  done

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg
      (Printf.sprintf "Protocol.write_frame: %d bytes exceeds max_frame" n);
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int n);
  (* One write for header+payload keeps small frames in one segment. *)
  write_all fd (Bytes.to_string header ^ payload) 0 (n + 4)

(* [at_start] distinguishes a clean close (EOF before any frame byte)
   from a truncation (EOF with a partial frame buffered). *)
let read_exactly fd n ~at_start =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let k = Unix.read fd buf !off (n - !off) in
    if k = 0 then
      raise
        (Frame_error (if at_start && !off = 0 then Closed else Truncated));
    off := !off + k
  done;
  Bytes.unsafe_to_string buf

let read_frame fd =
  let header = read_exactly fd 4 ~at_start:true in
  let n = Int32.to_int (String.get_int32_be header 0) in
  if n < 0 || n > max_frame then raise (Frame_error (Oversized n));
  if n = 0 then "" else read_exactly fd n ~at_start:false

(* ------------------------------------------------------------------ *)
(* Payload codec *)
(* ------------------------------------------------------------------ *)

type request =
  | Query of {
      query : string;
      eps : float option;
      deadline_ms : int option;
      mc_samples : int option;
      seed : int;
    }
  | Update of { delta : string }
  | Health
  | Stats_req
  | Drain

type response =
  | Answer of {
      lo : float;
      hi : float;
      estimate : float;
      provenance : string;
      budget_exhausted : bool;
      cached : bool;
      shed : bool;
    }
  | Update_ok of { relation : string; epoch : int; noop : bool }
  | Overloaded of { retry_after_ms : int; draining : bool }
  | Error_resp of { code : int; msg : string }
  | Health_ok of { draining : bool; inflight : int; uptime_s : float }
  | Stats_resp of (string * float) list

let render tag fields =
  String.concat "\n"
    (tag
    :: List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (String.escaped v))
         fields)

(* Floats round-trip through %h (hex float literals), so an enclosure
   survives the wire bit-for-bit — soundness must not leak in printing. *)
let f_to_s v = Printf.sprintf "%h" v
let f_of_s s = Stdlib.float_of_string s
let b_to_s v = if v then "1" else "0"

let parse_payload s =
  match String.split_on_char '\n' s with
  | [] -> Error "empty payload"
  | tag :: rest ->
    let fields =
      List.filter_map
        (fun line ->
          if line = "" then None
          else
            match String.index_opt line '=' with
            | None -> Some (line, None) (* flagged malformed on lookup *)
            | Some i ->
              Some
                ( String.sub line 0 i,
                  Some (String.sub line (i + 1) (String.length line - i - 1))
                ))
        rest
    in
    Ok (tag, fields)

(* Field accessors; any failure is reported as a decode error, not an
   exception, so a corrupted frame can never crash a connection loop. *)
let lookup fields k =
  match List.assoc_opt k fields with
  | Some (Some raw) -> (
    match Scanf.unescaped raw with
    | v -> Ok v
    | exception _ -> Error (Printf.sprintf "field %s: bad escape" k))
  | Some None -> Error (Printf.sprintf "field %s: missing '='" k)
  | None -> Error (Printf.sprintf "missing field %s" k)

let ( let* ) = Result.bind

let req_str fields k = lookup fields k

let conv name conv_fn k fields =
  let* raw = lookup fields k in
  match conv_fn raw with
  | v -> Ok v
  | exception _ -> Error (Printf.sprintf "field %s: not a %s" k name)

let req_int = conv "number" int_of_string
let req_float = conv "float" f_of_s

let req_bool k fields =
  let* v = req_int k fields in
  Ok (v <> 0)

let opt_field get k fields =
  if List.mem_assoc k fields then
    let* v = get k fields in
    Ok (Some v)
  else Ok None

let encode_request = function
  | Query { query; eps; deadline_ms; mc_samples; seed } ->
    let opt f name v = Option.map (fun v -> (name, f v)) v in
    render "query"
      (List.filter_map Fun.id
         [
           Some ("q", query);
           opt f_to_s "eps" eps;
           opt string_of_int "deadline_ms" deadline_ms;
           opt string_of_int "mc_samples" mc_samples;
           Some ("seed", string_of_int seed);
         ])
  | Update { delta } -> render "update" [ ("d", delta) ]
  | Health -> render "health" []
  | Stats_req -> render "stats" []
  | Drain -> render "drain" []

let decode_request s =
  let* tag, fields = parse_payload s in
  match tag with
  | "query" ->
    let* query = req_str fields "q" in
    let* eps = opt_field req_float "eps" fields in
    let* deadline_ms = opt_field req_int "deadline_ms" fields in
    let* mc_samples = opt_field req_int "mc_samples" fields in
    let* seed = req_int "seed" fields in
    Ok (Query { query; eps; deadline_ms; mc_samples; seed })
  | "update" ->
    let* delta = req_str fields "d" in
    Ok (Update { delta })
  | "health" -> Ok Health
  | "stats" -> Ok Stats_req
  | "drain" -> Ok Drain
  | t -> Error (Printf.sprintf "unknown request tag %S" t)

let encode_response = function
  | Answer { lo; hi; estimate; provenance; budget_exhausted; cached; shed } ->
    render "answer"
      [
        ("lo", f_to_s lo);
        ("hi", f_to_s hi);
        ("estimate", f_to_s estimate);
        ("provenance", provenance);
        ("budget_exhausted", b_to_s budget_exhausted);
        ("cached", b_to_s cached);
        ("shed", b_to_s shed);
      ]
  | Update_ok { relation; epoch; noop } ->
    render "update_ok"
      [
        ("relation", relation);
        ("epoch", string_of_int epoch);
        ("noop", b_to_s noop);
      ]
  | Overloaded { retry_after_ms; draining } ->
    render "overloaded"
      [
        ("retry_after_ms", string_of_int retry_after_ms);
        ("draining", b_to_s draining);
      ]
  | Error_resp { code; msg } ->
    render "error" [ ("code", string_of_int code); ("msg", msg) ]
  | Health_ok { draining; inflight; uptime_s } ->
    render "health_ok"
      [
        ("draining", b_to_s draining);
        ("inflight", string_of_int inflight);
        ("uptime_s", f_to_s uptime_s);
      ]
  | Stats_resp entries ->
    render "stats_ok"
      (List.map (fun (k, v) -> ("s." ^ k, f_to_s v)) entries)

let decode_response s =
  let* tag, fields = parse_payload s in
  match tag with
  | "answer" ->
    let* lo = req_float "lo" fields in
    let* hi = req_float "hi" fields in
    let* estimate = req_float "estimate" fields in
    let* provenance = req_str fields "provenance" in
    let* budget_exhausted = req_bool "budget_exhausted" fields in
    let* cached = req_bool "cached" fields in
    let* shed = req_bool "shed" fields in
    Ok (Answer { lo; hi; estimate; provenance; budget_exhausted; cached; shed })
  | "update_ok" ->
    let* relation = req_str fields "relation" in
    let* epoch = req_int "epoch" fields in
    let* noop = req_bool "noop" fields in
    Ok (Update_ok { relation; epoch; noop })
  | "overloaded" ->
    let* retry_after_ms = req_int "retry_after_ms" fields in
    let* draining = req_bool "draining" fields in
    Ok (Overloaded { retry_after_ms; draining })
  | "error" ->
    let* code = req_int "code" fields in
    let* msg = req_str fields "msg" in
    Ok (Error_resp { code; msg })
  | "health_ok" ->
    let* draining = req_bool "draining" fields in
    let* inflight = req_int "inflight" fields in
    let* uptime_s = req_float "uptime_s" fields in
    Ok (Health_ok { draining; inflight; uptime_s })
  | "stats_ok" ->
    let rec go acc = function
      | [] -> Ok (Stats_resp (List.rev acc))
      | (k, _) :: rest when String.starts_with ~prefix:"s." k ->
        let name = String.sub k 2 (String.length k - 2) in
        let* v = req_float k fields in
        go ((name, v) :: acc) rest
      | (k, _) :: _ -> Error (Printf.sprintf "stats_ok: bad field %s" k)
    in
    go [] fields
  | t -> Error (Printf.sprintf "unknown response tag %S" t)
