(* Sender-side transport-fault injection on a deterministic schedule.

   Mirrors [Faulty_source]: the fault on frame [i] is a pure function of
   (seed, i) via [Prng.substream], so a fault-injected client/server
   session replays bit-identically.  The wrapper owns only an atomic
   frame counter; the sockets stay the caller's. *)

let c_drop = Stats.counter "serve.transport.faults.drop"
let c_delay = Stats.counter "serve.transport.faults.delay"
let c_truncate = Stats.counter "serve.transport.faults.truncate"

type config = {
  seed : int;
  drop : float;
  delay : float;
  delay_s : float;
  truncate : float;
}

let default ~seed =
  { seed; drop = 0.05; delay = 0.10; delay_s = 0.002; truncate = 0.05 }

type fault = Drop | Delay of float | Truncate

let fault_at cfg i =
  let u = Prng.float (Prng.substream (Prng.create ~seed:cfg.seed ()) i) in
  if u < cfg.drop then Some Drop
  else if u < cfg.drop +. cfg.truncate then Some Truncate
  else if u < cfg.drop +. cfg.truncate +. cfg.delay then
    Some (Delay cfg.delay_s)
  else None

type t = { cfg : config; index : int Atomic.t }

let create cfg =
  let check name v =
    if not (v >= 0.0 && v <= 1.0) then
      invalid_arg ("Faulty_transport: " ^ name ^ " must lie in [0, 1]")
  in
  check "drop" cfg.drop;
  check "delay" cfg.delay;
  check "truncate" cfg.truncate;
  if not (cfg.delay_s >= 0.0) then
    invalid_arg "Faulty_transport: delay_s must be nonnegative";
  { cfg; index = Atomic.make 0 }

let frames_sent t = Atomic.get t.index

type sent = Sent | Dropped | Truncated_sent

(* Shut down only the write side: the caller can still read any bytes
   the peer already sent, and the peer observes EOF — the failure mode
   we are simulating. *)
let shutdown_send fd =
  try Unix.shutdown fd Unix.SHUTDOWN_SEND
  with Unix.Unix_error (_, _, _) -> ()

let send ?(sleep = Unix.sleepf) t fd payload =
  let i = Atomic.fetch_and_add t.index 1 in
  match fault_at t.cfg i with
  | Some Drop ->
    Stats.incr c_drop;
    shutdown_send fd;
    Dropped
  | Some Truncate ->
    Stats.incr c_truncate;
    (* A well-formed header declaring the full length, then only part
       of the body: the receiver blocks on the remainder until the
       shutdown delivers EOF, and reports a mid-frame truncation. *)
    let n = String.length payload in
    let header = Bytes.create 4 in
    Bytes.set_int32_be header 0 (Int32.of_int n);
    let cut = n / 2 in
    let partial = Bytes.to_string header ^ String.sub payload 0 cut in
    let off = ref 0 in
    while !off < String.length partial do
      off :=
        !off
        + Unix.write_substring fd partial !off (String.length partial - !off)
    done;
    shutdown_send fd;
    Truncated_sent
  | Some (Delay d) ->
    Stats.incr c_delay;
    sleep d;
    Protocol.write_frame fd payload;
    Sent
  | None ->
    Protocol.write_frame fd payload;
    Sent
