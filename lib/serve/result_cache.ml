(* Bounded FIFO cache of certified answers, keyed by (query, policy),
   reused epsilon-aware: an entry serves any request whose error target
   its enclosure already meets. *)

let c_hit = Stats.counter "serve.cache.hit"
let c_miss = Stats.counter "serve.cache.miss"
let c_evict = Stats.counter "serve.cache.evict"

type key = string * string

type t = {
  capacity : int;
  lock : Mutex.t;
  entries : (key, Robust_eval.answer) Hashtbl.t;
  order : key Queue.t;  (* insertion order; evict from the front *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Result_cache.create: negative capacity";
  {
    capacity;
    lock = Mutex.create ();
    entries = Hashtbl.create (max 16 capacity);
    order = Queue.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~query ~policy ~eps =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries (query, policy) with
      | Some a when Interval.width a.Robust_eval.enclosure <= 2.0 *. eps ->
        Stats.incr c_hit;
        Some a
      | _ ->
        Stats.incr c_miss;
        None)

let store t ~query ~policy answer =
  if t.capacity > 0 then
    locked t (fun () ->
        let key = (query, policy) in
        match Hashtbl.find_opt t.entries key with
        | Some old ->
          if
            Interval.width answer.Robust_eval.enclosure
            < Interval.width old.Robust_eval.enclosure
          then Hashtbl.replace t.entries key answer
        | None ->
          if Hashtbl.length t.entries >= t.capacity then begin
            let oldest = Queue.pop t.order in
            Hashtbl.remove t.entries oldest;
            Stats.incr c_evict
          end;
          Hashtbl.replace t.entries key answer;
          Queue.push key t.order)

let length t = locked t (fun () -> Hashtbl.length t.entries)
