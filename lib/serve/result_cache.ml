(* Bounded FIFO cache of certified answers, keyed by
   (query, policy, epoch), reused epsilon-aware: an entry serves any
   request whose error target its enclosure already meets.

   The epoch component is the serving layer's table-content identity for
   the relations the query touches ("" at boot, "R=3;S=1" after
   updates): without it two textually equal queries before and after a
   streaming update would collide on one key and a stale certified
   enclosure could be served against a table that no longer certifies
   it.  Entries for relations an update did not touch keep their epoch
   component and so survive the update untouched.

   The warm-restart path serialises the whole cache to a small text file
   tagged with a caller-supplied validator string (the store checksum
   plus the completion-policy spec).  [load] is all-or-nothing: a
   validator mismatch, version skew, or any malformed entry rejects the
   entire file — a stale or torn cache must never leak an enclosure that
   the current table does not certify.  Only base-epoch ("") entries are
   restored: epoch counters restart at zero on reboot, so a saved
   post-update epoch string would collide with a different table
   state. *)

let c_hit = Stats.counter "serve.cache.hit"
let c_miss = Stats.counter "serve.cache.miss"
let c_evict = Stats.counter "serve.cache.evict"
let c_warm_saved = Stats.counter "serve.cache.warm.saved"
let c_warm_loaded = Stats.counter "serve.cache.warm.loaded"
let c_warm_reused = Stats.counter "serve.cache.warm.reused"
let c_warm_rejected = Stats.counter "serve.cache.warm.rejected"

type key = string * string * string
type entry = { answer : Robust_eval.answer; warm : bool }

type t = {
  capacity : int;
  lock : Mutex.t;
  entries : (key, entry) Hashtbl.t;
  order : key Queue.t;  (* insertion order; evict from the front *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Result_cache.create: negative capacity";
  {
    capacity;
    lock = Mutex.create ();
    entries = Hashtbl.create (max 16 capacity);
    order = Queue.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~query ~policy ~epoch ~eps =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries (query, policy, epoch) with
      | Some e when Interval.width e.answer.Robust_eval.enclosure <= 2.0 *. eps
        ->
        Stats.incr c_hit;
        if e.warm then Stats.incr c_warm_reused;
        Some e.answer
      | _ ->
        Stats.incr c_miss;
        None)

let width (a : Robust_eval.answer) = Interval.width a.Robust_eval.enclosure

(* Caller holds the lock. *)
let insert_unlocked t key entry =
  match Hashtbl.find_opt t.entries key with
  | Some old ->
    if width entry.answer < width old.answer then
      Hashtbl.replace t.entries key entry
  | None ->
    if Hashtbl.length t.entries >= t.capacity then begin
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.entries oldest;
      Stats.incr c_evict
    end;
    Hashtbl.replace t.entries key entry;
    Queue.push key t.order

let store t ~query ~policy ~epoch answer =
  if t.capacity > 0 then
    locked t (fun () ->
        insert_unlocked t (query, policy, epoch) { answer; warm = false })

let length t = locked t (fun () -> Hashtbl.length t.entries)

(* ------------------------------------------------------------------ *)
(* Warm-restart persistence *)
(* ------------------------------------------------------------------ *)

let file_header = "iowpdb-cache 2"

let save t ~path ~validator =
  let entries =
    locked t (fun () ->
        (* Queue order so a re-load reconstructs the same FIFO order. *)
        Queue.fold
          (fun acc key ->
            match Hashtbl.find_opt t.entries key with
            | Some e -> (key, e.answer) :: acc
            | None -> acc)
          [] t.order
        |> List.rev)
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s\n" file_header;
      Printf.fprintf oc "validator %S\n" validator;
      List.iter
        (fun ((query, policy, epoch), (a : Robust_eval.answer)) ->
          Printf.fprintf oc "entry %S %S %S %h %h %h\n" query policy epoch
            (Interval.lo a.enclosure) (Interval.hi a.enclosure) a.estimate)
        entries);
  Sys.rename tmp path;
  let n = List.length entries in
  Stats.add c_warm_saved n;
  n

let restored_answer ~lo ~hi ~estimate : Robust_eval.answer =
  {
    enclosure = Interval.make lo hi;
    estimate;
    provenance =
      {
        attempts = [];
        stopped = "restored from warm cache (validated against store checksum)";
        budget = "";
      };
  }

let parse_entry line =
  Scanf.sscanf line "entry %S %S %S %h %h %h"
    (fun query policy epoch lo hi estimate ->
      if
        not
          (Float.is_finite lo && Float.is_finite hi && Float.is_finite estimate
         && 0.0 <= lo && lo <= hi && hi <= 1.0)
      then failwith "entry out of range";
      ((query, policy, epoch), restored_answer ~lo ~hi ~estimate))

let load t ~path ~validator =
  if not (Sys.file_exists path) then 0
  else
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          if input_line ic <> file_header then failwith "bad header";
          let v = Scanf.sscanf (input_line ic) "validator %S" Fun.id in
          if not (String.equal v validator) then
            failwith "validator mismatch";
          let entries = ref [] in
          (try
             while true do
               let line = input_line ic in
               if line <> "" then entries := parse_entry line :: !entries
             done
           with End_of_file -> ());
          List.rev !entries)
    with
    | exception _ ->
      Stats.incr c_warm_rejected;
      0
    | entries ->
      if t.capacity = 0 then 0
      else begin
        (* Epoch counters restart at zero on reboot, so only base-epoch
           entries — answers certified against the table as loaded —
           may be revived; post-update epochs would alias fresh
           counters over a different table state. *)
        let entries =
          List.filter (fun ((_, _, epoch), _) -> epoch = "") entries
        in
        locked t (fun () ->
            List.iter
              (fun (key, answer) ->
                insert_unlocked t key { answer; warm = true })
              entries);
        let n = List.length entries in
        Stats.add c_warm_loaded n;
        n
      end
