(** Bounded, epsilon-aware cache of certified answers.

    Keys are [(query, policy, epoch)].  A server instance evaluates
    every query against one truncation discipline, and the policy
    string pins the open-world completion; the {e epoch} string is the
    content identity of the table slice the query reads — [""] at boot,
    and e.g. ["R=3;S=1"] once streaming updates have mutated relations
    [R] and [S] (see {!Server}).  Folding the epoch into the key is
    what makes cached enclosures sound under updates: two textually
    equal queries before and after a mutation get distinct keys, while
    entries whose relations an update did not touch keep serving.

    Reuse is {e epsilon-aware} rather than epsilon-keyed: a stored
    answer satisfies a request for error target [eps] iff its certified
    enclosure has width at most [2 * eps].  A tight cached answer thus
    serves looser requests for free, and a loose one is transparently
    recomputed when a tighter request arrives (and then replaces the
    loose entry).

    Only sound, certified, non-budget-exhausted answers should be stored
    (the server enforces this), so a cache hit never weakens the
    soundness contract.  Bounded capacity with FIFO eviction; all
    operations take an internal mutex (cold path — evaluation dwarfs
    it). *)

type t

val create : capacity:int -> t
(** [capacity = 0] disables caching (every lookup misses).
    @raise Invalid_argument on a negative capacity. *)

val find :
  t ->
  query:string ->
  policy:string ->
  epoch:string ->
  eps:float ->
  Robust_eval.answer option
(** A stored answer whose enclosure width is at most [2 * eps], if any.
    Bumps [serve.cache.hit] / [serve.cache.miss]. *)

val store :
  t ->
  query:string ->
  policy:string ->
  epoch:string ->
  Robust_eval.answer ->
  unit
(** Insert or replace (replacement keeps the narrower enclosure).
    Evicts the oldest entry when full; bumps [serve.cache.evict]. *)

val length : t -> int

(** {1 Warm-restart persistence}

    The cache can be serialised to a small text file tagged with a
    caller-supplied {e validator} string — conventionally the packed
    store's checksum concatenated with the completion-policy spec, so
    that any change to the table bytes or the open-world completion
    invalidates every saved enclosure at once. *)

val save : t -> path:string -> validator:string -> int
(** Serialise every entry (atomically, via write-then-rename) and return
    the number written.  Bumps [serve.cache.warm.saved]. *)

val load : t -> path:string -> validator:string -> int
(** Restore entries saved by {!save}.  All-or-nothing: a missing file
    restores 0 silently; a version or validator mismatch, or any
    malformed entry, rejects the whole file, bumps
    [serve.cache.warm.rejected], and restores 0.  Only base-epoch
    ([""]) entries are revived — per-relation epoch counters restart at
    zero on reboot, so a saved post-update epoch string no longer names
    the table state it certified.  Restored entries count
    into [serve.cache.warm.loaded]; when one later satisfies a {!find},
    [serve.cache.warm.reused] is bumped alongside the ordinary hit. *)
