(** Bounded, epsilon-aware cache of certified answers.

    Keys are [(query, policy)] — a server instance evaluates every query
    against one table and one truncation discipline, and the policy
    string pins the open-world completion, so two textually equal
    queries under the same policy have the same true probability.

    Reuse is {e epsilon-aware} rather than epsilon-keyed: a stored
    answer satisfies a request for error target [eps] iff its certified
    enclosure has width at most [2 * eps].  A tight cached answer thus
    serves looser requests for free, and a loose one is transparently
    recomputed when a tighter request arrives (and then replaces the
    loose entry).

    Only sound, certified, non-budget-exhausted answers should be stored
    (the server enforces this), so a cache hit never weakens the
    soundness contract.  Bounded capacity with FIFO eviction; all
    operations take an internal mutex (cold path — evaluation dwarfs
    it). *)

type t

val create : capacity:int -> t
(** [capacity = 0] disables caching (every lookup misses).
    @raise Invalid_argument on a negative capacity. *)

val find :
  t -> query:string -> policy:string -> eps:float -> Robust_eval.answer option
(** A stored answer whose enclosure width is at most [2 * eps], if any.
    Bumps [serve.cache.hit] / [serve.cache.miss]. *)

val store : t -> query:string -> policy:string -> Robust_eval.answer -> unit
(** Insert or replace (replacement keeps the narrower enclosure).
    Evicts the oldest entry when full; bumps [serve.cache.evict]. *)

val length : t -> int
