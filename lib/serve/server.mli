(** The resident query server: load a table and an open-world policy
    once, then answer framed {!Protocol} requests over a Unix-domain (or
    TCP) socket, multiplexed across OCaml 5 worker domains behind a
    bounded queue with admission control.

    Life of a query request:
    + a connection thread reads and decodes the frame (syntax errors
      answer [Error_resp] immediately);
    + the result cache is consulted — an epsilon-satisfying certified
      answer returns at once with [cached = true];
    + {!Admission.admit} consults queue occupancy and the rolling epoch
      budget: the request is admitted at full service, admitted degraded
      (lifted + reduced Monte-Carlo only), or answered [Overloaded] with
      a retry-after hint — the queue is bounded, so the server {e never}
      builds unbounded backlog;
    + admitted requests carry a {!Budget.child} of the epoch whose wall
      timeout is the client deadline, created at admission, so time
      spent queued burns the deadline too;
    + a worker domain runs the {!Robust_eval} ladder under that budget
      and mails back a sound enclosure — on deadline expiry a
      best-so-far enclosure with [budget_exhausted = true], never a
      hang.

    Graceful drain (SIGTERM via {!run}, or a [Drain] request): stop
    admitting queries, finish in-flight work, answer [Overloaded
    {draining = true}] to new ones, then exit once idle.  [Health] and
    [Stats_req] are answered at every stage. *)

type endpoint = [ `Unix of string | `Tcp of string * int ]

val endpoint_to_string : endpoint -> string

type config = {
  endpoint : endpoint;
  make_source : unit -> Fact_source.t;
      (** fresh fact source per request — sources memoize internally, so
          one instance must never be shared across worker domains *)
  policy_label : string;  (** cache-key component naming the policy *)
  domains : int;  (** worker domains evaluating queries *)
  admission : Admission.config;
  default_eps : float;  (** error target when the request has none *)
  default_samples : int;  (** Monte-Carlo worlds at full service *)
  shed_samples : int;  (** Monte-Carlo worlds when degraded *)
  default_deadline_s : float option;
      (** deadline applied when the request has none; [None] = no
          deadline for such requests *)
  cache_capacity : int;  (** 0 disables the result cache *)
  warm_cache : (string * string) option;
      (** [(path, validator)]: restore the result cache from [path] at
          {!start} (rejected wholesale unless the file's validator
          string matches — see {!Result_cache.load}) and persist it back
          after drain in {!wait}.  The validator conventionally combines
          the packed store's checksum with the completion-policy spec,
          so warm answers never outlive the data they certify.  Only
          base-epoch entries are restored (see {!Result_cache.load}), so
          a cache saved after streaming updates never leaks stale
          enclosures into a fresh boot. *)
  updatable : Ti_table.t option;
      (** a finite materialized table the server owns and mutates under
          [Update] frames; when set it overrides [make_source] as the
          evaluation source.  Each accepted non-no-op update bumps the
          mutated relation's {e epoch} counter; cached answers are keyed
          by the epochs of the relations they read, so an update
          invalidates exactly the cache slice that touched the mutated
          relation while warm entries for untouched relations keep
          serving.  [None] (static or open-world source) answers
          [Update] with an error.  Updates are rejected while
          draining. *)
}

val default_config : (unit -> Fact_source.t) -> endpoint -> config
(** 2 domains, {!Admission.default_config}, eps 0.01, 20k/2k samples,
    1 s default deadline, cache of 256, empty policy label, no warm
    cache, no updatable table. *)

type t

val start : config -> t
(** Bind, listen, spawn the worker domains and the accept thread, and
    return immediately (the in-process form the tests and the bench
    load generator drive).  Calls [make_source] once to validate it.
    @raise Invalid_argument on a bad configuration;
    @raise Unix.Unix_error if the socket cannot be bound. *)

val draining : t -> bool

val request_drain : t -> unit
(** Begin graceful drain.  Async-signal-safe (one atomic store), so
    {!run} installs it directly as the SIGTERM action.  Idempotent. *)

val wait : t -> unit
(** Block until the server has fully drained: accept loop exited, every
    connection closed, worker domains joined, socket file removed. *)

val run : config -> unit
(** [start], install SIGTERM/SIGINT handlers that {!request_drain}, then
    {!wait}; on return the drain has completed and final [serve.*]
    counters have been flushed to stderr.  The CLI [serve] subcommand is
    a thin wrapper over this. *)
