(** Admission control for the resident query service: a rolling
    server-wide budget epoch, a pressure signal derived from it, and the
    pure shed-level decision that turns pressure into action.

    A long-lived server cannot hold one {!Budget.t} forever — budgets
    trip stickily by design — so the controller rotates a fresh {e epoch}
    budget every [window_s] seconds.  The epoch carries the global
    resource caps ([Bdd_nodes] / [Facts] / [Samples]); every admitted
    request gets a {!Budget.child} of the current epoch, so all in-flight
    work in a window draws down one shared allowance, and a window whose
    cap trips starves (soundly: best-so-far enclosures) rather than
    overruns.

    Pressure in [[0, 1]] is the epoch's worst cap utilisation.  The
    {!decide} ladder maps (queue occupancy, pressure) to a shed level:
    full ladder → degraded ladder (skip compilation, reduced sampling) →
    reject with a retry-after hint pointing at the next epoch. *)

type level =
  | Full  (** run the whole {!Robust_eval} ladder *)
  | Degraded
      (** shed load: lifted + reduced Monte-Carlo only — skip the
          compilation rungs entirely *)
  | Reject  (** turn the request away with [Overloaded] *)

val level_to_string : level -> string

type config = {
  queue_bound : int;  (** work-queue capacity; full queue rejects *)
  window_s : float;  (** epoch length, seconds *)
  shed_at : float;  (** pressure (or queue fill) that starts shedding *)
  reject_at : float;  (** pressure that starts rejecting *)
  max_bdd_nodes : int option;  (** per-window global caps *)
  max_facts : int option;
  max_samples : int option;
}

val default_config : config
(** queue 64, 1 s windows, shed at 0.5, reject at 0.9, caps unset. *)

val decide : config -> queue_len:int -> pressure:float -> level
(** The pure admission ladder (no clocks, unit-testable): a full queue
    rejects outright; pressure ≥ [reject_at] rejects; pressure or queue
    fill ≥ [shed_at] degrades; otherwise full service. *)

type t

val create : config -> t
(** @raise Invalid_argument on a non-positive queue bound or window, or
    thresholds outside [0 < shed_at <= reject_at <= 1]. *)

val pressure : t -> float
(** Current epoch's worst cap utilisation in [[0, 1]] (0 with no caps).
    Rotates the epoch first if the window has elapsed. *)

type ticket = { budget : Budget.t; level : level }

val admit : t -> queue_len:int -> deadline_s:float option -> (ticket, float) result
(** Run {!decide} against live pressure.  On admission the ticket's
    budget is a child of the current epoch with the request deadline as
    its wall timeout — created {e now}, so queue wait burns the deadline
    (deadline propagation starts at admission, not at evaluation).
    On rejection, returns [Error retry_after_s]: the time until the
    next epoch, the client's backoff hint. *)

val retry_after : t -> float
(** Seconds until the current epoch rotates. *)
