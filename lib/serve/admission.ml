(* Rolling-epoch admission control.

   Budgets trip stickily (by design: one exhaustion, one cause), so the
   server-wide allowance is an *epoch* budget recreated every window
   rather than a single immortal one.  Requests admitted in a window are
   children of that window's budget; when the window's cap trips,
   in-flight children finish with sound best-so-far enclosures and new
   arrivals see pressure 1.0 and are shed or rejected until rotation. *)

let c_admitted = Stats.counter "serve.admitted"
let c_shed = Stats.counter "serve.shed"
let c_rejected = Stats.counter "serve.rejected"
let c_epochs = Stats.counter "serve.epochs"

type level = Full | Degraded | Reject

let level_to_string = function
  | Full -> "full"
  | Degraded -> "degraded"
  | Reject -> "reject"

type config = {
  queue_bound : int;
  window_s : float;
  shed_at : float;
  reject_at : float;
  max_bdd_nodes : int option;
  max_facts : int option;
  max_samples : int option;
}

let default_config =
  {
    queue_bound = 64;
    window_s = 1.0;
    shed_at = 0.5;
    reject_at = 0.9;
    max_bdd_nodes = None;
    max_facts = None;
    max_samples = None;
  }

let decide cfg ~queue_len ~pressure =
  let queue_fill =
    float_of_int queue_len /. float_of_int (max 1 cfg.queue_bound)
  in
  if queue_len >= cfg.queue_bound then Reject
  else if pressure >= cfg.reject_at then Reject
  else if pressure >= cfg.shed_at || queue_fill >= cfg.shed_at then Degraded
  else Full

type t = {
  cfg : config;
  lock : Mutex.t;
  mutable epoch : Budget.t;
  mutable epoch_start : float;
}

let fresh_epoch cfg =
  Stats.incr c_epochs;
  Budget.create ?max_bdd_nodes:cfg.max_bdd_nodes ?max_facts:cfg.max_facts
    ?max_samples:cfg.max_samples ()

let create cfg =
  if cfg.queue_bound < 1 then
    invalid_arg "Admission.create: queue_bound must be at least 1";
  if not (cfg.window_s > 0.0) then
    invalid_arg "Admission.create: window_s must be positive";
  if not (cfg.shed_at > 0.0 && cfg.shed_at <= cfg.reject_at && cfg.reject_at <= 1.0)
  then invalid_arg "Admission.create: want 0 < shed_at <= reject_at <= 1";
  {
    cfg;
    lock = Mutex.create ();
    epoch = fresh_epoch cfg;
    epoch_start = Unix.gettimeofday ();
  }

(* Callers hold [t.lock]. *)
let rotate_if_due t =
  let now = Unix.gettimeofday () in
  if now -. t.epoch_start >= t.cfg.window_s then begin
    t.epoch <- fresh_epoch t.cfg;
    t.epoch_start <- now
  end

let epoch_pressure epoch =
  (* Worst utilisation across the capped kinds; a tripped epoch is full
     pressure regardless of which constraint fired. *)
  if Budget.exhausted epoch <> None then 1.0
  else
    List.fold_left
      (fun acc kind ->
        match Budget.cap epoch kind with
        | None -> acc
        | Some c when c <= 0 -> 1.0
        | Some c ->
          Float.max acc
            (Float.min 1.0
               (float_of_int (Budget.spent epoch kind) /. float_of_int c)))
      0.0
      [ Budget.Bdd_nodes; Budget.Facts; Budget.Samples ]

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let pressure t =
  locked t (fun () ->
      rotate_if_due t;
      epoch_pressure t.epoch)

let retry_after t =
  locked t (fun () ->
      rotate_if_due t;
      Float.max 0.0 (t.cfg.window_s -. (Unix.gettimeofday () -. t.epoch_start)))

type ticket = { budget : Budget.t; level : level }

let admit t ~queue_len ~deadline_s =
  locked t (fun () ->
      rotate_if_due t;
      let pressure = epoch_pressure t.epoch in
      match decide t.cfg ~queue_len ~pressure with
      | Reject ->
        Stats.incr c_rejected;
        Error
          (Float.max 0.0
             (t.cfg.window_s -. (Unix.gettimeofday () -. t.epoch_start)))
      | level ->
        Stats.incr c_admitted;
        if level = Degraded then Stats.incr c_shed;
        (* Positive-timeout clamp: a deadline that has effectively
           already passed still admits with a minimal wall budget, so
           the reply is a sound Budget_exhausted answer, not a crash. *)
        let timeout =
          Option.map (fun d -> Float.max 1e-4 d) deadline_s
        in
        let budget = Budget.child ?timeout t.epoch in
        Ok { budget; level })
