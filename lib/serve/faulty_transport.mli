(** Deterministic transport-fault injection, the wire-level sibling of
    {!Faulty_source}: wrap a client's frame sends and make some of them
    drop, stall, or arrive truncated, on a schedule that is a pure
    function of [(seed, frame index)].

    Faults are injected on the {e sender} side of a connection, which is
    where every interesting failure is observable end-to-end: a dropped
    frame looks to the server like a clean disconnect, a truncated frame
    like a peer dying mid-message, a delay like a slow network.  The
    receiving side needs no cooperation, so the same server binary is
    exercised as in production.

    Every injected fault is recoverable by the retry layer ({!Client.call}
    reconnects per attempt), and each is counted under
    [serve.transport.faults.*], so a fault-injected session's summary is
    bit-reproducible for a fixed seed. *)

type config = {
  seed : int;
  drop : float;  (** probability a frame is silently not sent *)
  delay : float;  (** probability a frame is delayed before sending *)
  delay_s : float;  (** duration of an injected delay, seconds *)
  truncate : float;  (** probability a frame is cut off mid-payload *)
}

val default : seed:int -> config
(** 5% drops, 10% delays of 2 ms, 5% truncations. *)

type fault = Drop | Delay of float | Truncate

val fault_at : config -> int -> fault option
(** The fault (if any) injected on the [i]-th frame this wrapper sends —
    a pure function of [(config.seed, i)]; at most one fault per frame.
    Exposed so tests can predict a schedule without doing I/O. *)

type t

val create : config -> t
(** A stateful wrapper holding the frame counter (atomic, so concurrent
    client threads share one schedule without skipping indices). *)

val frames_sent : t -> int
(** Frames attempted so far (the next frame gets this index). *)

type sent =
  | Sent  (** the frame went out whole (possibly after a delay) *)
  | Dropped  (** nothing was sent; the write side was shut down *)
  | Truncated_sent
      (** a partial frame was sent, then the write side was shut down —
          the receiver will observe a mid-frame EOF *)

val send : ?sleep:(float -> unit) -> t -> Unix.file_descr -> string -> sent
(** Like {!Protocol.write_frame}, but subject to the schedule.  After
    [Dropped] / [Truncated_sent] the socket's write side has been shut
    down, so the receiver sees EOF and the caller's next read on this
    connection fails — exactly the sequence the retry layer must absorb.
    [sleep] defaults to [Unix.sleepf]. *)
