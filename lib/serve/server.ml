(* The resident query server.

   Thread/domain layout:
   - the accept loop runs in one systhread, polling the listener with a
     short select timeout so it can observe the draining flag promptly;
   - each accepted connection gets its own systhread that reads frames,
     handles admission, and blocks on a per-request mailbox — blocking
     threads release the runtime lock, so many connections coexist on
     the main domain;
   - [cfg.domains] worker domains pop admitted requests from one bounded
     queue and run the Robust_eval ladder; everything they touch is
     either per-request (fact source, budget) or atomic/locked (stats,
     cache), so evaluations proceed in parallel.

   The only signal-context code is [request_drain] = one atomic store;
   all lock-taking reactions to it happen on ordinary threads. *)

let c_conns = Stats.counter "serve.connections"
let c_requests = Stats.counter "serve.requests"
let c_updates = Stats.counter "serve.updates"
let c_update_noops = Stats.counter "serve.updates.noop"
let c_answers = Stats.counter "serve.responses.answer"
let c_overloaded = Stats.counter "serve.responses.overloaded"
let c_errors = Stats.counter "serve.responses.error"
let c_deadline = Stats.counter "serve.deadline_exhausted"
let c_frame_errors = Stats.counter "serve.frame_errors"
let h_latency = Stats.histogram "serve.latency"

type endpoint = [ `Unix of string | `Tcp of string * int ]

let endpoint_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type config = {
  endpoint : endpoint;
  make_source : unit -> Fact_source.t;
  policy_label : string;
  domains : int;
  admission : Admission.config;
  default_eps : float;
  default_samples : int;
  shed_samples : int;
  default_deadline_s : float option;
  cache_capacity : int;
  warm_cache : (string * string) option;
      (* (path, validator): persist the result cache here at drain and
         restore from it at start when the validator matches. *)
  updatable : Ti_table.t option;
      (* a finite materialized table the server owns and mutates under
         Update frames; when set it overrides [make_source].  [None]
         (static or open-world source) rejects updates. *)
}

let default_config make_source endpoint =
  {
    endpoint;
    make_source;
    policy_label = "";
    domains = 2;
    admission = Admission.default_config;
    default_eps = 0.01;
    default_samples = 20_000;
    shed_samples = 2_000;
    default_deadline_s = Some 1.0;
    cache_capacity = 256;
    warm_cache = None;
    updatable = None;
  }

type mailbox = {
  m_lock : Mutex.t;
  m_cond : Condition.t;
  mutable m_result : Protocol.response option;
}

type item = {
  i_query : string;
  i_phi : Fo.t;
  i_eps : float;
  i_samples : int;
  i_seed : int;
  i_ticket : Admission.ticket;
  i_mailbox : mailbox;
}

type t = {
  cfg : config;
  admission : Admission.t;
  cache : Result_cache.t;
  tbl_lock : Mutex.t;
  mutable table : Ti_table.t option;
      (* current state of [cfg.updatable]; Ti_table is persistent, so a
         snapshot taken under [tbl_lock] stays valid while later
         updates swap in new tables *)
  epochs : (string, int) Hashtbl.t;
      (* per-relation update counters, guarded by [tbl_lock] *)
  queue : item Queue.t;
  q_lock : Mutex.t;
  q_cond : Condition.t;
  q_len : int Atomic.t;
  stopping : bool ref;  (* workers may exit; guarded by q_lock *)
  draining : bool Atomic.t;
  inflight : int Atomic.t;  (* queries admitted but not yet answered *)
  active_conns : int Atomic.t;
  listener : Unix.file_descr;
  started_at : float;
  mutable accept_thread : Thread.t option;
  mutable workers : unit Domain.t list;
}

let draining t = Atomic.get t.draining
let request_drain t = Atomic.set t.draining true

(* ------------------------------------------------------------------ *)
(* Bounded queue *)
(* ------------------------------------------------------------------ *)

(* Push re-checks the bound under the lock: admission sampled the length
   without it, and two racing connections must not both squeeze in. *)
let try_push t item =
  Mutex.lock t.q_lock;
  let ok = Queue.length t.queue < t.cfg.admission.Admission.queue_bound in
  if ok then begin
    Queue.push item t.queue;
    Atomic.incr t.q_len;
    Condition.signal t.q_cond
  end;
  Mutex.unlock t.q_lock;
  ok

let pop t =
  Mutex.lock t.q_lock;
  let rec go () =
    if not (Queue.is_empty t.queue) then begin
      let item = Queue.pop t.queue in
      Atomic.decr t.q_len;
      Some item
    end
    else if !(t.stopping) then None
    else begin
      Condition.wait t.q_cond t.q_lock;
      go ()
    end
  in
  let r = go () in
  Mutex.unlock t.q_lock;
  r

let stop_workers t =
  Mutex.lock t.q_lock;
  t.stopping := true;
  Condition.broadcast t.q_cond;
  Mutex.unlock t.q_lock

(* ------------------------------------------------------------------ *)
(* Table epochs *)
(* ------------------------------------------------------------------ *)

(* Caller holds [tbl_lock].  The epoch string of the table slice [phi]
   reads: relation counters in name order, zeros omitted, so the boot
   state is "" for every query — which is also the only epoch the warm
   cache restores. *)
let epoch_unlocked t phi =
  let rels =
    List.sort_uniq String.compare (List.map fst (Fo.relations phi))
  in
  String.concat ";"
    (List.filter_map
       (fun r ->
         match Hashtbl.find_opt t.epochs r with
         | Some n when n > 0 -> Some (Printf.sprintf "%s=%d" r n)
         | _ -> None)
       rels)

let epoch_of t phi =
  match t.cfg.updatable with
  | None -> ""
  | Some _ ->
    Mutex.lock t.tbl_lock;
    let e = epoch_unlocked t phi in
    Mutex.unlock t.tbl_lock;
    e

(* The source a request evaluates against, together with the epoch its
   answer certifies — taken under one lock hold, so an update racing
   the evaluation can never let an answer be cached under an epoch it
   does not certify. *)
let snapshot_source t phi =
  Mutex.lock t.tbl_lock;
  let r =
    match t.table with
    | None -> None
    | Some tbl -> Some (Fact_source.of_ti_table tbl, epoch_unlocked t phi)
  in
  Mutex.unlock t.tbl_lock;
  match r with None -> (t.cfg.make_source (), "") | Some r -> r

(* ------------------------------------------------------------------ *)
(* Worker domains *)
(* ------------------------------------------------------------------ *)

let answer_of t item (a : Robust_eval.answer) ~shed ~cached ~epoch =
  let budget_exhausted =
    Budget.exhausted item.i_ticket.Admission.budget <> None
  in
  if budget_exhausted then Stats.incr c_deadline;
  if
    (not budget_exhausted)
    && Interval.width a.Robust_eval.enclosure <= 2.0 *. item.i_eps
    && not cached
  then
    Result_cache.store t.cache ~query:item.i_query ~policy:t.cfg.policy_label
      ~epoch a;
  Protocol.Answer
    {
      lo = Interval.lo a.Robust_eval.enclosure;
      hi = Interval.hi a.Robust_eval.enclosure;
      estimate = a.Robust_eval.estimate;
      provenance = Robust_eval.provenance_to_string a.Robust_eval.provenance;
      budget_exhausted;
      cached;
      shed;
    }

let evaluate t item =
  let shed = item.i_ticket.Admission.level = Admission.Degraded in
  let rungs =
    if shed then Some [ Robust_eval.Lifted; Robust_eval.Monte_carlo ]
    else None
  in
  match
    let src, epoch = snapshot_source t item.i_phi in
    ( Robust_eval.query ~budget:item.i_ticket.Admission.budget ~eps:item.i_eps
        ~mc_samples:item.i_samples ~seed:item.i_seed ?rungs src item.i_phi,
      epoch )
  with
  | a, epoch -> answer_of t item a ~shed ~cached:false ~epoch
  | exception exn ->
    (* Robust_eval only raises on caller errors, but a worker domain
       must survive anything an exotic source closure throws. *)
    let e = Errors.of_exn ~what:"serve worker" exn in
    Protocol.Error_resp { code = Errors.exit_code e; msg = Errors.to_string e }

let worker_loop t () =
  let rec go () =
    match pop t with
    | None -> ()
    | Some item ->
      let resp = evaluate t item in
      let mb = item.i_mailbox in
      Mutex.lock mb.m_lock;
      mb.m_result <- Some resp;
      Condition.signal mb.m_cond;
      Mutex.unlock mb.m_lock;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Request handling (connection threads) *)
(* ------------------------------------------------------------------ *)

let health_resp t =
  Protocol.Health_ok
    {
      draining = draining t;
      inflight = Atomic.get t.inflight;
      uptime_s = Unix.gettimeofday () -. t.started_at;
    }

let retry_after_ms t =
  int_of_float (Float.ceil (1000.0 *. Admission.retry_after t.admission))

let wait_mailbox mb =
  Mutex.lock mb.m_lock;
  while mb.m_result = None do
    Condition.wait mb.m_cond mb.m_lock
  done;
  let r = Option.get mb.m_result in
  Mutex.unlock mb.m_lock;
  r

let handle_query t ~query ~eps ~deadline_ms ~mc_samples ~seed =
  if draining t then begin
    Stats.incr c_overloaded;
    Protocol.Overloaded { retry_after_ms = retry_after_ms t; draining = true }
  end
  else
    let eps = Option.value eps ~default:t.cfg.default_eps in
    match
      let phi = Fo_parse.parse_exn query in
      (match Fo.free_vars phi with
      | [] -> ()
      | fvs ->
        invalid_arg
          (Printf.sprintf "query has free variables %s"
             (String.concat ", " fvs)));
      if not (eps > 0.0 && eps < 0.5) then
        invalid_arg "eps must lie in (0, 1/2)";
      phi
    with
    | exception exn ->
      Stats.incr c_errors;
      let e = Errors.of_exn ~what:"serve request" exn in
      Protocol.Error_resp
        { code = Errors.exit_code e; msg = Errors.to_string e }
    | phi -> (
      match
        Result_cache.find t.cache ~query ~policy:t.cfg.policy_label
          ~epoch:(epoch_of t phi) ~eps
      with
      | Some a ->
        Stats.incr c_answers;
        Protocol.Answer
          {
            lo = Interval.lo a.Robust_eval.enclosure;
            hi = Interval.hi a.Robust_eval.enclosure;
            estimate = a.Robust_eval.estimate;
            provenance =
              Robust_eval.provenance_to_string a.Robust_eval.provenance;
            budget_exhausted = false;
            cached = true;
            shed = false;
          }
      | None -> (
        let deadline_s =
          match deadline_ms with
          | Some ms -> Some (float_of_int ms /. 1000.0)
          | None -> t.cfg.default_deadline_s
        in
        match
          Admission.admit t.admission ~queue_len:(Atomic.get t.q_len)
            ~deadline_s
        with
        | Error retry_after ->
          Stats.incr c_overloaded;
          Protocol.Overloaded
            {
              retry_after_ms =
                int_of_float (Float.ceil (1000.0 *. retry_after));
              draining = false;
            }
        | Ok ticket ->
          let samples =
            match (ticket.Admission.level, mc_samples) with
            | Admission.Degraded, Some n -> min n t.cfg.shed_samples
            | Admission.Degraded, None -> t.cfg.shed_samples
            | _, Some n -> n
            | _, None -> t.cfg.default_samples
          in
          let item =
            {
              i_query = query;
              i_phi = phi;
              i_eps = eps;
              i_samples = samples;
              i_seed = seed;
              i_ticket = ticket;
              i_mailbox =
                {
                  m_lock = Mutex.create ();
                  m_cond = Condition.create ();
                  m_result = None;
                };
            }
          in
          Atomic.incr t.inflight;
          let resp =
            if try_push t item then wait_mailbox item.i_mailbox
            else begin
              (* Lost the race for the last queue slot. *)
              Stats.incr c_overloaded;
              Protocol.Overloaded
                { retry_after_ms = retry_after_ms t; draining = false }
            end
          in
          Atomic.decr t.inflight;
          (match resp with
          | Protocol.Answer _ -> Stats.incr c_answers
          | Protocol.Error_resp _ -> Stats.incr c_errors
          | _ -> ());
          resp))

(* Streaming updates mutate the owned table under [tbl_lock] and bump
   the mutated relation's epoch.  In-flight evaluations keep the
   snapshot they took (Ti_table is persistent) and cache their answer
   under the epoch of that snapshot; future requests see the new epoch,
   miss, and recompute — while cached answers for relations this update
   did not touch keep their keys and keep serving. *)
let handle_update t ~delta =
  if draining t then begin
    Stats.incr c_overloaded;
    Protocol.Overloaded { retry_after_ms = retry_after_ms t; draining = true }
  end
  else begin
    Stats.incr c_updates;
    match Delta_eval.delta_of_string delta with
    | exception exn ->
      Stats.incr c_errors;
      let e = Errors.of_exn ~what:"serve update" exn in
      Protocol.Error_resp
        { code = Errors.exit_code e; msg = Errors.to_string e }
    | d -> (
      Mutex.lock t.tbl_lock;
      let resp =
        match t.table with
        | None ->
          Protocol.Error_resp
            {
              code = 2;
              msg =
                "updates need a finite materialized table (server was \
                 started on a static or open-world source)";
            }
        | Some tbl -> (
          let relation = Fact.rel (Delta_eval.delta_fact d) in
          let noop =
            Rational.equal
              (Ti_table.prob tbl (Delta_eval.delta_fact d))
              (Delta_eval.delta_target d)
          in
          match if noop then tbl else Delta_eval.apply_table tbl d with
          | exception exn ->
            let e = Errors.of_exn ~what:"serve update" exn in
            Protocol.Error_resp
              { code = Errors.exit_code e; msg = Errors.to_string e }
          | tbl' ->
            if not noop then begin
              t.table <- Some tbl';
              Hashtbl.replace t.epochs relation
                (1
                + Option.value ~default:0 (Hashtbl.find_opt t.epochs relation))
            end
            else Stats.incr c_update_noops;
            Protocol.Update_ok
              {
                relation;
                epoch =
                  Option.value ~default:0 (Hashtbl.find_opt t.epochs relation);
                noop;
              })
      in
      Mutex.unlock t.tbl_lock;
      (match resp with
      | Protocol.Error_resp _ -> Stats.incr c_errors
      | _ -> ());
      resp)
  end

let handle_request t = function
  | Protocol.Health -> health_resp t
  | Protocol.Drain ->
    request_drain t;
    health_resp t
  | Protocol.Stats_req ->
    Protocol.Stats_resp (Stats.by_prefix (Stats.snapshot ()) "serve.")
  | Protocol.Update { delta } -> handle_update t ~delta
  | Protocol.Query { query; eps; deadline_ms; mc_samples; seed } ->
    Stats.incr c_requests;
    let t0 = Unix.gettimeofday () in
    let resp = handle_query t ~query ~eps ~deadline_ms ~mc_samples ~seed in
    Stats.observe h_latency (Unix.gettimeofday () -. t0);
    resp

let handle_conn t fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Atomic.decr t.active_conns)
  @@ fun () ->
  let send resp =
    Protocol.write_frame fd (Protocol.encode_response resp)
  in
  let rec loop () =
    match Protocol.read_frame fd with
    | exception Protocol.Frame_error Protocol.Closed -> ()
    | exception Protocol.Frame_error Protocol.Truncated ->
      Stats.incr c_frame_errors
    | exception Protocol.Frame_error (Protocol.Oversized _ as fe) ->
      Stats.incr c_frame_errors;
      send
        (Protocol.Error_resp
           { code = 2; msg = Protocol.frame_error_to_string fe })
    | payload -> (
      match Protocol.decode_request payload with
      | Error msg ->
        Stats.incr c_frame_errors;
        send (Protocol.Error_resp { code = 2; msg });
        loop ()
      | Ok req ->
        send (handle_request t req);
        loop ())
  in
  (* A peer may vanish mid-conversation (the fault injector makes sure
     of it): any transport error just ends this connection. *)
  try loop ()
  with
  | Unix.Unix_error (_, _, _) | Protocol.Frame_error _ | Sys_error _ ->
    Stats.incr c_frame_errors

(* ------------------------------------------------------------------ *)
(* Listener and lifecycle *)
(* ------------------------------------------------------------------ *)

let bind_listener = function
  | `Unix path ->
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> invalid_arg ("cannot resolve host " ^ host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let idle t =
  Atomic.get t.inflight = 0
  && Atomic.get t.active_conns = 0
  && Atomic.get t.q_len = 0

let accept_loop t () =
  let rec go () =
    if draining t && idle t then ()
    else begin
      (match Unix.select [ t.listener ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept t.listener with
        | fd, _ ->
          Stats.incr c_conns;
          Atomic.incr t.active_conns;
          ignore (Thread.create (handle_conn t) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
      |> ignore;
      go ()
    end
  in
  (try go () with Unix.Unix_error (_, _, _) -> ());
  (try Unix.close t.listener with Unix.Unix_error (_, _, _) -> ());
  (match t.cfg.endpoint with
  | `Unix path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | `Tcp _ -> ());
  stop_workers t

let start cfg =
  if cfg.domains < 1 then invalid_arg "Server.start: domains must be >= 1";
  if cfg.shed_samples < 1 || cfg.default_samples < 1 then
    invalid_arg "Server.start: sample counts must be positive";
  if not (cfg.default_eps > 0.0 && cfg.default_eps < 0.5) then
    invalid_arg "Server.start: default_eps must lie in (0, 1/2)";
  ignore (cfg.make_source () : Fact_source.t);
  let t =
    {
      cfg;
      admission = Admission.create cfg.admission;
      cache = Result_cache.create ~capacity:cfg.cache_capacity;
      tbl_lock = Mutex.create ();
      table = cfg.updatable;
      epochs = Hashtbl.create 8;
      queue = Queue.create ();
      q_lock = Mutex.create ();
      q_cond = Condition.create ();
      q_len = Atomic.make 0;
      stopping = ref false;
      draining = Atomic.make false;
      inflight = Atomic.make 0;
      active_conns = Atomic.make 0;
      listener = bind_listener cfg.endpoint;
      started_at = Unix.gettimeofday ();
      accept_thread = None;
      workers = [];
    }
  in
  (match cfg.warm_cache with
  | None -> ()
  | Some (path, validator) ->
    let n = Result_cache.load t.cache ~path ~validator in
    if n > 0 then
      Printf.eprintf "iowpdb serve: warm cache: restored %d entries\n%!" n);
  t.workers <- List.init cfg.domains (fun _ -> Domain.spawn (worker_loop t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let wait t =
  Option.iter Thread.join t.accept_thread;
  List.iter Domain.join t.workers;
  match t.cfg.warm_cache with
  | None -> ()
  | Some (path, validator) -> (
    (* Best-effort: a full disk must not turn a clean drain into a
       crash — the next boot simply starts cold. *)
    try ignore (Result_cache.save t.cache ~path ~validator : int)
    with Sys_error _ | Unix.Unix_error (_, _, _) -> ())

let run cfg =
  (* Install the handlers BEFORE binding the socket: a supervisor that
     TERMs the instant the socket file appears must still get a graceful
     drain, and [start] does real work (source validation, domain
     spawns) after the bind.  Until [start] returns the handler only
     records the signal; it is replayed as a drain right after. *)
  let target = Atomic.make None and pending = Atomic.make false in
  let on_signal =
    Sys.Signal_handle
      (fun _ ->
        match Atomic.get target with
        | Some t -> request_drain t
        | None -> Atomic.set pending true)
  in
  Sys.set_signal Sys.sigterm on_signal;
  Sys.set_signal Sys.sigint on_signal;
  let t = start cfg in
  Atomic.set target (Some t);
  if Atomic.get pending then request_drain t;
  Printf.eprintf "iowpdb serve: listening on %s (%d domains, queue %d)\n%!"
    (endpoint_to_string cfg.endpoint)
    cfg.domains cfg.admission.Admission.queue_bound;
  wait t;
  prerr_endline "iowpdb serve: drained; final counters:";
  Stats.report Format.err_formatter
    (Stats.by_prefix (Stats.snapshot ()) "serve.");
  Format.pp_print_flush Format.err_formatter ()
