(** Wire protocol of the resident query service: length-prefixed frames
    carrying a small line-based request/response language.

    Framing: each message is a 4-byte big-endian payload length followed
    by the payload, capped at {!max_frame} — a peer can never make the
    server buffer an unbounded message.  Payloads are one tag line
    followed by [key=value] lines; values are [String.escaped], so
    queries containing newlines or arbitrary bytes round-trip.

    Decoding is total: malformed frames and payloads come back as
    {!frame_error} / [Error _], never as exceptions escaping to the
    accept loop.  The codec has no dependency on the server — the bench
    harness and the fault injector reuse it directly. *)

val max_frame : int
(** Maximum payload size in bytes (1 MiB). *)

type frame_error =
  | Oversized of int  (** declared length exceeded {!max_frame} *)
  | Truncated  (** EOF in the middle of a frame *)
  | Closed  (** clean EOF before any byte of a frame *)
  | Malformed of string  (** payload did not parse *)

val frame_error_to_string : frame_error -> string

exception Frame_error of frame_error

val write_frame : Unix.file_descr -> string -> unit
(** Write one length-prefixed frame.  @raise Invalid_argument if the
    payload exceeds {!max_frame}; @raise Unix.Unix_error on transport
    failure (classify with {!Errors.of_exn} at the call site). *)

val read_frame : Unix.file_descr -> string
(** Read one frame's payload.  @raise Frame_error on EOF, truncation or
    an oversized declared length; @raise Unix.Unix_error on transport
    failure. *)

type request =
  | Query of {
      query : string;  (** first-order sentence, [Fo_parse] syntax *)
      eps : float option;  (** additive error target; server default *)
      deadline_ms : int option;
          (** wall deadline for this request, admission-to-response;
              flows into the request's {!Budget.t} *)
      mc_samples : int option;  (** Monte-Carlo worlds; server default *)
      seed : int;  (** evaluation seed (reproducibility) *)
    }
  | Update of { delta : string }
      (** streaming update against the server's materialized table, in
          {!Delta_eval.delta_to_string} syntax (e.g. ["insert R(a) 1/2"],
          ["delete R(a)"]); accepted only by servers started on a finite
          updatable table, rejected while draining *)
  | Health  (** liveness probe; answered even while draining *)
  | Stats_req  (** server counters and latency quantiles *)
  | Drain
      (** begin graceful drain: finish in-flight work, reject new
          queries, then shut down — the protocol twin of SIGTERM *)

type response =
  | Answer of {
      lo : float;
      hi : float;  (** sound enclosure of the true probability *)
      estimate : float;
      provenance : string;  (** rendered {!Robust_eval.provenance} *)
      budget_exhausted : bool;
          (** the request budget tripped (deadline or a global cap):
              the enclosure is the best-so-far sound result *)
      cached : bool;  (** served from the result cache *)
      shed : bool;  (** evaluated on the degraded (shed) ladder *)
    }
  | Update_ok of {
      relation : string;  (** the relation the delta mutated *)
      epoch : int;  (** that relation's epoch counter after the delta *)
      noop : bool;
          (** the table already satisfied the delta; no epoch bump, so
              cached answers over the relation keep serving *)
    }
  | Overloaded of {
      retry_after_ms : int;  (** suggested client backoff *)
      draining : bool;  (** rejection due to shutdown, not load *)
    }
  | Error_resp of { code : int; msg : string }
      (** request-level failure; [code] follows {!Errors.exit_code} *)
  | Health_ok of { draining : bool; inflight : int; uptime_s : float }
  | Stats_resp of (string * float) list

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
