(* Client library: persistent connections plus a retrying one-shot call.

   Every wire-level failure is normalized to [Errors.Transport] carrying
   the endpoint, so the retry layer can recognize it as transient and
   callers get one uniform error taxonomy whether the fault was a
   refused connect, an injected drop, or a truncated response. *)

type conn = { fd : Unix.file_descr; endpoint : string }

let transport_fail endpoint msg =
  Errors.raise_error (Errors.Transport { endpoint; msg })

let sockaddr_of = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> invalid_arg ("cannot resolve host " ^ host))
    in
    Unix.ADDR_INET (addr, port)

let connect endpoint =
  let name = Server.endpoint_to_string endpoint in
  let domain =
    match endpoint with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd (sockaddr_of endpoint) with
  | () -> { fd; endpoint = name }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
    transport_fail name ("connect: " ^ Unix.error_message e)

let close conn =
  try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ()

let request ?transport ?(sleep = Unix.sleepf) conn req =
  let payload = Protocol.encode_request req in
  (match transport with
  | None -> (
    try Protocol.write_frame conn.fd payload
    with Unix.Unix_error (e, _, _) ->
      transport_fail conn.endpoint ("send: " ^ Unix.error_message e))
  | Some ft -> (
    match Faulty_transport.send ~sleep ft conn.fd payload with
    | Faulty_transport.Sent -> ()
    | Faulty_transport.Dropped ->
      transport_fail conn.endpoint "send: request dropped (injected fault)"
    | Faulty_transport.Truncated_sent ->
      transport_fail conn.endpoint "send: request truncated (injected fault)"
    | exception Unix.Unix_error (e, _, _) ->
      transport_fail conn.endpoint ("send: " ^ Unix.error_message e)));
  match Protocol.read_frame conn.fd with
  | exception Protocol.Frame_error fe ->
    transport_fail conn.endpoint
      ("receive: " ^ Protocol.frame_error_to_string fe)
  | exception Unix.Unix_error (e, _, _) ->
    transport_fail conn.endpoint ("receive: " ^ Unix.error_message e)
  | payload -> (
    match Protocol.decode_response payload with
    | Ok resp -> resp
    | Error msg -> transport_fail conn.endpoint ("receive: " ^ msg))

let call ?policy ?(sleep = Unix.sleepf) ?budget ?(seed = 0) ?transport
    endpoint req =
  let retryable = function Errors.Transport _ -> true | _ -> false in
  Retry.run ?policy ~sleep ?budget ~retryable ~what:"serve client" ~seed
  @@ fun () ->
  let conn = connect endpoint in
  Fun.protect
    ~finally:(fun () -> close conn)
    (fun () -> request ?transport ~sleep conn req)
