(** Client side of the resident query service.

    Two layers: a persistent {!conn} for callers that manage their own
    connection (the bench load generator), and the one-shot {!call}
    that opens a fresh connection per attempt and wraps the whole
    exchange in {!Retry.run} — the shape that makes injected transport
    faults ({!Faulty_transport}) recoverable, because a dead connection
    is simply abandoned and the next attempt reconnects.

    All transport-level failures (refused connection, mid-frame EOF,
    undecodable response) surface as {!Errors.Transport}, which the
    retry layer treats as transient.  Server-level outcomes — including
    [Overloaded] — are returned as values: whether to back off on an
    overload hint is the caller's policy, not the transport's. *)

type conn

val connect : Server.endpoint -> conn
(** @raise Errors.Error ([Transport _]) when the endpoint is
    unreachable. *)

val close : conn -> unit

val request :
  ?transport:Faulty_transport.t ->
  ?sleep:(float -> unit) ->
  conn ->
  Protocol.request ->
  Protocol.response
(** One request/response exchange on an open connection, optionally
    through the fault injector ([sleep] feeds its injected delays).
    @raise Errors.Error ([Transport _]) on any wire failure — after
    which the connection must be considered dead. *)

val call :
  ?policy:Retry.policy ->
  ?sleep:(float -> unit) ->
  ?budget:Budget.t ->
  ?seed:int ->
  ?transport:Faulty_transport.t ->
  Server.endpoint ->
  Protocol.request ->
  (Protocol.response, Errors.t) result
(** Connect, exchange, close — retried under [policy] (default
    {!Retry.default_policy}) on [Transport] errors only, with backoff
    sleeps clamped to [budget]'s remaining time, so a deadline-bounded
    caller never oversleeps its own deadline.  [seed] fixes the jitter
    schedule (default 0). *)
