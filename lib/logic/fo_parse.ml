(* Recursive-descent parser for the concrete FO syntax documented in the
   interface.  Hand-rolled lexer; positions are tracked for error
   messages. *)

type token =
  | T_lparen
  | T_rparen
  | T_comma
  | T_dot
  | T_bang
  | T_amp
  | T_bar
  | T_arrow
  | T_eq
  | T_neq
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_exists
  | T_forall
  | T_true
  | T_false
  | T_hash_t
  | T_hash_f
  | T_lident of string
  | T_uident of string
  | T_int of int
  | T_string of string
  | T_eof

let token_to_string = function
  | T_lparen -> "(" | T_rparen -> ")" | T_comma -> "," | T_dot -> "."
  | T_bang -> "!" | T_amp -> "&" | T_bar -> "|" | T_arrow -> "->"
  | T_eq -> "=" | T_neq -> "!=" | T_lt -> "<" | T_le -> "<="
  | T_gt -> ">" | T_ge -> ">=" | T_exists -> "exists" | T_forall -> "forall"
  | T_true -> "true" | T_false -> "false" | T_hash_t -> "#t" | T_hash_f -> "#f"
  | T_lident s | T_uident s -> s
  | T_int n -> string_of_int n
  | T_string s -> Printf.sprintf "%S" s
  | T_eof -> "<eof>"

exception Err of string

let lex input =
  let n = String.length input in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  while !i < n do
    let start = !i in
    let emit t = toks := (t, start) :: !toks in
    let fail msg =
      raise (Err (Printf.sprintf "%s at character %d" msg start))
    in
    let c = input.[!i] in
    (match c with
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | '(' -> emit T_lparen; incr i
     | ')' -> emit T_rparen; incr i
     | ',' -> emit T_comma; incr i
     | '.' -> emit T_dot; incr i
     | '&' -> emit T_amp; incr i
     | '|' -> emit T_bar; incr i
     | '=' -> emit T_eq; incr i
     | '<' ->
       if !i + 1 < n && input.[!i + 1] = '=' then begin emit T_le; i := !i + 2 end
       else begin emit T_lt; incr i end
     | '>' ->
       if !i + 1 < n && input.[!i + 1] = '=' then begin emit T_ge; i := !i + 2 end
       else begin emit T_gt; incr i end
     | '!' ->
       if !i + 1 < n && input.[!i + 1] = '=' then begin emit T_neq; i := !i + 2 end
       else begin emit T_bang; incr i end
     | '-' ->
       if !i + 1 < n && input.[!i + 1] = '>' then begin emit T_arrow; i := !i + 2 end
       else begin
         (* negative integer literal *)
         let j = ref (!i + 1) in
         while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do incr j done;
         if !j = !i + 1 then fail "stray '-'";
         emit (T_int (int_of_string (String.sub input !i (!j - !i))));
         i := !j
       end
     | '#' ->
       if !i + 1 < n && input.[!i + 1] = 't' then begin emit T_hash_t; i := !i + 2 end
       else if !i + 1 < n && input.[!i + 1] = 'f' then begin emit T_hash_f; i := !i + 2 end
       else fail "expected #t or #f"
     | '"' ->
       let buf = Buffer.create 8 in
       let j = ref (!i + 1) in
       let closed = ref false in
       while (not !closed) && !j < n do
         (match input.[!j] with
          | '"' -> closed := true
          | '\\' when !j + 1 < n ->
            incr j;
            Buffer.add_char buf input.[!j]
          | c -> Buffer.add_char buf c);
         incr j
       done;
       if not !closed then fail "unterminated string literal";
       emit (T_string (Buffer.contents buf));
       i := !j
     | '0' .. '9' ->
       let j = ref !i in
       while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do incr j done;
       emit (T_int (int_of_string (String.sub input !i (!j - !i))));
       i := !j
     | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
       let j = ref !i in
       while !j < n && is_ident_char input.[!j] do incr j done;
       let s = String.sub input !i (!j - !i) in
       i := !j;
       (match s with
        | "exists" -> emit T_exists
        | "forall" -> emit T_forall
        | "true" -> emit T_true
        | "false" -> emit T_false
        | _ ->
          if s.[0] >= 'A' && s.[0] <= 'Z' then emit (T_uident s)
          else emit (T_lident s))
     | c -> fail (Printf.sprintf "unexpected character %C" c))
  done;
  toks := (T_eof, n) :: !toks;
  Array.of_list (List.rev !toks)

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st msg =
  raise (Err (Printf.sprintf "%s at character %d" msg (snd st.toks.(st.pos))))

let expect st t =
  if peek st = t then advance st
  else
    err st
      (Printf.sprintf "expected %s but found %s" (token_to_string t)
         (token_to_string (peek st)))

let parse_term st =
  match peek st with
  | T_lident x -> advance st; Fo.Var x
  | T_int n -> advance st; Fo.Const (Value.Int n)
  | T_string s -> advance st; Fo.Const (Value.Str s)
  | T_hash_t -> advance st; Fo.Const (Value.Bool true)
  | T_hash_f -> advance st; Fo.Const (Value.Bool false)
  | t -> err st (Printf.sprintf "expected a term, found %s" (token_to_string t))

(* Precedence climbing: implies < or < and < not/atom. *)
let rec parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | T_arrow ->
    advance st;
    Fo.Implies (lhs, parse_implies st)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec loop acc =
    match peek st with
    | T_bar ->
      advance st;
      loop (Fo.Or (acc, parse_and st))
    | _ -> acc
  in
  loop lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec loop acc =
    match peek st with
    | T_amp ->
      advance st;
      loop (Fo.And (acc, parse_unary st))
    | _ -> acc
  in
  loop lhs

and parse_unary st =
  match peek st with
  | T_bang ->
    advance st;
    Fo.Not (parse_unary st)
  | T_exists | T_forall ->
    let forall = peek st = T_forall in
    advance st;
    let rec vars acc =
      match peek st with
      | T_lident x -> advance st; vars (x :: acc)
      | T_dot ->
        advance st;
        if acc = [] then err st "quantifier with no variables";
        List.rev acc
      | t ->
        err st
          (Printf.sprintf "expected variable or '.', found %s"
             (token_to_string t))
    in
    let xs = vars [] in
    let body = parse_implies st in
    if forall then Fo.forall_many xs body else Fo.exists_many xs body
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | T_true -> advance st; Fo.True
  | T_false -> advance st; Fo.False
  | T_lparen ->
    advance st;
    let f = parse_implies st in
    expect st T_rparen;
    f
  | T_uident r ->
    advance st;
    expect st T_lparen;
    if peek st = T_rparen then begin
      advance st;
      Fo.Atom (r, [])
    end
    else begin
      let rec args acc =
        let t = parse_term st in
        match peek st with
        | T_comma -> advance st; args (t :: acc)
        | T_rparen -> advance st; List.rev (t :: acc)
        | tok ->
          err st
            (Printf.sprintf "expected ',' or ')', found %s"
               (token_to_string tok))
      in
      Fo.Atom (r, args [])
    end
  | T_lident _ | T_int _ | T_string _ | T_hash_t | T_hash_f ->
    (* equality or inequality between terms *)
    let a = parse_term st in
    (match peek st with
     | T_eq -> advance st; Fo.Eq (a, parse_term st)
     | T_neq -> advance st; Fo.Not (Fo.Eq (a, parse_term st))
     | T_lt -> advance st; Fo.Cmp (Fo.Lt, a, parse_term st)
     | T_le -> advance st; Fo.Cmp (Fo.Le, a, parse_term st)
     | T_gt -> advance st; Fo.Cmp (Fo.Gt, a, parse_term st)
     | T_ge -> advance st; Fo.Cmp (Fo.Ge, a, parse_term st)
     | t ->
       err st
         (Printf.sprintf "expected a comparison operator, found %s"
            (token_to_string t)))
  | t -> err st (Printf.sprintf "unexpected token %s" (token_to_string t))

let parse input =
  match
    let st = { toks = lex input; pos = 0 } in
    let f = parse_implies st in
    expect st T_eof;
    f
  with
  | f -> Ok f
  | exception Err msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok f -> f
  | Error msg -> invalid_arg (Printf.sprintf "Fo_parse: %s in %S" msg input)
