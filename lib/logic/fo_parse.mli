(** A small concrete syntax for first-order queries.

    Grammar (precedence low to high: [->], [|], [&], [!], quantifiers bind
    to the end of the formula):

    {v
    phi  ::= 'exists' x1 ... xk '.' phi
           | 'forall' x1 ... xk '.' phi
           | phi '->' phi | phi '|' phi | phi '&' phi
           | '!' phi | '(' phi ')'
           | Name '(' term (',' term)* ')' | Name '(' ')'
           | term '=' term | term '!=' term
           | term ('<' | '<=' | '>' | '>=') term
           | 'true' | 'false'
    term ::= variable            (identifier starting lowercase)
           | integer literal     (e.g. 42, -7)
           | string literal      (e.g. "abc")
           | '#t' | '#f'         (boolean constants)
    v}

    Relation names start with an uppercase letter. *)

val parse : string -> (Fo.t, string) result
(** [Error] messages cite the character offset of the offending token,
    e.g. ["unexpected token | at character 7"]. *)

val parse_exn : string -> Fo.t
(** @raise Invalid_argument with a message pointing at the offending
    token. *)
