type term =
  | Var of string
  | Const of Value.t

type cmp_op = Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Cmp of cmp_op * term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

let atom r ts = Atom (r, ts)
let v x = Var x
let c value = Const value
let cint n = Const (Value.Int n)
let cstr s = Const (Value.Str s)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let exists_many xs f = List.fold_right (fun x acc -> Exists (x, acc)) xs f
let forall_many xs f = List.fold_right (fun x acc -> Forall (x, acc)) xs f

module SSet = Set.Make (String)
module VSet = Set.Make (Value)

let term_vars = function Var x -> SSet.singleton x | Const _ -> SSet.empty

let rec fv = function
  | True | False -> SSet.empty
  | Atom (_, ts) ->
    List.fold_left (fun acc t -> SSet.union acc (term_vars t)) SSet.empty ts
  | Eq (a, b) | Cmp (_, a, b) -> SSet.union (term_vars a) (term_vars b)
  | Not f -> fv f
  | And (f, g) | Or (f, g) | Implies (f, g) -> SSet.union (fv f) (fv g)
  | Exists (x, f) | Forall (x, f) -> SSet.remove x (fv f)

let free_vars f = SSet.elements (fv f)
let is_sentence f = SSet.is_empty (fv f)

let rec quantifier_rank = function
  | True | False | Atom _ | Eq _ | Cmp _ -> 0
  | Not f -> quantifier_rank f
  | And (f, g) | Or (f, g) | Implies (f, g) ->
    Stdlib.max (quantifier_rank f) (quantifier_rank g)
  | Exists (_, f) | Forall (_, f) -> 1 + quantifier_rank f

let term_consts = function Var _ -> VSet.empty | Const v -> VSet.singleton v

let rec consts = function
  | True | False -> VSet.empty
  | Atom (_, ts) ->
    List.fold_left (fun acc t -> VSet.union acc (term_consts t)) VSet.empty ts
  | Eq (a, b) | Cmp (_, a, b) -> VSet.union (term_consts a) (term_consts b)
  | Not f -> consts f
  | And (f, g) | Or (f, g) | Implies (f, g) -> VSet.union (consts f) (consts g)
  | Exists (_, f) | Forall (_, f) -> consts f

let constants f = VSet.elements (consts f)

module SMap = Map.Make (String)

let relations f =
  let rec go acc = function
    | True | False | Eq _ | Cmp _ -> acc
    | Atom (r, ts) ->
      let a = List.length ts in
      (match SMap.find_opt r acc with
       | Some a' when a' <> a ->
         invalid_arg
           (Printf.sprintf "Fo.relations: %s used with arities %d and %d" r a' a)
       | _ -> SMap.add r a acc)
    | Not f -> go acc f
    | And (f, g) | Or (f, g) | Implies (f, g) -> go (go acc f) g
    | Exists (_, f) | Forall (_, f) -> go acc f
  in
  SMap.bindings (go SMap.empty f)

let substitute bindings f =
  let subst_term env = function
    | Var x as t -> (
        match List.assoc_opt x env with Some v -> Const v | None -> t)
    | Const _ as t -> t
  in
  let rec go env = function
    | (True | False) as f -> f
    | Atom (r, ts) -> Atom (r, List.map (subst_term env) ts)
    | Eq (a, b) -> Eq (subst_term env a, subst_term env b)
    | Cmp (op, a, b) -> Cmp (op, subst_term env a, subst_term env b)
    | Not f -> Not (go env f)
    | And (f, g) -> And (go env f, go env g)
    | Or (f, g) -> Or (go env f, go env g)
    | Implies (f, g) -> Implies (go env f, go env g)
    | Exists (x, f) -> Exists (x, go (List.remove_assoc x env) f)
    | Forall (x, f) -> Forall (x, go (List.remove_assoc x env) f)
  in
  go bindings f

let all_vars f =
  let rec go acc = function
    | True | False -> acc
    | Atom (_, ts) ->
      List.fold_left (fun acc t -> SSet.union acc (term_vars t)) acc ts
    | Eq (a, b) | Cmp (_, a, b) ->
      SSet.union acc (SSet.union (term_vars a) (term_vars b))
    | Not f -> go acc f
    | And (f, g) | Or (f, g) | Implies (f, g) -> go (go acc f) g
    | Exists (x, f) | Forall (x, f) -> go (SSet.add x acc) f
  in
  go SSet.empty f

let rename_bound rename f =
  let names = all_vars f in
  (* [taken] records bound-name images already committed; a second
     distinct source mapping to the same image could capture across
     nested scopes, so it is rejected along with images that collide
     with any name already occurring in the formula. *)
  let taken = Hashtbl.create 8 in
  let fresh x =
    let x' = rename x in
    if x' <> x then begin
      if SSet.mem x' names then
        invalid_arg
          (Printf.sprintf
             "Fo.rename_bound: image %s of %s already occurs in the formula"
             x' x);
      match Hashtbl.find_opt taken x' with
      | Some y when y <> x ->
        invalid_arg
          (Printf.sprintf "Fo.rename_bound: %s and %s both map to %s" y x x')
      | _ -> Hashtbl.replace taken x' x
    end;
    x'
  in
  let rename_term env = function
    | Var x as t -> (
        match SMap.find_opt x env with Some x' -> Var x' | None -> t)
    | Const _ as t -> t
  in
  let rec go env = function
    | (True | False) as f -> f
    | Atom (r, ts) -> Atom (r, List.map (rename_term env) ts)
    | Eq (a, b) -> Eq (rename_term env a, rename_term env b)
    | Cmp (op, a, b) -> Cmp (op, rename_term env a, rename_term env b)
    | Not f -> Not (go env f)
    | And (f, g) -> And (go env f, go env g)
    | Or (f, g) -> Or (go env f, go env g)
    | Implies (f, g) -> Implies (go env f, go env g)
    | Exists (x, f) ->
      let x' = fresh x in
      Exists (x', go (SMap.add x x' env) f)
    | Forall (x, f) ->
      let x' = fresh x in
      Forall (x', go (SMap.add x x' env) f)
  in
  go SMap.empty f

let rec size = function
  | True | False | Atom _ | Eq _ | Cmp _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let compare = Stdlib.compare
let equal a b = compare a b = 0

let term_to_string = function
  | Var x -> x
  (* Boolean constants must not collide with the formula keywords
     true/false, so they print in the parser's #t/#f syntax. *)
  | Const (Value.Bool b) -> if b then "#t" else "#f"
  | Const v -> Value.to_string v

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Atom (r, ts) ->
    Printf.sprintf "%s(%s)" r (String.concat ", " (List.map term_to_string ts))
  | Eq (a, b) -> Printf.sprintf "%s = %s" (term_to_string a) (term_to_string b)
  | Cmp (op, a, b) ->
    let sym = match op with Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" in
    Printf.sprintf "%s %s %s" (term_to_string a) sym (term_to_string b)
  | Not f -> "!" ^ atomic f
  | And (f, g) -> Printf.sprintf "%s & %s" (atomic f) (atomic g)
  | Or (f, g) -> Printf.sprintf "%s | %s" (atomic f) (atomic g)
  | Implies (f, g) -> Printf.sprintf "%s -> %s" (atomic f) (atomic g)
  | Exists (x, f) -> Printf.sprintf "exists %s. %s" x (to_string f)
  | Forall (x, f) -> Printf.sprintf "forall %s. %s" x (to_string f)

and atomic f =
  match f with
  | True | False | Atom _ | Eq _ | Cmp _ | Not _ -> to_string f
  | _ -> "(" ^ to_string f ^ ")"

let pp fmt f = Format.pp_print_string fmt (to_string f)

let rec is_positive = function
  | True | False | Atom _ | Eq _ | Cmp _ -> true
  | Not _ | Implies _ -> false
  | And (f, g) | Or (f, g) -> is_positive f && is_positive g
  | Exists (_, f) | Forall (_, f) -> is_positive f

let rec is_quantifier_free = function
  | True | False | Atom _ | Eq _ | Cmp _ -> true
  | Not f -> is_quantifier_free f
  | And (f, g) | Or (f, g) | Implies (f, g) ->
    is_quantifier_free f && is_quantifier_free g
  | Exists _ | Forall _ -> false

let rec has_cmp = function
  | Cmp _ -> true
  | True | False | Atom _ | Eq _ -> false
  | Not f | Exists (_, f) | Forall (_, f) -> has_cmp f
  | And (f, g) | Or (f, g) | Implies (f, g) -> has_cmp f || has_cmp g
