(* Lifted ("extensional") inference for unions of conjunctive queries.

   The planner applies the classical Dalvi-Suciu rules recursively:

     - independent union: disjuncts partitioned into groups that can
       touch no common fact are independent events,
       P = 1 - prod_g (1 - P(g));
     - independent project: a separator variable — occurring in every
       atom of every disjunct, at the same position set per relation
       symbol — makes its values independent alternatives,
       P = 1 - prod_v (1 - P(Q[x := v]));
     - inclusion-exclusion over the disjuncts of a union,
       P(Q1 v ... v Qk) = sum over nonempty S of (-1)^(#S + 1) P(and of Qi, i in S);
     - independent join: connected components of a conjunct that can
       touch no common fact multiply;
     - ground atoms are probability lookups.

   Safety is certified syntactically by running the same recursion on a
   placeholder constant ([plan_of]); evaluation re-runs the rules on the
   concrete groundings, so a rule precondition that fails on an actual
   value (e.g. a grounding colliding with a query constant) degrades to
   [None] — the lineage engine keeps completeness, this engine only ever
   answers when its independence arguments hold on the instance at hand.

   Normalization: rename bound variables apart, strip the (positive,
   existential) quantifier structure, distribute to DNF with blow-up
   caps, then solve each disjunct's equality atoms by union-find —
   conflicting constant bindings make the disjunct unsatisfiable and it
   is dropped (the empty union has probability zero). *)

type atom = { rel : string; args : Fo.term list }

(* The legacy conjunctive-query view ([of_sentence]): [unsat] marks a
   body whose equality atoms are contradictory, so the probability is 0
   rather than "not recognized". *)
type cq = { atoms : atom list; unsat : bool }

type disjunct = { datoms : atom list }
type ucq = disjunct list

module SSet = Set.Make (String)
module SMap = Map.Make (String)
module ISet = Set.Make (Int)
module VSet = Set.Make (Value)

(* ------------------------------------------------------------------ *)
(* Atom utilities *)
(* ------------------------------------------------------------------ *)

let term_compare t u =
  match (t, u) with
  | Fo.Var x, Fo.Var y -> String.compare x y
  | Fo.Const v, Fo.Const w -> Value.compare v w
  | Fo.Var _, Fo.Const _ -> -1
  | Fo.Const _, Fo.Var _ -> 1

let atom_compare a b =
  match String.compare a.rel b.rel with
  | 0 -> List.compare term_compare a.args b.args
  | c -> c

let atoms_compare = List.compare atom_compare

let dedup_atoms atoms = List.sort_uniq atom_compare atoms

let atom_vars a =
  List.fold_left
    (fun acc t -> match t with Fo.Var x -> SSet.add x acc | Fo.Const _ -> acc)
    SSet.empty a.args

let is_ground a =
  List.for_all (function Fo.Const _ -> true | Fo.Var _ -> false) a.args

let subst_atom x v a =
  {
    a with
    args =
      List.map
        (function Fo.Var y when y = x -> Fo.Const v | t -> t)
        a.args;
  }

let subst_atoms x v atoms = List.map (subst_atom x v) atoms

(* Can two atom patterns denote a common fact?  Conservative: variables
   match anything; only a position where both sides carry distinct
   constants separates them.  This is what lets ground self-"joins" like
   [R(1) & R(2)] keep the fast path. *)
let atoms_may_overlap a b =
  String.equal a.rel b.rel
  && List.length a.args = List.length b.args
  && List.for_all2
       (fun t u ->
         match (t, u) with
         | Fo.Const v, Fo.Const w -> Value.equal v w
         | _ -> true)
       a.args b.args

let atom_lists_overlap xs ys =
  List.exists (fun a -> List.exists (fun b -> atoms_may_overlap a b) ys) xs

(* ------------------------------------------------------------------ *)
(* Grouping (union-find) *)
(* ------------------------------------------------------------------ *)

(* Partition [xs] into connected groups under [related]; group order
   follows the first member's position. *)
let group_by related xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(Stdlib.max ri rj) <- Stdlib.min ri rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if related arr.(i) arr.(j) then union i j
    done
  done;
  let order = ref [] and buckets = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let r = find i in
    if not (Hashtbl.mem buckets r) then begin
      Hashtbl.add buckets r (ref []);
      order := r :: !order
    end;
    let cell = Hashtbl.find buckets r in
    cell := arr.(i) :: !cell
  done;
  List.rev_map (fun r -> List.rev !(Hashtbl.find buckets r)) !order

(* Connected components of a conjunct under shared variables. *)
let components atoms =
  group_by
    (fun a b -> not (SSet.is_empty (SSet.inter (atom_vars a) (atom_vars b))))
    atoms

let cross_independent groups =
  let rec go = function
    | [] -> true
    | g :: rest ->
      List.for_all (fun h -> not (atom_lists_overlap g h)) rest && go rest
  in
  go groups

(* ------------------------------------------------------------------ *)
(* Normalization: sentence -> UCQ *)
(* ------------------------------------------------------------------ *)

(* Rename bound variables apart so quantifier stripping and DNF
   distribution cannot conflate distinct binders (e.g. shadowing in
   [exists x. R(x) & exists x. S(x)]).  Every remaining variable name is
   ours afterwards. *)
let rectify phi =
  let ctr = ref 0 in
  let fresh () =
    incr ctr;
    Printf.sprintf "u%d" !ctr
  in
  let subst_t env = function
    | Fo.Var x -> (
      match List.assoc_opt x env with Some y -> Fo.Var y | None -> Fo.Var x)
    | t -> t
  in
  let rec go env = function
    | (Fo.True | Fo.False) as f -> f
    | Fo.Atom (r, ts) -> Fo.Atom (r, List.map (subst_t env) ts)
    | Fo.Eq (t, u) -> Fo.Eq (subst_t env t, subst_t env u)
    | Fo.Cmp (op, t, u) -> Fo.Cmp (op, subst_t env t, subst_t env u)
    | Fo.Not f -> Fo.Not (go env f)
    | Fo.And (f, g) -> Fo.And (go env f, go env g)
    | Fo.Or (f, g) -> Fo.Or (go env f, go env g)
    | Fo.Implies (f, g) -> Fo.Implies (go env f, go env g)
    | Fo.Exists (x, f) ->
      let x' = fresh () in
      Fo.Exists (x', go ((x, x') :: env) f)
    | Fo.Forall (x, f) ->
      let x' = fresh () in
      Fo.Forall (x', go ((x, x') :: env) f)
  in
  go [] phi

type lit = L_atom of atom | L_eq of Fo.term * Fo.term

(* Positive existential fragment only; caps keep the distribution from
   blowing up on adversarial nestings (reject rather than stall — the
   lineage engine takes over). *)
let max_disjuncts = 64
let max_atoms_per_disjunct = 32

let dnf phi =
  let rec go = function
    | Fo.True -> Some [ [] ]
    | Fo.False -> Some []
    | Fo.Atom (r, ts) -> Some [ [ L_atom { rel = r; args = ts } ] ]
    | Fo.Eq (t, u) -> Some [ [ L_eq (t, u) ] ]
    | Fo.Exists (_, f) -> go f (* rectified: the binder name is unique *)
    | Fo.Or (f, g) -> (
      match (go f, go g) with
      | Some a, Some b when List.length a + List.length b <= max_disjuncts ->
        Some (a @ b)
      | _ -> None)
    | Fo.And (f, g) -> (
      match (go f, go g) with
      | Some a, Some b when List.length a * List.length b <= max_disjuncts ->
        let prod =
          List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) b) a
        in
        if
          List.exists
            (fun c -> List.length c > max_atoms_per_disjunct)
            prod
        then None
        else Some prod
      | _ -> None)
    | Fo.Cmp _ | Fo.Not _ | Fo.Implies _ | Fo.Forall _ -> None
  in
  go phi

(* Solve a disjunct's equality atoms by union-find with constant
   bindings.  [None] = unsatisfiable (conflicting constants). *)
let solve_eqs lits =
  let parent = Hashtbl.create 8 in
  let bound = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some y when y <> x ->
      let r = find y in
      Hashtbl.replace parent x r;
      r
    | _ -> x
  in
  let bind x v =
    let r = find x in
    match Hashtbl.find_opt bound r with
    | Some w when not (Value.equal v w) -> raise Exit
    | _ -> Hashtbl.replace bound r v
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then begin
      (match (Hashtbl.find_opt bound rx, Hashtbl.find_opt bound ry) with
      | Some a, Some b when not (Value.equal a b) -> raise Exit
      | Some a, None -> Hashtbl.replace bound ry a
      | _ -> ());
      Hashtbl.replace parent rx ry
    end
  in
  match
    List.iter
      (function
        | L_eq (Fo.Const a, Fo.Const b) ->
          if not (Value.equal a b) then raise Exit
        | L_eq (Fo.Var x, Fo.Const v) | L_eq (Fo.Const v, Fo.Var x) ->
          bind x v
        | L_eq (Fo.Var x, Fo.Var y) -> union x y
        | L_atom _ -> ())
      lits
  with
  | () ->
    let resolve = function
      | Fo.Var x -> (
        let r = find x in
        match Hashtbl.find_opt bound r with
        | Some v -> Fo.Const v
        | None -> Fo.Var r)
      | t -> t
    in
    Some
      (List.filter_map
         (function
           | L_atom a -> Some { a with args = List.map resolve a.args }
           | L_eq _ -> None)
         lits)
  | exception Exit -> None

(* Deterministic per-disjunct variable names (first occurrence over the
   sorted atom list) — a cheap canonical form that dedups identical
   disjuncts; missing a dedup is harmless (inclusion-exclusion absorbs
   duplicates), finding one saves exponential work. *)
let canon_atoms atoms =
  let atoms = List.sort atom_compare atoms in
  let map = Hashtbl.create 8 in
  let ctr = ref 0 in
  let rn = function
    | Fo.Var x ->
      let y =
        match Hashtbl.find_opt map x with
        | Some y -> y
        | None ->
          incr ctr;
          let y = Printf.sprintf "c%d" !ctr in
          Hashtbl.replace map x y;
          y
      in
      Fo.Var y
    | t -> t
  in
  List.sort atom_compare
    (List.map (fun a -> { a with args = List.map rn a.args }) atoms)

(* Variables only matter within a disjunct; prefixing by disjunct index
   renames them apart so inclusion-exclusion can conjoin disjuncts by
   plain atom-list union. *)
let prefix_vars d atoms =
  List.map
    (fun a ->
      {
        a with
        args =
          List.map
            (function
              | Fo.Var x -> Fo.Var (Printf.sprintf "q%d_%s" d x)
              | t -> t)
            a.args;
      })
    atoms

let ucq_of_sentence phi =
  if Fo.free_vars phi <> [] then None
  else
    match dnf (rectify phi) with
    | None -> None
    | Some disjuncts ->
      let sat = List.filter_map solve_eqs disjuncts in
      let canon = List.map (fun atoms -> canon_atoms (dedup_atoms atoms)) sat in
      let deduped = List.sort_uniq atoms_compare canon in
      Some (List.mapi (fun d atoms -> { datoms = prefix_vars d atoms }) deduped)

(* ------------------------------------------------------------------ *)
(* Separators *)
(* ------------------------------------------------------------------ *)

let positions_of x args =
  let ps = ref ISet.empty in
  List.iteri
    (fun i t -> match t with Fo.Var y when y = x -> ps := ISet.add i !ps | _ -> ())
    args;
  !ps

(* Variables occurring in every atom of the disjunct. *)
let common_vars atoms =
  match atoms with
  | [] -> SSet.empty
  | a :: rest -> List.fold_left (fun acc b -> SSet.inter acc (atom_vars b)) (atom_vars a) rest

(* rel -> positions of [x], consistent across the disjunct's atoms of
   each relation — the condition under which distinct values of [x]
   touch distinct facts even in the presence of self-joins. *)
let rel_positions x atoms =
  match
    List.fold_left
      (fun m a ->
        let ps = positions_of x a.args in
        match SMap.find_opt a.rel m with
        | None -> SMap.add a.rel ps m
        | Some ps' -> if ISet.equal ps ps' then m else raise Exit)
      SMap.empty atoms
  with
  | m -> Some m
  | exception Exit -> None

let merge_positions m1 m2 =
  match
    SMap.union (fun _ p q -> if ISet.equal p q then Some p else raise Exit) m1 m2
  with
  | m -> Some m
  | exception Exit -> None

let max_separator_choices = 16

(* Choices of one root variable per disjunct whose position maps are
   globally compatible — the UCQ-level separators.  Each choice is a
   list aligned with the UCQ's disjuncts. *)
let separators (ucq : ucq) : string list list =
  let per_disjunct =
    List.map
      (fun c ->
        SSet.elements (common_vars c.datoms)
        |> List.filter_map (fun x ->
               Option.map (fun m -> (x, m)) (rel_positions x c.datoms)))
      ucq
  in
  if List.exists (fun l -> l = []) per_disjunct then []
  else begin
    let take n l = List.filteri (fun i _ -> i < n) l in
    let combos =
      List.fold_left
        (fun acc options ->
          take max_separator_choices
            (List.concat_map
               (fun (chosen, m) ->
                 List.filter_map
                   (fun (x, mx) ->
                     Option.map (fun m' -> (x :: chosen, m')) (merge_positions m mx))
                   options)
               acc))
        [ ([], SMap.empty) ]
        per_disjunct
    in
    List.map (fun (chosen, _) -> List.rev chosen) combos
  end

(* ------------------------------------------------------------------ *)
(* The plan certificate *)
(* ------------------------------------------------------------------ *)

type plan =
  | P_true
  | P_zero
  | P_weight of atom  (** ground-atom probability lookup *)
  | P_join of plan list  (** independent conjunction *)
  | P_union of plan list  (** independent disjunction *)
  | P_project of string * plan  (** independent project on a separator *)
  | P_incl_excl of (int * plan) list  (** signed inclusion-exclusion *)

let max_incl_excl = 6
let max_depth = 64

(* Certification placeholder: a fresh constant standing for "any value of
   the projected variable"; depth-indexed so nested projects stay
   distinct (their disjointness checks must not conflate two holes). *)
let hole depth = Value.Str (Printf.sprintf "\x01sp.hole.%d" depth)

let rec plan_ucq depth (ucq : ucq) : plan option =
  if depth > max_depth then None
  else
    match ucq with
    | [] -> Some P_zero
    | _ when List.exists (fun c -> c.datoms = []) ucq -> Some P_true
    | [ c ] -> plan_cq depth c.datoms
    | _ -> (
      match group_by (fun a b -> atom_lists_overlap a.datoms b.datoms) ucq with
      | ([] | [ _ ]) -> plan_entangled depth ucq
      | groups ->
        let subs = List.map (plan_ucq (depth + 1)) groups in
        if List.for_all Option.is_some subs then
          Some (P_union (List.map Option.get subs))
        else None)

(* A union whose disjuncts may share facts: separator project first (it
   commutes with the union), inclusion-exclusion as the fallback. *)
and plan_entangled depth ucq =
  let projected =
    List.find_map
      (fun choice ->
        let grounded =
          List.map2
            (fun c x -> { datoms = dedup_atoms (subst_atoms x (hole depth) c.datoms) })
            ucq choice
        in
        Option.map
          (fun sub -> P_project (String.concat "=" (List.sort_uniq compare choice), sub))
          (plan_ucq (depth + 1) grounded))
      (separators ucq)
  in
  match projected with
  | Some p -> Some p
  | None -> plan_incl_excl depth ucq

and plan_incl_excl depth ucq =
  let k = List.length ucq in
  if k > max_incl_excl then None
  else begin
    let arr = Array.of_list ucq in
    let rec terms s acc =
      if s >= 1 lsl k then Some (List.rev acc)
      else begin
        let atoms = ref [] and bits = ref 0 in
        for i = 0 to k - 1 do
          if s land (1 lsl i) <> 0 then begin
            incr bits;
            atoms := arr.(i).datoms @ !atoms
          end
        done;
        match plan_cq (depth + 1) (dedup_atoms !atoms) with
        | None -> None
        | Some p ->
          let sign = if !bits mod 2 = 1 then 1 else -1 in
          terms (s + 1) ((sign, p) :: acc)
      end
    in
    Option.map (fun ts -> P_incl_excl ts) (terms 1 [])
  end

and plan_cq depth atoms =
  match atoms with
  | [] -> Some P_true
  | _ -> (
    match components atoms with
    | [ comp ] -> plan_component depth comp
    | comps ->
      if not (cross_independent comps) then None
      else begin
        let subs = List.map (plan_component (depth + 1)) comps in
        if List.for_all Option.is_some subs then
          Some (P_join (List.map Option.get subs))
        else None
      end)

and plan_component depth comp =
  match comp with
  | [ a ] when is_ground a -> Some (P_weight a)
  | _ ->
    List.find_map
      (function
        | [ x ] ->
          let g = dedup_atoms (subst_atoms x (hole depth) comp) in
          Option.map (fun sub -> P_project (x, sub)) (plan_cq (depth + 1) g)
        | _ -> None)
      (separators [ { datoms = comp } ])

let plan_of phi =
  match ucq_of_sentence phi with
  | None -> None
  | Some ucq -> plan_ucq 0 ucq

let is_safe phi = plan_of phi <> None

(* Certification holes render as [#d]: "the value bound by the project at
   depth d", not a real constant of the query. *)
let term_to_display = function
  | Fo.Var x -> x
  | Fo.Const (Value.Str s)
    when String.length s > 9 && String.sub s 0 9 = "\x01sp.hole." ->
    "#" ^ String.sub s 9 (String.length s - 9)
  | Fo.Const v -> Value.to_string v

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.rel
    (String.concat ", " (List.map term_to_display a.args))

let rec plan_to_string = function
  | P_true -> "1"
  | P_zero -> "0"
  | P_weight a -> Printf.sprintf "P[%s]" (atom_to_string a)
  | P_join ps ->
    "join(" ^ String.concat ", " (List.map plan_to_string ps) ^ ")"
  | P_union ps ->
    "union(" ^ String.concat ", " (List.map plan_to_string ps) ^ ")"
  | P_project (x, p) -> Printf.sprintf "project %s (%s)" x (plan_to_string p)
  | P_incl_excl ts ->
    "incl-excl("
    ^ String.concat ", "
        (List.map
           (fun (sign, p) ->
             (if sign > 0 then "+ " else "- ") ^ plan_to_string p)
           ts)
    ^ ")"

(* ------------------------------------------------------------------ *)
(* Legacy CQ recognizer (kept for the hierarchical classifier and its
   tests; the UCQ path above subsumes it for evaluation) *)
(* ------------------------------------------------------------------ *)

let rec strip_exists = function
  | Fo.Exists (_, f) -> strip_exists f
  | f -> f

let rec gather_conjuncts acc = function
  | Fo.And (f, g) -> gather_conjuncts (gather_conjuncts acc f) g
  | f -> f :: acc

let of_sentence phi =
  if Fo.free_vars phi <> [] then None
  else begin
    let body = strip_exists phi in
    let conjuncts = gather_conjuncts [] body in
    let unsat_cq = Some { atoms = []; unsat = true } in
    (* Collect variable = constant equalities to substitute away;
       conflicting bindings for one variable (x = a & x = b) make the
       body unsatisfiable — answer 0, not "pick one binding". *)
    let rec collect eqs atoms = function
      | [] -> Some (`Sat (eqs, atoms))
      | Fo.Atom (r, ts) :: rest ->
        collect eqs ({ rel = r; args = ts } :: atoms) rest
      | Fo.Eq (Fo.Var x, Fo.Const v) :: rest
      | Fo.Eq (Fo.Const v, Fo.Var x) :: rest -> (
        match List.assoc_opt x eqs with
        | Some w when not (Value.equal v w) -> Some `Unsat
        | _ -> collect ((x, v) :: eqs) atoms rest)
      | Fo.Eq (Fo.Const v, Fo.Const w) :: rest ->
        if Value.equal v w then collect eqs atoms rest else Some `Unsat
      | Fo.True :: rest -> collect eqs atoms rest
      | _ -> None
    in
    match collect [] [] conjuncts with
    | None -> None
    | Some `Unsat -> unsat_cq
    | Some (`Sat (eqs, atoms)) ->
      let subst_term = function
        | Fo.Var x as t -> (
          match List.assoc_opt x eqs with Some v -> Fo.Const v | None -> t)
        | t -> t
      in
      Some
        {
          atoms =
            List.map
              (fun a -> { a with args = List.map subst_term a.args })
              atoms;
          unsat = false;
        }
  end

let is_unsatisfiable q = q.unsat

(* Syntactically identical duplicate atoms are idempotent, so they are
   deduplicated before looking for a genuine self-join (two *distinct*
   atoms over one relation). *)
let has_self_join q =
  let rec go seen = function
    | [] -> false
    | a :: rest -> SSet.mem a.rel seen || go (SSet.add a.rel seen) rest
  in
  go SSet.empty (dedup_atoms q.atoms)

let is_hierarchical q =
  (* sg(x) = indices of atoms containing x; hierarchical iff all pairs of
     sg sets are nested or disjoint. *)
  let atoms = dedup_atoms q.atoms in
  let sg = Hashtbl.create 16 in
  List.iteri
    (fun i a ->
      SSet.iter
        (fun x ->
          let cur = Option.value (Hashtbl.find_opt sg x) ~default:[] in
          Hashtbl.replace sg x (i :: cur))
        (atom_vars a))
    atoms;
  let sets =
    Hashtbl.fold
      (fun _ is acc -> SSet.of_list (List.map string_of_int is) :: acc)
      sg []
  in
  List.for_all
    (fun s1 ->
      List.for_all
        (fun s2 ->
          SSet.subset s1 s2 || SSet.subset s2 s1
          || SSet.is_empty (SSet.inter s1 s2))
        sets)
    sets

(* ------------------------------------------------------------------ *)
(* Evaluation *)
(* ------------------------------------------------------------------ *)

exception Unsafe

module Make (C : Prob.CARRIER) = struct
  (* Index the TI table per relation for candidate matching. *)
  let index facts =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun f ->
        let cur = Option.value (Hashtbl.find_opt tbl (Fact.rel f)) ~default:[] in
        Hashtbl.replace tbl (Fact.rel f) (f :: cur))
      facts;
    tbl

  (* Does a ground-or-not atom pattern match a fact's argument list? *)
  let matches atom fact =
    Fact.arity fact = List.length atom.args
    && List.for_all2
         (fun t v ->
           match t with
           | Fo.Const c -> Value.equal c v
           | Fo.Var _ -> true)
         atom.args (Fact.args fact)

  let candidate_values idx atoms x =
    (* Values v such that substituting x := v keeps at least one atom
       matchable; union over atoms containing x of the values at x's
       positions in matching facts.  (A superset of the useful values is
       sound: a value with no full match contributes a factor 1.) *)
    List.fold_left
      (fun acc a ->
        if not (SSet.mem x (atom_vars a)) then acc
        else begin
          let facts = Option.value (Hashtbl.find_opt idx a.rel) ~default:[] in
          List.fold_left
            (fun acc f ->
              if matches a f then begin
                let acc = ref acc in
                List.iteri
                  (fun i t ->
                    match t with
                    | Fo.Var y when y = x ->
                      acc := VSet.add (Fact.arg f i) !acc
                    | _ -> ())
                  a.args;
                !acc
              end
              else acc)
            acc facts
        end)
      VSet.empty atoms

  (* The evaluator mirrors [plan_ucq] rule for rule, but recurses on the
     concrete groundings instead of a placeholder; [Unsafe] aborts to the
     [None] of [probability] (a precondition failed on this instance). *)
  let rec eval_ucq step idx weight depth (ucq : ucq) : C.t =
    step ();
    if depth > max_depth then raise Unsafe;
    match ucq with
    | [] -> C.zero
    | _ when List.exists (fun c -> c.datoms = []) ucq -> C.one
    | [ c ] -> eval_cq step idx weight depth c.datoms
    | _ -> (
      match group_by (fun a b -> atom_lists_overlap a.datoms b.datoms) ucq with
      | ([] | [ _ ]) -> eval_entangled step idx weight depth ucq
      | groups ->
        (* Independent union. *)
        C.compl
          (List.fold_left
             (fun acc g ->
               C.mul acc (C.compl (eval_ucq step idx weight (depth + 1) g)))
             C.one groups))

  and eval_entangled step idx weight depth ucq =
    let try_separator choice =
      let cands =
        List.fold_left2
          (fun acc c x -> VSet.union acc (candidate_values idx c.datoms x))
          VSet.empty ucq choice
      in
      match
        VSet.fold
          (fun v acc ->
            let grounded =
              List.map2
                (fun c x -> { datoms = dedup_atoms (subst_atoms x v c.datoms) })
                ucq choice
            in
            C.mul acc
              (C.compl (eval_ucq step idx weight (depth + 1) grounded)))
          cands C.one
      with
      | miss_all -> Some (C.compl miss_all)
      | exception Unsafe -> None
    in
    match List.find_map try_separator (separators ucq) with
    | Some p -> p
    | None -> eval_incl_excl step idx weight depth ucq

  and eval_incl_excl step idx weight depth ucq =
    let k = List.length ucq in
    if k > max_incl_excl then raise Unsafe;
    let arr = Array.of_list ucq in
    let total = ref C.zero in
    for s = 1 to (1 lsl k) - 1 do
      let atoms = ref [] and bits = ref 0 in
      for i = 0 to k - 1 do
        if s land (1 lsl i) <> 0 then begin
          incr bits;
          atoms := arr.(i).datoms @ !atoms
        end
      done;
      let p = eval_cq step idx weight (depth + 1) (dedup_atoms !atoms) in
      total := if !bits mod 2 = 1 then C.add !total p else C.sub !total p
    done;
    !total

  and eval_cq step idx weight depth atoms =
    step ();
    match atoms with
    | [] -> C.one
    | _ -> (
      match components atoms with
      | [ comp ] -> eval_component step idx weight depth comp
      | comps ->
        if not (cross_independent comps) then raise Unsafe;
        (* Independent join. *)
        List.fold_left
          (fun acc comp ->
            C.mul acc (eval_component step idx weight (depth + 1) comp))
          C.one comps)

  and eval_component step idx weight depth comp =
    match comp with
    | [ a ] when is_ground a ->
      weight
        (Fact.make a.rel
           (List.map
              (function Fo.Const v -> v | Fo.Var _ -> assert false)
              a.args))
    | _ ->
      let try_root = function
        | [ x ] -> (
          let values = candidate_values idx comp x in
          match
            VSet.fold
              (fun v acc ->
                let grounded = dedup_atoms (subst_atoms x v comp) in
                C.mul acc
                  (C.compl (eval_cq step idx weight (depth + 1) grounded)))
              values C.one
          with
          | miss_all -> Some (C.compl miss_all)
          | exception Unsafe -> None)
        | _ -> None
      in
      (match List.find_map try_root (separators [ { datoms = comp } ]) with
      | Some p -> p
      | None -> raise Unsafe)

  let probability ?(step = fun () -> ()) ~weight ~facts phi =
    match ucq_of_sentence phi with
    | None -> None
    | Some ucq ->
      (* Degenerate-domain guard: with no values in any fact and no
         constants in the query, the shared evaluation domain is empty,
         where a quantified tautology (e.g. [exists x y. x = y]) is
         false under active-domain semantics while the UCQ view says
         true.  Punt to the grounded engines for that corner. *)
      if
        ucq <> []
        && Fo.quantifier_rank phi > 0
        && Fo.constants phi = []
        && List.for_all (fun f -> Fact.args f = []) facts
      then None
      else begin
        let idx = index facts in
        match eval_ucq step idx weight 0 ucq with
        | p -> Some p
        | exception Unsafe -> None
      end
end
