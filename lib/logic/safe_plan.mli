(** Lifted ("extensional", safe-plan) inference for unions of Boolean
    conjunctive queries over tuple-independent tables.

    This is the tractable side of the Dalvi-Suciu dichotomy, built as one
    of the interchangeable "traditional closed-world query evaluation
    algorithms" that Proposition 6.1 plugs into: a recursive planner
    applies independent-union, independent-join, independent-project and
    inclusion-exclusion rules, certifying safety syntactically and
    computing the probability in polynomial time — no lineage
    compilation.

    Queries the rules cannot certify are rejected with [None]
    (completeness is the lineage engine's job, not this one's), and the
    evaluator re-checks every rule precondition on the concrete
    groundings, so an answer is only ever produced when the independence
    arguments hold on the instance at hand. *)

(** {1 The UCQ planner} *)

type atom = { rel : string; args : Fo.term list }

type plan =
  | P_true
  | P_zero
  | P_weight of atom  (** ground-atom probability lookup *)
  | P_join of plan list  (** independent conjunction *)
  | P_union of plan list  (** independent disjunction *)
  | P_project of string * plan  (** independent project on a separator *)
  | P_incl_excl of (int * plan) list  (** signed inclusion-exclusion *)

val plan_of : Fo.t -> plan option
(** The certified safe plan for a positive existential sentence, [None]
    when the sentence is not a UCQ (negation, universal quantifiers,
    [Cmp], free variables) or no rule sequence applies — the hard side
    of the dichotomy, or beyond this planner's fragment. *)

val plan_to_string : plan -> string
(** Compact one-line rendering, e.g.
    [project x (join(P[R(\x01sp.hole.0)], P[S(\x01sp.hole.0)]))]. *)

val is_safe : Fo.t -> bool
(** [plan_of phi <> None]. *)

(** {1 Legacy conjunctive-query recognizer}

    Kept for the hierarchical classifier and its tests; evaluation goes
    through the UCQ rules, which subsume it. *)

type cq
(** A Boolean conjunctive query body: positive relational atoms after
    equality substitution, or the unsatisfiable body. *)

val of_sentence : Fo.t -> cq option
(** Recognizes sentences of CQ shape.  Equality atoms between a variable
    and a constant are folded in by substitution; conflicting constant
    bindings ([x = a & x = b]) yield the unsatisfiable body (probability
    zero), not a silent choice.  [None] for anything else (negation,
    disjunction, universal quantifiers, free variables,
    variable-variable equalities). *)

val is_unsatisfiable : cq -> bool
(** The body's equality atoms are contradictory. *)

val has_self_join : cq -> bool
(** Two {e distinct} atoms sharing a relation symbol — syntactically
    identical duplicates are idempotent and deduplicated first. *)

val is_hierarchical : cq -> bool
(** For every two variables, their atom sets are nested or disjoint —
    the safety criterion for CQs without self-joins. *)

(** {1 Evaluation} *)

module Make (C : Prob.CARRIER) : sig
  val probability :
    ?step:(unit -> unit) ->
    weight:(Fact.t -> C.t) ->
    facts:Fact.t list ->
    Fo.t ->
    C.t option
  (** [probability ~weight ~facts q]: the probability of the Boolean
      query [q] in the tuple-independent PDB whose possible facts are
      [facts] with marginals [weight].  [None] when no safe plan applies.
      Existential quantifiers range over the values occurring in [facts]
      (plus the query's constants), matching the lineage engine's
      domain; positive existential sentences cannot distinguish that
      domain from any inert extension, so the answer is also the padded
      (limit-semantics) one.  [step] is invoked once per rule
      application and may raise to abort (budget cancellation). *)
end
