(** First-order logic over a relational vocabulary, expanded by constants
    from the universe — the query language [FO(tau, U)] of Section 2.1.

    Variables are named; constants are {!Value.t}.  Equality atoms and the
    full Boolean/quantifier structure are supported. *)

type term =
  | Var of string
  | Const of Value.t

type cmp_op = Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Atom of string * term list  (** [R(t_1, ..., t_k)] *)
  | Eq of term * term
  | Cmp of cmp_op * term * term
      (** Built-in order comparison, by the total order on {!Value.t}
          (within a sort: the natural order; across sorts: the fixed sort
          order).  Deterministic like [Eq]; usable e.g. for "office 1 is
          warmer than office 2" in the paper's introduction scenario. *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

(** {1 Construction helpers} *)

val atom : string -> term list -> t
val v : string -> term
val c : Value.t -> term
val cint : int -> term
val cstr : string -> term
val lt : term -> term -> t
val le : term -> term -> t
val gt : term -> term -> t
val ge : term -> term -> t

val conj : t list -> t
(** Right-nested conjunction; [True] on the empty list. *)

val disj : t list -> t
val exists_many : string list -> t -> t
val forall_many : string list -> t -> t

(** {1 Structure} *)

val free_vars : t -> string list
(** Sorted, duplicate-free. *)

val is_sentence : t -> bool

val quantifier_rank : t -> int
(** Maximum quantifier nesting depth — the parameter [r] of
    Proposition 6.1's r-equivalence argument. *)

val constants : t -> Value.t list
(** [adom(phi)]: all constants occurring in the formula, sorted. *)

val relations : t -> (string * int) list
(** Relation symbols used, with observed arities, sorted.
    @raise Invalid_argument if a symbol occurs with two arities. *)

val substitute : (string * Value.t) list -> t -> t
(** Capture-free substitution of constants for free variables (bound
    occurrences are untouched). *)

val rename_bound : (string -> string) -> t -> t
(** [rename_bound f phi]: rename every bound variable [x] (the binder
    and the occurrences it captures) to [f x], leaving free variables
    untouched — an α-renaming, so the result is logically equivalent to
    [phi].  Safety is checked, not assumed: the call raises
    [Invalid_argument] if some image [f x <> x] already occurs anywhere
    in [phi] (free or bound), or if two distinct bound names map to the
    same image — either could capture.  Shadowing in [phi] is preserved
    (equal bound names rename equally). *)

val size : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Shape tests (for the safe-plan engine)} *)

val is_positive : t -> bool
(** No negation or implication. *)

val is_quantifier_free : t -> bool

val has_cmp : t -> bool
(** Whether the built-in order [Cmp] occurs anywhere.  [Cmp] breaks the
    interchangeability of inert padding values, so engines that pad the
    evaluation domain (anytime intersection, Monte-Carlo plans, the
    robust supervisor's cross-engine enclosure intersection) consult
    this before combining certificates across truncation depths. *)
