(** Query evaluation over finite probabilistic databases.

    Four interchangeable engines for Boolean first-order queries over
    tuple-independent tables — the "traditional closed-world query
    evaluation algorithm" that the approximation scheme of Proposition 6.1
    invokes on its truncated PDB:

    - {b Enumeration}: sum over all [2^n] worlds.  Exact, exponential;
      the ground-truth oracle.
    - {b Lineage + BDD}: compile the query's lineage, weighted model
      count.  Exact, fast in practice, handles all of FO.
    - {b Safe plan}: lifted inference for unions of conjunctive queries,
      polynomial; [None] on the hard side of the dichotomy, where the
      lineage engine takes over.
    - {b Monte Carlo}: sample worlds; anytime estimate with a standard
      error.

    Quantifiers in all engines range over the same fixed domain — the
    active domain of the table's support plus the query's constants — so
    the engines are mutually comparable and cross-checked in the test
    suite.

    All engines also exist for explicit world tables ({!Finite_pdb}). *)

type mc_result = {
  estimate : float;
  std_error : float;
  samples : int;
}

(** {1 Boolean queries on TI tables} *)

val boolean_enum : Ti_table.t -> Fo.t -> Rational.t
(** @raise Invalid_argument if the support exceeds 20 facts or the query
    has free variables. *)

val boolean_bdd_rational : Ti_table.t -> Fo.t -> Rational.t
val boolean_bdd_float : Ti_table.t -> Fo.t -> float
val boolean_bdd_interval : Ti_table.t -> Fo.t -> Interval.t

val boolean_safe :
  ?step:(unit -> unit) -> Ti_table.t -> Fo.t -> Rational.t option
(** The lifted (extensional) UCQ engine: independent union / join /
    project and inclusion-exclusion, polynomial time.  [None] when no
    safe plan applies (the hard side of the dichotomy, or outside the
    positive existential fragment).  [step] fires once per plan-rule
    application and may raise to cancel (budget discipline). *)

val safe : Fo.t -> bool
(** The dichotomy router's syntactic test: [Safe_plan.is_safe] — whether
    {!boolean_safe} has a certified plan shape (evaluation can still
    fall back on instance-specific precondition failures). *)

val boolean_mc : ?seed:int -> samples:int -> Ti_table.t -> Fo.t -> mc_result

val boolean_mc_adaptive :
  ?seed:int -> eps:float -> delta:float -> Ti_table.t -> Fo.t -> mc_result
(** Monte Carlo with an a-priori (eps, delta) additive guarantee: the
    Hoeffding bound fixes the sample count at
    [ceil (ln(2/delta) / (2 eps^2))], so
    [P(|estimate - P(Q)| > eps) <= delta].  Pairs with Proposition 6.1:
    truncation contributes eps_1, sampling eps_2, total additive error
    eps_1 + eps_2 with confidence 1 - delta. *)

val boolean_karp_luby :
  ?seed:int -> samples:int -> Ti_table.t -> Fo.t -> mc_result option
(** The Karp-Luby FPRAS on the query's monotone DNF lineage: the relative
    error is independent of how small [P(Q)] is (plain MC needs
    [1/P(Q)] samples to even see a hit).  [None] when the lineage is not
    monotone (the query uses negation/implication in an essential way) or
    its DNF exceeds the internal clause bound. *)

val boolean :
  ?extra_domain:Value.t list ->
  ?tick:(unit -> unit) ->
  ?on_free:(int -> unit) ->
  ?cache_size:int ->
  ?gc_threshold:int ->
  Ti_table.t ->
  Fo.t ->
  Rational.t
(** The default exact engine: safe plan when applicable, lineage + BDD
    otherwise.  [tick], [on_free], [cache_size] and [gc_threshold] are
    forwarded to the BDD manager of the fallback ([tick] is called per
    fresh node and may raise to abort a blow-up; [on_free] refunds
    GC-reclaimed nodes — safe plans never tick).

    [extra_domain] extends the quantifier domain with additional values.
    Truncation-based callers pass inert padding values here so that
    universally quantified queries are decided as on the countable limit
    space rather than on the bare truncation (the r-equivalence device of
    Proposition 6.1); see {!Anytime} and {!Approx_eval}.  Inert values
    occur in no fact, so the safe-plan fast path — which is only taken
    for positive existential plans — is unaffected by them. *)

(** {1 Boolean queries on explicit world tables} *)

val boolean_finite : Finite_pdb.t -> Fo.t -> Rational.t
(** Direct summation; the evaluation domain is the active domain of the
    PDB's fact universe plus the query's constants. *)

(** {1 Queries with free variables (Section 3.1 marginals)} *)

val marginals :
  ?cache_size:int ->
  ?gc_threshold:int ->
  Ti_table.t ->
  Fo.t ->
  (Tuple.t * Rational.t) list
(** [marginals ti phi]: for each valuation [a-bar] of the free variables
    (drawn from the evaluation domain), the probability that [a-bar]
    belongs to the answer — nonzero entries only, in tuple order.
    @raise Invalid_argument beyond 3 free variables (combinatorial
    safety valve). *)

val marginals_finite : Finite_pdb.t -> Fo.t -> (Tuple.t * Rational.t) list

(** {1 Generic engine over any carrier} *)

module Make (C : Prob.CARRIER) : sig
  val weight_of_table : Ti_table.t -> Fact.t -> C.t

  val boolean_bdd :
    ?extra_domain:Value.t list ->
    ?tick:(unit -> unit) ->
    ?on_free:(int -> unit) ->
    ?cache_size:int ->
    ?gc_threshold:int ->
    Ti_table.t ->
    Fo.t ->
    C.t

  val boolean_safe :
    ?step:(unit -> unit) -> Ti_table.t -> Fo.t -> C.t option

  val boolean :
    ?extra_domain:Value.t list ->
    ?tick:(unit -> unit) ->
    ?on_free:(int -> unit) ->
    ?cache_size:int ->
    ?gc_threshold:int ->
    Ti_table.t ->
    Fo.t ->
    C.t
end
