(** Finite block-independent-disjoint (BID) probabilistic databases.

    The possible facts are partitioned into blocks; facts within a block
    are mutually exclusive (at most one occurs), distinct blocks are
    independent (Definition 4.11; finitely many finite blocks here, the
    countable generalization lives in the [iowpdb] library).  Each block
    [B] carries probabilities [p^B_f] with [sum_{f in B} p^B_f <= 1]; the
    slack is the probability that the block contributes no fact. *)

type t

type block = { block_id : string; alternatives : (Fact.t * Rational.t) list }

val create : ?schema:Schema.t -> block list -> t
(** @raise Invalid_argument on duplicate block ids, a fact occurring
    twice (within or across blocks), probabilities outside [\[0,1\]], or a
    block whose probabilities sum above 1. *)

val blocks : t -> block list
val block_of_fact : t -> Fact.t -> string option
val prob : t -> Fact.t -> Rational.t

val block_slack : t -> string -> Rational.t
(** [1 - sum of the block's probabilities]: the "no fact from this block"
    mass. @raise Invalid_argument on an unknown block id. *)

val support : t -> Fact.t list
val size : t -> int
val num_blocks : t -> int

val expected_instance_size : t -> Rational.t

val is_good_instance : t -> Instance.t -> bool
(** At most one fact per block and all facts in the support — the "good
    instance" notion of Proposition 4.13's proof. *)

val world_probability : t -> Instance.t -> Rational.t
(** Zero on bad instances. *)

val worlds : t -> (Instance.t * Rational.t) Seq.t
(** All good worlds: the product over blocks of (alternatives + 1).
    @raise Invalid_argument when that product exceeds [2^20]. *)

val sample : t -> Prng.t -> Instance.t

val of_ti : Ti_table.t -> t
(** Singleton blocks: tuple-independence as the special case noted after
    Definition 4.11. *)

val ti_simulation : t -> Ti_table.t * (string * Fo.t) list
(** The classical finite-case definability result the paper's Section 4.3
    discussion builds on: every finite BID PDB is an FO view of a
    tuple-independent PDB.  Returns an auxiliary TI table over a fresh
    relation [Choose(block, alt)] whose probabilities are the
    chain-conditional [p_i / (1 - p_1 - ... - p_{i-1})], together with FO
    view definitions (one formula per target relation) such that applying
    the view to the TI worlds reproduces this BID distribution exactly
    ([Finite_pdb.equal_distribution] in the tests).  Proposition 4.9 shows
    precisely this kind of simulation cannot exist for all {e countable}
    PDBs. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Text format} *)

val of_lines : ?file:string -> string list -> t
(** Parses the format {!to_string} emits — one block per line,
    [block_id: R(args) p | S(args) q]; blank lines and [#] comments
    ignored.  Malformed lines are reported with [file] (when given) and
    a 1-based line number; a fact repeated within a block with the same
    probability collapses, with a different probability it is rejected.
    @raise Invalid_argument on parse errors. *)

val of_file : string -> t
(** Parses a file streaming line by line: peak memory beyond the table
    itself is O(longest line), never the whole file.  Errors cite
    [path:line] with 1-based line numbers.  The file descriptor is
    released even when parsing raises. *)
