(** Finite tuple-independent probabilistic databases.

    A TI table assigns an exact rational marginal probability to each of
    finitely many possible facts; all fact events are independent
    (Section 2 of the paper; the standard model of Suciu et al.).  The
    induced distribution over the [2^n] subsets of the support is the
    finite instance of the construction of Section 4.1:
    [P({D}) = prod_{f in D} p_f * prod_{f notin D} (1 - p_f)]. *)

type t

val create : ?schema:Schema.t -> (Fact.t * Rational.t) list -> t
(** @raise Invalid_argument on duplicate facts, probabilities outside
    [\[0,1\]], or (when a schema is given) non-conforming facts.
    Facts with probability zero are dropped. *)

val empty : t
val schema : t -> Schema.t option

val facts : t -> (Fact.t * Rational.t) list
(** In fact order. *)

val support : t -> Fact.t list
val prob : t -> Fact.t -> Rational.t
(** Zero for facts outside the support. *)

val mem : t -> Fact.t -> bool
val size : t -> int

val add : t -> Fact.t -> Rational.t -> t
(** Replaces any previous marginal. *)

val remove : t -> Fact.t -> t

val expected_instance_size : t -> Rational.t
(** [E(S_D) = sum_f p_f] (equation (5) of the paper). *)

val world_probability : t -> Instance.t -> Rational.t
(** [P({D})]; zero if [D] contains facts outside the support. *)

val worlds : t -> (Instance.t * Rational.t) Seq.t
(** All [2^n] worlds with their probabilities.
    @raise Invalid_argument when the support exceeds 20 facts. *)

val sample : t -> Prng.t -> Instance.t
(** Draw a world: each fact included independently (exact rational
    Bernoulli draws). *)

val marginal_check : t -> Fact.t -> Rational.t
(** Recomputes [P(E_f)] by summing world probabilities — exponential;
    for tests. *)

val active_domain : t -> Value.t list

val restrict : t -> (Fact.t -> bool) -> t
(** Keep only the facts satisfying the predicate. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Text format} *)

val to_channel : out_channel -> t -> unit
(** One fact per line: [R(args...) p] with [p] rational or decimal. *)

val of_lines : ?file:string -> string list -> t
(** Parses the same format; blank lines and [#] comments ignored.
    Malformed lines are reported with [file] (when given) and a 1-based
    line number.  A fact repeated with the same probability collapses to
    one entry; repeated with a different probability it is rejected,
    citing both lines.
    @raise Invalid_argument on parse errors. *)

val of_file : string -> t
(** Parses a file streaming line by line: peak memory beyond the table
    itself is O(longest line), never the whole file.  Errors cite
    [path:line] with 1-based line numbers.  The file descriptor is
    released even when parsing raises. *)
