(** Incremental query evaluation under streaming updates.

    A delta session holds a query's compiled lineage (a live BDD) over a
    finite TI table and keeps the probability current while the table
    mutates under {e set-the-marginal} deltas: [insert], [delete] and
    [reweight] all reduce to "set the marginal of fact [f] to [p]"
    (with [p = 0] for deletion), which makes every delta invertible and
    lets most of them patch the diagram in place instead of recompiling.

    {b Patching discipline.}  The fact alphabet is grow-only for
    comparison-free queries: a deleted fact keeps its BDD variable at
    weight zero, so delete / reweight / re-insert of a known fact is a
    pure weight patch — no lineage work at all.  The weighted model
    count is then re-derived through {!Bdd.fold_prob_memo}, which only
    re-runs the carrier arithmetic on the slice of the DAG that can see
    a changed variable.  A genuinely new atom extends the diagram: by a
    delta-join at the root when the query is a quantifier chain and the
    fact brings a fresh constant (the {!Anytime} device), and by a
    recompilation in the shared warm manager otherwise.

    {b Domain semantics.}  For comparison-free queries the evaluation
    domain is also grow-only — values of deleted facts stay as inert
    domain elements, padded with [quantifier_rank phi] fresh inert
    values.  By the r-equivalence argument of Proposition 6.1 this
    yields exactly the padded from-scratch answer
    [Query_eval.boolean ~extra_domain:(padding t) (table t) phi] after
    every delta, which is what the mutation-differential fuzzer checks
    by exact rational equality.  Queries using order comparisons get no
    padding and an exact active domain instead (recompiled whenever the
    support changes), matching unpadded [Query_eval.boolean].

    {b Tail certificate.}  A session created from a truncated countable
    source carries the truncation's certified tail mass, which deltas
    on the materialized prefix do not disturb; [Robust_eval] widens the
    session's count into an enclosure for the open-world answer. *)

type delta =
  | Insert of Fact.t * Rational.t
  | Delete of Fact.t
  | Reweight of Fact.t * Rational.t
      (** All three set the fact's marginal: [Insert] and [Reweight]
          are synonyms accepted for intent, [Delete] sets zero.
          Probability-zero facts do not exist ([Ti_table.create] drops
          them), so [Insert (f, 0)] is a deletion and reweighting an
          absent fact is an insertion. *)

val delta_fact : delta -> Fact.t

val delta_target : delta -> Rational.t
(** The marginal the delta sets (zero for [Delete]). *)

val delta_to_string : delta -> string
(** One line: [insert R(a, b) 1/2], [delete R(a, b)],
    [reweight R(a, b) 1/3].  Round-trips with {!delta_of_string}. *)

val delta_of_string : string -> delta
(** @raise Invalid_argument on malformed input. *)

val apply_table : Ti_table.t -> delta -> Ti_table.t
(** The pure table semantics of a delta — the from-scratch reference
    the incremental engine is fuzzed against.
    @raise Invalid_argument on a marginal outside [\[0,1\]]. *)

val inverse_of : Ti_table.t -> delta -> delta
(** The delta that restores [tbl]'s current state after applying [d];
    must be taken {e before} the application. *)

(** How a session absorbed a delta (diagnostics and test assertions). *)
type apply_kind =
  | Noop  (** the table already satisfied the delta *)
  | Patched  (** weight patch on an existing variable *)
  | Extended  (** delta-join of fresh lineage at the root *)
  | Recompiled  (** full recompilation in the shared manager *)

val apply_kind_to_string : apply_kind -> string

(** {1 TI delta sessions, generic over the probability carrier} *)

module Make (C : Prob.CARRIER) : sig
  type t

  val create :
    ?tail:float ->
    ?cache_size:int ->
    ?gc_threshold:int ->
    Ti_table.t ->
    Fo.t ->
    t
  (** Compile the query's lineage over the table and root-protect it in
      a private manager (newest-first variable order, so later inserts
      extend the diagram at the top).  [tail] is the certified tail
      mass of the truncation this table came from (default [0.], the
      closed-world reading).
      @raise Invalid_argument if [phi] has free variables or [tail] is
      outside [\[0,1)]. *)

  val query : t -> Fo.t
  val table : t -> Ti_table.t
  val tail : t -> float

  val epoch : t -> int
  (** Number of non-no-op deltas absorbed. *)

  val padding : t -> Value.t list
  (** Current inert padding values (re-derived per delta; empty for
      comparison queries).  Passing these to
      [Query_eval.boolean ~extra_domain] reproduces the session's
      semantics from scratch. *)

  val apply : t -> delta -> apply_kind
  (** Mutate the table and patch the diagram.
      @raise Invalid_argument on a marginal outside [\[0,1\]]. *)

  val inverse : t -> delta -> delta
  (** [inverse_of (table t) d]. *)

  val prob : t -> C.t
  (** The current [P(phi)] — cached between deltas; after a patch only
      the dirty WMC slice pays carrier arithmetic. *)

  val live_nodes : t -> int
  val diagram_size : t -> int
end

module Exact : module type of Make (Prob.Rational_carrier)
module Fast : module type of Make (Prob.Float_carrier)
module Certified : module type of Make (Prob.Interval_carrier)

(** {1 BID delta sessions}

    Block-independent-disjoint tables mutate under the same
    set-the-marginal deltas, constrained by block exclusivity: a
    reweight or insert that would push a block's total mass above one
    is {e rejected} (state unchanged) rather than absorbed, and a fact
    can never migrate between blocks.  Evaluation is exact by good-world
    enumeration (the fuzzer/test scale), with the same grow-only padded
    domain semantics as the TI sessions. *)
module Bid : sig
  type bdelta =
    | B_set of string * Fact.t * Rational.t
        (** [(block, fact, p)]: insert [fact] into [block] or reweight
            it there; [p = 0] removes the alternative. *)
    | B_remove of Fact.t

  type t

  val create : ?tail:float -> Bid_table.t -> Fo.t -> t
  (** @raise Invalid_argument if [phi] has free variables or [tail] is
      outside [\[0,1)]. *)

  val query : t -> Fo.t
  val table : t -> Bid_table.t
  val tail : t -> float
  val epoch : t -> int
  val padding : t -> Value.t list

  val apply : t -> bdelta -> (unit, string) result
  (** [Error reason] — block mass would exceed one, the fact already
      belongs to a different block, or the marginal is outside
      [\[0,1\]] — leaves the session untouched. *)

  val prob : t -> Rational.t
  (** Exact [P(phi)], cached between deltas.
      @raise Invalid_argument when the table exceeds the enumeration
      cap (see {!Bid_table.worlds}). *)
end
