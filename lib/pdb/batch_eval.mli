(** Batched evaluation of many Boolean queries over one
    tuple-independent table and one shared knowledge-compilation store.

    A service evaluating a query {e set} over the same [(policy,
    truncation)] pair repeats three kinds of work when it loops over
    {!Query_eval.boolean}: the quantifier-rank padding of the evaluation
    domain is re-derived per call, structurally shared subformulas are
    re-compiled into fresh BDD managers that cannot remember each other's
    nodes, and each weighted model count re-walks DAG regions another
    member already priced.  This module amortises all three:

    - {b one padding}: the inert-value padding (Proposition 6.1's
      r-equivalence device) is computed once per batch at the {e maximum}
      quantifier rank over the padded members — sound because any
      [k >= quantifier_rank phi] inert values decide [phi] identically;
    - {b one store per shard}: all BDD-routed members of a shard compile
      into a single {!Bdd.manager}, so a shared subformula hits the same
      unique table and operation cache instead of being rebuilt;
    - {b one sweep}: the weighted model counts of a shard's members are
      folded by {!Bdd.fold_prob_many} under one shared memo — the cost is
      the size of the {e union} of the member DAGs, not the sum;
    - {b dichotomy first}: every member is offered to the lifted
      safe-plan engine before any compilation, so safe members never
      touch the BDD store (same routing, and same
      [query.safe_plan] / [query.bdd_fallback] counters, as
      {!Query_eval.boolean});
    - {b dedup}: syntactically identical members are evaluated once; the
      copies are answered from the representative.

    {b Determinism.}  Results are a pure function of [(table, queries,
    extra_domain)].  With the exact rational carrier they are moreover
    {e bit-identical} at any [domains] setting: sharding is decided by
    member index alone (never by runtime scheduling), each shard's
    ROBDDs are canonical for its manager, and the rational model count
    of a canonical function does not depend on which manager or variable
    order produced it.  Worker domains follow the same discipline as
    {!Mc_eval}: work is claimed through one atomic cursor, every result
    lands in a per-member slot, and instrumentation uses the
    [Atomic]-backed {!Stats} registry, so no increment is dropped.

    {b Member-wise semantics} (the metamorphic law the fuzzer checks):
    member [i] of [batch ~extra_domain ti qs] equals
    [Query_eval.boolean ~extra_domain:d ti qs.(i)] where [d] is
    [extra_domain] alone when [qs.(i)] contains a [Cmp] atom (inert
    values are distinguishable by order, so those members stay
    unpadded, as everywhere else in this code base) and
    [padding ti qs @ extra_domain] otherwise. *)

type route =
  | Lifted  (** answered by the safe-plan engine; no BDD was built *)
  | Compiled of int  (** compiled into the shared store of shard [i] *)
  | Duplicate of int
      (** syntactically equal to member [j], answered from its slot *)

type 'p member = { query : Fo.t; prob : 'p; route : route }

type 'p result = {
  members : 'p member array;  (** positionally aligned with the input *)
  padding : Value.t list;
      (** the batch's inert padding values (max rank over padded members) *)
  shards : int;  (** shard managers actually used (0 if none compiled) *)
  cache_size : int;
      (** {e effective} operation-cache entries per shard manager — the
          requested knob after {!Bdd.manager}'s power-of-two rounding *)
  lifted : int;  (** distinct members answered by the lifted engine *)
  compiled : int;  (** distinct members compiled to BDDs *)
  deduped : int;  (** members answered as duplicates *)
}

val padding : ?extra:Value.t list -> Ti_table.t -> Fo.t array -> Value.t list
(** The once-per-batch inert padding: [max quantifier_rank] fresh values
    over the non-[Cmp] members, distinct from every support value, every
    member's constants and [extra].  [[]] when no member needs padding.
    Exposed so a sequential loop can reproduce the batch semantics
    member by member. *)

module Make (C : Prob.CARRIER) : sig
  val batch :
    ?extra_domain:Value.t list ->
    ?tick:(unit -> unit) ->
    ?on_free:(int -> unit) ->
    ?cache_size:int ->
    ?gc_threshold:int ->
    ?domains:int ->
    Ti_table.t ->
    Fo.t array ->
    C.t result
  (** Evaluate the whole batch.  [domains] (default 1) caps the worker
      domains fanned over the compiled shards; with [domains = 1] the
      whole batch shares a single store (maximal sharing), larger values
      trade sharing for parallelism without changing exact-carrier
      results.  [tick] / [on_free] are the {!Bdd.manager} budget hooks,
      threaded to every shard manager — they may be called from worker
      domains, so they must be thread-safe (the {!Budget} hooks are).
      @raise Invalid_argument if [domains < 1], or some member has free
      variables. *)
end

val boolean :
  ?extra_domain:Value.t list ->
  ?tick:(unit -> unit) ->
  ?on_free:(int -> unit) ->
  ?cache_size:int ->
  ?gc_threshold:int ->
  ?domains:int ->
  Ti_table.t ->
  Fo.t array ->
  Rational.t result
(** {!Make}[(Prob.Rational_carrier).batch]: the exact instance whose
    results are bit-identical at any [domains] setting. *)
