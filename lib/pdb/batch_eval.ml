type route =
  | Lifted
  | Compiled of int
  | Duplicate of int

type 'p member = { query : Fo.t; prob : 'p; route : route }

type 'p result = {
  members : 'p member array;
  padding : Value.t list;
  shards : int;
  cache_size : int;
  lifted : int;
  compiled : int;
  deduped : int;
}

let require_sentence phi =
  match Fo.free_vars phi with
  | [] -> ()
  | fvs ->
    invalid_arg
      (Printf.sprintf "Batch_eval: query has free variables %s"
         (String.concat ", " (fvs : string list)))

(* Same counters as Query_eval's router — the registry hands back the
   identical counter objects, so routed members are counted in one place
   regardless of which entry point evaluated them. *)
let c_safe_plan = Stats.counter "query.safe_plan"
let c_bdd_fallback = Stats.counter "query.bdd_fallback"
let c_runs = Stats.counter "batch.runs"
let c_members = Stats.counter "batch.members"
let c_dedup = Stats.counter "batch.dedup.hit"

(* The weight cache is keyed on facts through [Fact.hash] — the batch
   hot path the allocation-free hash exists for: one probe per safe-plan
   grounding and per swept BDD node. *)
module FactH = Hashtbl.Make (struct
  type t = Fact.t

  let equal = Fact.equal
  let hash = Fact.hash
end)

(* Once-per-batch inert padding at the maximum quantifier rank over the
   padded members: k >= quantifier_rank phi inert values decide phi
   exactly as quantifier_rank phi do (r-equivalence, Proposition 6.1),
   so one padding serves every non-[Cmp] member.  The candidate values
   live in their own "\x01batch.pad" namespace and retry on collision
   with any support value, member constant, or caller-supplied extra. *)
let padding ?(extra = []) table queries =
  let rank =
    Array.fold_left
      (fun acc phi ->
        if Fo.has_cmp phi then acc
        else Stdlib.max acc (Fo.quantifier_rank phi))
      0 queries
  in
  if rank = 0 then []
  else begin
    let avoid =
      extra
      @ List.concat_map (fun f -> Fact.args f) (Ti_table.support table)
      @ List.concat_map Fo.constants (Array.to_list queries)
    in
    let rec choose attempt =
      let cand =
        List.init rank (fun i ->
            Value.Str (Printf.sprintf "\x01batch.pad.%d.%d" attempt i))
      in
      if List.exists (fun v -> List.exists (Value.equal v) avoid) cand then
        choose (attempt + 1)
      else cand
    in
    choose 0
  end

module Make (C : Prob.CARRIER) = struct
  let batch ?(extra_domain = []) ?tick ?on_free ?cache_size ?gc_threshold
      ?(domains = 1) ti queries =
    if domains < 1 then
      invalid_arg "Batch_eval.batch: domains must be positive";
    Array.iter require_sentence queries;
    let n = Array.length queries in
    Stats.incr c_runs;
    Stats.add c_members n;
    let eff_cache =
      Bdd.effective_cache_size
        (Option.value cache_size ~default:Bdd.default_cache_size)
    in
    let pads = padding ~extra:extra_domain ti queries in
    (* Syntactic dedup: a repeated member is answered from the slot of
       its first occurrence. *)
    let rep = Array.make n (-1) in
    let seen : (Fo.t, int) Hashtbl.t = Hashtbl.create (2 * n) in
    for i = 0 to n - 1 do
      match Hashtbl.find_opt seen queries.(i) with
      | Some j ->
        rep.(i) <- j;
        Stats.incr c_dedup
      | None ->
        Hashtbl.add seen queries.(i) i;
        rep.(i) <- i
    done;
    (* Per-fact weights converted to the carrier once, then probed
       read-only from every domain (a Hashtbl is safe to share when
       nobody mutates it). *)
    let wtbl = FactH.create ((2 * Ti_table.size ti) + 1) in
    List.iter
      (fun (f, p) -> FactH.replace wtbl f (C.of_rational p))
      (Ti_table.facts ti);
    let weight f =
      match FactH.find_opt wtbl f with Some w -> w | None -> C.zero
    in
    (* Dichotomy-aware routing, lifted engine first: safe members are
       answered here and never touch a BDD store. *)
    let module S = Safe_plan.Make (C) in
    let support = Ti_table.support ti in
    let probs : C.t option array = Array.make n None in
    let routes = Array.make n Lifted in
    let to_compile = ref [] in
    for i = 0 to n - 1 do
      if rep.(i) = i then begin
        match S.probability ~weight ~facts:support queries.(i) with
        | Some p ->
          Stats.incr c_safe_plan;
          probs.(i) <- Some p
        | None ->
          Stats.incr c_bdd_fallback;
          to_compile := i :: !to_compile
      end
    done;
    let comp = Array.of_list (List.rev !to_compile) in
    let nc = Array.length comp in
    let shards = if nc = 0 then 0 else Stdlib.min domains nc in
    if nc > 0 then begin
      let a = Lineage.alphabet support in
      (* Shard assignment is a function of member index alone (round
         robin over the compile list), never of runtime scheduling —
         the first half of the determinism argument.  The second half
         is that exact-carrier results do not depend on which manager
         compiled a member: ROBDDs are canonical and the rational model
         count is a property of the Boolean function. *)
      let buckets = Array.make shards [] in
      for j = nc - 1 downto 0 do
        buckets.(j mod shards) <- comp.(j) :: buckets.(j mod shards)
      done;
      let shard_members = Array.map Array.of_list buckets in
      let shard_err : exn option array = Array.make shards None in
      let run_shard s =
        let mine = shard_members.(s) in
        let exprs =
          Array.map
            (fun i ->
              let q = queries.(i) in
              let extra =
                if Fo.has_cmp q then extra_domain else pads @ extra_domain
              in
              Lineage.of_sentence ~extra a q)
            mine
        in
        (* First-occurrence variable order over the shard's concatenated
           lineages (the batch generalisation of Wmc.probability_expr's
           per-query order). *)
        let tbl = Hashtbl.create 64 in
        Array.iter
          (fun e ->
            List.iter
              (fun v ->
                if not (Hashtbl.mem tbl v) then
                  Hashtbl.add tbl v (Hashtbl.length tbl))
              (Bool_expr.occurrence_order e))
          exprs;
        let order v =
          match Hashtbl.find_opt tbl v with
          | Some r -> r
          | None -> v + Hashtbl.length tbl
        in
        let m = Bdd.manager ~order ?tick ?on_free ?cache_size ?gc_threshold () in
        (* Every compiled root is protected before the next member
           compiles, so a gc_threshold-triggered sweep at an of_expr
           safe point cannot collect an earlier member's diagram. *)
        let roots =
          Array.map
            (fun e ->
              let t = Bdd.of_expr m e in
              Bdd.protect t;
              t)
            exprs
        in
        let res =
          Bdd.fold_prob_many ~zero:C.zero ~one:C.one
            ~node:(fun v lo hi ->
              let p = weight (Lineage.fact_of_var a v) in
              C.add (C.mul p hi) (C.mul (C.compl p) lo))
            roots
        in
        Array.iteri
          (fun k i ->
            probs.(i) <- Some res.(k);
            routes.(i) <- Compiled s)
          mine;
        Array.iter Bdd.release roots
      in
      (* Mc_eval's worker discipline: one atomic cursor claims shards,
         results land in per-member slots (disjoint writes), failures
         are recorded per shard and re-raised deterministically (lowest
         shard first) after every domain joined. *)
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let s = Atomic.fetch_and_add next 1 in
          if s < shards then begin
            (try run_shard s with e -> shard_err.(s) <- Some e);
            loop ()
          end
        in
        loop ()
      in
      let spawned = List.init (shards - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned;
      for s = 0 to shards - 1 do
        match shard_err.(s) with Some e -> raise e | None -> ()
      done
    end;
    let lifted = ref 0 and compiled = ref 0 and deduped = ref 0 in
    let members =
      Array.init n (fun i ->
          let j = rep.(i) in
          let prob =
            match probs.(j) with Some p -> p | None -> assert false
          in
          if j <> i then begin
            incr deduped;
            { query = queries.(i); prob; route = Duplicate j }
          end
          else begin
            (match routes.(i) with
            | Lifted -> incr lifted
            | Compiled _ -> incr compiled
            | Duplicate _ -> assert false);
            { query = queries.(i); prob; route = routes.(i) }
          end)
    in
    {
      members;
      padding = pads;
      shards;
      cache_size = eff_cache;
      lifted = !lifted;
      compiled = !compiled;
      deduped = !deduped;
    }
end

module Exact = Make (Prob.Rational_carrier)

let boolean = Exact.batch
