type t = {
  schema : Schema.t option;
  probs : Rational.t Fact.Map.t; (* invariant: values in (0, 1] *)
}

let validate_prob f p =
  if not (Rational.is_probability p) then
    invalid_arg
      (Printf.sprintf "Ti_table: probability %s out of range for %s"
         (Rational.to_string p) (Fact.to_string f))

let validate_schema schema f =
  match schema with
  | Some s when not (Fact.conforms s f) ->
    invalid_arg
      (Printf.sprintf "Ti_table: fact %s does not conform to the schema"
         (Fact.to_string f))
  | _ -> ()

let create ?schema entries =
  let probs =
    List.fold_left
      (fun acc (f, p) ->
        validate_prob f p;
        validate_schema schema f;
        if Fact.Map.mem f acc then
          invalid_arg
            (Printf.sprintf "Ti_table: duplicate fact %s" (Fact.to_string f))
        else if Rational.is_zero p then acc
        else Fact.Map.add f p acc)
      Fact.Map.empty entries
  in
  { schema; probs }

let empty = { schema = None; probs = Fact.Map.empty }

let schema t = t.schema
let facts t = Fact.Map.bindings t.probs
let support t = List.map fst (facts t)

let prob t f =
  Option.value (Fact.Map.find_opt f t.probs) ~default:Rational.zero

let mem t f = Fact.Map.mem f t.probs
let size t = Fact.Map.cardinal t.probs

let add t f p =
  validate_prob f p;
  validate_schema t.schema f;
  if Rational.is_zero p then { t with probs = Fact.Map.remove f t.probs }
  else { t with probs = Fact.Map.add f p t.probs }

let remove t f = { t with probs = Fact.Map.remove f t.probs }

let expected_instance_size t =
  Fact.Map.fold (fun _ p acc -> Rational.add acc p) t.probs Rational.zero

let world_probability t inst =
  if not (Instance.for_all (fun f -> mem t f) inst) then Rational.zero
  else
    Fact.Map.fold
      (fun f p acc ->
        Rational.mul acc
          (if Instance.mem f inst then p else Rational.compl p))
      t.probs Rational.one

let worlds t =
  let entries = Array.of_list (facts t) in
  let n = Array.length entries in
  if n > 20 then invalid_arg "Ti_table.worlds: support too large to enumerate";
  Seq.init (1 lsl n) (fun mask ->
      let inst = ref Instance.empty and p = ref Rational.one in
      for i = 0 to n - 1 do
        let f, pf = entries.(i) in
        if mask land (1 lsl i) <> 0 then begin
          inst := Instance.add f !inst;
          p := Rational.mul !p pf
        end
        else p := Rational.mul !p (Rational.compl pf)
      done;
      (!inst, !p))

let sample t g =
  Fact.Map.fold
    (fun f p acc ->
      if Prng.bernoulli_rational g p then Instance.add f acc else acc)
    t.probs Instance.empty

let marginal_check t f =
  Seq.fold_left
    (fun acc (inst, p) ->
      if Instance.mem f inst then Rational.add acc p else acc)
    Rational.zero (worlds t)

let active_domain t =
  Instance.active_domain (Instance.of_list (support t))

let restrict t keep = { t with probs = Fact.Map.filter (fun f _ -> keep f) t.probs }

let to_string t =
  String.concat "\n"
    (List.map
       (fun (f, p) ->
         Printf.sprintf "%s %s" (Fact.to_string f) (Rational.to_string p))
       (facts t))

let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_channel oc t =
  output_string oc (to_string t);
  output_char oc '\n'

let located ?file ~line msg =
  let where =
    match file with
    | Some f -> Printf.sprintf "%s:%d" f line
    | None -> Printf.sprintf "line %d" line
  in
  invalid_arg (Printf.sprintf "Ti_table.of_lines: %s: %s" where msg)

(* One line of the text format: [R(args...) p], blank, or [# comment].
   Returns [None] for the latter two. *)
let parse_line ?file ~lnum line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    (* The probability is the text after the closing parenthesis. *)
    match String.rindex_opt line ')' with
    | None -> located ?file ~line:lnum (Printf.sprintf "no fact in %S" line)
    | Some i ->
      let fact_str = String.sub line 0 (i + 1) in
      let prob_str =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      if prob_str = "" then
        located ?file ~line:lnum
          (Printf.sprintf "missing probability in %S" line);
      let f =
        try Fact.of_string fact_str
        with Invalid_argument m | Failure m -> located ?file ~line:lnum m
      in
      let p =
        match Rational.of_string_opt prob_str with
        | Some p -> p
        | None ->
          located ?file ~line:lnum
            (Printf.sprintf "bad probability %S" prob_str)
      in
      if not (Rational.is_probability p) then
        located ?file ~line:lnum
          (Printf.sprintf "probability %s out of range for %s"
             (Rational.to_string p) (Fact.to_string f));
      Some (f, p)
  end

(* Streaming core shared by [of_lines] and [of_file]: one pass over the
   lines, so [of_file] never materializes the file and peak memory
   beyond the table itself is O(longest line).  Line numbers are 1-based
   over the input as given (comments and blank lines count), so errors
   point at the line an editor shows.

   Duplicate policy: repeating a fact with the same probability is
   harmless redundancy and collapses; repeating it with a different one
   is a contradiction and is rejected with both line numbers. *)
let of_line_seq ?file lines =
  let lnum = ref 0 and seen = ref Fact.Map.empty and acc = ref [] in
  Seq.iter
    (fun line ->
      incr lnum;
      match parse_line ?file ~lnum:!lnum line with
      | None -> ()
      | Some (f, p) -> (
        match Fact.Map.find_opt f !seen with
        | None ->
          seen := Fact.Map.add f (p, !lnum) !seen;
          acc := (f, p) :: !acc
        | Some (p0, l0) ->
          if not (Rational.equal p p0) then
            located ?file ~line:!lnum
              (Printf.sprintf
                 "duplicate fact %s with probability %s (already %s at line \
                  %d)"
                 (Fact.to_string f) (Rational.to_string p)
                 (Rational.to_string p0) l0)))
    lines;
  create (List.rev !acc)

let of_lines ?file lines = of_line_seq ?file (List.to_seq lines)

let of_file path =
  let ic = open_in path in
  (* Close the channel even when a parse error escapes the stream. *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let next () =
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None
      in
      of_line_seq ~file:path (Seq.of_dispenser next))
