module VSet = Set.Make (Value)
module ISet = Set.Make (Int)

type delta =
  | Insert of Fact.t * Rational.t
  | Delete of Fact.t
  | Reweight of Fact.t * Rational.t

let delta_fact = function Insert (f, _) | Delete f | Reweight (f, _) -> f

let delta_target = function
  | Insert (_, p) | Reweight (_, p) -> p
  | Delete _ -> Rational.zero

let delta_to_string = function
  | Insert (f, p) ->
    Printf.sprintf "insert %s %s" (Fact.to_string f) (Rational.to_string p)
  | Delete f -> Printf.sprintf "delete %s" (Fact.to_string f)
  | Reweight (f, p) ->
    Printf.sprintf "reweight %s %s" (Fact.to_string f) (Rational.to_string p)

let delta_of_string s =
  let s = String.trim s in
  let fail () = invalid_arg ("Delta_eval.delta_of_string: " ^ s) in
  match String.index_opt s ' ' with
  | None -> fail ()
  | Some i ->
    let op = String.sub s 0 i in
    let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    (* The probability is the last space-separated token; the fact text
       (which itself contains ", " between arguments) is everything
       before it. *)
    let fact_and_prob () =
      match String.rindex_opt rest ' ' with
      | None -> fail ()
      | Some j ->
        let fs = String.trim (String.sub rest 0 j) in
        let ps = String.sub rest (j + 1) (String.length rest - j - 1) in
        (Fact.of_string fs, Rational.of_string ps)
    in
    (match op with
    | "insert" ->
      let f, p = fact_and_prob () in
      Insert (f, p)
    | "delete" -> Delete (Fact.of_string rest)
    | "reweight" ->
      let f, p = fact_and_prob () in
      Reweight (f, p)
    | _ -> fail ())

let check_target d =
  let p = delta_target d in
  try Prob.check_probability_rational p
  with Invalid_argument _ ->
    invalid_arg
      (Printf.sprintf "Delta_eval: marginal %s outside [0,1] in %s"
         (Rational.to_string p) (delta_to_string d))

let apply_table tbl d =
  let f = delta_fact d in
  let p = check_target d in
  if Rational.is_zero p then Ti_table.remove tbl f else Ti_table.add tbl f p

let inverse_of tbl d =
  let f = delta_fact d in
  let w = Ti_table.prob tbl f in
  if Rational.is_zero w then Delete f else Reweight (f, w)

type apply_kind = Noop | Patched | Extended | Recompiled

let apply_kind_to_string = function
  | Noop -> "noop"
  | Patched -> "patched"
  | Extended -> "extended"
  | Recompiled -> "recompiled"

let c_noop = Stats.counter "delta.apply.noop"
let c_patched = Stats.counter "delta.apply.patched"
let c_extended = Stats.counter "delta.apply.extended"
let c_recompiled = Stats.counter "delta.apply.recompiled"
let c_folds = Stats.counter "delta.wmc.folds"
let c_fold_nodes = Stats.counter "delta.wmc.nodes_recomputed"

(* -------------------- shape analysis --------------------

   Same quantifier-chain analysis as the anytime session: a sentence
   [Q x1 ... xk. matrix] with a quantifier-free matrix and distinct
   bound names can absorb a fact with a fresh constant by joining the
   lineage of only the fresh ground instances onto the root. *)

type chain_kind = Ch_exists | Ch_forall

type shape =
  | Chain of chain_kind * string list * Fo.t
  | Opaque

let shape_of phi =
  let rec strip kind acc = function
    | Fo.Exists (x, f) when kind = Ch_exists -> strip kind (x :: acc) f
    | Fo.Forall (x, f) when kind = Ch_forall -> strip kind (x :: acc) f
    | f -> (List.rev acc, f)
  in
  let chain kind =
    let xs, matrix = strip kind [] phi in
    if
      Fo.is_quantifier_free matrix
      && List.length xs = List.length (List.sort_uniq String.compare xs)
    then Chain (kind, xs, matrix)
    else Opaque
  in
  match phi with
  | Fo.Exists _ -> chain Ch_exists
  | Fo.Forall _ -> chain Ch_forall
  | _ -> if Fo.is_quantifier_free phi then Chain (Ch_exists, [], phi) else Opaque

(* Inert padding values under a name no dataset uses; collisions with
   incoming facts are still detected and resolved by re-choosing (the
   namespace differs from Anytime's so stacked sessions never share
   padding identities). *)
let rec choose_padding ~avoid ~attempt k =
  let cand =
    List.init k (fun i ->
        Value.Str (Printf.sprintf "\x01delta.pad.%d.%d" attempt i))
  in
  if List.exists (fun v -> VSet.mem v avoid) cand then
    choose_padding ~avoid ~attempt:(attempt + 1) k
  else (VSet.of_list cand, attempt)

let fact_args f = Fact.args f

(* All k-tuples over [dom] using at least one value outside [old_dom] —
   the ground instances the previous diagram could not mention. *)
let fresh_tuples k dom old_dom =
  let rec go k =
    if k = 0 then Seq.return ([], false)
    else
      Seq.concat_map
        (fun (rest, has_fresh) ->
          Seq.map
            (fun v -> (v :: rest, has_fresh || not (VSet.mem v old_dom)))
            (List.to_seq dom))
        (go (k - 1))
  in
  Seq.filter_map
    (fun (vals, has_fresh) -> if has_fresh then Some vals else None)
    (go k)

let adom_union acc facts =
  List.fold_left
    (fun acc f ->
      List.fold_left (fun acc v -> VSet.add v acc) acc (fact_args f))
    acc facts

(* -------------------- TI sessions -------------------- *)

module Make (C : Prob.CARRIER) = struct
  type t = {
    phi : Fo.t;
    shape : shape;
    cmp_free : bool;
    pad_count : int;
    tail : float;
    mgr : Bdd.manager;
    memo : C.t Bdd.prob_memo;
    gc_ran : bool ref;  (* set by the manager's on_free hook *)
    mutable tbl : Ti_table.t;
    mutable afacts_rev : Fact.t list;  (* alphabet facts, newest first *)
    mutable alpha : Lineage.alphabet;
    mutable weights : C.t array;  (* variable -> current marginal *)
    mutable adom : VSet.t;  (* constants ∪ values ever seen (grow-only) *)
    mutable padding : VSet.t;
    mutable pad_attempt : int;
    mutable bdd : Bdd.t;  (* the session root, always protected *)
    mutable dirty : ISet.t;  (* weight-patched vars since last fold *)
    mutable memo_valid : bool;  (* false after a variable rebind *)
    mutable cached : C.t option;
    mutable epoch : int;
  }

  let weight_of p = C.of_rational p

  let compile_full t =
    Bdd.of_expr t.mgr
      (Lineage.of_sentence ~extra:(VSet.elements t.padding) t.alpha t.phi)

  let rebuild_weights t =
    t.weights <-
      Array.init (Lineage.alphabet_size t.alpha) (fun v ->
          weight_of (Ti_table.prob t.tbl (Lineage.fact_of_var t.alpha v)))

  (* Publish a new root: protect-then-release keeps a GC between the two
     from sweeping the incoming diagram. *)
  let set_root t bdd =
    if not (Bdd.equal bdd t.bdd) then begin
      Bdd.protect bdd;
      Bdd.release t.bdd;
      t.bdd <- bdd
    end;
    ignore (Bdd.maybe_gc t.mgr)

  let create ?(tail = 0.0) ?cache_size ?(gc_threshold = 1 lsl 16) tbl phi =
    if Fo.free_vars phi <> [] then
      invalid_arg "Delta_eval: query must be a sentence";
    if not (tail >= 0.0 && tail < 1.0) then
      invalid_arg "Delta_eval: tail must lie in [0, 1)";
    let gc_ran = ref false in
    (* Newest-first order: later inserts sit closer to the root, so
       delta-joins extend the diagram at the top and weight patches on
       recent facts dirty only a shallow slice. *)
    let mgr =
      Bdd.manager
        ~order:(fun v -> -v)
        ~on_free:(fun n -> if n > 0 then gc_ran := true)
        ?cache_size ~gc_threshold ()
    in
    let cmp_free = not (Fo.has_cmp phi) in
    let facts = Ti_table.support tbl in
    let adom = adom_union (VSet.of_list (Fo.constants phi)) facts in
    let pad_count = if cmp_free then Fo.quantifier_rank phi else 0 in
    let padding, pad_attempt =
      if pad_count = 0 then (VSet.empty, 0)
      else choose_padding ~avoid:adom ~attempt:0 pad_count
    in
    let t =
      {
        phi;
        shape = shape_of phi;
        cmp_free;
        pad_count;
        tail;
        mgr;
        memo = Bdd.prob_memo ();
        gc_ran;
        tbl;
        afacts_rev = List.rev facts;
        alpha = Lineage.alphabet facts;
        weights = [||];
        adom;
        padding;
        pad_attempt;
        bdd = Bdd.fls mgr;
        dirty = ISet.empty;
        memo_valid = true;
        cached = None;
        epoch = 0;
      }
    in
    rebuild_weights t;
    let bdd = compile_full t in
    Bdd.protect bdd;
    t.bdd <- bdd;
    t

  let query t = t.phi
  let table t = t.tbl
  let tail t = t.tail
  let epoch t = t.epoch
  let padding t = VSet.elements t.padding
  let inverse t d = inverse_of t.tbl d
  let live_nodes t = Bdd.node_count t.mgr
  let diagram_size t = Bdd.size t.bdd

  let patch t v target =
    t.weights.(v) <- weight_of target;
    t.dirty <- ISet.add v t.dirty;
    Stats.incr c_patched;
    Patched

  let recompile t =
    (* Surviving node indices keep their memoized counts (weights of
       existing variables are untouched on this path); a GC triggered by
       the compilation itself is caught by [gc_ran] at the next fold. *)
    set_root t (compile_full t);
    Stats.incr c_recompiled;
    Recompiled

  let delta_join t kind xs matrix old_dom =
    let k = List.length xs in
    let dom_list = VSet.elements (VSet.union t.adom t.padding) in
    let join =
      match kind with Ch_exists -> Bdd.disj | Ch_forall -> Bdd.conj
    in
    (* Every [of_expr] is a GC safe point, so the running accumulator is
       pinned join by join; the session root on [t.bdd] stays protected
       until the publish. *)
    let bdd =
      let acc = ref t.bdd in
      Bdd.protect !acc;
      Fun.protect
        ~finally:(fun () -> Bdd.release !acc)
        (fun () ->
          Seq.iter
            (fun vals ->
              let lin =
                Lineage.of_formula t.alpha (List.combine xs vals) matrix
              in
              let d = Bdd.of_expr t.mgr lin in
              let joined = join t.mgr !acc d in
              Bdd.protect joined;
              Bdd.release !acc;
              acc := joined)
            (fresh_tuples k dom_list old_dom);
          !acc)
    in
    set_root t bdd;
    Stats.incr c_extended;
    Extended

  (* A fact outside the alphabet, being set to a positive marginal. *)
  let absorb_new_atom t f =
    let args = fact_args f in
    let touches_padding = List.exists (fun v -> VSet.mem v t.padding) args in
    let fresh = List.exists (fun v -> not (VSet.mem v t.adom)) args in
    let old_dom = VSet.union t.adom t.padding in
    t.afacts_rev <- f :: t.afacts_rev;
    t.alpha <- Lineage.alphabet (List.rev t.afacts_rev);
    t.adom <- adom_union t.adom [ f ];
    let v =
      match Lineage.var_of_fact t.alpha f with
      | Some v -> v
      | None -> assert false
    in
    t.weights <- Array.append t.weights [| C.zero |];
    t.weights.(v) <- weight_of (Ti_table.prob t.tbl f);
    if touches_padding then begin
      (* The fact turns a padding value live: re-choose and recompile. *)
      let padding, attempt =
        choose_padding ~avoid:t.adom ~attempt:(t.pad_attempt + 1) t.pad_count
      in
      t.padding <- padding;
      t.pad_attempt <- attempt;
      recompile t
    end
    else if not fresh then
      (* All its values were already in the domain, so the old diagram
         compiled this ground atom to False: only a recompile (in the
         warm manager) can revive it. *)
      recompile t
    else
      match t.shape with
      | Chain (kind, xs, matrix) -> delta_join t kind xs matrix old_dom
      | Opaque -> recompile t

  (* Comparison queries carry no padding and an exact active domain: any
     support change rebinds the alphabet and recompiles. *)
  let rebuild_exact t =
    let facts = Ti_table.support t.tbl in
    t.afacts_rev <- List.rev facts;
    t.alpha <- Lineage.alphabet facts;
    t.adom <- adom_union (VSet.of_list (Fo.constants t.phi)) facts;
    rebuild_weights t;
    t.memo_valid <- false;
    t.dirty <- ISet.empty;
    recompile t

  let apply t d =
    let f = delta_fact d in
    let target = check_target d in
    let before = Ti_table.prob t.tbl f in
    if Rational.equal before target then begin
      Stats.incr c_noop;
      Noop
    end
    else begin
      t.tbl <-
        (if Rational.is_zero target then Ti_table.remove t.tbl f
         else Ti_table.add t.tbl f target);
      t.epoch <- t.epoch + 1;
      t.cached <- None;
      if t.cmp_free then
        match Lineage.var_of_fact t.alpha f with
        | Some v -> patch t v target
        | None ->
          (* [before = 0 <> target] here, so this is a genuine insert. *)
          absorb_new_atom t f
      else if
        (not (Rational.is_zero before)) && not (Rational.is_zero target)
      then
        match Lineage.var_of_fact t.alpha f with
        | Some v -> patch t v target
        | None -> assert false (* present fact, exact alphabet *)
      else rebuild_exact t
    end

  let prob t =
    match t.cached with
    | Some p -> p
    | None ->
      Stats.incr c_folds;
      let full = (not t.memo_valid) || !(t.gc_ran) in
      if full then Bdd.prob_memo_clear t.memo;
      let dirty =
        if full then fun _ -> true else fun v -> ISet.mem v t.dirty
      in
      let recomputed = ref 0 in
      let p =
        Bdd.fold_prob_memo ~memo:t.memo ~dirty ~zero:C.zero ~one:C.one
          ~node:(fun v lo hi ->
            incr recomputed;
            let w = t.weights.(v) in
            C.add (C.mul w hi) (C.mul (C.compl w) lo))
          t.bdd
      in
      Stats.add c_fold_nodes !recomputed;
      t.dirty <- ISet.empty;
      t.memo_valid <- true;
      t.gc_ran := false;
      t.cached <- Some p;
      p
end

module Exact = Make (Prob.Rational_carrier)
module Fast = Make (Prob.Float_carrier)
module Certified = Make (Prob.Interval_carrier)

(* -------------------- BID sessions -------------------- *)

module Bid = struct
  type bdelta =
    | B_set of string * Fact.t * Rational.t
    | B_remove of Fact.t

  type t = {
    phi : Fo.t;
    cmp_free : bool;
    pad_count : int;
    tail : float;
    mutable tbl : Bid_table.t;
    mutable adom : VSet.t;  (* grow-only for cmp-free queries *)
    mutable padding : VSet.t;
    mutable pad_attempt : int;
    mutable cached : Rational.t option;
    mutable epoch : int;
  }

  let create ?(tail = 0.0) tbl phi =
    if Fo.free_vars phi <> [] then
      invalid_arg "Delta_eval.Bid: query must be a sentence";
    if not (tail >= 0.0 && tail < 1.0) then
      invalid_arg "Delta_eval.Bid: tail must lie in [0, 1)";
    let cmp_free = not (Fo.has_cmp phi) in
    let adom =
      adom_union (VSet.of_list (Fo.constants phi)) (Bid_table.support tbl)
    in
    let pad_count = if cmp_free then Fo.quantifier_rank phi else 0 in
    let padding, pad_attempt =
      if pad_count = 0 then (VSet.empty, 0)
      else choose_padding ~avoid:adom ~attempt:0 pad_count
    in
    {
      phi;
      cmp_free;
      pad_count;
      tail;
      tbl;
      adom;
      padding;
      pad_attempt;
      cached = None;
      epoch = 0;
    }

  let query t = t.phi
  let table t = t.tbl
  let tail t = t.tail
  let epoch t = t.epoch
  let padding t = VSet.elements t.padding

  (* Rebuild the block list with [fact]'s marginal set to [p] inside
     [block]; [None] rejections carry the reason. *)
  let edited_blocks t block fact p =
    match Bid_table.block_of_fact t.tbl fact with
    | Some b when b <> block ->
      Error
        (Printf.sprintf "fact %s already belongs to block %s"
           (Fact.to_string fact) b)
    | home -> (
      let blocks = Bid_table.blocks t.tbl in
      let present = home <> None in
      let edit (bl : Bid_table.block) =
        if bl.Bid_table.block_id <> block then bl
        else
          let alts =
            List.filter
              (fun (f, _) -> not (Fact.equal f fact))
              bl.Bid_table.alternatives
          in
          let alts =
            if Rational.is_zero p then alts else alts @ [ (fact, p) ]
          in
          { bl with Bid_table.alternatives = alts }
      in
      let blocks =
        if present || List.exists (fun b -> b.Bid_table.block_id = block) blocks
        then List.map edit blocks
        else if Rational.is_zero p then blocks
        else blocks @ [ { Bid_table.block_id = block; alternatives = [ (fact, p) ] } ]
      in
      let blocks =
        List.filter (fun b -> b.Bid_table.alternatives <> []) blocks
      in
      let mass bl =
        Rational.sum (List.map snd bl.Bid_table.alternatives)
      in
      match
        List.find_opt
          (fun bl -> Rational.compare (mass bl) Rational.one > 0)
          blocks
      with
      | Some bl ->
        Error
          (Printf.sprintf "block %s mass %s would exceed 1"
             bl.Bid_table.block_id
             (Rational.to_string (mass bl)))
      | None -> (
        match Bid_table.create blocks with
        | tbl -> Ok tbl
        | exception Invalid_argument msg -> Error msg))

  let commit t tbl =
    t.tbl <- tbl;
    t.epoch <- t.epoch + 1;
    t.cached <- None;
    if t.cmp_free then begin
      t.adom <- adom_union t.adom (Bid_table.support tbl);
      if not (VSet.is_empty (VSet.inter t.adom t.padding)) then begin
        let padding, attempt =
          choose_padding ~avoid:t.adom ~attempt:(t.pad_attempt + 1)
            t.pad_count
        in
        t.padding <- padding;
        t.pad_attempt <- attempt
      end
    end
    else
      t.adom <-
        adom_union
          (VSet.of_list (Fo.constants t.phi))
          (Bid_table.support tbl)

  let apply t d =
    match d with
    | B_set (block, fact, p) ->
      if not (Rational.is_probability p) then
        Error
          (Printf.sprintf "marginal %s outside [0,1]" (Rational.to_string p))
      else if Rational.equal (Bid_table.prob t.tbl fact) p then Ok ()
      else (
        match edited_blocks t block fact p with
        | Ok tbl ->
          commit t tbl;
          Ok ()
        | Error _ as e -> e)
    | B_remove fact -> (
      match Bid_table.block_of_fact t.tbl fact with
      | None -> Ok ()
      | Some block -> (
        match edited_blocks t block fact Rational.zero with
        | Ok tbl ->
          commit t tbl;
          Ok ()
        | Error _ as e -> e))

  let prob t =
    match t.cached with
    | Some p -> p
    | None ->
      let domain =
        if t.cmp_free then VSet.elements (VSet.union t.adom t.padding)
        else
          Fo_eval.evaluation_domain
            (Instance.of_list (Bid_table.support t.tbl))
            t.phi []
      in
      let p =
        Seq.fold_left
          (fun acc (inst, w) ->
            let extra =
              List.filter
                (fun v ->
                  not
                    (List.exists (Value.equal v)
                       (Instance.active_domain inst)))
                domain
            in
            if Fo_eval.models ~extra_domain:extra inst t.phi then
              Rational.add acc w
            else acc)
          Rational.zero (Bid_table.worlds t.tbl)
      in
      t.cached <- Some p;
      p
end
