type mc_result = {
  estimate : float;
  std_error : float;
  samples : int;
}

let require_sentence phi =
  match Fo.free_vars phi with
  | [] -> ()
  | fvs ->
    invalid_arg
      (Printf.sprintf "Query_eval: query has free variables %s"
         (String.concat ", " (fvs : string list)))

(* The shared evaluation domain: active domain of the table's support plus
   the query's constants. *)
let eval_domain_ti ti phi =
  Fo_eval.evaluation_domain
    (Instance.of_list (Ti_table.support ti))
    phi []

let alphabet_of_ti ti = Lineage.alphabet (Ti_table.support ti)

let c_safe_plan = Stats.counter "query.safe_plan"
let c_bdd_fallback = Stats.counter "query.bdd_fallback"

module Make (C : Prob.CARRIER) = struct
  let weight_of_table ti f = C.of_rational (Ti_table.prob ti f)

  let boolean_bdd ?(extra_domain = []) ?tick ?on_free ?cache_size ?gc_threshold
      ti phi =
    require_sentence phi;
    let a = alphabet_of_ti ti in
    let lin = Lineage.of_sentence ~extra:extra_domain a phi in
    let module W = Wmc.Make (C) in
    W.probability_expr ?tick ?on_free ?cache_size ?gc_threshold
      ~weight:(fun v -> weight_of_table ti (Lineage.fact_of_var a v))
      lin

  let boolean_safe ?step ti phi =
    require_sentence phi;
    let module S = Safe_plan.Make (C) in
    S.probability ?step
      ~weight:(weight_of_table ti)
      ~facts:(Ti_table.support ti)
      phi

  let boolean ?(extra_domain = []) ?tick ?on_free ?cache_size ?gc_threshold ti
      phi =
    (* Dichotomy-aware routing: the lifted UCQ engine first, lineage +
       BDD for everything it rejects.  A safe plan quantifies over the
       values occurring in facts; an extension by inert values (occurring
       in no fact and not among the query's constants) cannot change the
       truth of a positive existential UCQ on any world, so the plan's
       answer is the padded answer and the fast path stays valid. *)
    match boolean_safe ti phi with
    | Some p ->
      Stats.incr c_safe_plan;
      p
    | None ->
      Stats.incr c_bdd_fallback;
      boolean_bdd ~extra_domain ?tick ?on_free ?cache_size ?gc_threshold ti phi
end

module Exact = Make (Prob.Rational_carrier)
module Fast = Make (Prob.Float_carrier)
module Certified = Make (Prob.Interval_carrier)

let boolean_enum ti phi =
  require_sentence phi;
  let domain = eval_domain_ti ti phi in
  Seq.fold_left
    (fun acc (inst, p) ->
      (* Evaluate against the fixed domain, not adom(world), so all
         engines share one semantics. *)
      let extra = List.filter (fun v ->
          not (List.exists (Value.equal v) (Instance.active_domain inst))) domain
      in
      if Fo_eval.models ~extra_domain:extra inst phi then Rational.add acc p
      else acc)
    Rational.zero (Ti_table.worlds ti)

let boolean_bdd_rational ti phi = Exact.boolean_bdd ti phi
let boolean_bdd_float ti phi = Fast.boolean_bdd ti phi
let boolean_bdd_interval ti phi = Certified.boolean_bdd ti phi
let boolean_safe ?step ti phi = Exact.boolean_safe ?step ti phi
let safe phi = Safe_plan.is_safe phi
let boolean = Exact.boolean

let boolean_mc ?(seed = 0xC0FFEE) ~samples ti phi =
  require_sentence phi;
  if samples <= 0 then invalid_arg "Query_eval.boolean_mc: samples <= 0";
  let g = Prng.create ~seed () in
  let domain = eval_domain_ti ti phi in
  let hits = ref 0 in
  for _ = 1 to samples do
    let world = Ti_table.sample ti g in
    let extra =
      List.filter
        (fun v -> not (List.exists (Value.equal v) (Instance.active_domain world)))
        domain
    in
    if Fo_eval.models ~extra_domain:extra world phi then incr hits
  done;
  let p = float_of_int !hits /. float_of_int samples in
  {
    estimate = p;
    std_error = sqrt (p *. (1.0 -. p) /. float_of_int samples);
    samples;
  }

let boolean_mc_adaptive ?seed ~eps ~delta ti phi =
  if not (eps > 0.0 && eps < 1.0) then
    invalid_arg "Query_eval.boolean_mc_adaptive: eps out of range";
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Query_eval.boolean_mc_adaptive: delta out of range";
  let samples =
    int_of_float (Float.ceil (log (2.0 /. delta) /. (2.0 *. eps *. eps)))
  in
  boolean_mc ?seed ~samples:(Stdlib.max 1 samples) ti phi

let boolean_karp_luby ?seed ~samples ti phi =
  require_sentence phi;
  let a = alphabet_of_ti ti in
  let lin = Lineage.of_sentence a phi in
  match Dnf.of_expr lin with
  | None -> None
  | Some [] -> Some { estimate = 0.0; std_error = 0.0; samples }
  | Some dnf ->
    let weight v =
      Rational.to_float (Ti_table.prob ti (Lineage.fact_of_var a v))
    in
    let e = Dnf.karp_luby ?seed ~samples ~weight dnf in
    Some
      {
        estimate = e.Dnf.value;
        std_error = e.Dnf.std_error;
        samples = e.Dnf.samples;
      }

let boolean_finite pdb phi =
  require_sentence phi;
  let universe = Instance.of_list (Finite_pdb.fact_universe pdb) in
  let domain = Fo_eval.evaluation_domain universe phi [] in
  List.fold_left
    (fun acc (inst, p) ->
      let extra =
        List.filter
          (fun v -> not (List.exists (Value.equal v) (Instance.active_domain inst)))
          domain
      in
      if Fo_eval.models ~extra_domain:extra inst phi then Rational.add acc p
      else acc)
    Rational.zero (Finite_pdb.worlds pdb)

(* Enumerate candidate valuations of the free variables over the domain. *)
let valuations domain k =
  let rec go k =
    if k = 0 then Seq.return []
    else
      Seq.concat_map
        (fun rest -> Seq.map (fun v -> v :: rest) (List.to_seq domain))
        (go (k - 1))
  in
  Seq.map List.rev (go k)

let marginals_generic ~prob_sentence ~domain phi =
  let fvs = Fo.free_vars phi in
  let k = List.length fvs in
  if k = 0 then begin
    let p = prob_sentence phi in
    if Rational.is_zero p then [] else [ ([||], p) ]
  end
  else if k > 3 then
    invalid_arg "Query_eval.marginals: more than 3 free variables"
  else
    valuations domain k
    |> Seq.filter_map (fun vals ->
           let bindings = List.combine fvs vals in
           let grounded = Fo.substitute bindings phi in
           let p = prob_sentence grounded in
           if Rational.is_zero p then None
           else Some (Array.of_list vals, p))
    |> List.of_seq
    |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let marginals ?cache_size ?gc_threshold ti phi =
  marginals_generic
    ~prob_sentence:(fun s -> boolean ?cache_size ?gc_threshold ti s)
    ~domain:(eval_domain_ti ti phi)
    phi

let marginals_finite pdb phi =
  let universe = Instance.of_list (Finite_pdb.fact_universe pdb) in
  marginals_generic
    ~prob_sentence:(fun s -> boolean_finite pdb s)
    ~domain:(Fo_eval.evaluation_domain universe phi [])
    phi
