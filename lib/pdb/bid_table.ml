type block = { block_id : string; alternatives : (Fact.t * Rational.t) list }

module SMap = Map.Make (String)

type t = {
  blocks : block list; (* in creation order *)
  fact_block : string Fact.Map.t;
  fact_prob : Rational.t Fact.Map.t;
}

let create ?schema blocks =
  let _, fact_block, fact_prob =
    List.fold_left
      (fun (ids, fb, fp) b ->
        if SMap.mem b.block_id ids then
          invalid_arg
            (Printf.sprintf "Bid_table: duplicate block id %s" b.block_id);
        let total =
          List.fold_left
            (fun acc (f, p) ->
              if not (Rational.is_probability p) then
                invalid_arg
                  (Printf.sprintf "Bid_table: probability %s out of range"
                     (Rational.to_string p));
              (match schema with
               | Some s when not (Fact.conforms s f) ->
                 invalid_arg
                   (Printf.sprintf "Bid_table: fact %s does not conform"
                      (Fact.to_string f))
               | _ -> ());
              Rational.add acc p)
            Rational.zero b.alternatives
        in
        if Rational.compare total Rational.one > 0 then
          invalid_arg
            (Printf.sprintf "Bid_table: block %s sums to %s > 1" b.block_id
               (Rational.to_string total));
        let fb, fp =
          List.fold_left
            (fun (fb, fp) (f, p) ->
              if Fact.Map.mem f fb then
                invalid_arg
                  (Printf.sprintf "Bid_table: fact %s occurs twice"
                     (Fact.to_string f))
              else (Fact.Map.add f b.block_id fb, Fact.Map.add f p fp))
            (fb, fp) b.alternatives
        in
        (SMap.add b.block_id () ids, fb, fp))
      (SMap.empty, Fact.Map.empty, Fact.Map.empty)
      blocks
  in
  { blocks; fact_block; fact_prob }

let blocks t = t.blocks
let block_of_fact t f = Fact.Map.find_opt f t.fact_block

let prob t f =
  Option.value (Fact.Map.find_opt f t.fact_prob) ~default:Rational.zero

let find_block t id =
  match List.find_opt (fun b -> b.block_id = id) t.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Bid_table: unknown block %s" id)

let block_slack t id =
  let b = find_block t id in
  Rational.compl
    (List.fold_left (fun acc (_, p) -> Rational.add acc p) Rational.zero
       b.alternatives)

let support t = List.map fst (Fact.Map.bindings t.fact_prob)
let size t = Fact.Map.cardinal t.fact_prob
let num_blocks t = List.length t.blocks

let expected_instance_size t =
  Fact.Map.fold (fun _ p acc -> Rational.add acc p) t.fact_prob Rational.zero

let is_good_instance t inst =
  Instance.for_all (fun f -> Fact.Map.mem f t.fact_block) inst
  &&
  (* no two facts from the same block *)
  let seen = Hashtbl.create 8 in
  let ok = ref true in
  Instance.iter
    (fun f ->
      let b = Fact.Map.find f t.fact_block in
      if Hashtbl.mem seen b then ok := false else Hashtbl.add seen b ())
    inst;
  !ok

let world_probability t inst =
  if not (is_good_instance t inst) then Rational.zero
  else
    List.fold_left
      (fun acc b ->
        (* the factor for block b: p of its chosen fact, or its slack *)
        let chosen =
          List.find_opt (fun (f, _) -> Instance.mem f inst) b.alternatives
        in
        let factor =
          match chosen with
          | Some (_, p) -> p
          | None -> block_slack t b.block_id
        in
        Rational.mul acc factor)
      Rational.one t.blocks

let worlds t =
  let choice_counts =
    List.map (fun b -> List.length b.alternatives + 1) t.blocks
  in
  let total = List.fold_left ( * ) 1 choice_counts in
  if total > 1 lsl 20 then
    invalid_arg "Bid_table.worlds: too many worlds to enumerate";
  (* Mixed-radix enumeration: digit 0 = no fact, digit i = alternative i-1. *)
  let blocks = Array.of_list t.blocks in
  Seq.init total (fun code ->
      let inst = ref Instance.empty and p = ref Rational.one in
      let c = ref code in
      Array.iter
        (fun b ->
          let k = List.length b.alternatives + 1 in
          let d = !c mod k in
          c := !c / k;
          if d = 0 then p := Rational.mul !p (block_slack t b.block_id)
          else begin
            let f, pf = List.nth b.alternatives (d - 1) in
            inst := Instance.add f !inst;
            p := Rational.mul !p pf
          end)
        blocks;
      (!inst, !p))

let sample t g =
  List.fold_left
    (fun acc b ->
      (* Draw one alternative (or none) per the block law.  Weights are
         converted to floats: a per-draw error below one float ulp, which
         is negligible against sampling noise. *)
      let weights =
        Array.of_list
          (Rational.to_float (block_slack t b.block_id)
           :: List.map (fun (_, p) -> Rational.to_float p) b.alternatives)
      in
      let choice = Prng.categorical g weights in
      if choice = 0 then acc
      else Instance.add (fst (List.nth b.alternatives (choice - 1))) acc)
    Instance.empty t.blocks

let of_ti ti =
  create
    (List.map
       (fun (f, p) ->
         { block_id = Fact.to_string f; alternatives = [ (f, p) ] })
       (Ti_table.facts ti))

let ti_simulation t =
  (* Chain rule per block: alternative i of block b is chosen iff the
     independent event Choose(b, i) fires and no earlier Choose(b, j)
     does; P(Choose(b,i)) = p_i / (1 - sum_{j<i} p_j) makes the induced
     selection law exactly the block law. *)
  let choose_entries = ref [] in
  let cases = ref [] (* (target fact, block idx, alt idx) *) in
  List.iteri
    (fun bi b ->
      let prefix = ref Rational.zero in
      List.iteri
        (fun ai (f, p) ->
          if not (Rational.is_zero p) then begin
            let denom = Rational.compl !prefix in
            (* denom > 0: prefix < 1 whenever an alternative with p > 0
               remains, since the block sums to at most 1. *)
            let r = Rational.div p denom in
            choose_entries :=
              (Fact.make "Choose" [ Value.Int bi; Value.Int ai ], r)
              :: !choose_entries;
            cases := (f, bi, ai) :: !cases
          end;
          prefix := Rational.add !prefix p)
        b.alternatives)
    t.blocks;
  let aux = Ti_table.create (List.rev !choose_entries) in
  (* One view formula per target relation. *)
  let rels =
    List.sort_uniq String.compare
      (List.map (fun (f, _, _) -> Fact.rel f) !cases)
  in
  let views =
    List.map
      (fun rel ->
        let arity =
          match List.find_opt (fun (f, _, _) -> Fact.rel f = rel) !cases with
          | Some (f, _, _) -> Fact.arity f
          | None -> assert false
        in
        let vars = List.init arity (fun k -> Printf.sprintf "x%d" k) in
        let disjuncts =
          List.filter_map
            (fun (f, bi, ai) ->
              if Fact.rel f <> rel || Fact.arity f <> arity then None
              else begin
                let arg_eqs =
                  List.mapi
                    (fun k v -> Fo.Eq (Fo.v (List.nth vars k), Fo.c v))
                    (Fact.args f)
                in
                let chosen =
                  Fo.atom "Choose" [ Fo.cint bi; Fo.cint ai ]
                in
                let earlier_blocked =
                  List.filter_map
                    (fun (_, bj, aj) ->
                      if bj = bi && aj < ai then
                        Some (Fo.Not (Fo.atom "Choose" [ Fo.cint bj; Fo.cint aj ]))
                      else None)
                    !cases
                in
                Some (Fo.conj (arg_eqs @ [ chosen ] @ earlier_blocked))
              end)
            !cases
        in
        (rel, Fo.disj disjuncts))
      rels
  in
  (aux, views)

let to_string t =
  String.concat "\n"
    (List.map
       (fun b ->
         Printf.sprintf "%s: %s" b.block_id
           (String.concat " | "
              (List.map
                 (fun (f, p) ->
                   Printf.sprintf "%s %s" (Fact.to_string f)
                     (Rational.to_string p))
                 b.alternatives)))
       t.blocks)

let located ?file ~line msg =
  let where =
    match file with
    | Some f -> Printf.sprintf "%s:%d" f line
    | None -> Printf.sprintf "line %d" line
  in
  invalid_arg (Printf.sprintf "Bid_table.of_lines: %s: %s" where msg)

let of_line_seq ?file lines =
  (* One block per line, the same format [to_string] emits:
     [block_id: R(args) p | S(args) q | ...].  Blank lines and '#'
     comments are ignored; 1-based line numbers in every error. *)
  let parse_alt ~lnum s =
    let s = String.trim s in
    match String.rindex_opt s ')' with
    | None ->
      located ?file ~line:lnum
        (Printf.sprintf "no fact in alternative %S" s)
    | Some i ->
      let fact_str = String.sub s 0 (i + 1) in
      let prob_str =
        String.trim (String.sub s (i + 1) (String.length s - i - 1))
      in
      if prob_str = "" then
        located ?file ~line:lnum
          (Printf.sprintf "missing probability in alternative %S" s);
      let f =
        try Fact.of_string fact_str
        with Invalid_argument m | Failure m -> located ?file ~line:lnum m
      in
      let p =
        match Rational.of_string_opt prob_str with
        | Some p -> p
        | None ->
          located ?file ~line:lnum
            (Printf.sprintf "bad probability %S" prob_str)
      in
      if not (Rational.is_probability p) then
        located ?file ~line:lnum
          (Printf.sprintf "probability %s out of range for %s"
             (Rational.to_string p) (Fact.to_string f));
      (f, p)
  in
  let parse_block_line ~lnum line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else begin
      match String.index_opt line ':' with
      | None ->
        located ?file ~line:lnum
          (Printf.sprintf "no 'block_id:' prefix in %S" line)
      | Some c ->
        let block_id = String.trim (String.sub line 0 c) in
        if block_id = "" then located ?file ~line:lnum "empty block id";
        let rest =
          String.trim (String.sub line (c + 1) (String.length line - c - 1))
        in
        let alternatives =
          if rest = "" then []
          else List.map (parse_alt ~lnum) (String.split_on_char '|' rest)
        in
        (* Contradictory duplicates within the block are caught here
           with the line number; [create] would reject them too, but
           without a location. *)
        let rec dup_check seen = function
          | [] -> ()
          | (f, p) :: rest ->
            (match List.find_opt (fun (f0, _) -> Fact.equal f f0) seen with
            | Some (_, p0) when not (Rational.equal p p0) ->
              located ?file ~line:lnum
                (Printf.sprintf
                   "duplicate fact %s with probabilities %s and %s"
                   (Fact.to_string f) (Rational.to_string p0)
                   (Rational.to_string p))
            | _ -> ());
            dup_check ((f, p) :: seen) rest
        in
        dup_check [] alternatives;
        (* Same-probability repeats collapse (mirrors Ti_table). *)
        let alternatives =
          List.fold_left
            (fun acc (f, p) ->
              if List.exists (fun (f0, _) -> Fact.equal f f0) acc then acc
              else (f, p) :: acc)
            [] alternatives
          |> List.rev
        in
        Some { block_id; alternatives }
    end
  in
  (* Streaming fold: one pass, duplicate block ids rejected as they
     arrive (with the first occurrence's line), blocks accumulated in
     order.  Peak memory beyond the table itself is O(longest line). *)
  let lnum = ref 0 and seen = ref SMap.empty and acc = ref [] in
  Seq.iter
    (fun line ->
      incr lnum;
      match parse_block_line ~lnum:!lnum line with
      | None -> ()
      | Some b -> (
        match SMap.find_opt b.block_id !seen with
        | Some l0 ->
          located ?file ~line:!lnum
            (Printf.sprintf "duplicate block id %s (already at line %d)"
               b.block_id l0)
        | None ->
          seen := SMap.add b.block_id !lnum !seen;
          acc := b :: !acc))
    lines;
  create (List.rev !acc)

let of_lines ?file lines = of_line_seq ?file (List.to_seq lines)

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let next () =
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None
      in
      of_line_seq ~file:path (Seq.of_dispenser next))

let pp fmt t = Format.pp_print_string fmt (to_string t)
