module Make (C : Prob.CARRIER) = struct
  let probability ~weight (t : Bdd.t) : C.t =
    Bdd.fold_prob ~zero:C.zero ~one:C.one
      ~node:(fun v plo phi ->
        let p = weight v in
        C.add (C.mul p phi) (C.mul (C.compl p) plo))
      t

  let probability_expr ?tick ?on_free ?cache_size ?gc_threshold ~weight e =
    (* First-occurrence variable order: keeps co-occurring variables
       adjacent (linear BDDs for join lineages where a sorted-by-relation
       order is exponential). *)
    let order =
      let tbl = Hashtbl.create 64 in
      List.iteri (fun rank v -> Hashtbl.add tbl v rank) (Bool_expr.occurrence_order e);
      fun v ->
        match Hashtbl.find_opt tbl v with
        | Some r -> r
        | None -> v + Hashtbl.length tbl
    in
    let m = Bdd.manager ~order ?tick ?on_free ?cache_size ?gc_threshold () in
    probability ~weight (Bdd.of_expr m e)
end

let float_probability ~weight e =
  let module M = Make (Prob.Float_carrier) in
  M.probability_expr ~weight e

let rational_probability ~weight e =
  let module M = Make (Prob.Rational_carrier) in
  M.probability_expr ~weight e

let interval_probability ~weight e =
  let module M = Make (Prob.Interval_carrier) in
  M.probability_expr ~weight e
