(** Weighted model counting over BDDs.

    If the variables of a Boolean function are independent events with
    known marginal probabilities (exactly the situation for lineages of
    queries over tuple-independent PDBs), the probability that the
    function holds is computed in one linear pass over its BDD:
    [P(node) = p(var) * P(hi) + (1 - p(var)) * P(lo)].

    Functorized over the probability carrier so the same code yields fast
    float answers, exact rational answers, or certified interval
    enclosures. *)

module Make (C : Prob.CARRIER) : sig
  val probability : weight:(int -> C.t) -> Bdd.t -> C.t
  (** [weight v] is the marginal probability of variable [v]; it is
      consulted only on the support. *)

  val probability_expr :
    ?tick:(unit -> unit) ->
    ?on_free:(int -> unit) ->
    ?cache_size:int ->
    ?gc_threshold:int ->
    weight:(int -> C.t) ->
    Bool_expr.t ->
    C.t
  (** Convenience: compile to a fresh BDD, then count.  [tick],
      [on_free], [cache_size] and [gc_threshold] are forwarded to
      {!Bdd.manager}: [tick] is called per fresh node and may raise to
      abort a blowing-up compilation; [on_free] refunds nodes reclaimed
      by GC when [gc_threshold] enables it. *)
end

val float_probability : weight:(int -> float) -> Bool_expr.t -> float
val rational_probability :
  weight:(int -> Rational.t) -> Bool_expr.t -> Rational.t
val interval_probability :
  weight:(int -> Interval.t) -> Bool_expr.t -> Interval.t
