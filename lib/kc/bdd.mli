(** Reduced ordered binary decision diagrams with hash-consing.

    The workhorse of exact probabilistic inference over lineage
    expressions: compiling a lineage to a BDD makes its weighted model
    count linear in the BDD size (see {!Wmc}).  Built from scratch — the
    sealed environment has no BDD package.

    The kernel is tuned for throughput: nodes live in struct-of-arrays
    storage addressed by integer index, the unique table is an
    open-addressing int table, and all operations ([conj]/[disj]/[xor]/
    [neg]/[ite]) share one direct-mapped lossy operation cache keyed by
    packed tagged ints — the hot lookup path allocates nothing.

    A {!manager} owns the node store; nodes from different managers must
    not be mixed (binary operations raise [Invalid_argument] if they
    are).  Managers optionally run a root-registered mark-and-sweep GC of
    the node store: see {!protect}, {!release} and {!gc}.  GC runs only
    at safe points inside {!of_expr} (between sub-compilations) or when
    {!gc}/{!maybe_gc} is called explicitly — never inside an [apply]
    recursion — so results of individual operations are stable until the
    next compilation or explicit collection. *)

type manager
type t

val manager :
  ?order:(int -> int) ->
  ?tick:(unit -> unit) ->
  ?on_free:(int -> unit) ->
  ?cache_size:int ->
  ?gc_threshold:int ->
  unit ->
  manager
(** [order] maps variable indices to levels: smaller level = closer to the
    root.  Default is the identity.  The order must be injective on the
    variables used.

    [tick] is called once per freshly allocated node, {e before} the node
    enters the unique table, and may raise to abort a compilation that is
    blowing up (the manager is left consistent: the aborted node was
    never added).  This is the hook a resource governor uses to cap BDD
    growth without the BDD layer depending on it.

    [on_free n] is the inverse hook: called after a garbage collection
    that freed [n] nodes, so the governor can refund their budget — the
    pair keeps {!Budget}-style accounting keyed to {e live} nodes.

    [cache_size] is the number of entries in the direct-mapped operation
    cache (rounded up to a power of two >= 64; default [2^11] =
    {!default_cache_size}).  The cache is lossy: a conflicting entry
    overwrites, never chains.  The rounding is observable: query the
    size actually in effect with {!cache_size} (on a manager) or
    {!effective_cache_size} (on a requested value), so configuration
    reports never echo a knob the kernel silently adjusted.

    [gc_threshold] triggers an automatic collection at the next safe
    point once that many nodes have been allocated since the previous
    one (default [max_int]: automatic GC off).
    @raise Invalid_argument if either size is not positive. *)

val tru : manager -> t
val fls : manager -> t
val var : manager -> int -> t

val neg : manager -> t -> t
val conj : manager -> t -> t -> t
val disj : manager -> t -> t -> t
val xor : manager -> t -> t -> t

val ite : manager -> t -> t -> t -> t
(** If-then-else as a cached primitive (not three binary applies):
    constant and repeated-argument triples are simplified away before the
    cofactor recursion, and general triples hit the shared operation
    cache directly. *)

val of_expr : manager -> Bool_expr.t -> t
(** Compile a Boolean expression.  [And]/[Or] lists are combined by a
    size-sorted balanced fold (small operands first, pairwise rounds)
    rather than a left fold — O(n log n) instead of O(n^2) applies on the
    long independent disjunctions typical of lineages.  Between
    sub-compilations the manager may run GC if [gc_threshold] is set;
    intermediate results are rooted internally. *)

(** {1 Garbage collection}

    The unique table only ever grows unless roots are registered and
    {!gc} (or the [gc_threshold] automatism) runs.  Sessions that keep a
    manager alive across many compilations — e.g. anytime evaluation —
    protect their current diagram and collect between steps, so
    {!node_count} and the [tick] budget account live nodes instead of
    every node ever built. *)

val protect : t -> unit
(** Register the BDD's root against collection.  Counted: [n] calls need
    [n] {!release}s. *)

val release : t -> unit
(** Undo one {!protect}.  Releasing a root that is not protected is a
    no-op. *)

val gc : manager -> int
(** Mark from the protected roots and sweep everything unreachable;
    returns the number of nodes freed.  The operation cache is
    invalidated (freed indices may be reused), the unique table rebuilt
    over live nodes, and [on_free] is told the freed count.  Results of
    earlier operations that were not protected (directly or as
    descendants of a root) are dangling after a sweep — hold only
    protected diagrams across a collection. *)

val maybe_gc : manager -> int
(** Run {!gc} iff the allocations since the last sweep reached the
    manager's [gc_threshold]; returns the number of nodes freed (0 when
    no collection ran).  This is the safe point [of_expr] calls between
    sub-compilations. *)

val is_tru : t -> bool
val is_fls : t -> bool

val equal : t -> t -> bool
(** Constant-time: ROBDDs are canonical per manager.  [false] for nodes
    of different managers. *)

val size : t -> int
(** Number of distinct internal nodes reachable from the root. *)

val node_count : manager -> int
(** {e Live} nodes in the manager: allocated and not yet swept.  Before
    any GC this equals the number of nodes ever created. *)

val allocated_count : manager -> int
(** Total nodes ever allocated, including swept ones — the monotone
    series [tick] sees. *)

val peak_count : manager -> int
(** High-water mark of {!node_count}. *)

val cache_size : manager -> int
(** The {e effective} number of operation-cache entries — the requested
    [cache_size] rounded up to a power of two >= 64, never the raw
    request. *)

val effective_cache_size : int -> int
(** [effective_cache_size requested] is the operation-cache size
    {!manager} would actually use for [?cache_size:requested] — the same
    power-of-two rounding, exposed so front ends can report the true
    configuration without building a manager.
    @raise Invalid_argument if [requested] is not positive. *)

val default_cache_size : int
(** The [cache_size] used when the knob is omitted ([2^11]). *)

val eval : (int -> bool) -> t -> bool

val support : t -> int list
(** Variables the function actually depends on, sorted. *)

val sat_count : t -> over:int list -> Bigint.t
(** Number of satisfying assignments over the given variable set, which
    must contain the support. @raise Invalid_argument otherwise. *)

val any_sat : t -> (int * bool) list option
(** A satisfying partial assignment (over the support), or [None] for the
    constant-false BDD.  Linear in the DAG size: UNSAT subtrees are
    memoized, so shared false-heavy nodes are abandoned once instead of
    once per path. *)

val restrict : manager -> t -> int -> bool -> t
(** Cofactor: fix one variable. *)

val fold_prob : zero:'a -> one:'a -> node:(int -> 'a -> 'a -> 'a) -> t -> 'a
(** Memoized bottom-up fold: each distinct node is visited once;
    [node v lo hi] receives the results for the low and high children.
    This is the single pass weighted model counting reduces to. *)

val fold_prob_many :
  zero:'a -> one:'a -> node:(int -> 'a -> 'a -> 'a) -> t array -> 'a array
(** {!fold_prob} over a batch of roots of {e one} manager, sharing a
    single memo table across the whole sweep: a node reachable from
    several roots contributes one [node] call total, so the cost of
    counting a batch is the size of the {e union} of the DAGs, not the
    sum.  Results are positionally aligned with the input.  Returns
    [[||]] on the empty batch.
    @raise Invalid_argument if the roots span different managers. *)

(** {1 Incremental weighted counting}

    A {!prob_memo} keeps per-node fold results alive {e across} calls,
    so that re-counting after a small weight change only pays [node]
    calls on the slice of the DAG that can see a changed variable —
    clean subgraphs are served from the memo without touching the
    (possibly expensive) value arithmetic.  Node indices are only
    stable between sweeps: clear the memo after anything that may have
    run {!gc}, and after any structural recompilation that rebinds what
    a variable means. *)

type 'a prob_memo

val prob_memo : unit -> 'a prob_memo
val prob_memo_clear : 'a prob_memo -> unit

val prob_memo_size : 'a prob_memo -> int
(** Number of node entries currently held (diagnostics). *)

val fold_prob_memo :
  memo:'a prob_memo ->
  dirty:(int -> bool) ->
  zero:'a ->
  one:'a ->
  node:(int -> 'a -> 'a -> 'a) ->
  t ->
  'a
(** {!fold_prob} with a persistent memo: [node v lo hi] runs only for
    nodes whose subtree mentions a variable with [dirty v = true], or
    that have no memo entry yet (fresh nodes); every other node reuses
    its stored value.  The traversal itself still visits the whole DAG
    (cheap pointer walk) — what is skipped is the value arithmetic.
    All freshly computed values replace their memo entries, so calling
    with [dirty = fun _ -> false] after a full pass is a pure replay. *)

val pp : Format.formatter -> t -> unit
