(** Reduced ordered binary decision diagrams with hash-consing.

    The workhorse of exact probabilistic inference over lineage
    expressions: compiling a lineage to a BDD makes its weighted model
    count linear in the BDD size (see {!Wmc}).  Built from scratch — the
    sealed environment has no BDD package.

    A {!manager} owns the unique table; nodes from different managers must
    not be mixed. *)

type manager
type t

val manager : ?order:(int -> int) -> ?tick:(unit -> unit) -> unit -> manager
(** [order] maps variable indices to levels: smaller level = closer to the
    root.  Default is the identity.  The order must be injective on the
    variables used.

    [tick] is called once per freshly allocated node, {e before} the node
    enters the unique table, and may raise to abort a compilation that is
    blowing up (the manager is left consistent: the aborted node was
    never added).  This is the hook a resource governor uses to cap BDD
    growth without the BDD layer depending on it. *)

val tru : manager -> t
val fls : manager -> t
val var : manager -> int -> t

val neg : manager -> t -> t
val conj : manager -> t -> t -> t
val disj : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val of_expr : manager -> Bool_expr.t -> t

val is_tru : t -> bool
val is_fls : t -> bool
val equal : t -> t -> bool
(** Constant-time: ROBDDs are canonical per manager. *)

val size : t -> int
(** Number of distinct internal nodes reachable from the root. *)

val node_count : manager -> int
(** Total nodes ever created in the manager (unique-table size). *)

val eval : (int -> bool) -> t -> bool

val support : t -> int list
(** Variables the function actually depends on, sorted. *)

val sat_count : t -> over:int list -> Bigint.t
(** Number of satisfying assignments over the given variable set, which
    must contain the support. @raise Invalid_argument otherwise. *)

val any_sat : t -> (int * bool) list option
(** A satisfying partial assignment (over the support), or [None] for the
    constant-false BDD. *)

val restrict : manager -> t -> int -> bool -> t
(** Cofactor: fix one variable. *)

val fold_prob : zero:'a -> one:'a -> node:(int -> 'a -> 'a -> 'a) -> t -> 'a
(** Memoized bottom-up fold: each distinct node is visited once;
    [node v lo hi] receives the results for the low and high children.
    This is the single pass weighted model counting reduces to. *)

val pp : Format.formatter -> t -> unit
