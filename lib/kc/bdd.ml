(* Reduced ordered BDDs with a per-manager unique table and operation
   caches.  Canonicity invariant: no node has lo == hi, and no two
   distinct nodes have equal (var, lo, hi); hence semantic equality of
   functions is pointer/id equality of roots. *)

type t =
  | Leaf of bool
  | Node of { id : int; level : int; var : int; lo : t; hi : t }

type op = Op_and | Op_or | Op_xor

(* Hot-path instrumentation: single-int bumps, read via Stats.snapshot. *)
let c_unique_hit = Stats.counter "bdd.unique_hit"
let c_nodes = Stats.counter "bdd.nodes_allocated"
let c_apply_hit = Stats.counter "bdd.apply_hit"
let c_apply_miss = Stats.counter "bdd.apply_miss"
let c_neg_hit = Stats.counter "bdd.neg_hit"
let c_neg_miss = Stats.counter "bdd.neg_miss"

type manager = {
  order : int -> int;
  tick : unit -> unit; (* called once per fresh node; may raise to abort *)
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo_id, hi_id) -> node *)
  apply_cache : (op * int * int, t) Hashtbl.t;
  neg_cache : (int, t) Hashtbl.t;
  mutable next_id : int;
}

let id = function Leaf false -> 0 | Leaf true -> 1 | Node n -> n.id

let manager ?(order = Fun.id) ?(tick = Fun.id) () =
  {
    order;
    tick;
    unique = Hashtbl.create 1024;
    apply_cache = Hashtbl.create 1024;
    neg_cache = Hashtbl.create 256;
    next_id = 2;
  }

let tru _ = Leaf true
let fls _ = Leaf false

let mk m var lo hi =
  if id lo = id hi then lo
  else begin
    let key = (var, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n ->
      Stats.incr c_unique_hit;
      n
    | None ->
      m.tick ();
      let n = Node { id = m.next_id; level = m.order var; var; lo; hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      Stats.incr c_nodes;
      n
  end

let var m v = mk m v (Leaf false) (Leaf true)

let level = function
  | Leaf _ -> max_int
  | Node n -> n.level

let rec neg m t =
  match t with
  | Leaf b -> Leaf (not b)
  | Node n -> (
      match Hashtbl.find_opt m.neg_cache n.id with
      | Some r ->
        Stats.incr c_neg_hit;
        r
      | None ->
        Stats.incr c_neg_miss;
        let r = mk m n.var (neg m n.lo) (neg m n.hi) in
        Hashtbl.add m.neg_cache n.id r;
        r)

let apply_leaf op a b =
  match op with
  | Op_and -> a && b
  | Op_or -> a || b
  | Op_xor -> a <> b

let rec apply m op a b =
  (* Terminal shortcuts. *)
  match (op, a, b) with
  | _, Leaf x, Leaf y -> Leaf (apply_leaf op x y)
  | Op_and, Leaf false, _ | Op_and, _, Leaf false -> Leaf false
  | Op_and, Leaf true, x | Op_and, x, Leaf true -> x
  | Op_or, Leaf true, _ | Op_or, _, Leaf true -> Leaf true
  | Op_or, Leaf false, x | Op_or, x, Leaf false -> x
  | Op_xor, Leaf false, x | Op_xor, x, Leaf false -> x
  | Op_xor, Leaf true, x | Op_xor, x, Leaf true -> neg m x
  | _ ->
    if (op = Op_and || op = Op_or) && id a = id b then a
    else begin
      (* Commutative ops: normalize the cache key. *)
      let ia = id a and ib = id b in
      let key = if ia <= ib then (op, ia, ib) else (op, ib, ia) in
      match Hashtbl.find_opt m.apply_cache key with
      | Some r ->
        Stats.incr c_apply_hit;
        r
      | None ->
        Stats.incr c_apply_miss;
        let la = level a and lb = level b in
        let r =
          if la < lb then begin
            match a with
            | Node n -> mk m n.var (apply m op n.lo b) (apply m op n.hi b)
            | Leaf _ -> assert false
          end
          else if lb < la then begin
            match b with
            | Node n -> mk m n.var (apply m op a n.lo) (apply m op a n.hi)
            | Leaf _ -> assert false
          end
          else begin
            match (a, b) with
            | Node na, Node nb ->
              mk m na.var (apply m op na.lo nb.lo) (apply m op na.hi nb.hi)
            | _ -> assert false
          end
        in
        Hashtbl.add m.apply_cache key r;
        r
    end

let conj m a b = apply m Op_and a b
let disj m a b = apply m Op_or a b
let xor m a b = apply m Op_xor a b

let ite m f g h = disj m (conj m f g) (conj m (neg m f) h)

let rec of_expr m = function
  | Bool_expr.True -> Leaf true
  | Bool_expr.False -> Leaf false
  | Bool_expr.Var i -> var m i
  | Bool_expr.Not e -> neg m (of_expr m e)
  | Bool_expr.And es ->
    List.fold_left (fun acc e -> conj m acc (of_expr m e)) (Leaf true) es
  | Bool_expr.Or es ->
    List.fold_left (fun acc e -> disj m acc (of_expr m e)) (Leaf false) es

let is_tru = function Leaf true -> true | _ -> false
let is_fls = function Leaf false -> true | _ -> false
let equal a b = id a = id b

let size t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  Hashtbl.length seen

let node_count m = Hashtbl.length m.unique

let rec eval env = function
  | Leaf b -> b
  | Node n -> eval env (if env n.var then n.hi else n.lo)

module ISet = Set.Make (Int)

let support t =
  let seen = Hashtbl.create 64 in
  let acc = ref ISet.empty in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        acc := ISet.add n.var !acc;
        go n.lo;
        go n.hi
      end
  in
  go t;
  ISet.elements !acc

let sat_count t ~over =
  let sup = support t in
  let over_set = ISet.of_list over in
  if not (List.for_all (fun v -> ISet.mem v over_set) sup) then
    invalid_arg "Bdd.sat_count: over must contain the support";
  (* Count over the support first, then double for each free variable.
     Collect the occurring levels with a visited table (like size/support):
     a naive tree recursion revisits shared nodes once per path and is
     exponential on heavily-shared DAGs. *)
  let levels =
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    let rec collect = function
      | Leaf _ -> ()
      | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.add seen n.id ();
          acc := n.level :: !acc;
          collect n.lo;
          collect n.hi
        end
    in
    collect t;
    List.sort_uniq compare (List.filter (fun l -> l <> max_int) !acc)
  in
  let rank = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.add rank l i) levels;
  let k = List.length levels in
  let pow2 e = Bigint.shift_left Bigint.one e in
  let memo = Hashtbl.create 64 in
  (* count n = number of satisfying assignments of the sub-BDD over the
     support variables at ranks >= rank(n.level) + 1, scaled per child. *)
  let rec count n =
    match n with
    | Leaf _ -> assert false
    | Node node -> (
        match Hashtbl.find_opt memo node.id with
        | Some c -> c
        | None ->
          let r = Hashtbl.find rank node.level in
          let child c =
            match c with
            | Leaf false -> Bigint.zero
            | Leaf true -> pow2 (k - (r + 1))
            | Node nc ->
              let rc = Hashtbl.find rank nc.level in
              Bigint.mul (pow2 (rc - (r + 1))) (count c)
          in
          let c = Bigint.add (child node.lo) (child node.hi) in
          Hashtbl.add memo node.id c;
          c)
  in
  let base =
    match t with
    | Leaf false -> Bigint.zero
    | Leaf true -> pow2 k
    | Node n ->
      let r = Hashtbl.find rank n.level in
      Bigint.mul (pow2 r) (count t)
  in
  let free = List.length over - List.length sup in
  Bigint.mul base (pow2 free)

let any_sat t =
  let rec go acc = function
    | Leaf true -> Some (List.rev acc)
    | Leaf false -> None
    | Node n -> (
        match go ((n.var, true) :: acc) n.hi with
        | Some r -> Some r
        | None -> go ((n.var, false) :: acc) n.lo)
  in
  go [] t

let restrict m t v b =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Leaf x -> Leaf x
    | Node n -> (
        if n.var = v then go (if b then n.hi else n.lo)
        else
          match Hashtbl.find_opt memo n.id with
          | Some r -> r
          | None ->
            let r = mk m n.var (go n.lo) (go n.hi) in
            Hashtbl.add memo n.id r;
            r)
  in
  go t

let fold_prob ~zero ~one ~node t =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Leaf false -> zero
    | Leaf true -> one
    | Node n -> (
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
          let r = node n.var (go n.lo) (go n.hi) in
          Hashtbl.add memo n.id r;
          r)
  in
  go t

let pp fmt t =
  let rec go fmt = function
    | Leaf b -> Format.fprintf fmt "%b" b
    | Node n ->
      Format.fprintf fmt "@[<hov 1>(x%d ? %a : %a)@]" n.var go n.hi go n.lo
  in
  go fmt t
