(* Reduced ordered BDDs, struct-of-arrays edition.

   Canonicity invariant: no node has lo == hi, and no two distinct live
   nodes have equal (var, lo, hi); hence semantic equality of functions
   is equality of root indices within one manager.

   Layout: a node is an index into four parallel int arrays (var, level,
   lo, hi).  Indices 0 and 1 are the false/true leaves.  The unique
   table is an open-addressing array of node indices; the operation
   cache is direct-mapped and lossy (BuDDy-style), keyed by a single
   tagged int [(a lsl 3) lor op] plus the raw operand ints — a lookup
   touches a handful of int cells and allocates nothing.

   Garbage collection is mark-and-sweep from registered roots (plus an
   internal scratch stack that pins intermediates during [of_expr]).
   Freed indices are threaded into a freelist through [lo_a]; a sweep
   rebuilds the unique table over live nodes and invalidates the
   operation cache, since cached entries may name recycled indices.  GC
   runs only at compilation safe points, never inside an apply recursion
   whose operands live on the OCaml stack unrooted. *)

(* Hot-path instrumentation: single-int bumps, read via Stats.snapshot. *)
let c_unique_hit = Stats.counter "bdd.unique.hit"
let c_nodes = Stats.counter "bdd.nodes_allocated"
let c_apply_hit = Stats.counter "bdd.apply.hit"
let c_apply_miss = Stats.counter "bdd.apply.miss"
let c_gc_runs = Stats.counter "bdd.gc.runs"
let c_gc_swept = Stats.counter "bdd.gc.swept"

type manager = {
  order : int -> int;
  tick : unit -> unit; (* called once per fresh node; may raise to abort *)
  on_free : int -> unit; (* called with the freed count after a sweep *)
  (* Node store.  var_a.(i) >= 0: live internal node; -1: free slot
     (freelist threaded through lo_a); -2: leaf.  Leaves sit at indices
     0 (false) and 1 (true) with level max_int. *)
  mutable var_a : int array;
  mutable level_a : int array;
  mutable lo_a : int array;
  mutable hi_a : int array;
  mutable mark_a : Bytes.t;
  mutable n_top : int; (* bump allocator frontier *)
  mutable free_head : int; (* head of the freelist, -1 if empty *)
  mutable live : int;
  mutable peak : int;
  mutable allocated : int; (* monotone: every alloc_node ever *)
  mutable alloc_since_gc : int;
  (* Unique table: open addressing over node indices, -1 = empty.  No
     tombstones — deletion happens only via wholesale rebuild in [gc]. *)
  mutable u_idx : int array;
  mutable u_mask : int;
  mutable u_fill : int;
  (* Direct-mapped operation cache.  c_k holds the packed tag
     [(a lsl 3) lor op] (-1 = empty), c_b/c_c the remaining operands
     (0 when unused), c_r the result index. *)
  c_k : int array;
  c_b : int array;
  c_c : int array;
  c_r : int array;
  c_mask : int;
  gc_threshold : int;
  roots : (int, int) Hashtbl.t; (* root index -> protect count *)
  mutable tmp_a : int array; (* scratch roots pinned during of_expr *)
  mutable tmp_len : int;
}

type t = { mgr : manager; idx : int }

let op_and = 0
let op_or = 1
let op_xor = 2
let op_not = 3
let op_ite = 4

let rec round_pow2 acc n = if acc >= n then acc else round_pow2 (acc * 2) n

let default_cache_size = 1 lsl 11

let effective_cache_size requested =
  if requested <= 0 then
    invalid_arg "Bdd.effective_cache_size: cache_size must be positive";
  round_pow2 64 requested

let manager ?(order = Fun.id) ?(tick = Fun.id) ?(on_free = fun _ -> ())
    ?(cache_size = default_cache_size) ?(gc_threshold = max_int) () =
  if cache_size <= 0 then
    invalid_arg "Bdd.manager: cache_size must be positive";
  if gc_threshold <= 0 then
    invalid_arg "Bdd.manager: gc_threshold must be positive";
  let cap = 1024 in
  let csz = round_pow2 64 cache_size in
  let m =
    {
      order;
      tick;
      on_free;
      var_a = Array.make cap (-1);
      level_a = Array.make cap 0;
      lo_a = Array.make cap 0;
      hi_a = Array.make cap 0;
      mark_a = Bytes.make cap '\000';
      n_top = 2;
      free_head = -1;
      live = 0;
      peak = 0;
      allocated = 0;
      alloc_since_gc = 0;
      u_idx = Array.make 2048 (-1);
      u_mask = 2047;
      u_fill = 0;
      c_k = Array.make csz (-1);
      c_b = Array.make csz 0;
      c_c = Array.make csz 0;
      c_r = Array.make csz 0;
      c_mask = csz - 1;
      gc_threshold;
      roots = Hashtbl.create 16;
      tmp_a = Array.make 64 0;
      tmp_len = 0;
    }
  in
  m.var_a.(0) <- -2;
  m.var_a.(1) <- -2;
  m.level_a.(0) <- max_int;
  m.level_a.(1) <- max_int;
  m

let tru m = { mgr = m; idx = 1 }
let fls m = { mgr = m; idx = 0 }

(* Multiplicative mixing of three ints; masked by the caller. *)
let hash3 a b c =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca6b) lxor (c * 0xc2b2ae35) in
  h lxor (h lsr 15)

(* -------------------- unique table -------------------- *)

let u_lookup m var lo hi =
  let mask = m.u_mask in
  let rec go i =
    let n = m.u_idx.(i) in
    if n < 0 then -1
    else if m.var_a.(n) = var && m.lo_a.(n) = lo && m.hi_a.(n) = hi then n
    else go ((i + 1) land mask)
  in
  go (hash3 var lo hi land mask)

(* Insert without a load-factor check: used by [u_grow] and the GC
   rebuild, where capacity is known sufficient. *)
let u_put m n =
  let mask = m.u_mask in
  let rec go i =
    if m.u_idx.(i) < 0 then begin
      m.u_idx.(i) <- n;
      m.u_fill <- m.u_fill + 1
    end
    else go ((i + 1) land mask)
  in
  go (hash3 m.var_a.(n) m.lo_a.(n) m.hi_a.(n) land mask)

let u_grow m =
  let old = m.u_idx in
  let size = (m.u_mask + 1) * 2 in
  m.u_idx <- Array.make size (-1);
  m.u_mask <- size - 1;
  m.u_fill <- 0;
  Array.iter (fun n -> if n >= 0 then u_put m n) old

(* -------------------- node allocation -------------------- *)

let grow_nodes m =
  let cap = Array.length m.var_a in
  let ncap = 2 * cap in
  let g a = Array.append a (Array.make cap (-1)) in
  m.var_a <- g m.var_a;
  m.level_a <- g m.level_a;
  m.lo_a <- g m.lo_a;
  m.hi_a <- g m.hi_a;
  let nb = Bytes.make ncap '\000' in
  Bytes.blit m.mark_a 0 nb 0 cap;
  m.mark_a <- nb

let alloc_node m var lo hi =
  m.tick ();
  let i =
    if m.free_head >= 0 then begin
      let i = m.free_head in
      m.free_head <- m.lo_a.(i);
      i
    end
    else begin
      if m.n_top = Array.length m.var_a then grow_nodes m;
      let i = m.n_top in
      m.n_top <- m.n_top + 1;
      i
    end
  in
  m.var_a.(i) <- var;
  m.level_a.(i) <- m.order var;
  m.lo_a.(i) <- lo;
  m.hi_a.(i) <- hi;
  m.live <- m.live + 1;
  if m.live > m.peak then m.peak <- m.live;
  m.allocated <- m.allocated + 1;
  m.alloc_since_gc <- m.alloc_since_gc + 1;
  Stats.incr c_nodes;
  i

let mk m var lo hi =
  if lo = hi then lo
  else begin
    let found = u_lookup m var lo hi in
    if found >= 0 then begin
      Stats.incr c_unique_hit;
      found
    end
    else begin
      let n = alloc_node m var lo hi in
      if (m.u_fill + 1) * 4 > (m.u_mask + 1) * 3 then u_grow m;
      u_put m n;
      n
    end
  end

let var m v = { mgr = m; idx = mk m v 0 1 }

(* -------------------- shared apply core -------------------- *)

(* All connectives go through the one direct-mapped cache.  Entries are
   written after the recursion; a colliding write simply overwrites. *)

let rec neg_i m a =
  if a < 2 then a lxor 1
  else begin
    let k = (a lsl 3) lor op_not in
    let i = hash3 k 0 0 land m.c_mask in
    if m.c_k.(i) = k && m.c_b.(i) = 0 && m.c_c.(i) = 0 then begin
      Stats.incr c_apply_hit;
      m.c_r.(i)
    end
    else begin
      Stats.incr c_apply_miss;
      let v = m.var_a.(a) and lo = m.lo_a.(a) and hi = m.hi_a.(a) in
      let r = mk m v (neg_i m lo) (neg_i m hi) in
      m.c_k.(i) <- k;
      m.c_b.(i) <- 0;
      m.c_c.(i) <- 0;
      m.c_r.(i) <- r;
      r
    end
  end

let rec apply2 m op a b =
  (* Terminal shortcuts per connective. *)
  if op = op_and then
    if a = 0 || b = 0 then 0
    else if a = 1 then b
    else if b = 1 then a
    else if a = b then a
    else apply_node m op a b
  else if op = op_or then
    if a = 1 || b = 1 then 1
    else if a = 0 then b
    else if b = 0 then a
    else if a = b then a
    else apply_node m op a b
  else if a = 0 then b
  else if b = 0 then a
  else if a = b then 0
  else if a = 1 then neg_i m b
  else if b = 1 then neg_i m a
  else apply_node m op a b

and apply_node m op a b =
  (* All three binary connectives are commutative: canonicalize the key. *)
  let a, b = if a <= b then (a, b) else (b, a) in
  let k = (a lsl 3) lor op in
  let i = hash3 k b 0 land m.c_mask in
  if m.c_k.(i) = k && m.c_b.(i) = b && m.c_c.(i) = 0 then begin
    Stats.incr c_apply_hit;
    m.c_r.(i)
  end
  else begin
    Stats.incr c_apply_miss;
    let la = m.level_a.(a) and lb = m.level_a.(b) in
    let r =
      if la < lb then begin
        let v = m.var_a.(a) and lo = m.lo_a.(a) and hi = m.hi_a.(a) in
        mk m v (apply2 m op lo b) (apply2 m op hi b)
      end
      else if lb < la then begin
        let v = m.var_a.(b) and lo = m.lo_a.(b) and hi = m.hi_a.(b) in
        mk m v (apply2 m op a lo) (apply2 m op a hi)
      end
      else begin
        let v = m.var_a.(a) in
        let alo = m.lo_a.(a) and ahi = m.hi_a.(a) in
        let blo = m.lo_a.(b) and bhi = m.hi_a.(b) in
        mk m v (apply2 m op alo blo) (apply2 m op ahi bhi)
      end
    in
    (* The recursion may have evicted this slot; recompute nothing, just
       (re)write — the cache is allowed to lose entries, not to lie. *)
    m.c_k.(i) <- k;
    m.c_b.(i) <- b;
    m.c_c.(i) <- 0;
    m.c_r.(i) <- r;
    r
  end

(* ite as a cached primitive.  Standard-triple prefiltering: constant and
   repeated arguments reduce to a leaf, a copy, a negation or one binary
   apply; only irreducible triples reach the cofactor recursion and the
   cache. *)
let rec ite_i m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else if g = 0 && h = 1 then neg_i m f
  else if g = 1 then apply2 m op_or f h
  else if g = 0 then apply2 m op_and (neg_i m f) h
  else if h = 0 then apply2 m op_and f g
  else if h = 1 then apply2 m op_or (neg_i m f) g
  else if f = g then apply2 m op_or f h
  else if f = h then apply2 m op_and f g
  else begin
    let k = (f lsl 3) lor op_ite in
    let i = hash3 k g h land m.c_mask in
    if m.c_k.(i) = k && m.c_b.(i) = g && m.c_c.(i) = h then begin
      Stats.incr c_apply_hit;
      m.c_r.(i)
    end
    else begin
      Stats.incr c_apply_miss;
      let lf = m.level_a.(f) and lg = m.level_a.(g) and lh = m.level_a.(h) in
      let l = Stdlib.min lf (Stdlib.min lg lh) in
      let v =
        if lf = l then m.var_a.(f)
        else if lg = l then m.var_a.(g)
        else m.var_a.(h)
      in
      let f0 = if lf = l then m.lo_a.(f) else f in
      let f1 = if lf = l then m.hi_a.(f) else f in
      let g0 = if lg = l then m.lo_a.(g) else g in
      let g1 = if lg = l then m.hi_a.(g) else g in
      let h0 = if lh = l then m.lo_a.(h) else h in
      let h1 = if lh = l then m.hi_a.(h) else h in
      let r = mk m v (ite_i m f0 g0 h0) (ite_i m f1 g1 h1) in
      m.c_k.(i) <- k;
      m.c_b.(i) <- g;
      m.c_c.(i) <- h;
      m.c_r.(i) <- r;
      r
    end
  end

(* -------------------- garbage collection -------------------- *)

let mark_from m start =
  if start >= 2 && Bytes.get m.mark_a start = '\000' then begin
    let stack = ref [ start ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | i :: rest ->
        stack := rest;
        if i >= 2 && Bytes.get m.mark_a i = '\000' then begin
          Bytes.set m.mark_a i '\001';
          stack := m.lo_a.(i) :: m.hi_a.(i) :: !stack
        end
    done
  end

let gc m =
  Stats.incr c_gc_runs;
  Bytes.fill m.mark_a 0 (Bytes.length m.mark_a) '\000';
  Hashtbl.iter (fun i _ -> mark_from m i) m.roots;
  for j = 0 to m.tmp_len - 1 do
    mark_from m m.tmp_a.(j)
  done;
  let swept = ref 0 in
  for i = 2 to m.n_top - 1 do
    if m.var_a.(i) >= 0 && Bytes.get m.mark_a i = '\000' then begin
      m.var_a.(i) <- -1;
      m.lo_a.(i) <- m.free_head;
      m.free_head <- i;
      m.live <- m.live - 1;
      incr swept
    end
  done;
  (* Rebuild the unique table over live nodes and drop the operation
     cache: either may name indices the freelist is about to recycle. *)
  Array.fill m.u_idx 0 (Array.length m.u_idx) (-1);
  m.u_fill <- 0;
  for i = 2 to m.n_top - 1 do
    if m.var_a.(i) >= 0 then u_put m i
  done;
  Array.fill m.c_k 0 (Array.length m.c_k) (-1);
  m.alloc_since_gc <- 0;
  Stats.add c_gc_swept !swept;
  if !swept > 0 then m.on_free !swept;
  !swept

let maybe_gc m = if m.alloc_since_gc >= m.gc_threshold then gc m else 0

let protect t =
  if t.idx >= 2 then begin
    let m = t.mgr in
    let c = Option.value (Hashtbl.find_opt m.roots t.idx) ~default:0 in
    Hashtbl.replace m.roots t.idx (c + 1)
  end

let release t =
  if t.idx >= 2 then begin
    let m = t.mgr in
    match Hashtbl.find_opt m.roots t.idx with
    | None -> ()
    | Some 1 -> Hashtbl.remove m.roots t.idx
    | Some c -> Hashtbl.replace m.roots t.idx (c - 1)
  end

(* -------------------- compilation -------------------- *)

let tmp_push m i =
  if m.tmp_len = Array.length m.tmp_a then
    m.tmp_a <- Array.append m.tmp_a (Array.make m.tmp_len 0);
  m.tmp_a.(m.tmp_len) <- i;
  m.tmp_len <- m.tmp_len + 1

(* Reachable internal-node count of an index; only used to order operands
   of a balanced fold, so a plain visited set is fine. *)
let isize m root =
  let seen = Hashtbl.create 64 in
  let rec go i =
    if i >= 2 && not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      go m.lo_a.(i);
      go m.hi_a.(i)
    end
  in
  go root;
  Hashtbl.length seen

let rec build m e =
  match e with
  | Bool_expr.True -> 1
  | Bool_expr.False -> 0
  | Bool_expr.Var v -> mk m v 0 1
  | Bool_expr.Not e -> neg_i m (build m e)
  | Bool_expr.And es -> combine m op_and 1 es
  | Bool_expr.Or es -> combine m op_or 0 es

(* Compile the operands (pinning each on the scratch stack so the GC safe
   points in between see them), then combine small-to-large in balanced
   pairwise rounds: O(n log n) applies where a left fold does O(n^2) work
   on the independent disjunctions lineages are made of. *)
and combine m op unit_ es =
  let base = m.tmp_len in
  List.iter
    (fun e ->
      ignore (maybe_gc m);
      tmp_push m (build m e))
    es;
  let n = ref (m.tmp_len - base) in
  if !n = 0 then begin
    m.tmp_len <- base;
    unit_
  end
  else begin
    let slice = Array.sub m.tmp_a base !n in
    let sizes = Array.map (isize m) slice in
    let order = Array.init !n Fun.id in
    Array.sort (fun i j -> compare sizes.(i) sizes.(j)) order;
    for j = 0 to !n - 1 do
      m.tmp_a.(base + j) <- slice.(order.(j))
    done;
    while !n > 1 do
      m.tmp_len <- base + !n;
      let w = ref 0 and j = ref 0 in
      while !j + 1 < !n do
        ignore (maybe_gc m);
        let r = apply2 m op m.tmp_a.(base + !j) m.tmp_a.(base + !j + 1) in
        m.tmp_a.(base + !w) <- r;
        incr w;
        j := !j + 2
      done;
      if !j < !n then begin
        m.tmp_a.(base + !w) <- m.tmp_a.(base + !j);
        incr w
      end;
      n := !w
    done;
    let r = m.tmp_a.(base) in
    m.tmp_len <- base;
    r
  end

(* -------------------- public wrappers -------------------- *)

let same m t name =
  if t.mgr != m then
    invalid_arg ("Bdd." ^ name ^ ": node from a different manager");
  t.idx

let neg m t = { mgr = m; idx = neg_i m (same m t "neg") }

let conj m a b =
  { mgr = m; idx = apply2 m op_and (same m a "conj") (same m b "conj") }

let disj m a b =
  { mgr = m; idx = apply2 m op_or (same m a "disj") (same m b "disj") }

let xor m a b =
  { mgr = m; idx = apply2 m op_xor (same m a "xor") (same m b "xor") }

let ite m f g h =
  { mgr = m;
    idx = ite_i m (same m f "ite") (same m g "ite") (same m h "ite") }

let of_expr m e = { mgr = m; idx = build m e }
let is_tru t = t.idx = 1
let is_fls t = t.idx = 0
let equal a b = a.mgr == b.mgr && a.idx = b.idx
let node_count m = m.live
let allocated_count m = m.allocated
let peak_count m = m.peak
let cache_size m = m.c_mask + 1

(* -------------------- traversals -------------------- *)

(* The one memoized bottom-up DAG pass every reachability walk in this
   file reduces to: [node] sees each distinct internal node exactly once
   with its children's results. *)
(* [fold_dag_shared] threads an external memo so a batch of roots over
   one manager can share a single bottom-up sweep: a node reachable from
   several roots is folded exactly once across the whole batch. *)
let fold_dag_shared m memo root ~leaf ~node =
  let rec go i =
    if i < 2 then leaf (i = 1)
    else
      match Hashtbl.find_opt memo i with
      | Some r -> r
      | None ->
        let r = node m.var_a.(i) m.level_a.(i) (go m.lo_a.(i)) (go m.hi_a.(i)) in
        Hashtbl.add memo i r;
        r
  in
  go root

let fold_dag m root ~leaf ~node =
  fold_dag_shared m (Hashtbl.create 64) root ~leaf ~node

let size t =
  let n = ref 0 in
  fold_dag t.mgr t.idx
    ~leaf:(fun _ -> ())
    ~node:(fun _ _ () () -> incr n);
  !n

let eval env t =
  let m = t.mgr in
  let rec go i =
    if i < 2 then i = 1
    else go (if env m.var_a.(i) then m.hi_a.(i) else m.lo_a.(i))
  in
  go t.idx

module ISet = Set.Make (Int)

let support t =
  let acc = ref ISet.empty in
  fold_dag t.mgr t.idx
    ~leaf:(fun _ -> ())
    ~node:(fun v _ () () -> acc := ISet.add v !acc);
  ISet.elements !acc

(* Per-node model counts, folded bottom-up over the occurring levels:
   [Count (l, c)] says the sub-BDD rooted at a node of level [l] has [c]
   satisfying assignments over the support variables strictly below its
   own rank. *)
type count = CLeaf of bool | Count of int * Bigint.t

let sat_count t ~over =
  let sup = support t in
  let over_set = ISet.of_list over in
  if not (List.for_all (fun v -> ISet.mem v over_set) sup) then
    invalid_arg "Bdd.sat_count: over must contain the support";
  let levels =
    let acc = ref [] in
    fold_dag t.mgr t.idx
      ~leaf:(fun _ -> ())
      ~node:(fun _ l () () -> acc := l :: !acc);
    List.sort_uniq compare !acc
  in
  let rank = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.add rank l i) levels;
  let k = List.length levels in
  let pow2 e = Bigint.shift_left Bigint.one e in
  let top =
    fold_dag t.mgr t.idx
      ~leaf:(fun b -> CLeaf b)
      ~node:(fun _ l lo hi ->
        let r = Hashtbl.find rank l in
        let child = function
          | CLeaf false -> Bigint.zero
          | CLeaf true -> pow2 (k - (r + 1))
          | Count (lc, c) ->
            let rc = Hashtbl.find rank lc in
            Bigint.mul (pow2 (rc - (r + 1))) c
        in
        Count (l, Bigint.add (child lo) (child hi)))
  in
  let base =
    match top with
    | CLeaf false -> Bigint.zero
    | CLeaf true -> pow2 k
    | Count (l, c) -> Bigint.mul (pow2 (Hashtbl.find rank l)) c
  in
  let free = List.length over - List.length sup in
  Bigint.mul base (pow2 free)

let any_sat t =
  let m = t.mgr in
  (* Memoize refuted subtrees: a shared false-heavy node is abandoned
     once, not once per path through the diagram above it. *)
  let unsat = Hashtbl.create 16 in
  let rec go acc i =
    if i = 1 then Some (List.rev acc)
    else if i = 0 || Hashtbl.mem unsat i then None
    else begin
      let v = m.var_a.(i) in
      match go ((v, true) :: acc) m.hi_a.(i) with
      | Some _ as r -> r
      | None -> (
        match go ((v, false) :: acc) m.lo_a.(i) with
        | Some _ as r -> r
        | None ->
          Hashtbl.add unsat i ();
          None)
    end
  in
  go [] t.idx

let restrict m t v b =
  let i0 = same m t "restrict" in
  let memo = Hashtbl.create 64 in
  let rec go i =
    if i < 2 then i
    else if m.var_a.(i) = v then go (if b then m.hi_a.(i) else m.lo_a.(i))
    else
      match Hashtbl.find_opt memo i with
      | Some r -> r
      | None ->
        let var = m.var_a.(i) and lo = m.lo_a.(i) and hi = m.hi_a.(i) in
        let r = mk m var (go lo) (go hi) in
        Hashtbl.add memo i r;
        r
  in
  { mgr = m; idx = go i0 }

let fold_prob ~zero ~one ~node t =
  fold_dag t.mgr t.idx
    ~leaf:(fun b -> if b then one else zero)
    ~node:(fun v _ lo hi -> node v lo hi)

let fold_prob_many ~zero ~one ~node roots =
  if Array.length roots = 0 then [||]
  else begin
    let m = roots.(0).mgr in
    let idxs = Array.map (fun t -> same m t "fold_prob_many") roots in
    let memo = Hashtbl.create 64 in
    Array.map
      (fun i ->
        fold_dag_shared m memo i
          ~leaf:(fun b -> if b then one else zero)
          ~node:(fun v _ lo hi -> node v lo hi))
      idxs
  end

(* Persistent WMC memo: values survive across calls so a later fold can
   skip every subgraph whose variables kept their weights.  Keyed by node
   index, which is only stable between sweeps — the freelist reuses
   indices — so holders must [prob_memo_clear] after any event that may
   have run [gc] (or that rebinds what a variable means). *)
type 'a prob_memo = { pm_vals : (int, 'a) Hashtbl.t }

let prob_memo () = { pm_vals = Hashtbl.create 256 }
let prob_memo_clear pm = Hashtbl.reset pm.pm_vals
let prob_memo_size pm = Hashtbl.length pm.pm_vals

let fold_prob_memo ~memo ~dirty ~zero ~one ~node t =
  let m = t.mgr in
  (* Per-call state: node index -> (value, subtree-touches-a-dirty-var).
     The dirty bit must be recomputed per call even for memoized nodes,
     because dirtiness is a property of this delta, not of the node. *)
  let state : (int, 'a * bool) Hashtbl.t = Hashtbl.create 64 in
  let rec go i =
    if i < 2 then ((if i = 1 then one else zero), false)
    else
      match Hashtbl.find_opt state i with
      | Some r -> r
      | None ->
        let v = m.var_a.(i) in
        let lo, lo_d = go m.lo_a.(i) in
        let hi, hi_d = go m.hi_a.(i) in
        let d = lo_d || hi_d || dirty v in
        let value =
          if d then node v lo hi
          else
            match Hashtbl.find_opt memo.pm_vals i with
            | Some x -> x
            | None -> node v lo hi
        in
        Hashtbl.replace memo.pm_vals i value;
        let r = (value, d) in
        Hashtbl.add state i r;
        r
  in
  fst (go t.idx)

let pp fmt t =
  let m = t.mgr in
  let rec go fmt i =
    if i < 2 then Format.fprintf fmt "%b" (i = 1)
    else
      Format.fprintf fmt "@[<hov 1>(x%d ? %a : %a)@]" m.var_a.(i) go
        m.hi_a.(i) go m.lo_a.(i)
  in
  go fmt t.idx
