(* Random differential fuzz: lifted vs enumeration, broad UCQ generator *)
let i n = Value.Int n

let () =
  Random.self_init ();
  let fails = ref 0 and answered = ref 0 and total = 20000 in
  let fact_pool =
    List.map (fun n -> Fact.make "R" [ i n ]) [ 1; 2; 3 ]
    @ List.map (fun n -> Fact.make "S" [ i n ]) [ 1; 2; 3 ]
    @ List.concat_map
        (fun a -> List.map (fun b -> Fact.make "T" [ i a; i b ]) [ 1; 2; 3 ])
        [ 1; 2; 3 ]
  in
  let rand_table () =
    let n = 1 + Random.int 9 in
    let fs = List.init n (fun _ -> List.nth fact_pool (Random.int (List.length fact_pool))) in
    let fs = List.sort_uniq Fact.compare fs in
    List.map (fun f -> (f, Rational.of_ints (1 + Random.int 7) 8)) fs
  in
  let vars = [ "x"; "y"; "z" ] in
  let rand_term nv =
    if Random.int 3 = 0 then Fo.cint (1 + Random.int 3)
    else Fo.v (List.nth vars (Random.int nv))
  in
  let rand_atom nv =
    match Random.int 4 with
    | 0 -> Fo.atom "R" [ rand_term nv ]
    | 1 -> Fo.atom "S" [ rand_term nv ]
    | 2 -> Fo.atom "T" [ rand_term nv; rand_term nv ]
    | _ -> Fo.Eq (rand_term nv, rand_term nv)
  in
  (* random positive existential formula with nested &, |, exists *)
  let rec rand_body nv depth =
    if depth = 0 then rand_atom nv
    else
      match Random.int 5 with
      | 0 | 1 -> Fo.And (rand_body nv (depth - 1), rand_body nv (depth - 1))
      | 2 | 3 -> Fo.Or (rand_body nv (depth - 1), rand_body nv (depth - 1))
      | _ -> rand_atom nv
  in
  let rand_query () =
    let nv = 1 + Random.int 3 in
    let used = List.filteri (fun k _ -> k < nv) vars in
    Fo.exists_many used (rand_body nv (1 + Random.int 3))
  in
  for _ = 1 to total do
    let entries = rand_table () in
    let ti = Ti_table.create entries in
    let phi = rand_query () in
    match Query_eval.boolean_safe ti phi with
    | None -> ()
    | Some p ->
      incr answered;
      let truth = Query_eval.boolean_enum ti phi in
      if not (Rational.equal p truth) then begin
        incr fails;
        if !fails <= 5 then
          Printf.printf "FAIL lifted=%s oracle=%s\n  query=%s\n  table=%s\n"
            (Rational.to_string p) (Rational.to_string truth)
            (Fo.to_string phi)
            (String.concat "; "
               (List.map
                  (fun (f, pr) -> Fact.to_string f ^ "@" ^ Rational.to_string pr)
                  entries))
      end
  done;
  Printf.printf "done: %d cases, %d answered by lifted engine, %d FAILURES\n"
    total !answered !fails
