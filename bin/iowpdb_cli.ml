(* Command-line interface to the library.

   Subcommands:
     query    - exact Boolean/non-Boolean query on a TI table file
     open     - open-world query: complete the table, approximate to eps
     anytime  - incremental evaluation with a narrowing certified interval
     mc       - domain-parallel Monte-Carlo estimation with a Wilson CI
     sample   - draw worlds from the (optionally completed) PDB
     info     - table statistics

   Table files are the Ti_table text format: one "R(args...) prob" per
   line, '#' comments.  Open-world policies: --policy lambda:<p>:<k>
   (k fresh facts of probability p over relation N) or
   --policy geometric:<first>:<ratio> (infinitely many N(0), N(1), ...).

   Subcommands that do real inference take --stats to print the
   instrumentation counters (BDD cache traffic, fact-source pulls,
   engine dispatch) accumulated during the run. *)

open Cmdliner

let read_table = Ti_table.of_file

let parse_policy spec ti =
  match String.split_on_char ':' spec with
  | [ "lambda"; p; k ] ->
    let lambda = Rational.of_string p and k = int_of_string k in
    Completion.openpdb_lambda ~lambda
      ~new_facts:(List.init k (fun j -> Fact.make "N" [ Value.Int j ]))
      ti
  | [ "geometric"; first; ratio ] ->
    Completion.geometric_policy
      ~first:(Rational.of_string first)
      ~ratio:(Rational.of_string ratio)
      ~new_facts:(fun j -> Fact.make "N" [ Value.Int j ])
      ti
  | _ ->
    invalid_arg
      (Printf.sprintf
         "bad policy %S (want lambda:<p>:<k> or geometric:<first>:<ratio>)"
         spec)

(* Shared arguments *)
let table_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TABLE" ~doc:"TI table file (one 'R(args) prob' per line).")

let query_arg p =
  Arg.(
    required
    & pos p (some string) None
    & info [] ~docv:"QUERY" ~doc:"First-order query, e.g. 'exists x. R(x, 1)'.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print instrumentation counters (BDD cache traffic, fact-source \
           pulls, engine dispatch, wall-clock) accumulated during the run.")

let with_stats enabled f =
  let before = Stats.snapshot () in
  let r = f () in
  if enabled then begin
    print_newline ();
    print_endline "-- stats --";
    Stats.report Format.std_formatter (Stats.diff (Stats.snapshot ()) before);
    Format.pp_print_flush Format.std_formatter ()
  end;
  r

let run_query table query stats =
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let phi = Fo_parse.parse_exn query in
  if Fo.free_vars phi = [] then begin
    let p = Query_eval.boolean ti phi in
    Printf.printf "P[ %s ] = %s (~%s)\n" query (Rational.to_string p)
      (Rational.to_decimal_string ~digits:8 p)
  end
  else
    List.iter
      (fun (tup, p) ->
        Printf.printf "P[ %s at %s ] = %s\n" query (Tuple.to_string tup)
          (Rational.to_string p))
      (Query_eval.marginals ti phi)

let query_cmd =
  let doc = "Exact query evaluation on a closed-world TI table." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run_query $ table_arg $ query_arg 1 $ stats_arg)

let policy_arg =
  Arg.(
    value
    & opt string "geometric:1/4:1/2"
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Open-world policy: lambda:<p>:<k> or geometric:<first>:<ratio>.")

let eps_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "eps" ] ~docv:"EPS" ~doc:"Additive error budget in (0, 1/2).")

let run_open table query policy eps stats =
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let c = parse_policy policy ti in
  let phi = Fo_parse.parse_exn query in
  let r = Completion.query_prob c ~eps phi in
  Printf.printf
    "P[ %s ] = %s (+/- %g; %d new facts; certified in [%.8f, %.8f])\n" query
    (Rational.to_decimal_string ~digits:8 r.Approx_eval.estimate)
    eps r.Approx_eval.n_used
    (Interval.lo r.Approx_eval.bounds)
    (Interval.hi r.Approx_eval.bounds)

let open_cmd =
  let doc = "Open-world (completed) approximate query evaluation." in
  Cmd.v (Cmd.info "open" ~doc)
    Term.(
      const run_open $ table_arg $ query_arg 1 $ policy_arg $ eps_arg
      $ stats_arg)

let run_anytime table query policy eps stats =
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let c = parse_policy policy ti in
  let src =
    Fact_source.append_finite (Ti_table.facts ti) (Completion.new_facts c)
  in
  let phi = Fo_parse.parse_exn query in
  let sess = Anytime.create ~eps src phi in
  let reason, steps = Anytime.run sess in
  List.iter
    (fun (s : Anytime.step) ->
      Printf.printf
        "step %2d: n=%6d  est=%.8f  in [%.8f, %.8f]  width=%.2e  bdd=%d  %s\n"
        s.Anytime.index s.Anytime.n
        (Interval.mid s.Anytime.estimate)
        (Interval.lo s.Anytime.bounds)
        (Interval.hi s.Anytime.bounds)
        s.Anytime.width s.Anytime.bdd_size
        (if s.Anytime.incremental then "delta" else "recompile"))
    steps;
  Printf.printf "stopped: %s after %d steps (n=%d, %d nodes in the manager)\n"
    (Anytime.stop_reason_to_string reason)
    (List.length steps) (Anytime.current_n sess) (Anytime.node_count sess)

let anytime_cmd =
  let doc =
    "Incremental anytime evaluation: deepen the truncation step by step, \
     reusing BDD work, until the certified interval has width at most \
     2*eps."
  in
  Cmd.v (Cmd.info "anytime" ~doc)
    Term.(
      const run_anytime $ table_arg $ query_arg 1 $ policy_arg $ eps_arg
      $ stats_arg)

let samples_arg =
  Arg.(
    value & opt int 5
    & info [ "n"; "samples" ] ~docv:"N" ~doc:"Number of worlds to draw.")

let seed_arg =
  Arg.(
    value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let opened_arg =
  Arg.(
    value & flag
    & info [ "open-world" ] ~doc:"Sample from the completed PDB instead.")

let run_sample table n seed opened policy =
  let ti = read_table table in
  let g = Prng.create ~seed () in
  if opened then begin
    let c = parse_policy policy ti in
    let src =
      Fact_source.append_finite (Ti_table.facts ti) (Completion.new_facts c)
    in
    let cti = Countable_ti.create src in
    for _ = 1 to n do
      print_endline (Instance.to_string (Countable_ti.sample cti g))
    done
  end
  else
    for _ = 1 to n do
      print_endline (Instance.to_string (Ti_table.sample ti g))
    done

let sample_cmd =
  let doc = "Draw random worlds." in
  Cmd.v (Cmd.info "sample" ~doc)
    Term.(
      const run_sample $ table_arg $ samples_arg $ seed_arg $ opened_arg
      $ policy_arg)

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the Monte-Carlo engine (0 = one per \
           recommended core).  The estimate is bit-identical for every \
           value: parallelism changes only who executes a batch.")

let mc_samples_arg =
  Arg.(
    value & opt int 100_000
    & info [ "samples" ] ~docv:"N" ~doc:"Number of worlds to draw.")

let confidence_arg =
  Arg.(
    value
    & opt float 0.99
    & info [ "confidence" ] ~docv:"C"
        ~doc:"Two-sided coverage level of the reported interval, in (0,1).")

let run_mc table query opened policy domains samples confidence seed stats =
  with_stats stats @@ fun () ->
  let ti = read_table table in
  let space =
    if opened then Mc_eval.Completed (parse_policy policy ti)
    else Mc_eval.Ti (Countable_ti.create (Fact_source.of_ti_table ti))
  in
  let phi = Fo_parse.parse_exn query in
  let domains = if domains = 0 then None else Some domains in
  let r = Mc_eval.boolean ?domains ~confidence ~seed ~samples space phi in
  Printf.printf
    "P[ %s ] ~ %.8f  (%d/%d hits; %g%% interval [%.8f, %.8f]; truncation TV \
     %.2e; %d domains, %d batches of %d)\n"
    query r.Mc_eval.estimate r.Mc_eval.hits r.Mc_eval.samples
    (100.0 *. r.Mc_eval.confidence)
    (Interval.lo r.Mc_eval.bounds)
    (Interval.hi r.Mc_eval.bounds)
    r.Mc_eval.truncation_tv r.Mc_eval.domains_used r.Mc_eval.batches
    r.Mc_eval.batch_size;
  if stats then begin
    print_endline "-- interval width trajectory --";
    List.iter
      (fun (n, w) -> Printf.printf "  after %8d worlds: width %.6f\n" n w)
      r.Mc_eval.width_trajectory
  end

let mc_cmd =
  let doc =
    "Monte-Carlo query estimation: draw worlds from the (optionally \
     completed) PDB in parallel across domains and report a \
     Wilson-score confidence interval widened by the truncation bound."
  in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(
      const run_mc $ table_arg $ query_arg 1 $ opened_arg $ policy_arg
      $ domains_arg $ mc_samples_arg $ confidence_arg $ seed_arg $ stats_arg)

let run_info table =
  let ti = read_table table in
  Printf.printf "facts:          %d\n" (Ti_table.size ti);
  Printf.printf "expected size:  %s\n"
    (Rational.to_decimal_string (Ti_table.expected_instance_size ti));
  Printf.printf "active domain:  %d values\n"
    (List.length (Ti_table.active_domain ti));
  List.iter
    (fun (f, p) ->
      Printf.printf "  %s %s\n" (Fact.to_string f) (Rational.to_string p))
    (Ti_table.facts ti)

let info_cmd =
  let doc = "Show statistics of a TI table." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run_info $ table_arg)

let () =
  let doc = "infinite open-world probabilistic databases" in
  let info = Cmd.info "iowpdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ query_cmd; open_cmd; anytime_cmd; mc_cmd; sample_cmd; info_cmd ]))
