(* Thin wrapper: the whole CLI lives in lib/cli so the test suite can
   drive it through Cmdliner's evaluation API.  Cmd.eval' returns the
   exit code our guarded commands produce. *)

let () = exit (Cli.main ())
