(** Boolean provenance (lineage) of first-order sentences.

    Fix a finite alphabet of possible facts [F] (for a finite
    tuple-independent PDB: all facts with positive marginal; for the
    truncation algorithm of Proposition 6.1: the first [n] facts).  Every
    world is a subset of [F], so a sentence [phi] evaluates, over the
    fixed quantification domain, to a Boolean function of the indicator
    variables of the facts.  That function — the lineage — has the same
    probability as [phi], and is computed by weighted model counting
    (see {!Wmc}). *)

type alphabet

val alphabet : Fact.t list -> alphabet
(** Duplicates are collapsed; variable indices are assigned in list
    order (first occurrence). *)

val alphabet_size : alphabet -> int
val facts : alphabet -> Fact.t list
val var_of_fact : alphabet -> Fact.t -> int option
val fact_of_var : alphabet -> int -> Fact.t
(** @raise Invalid_argument on an out-of-range index. *)

val domain : ?extra:Value.t list -> alphabet -> Fo.t -> Value.t list
(** Quantification domain used by {!of_sentence}: the active domain of
    the alphabet's facts, the formula's constants, plus [extra]. *)

val of_sentence : ?extra:Value.t list -> alphabet -> Fo.t -> Bool_expr.t
(** The lineage of a sentence.  Atoms naming facts outside the alphabet
    become [False] (they hold in no world over this alphabet).
    @raise Invalid_argument if the formula has free variables. *)

val of_formula :
  ?extra:Value.t list ->
  alphabet ->
  (string * Value.t) list ->
  Fo.t ->
  Bool_expr.t
(** Lineage of a formula under bindings for its free variables. *)
