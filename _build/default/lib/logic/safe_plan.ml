(* Safe-plan lifted inference for hierarchical Boolean CQs without
   self-joins.

   The evaluation recursion mirrors the textbook algorithm:
     - ground atoms factor out as independent events;
     - connected components (by shared variables) are independent;
     - a variable occurring in all atoms of a component is a "root":
       its values are independent alternatives, so
       P = 1 - prod_a (1 - P(Q[x := a]));
     - if a non-ground connected component has no root variable the query
       is non-hierarchical and we refuse (the lineage engine handles it).

   No self-joins means distinct atoms always touch disjoint sets of facts,
   which is what makes the independence claims above sound. *)

type atom = { rel : string; args : Fo.term list }

type cq = { atoms : atom list }

module SSet = Set.Make (String)
module SMap = Map.Make (String)
module VSet = Set.Make (Value)

(* ------------------------------------------------------------------ *)
(* Shape recognition *)
(* ------------------------------------------------------------------ *)

let rec strip_exists = function
  | Fo.Exists (_, f) -> strip_exists f
  | f -> f

let rec gather_conjuncts acc = function
  | Fo.And (f, g) -> gather_conjuncts (gather_conjuncts acc f) g
  | f -> f :: acc

let of_sentence phi =
  if Fo.free_vars phi <> [] then None
  else begin
    let body = strip_exists phi in
    let conjuncts = gather_conjuncts [] body in
    (* Collect variable = constant equalities to substitute away. *)
    let rec collect eqs atoms = function
      | [] -> Some (eqs, atoms)
      | Fo.Atom (r, ts) :: rest -> collect eqs ({ rel = r; args = ts } :: atoms) rest
      | Fo.Eq (Fo.Var x, Fo.Const v) :: rest
      | Fo.Eq (Fo.Const v, Fo.Var x) :: rest ->
        collect ((x, v) :: eqs) atoms rest
      | Fo.Eq (Fo.Const v, Fo.Const w) :: rest ->
        if Value.equal v w then collect eqs atoms rest else None
      | Fo.True :: rest -> collect eqs atoms rest
      | _ -> None
    in
    match collect [] [] conjuncts with
    | None -> None
    | Some (eqs, atoms) ->
      (* Apply substitutions until fixpoint (chains x = c only, so one
         pass is enough). *)
      let subst_term t =
        match t with
        | Fo.Var x -> (
            match List.assoc_opt x eqs with
            | Some v -> Fo.Const v
            | None -> t)
        | Fo.Const _ -> t
      in
      Some { atoms = List.map (fun a -> { a with args = List.map subst_term a.args }) atoms }
  end

let atom_vars a =
  List.fold_left
    (fun acc t -> match t with Fo.Var x -> SSet.add x acc | Fo.Const _ -> acc)
    SSet.empty a.args

let has_self_join q =
  let rec go seen = function
    | [] -> false
    | a :: rest -> SSet.mem a.rel seen || go (SSet.add a.rel seen) rest
  in
  go SSet.empty q.atoms

let is_hierarchical q =
  (* sg(x) = indices of atoms containing x; hierarchical iff all pairs of
     sg sets are nested or disjoint. *)
  let sg = Hashtbl.create 16 in
  List.iteri
    (fun i a ->
      SSet.iter
        (fun x ->
          let cur = Option.value (Hashtbl.find_opt sg x) ~default:[] in
          Hashtbl.replace sg x (i :: cur))
        (atom_vars a))
    q.atoms;
  let sets = Hashtbl.fold (fun _ is acc -> SSet.of_list (List.map string_of_int is) :: acc) sg [] in
  List.for_all
    (fun s1 ->
      List.for_all
        (fun s2 ->
          SSet.subset s1 s2 || SSet.subset s2 s1
          || SSet.is_empty (SSet.inter s1 s2))
        sets)
    sets

let is_safe phi =
  match of_sentence phi with
  | None -> false
  | Some q -> (not (has_self_join q)) && is_hierarchical q

(* ------------------------------------------------------------------ *)
(* Evaluation *)
(* ------------------------------------------------------------------ *)

exception Unsafe

module Make (C : Prob.CARRIER) = struct
  (* Index the TI table per relation for candidate matching. *)
  let index facts =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun f ->
        let cur = Option.value (Hashtbl.find_opt tbl (Fact.rel f)) ~default:[] in
        Hashtbl.replace tbl (Fact.rel f) (f :: cur))
      facts;
    tbl

  (* Does a ground-or-not atom pattern match a fact's argument list? *)
  let matches atom fact =
    Fact.arity fact = List.length atom.args
    && List.for_all2
         (fun t v ->
           match t with
           | Fo.Const c -> Value.equal c v
           | Fo.Var _ -> true)
         atom.args (Fact.args fact)

  let candidate_values idx atoms x =
    (* Values v such that substituting x := v keeps at least one atom
       matchable; union over atoms containing x of the values at x's
       positions in matching facts. *)
    List.fold_left
      (fun acc a ->
        if not (SSet.mem x (atom_vars a)) then acc
        else begin
          let facts = Option.value (Hashtbl.find_opt idx a.rel) ~default:[] in
          List.fold_left
            (fun acc f ->
              if matches a f then begin
                let acc = ref acc in
                List.iteri
                  (fun i t ->
                    match t with
                    | Fo.Var y when y = x ->
                      acc := VSet.add (Fact.arg f i) !acc
                    | _ -> ())
                  a.args;
                !acc
              end
              else acc)
            acc facts
        end)
      VSet.empty atoms

  let subst_atom x v a =
    {
      a with
      args =
        List.map
          (function
            | Fo.Var y when y = x -> Fo.Const v
            | t -> t)
          a.args;
    }

  let is_ground a =
    List.for_all (function Fo.Const _ -> true | Fo.Var _ -> false) a.args

  (* Connected components of atoms under shared variables. *)
  let components atoms =
    let arr = Array.of_list atoms in
    let n = Array.length arr in
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if not (SSet.is_empty (SSet.inter (atom_vars arr.(i)) (atom_vars arr.(j))))
        then union i j
      done
    done;
    let buckets = Hashtbl.create 8 in
    for i = n - 1 downto 0 do
      let r = find i in
      let cur = Option.value (Hashtbl.find_opt buckets r) ~default:[] in
      Hashtbl.replace buckets r (arr.(i) :: cur)
    done;
    Hashtbl.fold (fun _ c acc -> c :: acc) buckets []

  let rec prob idx weight atoms =
    (* 1. Factor out ground atoms (independent: no self-joins). *)
    let ground, open_atoms = List.partition is_ground atoms in
    let ground_p =
      List.fold_left
        (fun acc a ->
          let f =
            Fact.make a.rel
              (List.map
                 (function Fo.Const v -> v | Fo.Var _ -> assert false)
                 a.args)
          in
          C.mul acc (weight f))
        C.one ground
    in
    match open_atoms with
    | [] -> ground_p
    | _ ->
      (* 2. Independent connected components. *)
      let comps = components open_atoms in
      let comp_p =
        List.fold_left
          (fun acc comp -> C.mul acc (prob_component idx weight comp))
          C.one comps
      in
      C.mul ground_p comp_p

  and prob_component idx weight comp =
    (* 3. Find a root variable: occurs in every atom of the component. *)
    let var_sets = List.map atom_vars comp in
    let shared =
      match var_sets with
      | [] -> SSet.empty
      | s :: rest -> List.fold_left SSet.inter s rest
    in
    match SSet.choose_opt shared with
    | None -> raise Unsafe
    | Some x ->
      (* Independent project: x's values are independent alternatives. *)
      let values = candidate_values idx comp x in
      let miss_all =
        VSet.fold
          (fun v acc ->
            let grounded = List.map (subst_atom x v) comp in
            C.mul acc (C.compl (prob idx weight grounded)))
          values C.one
      in
      C.compl miss_all

  let probability ~weight ~facts phi =
    match of_sentence phi with
    | None -> None
    | Some q ->
      if has_self_join q then None
      else begin
        let idx = index facts in
        match prob idx weight q.atoms with
        | p -> Some p
        | exception Unsafe -> None
      end
end
