(** Lifted ("extensional", safe-plan) inference for hierarchical Boolean
    conjunctive queries over tuple-independent tables.

    This is the classical Dalvi-Suciu dichotomy's tractable side, built as
    one of the interchangeable "traditional closed-world query evaluation
    algorithms" that Proposition 6.1 plugs into: for a Boolean CQ without
    self-joins whose variable structure is hierarchical, the probability
    is computed in polynomial time by independent-project and
    independent-join steps — no lineage compilation needed.

    Queries outside the supported shape are rejected with [None]
    (completeness is the lineage engine's job, not this one's). *)

type cq
(** A Boolean conjunctive query: [exists x1...xk. A_1 & ... & A_m] with
    positive relational atoms. *)

val of_sentence : Fo.t -> cq option
(** Recognizes sentences of CQ shape.  Equality atoms between a variable
    and a constant are folded in by substitution; [None] for anything
    else (negation, disjunction, universal quantifiers, free variables,
    variable-variable equalities). *)

val has_self_join : cq -> bool
(** Two atoms sharing a relation symbol. *)

val is_hierarchical : cq -> bool
(** For every two variables, their atom sets are nested or disjoint —
    the safety criterion for CQs without self-joins. *)

val is_safe : Fo.t -> bool
(** CQ shape, no self-joins, hierarchical. *)

module Make (C : Prob.CARRIER) : sig
  val probability :
    weight:(Fact.t -> C.t) -> facts:Fact.t list -> Fo.t -> C.t option
  (** [probability ~weight ~facts q]: the probability of the Boolean query
      [q] in the tuple-independent PDB whose possible facts are [facts]
      with marginals [weight].  [None] when the query is not safe.
      Existential quantifiers range over the values occurring in [facts]
      (plus the query's constants), matching the lineage engine's
      domain. *)
end
