(** Active-domain evaluation of first-order formulas on finite instances.

    Quantifiers range over [adom(D) ∪ adom(phi) ∪ extra], where [extra] is
    an optional caller-supplied finite domain.  By Fact 2.1 this captures
    all finite answers of FO queries over an infinite universe; it is also
    the standard safety convention that keeps evaluation total. *)

val models : ?extra_domain:Value.t list -> Instance.t -> Fo.t -> bool
(** [models d phi] decides [D |= phi] for a sentence.
    @raise Invalid_argument if [phi] has free variables. *)

val satisfies :
  ?extra_domain:Value.t list ->
  Instance.t ->
  (string * Value.t) list ->
  Fo.t ->
  bool
(** [satisfies d env phi] for a formula whose free variables are all bound
    by [env]. @raise Invalid_argument if some free variable is unbound. *)

val answers :
  ?extra_domain:Value.t list -> Instance.t -> Fo.t -> string list * Tuple.Set.t
(** [answers d phi] is [(xs, tuples)]: the free variables in sorted order
    and the set [phi(D)] of satisfying valuations (projected in that
    order).  For a sentence, the answer is the empty tuple iff [D |= phi]
    (the Boolean convention of Section 2.1). *)

val answer_count : ?extra_domain:Value.t list -> Instance.t -> Fo.t -> int

val evaluation_domain : Instance.t -> Fo.t -> Value.t list -> Value.t list
(** The combined quantification domain used by the functions above
    (sorted, duplicate-free); exposed for tests and for the lineage
    construction. *)
