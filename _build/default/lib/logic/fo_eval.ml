module SMap = Map.Make (String)
module VSet = Set.Make (Value)

let evaluation_domain inst phi extra =
  let s =
    List.fold_left
      (fun acc v -> VSet.add v acc)
      VSet.empty
      (Instance.active_domain inst @ Fo.constants phi @ extra)
  in
  VSet.elements s

let term_value env = function
  | Fo.Var x -> (
      match SMap.find_opt x env with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Fo_eval: unbound variable %s" x))
  | Fo.Const v -> v

let rec eval inst domain env = function
  | Fo.True -> true
  | Fo.False -> false
  | Fo.Atom (r, ts) ->
    let args = List.map (term_value env) ts in
    Instance.mem (Fact.make r args) inst
  | Fo.Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
  | Fo.Cmp (op, a, b) ->
    let c = Value.compare (term_value env a) (term_value env b) in
    (match op with
     | Fo.Lt -> c < 0
     | Fo.Le -> c <= 0
     | Fo.Gt -> c > 0
     | Fo.Ge -> c >= 0)
  | Fo.Not f -> not (eval inst domain env f)
  | Fo.And (f, g) -> eval inst domain env f && eval inst domain env g
  | Fo.Or (f, g) -> eval inst domain env f || eval inst domain env g
  | Fo.Implies (f, g) -> (not (eval inst domain env f)) || eval inst domain env g
  | Fo.Exists (x, f) ->
    List.exists (fun v -> eval inst domain (SMap.add x v env) f) domain
  | Fo.Forall (x, f) ->
    List.for_all (fun v -> eval inst domain (SMap.add x v env) f) domain

let satisfies ?(extra_domain = []) inst bindings phi =
  let env =
    List.fold_left (fun acc (x, v) -> SMap.add x v acc) SMap.empty bindings
  in
  let missing =
    List.filter (fun x -> not (SMap.mem x env)) (Fo.free_vars phi)
  in
  if missing <> [] then
    invalid_arg
      (Printf.sprintf "Fo_eval.satisfies: unbound free variables %s"
         (String.concat ", " missing))
  else begin
    let domain =
      evaluation_domain inst phi (extra_domain @ List.map snd bindings)
    in
    eval inst domain env phi
  end

let models ?(extra_domain = []) inst phi =
  match Fo.free_vars phi with
  | [] ->
    eval inst (evaluation_domain inst phi extra_domain) SMap.empty phi
  | fvs ->
    invalid_arg
      (Printf.sprintf "Fo_eval.models: formula has free variables %s"
         (String.concat ", " fvs))

let answers ?(extra_domain = []) inst phi =
  let xs = Fo.free_vars phi in
  let domain = evaluation_domain inst phi extra_domain in
  let rec assign env = function
    | [] ->
      if eval inst domain env phi then
        Tuple.Set.singleton
          (Array.of_list (List.map (fun x -> SMap.find x env) xs))
      else Tuple.Set.empty
    | x :: rest ->
      List.fold_left
        (fun acc v -> Tuple.Set.union acc (assign (SMap.add x v env) rest))
        Tuple.Set.empty domain
  in
  (xs, assign SMap.empty xs)

let answer_count ?extra_domain inst phi =
  Tuple.Set.cardinal (snd (answers ?extra_domain inst phi))
