module VSet = Set.Make (Value)
module SMap = Map.Make (String)

type alphabet = {
  to_var : int Fact.Map.t;
  of_var : Fact.t array;
}

let alphabet fact_list =
  let rec go to_var rev_facts next = function
    | [] -> (to_var, rev_facts)
    | f :: rest ->
      if Fact.Map.mem f to_var then go to_var rev_facts next rest
      else go (Fact.Map.add f next to_var) (f :: rev_facts) (next + 1) rest
  in
  let to_var, rev_facts = go Fact.Map.empty [] 0 fact_list in
  { to_var; of_var = Array.of_list (List.rev rev_facts) }

let alphabet_size a = Array.length a.of_var
let facts a = Array.to_list a.of_var
let var_of_fact a f = Fact.Map.find_opt f a.to_var

let fact_of_var a i =
  if i < 0 || i >= Array.length a.of_var then
    invalid_arg "Lineage.fact_of_var: index out of range"
  else a.of_var.(i)

let domain ?(extra = []) a phi =
  let s =
    Array.fold_left
      (fun acc f ->
        List.fold_left (fun acc v -> VSet.add v acc) acc (Fact.args f))
      VSet.empty a.of_var
  in
  let s =
    List.fold_left (fun acc v -> VSet.add v acc) s (Fo.constants phi @ extra)
  in
  VSet.elements s

let term_value env = function
  | Fo.Var x -> (
      match SMap.find_opt x env with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Lineage: unbound variable %s" x))
  | Fo.Const v -> v

let rec lin a dom env = function
  | Fo.True -> Bool_expr.tru
  | Fo.False -> Bool_expr.fls
  | Fo.Atom (r, ts) -> (
      let f = Fact.make r (List.map (term_value env) ts) in
      match Fact.Map.find_opt f a.to_var with
      | Some i -> Bool_expr.var i
      | None -> Bool_expr.fls)
  | Fo.Eq (s, t) ->
    if Value.equal (term_value env s) (term_value env t) then Bool_expr.tru
    else Bool_expr.fls
  | Fo.Cmp (op, s, t) ->
    let c = Value.compare (term_value env s) (term_value env t) in
    let holds =
      match op with
      | Fo.Lt -> c < 0
      | Fo.Le -> c <= 0
      | Fo.Gt -> c > 0
      | Fo.Ge -> c >= 0
    in
    if holds then Bool_expr.tru else Bool_expr.fls
  | Fo.Not f -> Bool_expr.neg (lin a dom env f)
  | Fo.And (f, g) -> Bool_expr.and2 (lin a dom env f) (lin a dom env g)
  | Fo.Or (f, g) -> Bool_expr.or2 (lin a dom env f) (lin a dom env g)
  | Fo.Implies (f, g) ->
    Bool_expr.implies (lin a dom env f) (lin a dom env g)
  | Fo.Exists (x, f) ->
    Bool_expr.disj (List.map (fun v -> lin a dom (SMap.add x v env) f) dom)
  | Fo.Forall (x, f) ->
    Bool_expr.conj (List.map (fun v -> lin a dom (SMap.add x v env) f) dom)

let of_formula ?extra a bindings phi =
  let env =
    List.fold_left (fun acc (x, v) -> SMap.add x v acc) SMap.empty bindings
  in
  let missing =
    List.filter (fun x -> not (SMap.mem x env)) (Fo.free_vars phi)
  in
  if missing <> [] then
    invalid_arg
      (Printf.sprintf "Lineage.of_formula: unbound free variables %s"
         (String.concat ", " missing))
  else begin
    let extra =
      Option.value extra ~default:[] @ List.map snd bindings
    in
    lin a (domain ~extra a phi) env phi
  end

let of_sentence ?extra a phi =
  match Fo.free_vars phi with
  | [] -> of_formula ?extra a [] phi
  | fvs ->
    invalid_arg
      (Printf.sprintf "Lineage.of_sentence: formula has free variables %s"
         (String.concat ", " fvs))
