lib/logic/fo_parse.ml: Array Buffer Fo List Printf String Value
