lib/logic/lineage.ml: Array Bool_expr Fact Fo List Map Option Printf Set String Value
