lib/logic/fo_parse.mli: Fo
