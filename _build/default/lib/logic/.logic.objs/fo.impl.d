lib/logic/fo.ml: Format List Map Printf Set Stdlib String Value
