lib/logic/fo_eval.ml: Array Fact Fo Instance List Map Printf Set String Tuple Value
