lib/logic/safe_plan.ml: Array Fact Fo Fun Hashtbl List Map Option Prob Set String Value
