lib/logic/fo_eval.mli: Fo Instance Tuple Value
