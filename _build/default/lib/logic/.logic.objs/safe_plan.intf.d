lib/logic/safe_plan.mli: Fact Fo Prob
