lib/logic/lineage.mli: Bool_expr Fact Fo Value
