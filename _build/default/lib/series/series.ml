type t = {
  name : string;
  term : int -> float;
  tail : int -> float option;
}

let make ?(name = "custom") ~term ~tail () = { name; term; tail }

let name s = s.name

let term s i =
  if i < 0 then invalid_arg "Series.term: negative index"
  else begin
    let v = s.term i in
    if v < 0.0 || Float.is_nan v then
      invalid_arg (Printf.sprintf "Series.term: negative term at %d" i)
    else v
  end

let tail s n = s.tail n

let geometric ?(first = 1.0) ~ratio () =
  if not (ratio >= 0.0 && ratio < 1.0) then invalid_arg "Series.geometric";
  if first < 0.0 then invalid_arg "Series.geometric";
  {
    name = Printf.sprintf "geometric(%g,%g)" first ratio;
    term = (fun i -> first *. (ratio ** float_of_int i));
    (* Exact tail: first * ratio^n / (1 - ratio). *)
    tail = (fun n -> Some (first *. (ratio ** float_of_int n) /. (1.0 -. ratio)));
  }

let zeta2 ?(scale = 1.0) () =
  if scale < 0.0 then invalid_arg "Series.zeta2";
  let pi = 4.0 *. atan 1.0 in
  {
    name = Printf.sprintf "zeta2(%g)" scale;
    term = (fun i -> scale /. (float_of_int (i + 1) ** 2.0));
    (* Integral test: sum_{i>=n} 1/(i+1)^2 <= 1/n for n >= 1. *)
    tail =
      (fun n ->
        if n <= 0 then Some (scale *. pi *. pi /. 6.0)
        else Some (scale /. float_of_int n));
  }

let basel_probability () =
  let pi = 4.0 *. atan 1.0 in
  let s = zeta2 ~scale:(6.0 /. (pi *. pi)) () in
  { s with name = "basel-probability" }

let log_slow ?(scale = 1.0) () =
  if scale < 0.0 then invalid_arg "Series.log_slow";
  {
    name = Printf.sprintf "log-slow(%g)" scale;
    term =
      (fun i ->
        let x = float_of_int (i + 2) in
        scale /. (x *. log x *. log x));
    (* Integral test: sum_{i>=n} 1/((i+2) ln^2 (i+2)) <= 1/ln(n+1) for
       n >= 1 (the integral of 1/(x ln^2 x) from n+1 is 1/ln(n+1)). *)
    tail =
      (fun n ->
        let x = float_of_int (Stdlib.max 1 n + 1) in
        Some (scale /. log x));
  }

let harmonic ?(scale = 1.0) () =
  if scale < 0.0 then invalid_arg "Series.harmonic";
  {
    name = Printf.sprintf "harmonic(%g)" scale;
    term = (fun i -> scale /. float_of_int (i + 1));
    tail = (fun _ -> if scale = 0.0 then Some 0.0 else None);
  }

let constant ~value =
  if value < 0.0 then invalid_arg "Series.constant";
  {
    name = Printf.sprintf "constant(%g)" value;
    term = (fun _ -> value);
    tail = (fun _ -> if value = 0.0 then Some 0.0 else None);
  }

let of_list xs =
  List.iter
    (fun x -> if x < 0.0 || Float.is_nan x then invalid_arg "Series.of_list")
    xs;
  let a = Array.of_list xs in
  let n = Array.length a in
  (* Suffix sums for exact tails. *)
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. a.(i)
  done;
  {
    name = Printf.sprintf "finite(%d)" n;
    term = (fun i -> if i < n then a.(i) else 0.0);
    tail = (fun k -> Some (if k >= n then 0.0 else suffix.(k)));
  }

let map_scale c s =
  if c < 0.0 then invalid_arg "Series.map_scale";
  {
    name = Printf.sprintf "%g*%s" c s.name;
    term = (fun i -> c *. s.term i);
    tail = (fun n -> Option.map (fun t -> c *. t) (s.tail n));
  }

let drop k s =
  if k < 0 then invalid_arg "Series.drop";
  {
    name = Printf.sprintf "drop(%d,%s)" k s.name;
    term = (fun i -> s.term (i + k));
    tail = (fun n -> s.tail (n + k));
  }

let partial_sum s n =
  Prob.kahan_sum_seq (Seq.init n (fun i -> term s i))

let total_upper s n =
  Option.map (fun t -> partial_sum s n +. t) (s.tail n)

let converges s =
  (* A certificate at any point suffices; check a few in case the bound
     is only available past a burn-in. *)
  List.exists (fun n -> s.tail n <> None) [ 0; 1; 16; 1024 ]

let prefix_for_tail ?(max_n = 1 lsl 22) s bound =
  if bound < 0.0 then invalid_arg "Series.prefix_for_tail";
  let ok n = match s.tail n with Some t -> t <= bound | None -> false in
  if not (ok max_n) then None
  else begin
    (* Galloping + binary search over the antitone predicate. *)
    let rec gallop n = if ok n then n else gallop (Stdlib.min max_n (2 * n + 1)) in
    let hi = gallop 0 in
    let rec bisect lo hi =
      (* invariant: ok hi, not (ok (lo-1)) handled by construction *)
      if lo >= hi then hi
      else begin
        let mid = (lo + hi) / 2 in
        if ok mid then bisect lo mid else bisect (mid + 1) hi
      end
    in
    Some (bisect 0 hi)
  end

let product_compl_prefix s n =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let p = term s i in
    if p > 1.0 then invalid_arg "Series.product_compl_prefix: term above 1";
    acc := !acc +. log1p (-.p)
  done;
  exp !acc

let product_compl_bounds s n =
  match s.tail n with
  | None -> None
  | Some t ->
    let prefix = product_compl_prefix s n in
    (* Claim (∗) of the paper: if all p_i < 1/2 then
       prod (1-p_i) >= exp(-(3/2) sum p_i).  Soundness of applying it to
       the tail needs every remaining term < 1/2; a sound sufficient
       condition is tail mass < 1/2, since terms are bounded by tails. *)
    if t < 0.5 then Some (prefix *. exp (-1.5 *. t), prefix)
    else Some (0.0, prefix)

let star_bound_gap s n =
  let ok = ref true in
  for i = 0 to n - 1 do
    if term s i >= 0.5 then ok := false
  done;
  if not !ok then None
  else begin
    let lower = exp (-1.5 *. partial_sum s n) in
    Some (product_compl_prefix s n /. lower)
  end

let distributive_law_check xs =
  let k = List.length xs in
  if k > 20 then invalid_arg "Series.distributive_law_check: too many terms";
  let a = Array.of_list xs in
  let lhs = Array.fold_left (fun acc x -> acc *. (1.0 +. x)) 1.0 a in
  let rhs = ref 0.0 in
  for mask = 0 to (1 lsl k) - 1 do
    let p = ref 1.0 in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then p := !p *. a.(i)
    done;
    rhs := !rhs +. !p
  done;
  Float.abs (lhs -. !rhs)
