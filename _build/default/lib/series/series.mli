(** Nonnegative real series with certified tail bounds.

    A value of type {!t} represents a series [sum_{i>=0} a_i] of
    nonnegative terms together with, when the series converges, an upper
    bound on each tail [sum_{i>=n} a_i].  This is exactly the information
    Section 6 of Grohe & Lindner needs to truncate a countable
    tuple-independent PDB with a guaranteed residual mass, and Section 4
    needs to decide whether a family of fact probabilities is realizable at
    all (Theorem 4.8: realizable iff the series converges).

    Tail bounds are required to be sound (true tail [<=] bound) and
    monotone nonincreasing; they need not be tight. *)

type t

val make :
  ?name:string -> term:(int -> float) -> tail:(int -> float option) -> unit -> t
(** [term i] is the [i]-th term ([i >= 0], must be [>= 0]); [tail n] is an
    upper bound on [sum_{i>=n} term i], or [None] when no finite bound is
    available (divergent or unknown). [tail] must be antitone in [n]. *)

val name : t -> string
val term : t -> int -> float
val tail : t -> int -> float option

(** {1 Stock series} *)

val geometric : ?first:float -> ratio:float -> unit -> t
(** [a_i = first * ratio^i] with [0 <= ratio < 1]; exact tails. *)

val zeta2 : ?scale:float -> unit -> t
(** [a_i = scale / (i+1)^2]; tail bound [scale / n] by the integral test
    (and [scale * pi^2/6] at 0).  With [scale = 6/pi^2] the terms are the
    probabilities of Example 2.4 of the paper. *)

val basel_probability : unit -> t
(** [zeta2] with [scale = 6/pi^2], i.e. a probability distribution on the
    positive integers. *)

val log_slow : ?scale:float -> unit -> t
(** [a_i = scale / ((i+2) * ln^2 (i+2))]: a convergent series whose tail
    [~ scale / ln n] decays so slowly that truncation budgets explode —
    the "series may converge arbitrarily slowly" remark of Section 6. *)

val harmonic : ?scale:float -> unit -> t
(** [a_i = scale / (i+1)]; divergent: [tail] is always [None]. *)

val constant : value:float -> t
(** [a_i = value] for all [i]; divergent unless [value = 0]. *)

val of_list : float list -> t
(** A finite series padded with zeros; exact tails. *)

val map_scale : float -> t -> t
(** Multiply every term (and tails) by a nonnegative constant. *)

val drop : int -> t -> t
(** [drop k s] is the series of terms [k, k+1, ...] of [s]. *)

(** {1 Sums} *)

val partial_sum : t -> int -> float
(** Compensated sum of the first [n] terms. *)

val total_upper : t -> int -> float option
(** [partial_sum n + tail n]: an upper bound on the total sum. *)

val converges : t -> bool
(** True iff some tail bound is finite.  (For stock series this is exact;
    for [make] it reflects the supplied certificate.) *)

val prefix_for_tail : ?max_n:int -> t -> float -> int option
(** [prefix_for_tail s bound] is the least [n <= max_n] (default [2^22])
    with [tail n <= bound], if any: the truncation point guaranteeing
    residual mass at most [bound]. *)

(** {1 Infinite products (Section 2.2 of the paper)} *)

val product_compl_prefix : t -> int -> float
(** [prod_{i<n} (1 - a_i)], computed in log space.  Requires terms in
    [\[0,1\]]. *)

val product_compl_bounds : t -> int -> (float * float) option
(** Two-sided bounds on the full infinite product [prod_{i>=0} (1 - a_i)]
    from the first [n] factors and the tail bound at [n]:
    lower = prefix * exp(-(3/2) tail n)  (claim (∗), valid when all
    remaining terms are < 1/2; the bound checks [term n < 1/2] samples),
    upper = prefix * 1.
    Returns [None] if the series lacks a finite tail bound at [n]. *)

val star_bound_gap : t -> int -> float option
(** Diagnostic for experiment E10: ratio between the true prefix product
    [prod_{i<n}(1-a_i)] and the claim-(∗) lower bound
    [exp(-(3/2) * partial_sum n)]; [None] when some term [>= 1/2] makes
    (∗) inapplicable. Always [>= 1] when defined. *)

(** {1 Lemma 2.3 (finite check)} *)

val distributive_law_check : float list -> float
(** For a finite list [a_1..a_k], returns
    [|prod (1+a_i) - sum_{J subseteq [k]} prod_{j in J} a_j|] — the
    finite instance of Lemma 2.3, used by tests to validate the identity
    the countable TI construction rests on. *)
