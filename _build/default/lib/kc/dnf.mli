(** Monotone DNF representations of negation-free Boolean expressions.

    The lineage of a positive (union-of-conjunctive-queries-shaped) query
    is monotone; its DNF is the input format of the Karp-Luby FPRAS for
    weighted DNF counting — the classical "anytime" alternative to exact
    compilation that the finite-PDB literature pairs with lineages. *)

type clause = int list
(** A conjunction of positive variables, sorted, duplicate-free. *)

type t = clause list
(** A disjunction of clauses; no clause subsumes another (absorption is
    applied). *)

val of_expr : ?max_clauses:int -> Bool_expr.t -> t option
(** Distribute a negation-free expression into minimal monotone DNF.
    [None] if the expression contains negation or the intermediate clause
    count exceeds [max_clauses] (default 4096).  [Some []] is the constant
    false; [Some [[]]] the constant true. *)

val eval : (int -> bool) -> t -> bool
val vars : t -> int list
val num_clauses : t -> int

val to_expr : t -> Bool_expr.t

val clause_weight :
  (module Prob.CARRIER with type t = 'p) -> (int -> 'p) -> clause -> 'p
(** Product of the variables' marginals: the probability that the clause
    holds under independence. *)

(** {1 Karp-Luby estimation} *)

type estimate = {
  value : float;
  std_error : float;
  samples : int;
  union_bound : float;  (** [sum_i w_i], an upper bound on the true value *)
}

val karp_luby :
  ?seed:int -> samples:int -> weight:(int -> float) -> t -> estimate
(** The Karp-Luby coverage estimator for [P(C_1 or ... or C_m)] with
    independent variables: draw a clause proportionally to its weight,
    complete the world conditioned on that clause, count how many clauses
    the world satisfies; [union_bound * E(1/count)] is unbiased.  Relative
    error shrinks with [sqrt samples] {e independently of how small the
    probability is} — exactly what plain Monte Carlo lacks.
    @raise Invalid_argument on an empty DNF (probability is exactly 0) or
    nonpositive sample count. *)
