(** Boolean expressions over integer-indexed variables.

    The lineage (Boolean provenance) of a first-order query over a
    probabilistic database is such an expression whose variables are the
    possible facts; the probability of the query is the weighted model
    count of its lineage.  Variable indices are assigned by the caller
    (see {!Lineage} in the [logic] library). *)

type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list

(** {1 Smart constructors} — perform cheap simplifications (unit laws,
    flattening, double negation) so lineage construction never builds
    degenerate towers. *)

val tru : t
val fls : t
val var : int -> t
val neg : t -> t
val conj : t list -> t
val disj : t list -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val implies : t -> t -> t

(** {1 Queries} *)

val eval : (int -> bool) -> t -> bool

val vars : t -> int list
(** Sorted, duplicate-free. *)

val size : t -> int
(** Number of AST nodes. *)

val is_constant : t -> bool option
(** [Some b] if syntactically the constant [b]. *)

val occurrence_order : t -> int list
(** Variables in depth-first first-occurrence order.  Using this as a BDD
    variable order keeps variables that interact (e.g. the [R(v)] and
    [S(v)] of one join value) adjacent, which avoids the classic
    exponential blowup of sorted-by-relation orders on join lineages. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Exhaustive model counting} *)

val model_count : t -> int
(** Number of satisfying assignments over [vars t].  Exponential; for
    cross-checking only. @raise Invalid_argument beyond 20 variables. *)

val brute_force_probability :
  (module Prob.CARRIER with type t = 'p) -> (int -> 'p) -> t -> 'p
(** Weighted model count by truth-table enumeration: the probability that
    the expression holds when variable [i] is independently true with
    probability [weight i].  Exponential; the reference implementation the
    BDD engine is tested against. @raise Invalid_argument beyond 20
    variables. *)
