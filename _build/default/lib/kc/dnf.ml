type clause = int list

type t = clause list

module ISet = Set.Make (Int)

let clause_of_set s = ISet.elements s

(* Absorption: keep only clauses no proper subset of which is present. *)
let absorb clauses =
  let sets = List.map ISet.of_list clauses in
  let minimal s =
    not
      (List.exists (fun s' -> (not (ISet.equal s' s)) && ISet.subset s' s) sets)
  in
  List.sort_uniq compare
    (List.filter_map
       (fun s -> if minimal s then Some (clause_of_set s) else None)
       sets)

exception Too_large
exception Not_monotone

let of_expr ?(max_clauses = 4096) e =
  let check l = if List.length l > max_clauses then raise Too_large else l in
  (* Clauses as sets during construction. *)
  let rec go = function
    | Bool_expr.True -> [ ISet.empty ]
    | Bool_expr.False -> []
    | Bool_expr.Var v -> [ ISet.singleton v ]
    | Bool_expr.Not _ -> raise Not_monotone
    | Bool_expr.Or es -> check (List.concat_map go es)
    | Bool_expr.And es ->
      List.fold_left
        (fun acc e ->
          let d = go e in
          check
            (List.concat_map
               (fun c -> List.map (fun c' -> ISet.union c c') d)
               acc))
        [ ISet.empty ] es
  in
  match go e with
  | clauses -> Some (absorb (List.map clause_of_set clauses))
  | exception Too_large -> None
  | exception Not_monotone -> None

let eval env t =
  List.exists (fun clause -> List.for_all env clause) t

let vars t =
  ISet.elements
    (List.fold_left
       (fun acc c -> List.fold_left (fun acc v -> ISet.add v acc) acc c)
       ISet.empty t)

let num_clauses = List.length

let to_expr t =
  Bool_expr.disj (List.map (fun c -> Bool_expr.conj (List.map Bool_expr.var c)) t)

let clause_weight (type p) (module C : Prob.CARRIER with type t = p) weight
    clause : p =
  List.fold_left (fun acc v -> C.mul acc (weight v)) C.one clause

type estimate = {
  value : float;
  std_error : float;
  samples : int;
  union_bound : float;
}

let karp_luby ?(seed = 0xBADA55) ~samples ~weight t =
  if samples <= 0 then invalid_arg "Dnf.karp_luby: samples <= 0";
  if t = [] then invalid_arg "Dnf.karp_luby: empty DNF (probability is 0)";
  let clauses = Array.of_list t in
  let m = Array.length clauses in
  let weights =
    Array.map (clause_weight (module Prob.Float_carrier) weight) clauses
  in
  let union_bound = Array.fold_left ( +. ) 0.0 weights in
  if union_bound <= 0.0 then
    { value = 0.0; std_error = 0.0; samples; union_bound }
  else begin
    let g = Prng.create ~seed () in
    let all_vars = Array.of_list (vars t) in
    (* One coverage sample: clause i ~ w_i / W; world drawn conditioned on
       clause i true; contribute 1 / #satisfied-clauses. *)
    let sum = ref 0.0 and sumsq = ref 0.0 in
    for _ = 1 to samples do
      let i = Prng.categorical g weights in
      let forced = ISet.of_list clauses.(i) in
      let assignment = Hashtbl.create 16 in
      Array.iter
        (fun v ->
          Hashtbl.replace assignment v
            (ISet.mem v forced || Prng.bernoulli g (weight v)))
        all_vars;
      let env v = Option.value (Hashtbl.find_opt assignment v) ~default:false in
      let satisfied = ref 0 in
      for j = 0 to m - 1 do
        if List.for_all env clauses.(j) then incr satisfied
      done;
      (* The drawn world satisfies clause i, so satisfied >= 1. *)
      let x = 1.0 /. float_of_int !satisfied in
      sum := !sum +. x;
      sumsq := !sumsq +. (x *. x)
    done;
    let n = float_of_int samples in
    let mean = !sum /. n in
    let var = Float.max 0.0 ((!sumsq /. n) -. (mean *. mean)) in
    {
      value = union_bound *. mean;
      std_error = union_bound *. sqrt (var /. n);
      samples;
      union_bound;
    }
  end
