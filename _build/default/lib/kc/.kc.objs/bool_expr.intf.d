lib/kc/bool_expr.mli: Format Prob
