lib/kc/wmc.ml: Bdd Bool_expr Hashtbl List Prob
