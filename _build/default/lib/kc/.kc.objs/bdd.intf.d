lib/kc/bdd.mli: Bigint Bool_expr Format
