lib/kc/dnf.ml: Array Bool_expr Float Hashtbl Int List Option Prng Prob Set
