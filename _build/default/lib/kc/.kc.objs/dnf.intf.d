lib/kc/dnf.mli: Bool_expr Prob
