lib/kc/bdd.ml: Bigint Bool_expr Format Fun Hashtbl Int List Set
