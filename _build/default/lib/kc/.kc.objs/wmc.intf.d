lib/kc/wmc.mli: Bdd Bool_expr Interval Prob Rational
