lib/kc/bool_expr.ml: Array Format Hashtbl Int List Printf Prob Set Stdlib String
