type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list

let tru = True
let fls = False
let var i = Var i

let neg = function
  | True -> False
  | False -> True
  | Not e -> e
  | e -> Not e

let conj es =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | True :: rest -> gather acc rest
    | False :: _ -> None
    | And inner :: rest -> gather acc (inner @ rest)
    | e :: rest -> gather (e :: acc) rest
  in
  match gather [] es with
  | None -> False
  | Some [] -> True
  | Some [ e ] -> e
  | Some es -> And es

let disj es =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | False :: rest -> gather acc rest
    | True :: _ -> None
    | Or inner :: rest -> gather acc (inner @ rest)
    | e :: rest -> gather (e :: acc) rest
  in
  match gather [] es with
  | None -> True
  | Some [] -> False
  | Some [ e ] -> e
  | Some es -> Or es

let and2 a b = conj [ a; b ]
let or2 a b = disj [ a; b ]
let implies a b = or2 (neg a) b

let rec eval env = function
  | True -> true
  | False -> false
  | Var i -> env i
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es

module ISet = Set.Make (Int)

let vars e =
  let rec go acc = function
    | True | False -> acc
    | Var i -> ISet.add i acc
    | Not e -> go acc e
    | And es | Or es -> List.fold_left go acc es
  in
  ISet.elements (go ISet.empty e)

let occurrence_order e =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go = function
    | True | False -> ()
    | Var i ->
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        acc := i :: !acc
      end
    | Not e -> go e
    | And es | Or es -> List.iter go es
  in
  go e;
  List.rev !acc

let rec size = function
  | True | False | Var _ -> 1
  | Not e -> 1 + size e
  | And es | Or es -> List.fold_left (fun acc e -> acc + size e) 1 es

let is_constant = function
  | True -> Some true
  | False -> Some false
  | _ -> None

let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Var i -> Printf.sprintf "x%d" i
  | Not e -> "!" ^ to_string_atomic e
  | And es -> String.concat " & " (List.map to_string_atomic es)
  | Or es -> String.concat " | " (List.map to_string_atomic es)

and to_string_atomic e =
  match e with
  | True | False | Var _ | Not _ -> to_string e
  | And _ | Or _ -> "(" ^ to_string e ^ ")"

let pp fmt e = Format.pp_print_string fmt (to_string e)

let enumeration_guard e =
  let vs = vars e in
  if List.length vs > 20 then
    invalid_arg "Bool_expr: too many variables for exhaustive counting";
  vs

let model_count e =
  let vs = Array.of_list (enumeration_guard e) in
  let n = Array.length vs in
  let count = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let env i =
      let rec idx k = if vs.(k) = i then k else idx (k + 1) in
      mask land (1 lsl idx 0) <> 0
    in
    if eval env e then incr count
  done;
  !count

let brute_force_probability (type p) (module C : Prob.CARRIER with type t = p)
    (weight : int -> p) e : p =
  let vs = Array.of_list (enumeration_guard e) in
  let n = Array.length vs in
  let total = ref C.zero in
  for mask = 0 to (1 lsl n) - 1 do
    let env i =
      let rec idx k = if vs.(k) = i then k else idx (k + 1) in
      mask land (1 lsl idx 0) <> 0
    in
    if eval env e then begin
      let w = ref C.one in
      for k = 0 to n - 1 do
        let p = weight vs.(k) in
        w := C.mul !w (if mask land (1 lsl k) <> 0 then p else C.compl p)
      done;
      total := C.add !total !w
    end
  done;
  !total
